#include "src/sim/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace mfc {
namespace {

TEST(EventLoopTest, StartsAtTimeZero) {
  EventLoop loop;
  EXPECT_EQ(loop.Now(), 0.0);
  EXPECT_EQ(loop.PendingCount(), 0u);
}

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAt(3.0, [&] { order.push_back(3); });
  loop.ScheduleAt(1.0, [&] { order.push_back(1); });
  loop.ScheduleAt(2.0, [&] { order.push_back(2); });
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now(), 3.0);
}

TEST(EventLoopTest, SameTimeEventsRunFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  loop.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventLoopTest, NowAdvancesToEventTime) {
  EventLoop loop;
  SimTime seen = -1.0;
  loop.ScheduleAt(5.5, [&] { seen = loop.Now(); });
  loop.RunUntilIdle();
  EXPECT_DOUBLE_EQ(seen, 5.5);
}

TEST(EventLoopTest, ScheduleAfterIsRelative) {
  EventLoop loop;
  loop.ScheduleAt(2.0, [] {});
  loop.RunUntilIdle();
  SimTime seen = -1.0;
  loop.ScheduleAfter(3.0, [&] { seen = loop.Now(); });
  loop.RunUntilIdle();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(EventLoopTest, SchedulingInThePastClampsToNow) {
  EventLoop loop;
  loop.ScheduleAt(10.0, [] {});
  loop.RunUntilIdle();
  SimTime seen = -1.0;
  loop.ScheduleAt(1.0, [&] { seen = loop.Now(); });
  loop.RunUntilIdle();
  EXPECT_DOUBLE_EQ(seen, 10.0);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  EventId id = loop.ScheduleAt(1.0, [&] { ran = true; });
  EXPECT_TRUE(loop.Cancel(id));
  loop.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(EventLoopTest, CancelTwiceFails) {
  EventLoop loop;
  EventId id = loop.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));
}

TEST(EventLoopTest, CancelAfterRunFails) {
  EventLoop loop;
  EventId id = loop.ScheduleAt(1.0, [] {});
  loop.RunUntilIdle();
  EXPECT_FALSE(loop.Cancel(id));
}

TEST(EventLoopTest, CancelUnknownIdFails) {
  EventLoop loop;
  EXPECT_FALSE(loop.Cancel(12345));
}

TEST(EventLoopTest, RunUntilStopsAtBoundaryAndAdvancesNow) {
  EventLoop loop;
  std::vector<double> fired;
  loop.ScheduleAt(1.0, [&] { fired.push_back(1.0); });
  loop.ScheduleAt(2.0, [&] { fired.push_back(2.0); });
  loop.ScheduleAt(5.0, [&] { fired.push_back(5.0); });
  loop.RunUntil(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(loop.Now(), 3.0);
  EXPECT_EQ(loop.PendingCount(), 1u);
  loop.RunUntil(10.0);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(loop.Now(), 10.0);
}

TEST(EventLoopTest, RunUntilInclusiveOfBoundary) {
  EventLoop loop;
  bool ran = false;
  loop.ScheduleAt(3.0, [&] { ran = true; });
  loop.RunUntil(3.0);
  EXPECT_TRUE(ran);
}

TEST(EventLoopTest, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      loop.ScheduleAfter(1.0, chain);
    }
  };
  loop.ScheduleAt(1.0, chain);
  loop.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(loop.Now(), 5.0);
}

TEST(EventLoopTest, RunOneReturnsFalseWhenIdle) {
  EventLoop loop;
  EXPECT_FALSE(loop.RunOne());
  loop.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(loop.RunOne());
  EXPECT_FALSE(loop.RunOne());
}

TEST(EventLoopTest, ExecutedCountTracksRuns) {
  EventLoop loop;
  for (int i = 0; i < 7; ++i) {
    loop.ScheduleAt(static_cast<double>(i), [] {});
  }
  EventId id = loop.ScheduleAt(100.0, [] {});
  loop.Cancel(id);
  loop.RunUntilIdle();
  EXPECT_EQ(loop.ExecutedCount(), 7u);
}

TEST(EventLoopTest, PendingCountExcludesCancelled) {
  EventLoop loop;
  EventId a = loop.ScheduleAt(1.0, [] {});
  loop.ScheduleAt(2.0, [] {});
  EXPECT_EQ(loop.PendingCount(), 2u);
  loop.Cancel(a);
  EXPECT_EQ(loop.PendingCount(), 1u);
}

TEST(EventLoopTest, CancelFromInsideAnEvent) {
  EventLoop loop;
  bool late_ran = false;
  EventId late = loop.ScheduleAt(2.0, [&] { late_ran = true; });
  loop.ScheduleAt(1.0, [&] { loop.Cancel(late); });
  loop.RunUntilIdle();
  EXPECT_FALSE(late_ran);
}

// Regression: PendingCount used to be computed as queue size minus cancelled
// size, which miscounted whenever stale heap entries outlived bookkeeping.
// The slot-vector implementation keeps an exact live counter; these pin the
// count through every schedule/cancel/run interleaving.
TEST(EventLoopTest, PendingCountExactThroughCancelRunInterleavings) {
  EventLoop loop;
  EventId a = loop.ScheduleAt(1.0, [] {});
  EventId b = loop.ScheduleAt(2.0, [] {});
  EventId c = loop.ScheduleAt(3.0, [] {});
  EXPECT_EQ(loop.PendingCount(), 3u);
  loop.Cancel(b);
  EXPECT_EQ(loop.PendingCount(), 2u);
  EXPECT_TRUE(loop.RunOne());  // runs a
  EXPECT_EQ(loop.PendingCount(), 1u);
  loop.Cancel(c);
  EXPECT_EQ(loop.PendingCount(), 0u);
  EXPECT_FALSE(loop.RunOne());  // drains only stale entries
  EXPECT_EQ(loop.PendingCount(), 0u);
  (void)a;
}

TEST(EventLoopTest, PendingCountExactAfterRunUntilSkipsStaleEntries) {
  EventLoop loop;
  // Cancelled events both before and after the RunUntil boundary.
  EventId early = loop.ScheduleAt(1.0, [] {});
  loop.ScheduleAt(2.0, [] {});
  EventId late = loop.ScheduleAt(10.0, [] {});
  loop.ScheduleAt(11.0, [] {});
  loop.Cancel(early);
  loop.Cancel(late);
  EXPECT_EQ(loop.PendingCount(), 2u);
  loop.RunUntil(5.0);
  EXPECT_EQ(loop.PendingCount(), 1u);
  loop.RunUntilIdle();
  EXPECT_EQ(loop.PendingCount(), 0u);
}

TEST(EventLoopTest, PendingCountExactWhenCallbacksScheduleAndCancel) {
  EventLoop loop;
  EventId victim = loop.ScheduleAt(5.0, [] {});
  loop.ScheduleAt(1.0, [&] {
    loop.Cancel(victim);
    loop.ScheduleAfter(1.0, [] {});
    loop.ScheduleAfter(2.0, [] {});
    EXPECT_EQ(loop.PendingCount(), 2u);
  });
  EXPECT_EQ(loop.PendingCount(), 2u);
  loop.RunUntilIdle();
  EXPECT_EQ(loop.PendingCount(), 0u);
  EXPECT_EQ(loop.ExecutedCount(), 3u);
}

// Slot reuse must not let a stale EventId cancel the slot's new occupant.
TEST(EventLoopTest, StaleIdCannotCancelReusedSlot) {
  EventLoop loop;
  EventId old_id = loop.ScheduleAt(1.0, [] {});
  ASSERT_TRUE(loop.Cancel(old_id));
  bool ran = false;
  EventId new_id = loop.ScheduleAt(2.0, [&] { ran = true; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(loop.Cancel(old_id));  // stale id, slot now reused
  EXPECT_EQ(loop.PendingCount(), 1u);
  loop.RunUntilIdle();
  EXPECT_TRUE(ran);
}

TEST(EventLoopTest, IdsStayUniqueAcrossHeavySlotReuse) {
  EventLoop loop;
  EventId last = 0;
  for (int i = 0; i < 1000; ++i) {
    EventId id = loop.ScheduleAt(static_cast<double>(i), [] {});
    EXPECT_NE(id, 0u);
    EXPECT_NE(id, last);
    last = id;
    if (i % 2 == 0) {
      EXPECT_TRUE(loop.Cancel(id));
    } else {
      EXPECT_TRUE(loop.RunOne());
    }
    EXPECT_EQ(loop.PendingCount(), 0u);
  }
  EXPECT_EQ(loop.ExecutedCount(), 500u);
}

// Stress: interleaved schedule/cancel keeps ordering and never loses events.
TEST(EventLoopTest, StressManyEventsStayOrdered) {
  EventLoop loop;
  std::vector<double> times;
  for (int i = 0; i < 2000; ++i) {
    double t = static_cast<double>((i * 7919) % 1000);
    loop.ScheduleAt(t, [&times, &loop] { times.push_back(loop.Now()); });
  }
  loop.RunUntilIdle();
  ASSERT_EQ(times.size(), 2000u);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
}

TEST(EventLoopTest, RescheduleMovesEventToNewTime) {
  EventLoop loop;
  std::vector<double> fired;
  EventId id = loop.ScheduleAt(5.0, [&] { fired.push_back(loop.Now()); });
  EventId moved = loop.Reschedule(id, 2.0);
  ASSERT_NE(moved, 0u);
  loop.RunUntilIdle();
  EXPECT_EQ(fired, (std::vector<double>{2.0}));
  EXPECT_DOUBLE_EQ(loop.Now(), 2.0);
}

TEST(EventLoopTest, RescheduleInvalidatesOldId) {
  EventLoop loop;
  bool ran = false;
  EventId id = loop.ScheduleAt(5.0, [&] { ran = true; });
  EventId moved = loop.Reschedule(id, 2.0);
  ASSERT_NE(moved, 0u);
  EXPECT_FALSE(loop.Cancel(id));     // the original handle is stale
  EXPECT_TRUE(loop.Cancel(moved));   // only the new one controls the event
  loop.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(EventLoopTest, RescheduleStaleIdReturnsZero) {
  EventLoop loop;
  EventId id = loop.ScheduleAt(1.0, [] {});
  loop.RunUntilIdle();
  EXPECT_EQ(loop.Reschedule(id, 2.0), 0u);
  EXPECT_EQ(loop.Reschedule(0, 2.0), 0u);
  EventId cancelled = loop.ScheduleAt(3.0, [] {});
  loop.Cancel(cancelled);
  EXPECT_EQ(loop.Reschedule(cancelled, 4.0), 0u);
}

TEST(EventLoopTest, RescheduleToThePastClampsToNow) {
  EventLoop loop;
  loop.ScheduleAt(10.0, [] {});
  loop.RunUntilIdle();
  SimTime seen = -1.0;
  EventId id = loop.ScheduleAt(20.0, [&] { seen = loop.Now(); });
  ASSERT_NE(loop.Reschedule(id, 1.0), 0u);
  loop.RunUntilIdle();
  EXPECT_DOUBLE_EQ(seen, 10.0);
}

TEST(EventLoopTest, RescheduleMatchesCancelPlusSchedule) {
  // Same observable behaviour as Cancel + ScheduleAt: firing order, timing,
  // and pending counts.
  EventLoop a;
  EventLoop b;
  std::vector<double> fired_a;
  std::vector<double> fired_b;
  EventId ia = a.ScheduleAt(7.0, [&] { fired_a.push_back(a.Now()); });
  a.ScheduleAt(4.0, [&] { fired_a.push_back(a.Now()); });
  a.Reschedule(ia, 3.0);

  EventId ib = b.ScheduleAt(7.0, [&] { fired_b.push_back(b.Now()); });
  b.ScheduleAt(4.0, [&] { fired_b.push_back(b.Now()); });
  b.Cancel(ib);
  b.ScheduleAt(3.0, [&] { fired_b.push_back(b.Now()); });

  EXPECT_EQ(a.PendingCount(), b.PendingCount());
  a.RunUntilIdle();
  b.RunUntilIdle();
  EXPECT_EQ(fired_a, fired_b);
  EXPECT_EQ(fired_a, (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(a.PendingCount(), 0u);
}

TEST(EventLoopTest, RescheduleRepeatedlyFiresOnce) {
  EventLoop loop;
  int runs = 0;
  EventId id = loop.ScheduleAt(1.0, [&] { ++runs; });
  for (int i = 0; i < 50; ++i) {
    id = loop.Reschedule(id, 1.0 + static_cast<double>(i));
    ASSERT_NE(id, 0u);
  }
  loop.RunUntilIdle();
  EXPECT_EQ(runs, 1);
  EXPECT_DOUBLE_EQ(loop.Now(), 50.0);
  EXPECT_EQ(loop.PendingCount(), 0u);
}

}  // namespace
}  // namespace mfc
