#include "src/sim/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace mfc {
namespace {

constexpr int kSamples = 50000;

TEST(ExponentialDistTest, MeanMatchesRate) {
  Rng rng(1);
  ExponentialDist dist(4.0);  // mean 0.25
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    sum += dist.Sample(rng);
  }
  EXPECT_NEAR(sum / kSamples, 0.25, 0.01);
}

TEST(ExponentialDistTest, AlwaysNonNegative) {
  Rng rng(2);
  ExponentialDist dist(0.5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(dist.Sample(rng), 0.0);
  }
}

TEST(ExponentialDistTest, MemorylessTail) {
  // P(X > m) should be ~ exp(-lambda m).
  Rng rng(3);
  ExponentialDist dist(2.0);
  int above = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (dist.Sample(rng) > 1.0) {
      ++above;
    }
  }
  EXPECT_NEAR(static_cast<double>(above) / kSamples, std::exp(-2.0), 0.01);
}

TEST(LognormalDistTest, MedianMatches) {
  Rng rng(4);
  LognormalDist dist = LognormalDist::FromMedian(0.070, 0.5);
  std::vector<double> v;
  v.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    v.push_back(dist.Sample(rng));
  }
  std::nth_element(v.begin(), v.begin() + kSamples / 2, v.end());
  EXPECT_NEAR(v[kSamples / 2], 0.070, 0.003);
}

TEST(LognormalDistTest, AlwaysPositive) {
  Rng rng(5);
  LognormalDist dist(0.0, 2.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(dist.Sample(rng), 0.0);
  }
}

TEST(BoundedParetoDistTest, StaysInRange) {
  Rng rng(6);
  BoundedParetoDist dist(1.2, 10.0, 1000.0);
  for (int i = 0; i < 5000; ++i) {
    double v = dist.Sample(rng);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 1000.0);
  }
}

TEST(BoundedParetoDistTest, HeavyTailShape) {
  // Most mass near the lower bound for alpha > 1.
  Rng rng(7);
  BoundedParetoDist dist(1.5, 1.0, 10000.0);
  int low = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (dist.Sample(rng) < 10.0) {
      ++low;
    }
  }
  // P(X < 10) for bounded Pareto(1.5, 1, 1e4) ~ 1 - 10^-1.5 ~ 0.968.
  EXPECT_NEAR(static_cast<double>(low) / kSamples, 0.968, 0.01);
}

TEST(ZipfDistTest, RanksWithinBounds) {
  Rng rng(8);
  ZipfDist dist(50, 1.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(dist.Sample(rng), 50u);
  }
}

TEST(ZipfDistTest, PopularityMonotone) {
  Rng rng(9);
  ZipfDist dist(20, 1.0);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < kSamples; ++i) {
    counts[dist.Sample(rng)]++;
  }
  // Rank 0 should dominate rank 5 which dominates rank 19.
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[19]);
}

TEST(ZipfDistTest, FirstRankFrequencyMatchesTheory) {
  Rng rng(10);
  const size_t n = 10;
  ZipfDist dist(n, 1.0);
  double harmonic = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    harmonic += 1.0 / static_cast<double>(k);
  }
  int first = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (dist.Sample(rng) == 0) {
      ++first;
    }
  }
  EXPECT_NEAR(static_cast<double>(first) / kSamples, 1.0 / harmonic, 0.01);
}

TEST(ZipfDistTest, SingleElement) {
  Rng rng(11);
  ZipfDist dist(1, 1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(dist.Sample(rng), 0u);
  }
}

TEST(StandardNormalTest, MeanAndVariance) {
  Rng rng(12);
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    double v = SampleStandardNormal(rng);
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sq / kSamples, 1.0, 0.03);
}

TEST(StandardNormalTest, SymmetricTails) {
  Rng rng(13);
  int pos = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (SampleStandardNormal(rng) > 0.0) {
      ++pos;
    }
  }
  EXPECT_NEAR(static_cast<double>(pos) / kSamples, 0.5, 0.01);
}

}  // namespace
}  // namespace mfc
