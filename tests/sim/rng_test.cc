#include "src/sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mfc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-3.0, 9.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Chance(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent2(31);
  parent2.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextU64() == parent.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(37);
  Rng b(37);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(ca.NextU64(), cb.NextU64());
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) {
    v[static_cast<size_t>(i)] = i;
  }
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled.begin(), shuffled.end());
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleHandlesSmallInputs) {
  Rng rng(43);
  std::vector<int> empty;
  rng.Shuffle(empty.begin(), empty.end());
  std::vector<int> one{5};
  rng.Shuffle(one.begin(), one.end());
  EXPECT_EQ(one[0], 5);
}

}  // namespace
}  // namespace mfc
