#include <gtest/gtest.h>

#include "src/baseline/closed_loop_loadgen.h"
#include "src/baseline/keynote_prober.h"
#include "src/core/experiment_runner.h"

namespace mfc {
namespace {

HttpRequest HeadRoot() {
  HttpRequest req;
  req.method = HttpMethod::kHead;
  req.target = "/";
  req.headers.Set("Host", "t");
  return req;
}

TEST(KeynoteProberTest, ReportsSingleRequestLatencies) {
  DeploymentOptions options;
  options.seed = 1;
  options.fleet_size = 10;
  options.lan_clients = true;
  options.jitter_sigma = 0.0;
  Deployment deployment(MakeLabValidationProfile(), options);
  KeynoteProber prober(deployment.Testbed(), HeadRoot(), Seconds(10));
  ProbeReport report = prober.Run(20);
  EXPECT_EQ(report.probes, 20u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_GT(report.mean_response, 0.0);
  EXPECT_LE(report.median_response, report.p95_response);
  EXPECT_LE(report.p95_response, report.max_response);
  // Unloaded LAN HEAD: a few milliseconds at most.
  EXPECT_LT(report.median_response, 0.050);
}

TEST(KeynoteProberTest, SingleProbesMissConcurrencyBottlenecks) {
  // The same server that collapses under a 30-client MFC crowd looks
  // perfectly healthy to sequential single-request monitoring — the paper's
  // core argument against Keynote-style measurement (Section 7).
  SiteInstance site = MakeLabValidationProfile();
  DeploymentOptions options;
  options.seed = 2;
  options.fleet_size = 55;
  options.lan_clients = true;
  Deployment deployment(site, options);

  KeynoteProber prober(deployment.Testbed(), HeadRoot(), Seconds(5));
  ProbeReport probe_report = prober.Run(30);
  EXPECT_LT(probe_report.p95_response, 0.100);  // no degradation visible

  ExperimentConfig config;
  config.max_crowd = 50;
  ExperimentResult mfc = deployment.RunMfc(config, deployment.ObjectsFromContent(), 5);
  const StageResult* large = mfc.Stage(StageKind::kLargeObject);
  ASSERT_NE(large, nullptr);
  EXPECT_TRUE(large->stopped);  // the crowd finds what the prober cannot
}

TEST(ClosedLoopLoadGenTest, ThroughputBoundedByServiceCapacity) {
  DeploymentOptions options;
  options.seed = 3;
  options.fleet_size = 40;
  options.lan_clients = true;
  options.jitter_sigma = 0.0;
  Deployment deployment(MakeLabValidationProfile(), options);
  // HEAD service is ~0.7 ms CPU on one core: capacity ~1400 req/s.
  ClosedLoopLoadGen loadgen(deployment.Testbed(), HeadRoot(), 20, Millis(10));
  LoadGenReport report = loadgen.Run(Seconds(30));
  EXPECT_GT(report.completed, 100u);
  EXPECT_GT(report.throughput_rps, 10.0);
  EXPECT_LT(report.throughput_rps, 2000.0);
  EXPECT_GT(report.mean_response, 0.0);
  EXPECT_LE(report.mean_response, report.max_response);
}

TEST(ClosedLoopLoadGenTest, MoreUsersMoreLatencyOnSaturatedServer) {
  auto mean_latency = [](size_t users, uint64_t seed) {
    DeploymentOptions options;
    options.seed = seed;
    options.fleet_size = 64;
    options.lan_clients = true;
    options.jitter_sigma = 0.0;
    Deployment deployment(MakeLabValidationProfile(), options);
    HttpRequest query;
    query.method = HttpMethod::kGet;
    query.target = "/cgi/search0.php?x=1";
    ClosedLoopLoadGen loadgen(deployment.Testbed(), query, users, Millis(50));
    return loadgen.Run(Seconds(30)).mean_response;
  };
  EXPECT_GT(mean_latency(32, 4), 2.0 * mean_latency(2, 4));
}

}  // namespace
}  // namespace mfc
