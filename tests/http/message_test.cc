#include "src/http/message.h"

#include <gtest/gtest.h>

#include "src/http/header_map.h"
#include "src/http/status.h"

namespace mfc {
namespace {

TEST(HeaderMapTest, CaseInsensitiveGet) {
  HeaderMap h;
  h.Add("Content-Type", "text/html");
  EXPECT_EQ(h.Get("content-type").value(), "text/html");
  EXPECT_EQ(h.Get("CONTENT-TYPE").value(), "text/html");
  EXPECT_FALSE(h.Get("Content-Length").has_value());
}

TEST(HeaderMapTest, AddAllowsDuplicatesGetReturnsFirst) {
  HeaderMap h;
  h.Add("X-A", "1");
  h.Add("X-A", "2");
  EXPECT_EQ(h.Size(), 2u);
  EXPECT_EQ(h.Get("x-a").value(), "1");
}

TEST(HeaderMapTest, SetReplacesAll) {
  HeaderMap h;
  h.Add("X-A", "1");
  h.Add("X-A", "2");
  h.Set("x-a", "3");
  EXPECT_EQ(h.Size(), 1u);
  EXPECT_EQ(h.Get("X-A").value(), "3");
}

TEST(HeaderMapTest, RemoveCountsRemoved) {
  HeaderMap h;
  h.Add("A", "1");
  h.Add("a", "2");
  h.Add("B", "3");
  EXPECT_EQ(h.Remove("A"), 2u);
  EXPECT_EQ(h.Size(), 1u);
}

TEST(HeaderMapTest, ContentLengthParsing) {
  HeaderMap h;
  h.Set("Content-Length", "12345");
  EXPECT_EQ(h.ContentLength().value(), 12345u);
  h.Set("Content-Length", "nope");
  EXPECT_FALSE(h.ContentLength().has_value());
  h.Set("Content-Length", "12x");
  EXPECT_FALSE(h.ContentLength().has_value());
  h.Remove("Content-Length");
  EXPECT_FALSE(h.ContentLength().has_value());
}

TEST(HttpRequestTest, ForSetsHostAndTarget) {
  Url url = *ParseUrl("http://example.com:8080/a/b?x=1");
  HttpRequest req = HttpRequest::For(HttpMethod::kGet, url);
  EXPECT_EQ(req.target, "/a/b?x=1");
  EXPECT_EQ(req.headers.Get("Host").value(), "example.com:8080");
}

TEST(HttpRequestTest, PathAndQuerySplit) {
  HttpRequest req;
  req.target = "/cgi/s.php?q=1&u=2";
  EXPECT_EQ(req.Path(), "/cgi/s.php");
  EXPECT_EQ(req.Query(), "q=1&u=2");
  EXPECT_TRUE(req.HasQuery());
  req.target = "/plain.html";
  EXPECT_EQ(req.Path(), "/plain.html");
  EXPECT_FALSE(req.HasQuery());
}

TEST(HttpRequestTest, SerializeBasic) {
  Url url = *ParseUrl("http://h/x");
  HttpRequest req = HttpRequest::For(HttpMethod::kHead, url);
  std::string wire = req.Serialize();
  EXPECT_EQ(wire.substr(0, wire.find("\r\n")), "HEAD /x HTTP/1.1");
  EXPECT_NE(wire.find("Host: h\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n"), std::string::npos);
}

TEST(HttpRequestTest, SerializeAddsContentLengthForBody) {
  HttpRequest req;
  req.method = HttpMethod::kPost;
  req.target = "/submit";
  req.body = "hello";
  std::string wire = req.Serialize();
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 5), "hello");
}

TEST(HttpResponseTest, MakeSetsHeaders) {
  HttpResponse resp = HttpResponse::Make(HttpStatus::kOk, "text/html", "<html></html>");
  EXPECT_EQ(resp.headers.Get("Content-Type").value(), "text/html");
  EXPECT_EQ(resp.headers.ContentLength().value(), resp.body.size());
}

TEST(HttpResponseTest, SerializeStatusLine) {
  HttpResponse resp = HttpResponse::Make(HttpStatus::kNotFound, "text/plain", "gone");
  std::string wire = resp.Serialize();
  EXPECT_EQ(wire.substr(0, wire.find("\r\n")), "HTTP/1.1 404 Not Found");
}

TEST(StatusTest, ReasonPhrases) {
  EXPECT_EQ(ReasonPhrase(HttpStatus::kOk), "OK");
  EXPECT_EQ(ReasonPhrase(HttpStatus::kServiceUnavailable), "Service Unavailable");
  EXPECT_EQ(ReasonPhrase(HttpStatus::kClientTimeout), "Client Timeout");
}

TEST(StatusTest, Classification) {
  EXPECT_TRUE(IsSuccess(HttpStatus::kOk));
  EXPECT_FALSE(IsSuccess(HttpStatus::kNotFound));
  EXPECT_TRUE(IsServerError(HttpStatus::kServiceUnavailable));
  EXPECT_FALSE(IsServerError(HttpStatus::kOk));
  EXPECT_FALSE(IsSuccess(HttpStatus::kClientTimeout));
}

TEST(MethodTest, Names) {
  EXPECT_EQ(MethodName(HttpMethod::kGet), "GET");
  EXPECT_EQ(MethodName(HttpMethod::kHead), "HEAD");
  EXPECT_EQ(MethodName(HttpMethod::kPost), "POST");
}

}  // namespace
}  // namespace mfc
