#include "src/http/parser.h"

#include <gtest/gtest.h>

#include <string>

namespace mfc {
namespace {

constexpr const char* kSimpleRequest =
    "GET /index.html HTTP/1.1\r\nHost: example.com\r\nUser-Agent: t\r\n\r\n";

TEST(RequestParserTest, ParsesSimpleGet) {
  RequestParser parser;
  size_t consumed = parser.Feed(kSimpleRequest);
  EXPECT_EQ(consumed, std::string(kSimpleRequest).size());
  ASSERT_TRUE(parser.Done());
  EXPECT_EQ(parser.Message().method, HttpMethod::kGet);
  EXPECT_EQ(parser.Message().target, "/index.html");
  EXPECT_EQ(parser.Message().headers.Get("Host").value(), "example.com");
}

TEST(RequestParserTest, ParsesHead) {
  RequestParser parser;
  parser.Feed("HEAD / HTTP/1.1\r\nHost: h\r\n\r\n");
  ASSERT_TRUE(parser.Done());
  EXPECT_EQ(parser.Message().method, HttpMethod::kHead);
}

TEST(RequestParserTest, ParsesBodyByContentLength) {
  RequestParser parser;
  parser.Feed("POST /s HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  ASSERT_TRUE(parser.Done());
  EXPECT_EQ(parser.Message().body, "hello");
}

TEST(RequestParserTest, IncrementalBody) {
  RequestParser parser;
  parser.Feed("POST /s HTTP/1.1\r\nContent-Length: 10\r\n\r\n");
  EXPECT_FALSE(parser.Done());
  EXPECT_EQ(parser.Phase(), ParsePhase::kBody);
  parser.Feed("01234");
  EXPECT_FALSE(parser.Done());
  parser.Feed("56789");
  ASSERT_TRUE(parser.Done());
  EXPECT_EQ(parser.Message().body, "0123456789");
}

TEST(RequestParserTest, ExcessBytesNotConsumed) {
  RequestParser parser;
  std::string two = std::string(kSimpleRequest) + "GET /other HTTP/1.1\r\n\r\n";
  size_t consumed = parser.Feed(two);
  EXPECT_EQ(consumed, std::string(kSimpleRequest).size());
  EXPECT_TRUE(parser.Done());
}

TEST(RequestParserTest, ToleratesLeadingBlankLines) {
  RequestParser parser;
  parser.Feed("\r\n\r\nGET / HTTP/1.1\r\nHost: h\r\n\r\n");
  EXPECT_TRUE(parser.Done());
}

TEST(RequestParserTest, BareLfAccepted) {
  RequestParser parser;
  parser.Feed("GET / HTTP/1.1\nHost: h\n\n");
  EXPECT_TRUE(parser.Done());
  EXPECT_EQ(parser.Message().headers.Get("Host").value(), "h");
}

TEST(RequestParserTest, HeaderValueOwsTrimmed) {
  RequestParser parser;
  parser.Feed("GET / HTTP/1.1\r\nX-Pad:   spaced value \t\r\n\r\n");
  ASSERT_TRUE(parser.Done());
  EXPECT_EQ(parser.Message().headers.Get("X-Pad").value(), "spaced value");
}

TEST(RequestParserTest, RejectsUnknownMethod) {
  RequestParser parser;
  parser.Feed("BREW /coffee HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(parser.Failed());
}

TEST(RequestParserTest, RejectsBadVersion) {
  RequestParser parser;
  parser.Feed("GET / HTTP/2.0\r\n\r\n");
  EXPECT_TRUE(parser.Failed());
}

TEST(RequestParserTest, RejectsTargetWithoutSlash) {
  RequestParser parser;
  parser.Feed("GET index.html HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(parser.Failed());
}

TEST(RequestParserTest, RejectsHeaderWithoutColon) {
  RequestParser parser;
  parser.Feed("GET / HTTP/1.1\r\nBadHeader\r\n\r\n");
  EXPECT_TRUE(parser.Failed());
}

TEST(RequestParserTest, RejectsEmptyHeaderName) {
  RequestParser parser;
  parser.Feed("GET / HTTP/1.1\r\n: value\r\n\r\n");
  EXPECT_TRUE(parser.Failed());
}

TEST(RequestParserTest, RejectsHeaderNameWithSpace) {
  RequestParser parser;
  parser.Feed("GET / HTTP/1.1\r\nBad Name: v\r\n\r\n");
  EXPECT_TRUE(parser.Failed());
}

TEST(RequestParserTest, RejectsMalformedContentLength) {
  RequestParser parser;
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n");
  EXPECT_TRUE(parser.Failed());
}

TEST(RequestParserTest, StaysFailedAfterError) {
  RequestParser parser;
  parser.Feed("BREW / HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.Failed());
  parser.Feed("GET / HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(parser.Failed());
}

TEST(ResponseParserTest, ParsesSimpleResponse) {
  ResponseParser parser;
  parser.Feed("HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabc");
  ASSERT_TRUE(parser.Done());
  EXPECT_EQ(parser.Message().status, HttpStatus::kOk);
  EXPECT_EQ(parser.Message().body, "abc");
}

TEST(ResponseParserTest, HeadResponseSkipsBody) {
  ResponseParser parser;
  parser.set_expect_body(false);
  parser.Feed("HTTP/1.1 200 OK\r\nContent-Length: 102400\r\n\r\n");
  ASSERT_TRUE(parser.Done());
  EXPECT_TRUE(parser.Message().body.empty());
  EXPECT_EQ(parser.Message().headers.ContentLength().value(), 102400u);
}

TEST(ResponseParserTest, StatusWithoutReasonPhrase) {
  ResponseParser parser;
  parser.Feed("HTTP/1.1 204\r\n\r\n");
  ASSERT_TRUE(parser.Done());
  EXPECT_EQ(parser.Message().status, HttpStatus::kNoContent);
}

TEST(ResponseParserTest, RejectsBadStatusCode) {
  ResponseParser parser;
  parser.Feed("HTTP/1.1 9000 Huge\r\n\r\n");
  EXPECT_TRUE(parser.Failed());
}

TEST(ResponseParserTest, RejectsNonNumericStatus) {
  ResponseParser parser;
  parser.Feed("HTTP/1.1 OK 200\r\n\r\n");
  EXPECT_TRUE(parser.Failed());
}

TEST(ResponseParserTest, RejectsBadVersion) {
  ResponseParser parser;
  parser.Feed("SIP/2.0 200 OK\r\n\r\n");
  EXPECT_TRUE(parser.Failed());
}

// Round-trip property: serialize then parse yields the same message, for any
// chunking of the wire bytes.
class ParserChunkingTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParserChunkingTest, RequestRoundTripUnderChunking) {
  size_t chunk = GetParam();
  HttpRequest req;
  req.method = HttpMethod::kPost;
  req.target = "/cgi/search.php?q=xyz&mfc=17";
  req.headers.Set("Host", "target.example.com");
  req.headers.Set("User-Agent", "mfc-client/1.0");
  req.body = "payload-data-0123456789";
  std::string wire = req.Serialize();

  RequestParser parser;
  size_t pos = 0;
  while (pos < wire.size()) {
    size_t n = std::min(chunk, wire.size() - pos);
    size_t consumed = parser.Feed(std::string_view(wire).substr(pos, n));
    EXPECT_EQ(consumed, n);
    pos += n;
  }
  ASSERT_TRUE(parser.Done()) << "chunk=" << chunk;
  EXPECT_EQ(parser.Message().method, req.method);
  EXPECT_EQ(parser.Message().target, req.target);
  EXPECT_EQ(parser.Message().body, req.body);
  EXPECT_EQ(parser.Message().headers.Get("Host").value(), "target.example.com");
}

TEST_P(ParserChunkingTest, ResponseRoundTripUnderChunking) {
  size_t chunk = GetParam();
  HttpResponse resp = HttpResponse::Make(HttpStatus::kOk, "text/html",
                                         "<html><body>hello world</body></html>");
  std::string wire = resp.Serialize();

  ResponseParser parser;
  size_t pos = 0;
  while (pos < wire.size()) {
    size_t n = std::min(chunk, wire.size() - pos);
    parser.Feed(std::string_view(wire).substr(pos, n));
    pos += n;
  }
  ASSERT_TRUE(parser.Done()) << "chunk=" << chunk;
  EXPECT_EQ(parser.Message().status, HttpStatus::kOk);
  EXPECT_EQ(parser.Message().body, resp.body);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ParserChunkingTest,
                         ::testing::Values(1, 2, 3, 5, 7, 16, 64, 1024));

}  // namespace
}  // namespace mfc
