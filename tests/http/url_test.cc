#include "src/http/url.h"

#include <gtest/gtest.h>

namespace mfc {
namespace {

TEST(UrlParseTest, AbsoluteBasic) {
  auto url = ParseUrl("http://example.com/index.html");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->host, "example.com");
  EXPECT_EQ(url->port, 80);
  EXPECT_EQ(url->path, "/index.html");
  EXPECT_TRUE(url->query.empty());
}

TEST(UrlParseTest, HostOnlyGetsRootPath) {
  auto url = ParseUrl("http://example.com");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path, "/");
}

TEST(UrlParseTest, ExplicitPort) {
  auto url = ParseUrl("http://example.com:8080/a");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->port, 8080);
  EXPECT_EQ(url->ToString(), "http://example.com:8080/a");
}

TEST(UrlParseTest, QueryString) {
  auto url = ParseUrl("http://h/cgi/search.php?q=abc&n=5");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path, "/cgi/search.php");
  EXPECT_EQ(url->query, "q=abc&n=5");
  EXPECT_TRUE(url->HasQuery());
  EXPECT_EQ(url->RequestTarget(), "/cgi/search.php?q=abc&n=5");
}

TEST(UrlParseTest, FragmentStripped) {
  auto url = ParseUrl("http://h/a.html#section2");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path, "/a.html");
}

TEST(UrlParseTest, NonHttpSchemesRejected) {
  EXPECT_FALSE(ParseUrl("https://secure.example.com/").has_value());
  EXPECT_FALSE(ParseUrl("ftp://example.com/file").has_value());
  EXPECT_FALSE(ParseUrl("mailto:user@example.com").has_value());
}

TEST(UrlParseTest, MalformedRejected) {
  EXPECT_FALSE(ParseUrl("").has_value());
  EXPECT_FALSE(ParseUrl("http://").has_value());
  EXPECT_FALSE(ParseUrl("http://:80/").has_value());
  EXPECT_FALSE(ParseUrl("http://h:notaport/").has_value());
  EXPECT_FALSE(ParseUrl("http://h:0/").has_value());
  EXPECT_FALSE(ParseUrl("http://h:70000/").has_value());
}

TEST(UrlParseTest, RelativeNeedsBase) {
  EXPECT_FALSE(ParseUrl("page.html").has_value());
}

TEST(UrlParseTest, RelativeAbsolutePath) {
  Url base = *ParseUrl("http://h/dir/page.html");
  auto url = ParseUrl("/other/x.html", &base);
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->host, "h");
  EXPECT_EQ(url->path, "/other/x.html");
}

TEST(UrlParseTest, RelativeSiblingResolvesAgainstDirectory) {
  Url base = *ParseUrl("http://h/dir/page.html");
  auto url = ParseUrl("img/pic.jpg", &base);
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path, "/dir/img/pic.jpg");
}

TEST(UrlParseTest, RelativeDotDotNormalized) {
  Url base = *ParseUrl("http://h/a/b/c.html");
  auto url = ParseUrl("../up.html", &base);
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path, "/a/up.html");
}

TEST(UrlParseTest, DotDotPastRootClamped) {
  Url base = *ParseUrl("http://h/a.html");
  auto url = ParseUrl("../../../x.html", &base);
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path, "/x.html");
}

TEST(UrlParseTest, QueryOnlyRelative) {
  Url base = *ParseUrl("http://h/cgi/s.php?a=1");
  auto url = ParseUrl("?b=2", &base);
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path, "/cgi/s.php");
  EXPECT_EQ(url->query, "b=2");
}

TEST(UrlParseTest, PreservesTrailingSlash) {
  auto url = ParseUrl("http://h/docs/");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->path, "/docs/");
}

TEST(UrlToStringTest, DefaultPortOmitted) {
  Url url;
  url.host = "example.com";
  url.path = "/a";
  EXPECT_EQ(url.ToString(), "http://example.com/a");
}

TEST(UrlToStringTest, RoundTrip) {
  const char* cases[] = {
      "http://example.com/",
      "http://example.com/a/b.html",
      "http://example.com:8080/x?q=1",
      "http://h/cgi/s.php?a=1&b=2",
  };
  for (const char* c : cases) {
    auto url = ParseUrl(c);
    ASSERT_TRUE(url.has_value()) << c;
    auto again = ParseUrl(url->ToString());
    ASSERT_TRUE(again.has_value()) << c;
    EXPECT_EQ(*url, *again) << c;
  }
}

}  // namespace
}  // namespace mfc
