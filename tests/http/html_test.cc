#include "src/http/html.h"

#include <gtest/gtest.h>

#include "src/http/content_type.h"

namespace mfc {
namespace {

TEST(ExtractLinksTest, AnchorHref) {
  auto links = ExtractLinks(R"(<a href="/page1.html">one</a>)");
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0], "/page1.html");
}

TEST(ExtractLinksTest, MultipleTagKinds) {
  auto links = ExtractLinks(R"(
    <a href="/a.html">a</a>
    <img src="/img/x.jpg">
    <script src="/js/app.js"></script>
    <link href="/css/site.css" rel="stylesheet">
    <iframe src="/embed.html"></iframe>
  )");
  ASSERT_EQ(links.size(), 5u);
  EXPECT_EQ(links[0], "/a.html");
  EXPECT_EQ(links[1], "/img/x.jpg");
  EXPECT_EQ(links[2], "/js/app.js");
  EXPECT_EQ(links[3], "/css/site.css");
  EXPECT_EQ(links[4], "/embed.html");
}

TEST(ExtractLinksTest, SingleQuotesAndUnquoted) {
  auto links = ExtractLinks("<a href='/q.html'>q</a> <a href=/u.html>u</a>");
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], "/q.html");
  EXPECT_EQ(links[1], "/u.html");
}

TEST(ExtractLinksTest, CaseInsensitiveTagAndAttr) {
  auto links = ExtractLinks(R"(<A HREF="/caps.html">x</A><IMG SRC="/i.png">)");
  ASSERT_EQ(links.size(), 2u);
}

TEST(ExtractLinksTest, IgnoresClosingAndCommentTags) {
  auto links = ExtractLinks("<!-- <a href=\"/hidden.html\"> --></a><!doctype html>");
  EXPECT_TRUE(links.empty());
}

TEST(ExtractLinksTest, IgnoresUnrelatedAttributes) {
  auto links = ExtractLinks(R"(<div data-href="/not-a-link"></div><p src="/nope"></p>)");
  EXPECT_TRUE(links.empty());
}

TEST(ExtractLinksTest, AttributeSpacingVariants) {
  auto links = ExtractLinks(R"(<a href = "/spaced.html">x</a>)");
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0], "/spaced.html");
}

TEST(ExtractLinksTest, QueryLinksSurvive) {
  auto links = ExtractLinks(R"(<a href="/cgi/s.php?id=3&x=1">q</a>)");
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0], "/cgi/s.php?id=3&x=1");
}

TEST(ExtractLinksTest, UnterminatedTagHandled) {
  auto links = ExtractLinks("<a href=\"/x.html\"");
  EXPECT_TRUE(links.empty());
}

TEST(ExtractLinksTest, EmptyAndPlainText) {
  EXPECT_TRUE(ExtractLinks("").empty());
  EXPECT_TRUE(ExtractLinks("no tags here at all").empty());
}

TEST(ContentTypeTest, TextExtensions) {
  EXPECT_EQ(ClassifyPath("/index.html"), ContentClass::kText);
  EXPECT_EQ(ClassifyPath("/doc.txt"), ContentClass::kText);
  EXPECT_EQ(ClassifyPath("/style.css"), ContentClass::kText);
  EXPECT_EQ(ClassifyPath("/cgi/search.php"), ContentClass::kText);
  EXPECT_EQ(ClassifyPath("/"), ContentClass::kText);
  EXPECT_EQ(ClassifyPath("/noext"), ContentClass::kText);
}

TEST(ContentTypeTest, ImageExtensions) {
  EXPECT_EQ(ClassifyPath("/a.GIF"), ContentClass::kImage);
  EXPECT_EQ(ClassifyPath("/pics/b.jpeg"), ContentClass::kImage);
  EXPECT_EQ(ClassifyPath("/c.png"), ContentClass::kImage);
}

TEST(ContentTypeTest, BinaryExtensions) {
  EXPECT_EQ(ClassifyPath("/files/x.pdf"), ContentClass::kBinary);
  EXPECT_EQ(ClassifyPath("/dl/setup.exe"), ContentClass::kBinary);
  EXPECT_EQ(ClassifyPath("/r/pack.tar.gz"), ContentClass::kBinary);
  EXPECT_EQ(ClassifyPath("/movie.mp4"), ContentClass::kBinary);
}

TEST(ContentTypeTest, UnknownExtension) {
  EXPECT_EQ(ClassifyPath("/what.xyz123"), ContentClass::kUnknown);
}

TEST(ContentTypeTest, DotInDirectoryNotExtension) {
  EXPECT_EQ(ClassifyPath("/v1.2/readme"), ContentClass::kText);
}

TEST(ContentTypeTest, MimeTypes) {
  EXPECT_EQ(MimeTypeForPath("/a.html"), "text/html");
  EXPECT_EQ(MimeTypeForPath("/a.jpg"), "image/jpeg");
  EXPECT_EQ(MimeTypeForPath("/a.pdf"), "application/pdf");
  EXPECT_EQ(MimeTypeForPath("/a.unknownext"), "application/octet-stream");
}

}  // namespace
}  // namespace mfc
