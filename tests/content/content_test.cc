#include <gtest/gtest.h>

#include <deque>
#include <set>

#include "src/content/object_store.h"
#include "src/content/site_generator.h"
#include "src/http/html.h"
#include "src/http/url.h"

namespace mfc {
namespace {

TEST(ContentStoreTest, AddAndFind) {
  ContentStore store;
  WebObject obj;
  obj.path = "/a.html";
  obj.size_bytes = 10;
  store.Add(obj);
  ASSERT_NE(store.Find("/a.html"), nullptr);
  EXPECT_EQ(store.Find("/a.html")->size_bytes, 10u);
  EXPECT_EQ(store.Find("/missing"), nullptr);
}

TEST(ContentStoreTest, DuplicatePathReplaces) {
  ContentStore store;
  WebObject obj;
  obj.path = "/a";
  obj.size_bytes = 1;
  store.Add(obj);
  obj.size_bytes = 2;
  store.Add(obj);
  EXPECT_EQ(store.Size(), 1u);
  EXPECT_EQ(store.Find("/a")->size_bytes, 2u);
}

TEST(ContentStoreTest, BasePagePreference) {
  ContentStore store;
  WebObject page;
  page.path = "/other.html";
  page.content_class = ContentClass::kText;
  store.Add(page);
  EXPECT_EQ(store.BasePage()->path, "/other.html");
  WebObject index;
  index.path = "/index.html";
  index.content_class = ContentClass::kText;
  store.Add(index);
  EXPECT_EQ(store.BasePage()->path, "/index.html");
  WebObject root;
  root.path = "/";
  root.content_class = ContentClass::kText;
  store.Add(root);
  EXPECT_EQ(store.BasePage()->path, "/");
}

TEST(ContentStoreTest, EmptyStoreHasNoBasePage) {
  ContentStore store;
  EXPECT_EQ(store.BasePage(), nullptr);
}

TEST(ContentStoreTest, Aggregates) {
  ContentStore store;
  WebObject a;
  a.path = "/a";
  a.content_class = ContentClass::kText;
  a.size_bytes = 10;
  store.Add(a);
  WebObject b;
  b.path = "/b.jpg";
  b.content_class = ContentClass::kImage;
  b.size_bytes = 20;
  store.Add(b);
  WebObject c;
  c.path = "/c.php";
  c.content_class = ContentClass::kQuery;
  c.dynamic = true;
  c.size_bytes = 5;
  store.Add(c);
  EXPECT_EQ(store.TotalBytes(), 35u);
  EXPECT_EQ(store.CountOf(ContentClass::kImage), 1u);
  EXPECT_EQ(store.DynamicCount(), 1u);
}

class SiteGeneratorTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SiteGeneratorTest, GeneratesRequestedPopulation) {
  Rng rng(GetParam());
  SiteSpec spec;
  spec.page_count = 10;
  spec.image_count = 15;
  spec.binary_count = 3;
  spec.query_endpoint_count = 2;
  ContentStore store = GenerateSite(rng, spec);
  EXPECT_EQ(store.Size(), 30u);
  EXPECT_EQ(store.CountOf(ContentClass::kText), 10u);
  EXPECT_EQ(store.CountOf(ContentClass::kImage), 15u);
  EXPECT_EQ(store.CountOf(ContentClass::kBinary), 3u);
  EXPECT_EQ(store.CountOf(ContentClass::kQuery), 2u);
  EXPECT_EQ(store.DynamicCount(), 2u);
  ASSERT_NE(store.BasePage(), nullptr);
  EXPECT_EQ(store.BasePage()->path, "/");
}

TEST_P(SiteGeneratorTest, SizesWithinSpecRanges) {
  Rng rng(GetParam());
  SiteSpec spec;
  ContentStore store = GenerateSite(rng, spec);
  for (const WebObject& obj : store.Objects()) {
    switch (obj.content_class) {
      case ContentClass::kImage:
        EXPECT_GE(obj.size_bytes, spec.image_size_min);
        EXPECT_LE(obj.size_bytes, spec.image_size_max);
        break;
      case ContentClass::kBinary:
        EXPECT_GE(obj.size_bytes, spec.binary_size_min);
        EXPECT_LE(obj.size_bytes, spec.binary_size_max);
        break;
      case ContentClass::kQuery:
        EXPECT_GE(obj.size_bytes, spec.query_response_min);
        EXPECT_LE(obj.size_bytes, spec.query_response_max);
        EXPECT_GE(obj.db_rows, spec.query_rows_min);
        EXPECT_LE(obj.db_rows, spec.query_rows_max);
        break;
      case ContentClass::kText:
        EXPECT_FALSE(obj.body.empty());
        EXPECT_EQ(obj.size_bytes, obj.body.size());
        break;
      default:
        break;
    }
  }
}

TEST_P(SiteGeneratorTest, EverythingReachableFromIndexByLinkWalk) {
  Rng rng(GetParam());
  SiteSpec spec;
  spec.page_count = 12;
  ContentStore store = GenerateSite(rng, spec);

  Url root;
  root.host = "h";
  std::set<std::string> visited;
  std::deque<Url> frontier;
  frontier.push_back(root);
  visited.insert("/");
  while (!frontier.empty()) {
    Url url = frontier.front();
    frontier.pop_front();
    const WebObject* obj = store.Find(url.path);
    if (obj == nullptr || obj->body.empty()) {
      continue;
    }
    for (const std::string& link : ExtractLinks(obj->body)) {
      auto resolved = ParseUrl(link, &url);
      ASSERT_TRUE(resolved.has_value()) << link;
      if (visited.insert(resolved->path).second) {
        frontier.push_back(*resolved);
      }
    }
  }
  for (const WebObject& obj : store.Objects()) {
    EXPECT_TRUE(visited.count(obj.path) == 1) << obj.path << " unreachable";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SiteGeneratorTest, ::testing::Values(1, 2, 3, 42, 1234));

TEST(SiteGeneratorTest2, SinglePageSiteStillValid) {
  Rng rng(9);
  SiteSpec spec;
  spec.page_count = 1;
  spec.image_count = 0;
  spec.binary_count = 0;
  spec.query_endpoint_count = 0;
  ContentStore store = GenerateSite(rng, spec);
  EXPECT_EQ(store.Size(), 1u);
  EXPECT_NE(store.BasePage(), nullptr);
}

}  // namespace
}  // namespace mfc
