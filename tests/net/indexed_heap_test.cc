#include "src/net/indexed_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include "src/sim/rng.h"

namespace mfc {
namespace {

TEST(IndexedHeapTest, PopsInKeyOrder) {
  IndexedMinHeap heap;
  heap.Update(0, 3.0, 0);
  heap.Update(1, 1.0, 1);
  heap.Update(2, 2.0, 2);
  EXPECT_EQ(heap.TopItem(), 1u);
  heap.Pop();
  EXPECT_EQ(heap.TopItem(), 2u);
  heap.Pop();
  EXPECT_EQ(heap.TopItem(), 0u);
  heap.Pop();
  EXPECT_TRUE(heap.Empty());
}

TEST(IndexedHeapTest, EqualKeysBreakTiesBySeq) {
  IndexedMinHeap heap;
  heap.Update(7, 5.0, 30);
  heap.Update(3, 5.0, 10);
  heap.Update(5, 5.0, 20);
  EXPECT_EQ(heap.TopItem(), 3u);
  heap.Pop();
  EXPECT_EQ(heap.TopItem(), 5u);
  heap.Pop();
  EXPECT_EQ(heap.TopItem(), 7u);
}

TEST(IndexedHeapTest, UpdateReprioritizesBothDirections) {
  IndexedMinHeap heap;
  heap.Update(0, 1.0, 0);
  heap.Update(1, 2.0, 1);
  heap.Update(2, 3.0, 2);
  heap.Update(0, 9.0, 0);  // sink the old minimum
  EXPECT_EQ(heap.TopItem(), 1u);
  heap.Update(2, 0.5, 2);  // raise the tail to the top
  EXPECT_EQ(heap.TopItem(), 2u);
  EXPECT_DOUBLE_EQ(heap.KeyOf(0), 9.0);
  EXPECT_EQ(heap.Size(), 3u);
}

TEST(IndexedHeapTest, RemoveMiddleKeepsOrder) {
  IndexedMinHeap heap;
  for (uint32_t i = 0; i < 10; ++i) {
    heap.Update(i, static_cast<double>(i), i);
  }
  heap.Remove(4);
  heap.Remove(0);
  heap.Remove(9);
  EXPECT_FALSE(heap.Contains(4));
  std::vector<uint32_t> popped;
  while (!heap.Empty()) {
    popped.push_back(heap.TopItem());
    heap.Pop();
  }
  EXPECT_EQ(popped, (std::vector<uint32_t>{1, 2, 3, 5, 6, 7, 8}));
}

TEST(IndexedHeapTest, RemoveAbsentIsNoOp) {
  IndexedMinHeap heap;
  heap.Update(1, 1.0, 0);
  heap.Remove(2);
  heap.Remove(100);  // beyond the position index
  EXPECT_EQ(heap.Size(), 1u);
  EXPECT_EQ(heap.TopItem(), 1u);
}

TEST(IndexedHeapTest, ClearEmptiesAndAllowsReuse) {
  IndexedMinHeap heap;
  heap.Update(0, 1.0, 0);
  heap.Update(1, 2.0, 1);
  heap.Clear();
  EXPECT_TRUE(heap.Empty());
  EXPECT_FALSE(heap.Contains(0));
  heap.Update(1, 7.0, 9);
  EXPECT_EQ(heap.TopItem(), 1u);
  EXPECT_DOUBLE_EQ(heap.TopKey(), 7.0);
}

TEST(IndexedHeapTest, AssignMatchesSiftedUpdates) {
  Rng rng(0x1dbeef);
  std::vector<IndexedMinHeap::Entry> entries;
  for (uint32_t i = 0; i < 200; ++i) {
    entries.push_back({rng.Uniform(0.0, 100.0), i % 7, i});
  }
  IndexedMinHeap bulk;
  bulk.Assign(entries);
  IndexedMinHeap sifted;
  for (const auto& e : entries) {
    sifted.Update(e.item, e.key, e.seq);
  }
  ASSERT_EQ(bulk.Size(), sifted.Size());
  while (!bulk.Empty()) {
    EXPECT_EQ(bulk.TopItem(), sifted.TopItem());
    EXPECT_DOUBLE_EQ(bulk.TopKey(), sifted.TopKey());
    bulk.Pop();
    sifted.Pop();
  }
}

TEST(IndexedHeapTest, AssignReplacesPriorContents) {
  IndexedMinHeap heap;
  heap.Update(0, 1.0, 0);
  heap.Update(5, 2.0, 1);
  heap.Assign({{4.0, 0, 2}, {3.0, 1, 3}});
  EXPECT_EQ(heap.Size(), 2u);
  EXPECT_FALSE(heap.Contains(0));
  EXPECT_FALSE(heap.Contains(5));
  EXPECT_EQ(heap.TopItem(), 3u);
  heap.Pop();
  EXPECT_EQ(heap.TopItem(), 2u);
}

TEST(IndexedHeapTest, AssignEmptyClears) {
  IndexedMinHeap heap;
  heap.Update(3, 1.0, 0);
  heap.Assign({});
  EXPECT_TRUE(heap.Empty());
  EXPECT_FALSE(heap.Contains(3));
}

// Random interleaving of every operation against a multiset oracle.
TEST(IndexedHeapTest, RandomOpsMatchOracle) {
  Rng rng(0xfeed5eed);
  IndexedMinHeap heap;
  // (key, seq, item) with the heap's exact comparison order.
  std::set<std::tuple<double, uint64_t, uint32_t>> oracle;
  std::vector<bool> present(64, false);
  uint64_t seq = 0;
  auto key_of = [&](uint32_t item) {
    for (const auto& t : oracle) {
      if (std::get<2>(t) == item) {
        return std::make_pair(std::get<0>(t), std::get<1>(t));
      }
    }
    ADD_FAILURE() << "item " << item << " missing from oracle";
    return std::make_pair(0.0, uint64_t{0});
  };
  for (int op = 0; op < 5000; ++op) {
    uint32_t item = static_cast<uint32_t>(rng.NextU64() % present.size());
    switch (rng.NextU64() % 4) {
      case 0:
      case 1: {  // insert or reprioritize
        double key = rng.Uniform(0.0, 10.0);
        if (present[item]) {
          auto old = key_of(item);
          oracle.erase({old.first, old.second, item});
        }
        heap.Update(item, key, seq);
        oracle.insert({key, seq, item});
        present[item] = true;
        ++seq;
        break;
      }
      case 2: {  // remove
        heap.Remove(item);
        if (present[item]) {
          auto old = key_of(item);
          oracle.erase({old.first, old.second, item});
          present[item] = false;
        }
        break;
      }
      case 3: {  // pop
        if (!oracle.empty()) {
          auto top = *oracle.begin();
          ASSERT_EQ(heap.TopItem(), std::get<2>(top));
          ASSERT_DOUBLE_EQ(heap.TopKey(), std::get<0>(top));
          heap.Pop();
          oracle.erase(oracle.begin());
          present[std::get<2>(top)] = false;
        }
        break;
      }
    }
    ASSERT_EQ(heap.Size(), oracle.size());
    if (!oracle.empty()) {
      ASSERT_EQ(heap.TopItem(), std::get<2>(*oracle.begin()));
    }
  }
}

}  // namespace
}  // namespace mfc
