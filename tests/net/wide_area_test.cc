#include "src/net/wide_area.h"

#include <gtest/gtest.h>

namespace mfc {
namespace {

WideAreaConfig NoJitterConfig() {
  WideAreaConfig config;
  config.jitter_sigma = 0.0;
  config.control_loss_rate = 0.0;
  return config;
}

TEST(WideAreaTest, BaseRttsComeFromProfiles) {
  EventLoop loop;
  Rng rng(1);
  std::vector<ClientNetProfile> fleet(2);
  fleet[0].rtt_to_target = 0.080;
  fleet[0].rtt_to_coordinator = 0.020;
  WideAreaNetwork wan(loop, rng, NoJitterConfig(), fleet);
  EXPECT_DOUBLE_EQ(wan.BaseTargetRtt(0), 0.080);
  EXPECT_DOUBLE_EQ(wan.BaseCoordRtt(0), 0.020);
  EXPECT_DOUBLE_EQ(wan.SampleTargetOneWay(0), 0.040);
  EXPECT_DOUBLE_EQ(wan.SampleCoordOneWay(0), 0.010);
}

TEST(WideAreaTest, JitterPerturbsSamples) {
  EventLoop loop;
  Rng rng(2);
  WideAreaConfig config;
  config.jitter_sigma = 0.2;
  std::vector<ClientNetProfile> fleet(1);
  fleet[0].rtt_to_target = 0.100;
  WideAreaNetwork wan(loop, rng, config, fleet);
  bool varied = false;
  double first = wan.SampleTargetOneWay(0);
  for (int i = 0; i < 20; ++i) {
    if (std::abs(wan.SampleTargetOneWay(0) - first) > 1e-9) {
      varied = true;
    }
  }
  EXPECT_TRUE(varied);
}

TEST(WideAreaTest, DownloadDeliversAfterTransferPlusPropagation) {
  EventLoop loop;
  Rng rng(3);
  WideAreaConfig config = NoJitterConfig();
  config.server_access_bps = 1e6;
  std::vector<ClientNetProfile> fleet(1);
  fleet[0].rtt_to_target = 0.100;
  fleet[0].access_down_bps = 1e9;  // not the bottleneck
  WideAreaNetwork wan(loop, rng, config, fleet);
  SimTime done = 0.0;
  // 100 KB at 1 MB/s. Slow start: cwnd 14600B/0.1s = 146 kB/s initial cap,
  // doubling each RTT; plus final half-RTT propagation.
  wan.StartDownload(0, 100e3, [&] { done = loop.Now(); });
  loop.RunUntilIdle();
  EXPECT_GT(done, 0.1);  // strictly more than the fluid 0.1 s
  EXPECT_LT(done, 0.6);
  // Cumulative accounting went through the server link.
  EXPECT_NEAR(wan.ServerLinkCumulativeBytes(), 100e3, 1.0);
}

TEST(WideAreaTest, ConcurrentDownloadsContendOnServerLink) {
  EventLoop loop;
  Rng rng(4);
  WideAreaConfig config = NoJitterConfig();
  config.server_access_bps = 1e6;
  std::vector<ClientNetProfile> fleet(10);
  for (auto& c : fleet) {
    c.rtt_to_target = 0.020;
    c.access_down_bps = 1e9;
  }
  WideAreaNetwork wan(loop, rng, config, fleet);
  SimTime solo_done = 0.0;
  wan.StartDownload(0, 200e3, [&] { solo_done = loop.Now(); });
  loop.RunUntilIdle();

  SimTime crowd_start = loop.Now();
  std::vector<SimTime> crowd_done(10, 0.0);
  for (size_t i = 0; i < 10; ++i) {
    wan.StartDownload(i, 200e3, [&, i] { crowd_done[i] = loop.Now() - crowd_start; });
  }
  loop.RunUntilIdle();
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_GT(crowd_done[i], 2.0 * solo_done) << i;
  }
}

TEST(WideAreaTest, PopBottleneckOnlyHurtsItsClients) {
  EventLoop loop;
  Rng rng(5);
  WideAreaConfig config = NoJitterConfig();
  config.server_access_bps = 1e9;
  config.pop_bottleneck_bps = {50e3, 1e9};  // POP 0 is congested
  std::vector<ClientNetProfile> fleet(2);
  fleet[0].pop = 0;
  fleet[1].pop = 1;
  for (auto& c : fleet) {
    c.rtt_to_target = 0.020;
    c.access_down_bps = 1e9;
  }
  WideAreaNetwork wan(loop, rng, config, fleet);
  SimTime done0 = 0.0;
  SimTime done1 = 0.0;
  wan.StartDownload(0, 100e3, [&] { done0 = loop.Now(); });
  wan.StartDownload(1, 100e3, [&] { done1 = loop.Now(); });
  loop.RunUntilIdle();
  EXPECT_GT(done0, 10.0 * done1);
}

TEST(WideAreaTest, ControlMessagesArriveAfterOneWayDelay) {
  EventLoop loop;
  Rng rng(6);
  std::vector<ClientNetProfile> fleet(1);
  fleet[0].rtt_to_coordinator = 0.060;
  WideAreaNetwork wan(loop, rng, NoJitterConfig(), fleet);
  SimTime delivered = -1.0;
  wan.SendControl(0, [&] { delivered = loop.Now(); });
  loop.RunUntilIdle();
  EXPECT_NEAR(delivered, 0.030, 1e-9);
}

TEST(WideAreaTest, ControlLossDropsSomeMessages) {
  EventLoop loop;
  Rng rng(7);
  WideAreaConfig config = NoJitterConfig();
  config.control_loss_rate = 0.5;
  std::vector<ClientNetProfile> fleet(1);
  WideAreaNetwork wan(loop, rng, config, fleet);
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    wan.SendControl(0, [&] { ++delivered; });
  }
  loop.RunUntilIdle();
  EXPECT_GT(delivered, 60);
  EXPECT_LT(delivered, 140);
}

TEST(FleetFactoryTest, PlanetLabFleetShape) {
  Rng rng(8);
  auto fleet = MakePlanetLabFleet(rng, 100, 4);
  ASSERT_EQ(fleet.size(), 100u);
  for (const auto& c : fleet) {
    EXPECT_GT(c.rtt_to_target, 0.0);
    EXPECT_LE(c.rtt_to_target, 0.450);
    EXPECT_GE(c.access_down_bps, 0.5e6);
    EXPECT_LE(c.access_down_bps, 125e6);
    EXPECT_LT(c.pop, 4u);
  }
}

TEST(FleetFactoryTest, LanFleetIsUniformAndFast) {
  auto fleet = MakeLanFleet(5);
  ASSERT_EQ(fleet.size(), 5u);
  for (const auto& c : fleet) {
    EXPECT_LT(c.rtt_to_target, 0.001);
    EXPECT_GE(c.access_down_bps, 100e6);
  }
}

}  // namespace
}  // namespace mfc
