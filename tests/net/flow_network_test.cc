#include "src/net/flow_network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/sim/rng.h"

namespace mfc {
namespace {

TcpParams NoSlowStart() {
  TcpParams tcp;
  tcp.slow_start = false;
  return tcp;
}

TEST(FlowNetworkTest, SingleFlowUsesFullCapacity) {
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId link = net.AddLink(1000.0);  // 1000 B/s
  bool done = false;
  FlowId f = net.StartFlow({link}, 500.0, 0.01, NoSlowStart(), [&] { done = true; });
  EXPECT_DOUBLE_EQ(net.FlowRate(f), 1000.0);
  loop.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_NEAR(loop.Now(), 0.5, 1e-9);
}

TEST(FlowNetworkTest, TwoFlowsShareEqually) {
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId link = net.AddLink(1000.0);
  int done = 0;
  net.StartFlow({link}, 500.0, 0.01, NoSlowStart(), [&] { ++done; });
  net.StartFlow({link}, 500.0, 0.01, NoSlowStart(), [&] { ++done; });
  EXPECT_DOUBLE_EQ(net.LinkRate(link), 1000.0);
  loop.RunUntilIdle();
  EXPECT_EQ(done, 2);
  EXPECT_NEAR(loop.Now(), 1.0, 1e-9);  // both at 500 B/s
}

TEST(FlowNetworkTest, SecondFlowSpeedsUpAfterFirstCompletes) {
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId link = net.AddLink(1000.0);
  SimTime small_done = 0.0;
  SimTime big_done = 0.0;
  net.StartFlow({link}, 250.0, 0.01, NoSlowStart(), [&] { small_done = loop.Now(); });
  net.StartFlow({link}, 1000.0, 0.01, NoSlowStart(), [&] { big_done = loop.Now(); });
  loop.RunUntilIdle();
  // Shared 500/500 until small finishes at 0.5 (250B at 500B/s); big then has
  // 750B left at 1000B/s -> 0.75s more.
  EXPECT_NEAR(small_done, 0.5, 1e-9);
  EXPECT_NEAR(big_done, 1.25, 1e-9);
}

TEST(FlowNetworkTest, MaxMinWithSideBottleneck) {
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId shared = net.AddLink(10.0);
  LinkId narrow = net.AddLink(2.0);
  FlowId a = net.StartFlow({shared}, 1e6, 0.01, NoSlowStart(), [] {});
  FlowId b = net.StartFlow({shared, narrow}, 1e6, 0.01, NoSlowStart(), [] {});
  // b is limited to 2 by the narrow link; a picks up the slack: 8.
  EXPECT_NEAR(net.FlowRate(b), 2.0, 1e-9);
  EXPECT_NEAR(net.FlowRate(a), 8.0, 1e-9);
  EXPECT_NEAR(net.LinkRate(shared), 10.0, 1e-9);
}

TEST(FlowNetworkTest, AbortStopsFlowAndFreesBandwidth) {
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId link = net.AddLink(100.0);
  bool aborted_done = false;
  FlowId victim = net.StartFlow({link}, 1e9, 0.01, NoSlowStart(), [&] { aborted_done = true; });
  FlowId other = net.StartFlow({link}, 50.0, 0.01, NoSlowStart(), [] {});
  EXPECT_NEAR(net.FlowRate(other), 50.0, 1e-9);
  net.AbortFlow(victim);
  EXPECT_NEAR(net.FlowRate(other), 100.0, 1e-9);
  loop.RunUntilIdle();
  EXPECT_FALSE(aborted_done);
  EXPECT_EQ(net.ActiveFlowCount(), 0u);
}

TEST(FlowNetworkTest, CumulativeBytesMatchTransferred) {
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId link = net.AddLink(1000.0);
  net.StartFlow({link}, 300.0, 0.01, NoSlowStart(), [] {});
  net.StartFlow({link}, 700.0, 0.01, NoSlowStart(), [] {});
  loop.RunUntilIdle();
  EXPECT_NEAR(net.LinkCumulativeBytes(link), 1000.0, 1e-6);
}

TEST(FlowNetworkTest, UtilizationReflectsLoad) {
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId fat = net.AddLink(1000.0);
  LinkId thin = net.AddLink(10.0);
  net.StartFlow({fat, thin}, 1e6, 0.01, NoSlowStart(), [] {});
  EXPECT_NEAR(net.LinkUtilization(thin), 1.0, 1e-9);
  EXPECT_NEAR(net.LinkUtilization(fat), 0.01, 1e-9);
}

TEST(FlowNetworkTest, SlowStartCapsInitialRate) {
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId link = net.AddLink(1e9);  // effectively unconstrained
  TcpParams tcp;                   // slow start on, init cwnd 14600
  double rtt = 0.1;
  FlowId f = net.StartFlow({link}, 1e9, rtt, tcp, [] {});
  EXPECT_NEAR(net.FlowRate(f), 14600.0 / rtt, 1e-6);
  loop.RunUntil(0.15);  // one doubling at t=0.1
  EXPECT_NEAR(net.FlowRate(f), 2.0 * 14600.0 / rtt, 1e-6);
  loop.RunUntil(0.25);  // second doubling
  EXPECT_NEAR(net.FlowRate(f), 4.0 * 14600.0 / rtt, 1e-6);
}

TEST(FlowNetworkTest, SlowStartMakesSmallTransfersLatencyBound) {
  // A 10 KB object on a fat link: bounded by cwnd growth, not bandwidth.
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId link = net.AddLink(12.5e6);
  SimTime done_small = 0.0;
  net.StartFlow({link}, 10'000.0, 0.1, TcpParams{}, [&] { done_small = loop.Now(); });
  loop.RunUntilIdle();
  // At 14600 B per first RTT, 10 KB fits in the first window but still takes
  // 10e3/(14600/0.1) = 68 ms of paced sending.
  EXPECT_GT(done_small, 0.05);
  EXPECT_LT(done_small, 0.2);
}

TEST(FlowNetworkTest, LargeTransferReachesLinkRate) {
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId link = net.AddLink(12.5e6);
  SimTime done = 0.0;
  net.StartFlow({link}, 10e6, 0.05, TcpParams{}, [&] { done = loop.Now(); });
  loop.RunUntilIdle();
  // Ideal fluid time is 0.8 s; slow start adds a few RTTs at most.
  EXPECT_GT(done, 0.8);
  EXPECT_LT(done, 1.3);
}

// Regression: at large absolute clock values, a residual of a fraction of a
// byte must not livelock the completion timer (remaining/rate can round to
// a zero time step; see TimeQuantum).
TEST(FlowNetworkTest, NoLivelockAtLargeClockValues) {
  EventLoop loop;
  loop.ScheduleAt(1.0e6, [] {});
  loop.RunUntilIdle();  // park the clock at t = 1e6 s
  FlowNetwork net(loop);
  LinkId link = net.AddLink(8.7e7);
  bool done = false;
  net.StartFlow({link}, 400e3, 0.024, TcpParams{}, [&] { done = true; });
  // A bounded number of events must finish the transfer.
  for (int i = 0; i < 10000 && loop.RunOne(); ++i) {
  }
  EXPECT_TRUE(done);
  EXPECT_EQ(net.ActiveFlowCount(), 0u);
}

TEST(FlowNetworkTest, StaleHandlesAreSafeNoOps) {
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId link = net.AddLink(100.0);
  bool done = false;
  FlowId f = net.StartFlow({link}, 200.0, 0.01, NoSlowStart(), [&] { done = true; });
  net.AbortFlow(f);
  net.AbortFlow(f);  // second abort: id is stale, must not touch a reused slot
  EXPECT_EQ(net.FlowRate(f), 0.0);
  // The freed slot is reused; the old id must not alias the new flow.
  FlowId g = net.StartFlow({link}, 200.0, 0.01, NoSlowStart(), [] {});
  net.AbortFlow(f);
  EXPECT_GT(net.FlowRate(g), 0.0);
  net.AbortFlow(0);  // id 0 is never issued
  loop.RunUntilIdle();
  EXPECT_FALSE(done);
  EXPECT_EQ(net.ActiveFlowCount(), 0u);
}

TEST(FlowNetworkTest, StatsCountAllocatorWork) {
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId link = net.AddLink(100.0);
  EXPECT_EQ(net.Stats().reallocs, 0u);
  net.StartFlow({link}, 100.0, 0.01, NoSlowStart(), [] {});
  net.StartFlow({link}, 250.0, 0.01, NoSlowStart(), [] {});
  FlowNetworkStats after_start = net.Stats();  // copy: Stats() is a live view
  EXPECT_EQ(after_start.reallocs, 2u);
  EXPECT_GE(after_start.flows_touched, 3u);  // 1 on first pass + 2 on second
  EXPECT_GE(after_start.links_touched, 2u);
  loop.RunUntilIdle();
  const FlowNetworkStats& done = net.Stats();
  EXPECT_GE(done.reallocs, after_start.reallocs + 2);  // two completions
  EXPECT_LE(done.full_reallocs, done.reallocs);
  EXPECT_EQ(done.no_progress, 0u);
}

TEST(FlowNetworkTest, LinkRateAggregateStaysExactThroughChurn) {
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId shared = net.AddLink(100.0);
  LinkId side = net.AddLink(40.0);
  Rng rng(0xc0ffee);
  std::vector<FlowId> live;
  for (int round = 0; round < 200; ++round) {
    if (!live.empty() && rng.Chance(0.4)) {
      size_t pick = rng.NextBelow(live.size());
      net.AbortFlow(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      std::vector<LinkId> path{shared};
      if (rng.Chance(0.5)) {
        path.push_back(side);
      }
      live.push_back(net.StartFlow(path, rng.Uniform(1e3, 1e6), 0.02,
                                   rng.Chance(0.5) ? TcpParams{} : NoSlowStart(), [] {}));
    }
    // O(1) aggregate must equal the sum over live flows crossing the link
    // (debug builds also assert this inside LinkRate).
    double sum_shared = 0.0;
    for (FlowId f : live) {
      sum_shared += net.FlowRate(f);
    }
    EXPECT_NEAR(net.LinkRate(shared), sum_shared, 1e-6 * std::max(1.0, sum_shared));
    EXPECT_LE(net.LinkRate(side), net.LinkCapacity(side) + 1e-6);
  }
  loop.RunUntilIdle();
  EXPECT_EQ(net.ActiveFlowCount(), 0u);
  EXPECT_EQ(net.LinkRate(shared), 0.0);
  EXPECT_EQ(net.LinkRate(side), 0.0);
}

// Property sweep: random flow sets never violate capacity, and max-min is
// work-conserving on the bottleneck.
class FlowConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(FlowConservationTest, CapacityNeverExceeded) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  EventLoop loop;
  FlowNetwork net(loop);
  std::vector<LinkId> links;
  size_t link_count = 3 + rng.NextBelow(4);
  for (size_t i = 0; i < link_count; ++i) {
    links.push_back(net.AddLink(rng.Uniform(10.0, 1000.0)));
  }
  std::vector<FlowId> flows;
  size_t flow_count = 2 + rng.NextBelow(20);
  for (size_t i = 0; i < flow_count; ++i) {
    std::vector<LinkId> path;
    path.push_back(links[rng.NextBelow(links.size())]);
    LinkId second = links[rng.NextBelow(links.size())];
    if (second != path[0]) {
      path.push_back(second);
    }
    flows.push_back(net.StartFlow(path, rng.Uniform(100.0, 10000.0), 0.01,
                                  rng.Chance(0.5) ? TcpParams{} : NoSlowStart(), [] {}));
  }
  for (size_t i = 0; i < links.size(); ++i) {
    EXPECT_LE(net.LinkRate(links[i]), net.LinkCapacity(links[i]) + 1e-6);
  }
  // Every flow makes progress.
  for (FlowId f : flows) {
    EXPECT_GT(net.FlowRate(f), 0.0);
  }
  loop.RunUntilIdle();
  EXPECT_EQ(net.ActiveFlowCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservationTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace mfc
