// Randomized differential test: the incremental component-restricted
// allocator vs a forced full-recompute oracle (set_force_full_reallocate),
// driven through identical seeded workloads of flow arrivals, aborts, and
// natural completions over multi-bottleneck topologies.
//
// On a connected topology every incremental pass covers the whole graph, so
// the arithmetic is the historical full pass move for move and the results
// must match to the bit. On a disconnected topology the incremental
// allocator legitimately advances untouched components lazily, which regroups
// floating-point sums; there the completion order must still match exactly
// and times/rates to a tight relative tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/net/flow_network.h"
#include "src/sim/rng.h"

namespace mfc {
namespace {

struct Completion {
  int ordinal = 0;      // arrival index
  SimTime when = 0.0;
};

// One side of the comparison: a loop, a network, and the driver state that
// replays a scripted workload against it.
struct Side {
  EventLoop loop;
  FlowNetwork net{loop};
  std::vector<FlowId> ids;  // by arrival ordinal; live or stale
  std::vector<Completion> completions;
};

struct Op {
  SimTime at = 0.0;
  bool is_abort = false;
  // Arrival fields.
  std::vector<LinkId> path;
  double bytes = 0.0;
  double rtt = 0.0;
  bool slow_start = true;
  // Abort field: arrival ordinal to abort (may already be complete — the
  // generation-checked id makes that a no-op, which is part of the test).
  int target = 0;
};

// Builds the same link set on both sides. |disjoint| splits the clients
// across two servers with no shared link (two components); otherwise all
// paths share one server access link, optionally through one of several pop
// bottlenecks (multi-bottleneck, still connected).
struct Topology {
  std::vector<double> capacities;
  // path = {server(component), pop (maybe), client}
  std::vector<LinkId> PathFor(Rng& rng, int client, bool disjoint) const {
    std::vector<LinkId> path;
    if (disjoint) {
      path.push_back(client < kClients / 2 ? 0 : 1);
    } else {
      path.push_back(0);
      if (rng.Chance(0.5)) {
        path.push_back(2 + rng.NextBelow(kPops));
      }
    }
    path.push_back(kFixed + static_cast<LinkId>(client));
    return path;
  }
  static constexpr int kClients = 24;
  static constexpr LinkId kPops = 3;
  static constexpr LinkId kFixed = 2 + kPops;  // servers + pops
};

std::vector<Op> MakeScript(uint64_t seed, size_t arrivals, bool disjoint) {
  Rng rng(seed);
  Topology topo;
  std::vector<Op> ops;
  SimTime t = 0.0;
  int started = 0;
  while (ops.size() < arrivals) {
    t += rng.Uniform(0.0005, 0.02);
    Op op;
    op.at = t;
    if (started > 4 && rng.Chance(0.15)) {
      op.is_abort = true;
      op.target = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(started)));
    } else {
      op.path = topo.PathFor(rng, static_cast<int>(rng.NextBelow(Topology::kClients)),
                             disjoint);
      op.bytes = rng.Uniform(2e3, 4e5);
      op.rtt = rng.Uniform(0.01, 0.25);
      op.slow_start = rng.Chance(0.8);
      ++started;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

void BuildLinks(FlowNetwork& net) {
  net.AddLink(2.5e5);  // server A access
  net.AddLink(2.0e5);  // server B access (only used by the disjoint script)
  for (LinkId p = 0; p < Topology::kPops; ++p) {
    net.AddLink(1.2e5 + 3e4 * static_cast<double>(p));  // pop bottlenecks
  }
  for (int c = 0; c < Topology::kClients; ++c) {
    net.AddLink(6e4 + 1e4 * static_cast<double>(c % 5));  // client access
  }
}

// Replays |ops| against |side|, recording completions as (ordinal, time).
void Run(Side& side, const std::vector<Op>& ops) {
  BuildLinks(side.net);
  int ordinal = 0;
  for (const Op& op : ops) {
    if (op.is_abort) {
      int target = op.target;
      side.loop.ScheduleAt(op.at, [&side, target] {
        side.net.AbortFlow(side.ids[static_cast<size_t>(target)]);
      });
      continue;
    }
    int mine = ordinal++;
    // Capture by value: the script outlives the lambda, but keep it simple.
    std::vector<LinkId> path = op.path;
    double bytes = op.bytes;
    double rtt = op.rtt;
    TcpParams tcp;
    tcp.slow_start = op.slow_start;
    side.loop.ScheduleAt(op.at, [&side, mine, path, bytes, rtt, tcp] {
      if (side.ids.size() <= static_cast<size_t>(mine)) {
        side.ids.resize(static_cast<size_t>(mine) + 1, 0);
      }
      side.ids[static_cast<size_t>(mine)] =
          side.net.StartFlow(path, bytes, rtt, tcp, [&side, mine] {
            side.completions.push_back({mine, side.loop.Now()});
          });
    });
  }
  side.loop.RunUntilIdle();
}

void Compare(uint64_t seed, size_t arrivals, bool disjoint, bool exact) {
  std::vector<Op> ops = MakeScript(seed, arrivals, disjoint);
  Side incremental;
  Side oracle;
  oracle.net.set_force_full_reallocate(true);
  Run(incremental, ops);
  Run(oracle, ops);

  ASSERT_EQ(incremental.completions.size(), oracle.completions.size());
  for (size_t i = 0; i < incremental.completions.size(); ++i) {
    ASSERT_EQ(incremental.completions[i].ordinal, oracle.completions[i].ordinal)
        << "completion order diverged at index " << i;
    double a = incremental.completions[i].when;
    double b = oracle.completions[i].when;
    if (exact) {
      ASSERT_EQ(a, b) << "completion time diverged for ordinal "
                      << incremental.completions[i].ordinal;
    } else {
      ASSERT_NEAR(a, b, 1e-9 * std::max(1.0, std::abs(b)))
          << "completion time diverged for ordinal "
          << incremental.completions[i].ordinal;
    }
  }
  if (exact) {
    ASSERT_EQ(incremental.loop.Now(), oracle.loop.Now());
  } else {
    ASSERT_NEAR(incremental.loop.Now(), oracle.loop.Now(),
                1e-9 * std::max(1.0, oracle.loop.Now()));
  }

  // Every flow either completed or was aborted: rates must agree trivially,
  // and per-link cumulative byte counts must agree as a whole-run integral
  // of the allocation history.
  for (LinkId l = 0; l < Topology::kFixed + Topology::kClients; ++l) {
    double a = incremental.net.LinkCumulativeBytes(l);
    double b = oracle.net.LinkCumulativeBytes(l);
    if (exact) {
      EXPECT_EQ(a, b) << "cumulative bytes diverged on link " << l;
    } else {
      EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::abs(b)))
          << "cumulative bytes diverged on link " << l;
    }
  }
  EXPECT_EQ(incremental.net.ActiveFlowCount(), 0u);
  EXPECT_EQ(oracle.net.ActiveFlowCount(), 0u);

  // Same event sequence on both sides, and the incremental side never does
  // more component work than the oracle's full graph.
  const FlowNetworkStats& si = incremental.net.Stats();
  const FlowNetworkStats& so = oracle.net.Stats();
  EXPECT_EQ(si.reallocs, so.reallocs);
  EXPECT_LE(si.flows_touched, so.flows_touched);
  EXPECT_EQ(si.no_progress, 0u);
  EXPECT_EQ(so.no_progress, 0u);
}

// Connected multi-bottleneck graph: every incremental pass covers the whole
// component, so the allocator must reproduce the oracle bit-for-bit.
TEST(FlowNetworkDifferentialTest, SharedBottleneckExactMatch) {
  Compare(/*seed=*/0x5eed0001, /*arrivals=*/10000, /*disjoint=*/false, /*exact=*/true);
}

TEST(FlowNetworkDifferentialTest, SharedBottleneckSecondSeed) {
  Compare(/*seed=*/0xabcde123, /*arrivals=*/2000, /*disjoint=*/false, /*exact=*/true);
}

// Two disconnected server components: passes restricted to one component
// advance the other lazily, which regroups sums — order must still match
// exactly and times to a tight tolerance.
TEST(FlowNetworkDifferentialTest, DisjointComponentsMatchWithinTolerance) {
  Compare(/*seed=*/0x5eed0002, /*arrivals=*/4000, /*disjoint=*/true, /*exact=*/false);
}

}  // namespace
}  // namespace mfc
