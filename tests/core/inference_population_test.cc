#include <gtest/gtest.h>

#include "src/core/inference.h"
#include "src/core/population.h"
#include "src/telemetry/stats.h"

namespace mfc {
namespace {

StageResult MakeStage(StageKind kind, bool stopped, size_t stop_size, size_t max_tested) {
  StageResult stage;
  stage.kind = kind;
  stage.stopped = stopped;
  stage.stopping_crowd_size = stop_size;
  stage.max_crowd_tested = max_tested;
  return stage;
}

TEST(InferenceTest, NoStopEverywhereIsWellProvisioned) {
  ExperimentResult result;
  result.stages.push_back(MakeStage(StageKind::kBase, false, 0, 50));
  result.stages.push_back(MakeStage(StageKind::kSmallQuery, false, 0, 50));
  result.stages.push_back(MakeStage(StageKind::kLargeObject, false, 0, 50));
  InferenceReport report = AnalyzeExperiment(result, ExperimentConfig{});
  EXPECT_FALSE(report.AnyConstraint());
  bool found = false;
  for (const auto& note : report.notes) {
    if (note.find("well-provisioned") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(InferenceTest, QueryConstraintFlagsDdosExposure) {
  ExperimentResult result;
  result.stages.push_back(MakeStage(StageKind::kSmallQuery, true, 20, 20));
  result.stages.push_back(MakeStage(StageKind::kLargeObject, false, 0, 50));
  InferenceReport report = AnalyzeExperiment(result, ExperimentConfig{});
  EXPECT_TRUE(report.AnyConstraint());
  bool found = false;
  for (const auto& note : report.notes) {
    if (note.find("application-level") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(InferenceTest, BaseVsLargeObjectDiagnosesRequestHandling) {
  // The Univ-3 video-download incident.
  ExperimentResult result;
  result.stages.push_back(MakeStage(StageKind::kBase, true, 30, 30));
  result.stages.push_back(MakeStage(StageKind::kLargeObject, false, 0, 50));
  InferenceReport report = AnalyzeExperiment(result, ExperimentConfig{});
  bool found = false;
  for (const auto& note : report.notes) {
    if (note.find("request handling") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(InferenceTest, AbortedExperimentExplains) {
  ExperimentResult result;
  result.aborted = true;
  result.abort_reason = "only 12 clients";
  InferenceReport report = AnalyzeExperiment(result, ExperimentConfig{});
  EXPECT_TRUE(report.assessments.empty());
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes[0].find("aborted"), std::string::npos);
}

TEST(InferenceTest, TextReportMentionsEveryStage) {
  ExperimentResult result;
  result.stages.push_back(MakeStage(StageKind::kBase, true, 25, 25));
  result.stages.push_back(MakeStage(StageKind::kSmallQuery, false, 0, 50));
  InferenceReport report = AnalyzeExperiment(result, ExperimentConfig{});
  std::string text = report.ToText();
  EXPECT_NE(text.find("Base"), std::string::npos);
  EXPECT_NE(text.find("SmallQuery"), std::string::npos);
  EXPECT_NE(text.find("25"), std::string::npos);
}

TEST(InferenceTest, SubsystemNames) {
  EXPECT_EQ(SubsystemFor(StageKind::kBase), "basic HTTP request processing");
  EXPECT_EQ(SubsystemFor(StageKind::kSmallQuery), "back-end data processing sub-system");
  EXPECT_EQ(SubsystemFor(StageKind::kLargeObject), "outbound access bandwidth");
}

TEST(PopulationTest, CohortNames) {
  EXPECT_EQ(CohortName(Cohort::kRank1To1K), "Quantcast 1-1K");
  EXPECT_EQ(CohortName(Cohort::kPhishing), "Phishing");
}

TEST(PopulationTest, SampledSitesAreWellFormed) {
  Rng rng(11);
  for (Cohort cohort : {Cohort::kRank1To1K, Cohort::kRank1KTo10K, Cohort::kRank10KTo100K,
                        Cohort::kRank100KTo1M, Cohort::kStartup, Cohort::kPhishing}) {
    for (int i = 0; i < 20; ++i) {
      SiteInstance site = SampleSite(rng, cohort);
      EXPECT_GT(site.server.request_parse_cpu_s, 0.0);
      EXPECT_GT(site.server.head_cpu_s, 0.0);
      EXPECT_LE(site.server.head_cpu_s, 0.08);
      EXPECT_GT(site.server_access_bps, 0.0);
      EXPECT_GE(site.site.query_rows_min, 50u);
      EXPECT_GT(site.base_knee, 0.0);
      EXPECT_GT(site.query_knee, 0.0);
      EXPECT_GT(site.bandwidth_knee, 0.0);
    }
  }
}

TEST(PopulationTest, PopularCohortsAreBetterProvisionedOnMedian) {
  Rng rng(13);
  auto median_knee = [&rng](Cohort cohort) {
    std::vector<double> base;
    std::vector<double> query;
    for (int i = 0; i < 300; ++i) {
      SiteInstance site = SampleSite(rng, cohort);
      base.push_back(site.base_knee);
      query.push_back(site.query_knee);
    }
    return std::pair<double, double>(Median(base), Median(query));
  };
  auto top = median_knee(Cohort::kRank1To1K);
  auto mid = median_knee(Cohort::kRank10KTo100K);
  auto low = median_knee(Cohort::kRank100KTo1M);
  EXPECT_GT(top.first, mid.first);
  EXPECT_GT(mid.first, low.first);
  EXPECT_GT(top.second, mid.second);
  EXPECT_GT(mid.second, low.second);
}

TEST(PopulationTest, PhishingResemblesLowRankBand) {
  Rng rng(17);
  std::vector<double> phishing;
  std::vector<double> low;
  for (int i = 0; i < 300; ++i) {
    phishing.push_back(SampleSite(rng, Cohort::kPhishing).query_knee);
    low.push_back(SampleSite(rng, Cohort::kRank100KTo1M).query_knee);
  }
  double ratio = Median(phishing) / Median(low);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(PopulationTest, NamedProfilesMatchPaperDescriptions) {
  SiteInstance qtnp = MakeQtnpProfile();
  EXPECT_GT(qtnp.server.head_cpu_s, qtnp.server.request_parse_cpu_s);
  EXPECT_GT(qtnp.server.db_dedicated_cores, 0u);
  EXPECT_EQ(qtnp.replicas, 1u);

  SiteInstance qtp = MakeQtpProfile();
  EXPECT_EQ(qtp.replicas, 16u);
  EXPECT_GT(qtp.server_access_bps, qtnp.server_access_bps);

  SiteInstance univ1 = MakeUniv1Profile();
  EXPECT_LT(univ1.base_knee, 10.0);

  SiteInstance univ2 = MakeUniv2Profile();
  EXPECT_GT(univ2.server.per_connection_cpu_s, 0.0);
  EXPECT_DOUBLE_EQ(univ2.server_access_bps, 125e6);

  SiteInstance univ3 = MakeUniv3Profile();
  EXPECT_DOUBLE_EQ(univ3.server.db.query_cache_bytes, 0.0);
  EXPECT_LT(univ3.query_knee, univ3.base_knee);

  SiteInstance lab = MakeLabValidationProfile();
  EXPECT_DOUBLE_EQ(lab.server_access_bps, 12.5e6);
  EXPECT_EQ(lab.site.query_rows_min, 50'000u);
  EXPECT_EQ(lab.server.cgi_model, CgiModel::kFastCgi);
}

}  // namespace
}  // namespace mfc
