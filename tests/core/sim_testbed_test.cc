#include "src/core/sim_testbed.h"

#include <gtest/gtest.h>

#include "src/content/site_generator.h"
#include "src/core/sync_scheduler.h"
#include "src/server/synthetic_server.h"
#include "src/server/web_server.h"
#include "src/telemetry/arrival_log.h"

namespace mfc {
namespace {

TestbedConfig QuietConfig() {
  TestbedConfig config;
  config.wan.jitter_sigma = 0.0;
  config.wan.control_loss_rate = 0.0;
  config.wan.server_access_bps = 12.5e6;
  return config;
}

std::vector<ClientNetProfile> UniformFleet(size_t n, SimDuration rtt = 0.080) {
  std::vector<ClientNetProfile> fleet(n);
  for (auto& c : fleet) {
    c.rtt_to_target = rtt;
    c.rtt_to_coordinator = 0.040;
    c.access_down_bps = 1e9;
  }
  return fleet;
}

ContentStore LabSite() {
  Rng rng(3);
  SiteSpec spec;
  spec.page_count = 3;
  spec.image_count = 2;
  spec.binary_count = 1;
  spec.binary_size_min = 100 * 1024;
  spec.binary_size_max = 100 * 1024;
  spec.query_endpoint_count = 1;
  return GenerateSite(rng, spec);
}

TEST(SimTestbedTest, FetchOnceMeasuresHandshakePlusServiceTime) {
  EventLoop* loop = nullptr;
  ContentStore content = LabSite();
  // Synthetic zero-delay server: response time == network time only.
  SimTestbed* testbed_ptr = nullptr;
  (void)loop;
  (void)testbed_ptr;

  // Build against a synthetic server with no service delay.
  struct Wrapper {
    std::unique_ptr<SyntheticModelServer> server;
  } wrapper;
  TestbedConfig config = QuietConfig();
  // Two-phase init: SimTestbed needs the target at construction; allocate a
  // holder whose inner server is created against the testbed's loop.
  class LateTarget : public HttpTarget {
   public:
    HttpTarget* inner = nullptr;
    void OnRequest(const HttpRequest& request, bool is_mfc,
                   ResponseTransport transport) override {
      inner->OnRequest(request, is_mfc, std::move(transport));
    }
  };
  LateTarget late;
  SimTestbed testbed(1, config, UniformFleet(5), late);
  wrapper.server =
      std::make_unique<SyntheticModelServer>(testbed.Loop(), ConstantModel(0.0), 0.0, 100.0);
  late.inner = wrapper.server.get();

  HttpRequest req;
  req.method = HttpMethod::kHead;
  req.target = "/";
  RequestSample sample = testbed.FetchOnce(0, req);
  EXPECT_FALSE(sample.timed_out);
  EXPECT_EQ(sample.code, HttpStatus::kOk);
  // 1.5 RTT to the server + transfer + 0.5 RTT back: >= 2 RTT = 160 ms.
  EXPECT_GE(sample.response_time, 0.160 - 1e-9);
  EXPECT_LT(sample.response_time, 0.250);
}

TEST(SimTestbedTest, SlowServerTriggersClientKillTimer) {
  TestbedConfig config = QuietConfig();
  class BlackHole : public HttpTarget {
   public:
    void OnRequest(const HttpRequest&, bool, ResponseTransport) override {
      // Never responds; the transport is dropped.
    }
  };
  BlackHole hole;
  SimTestbed testbed(2, config, UniformFleet(3), hole);
  testbed.set_request_timeout(Seconds(10));
  HttpRequest req;
  req.target = "/";
  SimTime start = testbed.Now();
  RequestSample sample = testbed.FetchOnce(0, req);
  EXPECT_TRUE(sample.timed_out);
  EXPECT_EQ(sample.code, HttpStatus::kClientTimeout);
  EXPECT_NEAR(sample.response_time, 10.0, 1e-9);
  EXPECT_NEAR(testbed.Now() - start, 10.0, 1e-9);
}

TEST(SimTestbedTest, ProbeClientsFindsWholeQuietFleet) {
  TestbedConfig config = QuietConfig();
  class Null : public HttpTarget {
   public:
    void OnRequest(const HttpRequest&, bool, ResponseTransport t) override {
      t(HttpStatus::kOk, 100.0, [] {});
    }
  };
  Null target;
  SimTestbed testbed(3, config, UniformFleet(60), target);
  EXPECT_EQ(testbed.ProbeClients(Seconds(1)).size(), 60u);
}

TEST(SimTestbedTest, ControlLossShrinksProbeResponses) {
  TestbedConfig config = QuietConfig();
  config.wan.control_loss_rate = 0.4;
  class Null : public HttpTarget {
   public:
    void OnRequest(const HttpRequest&, bool, ResponseTransport t) override {
      t(HttpStatus::kOk, 100.0, [] {});
    }
  };
  Null target;
  SimTestbed testbed(4, config, UniformFleet(100), target);
  size_t responsive = testbed.ProbeClients(Seconds(1)).size();
  EXPECT_LT(responsive, 60u);   // ~0.36 expected survival
  EXPECT_GT(responsive, 15u);
}

TEST(SimTestbedTest, ExecuteCrowdSynchronizesArrivals) {
  TestbedConfig config = QuietConfig();
  config.wan.jitter_sigma = 0.03;  // realistic jitter
  class Late2 : public HttpTarget {
   public:
    HttpTarget* inner = nullptr;
    void OnRequest(const HttpRequest& r, bool m, ResponseTransport t) override {
      inner->OnRequest(r, m, std::move(t));
    }
  };
  Late2 late;
  Rng fleet_rng(77);
  SimTestbed testbed(5, config, MakePlanetLabFleet(fleet_rng, 45, 0), late);
  SyntheticModelServer server(testbed.Loop(), ConstantModel(0.0), 0.001, 200.0);
  late.inner = &server;

  // Build latency estimates the way the coordinator would.
  std::vector<ClientLatencyEstimate> latencies;
  for (size_t i = 0; i < 45; ++i) {
    latencies.push_back(
        ClientLatencyEstimate{i, testbed.MeasureCoordRtt(i), testbed.MeasureTargetRtt(i)});
  }
  SimTime arrival = testbed.Now() + 15.0;
  auto dispatch = ComputeDispatchTimes(latencies, arrival);
  std::vector<CrowdRequestPlan> plans;
  for (size_t i = 0; i < 45; ++i) {
    CrowdRequestPlan plan;
    plan.client_id = i;
    plan.request.method = HttpMethod::kHead;
    plan.request.target = "/";
    plan.command_send_time = dispatch[i].command_send_time;
    plan.intended_arrival = dispatch[i].intended_arrival;
    plans.push_back(plan);
  }
  auto samples = testbed.ExecuteCrowd(plans, arrival + 11.0);
  EXPECT_EQ(samples.size(), 45u);

  // Figure 3's claim: the bulk of requests arrive within tens of ms.
  ASSERT_EQ(server.Arrivals().size(), 45u);
  ArrivalSpread spread = AnalyzeArrivals(server.Arrivals());
  EXPECT_LT(spread.middle90_spread, 0.100);
  EXPECT_GT(MaxFractionWithinWindow(server.Arrivals(), 0.030), 0.6);
}

TEST(SimTestbedTest, CrawlFetchReturnsRealPageBodies) {
  TestbedConfig config = QuietConfig();
  ContentStore content = LabSite();
  class Late3 : public HttpTarget {
   public:
    HttpTarget* inner = nullptr;
    const ContentStore* content = nullptr;
    void OnRequest(const HttpRequest& r, bool m, ResponseTransport t) override {
      inner->OnRequest(r, m, std::move(t));
    }
    const ContentStore* Content() const override { return content; }
  };
  Late3 late;
  late.content = &content;
  SimTestbed testbed(6, config, UniformFleet(3), late);
  WebServerConfig server_config;
  WebServer server(testbed.Loop(), server_config, &content);
  late.inner = &server;

  HttpRequest get;
  get.method = HttpMethod::kGet;
  get.target = "/";
  HttpResponse response = testbed.Fetch(get);
  EXPECT_EQ(response.status, HttpStatus::kOk);
  EXPECT_EQ(response.body, content.Find("/")->body);
  EXPECT_EQ(response.headers.ContentLength().value(), content.Find("/")->size_bytes);

  // HEAD of the binary reports its size without a body.
  const WebObject* big = nullptr;
  for (const auto& object : content.Objects()) {
    if (object.content_class == ContentClass::kBinary) {
      big = &object;
    }
  }
  ASSERT_NE(big, nullptr);
  HttpRequest head;
  head.method = HttpMethod::kHead;
  head.target = big->path;
  HttpResponse head_response = testbed.Fetch(head);
  EXPECT_EQ(head_response.status, HttpStatus::kOk);
  EXPECT_TRUE(head_response.body.empty());
  EXPECT_EQ(head_response.headers.ContentLength().value(), big->size_bytes);

  // Unknown path is a 404.
  HttpRequest missing;
  missing.target = "/definitely-not-there";
  EXPECT_EQ(testbed.Fetch(missing).status, HttpStatus::kNotFound);
}

}  // namespace
}  // namespace mfc
