// Sharded, streaming surveys (DESIGN.md §12): collision-free seed
// derivation, on-demand site streaming, and merging shard journals back into
// a byte-identical single-process run.
#include "src/core/shard_merge.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/export.h"
#include "src/core/journal/journal.h"
#include "src/core/population.h"
#include "src/core/survey.h"
#include "src/sim/rng.h"

namespace mfc {
namespace {

std::string TempPath(const std::string& name) { return testing::TempDir() + name; }

std::string Slurp(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string contents;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  fclose(f);
  return contents;
}

void Spit(const std::string& path, const std::string& contents) {
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  fwrite(contents.data(), 1, contents.size(), f);
  fclose(f);
}

// ---- seed derivation ------------------------------------------------------

// The regression the PR exists for: under the historical seed * 1000 + i
// scheme, site 1000 of survey seed s ran with exactly the seed of site 0 of
// survey seed s + 1 — two "independent" surveys shared experiments. The
// SplitMix64 derivation must not alias those pairs.
TEST(SeedDerivationTest, CrossSurveyCollisionIsGone) {
  constexpr Cohort kCohort = Cohort::kStartup;
  for (uint64_t s : {1ull, 7ull, 901ull, 123456ull}) {
    // The legacy collision this replaces, stated as arithmetic:
    ASSERT_EQ(s * 1000 + 1000, (s + 1) * 1000 + 0);
    EXPECT_NE(SiteExperimentSeed(s, kCohort, 1000), SiteExperimentSeed(s + 1, kCohort, 0));
    EXPECT_NE(SiteSampleSeed(s, kCohort, 1000), SiteSampleSeed(s + 1, kCohort, 0));
  }
}

TEST(SeedDerivationTest, TriplesAreDistinctAcrossSeedCohortAndIndex) {
  std::set<uint64_t> seen;
  size_t count = 0;
  for (uint64_t seed : {1ull, 2ull, 1000001ull}) {
    for (Cohort cohort : {Cohort::kRank1To1K, Cohort::kStartup, Cohort::kLongTail}) {
      for (uint64_t index = 0; index < 500; ++index) {
        seen.insert(SiteExperimentSeed(seed, cohort, index));
        seen.insert(SiteSampleSeed(seed, cohort, index));
        count += 2;
      }
    }
  }
  // Sample and experiment domains are separated, so every derived seed in
  // this grid is unique.
  EXPECT_EQ(seen.size(), count);
}

TEST(SeedDerivationTest, SplitMix64MatchesReferenceVectors) {
  // Reference values from the canonical SplitMix64 (Steele et al.), seed 0
  // and 1: the Python reimplementation in tools/check_shard_merge.py checks
  // against the same constants.
  EXPECT_EQ(SplitMix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64(1), 0x910a2dec89025cc1ULL);
}

// ---- SiteStream -----------------------------------------------------------

TEST(SiteStreamTest, LegacyModeReproducesSharedRngLoop) {
  constexpr uint64_t kSeed = 777;
  constexpr size_t kServers = 8;
  SiteStream stream(Cohort::kStartup, kSeed, kServers, /*legacy_seeds=*/true);
  EXPECT_EQ(stream.MaterializedCount(), kServers);
  Rng rng(kSeed);
  for (size_t i = 0; i < kServers; ++i) {
    SiteInstance expect = SampleSite(rng, Cohort::kStartup);
    SiteInstance got = stream.Site(i);
    EXPECT_EQ(got.base_knee, expect.base_knee) << i;
    EXPECT_EQ(got.query_knee, expect.query_knee) << i;
    EXPECT_EQ(got.bandwidth_knee, expect.bandwidth_knee) << i;
    EXPECT_EQ(got.server_access_bps, expect.server_access_bps) << i;
    EXPECT_EQ(stream.ExperimentSeed(i), kSeed * 1000 + i) << i;
  }
}

TEST(SiteStreamTest, StreamingModeIsPureAndHoldsNoInstances) {
  constexpr uint64_t kSeed = 41;
  constexpr size_t kServers = 64;
  SiteStream stream(Cohort::kPhishing, kSeed, kServers, /*legacy_seeds=*/false);
  // Nothing is materialized up front or by access — that is the whole point
  // of streaming toward 1M-site surveys.
  EXPECT_EQ(stream.MaterializedCount(), 0u);
  // Site i is a pure function of (seed, cohort, i): any access order, any
  // number of accesses, same instance.
  for (size_t i : {size_t{63}, size_t{0}, size_t{17}, size_t{63}, size_t{0}}) {
    SiteInstance a = stream.Site(i);
    SiteInstance b = SampleSiteAt(kSeed, Cohort::kPhishing, i);
    EXPECT_EQ(a.base_knee, b.base_knee) << i;
    EXPECT_EQ(a.query_knee, b.query_knee) << i;
    EXPECT_EQ(a.server_access_bps, b.server_access_bps) << i;
    EXPECT_EQ(stream.ExperimentSeed(i), SiteExperimentSeed(kSeed, Cohort::kPhishing, i)) << i;
  }
  EXPECT_EQ(stream.MaterializedCount(), 0u);
}

TEST(SiteStreamTest, LongTailProvisioningDegradesWithRank) {
  // The long-tail synthesizer draws rank-dependent knees: averaged over many
  // sites, the deep tail (rank ~900k) must be provisioned clearly below the
  // head of the band (rank ~1), and every site carries a bounded organic
  // session rate.
  constexpr size_t kSample = 200;
  double head = 0.0, tail = 0.0;
  for (size_t i = 0; i < kSample; ++i) {
    SiteInstance h = SampleSiteAt(5, Cohort::kLongTail, i);
    SiteInstance t = SampleSiteAt(5, Cohort::kLongTail, 900000 + i);
    head += h.base_knee;
    tail += t.base_knee;
    for (const SiteInstance* s : {&h, &t}) {
      EXPECT_GE(s->background_rps, 0.0);
      EXPECT_LE(s->background_rps, 40.0);
      EXPECT_GT(s->base_knee, 0.0);
    }
  }
  EXPECT_LT(tail, 0.6 * head);
}

// ---- sharded runs at the API level ---------------------------------------

constexpr Cohort kCohort = Cohort::kStartup;
constexpr StageKind kStage = StageKind::kBase;
constexpr size_t kServers = 6;
constexpr size_t kMaxCrowd = 20;
constexpr uint64_t kSeed = 901;
constexpr char kTool[] = "shard_merge_test";
constexpr char kPrint[] = "trace=1;metrics=1";

std::string EncodeAll(const std::vector<ExperimentResult>& results) {
  std::string all;
  for (const ExperimentResult& r : results) {
    all += EncodeExperimentResult(r);
    all += '\n';
  }
  return all;
}

// A k-shard partition, run shard by shard with per_site slots combined,
// reproduces the unsharded run exactly — breakdown, per-site results, and
// the folded telemetry bytes.
TEST(ShardedSurveyTest, ShardPartitionReproducesSingleRun) {
  SurveyTelemetry single_telemetry;
  single_telemetry.collect_trace = true;
  single_telemetry.collect_metrics = true;
  std::vector<ExperimentResult> single_sites;
  SurveyBreakdown single = RunSurveyCohortParallel(kCohort, kStage, kServers, kMaxCrowd, kSeed,
                                                   2, &single_sites, &single_telemetry);

  for (size_t shards : {size_t{2}, size_t{3}, size_t{4}}) {
    SurveyTelemetry sharded_telemetry;
    sharded_telemetry.collect_trace = true;
    sharded_telemetry.collect_metrics = true;
    std::vector<ExperimentResult> combined(kServers);
    SurveyBreakdown total;
    total.cohort = kCohort;
    for (size_t shard = 0; shard < shards; ++shard) {
      SurveyRunOptions run;
      run.shards = shards;
      run.shard_index = shard;
      // Each shard's fold starts from the cohort's pid base, exactly like a
      // separate process would.
      sharded_telemetry.next_pid = 0;
      std::vector<ExperimentResult> slice;
      SurveyBreakdown b = RunSurveyCohortParallel(kCohort, kStage, kServers, kMaxCrowd, kSeed,
                                                  2, &slice, &sharded_telemetry, nullptr, run);
      ASSERT_EQ(slice.size(), kServers);
      for (size_t i = shard; i < kServers; i += shards) {
        combined[i] = std::move(slice[i]);
      }
      total.servers += b.servers;
      total.b10 += b.b10;
      total.b20 += b.b20;
      total.b30 += b.b30;
      total.b40 += b.b40;
      total.b50 += b.b50;
      total.b50plus += b.b50plus;
      total.nostop += b.nostop;
    }
    EXPECT_EQ(total, single) << shards << " shards";
    EXPECT_EQ(EncodeAll(combined), EncodeAll(single_sites)) << shards << " shards";
    // Note: sharded_telemetry folded shard-by-shard, which is a different
    // floating-point summation order than the single run's global index
    // order, so registries are only bitwise-equal after a global-order fold —
    // that path (MergeShardJournals) is pinned byte-for-byte below.
    EXPECT_EQ(sharded_telemetry.metrics.Counter("span.Base.count"),
              single_telemetry.metrics.Counter("span.Base.count"))
        << shards << " shards";
  }
}

// ---- journal-level merge --------------------------------------------------

std::unique_ptr<SurveyJournal> OpenShard(const std::string& path, bool resume, size_t shards,
                                         size_t shard_index) {
  std::string error;
  std::unique_ptr<SurveyJournal> journal =
      SurveyJournal::Open(path, kTool, kPrint, resume, &error);
  EXPECT_NE(journal, nullptr) << error;
  if (journal != nullptr) {
    std::string begin_error;
    EXPECT_TRUE(journal->BeginCohort(kCohort, kStage, kServers, kMaxCrowd, kSeed, 0,
                                     &begin_error, shards, shard_index, false))
        << begin_error;
  }
  return journal;
}

void RunShard(const std::string& path, bool resume, size_t shards, size_t shard_index,
              size_t jobs) {
  auto journal = OpenShard(path, resume, shards, shard_index);
  ASSERT_NE(journal, nullptr);
  SurveyTelemetry telemetry;
  telemetry.collect_trace = true;
  telemetry.collect_metrics = true;
  SurveyRunOptions run;
  run.shards = shards;
  run.shard_index = shard_index;
  RunSurveyCohortParallel(kCohort, kStage, kServers, kMaxCrowd, kSeed, jobs, nullptr,
                          &telemetry, journal.get(), run);
}

// Truncating a shard journal to its first K records simulates a crash at
// that point (appends are framed + fsynced); resuming with a different jobs
// count must leave merge output byte-identical.
TEST(ShardMergeTest, MergedShardsMatchSingleProcessByteForByte) {
  // Reference: one unsharded journaled run.
  std::string ref_path = TempPath("merge_ref.jsonl");
  remove(ref_path.c_str());
  {
    auto journal = OpenShard(ref_path, false, 1, 0);
    ASSERT_NE(journal, nullptr);
    SurveyTelemetry telemetry;
    telemetry.collect_trace = true;
    telemetry.collect_metrics = true;
    RunSurveyCohortParallel(kCohort, kStage, kServers, kMaxCrowd, kSeed, 3, nullptr, &telemetry,
                            journal.get());
  }
  ShardMergeResult ref;
  std::string error;
  ASSERT_TRUE(MergeShardJournals({ref_path}, &ref, &error)) << error;

  for (size_t shards : {size_t{2}, size_t{4}}) {
    std::vector<std::string> paths;
    for (size_t shard = 0; shard < shards; ++shard) {
      std::string path =
          TempPath("merge_" + std::to_string(shards) + "_" + std::to_string(shard) + ".jsonl");
      remove(path.c_str());
      RunShard(path, false, shards, shard, 2);
      paths.push_back(path);
    }
    // Kill shard 0 after its first site record (header + cohort + 1 site),
    // then resume it with a different jobs count.
    std::string contents = Slurp(paths[0]);
    size_t lines = 0, cut = 0;
    for (size_t pos = 0; pos < contents.size(); ++pos) {
      if (contents[pos] == '\n' && ++lines == 3) {
        cut = pos + 1;
        break;
      }
    }
    ASSERT_GT(cut, 0u);
    Spit(paths[0], contents.substr(0, cut));
    RunShard(paths[0], /*resume=*/true, shards, 0, 1);

    ShardMergeResult merged;
    ASSERT_TRUE(MergeShardJournals(paths, &merged, &error)) << error;
    ASSERT_EQ(merged.breakdowns.size(), 1u);
    EXPECT_EQ(merged.breakdowns[0], ref.breakdowns[0]) << shards << " shards";
    EXPECT_EQ(EncodeAll(merged.per_site[0]), EncodeAll(ref.per_site[0])) << shards << " shards";
    EXPECT_EQ(ExportTraceJson(merged.trace), ExportTraceJson(ref.trace)) << shards << " shards";
    EXPECT_EQ(ExportMetricsCsv(merged.metrics), ExportMetricsCsv(ref.metrics))
        << shards << " shards";
    SurveyReportInput report;
    report.cohort_name = "x";
    report.breakdown = merged.breakdowns[0];
    report.per_site = &merged.per_site[0];
    SurveyReportInput ref_report = report;
    ref_report.breakdown = ref.breakdowns[0];
    ref_report.per_site = &ref.per_site[0];
    EXPECT_EQ(BuildSurveyReportJson(report), BuildSurveyReportJson(ref_report));
    for (const std::string& path : paths) {
      remove(path.c_str());
    }
  }
  remove(ref_path.c_str());
}

TEST(ShardMergeTest, RejectsIncompleteShard) {
  std::string a = TempPath("merge_incomplete_0.jsonl");
  std::string b = TempPath("merge_incomplete_1.jsonl");
  remove(a.c_str());
  remove(b.c_str());
  RunShard(a, false, 2, 0, 1);
  RunShard(b, false, 2, 1, 1);
  // Drop shard 1's last site record: merge must refuse and point at --resume.
  std::string contents = Slurp(b);
  size_t cut = contents.rfind('\n', contents.size() - 2);
  ASSERT_NE(cut, std::string::npos);
  Spit(b, contents.substr(0, cut + 1));
  ShardMergeResult merged;
  std::string error;
  EXPECT_FALSE(MergeShardJournals({a, b}, &merged, &error));
  EXPECT_NE(error.find("missing site"), std::string::npos) << error;
  EXPECT_NE(error.find("--resume"), std::string::npos) << error;
  remove(a.c_str());
  remove(b.c_str());
}

TEST(ShardMergeTest, RejectsDuplicateAndMissingShardIndices) {
  std::string a = TempPath("merge_dup_0.jsonl");
  std::string b = TempPath("merge_dup_0b.jsonl");
  remove(a.c_str());
  remove(b.c_str());
  RunShard(a, false, 2, 0, 1);
  RunShard(b, false, 2, 0, 1);  // same shard twice, shard 1 never run
  ShardMergeResult merged;
  std::string error;
  EXPECT_FALSE(MergeShardJournals({a, b}, &merged, &error));
  EXPECT_NE(error.find("both claim shard"), std::string::npos) << error;
  // And a single journal of a 2-shard run cannot stand alone.
  EXPECT_FALSE(MergeShardJournals({a}, &merged, &error));
  EXPECT_NE(error.find("2 shard(s)"), std::string::npos) << error;
  remove(a.c_str());
  remove(b.c_str());
}

// ---- quarantine records & crash-shaped corruption (DESIGN.md §14) --------

// A quarantined site is the one legal gap in a shard journal: the merge
// carries the record through to the report instead of failing, and the
// site's slot stays default (excluded from the breakdown).
TEST(ShardMergeTest, QuarantinedSiteIsALegalGapAndSurfacesInReport) {
  std::string a = TempPath("merge_q_0.jsonl");
  std::string b = TempPath("merge_q_1.jsonl");
  remove(a.c_str());
  remove(b.c_str());
  RunShard(a, false, 2, 0, 1);
  RunShard(b, false, 2, 1, 1);
  // Drop shard 1's last site record (jobs=1 journals in index order, so
  // that is global site 5), as if site 5 kept crashing the worker.
  std::string contents = Slurp(b);
  size_t cut = contents.rfind('\n', contents.size() - 2);
  ASSERT_NE(cut, std::string::npos);
  Spit(b, contents.substr(0, cut + 1));
  JournalQuarantineRecord q;
  q.cohort_ordinal = 0;
  q.site_index = 5;
  q.crashes = 3;
  q.signature = "signal 9 (Killed)";
  std::string error;
  ASSERT_TRUE(AppendQuarantineRecord(b, q, &error)) << error;
  // Quarantining an already-executed site is a silent no-op, not an error —
  // the supervisor may race a worker that made progress after all.
  std::string before = Slurp(b);
  JournalQuarantineRecord executed = q;
  executed.site_index = 1;
  ASSERT_TRUE(AppendQuarantineRecord(b, executed, &error)) << error;
  EXPECT_EQ(Slurp(b), before);
  // The restarted worker replays sites 1 and 3 and skips 5 entirely.
  RunShard(b, /*resume=*/true, 2, 1, 1);

  ShardMergeResult merged;
  ASSERT_TRUE(MergeShardJournals({a, b}, &merged, &error)) << error;
  ASSERT_EQ(merged.quarantined.size(), 1u);
  ASSERT_EQ(merged.quarantined[0].size(), 1u);
  EXPECT_EQ(merged.quarantined[0][0].site_index, 5u);
  EXPECT_EQ(merged.quarantined[0][0].crashes, 3u);
  // Five of six sites contribute to the breakdown; slot 5 is default.
  EXPECT_EQ(merged.breakdowns[0].servers, 5u);
  EXPECT_TRUE(merged.per_site[0][5].stages.empty());

  SurveyReportInput report;
  report.cohort_name = "x";
  report.breakdown = merged.breakdowns[0];
  report.per_site = &merged.per_site[0];
  report.quarantined = &merged.quarantined[0];
  std::string json = BuildSurveyReportJson(report);
  EXPECT_NE(json.find("\"quarantined_sites\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"signature\": \"signal 9 (Killed)\""), std::string::npos) << json;
  // Without quarantines the key is absent — quarantine-free reports stay
  // byte-identical to pre-supervisor builds.
  report.quarantined = nullptr;
  EXPECT_EQ(BuildSurveyReportJson(report).find("quarantined_sites"), std::string::npos);
  remove(a.c_str());
  remove(b.c_str());
}

// A worker that died between BeginCohort and its first site record leaves a
// valid journal with zero progress; the merge names the shard and says
// "resumable" instead of rejecting it ambiguously.
TEST(ShardMergeTest, ClassifiesZeroProgressShards) {
  std::string a = TempPath("merge_zp_0.jsonl");
  std::string b = TempPath("merge_zp_1.jsonl");
  remove(a.c_str());
  remove(b.c_str());
  RunShard(a, false, 2, 0, 1);
  RunShard(b, false, 2, 1, 1);
  std::string contents = Slurp(b);
  // Keep header + cohort record only: BeginCohort done, no site yet.
  size_t first = contents.find('\n');
  size_t second = contents.find('\n', first + 1);
  ASSERT_NE(second, std::string::npos);
  Spit(b, contents.substr(0, second + 1));
  ShardMergeResult merged;
  std::string error;
  EXPECT_FALSE(MergeShardJournals({a, b}, &merged, &error));
  EXPECT_NE(error.find("zero progress"), std::string::npos) << error;
  EXPECT_NE(error.find("shard 1"), std::string::npos) << error;
  EXPECT_NE(error.find("--resume"), std::string::npos) << error;
  // Header only (died during startup, before BeginCohort): same class.
  Spit(b, contents.substr(0, first + 1));
  EXPECT_FALSE(MergeShardJournals({a, b}, &merged, &error));
  EXPECT_NE(error.find("zero progress"), std::string::npos) << error;
  EXPECT_NE(error.find("--resume"), std::string::npos) << error;
  remove(a.c_str());
  remove(b.c_str());
}

// Crash-shaped corruption around quarantine records recovers exactly like
// site records: drop the invalid suffix with a warning, keep the valid
// prefix, resume re-derives the rest.
TEST(ShardMergeTest, QuarantineRecordCorruptionRecovers) {
  std::string path = TempPath("merge_qcorrupt.jsonl");
  remove(path.c_str());
  {
    auto journal = OpenShard(path, false, 2, 1);
    ASSERT_NE(journal, nullptr);
  }
  JournalQuarantineRecord q;
  q.cohort_ordinal = 0;
  q.site_index = 3;
  q.crashes = 2;
  q.signature = "signal 11 (Segmentation fault)";
  std::string error;
  ASSERT_TRUE(AppendQuarantineRecord(path, q, &error)) << error;
  std::string valid = Slurp(path);

  // Torn tail: a half-written record after the quarantine is dropped and the
  // quarantine survives. AppendQuarantineRecord itself also truncates torn
  // tails before writing, so a second append lands on the valid prefix.
  Spit(path, valid + "{\"crc\":\"0123");
  {
    auto journal = SurveyJournal::Open(path, kTool, kPrint, true, &error);
    ASSERT_NE(journal, nullptr) << error;
    EXPECT_FALSE(journal->Warning().empty());
    ASSERT_EQ(journal->Quarantines().size(), 1u);
    EXPECT_EQ(journal->Quarantines()[0].site_index, 3u);
  }

  // Duplicate quarantine record: corruption from that record on.
  Spit(path, valid + FrameJournalRecord(EncodeQuarantineRecord(q)));
  {
    auto journal = SurveyJournal::Open(path, kTool, kPrint, true, &error);
    ASSERT_NE(journal, nullptr) << error;
    EXPECT_NE(journal->Warning().find("duplicate quarantine"), std::string::npos)
        << journal->Warning();
    EXPECT_EQ(journal->Quarantines().size(), 1u);
  }

  // Bit-flipped checksum inside the quarantine frame: the record is dropped,
  // leaving a clean header + cohort journal.
  std::string flipped = valid;
  size_t frame = flipped.rfind("{\"crc\":\"");
  ASSERT_NE(frame, std::string::npos);
  flipped[frame + 8] = flipped[frame + 8] == '0' ? 'f' : '0';
  Spit(path, flipped);
  {
    auto journal = SurveyJournal::Open(path, kTool, kPrint, true, &error);
    ASSERT_NE(journal, nullptr) << error;
    EXPECT_FALSE(journal->Warning().empty());
    EXPECT_TRUE(journal->Quarantines().empty());
  }
  remove(path.c_str());
}

// Pre-PR-8 journals carry no shard keys; they decode as an unsharded
// legacy-seed run, so resuming them without --legacy-seeds is a hard
// mismatch instead of a silent reseed.
TEST(ShardMergeTest, LegacyJournalRequiresLegacySeeds) {
  std::string path = TempPath("merge_legacy.jsonl");
  remove(path.c_str());
  {
    std::string error;
    auto journal = SurveyJournal::Open(path, kTool, kPrint, false, &error);
    ASSERT_NE(journal, nullptr) << error;
    // Legacy-mode cohort record, as an old journal would hold.
    ASSERT_TRUE(journal->BeginCohort(kCohort, kStage, kServers, kMaxCrowd, kSeed, 0, &error, 1,
                                     0, true))
        << error;
  }
  std::string error;
  auto journal = SurveyJournal::Open(path, kTool, kPrint, true, &error);
  ASSERT_NE(journal, nullptr) << error;
  // Default (mixed-seed) BeginCohort must refuse the legacy cohort record.
  EXPECT_FALSE(journal->BeginCohort(kCohort, kStage, kServers, kMaxCrowd, kSeed, 0, &error));
  EXPECT_NE(error.find("legacy_seeds"), std::string::npos) << error;
  remove(path.c_str());
}

}  // namespace
}  // namespace mfc
