// Failure-injection tests: the coordinator must behave sensibly when the
// wide area misbehaves — lost control messages, overloaded servers shedding
// load, broken targets, or clients whose base measurements fail.
#include <gtest/gtest.h>

#include "src/core/config.h"
#include "src/core/experiment_runner.h"
#include "src/core/sim_testbed.h"
#include "src/server/web_server.h"

namespace mfc {
namespace {

TEST(RobustnessTest, HeavyControlLossStillCompletesWithPartialSamples) {
  SiteInstance site = MakeQtnpProfile();
  DeploymentOptions options;
  options.seed = 71;
  options.fleet_size = 120;  // enough that registration survives the loss
  options.control_loss_rate = 0.15;
  Deployment deployment(site, options);
  ExperimentConfig config;
  config.max_crowd = 40;
  ExperimentResult result = deployment.RunMfc(config, deployment.ObjectsFromContent(), 3);
  ASSERT_FALSE(result.aborted);
  const StageResult* base = result.Stage(StageKind::kBase);
  ASSERT_NE(base, nullptr);
  // Some commands vanished: epochs report fewer samples than scheduled, but
  // the stage still ran to a verdict.
  size_t scheduled = 0;
  size_t received = 0;
  for (const EpochResult& epoch : base->epochs) {
    scheduled += epoch.crowd_size;
    received += epoch.samples_received;
  }
  EXPECT_LT(received, scheduled);
  EXPECT_GT(received, scheduled / 2);
}

TEST(RobustnessTest, LossyFleetBelowQuorumAborts) {
  SiteInstance site = MakeQtnpProfile();
  DeploymentOptions options;
  options.seed = 72;
  options.fleet_size = 55;
  options.control_loss_rate = 0.6;  // most probes/replies vanish
  Deployment deployment(site, options);
  ExperimentConfig config;
  config.min_clients = 50;
  ExperimentResult result = deployment.RunMfc(config, deployment.ObjectsFromContent(), 5);
  EXPECT_TRUE(result.aborted);
  EXPECT_LT(result.registered_clients, 50u);
}

// A target whose backlog is tiny: under crowds the overflow is shed as 503s.
// The coordinator still terminates and its samples carry the error codes.
TEST(RobustnessTest, OverloadedServerSheddingLoadStillYieldsVerdict) {
  SiteInstance site = MakeQtnpProfile();
  site.server.worker_threads = 4;
  site.server.accept_backlog = 4;
  site.server.head_cpu_s = 30e-3;  // slow enough that the queue actually fills
  DeploymentOptions options;
  options.seed = 73;
  options.fleet_size = 60;
  Deployment deployment(site, options);
  ExperimentConfig config;
  config.max_crowd = 40;
  ExperimentResult result = deployment.RunMfc(config, deployment.ObjectsFromContent(), 7);
  ASSERT_FALSE(result.aborted);
  const StageResult* base = result.Stage(StageKind::kBase);
  ASSERT_NE(base, nullptr);
  bool saw_rejection = false;
  for (const EpochResult& epoch : base->epochs) {
    for (const RequestSample& sample : epoch.samples) {
      if (sample.code == HttpStatus::kServiceUnavailable) {
        saw_rejection = true;
      }
    }
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_GT(deployment.Server().Rejected503(), 0u);
}

// A target that never answers at all: every base measurement times out, no
// client is usable, and the stage ends without epochs rather than hanging.
TEST(RobustnessTest, DeadTargetProducesEmptyStage) {
  class BlackHole : public HttpTarget {
   public:
    void OnRequest(const HttpRequest&, bool, ResponseTransport) override {}
  };
  BlackHole hole;
  TestbedConfig testbed_config;
  std::vector<ClientNetProfile> fleet = MakeLanFleet(55);
  SimTestbed testbed(74, testbed_config, std::move(fleet), hole);
  testbed.set_request_timeout(Seconds(1));  // keep the test quick
  ExperimentConfig config;
  config.request_timeout = Seconds(1);
  config.max_crowd = 30;
  Coordinator coordinator(testbed, config, 9);
  StageObjects objects;
  objects.base_page = *ParseUrl("http://t/");
  ExperimentResult result = coordinator.Run(objects, {StageKind::kBase});
  ASSERT_FALSE(result.aborted);  // registration is control-plane, still fine
  const StageResult* base = result.Stage(StageKind::kBase);
  ASSERT_NE(base, nullptr);
  EXPECT_FALSE(base->stopped);
  EXPECT_TRUE(base->epochs.empty());  // zero usable clients -> nothing to run
}

// Clients that time out mid-epoch report code=ERR with the 10 s cap; the
// coordinator treats those as (large) normalized samples and still stops.
TEST(RobustnessTest, TimeoutsCountTowardDegradation) {
  SiteInstance site = MakeQtnpProfile();
  // From ~8 concurrent requests the front end takes > 10 s each: requests
  // get killed rather than answered.
  site.server.head_cpu_s = 2.5;
  DeploymentOptions options;
  options.seed = 75;
  options.fleet_size = 60;
  Deployment deployment(site, options);
  ExperimentConfig config;
  config.max_crowd = 30;
  ExperimentResult result = deployment.RunMfc(config, deployment.ObjectsFromContent(), 11);
  const StageResult* base = result.Stage(StageKind::kBase);
  ASSERT_NE(base, nullptr);
  EXPECT_TRUE(base->stopped);
  bool saw_timeout = false;
  for (const EpochResult& epoch : base->epochs) {
    for (const RequestSample& sample : epoch.samples) {
      if (sample.timed_out) {
        saw_timeout = true;
        EXPECT_NEAR(sample.response_time, 10.0, 1e-6);
      }
    }
  }
  EXPECT_TRUE(saw_timeout);
}

// Property sweep: whatever the (monotone) capacity knee, the confirmed
// stopping size never lands below it by more than one crowd step.
class StoppingSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(StoppingSoundnessTest, StopNeverFarBelowTrueKnee) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed);
  double knee = rng.Uniform(18.0, 60.0);
  SiteInstance site = MakeQtnpProfile();
  site.server.head_cpu_s = 0.1 * 2.0 / knee;  // calibrated knee
  DeploymentOptions options;
  options.seed = seed;
  options.fleet_size = 85;
  Deployment deployment(site, options);
  ExperimentConfig config;
  config.max_crowd = 85;
  ExperimentResult result =
      deployment.RunMfc(config, deployment.ObjectsFromContent(), seed * 13 + 1);
  const StageResult* base = result.Stage(StageKind::kBase);
  ASSERT_NE(base, nullptr);
  if (base->stopped) {
    // Never a confirmed constraint at less than ~halfway to the knee: the
    // check phase and calibration keep false-early stops out.
    EXPECT_GE(static_cast<double>(base->stopping_crowd_size), 0.6 * knee) << "knee=" << knee;
    EXPECT_LE(static_cast<double>(base->stopping_crowd_size), 2.0 * knee + 10.0)
        << "knee=" << knee;
  } else {
    EXPECT_GT(2.0 * knee, 85.0) << "knee=" << knee;  // NoStop only for high knees
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoppingSoundnessTest, ::testing::Range(1, 9));

// --- RetryPolicy backoff schedule ----------------------------------------
// The control plane's retry loops (registration, pings, command re-issue)
// all consume BackoffFor; its schedule must be bounded and deterministic.

TEST(RetryPolicyTest, DefaultScheduleIsBoundedExponential) {
  RetryPolicy policy;
  EXPECT_DOUBLE_EQ(policy.BackoffFor(1), Millis(100));
  EXPECT_DOUBLE_EQ(policy.BackoffFor(2), Millis(200));
  EXPECT_DOUBLE_EQ(policy.BackoffFor(3), Millis(400));
  EXPECT_DOUBLE_EQ(policy.BackoffFor(4), Millis(800));
  EXPECT_DOUBLE_EQ(policy.BackoffFor(5), Millis(1600));
  // From here the max-delay clamp takes over and holds.
  EXPECT_DOUBLE_EQ(policy.BackoffFor(6), Seconds(2));
  EXPECT_DOUBLE_EQ(policy.BackoffFor(7), Seconds(2));
  EXPECT_DOUBLE_EQ(policy.BackoffFor(64), Seconds(2));
}

TEST(RetryPolicyTest, ScheduleIsMonotoneThroughAttemptCap) {
  RetryPolicy policy;
  SimDuration previous = 0.0;
  for (size_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    SimDuration backoff = policy.BackoffFor(attempt);
    EXPECT_GE(backoff, previous) << "attempt " << attempt;
    EXPECT_LE(backoff, policy.max_backoff) << "attempt " << attempt;
    previous = backoff;
  }
}

TEST(RetryPolicyTest, InitialBackoffAboveMaxIsClampedFromAttemptOne) {
  RetryPolicy policy;
  policy.initial_backoff = Seconds(5);
  EXPECT_DOUBLE_EQ(policy.BackoffFor(1), Seconds(2));
  EXPECT_DOUBLE_EQ(policy.BackoffFor(3), Seconds(2));
}

TEST(RetryPolicyTest, UnitMultiplierKeepsConstantBackoff) {
  RetryPolicy policy;
  policy.multiplier = 1.0;
  for (size_t attempt = 1; attempt <= 2 * policy.max_attempts; ++attempt) {
    EXPECT_DOUBLE_EQ(policy.BackoffFor(attempt), Millis(100)) << "attempt " << attempt;
  }
}

TEST(RetryPolicyTest, IdenticalPoliciesProduceIdenticalSchedules) {
  RetryPolicy a;
  RetryPolicy b;
  a.multiplier = b.multiplier = 1.7;
  a.initial_backoff = b.initial_backoff = Millis(35);
  a.max_backoff = b.max_backoff = Millis(900);
  for (size_t attempt = 1; attempt <= 12; ++attempt) {
    // Bit-equal, not approximately equal: resumed runs must wait exactly as
    // long as uninterrupted ones would have.
    EXPECT_EQ(a.BackoffFor(attempt), b.BackoffFor(attempt)) << "attempt " << attempt;
  }
}

TEST(RetryPolicyTest, AttemptZeroBehavesLikeAttemptOne) {
  RetryPolicy policy;
  EXPECT_DOUBLE_EQ(policy.BackoffFor(0), policy.BackoffFor(1));
}

}  // namespace
}  // namespace mfc
