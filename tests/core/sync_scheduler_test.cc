#include "src/core/sync_scheduler.h"

#include <gtest/gtest.h>

namespace mfc {
namespace {

TEST(SyncSchedulerTest, PaperFormula) {
  std::vector<ClientLatencyEstimate> clients{
      {0, 0.040, 0.100},  // coord rtt 40 ms, target rtt 100 ms
  };
  auto dispatch = ComputeDispatchTimes(clients, 100.0);
  ASSERT_EQ(dispatch.size(), 1u);
  // T - 0.5*Tc - 1.5*Tt = 100 - 0.020 - 0.150.
  EXPECT_NEAR(dispatch[0].command_send_time, 99.830, 1e-9);
  EXPECT_DOUBLE_EQ(dispatch[0].intended_arrival, 100.0);
  EXPECT_EQ(dispatch[0].client_id, 0u);
}

TEST(SyncSchedulerTest, HigherLatencyClientsDispatchEarlier) {
  std::vector<ClientLatencyEstimate> clients{
      {0, 0.020, 0.050},
      {1, 0.020, 0.300},
  };
  auto dispatch = ComputeDispatchTimes(clients, 50.0);
  EXPECT_LT(dispatch[1].command_send_time, dispatch[0].command_send_time);
}

TEST(SyncSchedulerTest, IdealArrivalIsSimultaneous) {
  // If latencies are exactly as estimated: command at send_time, received
  // 0.5*Tc later, request lands 1.5*Tt after that — at T for every client.
  std::vector<ClientLatencyEstimate> clients;
  for (size_t i = 0; i < 20; ++i) {
    clients.push_back({i, 0.010 + 0.002 * static_cast<double>(i),
                       0.030 + 0.015 * static_cast<double>(i)});
  }
  auto dispatch = ComputeDispatchTimes(clients, 77.0);
  for (size_t i = 0; i < clients.size(); ++i) {
    double arrival = dispatch[i].command_send_time + 0.5 * clients[i].coord_rtt +
                     1.5 * clients[i].target_rtt;
    EXPECT_NEAR(arrival, 77.0, 1e-12) << i;
  }
}

TEST(SyncSchedulerTest, StaggeredSpacingOffsetsArrivals) {
  std::vector<ClientLatencyEstimate> clients{
      {0, 0.010, 0.010},
      {1, 0.010, 0.010},
      {2, 0.010, 0.010},
  };
  auto dispatch = ComputeDispatchTimes(clients, 10.0, 0.050);
  EXPECT_DOUBLE_EQ(dispatch[0].intended_arrival, 10.0);
  EXPECT_DOUBLE_EQ(dispatch[1].intended_arrival, 10.05);
  EXPECT_DOUBLE_EQ(dispatch[2].intended_arrival, 10.10);
}

TEST(SyncSchedulerTest, RequiredLeadIsMaxOverClients) {
  std::vector<ClientLatencyEstimate> clients{
      {0, 0.040, 0.100},  // 0.020 + 0.150 = 0.170
      {1, 0.010, 0.200},  // 0.005 + 0.300 = 0.305
  };
  EXPECT_NEAR(RequiredLead(clients), 0.305, 1e-12);
  EXPECT_DOUBLE_EQ(RequiredLead({}), 0.0);
}

TEST(SyncSchedulerTest, EmptyCrowd) {
  EXPECT_TRUE(ComputeDispatchTimes({}, 1.0).empty());
}

}  // namespace
}  // namespace mfc
