// End-to-end experiments against full simulated deployments: the lab
// validation setups of Section 3 and the cooperating-site profiles of
// Section 4, driven through the public Deployment + Coordinator API.
#include <gtest/gtest.h>

#include "src/core/experiment_runner.h"
#include "src/core/inference.h"

namespace mfc {
namespace {

ExperimentConfig LabConfig() {
  ExperimentConfig config;
  config.threshold = Millis(100);
  config.crowd_step = 5;
  config.max_crowd = 50;
  config.min_clients = 50;
  return config;
}

DeploymentOptions LanOptions(uint64_t seed) {
  DeploymentOptions options;
  options.seed = seed;
  options.fleet_size = 55;
  options.lan_clients = true;
  options.jitter_sigma = 0.0;
  return options;
}

TEST(IntegrationTest, LargeObjectStageFindsBandwidthConstraint) {
  // 100 Mbit/s access link + 100 KB object: per-flow share shrinks with the
  // crowd; the response time knee lands within a few crowd steps of
  // 0.1 s * 12.5 MB/s / 100 KB = ~13 concurrent requests.
  Deployment deployment(MakeLabValidationProfile(), LanOptions(1));
  ExperimentResult result =
      deployment.RunMfc(LabConfig(), deployment.ObjectsFromContent(), 11);
  ASSERT_FALSE(result.aborted);
  const StageResult* stage = result.Stage(StageKind::kLargeObject);
  ASSERT_NE(stage, nullptr);
  EXPECT_TRUE(stage->stopped);
  EXPECT_GE(stage->stopping_crowd_size, 10u);
  EXPECT_LE(stage->stopping_crowd_size, 35u);
}

TEST(IntegrationTest, FastCgiQueryStageDegradesButMongrelHolds) {
  // Figure 6's contrast: the forking FastCGI stack blows past RAM and
  // degrades; the fixed Mongrel pool stays flat at the same crowd sizes.
  SiteInstance fcgi_site = MakeLabValidationProfile();
  Deployment fcgi(fcgi_site, LanOptions(2));
  ExperimentResult fcgi_result =
      fcgi.RunMfc(LabConfig(), fcgi.ObjectsFromContent(), 13);
  const StageResult* fcgi_stage = fcgi_result.Stage(StageKind::kSmallQuery);
  ASSERT_NE(fcgi_stage, nullptr);
  EXPECT_TRUE(fcgi_stage->stopped);

  SiteInstance mongrel_site = MakeLabValidationProfile();
  mongrel_site.server.cgi_model = CgiModel::kMongrel;
  mongrel_site.server.mongrel_pool = 16;
  Deployment mongrel(mongrel_site, LanOptions(2));
  ExperimentResult mongrel_result =
      mongrel.RunMfc(LabConfig(), mongrel.ObjectsFromContent(), 13);
  const StageResult* mongrel_stage = mongrel_result.Stage(StageKind::kSmallQuery);
  ASSERT_NE(mongrel_stage, nullptr);
  EXPECT_FALSE(mongrel_stage->stopped);
}

TEST(IntegrationTest, QtnpShowsPaperOrdering) {
  // QTNP (Table 1): Base stops first (~20-25), Small Query later (~45-55),
  // Large Object not at all.
  DeploymentOptions options;
  options.seed = 3;
  options.fleet_size = 60;
  Deployment deployment(MakeQtnpProfile(), options);
  ExperimentConfig config = LabConfig();
  config.max_crowd = 55;
  ExperimentResult result = deployment.RunMfc(config, deployment.ObjectsFromContent(), 17);
  ASSERT_FALSE(result.aborted);

  const StageResult* base = result.Stage(StageKind::kBase);
  const StageResult* query = result.Stage(StageKind::kSmallQuery);
  const StageResult* large = result.Stage(StageKind::kLargeObject);
  ASSERT_NE(base, nullptr);
  ASSERT_NE(query, nullptr);
  ASSERT_NE(large, nullptr);

  EXPECT_TRUE(base->stopped);
  EXPECT_GE(base->stopping_crowd_size, 10u);
  EXPECT_LE(base->stopping_crowd_size, 35u);
  EXPECT_FALSE(large->stopped);
  if (query->stopped) {
    EXPECT_GT(query->stopping_crowd_size, base->stopping_crowd_size);
  }
}

TEST(IntegrationTest, QtpClusterIsUnmoved) {
  // QTP: 16 load-balanced servers; no stage shows even a small degradation.
  DeploymentOptions options;
  options.seed = 4;
  options.fleet_size = 85;
  Deployment deployment(MakeQtpProfile(), options);
  ExperimentConfig config = LabConfig();
  config.max_crowd = 80;
  config.requests_per_client = 2;  // MFC-mr, as in the paper's QTP runs
  ExperimentResult result =
      deployment.RunMfc(config, deployment.ObjectsFromContent(), 19);
  for (const StageResult& stage : result.stages) {
    EXPECT_FALSE(stage.stopped) << StageName(stage.kind);
  }
}

TEST(IntegrationTest, Univ1IsPoorlyProvisionedEverywhere) {
  DeploymentOptions options;
  options.seed = 5;
  options.fleet_size = 55;
  Deployment deployment(MakeUniv1Profile(), options);
  ExperimentConfig config = LabConfig();
  ExperimentResult result =
      deployment.RunMfc(config, deployment.ObjectsFromContent(), 23);
  const StageResult* base = result.Stage(StageKind::kBase);
  const StageResult* query = result.Stage(StageKind::kSmallQuery);
  ASSERT_NE(base, nullptr);
  ASSERT_NE(query, nullptr);
  EXPECT_TRUE(base->stopped);
  EXPECT_LE(base->stopping_crowd_size, 15u);
  EXPECT_TRUE(query->stopped);
  // The paper reports a stopping size of 5 by log inspection (footnote 2:
  // stages run to at least crowd 15); base-measurement cache warming also
  // softens the first epochs, as Section 2.3 cautions.
  EXPECT_LE(query->stopping_crowd_size, 30u);

  InferenceReport report = AnalyzeExperiment(result, config);
  EXPECT_TRUE(report.AnyConstraint());
}

TEST(IntegrationTest, CrawlProfileDiscoversProbeObjects) {
  SiteInstance instance = MakeQtnpProfile();
  DeploymentOptions options;
  options.seed = 6;
  options.fleet_size = 50;
  Deployment deployment(instance, options);
  ContentProfile profile = deployment.CrawlProfile();
  EXPECT_GT(profile.pages_crawled, 0u);
  EXPECT_TRUE(profile.HasLargeObject());
  EXPECT_TRUE(profile.HasSmallQuery());
  // The crawl-derived stage objects match the content-derived ones.
  StageObjects crawled = SelectStageObjects(profile);
  StageObjects direct = deployment.ObjectsFromContent();
  ASSERT_TRUE(crawled.large_object.has_value());
  ASSERT_TRUE(direct.large_object.has_value());
  EXPECT_EQ(crawled.large_object->path, direct.large_object->path);
  ASSERT_TRUE(crawled.small_query.has_value());
  // Both pick a qualifying query endpoint (not necessarily the same one).
  EXPECT_EQ(crawled.small_query->path.substr(0, 11), "/cgi/search");
  EXPECT_EQ(direct.small_query->path.substr(0, 11), "/cgi/search");
}

TEST(IntegrationTest, RegistrationAbortsWithTinyFleet) {
  DeploymentOptions options;
  options.seed = 7;
  options.fleet_size = 20;  // < 50 required
  Deployment deployment(MakeQtnpProfile(), options);
  ExperimentResult result =
      deployment.RunMfc(LabConfig(), deployment.ObjectsFromContent(), 29);
  EXPECT_TRUE(result.aborted);
}

TEST(IntegrationTest, SurveyRunnerProducesVerdicts) {
  Rng rng(31);
  ExperimentConfig config = LabConfig();
  config.max_crowd = 30;  // keep the test fast
  ExperimentResult result =
      RunSurveyExperiment(rng, Cohort::kPhishing, config, {StageKind::kBase}, 101);
  ASSERT_FALSE(result.aborted);
  ASSERT_EQ(result.stages.size(), 1u);
  EXPECT_GT(result.stages[0].max_crowd_tested, 0u);
}

TEST(IntegrationTest, BackgroundTrafficLowersBaseStoppingSize) {
  // Univ-3's morning-vs-evening effect: more background traffic, earlier
  // Base-stage stop.
  auto run_with_bg = [](double rps) {
    SiteInstance site = MakeUniv3Profile();
    site.base_knee = 35;  // bring the knee into the testable range
    site.server.head_cpu_s = 0.1 * 1.0 / 35.0;
    DeploymentOptions options;
    options.seed = 8;
    options.fleet_size = 55;
    options.background_rps = rps;
    Deployment deployment(site, options);
    deployment.StartBackground();
    ExperimentConfig config;
    config.threshold = Millis(100);
    config.max_crowd = 50;
    ExperimentResult result =
        deployment.RunMfc(config, deployment.ObjectsFromContent(), 37);
    const StageResult* base = result.Stage(StageKind::kBase);
    return base != nullptr && base->stopped ? base->stopping_crowd_size : 999u;
  };
  size_t quiet = run_with_bg(0.0);
  size_t busy = run_with_bg(25.0);
  EXPECT_LE(busy, quiet);
  EXPECT_LT(busy, 999u);
}

}  // namespace
}  // namespace mfc
