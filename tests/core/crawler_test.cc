#include "src/core/crawler.h"

#include <gtest/gtest.h>

#include <map>

#include "src/core/coordinator.h"

namespace mfc {
namespace {

// In-memory site served straight to the crawler.
class FakeFetcher : public Fetcher {
 public:
  void AddPage(const std::string& path, const std::string& html) {
    pages_[path] = html;
  }
  void AddObject(const std::string& path, uint64_t size) { sizes_[path] = size; }
  void AddQuery(const std::string& target, uint64_t size) { queries_[target] = size; }

  HttpResponse Fetch(const HttpRequest& request) override {
    ++fetches_;
    if (request.method == HttpMethod::kHead) {
      ++head_fetches_;
    }
    std::string path(request.Path());
    std::string target = request.target;
    if (request.HasQuery()) {
      auto it = queries_.find(target);
      if (it == queries_.end()) {
        return NotFound();
      }
      HttpResponse resp;
      resp.status = HttpStatus::kOk;
      resp.headers.Set("Content-Length", std::to_string(it->second));
      return resp;
    }
    if (auto it = pages_.find(path); it != pages_.end()) {
      if (request.method == HttpMethod::kHead) {
        HttpResponse resp;
        resp.status = HttpStatus::kOk;
        resp.headers.Set("Content-Length", std::to_string(it->second.size()));
        return resp;
      }
      return HttpResponse::Make(HttpStatus::kOk, "text/html", it->second);
    }
    if (auto it = sizes_.find(path); it != sizes_.end()) {
      HttpResponse resp;
      resp.status = HttpStatus::kOk;
      resp.headers.Set("Content-Length", std::to_string(it->second));
      return resp;
    }
    return NotFound();
  }

  int fetches_ = 0;
  int head_fetches_ = 0;

 private:
  static HttpResponse NotFound() {
    HttpResponse resp;
    resp.status = HttpStatus::kNotFound;
    resp.headers.Set("Content-Length", "0");
    return resp;
  }

  std::map<std::string, std::string> pages_;
  std::map<std::string, uint64_t> sizes_;
  std::map<std::string, uint64_t> queries_;
};

Url Root() {
  Url url;
  url.host = "h";
  return url;
}

TEST(CrawlerTest, DiscoversLinkedContentAndClassifies) {
  FakeFetcher fetcher;
  fetcher.AddPage("/", R"(<html>
      <a href="/docs/page2.html">two</a>
      <a href="/files/big.tar.gz">dl</a>
      <img src="/img/pic.jpg">
      <a href="/cgi/s.php?id=1">search</a>
      </html>)");
  fetcher.AddPage("/docs/page2.html", R"(<a href="/">home</a>)");
  fetcher.AddObject("/files/big.tar.gz", 500 * 1024);
  fetcher.AddObject("/img/pic.jpg", 20 * 1024);
  fetcher.AddQuery("/cgi/s.php?id=1", 4 * 1024);

  Crawler crawler(fetcher, CrawlLimits{}, ProfileThresholds{});
  ContentProfile profile = crawler.Crawl(Root());

  EXPECT_EQ(profile.pages_crawled, 2u);
  ASSERT_EQ(profile.large_objects.size(), 1u);
  EXPECT_EQ(profile.large_objects[0].url.path, "/files/big.tar.gz");
  EXPECT_EQ(profile.large_objects[0].size_bytes, 500u * 1024u);
  ASSERT_EQ(profile.small_queries.size(), 1u);
  EXPECT_EQ(profile.small_queries[0].url.RequestTarget(), "/cgi/s.php?id=1");
  EXPECT_TRUE(profile.HasLargeObject());
  EXPECT_TRUE(profile.HasSmallQuery());
}

TEST(CrawlerTest, SizesStaticObjectsWithHead) {
  FakeFetcher fetcher;
  fetcher.AddPage("/", R"(<a href="/files/a.pdf">a</a>)");
  fetcher.AddObject("/files/a.pdf", 200 * 1024);
  Crawler crawler(fetcher, CrawlLimits{}, ProfileThresholds{});
  crawler.Crawl(Root());
  EXPECT_EQ(fetcher.head_fetches_, 1);
}

TEST(CrawlerTest, SmallObjectsNotLargeCandidates) {
  FakeFetcher fetcher;
  fetcher.AddPage("/", R"(<a href="/files/small.pdf">s</a>)");
  fetcher.AddObject("/files/small.pdf", 50 * 1024);  // under 100 KB
  Crawler crawler(fetcher, CrawlLimits{}, ProfileThresholds{});
  ContentProfile profile = crawler.Crawl(Root());
  EXPECT_FALSE(profile.HasLargeObject());
  EXPECT_EQ(profile.all_objects.size(), 2u);  // page + pdf
}

TEST(CrawlerTest, BigQueriesNotSmallQueryCandidates) {
  FakeFetcher fetcher;
  fetcher.AddPage("/", R"(<a href="/cgi/s.php?dump=all">big</a>)");
  fetcher.AddQuery("/cgi/s.php?dump=all", 200 * 1024);  // over 15 KB
  Crawler crawler(fetcher, CrawlLimits{}, ProfileThresholds{});
  ContentProfile profile = crawler.Crawl(Root());
  EXPECT_FALSE(profile.HasSmallQuery());
}

TEST(CrawlerTest, StaysOnSite) {
  FakeFetcher fetcher;
  fetcher.AddPage("/", R"(<a href="http://elsewhere.example.org/x.html">off</a>)");
  Crawler crawler(fetcher, CrawlLimits{}, ProfileThresholds{});
  ContentProfile profile = crawler.Crawl(Root());
  EXPECT_EQ(fetcher.fetches_, 1);
  EXPECT_EQ(profile.urls_probed, 1u);
}

TEST(CrawlerTest, DeduplicatesRepeatedLinks) {
  FakeFetcher fetcher;
  fetcher.AddPage("/", R"(<a href="/a.html">1</a><a href="/a.html">2</a>)");
  fetcher.AddPage("/a.html", R"(<a href="/">back</a>)");
  Crawler crawler(fetcher, CrawlLimits{}, ProfileThresholds{});
  crawler.Crawl(Root());
  EXPECT_EQ(fetcher.fetches_, 2);
}

TEST(CrawlerTest, RespectsPageLimit) {
  FakeFetcher fetcher;
  // A long chain of pages.
  for (int i = 0; i < 50; ++i) {
    std::string path = i == 0 ? "/" : "/p" + std::to_string(i) + ".html";
    std::string next = "/p" + std::to_string(i + 1) + ".html";
    fetcher.AddPage(path, "<a href=\"" + next + "\">next</a>");
  }
  CrawlLimits limits;
  limits.max_pages = 5;
  limits.max_depth = 100;
  Crawler crawler(fetcher, limits, ProfileThresholds{});
  ContentProfile profile = crawler.Crawl(Root());
  EXPECT_EQ(profile.pages_crawled, 5u);
}

TEST(CrawlerTest, RespectsDepthLimit) {
  FakeFetcher fetcher;
  for (int i = 0; i < 20; ++i) {
    std::string path = i == 0 ? "/" : "/p" + std::to_string(i) + ".html";
    std::string next = "/p" + std::to_string(i + 1) + ".html";
    fetcher.AddPage(path, "<a href=\"" + next + "\">next</a>");
  }
  CrawlLimits limits;
  limits.max_depth = 3;
  Crawler crawler(fetcher, limits, ProfileThresholds{});
  ContentProfile profile = crawler.Crawl(Root());
  // Pages at depth 0..3 are fetched; p3 sits at the depth limit so its link
  // to p4 is never followed.
  EXPECT_EQ(profile.pages_crawled, 4u);
}

TEST(CrawlerTest, FailedFetchesExcludedFromProfile) {
  FakeFetcher fetcher;
  fetcher.AddPage("/", R"(<a href="/gone.pdf">x</a>)");
  Crawler crawler(fetcher, CrawlLimits{}, ProfileThresholds{});
  ContentProfile profile = crawler.Crawl(Root());
  EXPECT_EQ(profile.all_objects.size(), 1u);  // only the page itself
}

TEST(CrawlerTest, PickLargeObjectPrefersLargestUnderCap) {
  ContentProfile profile;
  DiscoveredObject a;
  a.size_bytes = 150 * 1024;
  DiscoveredObject b;
  b.size_bytes = 900 * 1024;
  DiscoveredObject huge;
  huge.size_bytes = 50 * 1024 * 1024;
  profile.large_objects = {a, huge, b};
  EXPECT_EQ(profile.PickLargeObject()->size_bytes, 900u * 1024u);
}

TEST(CrawlerTest, PickLargeObjectFallsBackToSmallestWhenAllOversized) {
  ContentProfile profile;
  DiscoveredObject a;
  a.size_bytes = 50 * 1024 * 1024;
  DiscoveredObject b;
  b.size_bytes = 10 * 1024 * 1024;
  profile.large_objects = {a, b};
  EXPECT_EQ(profile.PickLargeObject()->size_bytes, 10u * 1024u * 1024u);
}

TEST(CrawlerTest, SelectStageObjectsMapsProfile) {
  FakeFetcher fetcher;
  fetcher.AddPage("/", R"(<a href="/files/big.zip">d</a><a href="/cgi/q.php?x=1">q</a>)");
  fetcher.AddObject("/files/big.zip", 300 * 1024);
  fetcher.AddQuery("/cgi/q.php?x=1", 2 * 1024);
  Crawler crawler(fetcher, CrawlLimits{}, ProfileThresholds{});
  ContentProfile profile = crawler.Crawl(Root());
  StageObjects objects = SelectStageObjects(profile);
  ASSERT_TRUE(objects.base_page.has_value());
  ASSERT_TRUE(objects.large_object.has_value());
  ASSERT_TRUE(objects.small_query.has_value());
  EXPECT_EQ(objects.large_object->path, "/files/big.zip");
  EXPECT_EQ(objects.small_query->path, "/cgi/q.php");
}

}  // namespace
}  // namespace mfc
