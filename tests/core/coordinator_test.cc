#include "src/core/coordinator.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <vector>

#include "src/telemetry/metrics.h"

namespace mfc {
namespace {

// Scripted harness: the target's normalized delay is a pure function of
// crowd size (and sample index, for heterogeneity), so every coordinator
// decision path can be exercised deterministically.
class MockHarness : public ClientHarness {
 public:
  size_t client_count = 60;
  SimDuration base_response = 0.050;
  // delay(crowd_size, sample_index) -> added seconds.
  std::function<SimDuration(size_t, size_t)> delay = [](size_t, size_t) { return 0.0; };
  // deliver(client_id, epoch_index) -> false swallows that client's samples,
  // modelling a lossy control plane or a dead client. epoch_index counts
  // ExecuteCrowd calls.
  std::function<bool(size_t, size_t)> deliver = [](size_t, size_t) { return true; };
  // healthy(client_id) -> transport-level verdict surfaced via ClientHealthy,
  // modelling the live harness's probe-miss tracking.
  std::function<bool(size_t)> healthy = [](size_t) { return true; };

  std::vector<size_t> crowd_history;            // epoch crowd sizes, in order
  std::vector<std::vector<CrowdRequestPlan>> plan_history;

  size_t ClientCount() const override { return client_count; }

  std::vector<size_t> ProbeClients(SimDuration) override {
    std::vector<size_t> ids(client_count);
    for (size_t i = 0; i < client_count; ++i) {
      ids[i] = i;
    }
    return ids;
  }

  bool ClientHealthy(size_t client) const override { return healthy(client); }

  SimDuration MeasureCoordRtt(size_t) override { return 0.020; }
  SimDuration MeasureTargetRtt(size_t) override { return 0.060; }

  RequestSample FetchOnce(size_t client, const HttpRequest&) override {
    RequestSample sample;
    sample.client_id = client;
    sample.code = HttpStatus::kOk;
    sample.response_time = base_response;
    return sample;
  }

  std::vector<RequestSample> ExecuteCrowd(const std::vector<CrowdRequestPlan>& plans,
                                          SimTime poll_time) override {
    plan_history.push_back(plans);
    size_t crowd = 0;
    for (const auto& plan : plans) {
      crowd += plan.connections;
    }
    crowd_history.push_back(crowd);
    size_t epoch_index = crowd_history.size() - 1;
    std::vector<RequestSample> samples;
    size_t index = 0;
    for (const auto& plan : plans) {
      for (size_t c = 0; c < plan.connections; ++c, ++index) {
        if (!deliver(plan.client_id, epoch_index)) {
          continue;
        }
        RequestSample sample;
        sample.client_id = plan.client_id;
        sample.code = HttpStatus::kOk;
        sample.response_time = base_response + delay(crowd, index);
        samples.push_back(sample);
      }
    }
    now_ = poll_time;
    return samples;
  }

  SimTime Now() const override { return now_; }
  void WaitUntil(SimTime t) override { now_ = t; }

 private:
  SimTime now_ = 0.0;
};

StageObjects AllObjects() {
  StageObjects objects;
  objects.base_page = *ParseUrl("http://h/");
  objects.large_object = *ParseUrl("http://h/files/big.zip");
  objects.small_query = *ParseUrl("http://h/cgi/q.php?id=0");
  return objects;
}

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.min_clients = 50;
  config.crowd_step = 5;
  config.max_crowd = 50;
  return config;
}

TEST(CoordinatorTest, AbortsWithoutEnoughClients) {
  MockHarness harness;
  harness.client_count = 30;
  Coordinator coordinator(harness, SmallConfig());
  ExperimentResult result = coordinator.Run(AllObjects());
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.registered_clients, 30u);
  EXPECT_TRUE(result.stages.empty());
  EXPECT_NE(result.abort_reason.find("30"), std::string::npos);
}

TEST(CoordinatorTest, UnconstrainedServerIsNoStop) {
  MockHarness harness;
  Coordinator coordinator(harness, SmallConfig());
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});
  ASSERT_EQ(result.stages.size(), 1u);
  const StageResult& stage = result.stages[0];
  EXPECT_FALSE(stage.stopped);
  EXPECT_EQ(stage.max_crowd_tested, 50u);
  // Crowds 5, 10, ..., 50 — ten epochs, no checks.
  EXPECT_EQ(stage.epochs.size(), 10u);
  EXPECT_EQ(harness.crowd_history,
            (std::vector<size_t>{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}));
}

TEST(CoordinatorTest, StopsWithCheckPhaseConfirmation) {
  MockHarness harness;
  // Server degrades once 23+ simultaneous requests arrive.
  harness.delay = [](size_t crowd, size_t) { return crowd >= 23 ? 0.200 : 0.0; };
  Coordinator coordinator(harness, SmallConfig());
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});
  const StageResult& stage = result.stages[0];
  EXPECT_TRUE(stage.stopped);
  EXPECT_EQ(stage.stopping_crowd_size, 25u);
  // 5,10,15,20 clean; 25 exceeds; check at 24 confirms immediately.
  EXPECT_EQ(harness.crowd_history, (std::vector<size_t>{5, 10, 15, 20, 25, 24}));
  ASSERT_EQ(stage.epochs.size(), 6u);
  EXPECT_FALSE(stage.epochs[4].check_phase);
  EXPECT_TRUE(stage.epochs[4].exceeded_threshold);
  EXPECT_TRUE(stage.epochs[5].check_phase);
}

TEST(CoordinatorTest, SmallCrowdsAutoProgressWithoutCheck) {
  MockHarness harness;
  // Degrades from 8 requests on — but epochs below 15 may not stop.
  harness.delay = [](size_t crowd, size_t) { return crowd >= 8 ? 0.200 : 0.0; };
  Coordinator coordinator(harness, SmallConfig());
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});
  const StageResult& stage = result.stages[0];
  EXPECT_TRUE(stage.stopped);
  EXPECT_EQ(stage.stopping_crowd_size, 15u);
  // 5, 10 exceed but auto-progress; 15 exceeds and the check confirms at 14.
  EXPECT_EQ(harness.crowd_history, (std::vector<size_t>{5, 10, 15, 14}));
}

TEST(CoordinatorTest, CheckPhaseFiltersOneOffNoise) {
  MockHarness harness;
  // One spurious spike: the first epoch with crowd 20 reports degradation;
  // every later crowd (including the checks) is clean — the check phase must
  // reject the stop.
  int epochs_of_20 = 0;
  harness.delay = [&epochs_of_20](size_t crowd, size_t index) {
    if (crowd == 20 && index == 0) {
      ++epochs_of_20;
    }
    return crowd == 20 && epochs_of_20 == 1 ? 0.200 : 0.0;
  };
  Coordinator coordinator(harness, SmallConfig());
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});
  const StageResult& stage = result.stages[0];
  EXPECT_FALSE(stage.stopped);
  // Epoch at 20 exceeded, checks at 19, 20, 21 all clean, then progress.
  std::vector<size_t> expected{5, 10, 15, 20, 19, 20, 21, 25, 30, 35, 40, 45, 50};
  EXPECT_EQ(harness.crowd_history, expected);
}

TEST(CoordinatorTest, MedianRuleIgnoresMinorityDegradation) {
  MockHarness harness;
  // 40% of samples see a huge delay; the median stays clean.
  harness.delay = [](size_t crowd, size_t index) {
    return index < (crowd * 2) / 5 ? 0.500 : 0.0;
  };
  Coordinator coordinator(harness, SmallConfig());
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});
  EXPECT_FALSE(result.stages[0].stopped);
}

TEST(CoordinatorTest, LargeObjectRuleNeedsNinetyPercent) {
  MockHarness harness;
  // 60% of clients degraded: enough for the median rule, not for the
  // 90%-of-clients rule the Large Object stage uses.
  harness.delay = [](size_t crowd, size_t index) {
    return index < (crowd * 3) / 5 ? 0.500 : 0.0;
  };
  Coordinator coordinator(harness, SmallConfig());
  ExperimentResult base = coordinator.Run(AllObjects(), {StageKind::kBase});
  EXPECT_TRUE(base.stages[0].stopped);

  MockHarness harness2;
  harness2.delay = harness.delay;
  Coordinator coordinator2(harness2, SmallConfig());
  ExperimentResult large = coordinator2.Run(AllObjects(), {StageKind::kLargeObject});
  EXPECT_FALSE(large.stages[0].stopped);

  // 95% degraded: the Large Object rule fires too.
  MockHarness harness3;
  harness3.delay = [](size_t crowd, size_t index) {
    return index < (crowd * 19) / 20 ? 0.500 : 0.0;
  };
  Coordinator coordinator3(harness3, SmallConfig());
  ExperimentResult large2 = coordinator3.Run(AllObjects(), {StageKind::kLargeObject});
  EXPECT_TRUE(large2.stages[0].stopped);
}

TEST(CoordinatorTest, MfcMrMultipliesRequestsPerClient) {
  MockHarness harness;
  ExperimentConfig config = SmallConfig();
  config.requests_per_client = 2;
  config.max_crowd = 20;
  Coordinator coordinator(harness, config);
  coordinator.Run(AllObjects(), {StageKind::kBase});
  ASSERT_FALSE(harness.plan_history.empty());
  // Crowd of 10 requests = 5 clients x 2 connections.
  EXPECT_EQ(harness.crowd_history[1], 10u);
  EXPECT_EQ(harness.plan_history[1].size(), 5u);
  EXPECT_EQ(harness.plan_history[1][0].connections, 2u);
}

TEST(CoordinatorTest, SkipsStagesWithoutObjects) {
  MockHarness harness;
  StageObjects objects;
  objects.base_page = *ParseUrl("http://h/");
  Coordinator coordinator(harness, SmallConfig());
  ExperimentResult result = coordinator.Run(objects);
  ASSERT_EQ(result.stages.size(), 1u);
  EXPECT_EQ(result.stages[0].kind, StageKind::kBase);
}

TEST(CoordinatorTest, UniqueQueriesCarryPerClientParameter) {
  MockHarness harness;
  ExperimentConfig config = SmallConfig();
  config.max_crowd = 10;
  Coordinator coordinator(harness, config);
  coordinator.Run(AllObjects(), {StageKind::kSmallQuery});
  ASSERT_FALSE(harness.plan_history.empty());
  std::set<std::string> targets;
  for (const auto& plan : harness.plan_history.back()) {
    EXPECT_NE(plan.request.target.find("mfc="), std::string::npos);
    targets.insert(plan.request.target);
  }
  EXPECT_EQ(targets.size(), harness.plan_history.back().size());
}

TEST(CoordinatorTest, SharedQueryWhenUniquenessUnavailable) {
  MockHarness harness;
  StageObjects objects = AllObjects();
  objects.small_query_unique = false;
  ExperimentConfig config = SmallConfig();
  config.max_crowd = 10;
  Coordinator coordinator(harness, config);
  coordinator.Run(objects, {StageKind::kSmallQuery});
  for (const auto& plan : harness.plan_history.back()) {
    EXPECT_EQ(plan.request.target, "/cgi/q.php?id=0");
  }
}

TEST(CoordinatorTest, DispatchTimesFollowSyncFormula) {
  MockHarness harness;
  ExperimentConfig config = SmallConfig();
  config.max_crowd = 5;
  Coordinator coordinator(harness, config);
  coordinator.Run(AllObjects(), {StageKind::kBase});
  ASSERT_FALSE(harness.plan_history.empty());
  for (const auto& plan : harness.plan_history[0]) {
    // All mock clients share Tc=0.020, Tt=0.060: send = arrival - 0.100.
    EXPECT_NEAR(plan.intended_arrival - plan.command_send_time, 0.100, 1e-12);
  }
}

TEST(CoordinatorTest, MeasurersRideAlongAndStayOutOfMetric) {
  MockHarness harness;
  // Heavy degradation visible to everyone; measurers must not dilute it.
  harness.delay = [](size_t crowd, size_t) { return crowd >= 18 ? 0.300 : 0.0; };
  ExperimentConfig config = SmallConfig();
  Coordinator coordinator(harness, config);
  HttpRequest probe;
  probe.method = HttpMethod::kGet;
  probe.target = "/other.bin";
  coordinator.SetMeasurers({MeasurerSpec{59, probe}});
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});
  EXPECT_TRUE(result.stages[0].stopped);
  EXPECT_FALSE(coordinator.MeasurerSamples().empty());
  // Each epoch recorded exactly one measurer sample.
  for (const auto& epoch_measurers : coordinator.MeasurerSamples()) {
    EXPECT_EQ(epoch_measurers.size(), 1u);
  }
}

TEST(CoordinatorTest, TotalRequestsAccounted) {
  MockHarness harness;
  Coordinator coordinator(harness, SmallConfig());
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});
  // NoStop run: 5+10+...+50 = 275 requests.
  EXPECT_EQ(result.TotalRequests(), 275u);
}

TEST(CoordinatorTest, EndReasonReportsConstraintFound) {
  MockHarness harness;
  harness.delay = [](size_t crowd, size_t) { return crowd >= 23 ? 0.200 : 0.0; };
  Coordinator coordinator(harness, SmallConfig());
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});
  const StageResult& stage = result.stages[0];
  EXPECT_TRUE(stage.stopped);
  EXPECT_EQ(stage.end_reason, StageEndReason::kConstraintFound);
  EXPECT_NE(stage.end_detail.find("check phase confirmed"), std::string::npos);
}

TEST(CoordinatorTest, EvictsSilentClientAndBackfillsFromSpares) {
  MockHarness harness;
  // Client 0 is half-dead: it accepts commands but its samples never arrive.
  harness.deliver = [](size_t client, size_t) { return client != 0; };
  ExperimentConfig config = SmallConfig();
  config.evict_after_misses = 2;
  MetricsRegistry metrics;
  Telemetry telemetry;
  telemetry.metrics = &metrics;
  Coordinator coordinator(harness, config);
  coordinator.SetTelemetry(&telemetry);
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});

  EXPECT_EQ(metrics.Counter("coord.clients_evicted"), 1.0);
  // Spares backfill: every epoch still fields a full crowd (60 registered,
  // at most 50 needed), so the schedule never shrinks below plan.
  for (const EpochResult& epoch : result.stages[0].epochs) {
    EXPECT_EQ(epoch.samples_expected, epoch.crowd_size);
  }
  // Once evicted, client 0 never joins another crowd.
  bool seen_after_eviction = false;
  size_t participations = 0;
  for (const auto& plans : harness.plan_history) {
    bool in_crowd = false;
    for (const auto& plan : plans) {
      in_crowd |= plan.client_id == 0;
    }
    if (in_crowd) {
      ++participations;
      if (participations > config.evict_after_misses) {
        seen_after_eviction = true;
      }
    }
  }
  EXPECT_GE(participations, config.evict_after_misses);
  EXPECT_FALSE(seen_after_eviction);
}

TEST(CoordinatorTest, TransportUnhealthyVerdictEvictsDeliveringClient) {
  MockHarness harness;
  // Client 0 delivers every sample, but the transport reports its control
  // plane dead (the live harness's probe-miss verdict). The coordinator must
  // evict on that verdict alone, without waiting for sample misses.
  harness.healthy = [](size_t client) { return client != 0; };
  ExperimentConfig config = SmallConfig();
  config.evict_after_misses = 2;
  MetricsRegistry metrics;
  Telemetry telemetry;
  telemetry.metrics = &metrics;
  Coordinator coordinator(harness, config);
  coordinator.SetTelemetry(&telemetry);
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});

  EXPECT_EQ(metrics.Counter("coord.clients_evicted"), 1.0);
  // Evicted after its first epoch despite a perfect sample record.
  size_t participations = 0;
  for (const auto& plans : harness.plan_history) {
    for (const auto& plan : plans) {
      participations += plan.client_id == 0 ? 1 : 0;
    }
  }
  EXPECT_EQ(participations, 1u);
  // Spares backfill, so the schedule never runs short.
  for (const EpochResult& epoch : result.stages[0].epochs) {
    EXPECT_EQ(epoch.samples_expected, epoch.crowd_size);
  }
}

TEST(CoordinatorTest, EvictionKnobAtZeroIgnoresTransportVerdict) {
  MockHarness harness;
  harness.healthy = [](size_t) { return false; };  // everyone looks dead
  MetricsRegistry metrics;
  Telemetry telemetry;
  telemetry.metrics = &metrics;
  // SmallConfig leaves evict_after_misses at 0: eviction disabled entirely.
  Coordinator coordinator(harness, SmallConfig());
  coordinator.SetTelemetry(&telemetry);
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});
  EXPECT_EQ(metrics.Counter("coord.clients_evicted"), 0.0);
  EXPECT_FALSE(result.aborted);
}

TEST(CoordinatorTest, BelowQuorumEpochIsRerunOnceAndRecovers) {
  MockHarness harness;
  // One bad epoch: the third ExecuteCrowd call (index 2) loses half its
  // samples; the re-run (index 3) is clean.
  harness.deliver = [](size_t client, size_t epoch_index) {
    return epoch_index != 2 || client % 2 != 0;
  };
  ExperimentConfig config = SmallConfig();
  config.epoch_quorum = 0.9;
  MetricsRegistry metrics;
  Telemetry telemetry;
  telemetry.metrics = &metrics;
  Coordinator coordinator(harness, config);
  coordinator.SetTelemetry(&telemetry);
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});

  const StageResult& stage = result.stages[0];
  EXPECT_FALSE(stage.stopped);
  EXPECT_EQ(stage.end_reason, StageEndReason::kNoStop);
  EXPECT_EQ(metrics.Counter("coord.epoch_requeues"), 1.0);
  EXPECT_EQ(metrics.Counter("coord.quorum_failures"), 0.0);
  // 10 planned crowds + 1 re-run; crowd 15 appears twice back to back.
  ASSERT_EQ(stage.epochs.size(), 11u);
  EXPECT_EQ(harness.crowd_history,
            (std::vector<size_t>{5, 10, 15, 15, 20, 25, 30, 35, 40, 45, 50}));
  size_t requeued = 0;
  for (const EpochResult& epoch : stage.epochs) {
    requeued += epoch.requeued ? 1 : 0;
  }
  EXPECT_EQ(requeued, 1u);
}

TEST(CoordinatorTest, PersistentQuorumShortfallEndsStageExplicitly) {
  MockHarness harness;
  // From the third call on, half the fleet's samples are lost for good: the
  // re-run cannot recover and the stage must end with an explicit verdict.
  harness.deliver = [](size_t client, size_t epoch_index) {
    return epoch_index < 2 || client % 2 != 0;
  };
  ExperimentConfig config = SmallConfig();
  config.epoch_quorum = 0.9;
  MetricsRegistry metrics;
  Telemetry telemetry;
  telemetry.metrics = &metrics;
  Coordinator coordinator(harness, config);
  coordinator.SetTelemetry(&telemetry);
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});

  const StageResult& stage = result.stages[0];
  EXPECT_FALSE(stage.stopped);
  EXPECT_EQ(stage.end_reason, StageEndReason::kQuorumFailed);
  EXPECT_NE(stage.end_detail.find("samples after re-run"), std::string::npos);
  EXPECT_EQ(metrics.Counter("coord.epoch_requeues"), 1.0);
  EXPECT_EQ(metrics.Counter("coord.quorum_failures"), 1.0);
  // Crowds 5, 10 clean; 15 short, re-run short, stop.
  EXPECT_EQ(harness.crowd_history, (std::vector<size_t>{5, 10, 15, 15}));
  EXPECT_TRUE(stage.epochs.back().requeued);
}

TEST(CoordinatorTest, QuorumKnobOffKeepsScheduleIdentical) {
  // Same lossy fleet, knob off: the schedule must match the seed behavior
  // (no re-runs, no early termination).
  MockHarness harness;
  harness.deliver = [](size_t client, size_t) { return client % 2 != 0; };
  Coordinator coordinator(harness, SmallConfig());
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});
  EXPECT_EQ(result.stages[0].end_reason, StageEndReason::kNoStop);
  EXPECT_EQ(harness.crowd_history,
            (std::vector<size_t>{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}));
}

TEST(CoordinatorTest, EpochGapSeparatesEpochs) {
  MockHarness harness;
  ExperimentConfig config = SmallConfig();
  config.max_crowd = 10;
  Coordinator coordinator(harness, config);
  ExperimentResult result = coordinator.Run(AllObjects(), {StageKind::kBase});
  EXPECT_GT(result.stages[0].Span(), config.epoch_gap);
}

}  // namespace
}  // namespace mfc
