// Survey supervisor (DESIGN.md §14): exit classification, jittered backoff,
// crash-suspect derivation, quarantine streak bookkeeping, and the process
// state machine driven end-to-end with /bin/sh stand-in workers.
#include "src/core/supervisor.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/core/journal/shutdown.h"

namespace mfc {
namespace {

std::string TempPath(const std::string& name) { return testing::TempDir() + name; }

// Real waitpid() statuses, not hand-assembled bit patterns.
int StatusOfExit(int code) {
  pid_t pid = fork();
  if (pid == 0) {
    _exit(code);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

int StatusOfSignal(int sig) {
  pid_t pid = fork();
  if (pid == 0) {
    signal(sig, SIG_DFL);
    raise(sig);
    _exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return status;
}

TEST(WorkerExitTest, ClassifiesTheExitCodeContract) {
  EXPECT_EQ(ClassifyWorkerExit(StatusOfExit(0)), WorkerExitClass::kSuccess);
  // Usage (2), journal/merge (3), exec failure (127): same argv would fail
  // the same way, so restarting is pointless.
  EXPECT_EQ(ClassifyWorkerExit(StatusOfExit(2)), WorkerExitClass::kPermanent);
  EXPECT_EQ(ClassifyWorkerExit(StatusOfExit(3)), WorkerExitClass::kPermanent);
  EXPECT_EQ(ClassifyWorkerExit(StatusOfExit(127)), WorkerExitClass::kPermanent);
  EXPECT_EQ(ClassifyWorkerExit(StatusOfExit(130)), WorkerExitClass::kInterrupted);
  EXPECT_EQ(ClassifyWorkerExit(StatusOfExit(1)), WorkerExitClass::kRetryable);
  EXPECT_EQ(ClassifyWorkerExit(StatusOfSignal(SIGKILL)), WorkerExitClass::kRetryable);
  EXPECT_EQ(ClassifyWorkerExit(StatusOfSignal(SIGSEGV)), WorkerExitClass::kRetryable);
}

TEST(WorkerExitTest, DescribesExitsForLogsAndSignatures) {
  EXPECT_EQ(DescribeWorkerExit(StatusOfExit(3)), "exit 3");
  std::string sig = DescribeWorkerExit(StatusOfSignal(SIGKILL));
  EXPECT_NE(sig.find("signal 9"), std::string::npos) << sig;
}

TEST(SupervisorBackoffTest, JitterIsBoundedAndDeterministic) {
  RetryPolicy policy;
  for (size_t attempt = 1; attempt <= 6; ++attempt) {
    for (size_t shard = 0; shard < 4; ++shard) {
      double base = policy.BackoffFor(attempt);
      double d = SupervisorBackoffSeconds(policy, attempt, 42, shard);
      EXPECT_GE(d, 0.5 * base) << attempt << "/" << shard;
      EXPECT_LT(d, 1.5 * base) << attempt << "/" << shard;
      // Deterministic: tests and reruns can pin the exact schedule.
      EXPECT_EQ(d, SupervisorBackoffSeconds(policy, attempt, 42, shard));
    }
  }
  // Shards spread out instead of thundering back in lockstep.
  EXPECT_NE(SupervisorBackoffSeconds(policy, 1, 42, 0),
            SupervisorBackoffSeconds(policy, 1, 42, 1));
}

JournalFileData ShardJournal(size_t servers, size_t shards, size_t shard_index) {
  JournalFileData data;
  JournalCohortRecord cohort;
  cohort.ordinal = 0;
  cohort.servers = servers;
  cohort.shards = shards;
  cohort.shard_index = shard_index;
  data.cohorts.push_back(cohort);
  return data;
}

TEST(NextPendingSiteTest, LowestUnjournaledUnquarantinedOfTheShard) {
  // Shard 1 of 2 over 6 servers owns global sites {1, 3, 5}.
  JournalFileData data = ShardJournal(6, 2, 1);
  EXPECT_EQ(NextPendingSite(data), (std::pair<size_t, size_t>{0, 1}));
  data.sites[{0, 1}] = JournalSiteRecord{};
  EXPECT_EQ(NextPendingSite(data), (std::pair<size_t, size_t>{0, 3}));
  JournalQuarantineRecord q;
  q.cohort_ordinal = 0;
  q.site_index = 3;
  data.quarantines.push_back(q);
  EXPECT_EQ(NextPendingSite(data), (std::pair<size_t, size_t>{0, 5}));
  data.sites[{0, 5}] = JournalSiteRecord{};
  EXPECT_EQ(NextPendingSite(data), std::nullopt);
  // No cohort record at all: startup crash, nothing to blame.
  EXPECT_EQ(NextPendingSite(JournalFileData{}), std::nullopt);
}

TEST(QuarantineTrackerTest, BlamesOnlyRepeatedNoProgressCrashes) {
  QuarantineTracker tracker(2, 3);
  std::pair<size_t, size_t> site{0, 5};
  EXPECT_FALSE(tracker.ObserveCrash(0, site, 4));
  EXPECT_FALSE(tracker.ObserveCrash(0, site, 4));
  EXPECT_TRUE(tracker.ObserveCrash(0, site, 4));  // third strike
  EXPECT_EQ(tracker.Blames(0), 3u);
  tracker.Reset(0);
  EXPECT_EQ(tracker.Blames(0), 0u);

  // Journal progress between crashes exonerates the suspect.
  EXPECT_FALSE(tracker.ObserveCrash(0, site, 4));
  EXPECT_FALSE(tracker.ObserveCrash(0, site, 5));
  EXPECT_FALSE(tracker.ObserveCrash(0, site, 5));
  EXPECT_TRUE(tracker.ObserveCrash(0, site, 5));

  // A different suspect starts a fresh streak; shards are independent.
  tracker.Reset(0);
  EXPECT_FALSE(tracker.ObserveCrash(0, site, 7));
  EXPECT_FALSE(tracker.ObserveCrash(0, std::pair<size_t, size_t>{0, 7}, 7));
  EXPECT_FALSE(tracker.ObserveCrash(1, site, 7));
  EXPECT_EQ(tracker.Blames(0), 1u);
  EXPECT_EQ(tracker.Blames(1), 1u);

  // A crash with no suspect (startup death) clears the streak entirely.
  EXPECT_FALSE(tracker.ObserveCrash(0, std::nullopt, 7));
  EXPECT_EQ(tracker.Blames(0), 0u);
}

// ---- end-to-end state machine with /bin/sh workers ------------------------

SupervisorOptions ShellOptions(size_t shards, std::string script) {
  SupervisorOptions opt;
  opt.shards = shards;
  opt.command = [script](size_t shard) {
    return std::vector<std::string>{"/bin/sh", "-c", script,
                                    "worker" + std::to_string(shard)};
  };
  for (size_t j = 0; j < shards; ++j) {
    opt.journal_paths.push_back(TempPath("sup_none_" + std::to_string(j) + ".jsonl"));
  }
  // Keep the test fast: millisecond backoffs, tight polling, quiet logs.
  opt.retry.initial_backoff = 0.001;
  opt.retry.max_backoff = 0.01;
  opt.poll_interval = 0.005;
  opt.log = nullptr;
  return opt;
}

TEST(SurveySupervisorTest, AllWorkersSucceeding) {
  SurveySupervisor supervisor(ShellOptions(3, "exit 0"));
  SupervisorResult result = supervisor.Run();
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.restarts, 0u);
  for (const SupervisorShardStatus& shard : result.shards) {
    EXPECT_TRUE(shard.completed);
    EXPECT_EQ(shard.launches, 1u);
  }
}

TEST(SurveySupervisorTest, RetryableCrashIsRestartedUntilSuccess) {
  // Each worker fails its first run, then succeeds once its marker exists.
  for (size_t j = 0; j < 2; ++j) {
    remove(TempPath("sup_marker_worker" + std::to_string(j)).c_str());
  }
  SupervisorOptions opt = ShellOptions(2, "exit 1");
  opt.command = [](size_t shard) {
    std::string marker = TempPath("sup_marker_worker" + std::to_string(shard));
    return std::vector<std::string>{
        "/bin/sh", "-c",
        "[ -f " + marker + " ] && exit 0; touch " + marker + "; exit 1"};
  };
  SurveySupervisor supervisor(std::move(opt));
  SupervisorResult result = supervisor.Run();
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.restarts, 2u);
  for (size_t j = 0; j < 2; ++j) {
    EXPECT_EQ(result.shards[j].launches, 2u);
    EXPECT_EQ(result.shards[j].crashes, 1u);
    remove(TempPath("sup_marker_worker" + std::to_string(j)).c_str());
  }
}

TEST(SurveySupervisorTest, PermanentExitCodeIsNeverRestarted) {
  SurveySupervisor supervisor(ShellOptions(2, "exit 3"));
  SupervisorResult result = supervisor.Run();
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.interrupted);
  EXPECT_NE(result.error.find("permanent"), std::string::npos) << result.error;
  for (const SupervisorShardStatus& shard : result.shards) {
    EXPECT_EQ(shard.launches, 1u);  // no restart on exit 3
  }
}

TEST(SurveySupervisorTest, CrashLoopWithoutProgressGivesUpAfterMaxAttempts) {
  SupervisorOptions opt = ShellOptions(1, "exit 1");
  opt.retry.max_attempts = 3;
  SurveySupervisor supervisor(std::move(opt));
  SupervisorResult result = supervisor.Run();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("without progress"), std::string::npos) << result.error;
  EXPECT_EQ(result.shards[0].launches, 3u);
}

TEST(SurveySupervisorTest, HungWorkerIsKilledAndCounted) {
  SupervisorOptions opt = ShellOptions(1, "sleep 30");
  opt.hang_timeout = 0.15;
  opt.retry.max_attempts = 2;
  SurveySupervisor supervisor(std::move(opt));
  SupervisorResult result = supervisor.Run();
  EXPECT_FALSE(result.ok);
  EXPECT_GE(result.hang_kills, 2u);
  EXPECT_NE(result.error.find("hung"), std::string::npos) << result.error;
}

TEST(SurveySupervisorTest, ShutdownSignalDrainsTheFleet) {
  SupervisorOptions opt = ShellOptions(2, "sleep 30");
  SurveySupervisor supervisor(std::move(opt));
  // Run() installs handlers and clears the flag, so raise the request from a
  // helper thread once the workers are up.
  std::thread interrupter([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    RequestShutdown();
  });
  SupervisorResult result = supervisor.Run();
  interrupter.join();
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.interrupted);
  for (const SupervisorShardStatus& shard : result.shards) {
    EXPECT_FALSE(shard.completed);
  }
}

}  // namespace
}  // namespace mfc
