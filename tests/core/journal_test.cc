// Write-ahead experiment journal: codec round-trips, corruption recovery,
// and the deterministic-resume contract (a killed survey resumed with a
// different jobs count reproduces an uninterrupted run byte for byte).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/experiment_runner.h"
#include "src/core/export.h"
#include "src/core/journal/journal.h"
#include "src/core/journal/json.h"
#include "src/core/journal/shutdown.h"
#include "src/core/survey.h"

namespace mfc {
namespace {

std::string TempPath(const std::string& name) { return testing::TempDir() + name; }

std::string Slurp(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string contents;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  fclose(f);
  return contents;
}

void Spit(const std::string& path, const std::string& contents) {
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  fwrite(contents.data(), 1, contents.size(), f);
  fclose(f);
}

// ---- exact-double and JSON layer ----------------------------------------

TEST(ExactDoubleTest, RoundTripsBitPatterns) {
  const double values[] = {0.0,    -0.0,   0.1,  1.0 / 3.0, -3.25, 1e308,
                           5e-324, 1e-300, 42.0, 123456.789};
  for (double v : values) {
    double back = 0.0;
    ASSERT_TRUE(DecodeExactDouble(EncodeExactDouble(v), &back));
    EXPECT_EQ(memcmp(&v, &back, sizeof(v)), 0) << v;
  }
}

TEST(ExactDoubleTest, RejectsMalformedEncodings) {
  double out = 0.0;
  EXPECT_FALSE(DecodeExactDouble("", &out));
  EXPECT_FALSE(DecodeExactDouble("x123", &out));                   // too short
  EXPECT_FALSE(DecodeExactDouble("y0000000000000000", &out));      // bad prefix
  EXPECT_FALSE(DecodeExactDouble("x000000000000000G", &out));      // bad hex
  EXPECT_FALSE(DecodeExactDouble("x00000000000000000", &out));     // too long
}

TEST(JournalJsonTest, ParsesNestedDocument) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(R"({"a":[1,2,{"b":"x\"y"}],"c":true,"d":null})", &doc, &error)) << error;
  const JsonValue* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 3u);
  bool ok = false;
  EXPECT_EQ(a->items[1].U64(&ok), 2u);
  EXPECT_TRUE(ok);
  EXPECT_EQ(a->items[2].Find("b")->scalar, "x\"y");
  EXPECT_TRUE(doc.Find("c")->Bool(&ok));
}

TEST(JournalJsonTest, RejectsTrailingGarbage) {
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(ParseJson(R"({"a":1} trailing)", &doc, &error));
  EXPECT_FALSE(ParseJson(R"({"a":)", &doc, &error));
  EXPECT_FALSE(ParseJson("", &doc, &error));
}

// ---- record codecs -------------------------------------------------------

ExperimentResult MakeResult() {
  ExperimentResult result;
  result.registered_clients = 61;
  StageResult stage;
  stage.kind = StageKind::kSmallQuery;
  stage.stopped = true;
  stage.stopping_crowd_size = 25;
  stage.max_crowd_tested = 30;
  stage.end_reason = StageEndReason::kConstraintFound;
  stage.end_detail = "metric 123.4 ms > theta \"quoted\"";
  stage.total_requests = 77;
  stage.started = 1.5;
  stage.finished = 208.25 + 0.1;  // force a non-terminating binary fraction
  EpochResult epoch;
  epoch.crowd_size = 25;
  epoch.samples_received = 24;
  epoch.samples_expected = 25;
  epoch.metric = 0.1234567;
  epoch.exceeded_threshold = true;
  epoch.check_phase = true;
  RequestSample sample;
  sample.client_id = 7;
  sample.code = HttpStatus::kOk;
  sample.bytes = 2048;
  sample.response_time = 0.105;
  sample.normalized = 1.0 / 3.0;
  sample.timed_out = false;
  epoch.samples.push_back(sample);
  sample.client_id = 8;
  sample.code = HttpStatus::kClientTimeout;
  sample.timed_out = true;
  epoch.samples.push_back(sample);
  stage.epochs.push_back(epoch);
  result.stages.push_back(stage);
  return result;
}

TEST(JournalCodecTest, ExperimentResultRoundTrips) {
  ExperimentResult original = MakeResult();
  std::string encoded = EncodeExperimentResult(original);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(encoded, &doc, &error)) << error;
  ExperimentResult decoded;
  ASSERT_TRUE(DecodeExperimentResult(doc, &decoded));
  // Re-encoding must be byte-identical: the codec loses nothing.
  EXPECT_EQ(EncodeExperimentResult(decoded), encoded);
  EXPECT_EQ(decoded.registered_clients, 61u);
  ASSERT_EQ(decoded.stages.size(), 1u);
  EXPECT_EQ(decoded.stages[0].kind, StageKind::kSmallQuery);
  EXPECT_EQ(decoded.stages[0].end_detail, original.stages[0].end_detail);
  ASSERT_EQ(decoded.stages[0].epochs.size(), 1u);
  const RequestSample& s = decoded.stages[0].epochs[0].samples[1];
  EXPECT_EQ(s.code, HttpStatus::kClientTimeout);
  EXPECT_TRUE(s.timed_out);
  EXPECT_EQ(memcmp(&s.normalized, &original.stages[0].epochs[0].samples[1].normalized,
                   sizeof(double)),
            0);
}

TEST(JournalCodecTest, MetricsRoundTrip) {
  MetricsRegistry metrics;
  metrics.Add("req.count", 3.0);
  metrics.Set("queue.depth", 17.5);
  metrics.Observe("rt", 0.1);
  metrics.Observe("rt", 0.3);
  metrics.Observe("rt", 0.25);
  metrics.HistObserve("lat", LatencyBucketEdgesMs(), 12.0);
  metrics.HistObserve("lat", LatencyBucketEdgesMs(), 700.0);
  std::string encoded = EncodeMetrics(metrics);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(encoded, &doc, &error)) << error;
  MetricsRegistry decoded;
  ASSERT_TRUE(DecodeMetrics(doc, &decoded));
  EXPECT_TRUE(decoded == metrics);
  EXPECT_EQ(EncodeMetrics(decoded), encoded);
}

TEST(JournalCodecTest, TraceSpansRoundTrip) {
  Tracer tracer;
  SpanId root = tracer.StartSpan("request", "server", 0, 1.0);
  SpanId child = tracer.StartSpan("cpu", "server", root, 1.25);
  tracer.Attr(child, "budget_s", 0.125);
  tracer.EndSpan(child, 1.5);
  tracer.EndSpan(root, 2.0);
  std::string encoded = EncodeTraceSpans(tracer.Spans());
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(encoded, &doc, &error)) << error;
  std::vector<TraceSpan> decoded;
  ASSERT_TRUE(DecodeTraceSpans(doc, &decoded));
  EXPECT_EQ(EncodeTraceSpans(decoded), encoded);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[1].parent, root);
  EXPECT_EQ(decoded[1].attrs.size(), 1u);
  EXPECT_FALSE(decoded[0].open);
}

TEST(JournalCodecTest, FrameCarriesVerifiableChecksum) {
  std::string body = R"({"type":"site","index":3})";
  std::string line = FrameJournalRecord(body);
  ASSERT_EQ(line.back(), '\n');
  // The frame embeds the body verbatim and a 16-hex fnv1a64 of it.
  EXPECT_NE(line.find(body), std::string::npos);
  char expect[24];
  snprintf(expect, sizeof(expect), "%016llx",
           static_cast<unsigned long long>(Fnv1a64(body)));
  EXPECT_NE(line.find(expect), std::string::npos);
}

// ---- survey journal: resume determinism ----------------------------------

constexpr Cohort kCohort = Cohort::kStartup;
constexpr StageKind kStage = StageKind::kBase;
constexpr size_t kServers = 3;
constexpr size_t kMaxCrowd = 20;
constexpr uint64_t kSeed = 901;
constexpr char kTool[] = "journal_test";
constexpr char kPrint[] = "trace=1;metrics=1";

struct SurveyOut {
  SurveyBreakdown breakdown;
  std::vector<ExperimentResult> per_site;
  SurveyTelemetry telemetry;
};

void RunCohort(SurveyOut* out, size_t jobs, SurveyJournal* journal) {
  out->telemetry.collect_trace = true;
  out->telemetry.collect_metrics = true;
  out->breakdown = RunSurveyCohortParallel(kCohort, kStage, kServers, kMaxCrowd, kSeed, jobs,
                                           &out->per_site, &out->telemetry, journal);
}

std::string EncodeAll(const std::vector<ExperimentResult>& results) {
  std::string all;
  for (const ExperimentResult& r : results) {
    all += EncodeExperimentResult(r);
    all += '\n';
  }
  return all;
}

void ExpectSameOutput(const SurveyOut& a, const SurveyOut& b) {
  EXPECT_EQ(a.breakdown, b.breakdown);
  EXPECT_EQ(EncodeAll(a.per_site), EncodeAll(b.per_site));
  EXPECT_TRUE(a.telemetry.metrics == b.telemetry.metrics);
  EXPECT_EQ(ExportTraceJson(a.telemetry.trace), ExportTraceJson(b.telemetry.trace));
}

std::vector<std::string> SortedLines(const std::string& contents) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < contents.size()) {
    size_t newline = contents.find('\n', pos);
    lines.push_back(contents.substr(pos, newline - pos));
    pos = newline == std::string::npos ? contents.size() : newline + 1;
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::unique_ptr<SurveyJournal> OpenForTest(const std::string& path, bool resume) {
  std::string error;
  std::unique_ptr<SurveyJournal> journal = SurveyJournal::Open(path, kTool, kPrint, resume,
                                                               &error);
  EXPECT_NE(journal, nullptr) << error;
  if (journal != nullptr) {
    std::string begin_error;
    EXPECT_TRUE(journal->BeginCohort(kCohort, kStage, kServers, kMaxCrowd, kSeed, 0,
                                     &begin_error))
        << begin_error;
  }
  return journal;
}

TEST(SurveyJournalTest, FreshJournalMatchesPlainRun) {
  std::string path = TempPath("journal_fresh.jsonl");
  remove(path.c_str());
  SurveyOut plain;
  RunCohort(&plain, 1, nullptr);
  SurveyOut journaled;
  {
    auto journal = OpenForTest(path, false);
    ASSERT_NE(journal, nullptr);
    RunCohort(&journaled, 2, journal.get());
    EXPECT_EQ(journal->executed_sites.load(), kServers);
    EXPECT_EQ(journal->resumed_sites.load(), 0u);
    EXPECT_FALSE(journal->interrupted.load());
  }
  ExpectSameOutput(plain, journaled);
  remove(path.c_str());
}

// Kill points are simulated by truncating the journal to its first K site
// records — exactly the on-disk state a crash after K completed sites
// leaves, since every append is framed and fsynced.
TEST(SurveyJournalTest, ResumeFromAnyPrefixIsBitIdentical) {
  std::string path = TempPath("journal_prefix.jsonl");
  remove(path.c_str());
  SurveyOut plain;
  RunCohort(&plain, 1, nullptr);
  {
    auto journal = OpenForTest(path, false);
    ASSERT_NE(journal, nullptr);
    SurveyOut full;
    RunCohort(&full, 1, journal.get());
  }
  std::string contents = Slurp(path);
  for (size_t keep_sites : {size_t{0}, size_t{1}, kServers - 1}) {
    // Keep the header + cohort record + keep_sites site records.
    size_t keep_lines = 2 + keep_sites;
    size_t offset = 0;
    for (size_t line = 0; line < keep_lines; ++line) {
      offset = contents.find('\n', offset) + 1;
    }
    std::string truncated = contents.substr(0, offset);
    Spit(path, truncated);
    auto journal = OpenForTest(path, true);
    ASSERT_NE(journal, nullptr);
    EXPECT_TRUE(journal->Warning().empty()) << journal->Warning();
    SurveyOut resumed;
    RunCohort(&resumed, keep_sites + 1, journal.get());  // a different jobs count
    EXPECT_EQ(journal->resumed_sites.load(), keep_sites);
    EXPECT_EQ(journal->executed_sites.load(), kServers - keep_sites);
    ExpectSameOutput(plain, resumed);
    // Completion must rebuild the full journal — same records, though with
    // jobs > 1 the re-executed suffix may append in completion order.
    EXPECT_EQ(SortedLines(Slurp(path)), SortedLines(contents))
        << "keep_sites=" << keep_sites;
  }
  remove(path.c_str());
}

TEST(SurveyJournalTest, CorruptTailDroppedAndRecovered) {
  std::string path = TempPath("journal_corrupt_tail.jsonl");
  remove(path.c_str());
  SurveyOut plain;
  RunCohort(&plain, 1, nullptr);
  {
    auto journal = OpenForTest(path, false);
    SurveyOut full;
    RunCohort(&full, 1, journal.get());
  }
  std::string contents = Slurp(path);
  // A torn final write: half a record with no newline.
  Spit(path, contents.substr(0, contents.size() - 40));
  {
    auto journal = OpenForTest(path, true);
    ASSERT_NE(journal, nullptr);
    EXPECT_FALSE(journal->Warning().empty());
    EXPECT_EQ(journal->RecordsDropped(), 1u);
    SurveyOut resumed;
    RunCohort(&resumed, 2, journal.get());
    ExpectSameOutput(plain, resumed);
  }
  EXPECT_EQ(Slurp(path), contents);
  remove(path.c_str());
}

TEST(SurveyJournalTest, ChecksumMismatchDropsRecordAndSuffix) {
  std::string path = TempPath("journal_corrupt_mid.jsonl");
  remove(path.c_str());
  {
    auto journal = OpenForTest(path, false);
    SurveyOut full;
    RunCohort(&full, 1, journal.get());
  }
  std::string contents = Slurp(path);
  // Flip one byte inside the first site record's body (line 3): the frame
  // stays well-formed but the checksum no longer matches.
  size_t line3 = contents.find('\n', contents.find('\n') + 1) + 1;
  std::string corrupted = contents;
  size_t flip = corrupted.find("\"result\"", line3) + 1;
  corrupted[flip] = corrupted[flip] == 'r' ? 'R' : 'r';
  Spit(path, corrupted);
  auto journal = OpenForTest(path, true);
  ASSERT_NE(journal, nullptr);
  EXPECT_FALSE(journal->Warning().empty());
  // The bad record and everything after it are gone; only the prefix replays.
  EXPECT_EQ(journal->RecordsDropped(), kServers);
  EXPECT_EQ(journal->Replayed(0), nullptr);
  SurveyOut plain;
  RunCohort(&plain, 1, nullptr);
  SurveyOut resumed;
  RunCohort(&resumed, 1, journal.get());
  EXPECT_EQ(journal->resumed_sites.load(), 0u);
  EXPECT_EQ(journal->executed_sites.load(), kServers);
  ExpectSameOutput(plain, resumed);
  remove(path.c_str());
}

TEST(SurveyJournalTest, FingerprintMismatchIsHardError) {
  std::string path = TempPath("journal_fingerprint.jsonl");
  remove(path.c_str());
  {
    std::string error;
    auto journal = SurveyJournal::Open(path, kTool, kPrint, false, &error);
    ASSERT_NE(journal, nullptr);
  }
  std::string error;
  EXPECT_EQ(SurveyJournal::Open(path, kTool, "trace=0;metrics=0", true, &error), nullptr);
  EXPECT_NE(error.find("different run"), std::string::npos) << error;
  EXPECT_EQ(SurveyJournal::Open(path, "other_tool", kPrint, true, &error), nullptr);
  remove(path.c_str());
}

TEST(SurveyJournalTest, NotAJournalIsHardError) {
  std::string path = TempPath("journal_not_a_journal.jsonl");
  Spit(path, "this is not a journal\n");
  std::string error;
  EXPECT_EQ(SurveyJournal::Open(path, kTool, kPrint, true, &error), nullptr);
  EXPECT_NE(error.find("not an mfc journal"), std::string::npos) << error;
  // Crucially, the unrecognized file must survive untouched — Open must
  // never truncate or overwrite something that is not a journal.
  EXPECT_EQ(Slurp(path), "this is not a journal\n");
  remove(path.c_str());
}

TEST(SurveyJournalTest, CohortConfigMismatchFailsBeginCohort) {
  std::string path = TempPath("journal_cohort_mismatch.jsonl");
  remove(path.c_str());
  {
    auto journal = OpenForTest(path, false);
    ASSERT_NE(journal, nullptr);
  }
  std::string error;
  auto journal = SurveyJournal::Open(path, kTool, kPrint, true, &error);
  ASSERT_NE(journal, nullptr) << error;
  std::string begin_error;
  EXPECT_FALSE(journal->BeginCohort(kCohort, kStage, kServers + 1, kMaxCrowd, kSeed, 0,
                                    &begin_error));
  EXPECT_NE(begin_error.find("mismatch"), std::string::npos) << begin_error;
  remove(path.c_str());
}

TEST(SurveyJournalTest, ExistingRecordsRequireResume) {
  std::string path = TempPath("journal_needs_resume.jsonl");
  remove(path.c_str());
  {
    auto journal = OpenForTest(path, false);
    ASSERT_NE(journal, nullptr);
  }
  std::string error;
  EXPECT_EQ(SurveyJournal::Open(path, kTool, kPrint, false, &error), nullptr);
  EXPECT_NE(error.find("--resume"), std::string::npos) << error;
  remove(path.c_str());
}

TEST(SurveyJournalTest, ShutdownRequestInterruptsThenResumeCompletes) {
  std::string path = TempPath("journal_shutdown.jsonl");
  remove(path.c_str());
  SurveyOut plain;
  RunCohort(&plain, 1, nullptr);
  {
    auto journal = OpenForTest(path, false);
    ASSERT_NE(journal, nullptr);
    RequestShutdown();
    SurveyOut interrupted;
    RunCohort(&interrupted, 1, journal.get());
    ClearShutdownRequest();
    EXPECT_TRUE(journal->interrupted.load());
    EXPECT_EQ(journal->executed_sites.load(), 0u);
  }
  auto journal = OpenForTest(path, true);
  ASSERT_NE(journal, nullptr);
  SurveyOut resumed;
  RunCohort(&resumed, 2, journal.get());
  EXPECT_FALSE(journal->interrupted.load());
  EXPECT_EQ(journal->executed_sites.load(), kServers);
  ExpectSameOutput(plain, resumed);
  remove(path.c_str());
}

TEST(SurveyJournalTest, RunSurveyExperimentReplaysSingleSites) {
  std::string path = TempPath("journal_single.jsonl");
  remove(path.c_str());
  ExperimentConfig config;
  config.max_crowd = kMaxCrowd;
  std::string error;
  std::string first;
  {
    auto journal = SurveyJournal::Open(path, kTool, "single", false, &error);
    ASSERT_NE(journal, nullptr) << error;
    Rng rng(kSeed);
    for (size_t i = 0; i < 2; ++i) {
      ExperimentResult result = RunSurveyExperiment(rng, kCohort, config, {kStage},
                                                    kSeed * 1000 + i, journal.get(), i);
      first += EncodeExperimentResult(result);
    }
    EXPECT_EQ(journal->executed_sites.load(), 2u);
  }
  auto journal = SurveyJournal::Open(path, kTool, "single", true, &error);
  ASSERT_NE(journal, nullptr) << error;
  Rng rng(kSeed);
  std::string second;
  for (size_t i = 0; i < 2; ++i) {
    ExperimentResult result = RunSurveyExperiment(rng, kCohort, config, {kStage},
                                                  kSeed * 1000 + i, journal.get(), i);
    second += EncodeExperimentResult(result);
  }
  EXPECT_EQ(journal->resumed_sites.load(), 2u);
  EXPECT_EQ(journal->executed_sites.load(), 0u);
  EXPECT_EQ(first, second);
  remove(path.c_str());
}

}  // namespace
}  // namespace mfc
