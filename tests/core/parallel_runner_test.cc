#include "src/core/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "src/core/survey.h"
#include "src/sim/rng.h"

namespace mfc {
namespace {

TEST(ParallelRunnerTest, RunsEveryIndexExactlyOnce) {
  ParallelRunner runner(4);
  std::vector<std::atomic<int>> hits(257);
  runner.RunIndexed(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelRunnerTest, ZeroTasksIsANoop) {
  ParallelRunner runner(4);
  runner.RunIndexed(0, [](size_t) { FAIL() << "no task should run"; });
}

TEST(ParallelRunnerTest, SingleJobRunsInlineInIndexOrder) {
  ParallelRunner runner(1);
  std::vector<size_t> order;
  runner.RunIndexed(16, [&](size_t i) { order.push_back(i); });
  std::vector<size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelRunnerTest, MapCollectsIndexOrderedResults) {
  ParallelRunner runner(8);
  std::vector<uint64_t> out =
      runner.Map<uint64_t>(100, [](size_t i) { return static_cast<uint64_t>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelRunnerTest, ResolveJobsPrefersExplicitThenEnv) {
  EXPECT_EQ(ResolveJobs(3), 3u);
  setenv("MFC_JOBS", "5", 1);
  EXPECT_EQ(ResolveJobs(0), 5u);
  EXPECT_EQ(ResolveJobs(2), 2u);  // explicit wins over env
  setenv("MFC_JOBS", "not-a-number", 1);
  EXPECT_GE(ResolveJobs(0), 1u);  // garbage env falls back to hardware
  unsetenv("MFC_JOBS");
  EXPECT_GE(ResolveJobs(0), 1u);
}

// ThreadSanitizer-visible stress: 8 workers x 64 tasks, each owning a
// per-task RNG and writing only its own result slot. Any cross-task sharing
// or a worker racing the join would show up under -DMFC_SANITIZE=thread.
TEST(ParallelRunnerTest, StressPerTaskRngsAndSlotsAreRaceFree) {
  constexpr size_t kTasks = 64;
  ParallelRunner runner(8);
  std::vector<uint64_t> parallel_sums(kTasks, 0);
  runner.RunIndexed(kTasks, [&](size_t i) {
    Rng rng(static_cast<uint64_t>(i) * 1000 + 17);
    uint64_t sum = 0;
    for (int draw = 0; draw < 1000; ++draw) {
      sum += rng.NextBelow(1 << 20);
    }
    parallel_sums[i] = sum;
  });
  // Same work sequentially must land in the same slots with the same values.
  for (size_t i = 0; i < kTasks; ++i) {
    Rng rng(static_cast<uint64_t>(i) * 1000 + 17);
    uint64_t sum = 0;
    for (int draw = 0; draw < 1000; ++draw) {
      sum += rng.NextBelow(1 << 20);
    }
    EXPECT_EQ(parallel_sums[i], sum) << "slot " << i;
  }
}

// Determinism contract of the survey runner: jobs=1 (the historical
// sequential path) and jobs=4 must produce an identical SurveyBreakdown and
// identical per-site stopping sizes.
TEST(ParallelRunnerTest, SurveyCohortIsBitIdenticalAcrossJobCounts) {
  constexpr size_t kServers = 10;
  std::vector<ExperimentResult> seq_results;
  SurveyBreakdown seq = RunSurveyCohortParallel(Cohort::kRank100KTo1M, StageKind::kBase,
                                                kServers, 40, 12345, 1, &seq_results);
  std::vector<ExperimentResult> par_results;
  SurveyBreakdown par = RunSurveyCohortParallel(Cohort::kRank100KTo1M, StageKind::kBase,
                                                kServers, 40, 12345, 4, &par_results);
  EXPECT_EQ(seq, par);
  ASSERT_EQ(seq_results.size(), kServers);
  ASSERT_EQ(par_results.size(), kServers);
  for (size_t i = 0; i < kServers; ++i) {
    ASSERT_EQ(seq_results[i].aborted, par_results[i].aborted) << "site " << i;
    ASSERT_EQ(seq_results[i].stages.size(), par_results[i].stages.size()) << "site " << i;
    for (size_t s = 0; s < seq_results[i].stages.size(); ++s) {
      const StageResult& a = seq_results[i].stages[s];
      const StageResult& b = par_results[i].stages[s];
      EXPECT_EQ(a.stopped, b.stopped) << "site " << i;
      EXPECT_EQ(a.stopping_crowd_size, b.stopping_crowd_size) << "site " << i;
      EXPECT_EQ(a.max_crowd_tested, b.max_crowd_tested) << "site " << i;
      EXPECT_EQ(a.total_requests, b.total_requests) << "site " << i;
      EXPECT_EQ(a.epochs.size(), b.epochs.size()) << "site " << i;
    }
  }
}

// Under --legacy-seeds the survey reproduces the old shared-Rng loop:
// sampling in index order from Rng(seed), experiments seeded seed * 1000 + i.
// (The default derivation is SplitMix64-mixed and collision-free; its
// contract is covered by shard_merge_test.)
TEST(ParallelRunnerTest, SurveyMatchesLegacySequentialLoop) {
  constexpr size_t kServers = 6;
  constexpr uint64_t kSeed = 777;
  SurveyRunOptions legacy_run;
  legacy_run.legacy_seeds = true;
  SurveyBreakdown modern =
      RunSurveyCohortParallel(Cohort::kStartup, StageKind::kBase, kServers, 30, kSeed, 1,
                              nullptr, nullptr, nullptr, legacy_run);

  SurveyBreakdown legacy;
  legacy.cohort = Cohort::kStartup;
  ExperimentConfig config;
  config.threshold = Millis(100);
  config.crowd_step = 5;
  config.max_crowd = 30;
  config.min_clients = 50;
  Rng rng(kSeed);
  for (size_t i = 0; i < kServers; ++i) {
    ExperimentResult result = RunSurveyExperiment(rng, Cohort::kStartup, config,
                                                  {StageKind::kBase}, kSeed * 1000 + i);
    AccumulateBreakdown(legacy, result);
  }
  EXPECT_EQ(modern, legacy);
}

}  // namespace
}  // namespace mfc
