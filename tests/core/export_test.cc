#include "src/core/export.h"

#include <gtest/gtest.h>

namespace mfc {
namespace {

ExperimentResult SampleResult() {
  ExperimentResult result;
  result.registered_clients = 60;
  StageResult stage;
  stage.kind = StageKind::kBase;
  stage.stopped = true;
  stage.stopping_crowd_size = 20;
  stage.max_crowd_tested = 20;
  stage.total_requests = 50;
  EpochResult a;
  a.crowd_size = 5;
  a.samples_received = 5;
  a.metric = Millis(12.5);
  EpochResult b;
  b.crowd_size = 20;
  b.samples_received = 19;
  b.metric = Millis(140);
  b.exceeded_threshold = true;
  EpochResult c = b;
  c.crowd_size = 19;
  c.check_phase = true;
  stage.epochs = {a, b, c};
  result.stages.push_back(stage);
  return result;
}

TEST(ExportCsvTest, HeaderAndRows) {
  std::string csv = ExportEpochsCsv(SampleResult());
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "stage,epoch,crowd_size,samples,metric_ms,exceeded,check_phase,stopped_stage");
  EXPECT_NE(csv.find("Base,1,5,5,12.500,0,0,1"), std::string::npos);
  EXPECT_NE(csv.find("Base,2,20,19,140.000,1,0,1"), std::string::npos);
  EXPECT_NE(csv.find("Base,3,19,19,140.000,1,1,1"), std::string::npos);
  // Exactly header + 3 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(ExportCsvTest, EmptyResult) {
  ExperimentResult result;
  std::string csv = ExportEpochsCsv(result);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);  // header only
}

TEST(ExportJsonTest, StructureAndVerdicts) {
  std::string json = ExportJson(SampleResult());
  EXPECT_NE(json.find("\"aborted\":false"), std::string::npos);
  EXPECT_NE(json.find("\"registered_clients\":60"), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"Base\""), std::string::npos);
  EXPECT_NE(json.find("\"stopped\":true"), std::string::npos);
  EXPECT_NE(json.find("\"stopping_crowd_size\":20"), std::string::npos);
  EXPECT_NE(json.find("\"crowd\":19"), std::string::npos);
  EXPECT_NE(json.find("\"check\":true"), std::string::npos);
}

TEST(ExportJsonTest, AbortedCarriesEscapedReason) {
  ExperimentResult result;
  result.aborted = true;
  result.abort_reason = "only \"12\" clients\nresponded";
  std::string json = ExportJson(result);
  EXPECT_NE(json.find("\"aborted\":true"), std::string::npos);
  EXPECT_NE(json.find("only \\\"12\\\" clients\\nresponded"), std::string::npos);
}

TEST(ExportJsonTest, NoStoppingSizeWhenNotStopped) {
  ExperimentResult result = SampleResult();
  result.stages[0].stopped = false;
  std::string json = ExportJson(result);
  EXPECT_EQ(json.find("stopping_crowd_size"), std::string::npos);
  EXPECT_NE(json.find("\"stopped\":false"), std::string::npos);
}

}  // namespace
}  // namespace mfc
