// End-to-end telemetry: a fixed-seed experiment must produce the documented
// span tree (request lifecycle + coordinator epochs) and merge-safe metrics,
// and the merged survey telemetry must not depend on the jobs count. The
// golden tests pin the structural shape (span vocabulary, parent links,
// counts; metric row names) of a fixed-seed run against files checked in
// under tests/golden/ — regenerate with MFC_UPDATE_GOLDEN=1 after an
// intentional instrumentation change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/experiment_runner.h"
#include "src/core/export.h"
#include "src/core/population.h"
#include "src/core/survey.h"

#ifndef MFC_GOLDEN_DIR
#define MFC_GOLDEN_DIR "tests/golden"
#endif

namespace mfc {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.threshold = Millis(100);
  config.crowd_step = 5;
  config.max_crowd = 55;
  config.min_clients = 50;
  return config;
}

struct Traced {
  Tracer tracer;
  MetricsRegistry metrics;
  ExperimentResult result;
};

Traced RunTracedQtnp(uint64_t seed) {
  Traced traced;
  Telemetry telemetry;
  telemetry.tracer = &traced.tracer;
  telemetry.metrics = &traced.metrics;
  traced.result = RunSiteExperiment(MakeQtnpProfile(), SmallConfig(),
                                    {StageKind::kBase, StageKind::kSmallQuery,
                                     StageKind::kLargeObject},
                                    seed, &telemetry);
  return traced;
}

// One line per (category, parent-name, name) with its occurrence count —
// the structural skeleton of the trace, independent of timing values.
std::string TraceStructure(const Tracer& tracer) {
  std::map<std::string, size_t> counts;
  for (const TraceSpan& span : tracer.Spans()) {
    const std::string parent =
        span.parent == 0 ? "-" : tracer.Spans()[span.parent - 1].name;
    ++counts[span.category + "|" + parent + "|" + span.name];
  }
  std::string out;
  for (const auto& [key, count] : counts) {
    out += key + "|" + std::to_string(count) + "\n";
  }
  return out;
}

// The kind,name,field skeleton of the metrics CSV (values stripped).
std::string MetricsStructure(const MetricsRegistry& metrics) {
  std::istringstream in(ExportMetricsCsv(metrics));
  std::string line, out;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {
      header = false;
      continue;
    }
    out += line.substr(0, line.rfind(',')) + "\n";
  }
  return out;
}

TEST(TelemetryIntegrationTest, RequestSpansDecomposeTheLifecycle) {
  Traced traced = RunTracedQtnp(17);
  ASSERT_FALSE(traced.result.aborted);

  std::vector<const TraceSpan*> requests = traced.tracer.Named("request");
  ASSERT_FALSE(requests.empty());

  // Index children by parent id once.
  std::map<SpanId, std::vector<const TraceSpan*>> children;
  for (const TraceSpan& span : traced.tracer.Spans()) {
    if (span.parent != 0) {
      children[span.parent].push_back(&span);
    }
  }

  size_t with_net = 0;
  for (const TraceSpan* request : requests) {
    EXPECT_FALSE(request->open);
    EXPECT_EQ(request->parent, 0u);
    std::map<std::string, size_t> kinds;
    for (const TraceSpan* child : children[request->id]) {
      ++kinds[child->name];
      // Children stay inside the request in simulated time and share its
      // render track.
      EXPECT_GE(child->start, request->start);
      EXPECT_LE(child->end, request->end + 1e-9);
      EXPECT_EQ(child->track, request->id);
    }
    EXPECT_EQ(kinds.count("queue"), 1u) << "request " << request->id;
    EXPECT_GE(kinds["cpu"], 1u) << "request " << request->id;
    with_net += kinds.count("net");
  }
  // Every successfully served request streams a body.
  EXPECT_GT(with_net, 0u);

  // The flushed metrics agree with the span tree.
  EXPECT_DOUBLE_EQ(traced.metrics.Counter("server.requests_total"),
                   static_cast<double>(requests.size()));
  ASSERT_NE(traced.metrics.Hist("server.request_ms"), nullptr);
  EXPECT_EQ(traced.metrics.Hist("server.request_ms")->Total(), requests.size());
}

TEST(TelemetryIntegrationTest, CoordinatorSpansCoverEpochsAndDecisions) {
  Traced traced = RunTracedQtnp(17);
  ASSERT_FALSE(traced.result.aborted);

  std::vector<const TraceSpan*> experiments = traced.tracer.Named("experiment");
  ASSERT_EQ(experiments.size(), 1u);
  std::vector<const TraceSpan*> stages = traced.tracer.Named("stage");
  ASSERT_EQ(stages.size(), 3u);
  for (const TraceSpan* stage : stages) {
    EXPECT_EQ(stage->parent, experiments[0]->id);
  }

  std::vector<const TraceSpan*> epochs = traced.tracer.Named("epoch");
  ASSERT_FALSE(epochs.empty());
  EXPECT_DOUBLE_EQ(traced.metrics.Counter("coord.epochs"),
                   static_cast<double>(epochs.size()));

  // QTNP stops in Base and SmallQuery (Table 1), so confirmation epochs ran
  // under a check_phase span and the stop decisions recorded a crowd size.
  std::vector<const TraceSpan*> checks = traced.tracer.Named("check_phase");
  EXPECT_FALSE(checks.empty());
  size_t check_epochs = 0;
  for (const TraceSpan* epoch : epochs) {
    if (traced.tracer.Spans()[epoch->parent - 1].name == "check_phase") {
      ++check_epochs;
    }
  }
  EXPECT_DOUBLE_EQ(traced.metrics.Counter("coord.check_epochs"),
                   static_cast<double>(check_epochs));

  std::vector<const TraceSpan*> decisions = traced.tracer.Named("stop_decision");
  ASSERT_EQ(decisions.size(), 3u);
  EXPECT_GE(traced.metrics.Counter("coord.stages_stopped"), 2.0);
}

TEST(TelemetryIntegrationTest, SurveyMergedTelemetryIndependentOfJobs) {
  auto run = [](size_t jobs) {
    SurveyTelemetry telemetry;
    telemetry.collect_trace = true;
    telemetry.collect_metrics = true;
    RunSurveyCohortParallel(Cohort::kRank100KTo1M, StageKind::kBase,
                            /*servers=*/6, /*max_crowd=*/40, /*seed=*/5, jobs,
                            nullptr, &telemetry);
    return telemetry;
  };
  SurveyTelemetry sequential = run(1);
  SurveyTelemetry parallel = run(4);

  EXPECT_TRUE(sequential.metrics == parallel.metrics);
  EXPECT_EQ(ExportMetricsCsv(sequential.metrics), ExportMetricsCsv(parallel.metrics));
  EXPECT_EQ(ExportTraceJson(sequential.trace), ExportTraceJson(parallel.trace));
}

class GoldenTest : public ::testing::Test {
 protected:
  static std::string GoldenPath(const std::string& name) {
    return std::string(MFC_GOLDEN_DIR) + "/" + name;
  }

  // Compares |actual| to the checked-in golden; rewrites the golden instead
  // when MFC_UPDATE_GOLDEN is set in the environment.
  static void CompareOrUpdate(const std::string& name, const std::string& actual) {
    const std::string path = GoldenPath(name);
    if (std::getenv("MFC_UPDATE_GOLDEN") != nullptr) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << actual;
      GTEST_SKIP() << "updated " << path;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden file " << path
                           << " (regenerate with MFC_UPDATE_GOLDEN=1)";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual, expected.str())
        << "structural drift vs " << path
        << " — if intentional, regenerate with MFC_UPDATE_GOLDEN=1";
  }
};

TEST_F(GoldenTest, FixedSeedTraceStructureMatchesGolden) {
  Traced traced = RunTracedQtnp(17);
  ASSERT_FALSE(traced.result.aborted);
  CompareOrUpdate("qtnp_seed17_trace_structure.txt", TraceStructure(traced.tracer));
}

TEST_F(GoldenTest, FixedSeedMetricsStructureMatchesGolden) {
  Traced traced = RunTracedQtnp(17);
  ASSERT_FALSE(traced.result.aborted);
  CompareOrUpdate("qtnp_seed17_metrics_structure.txt", MetricsStructure(traced.metrics));
}

}  // namespace
}  // namespace mfc
