#include <gtest/gtest.h>

#include "src/rt/reactor.h"
#include "src/rt/sockets.h"
#include "src/rt/wire.h"

namespace mfc {
namespace {

TEST(ReactorTest, NowIsMonotonic) {
  Reactor reactor;
  double a = reactor.Now();
  double b = reactor.Now();
  EXPECT_GE(b, a);
}

TEST(ReactorTest, TimerFiresApproximatelyOnTime) {
  Reactor reactor;
  double fired_at = -1.0;
  double start = reactor.Now();
  reactor.ScheduleAfter(0.02, [&] { fired_at = reactor.Now(); });
  reactor.RunUntil([&] { return fired_at >= 0.0; }, start + 1.0);
  ASSERT_GE(fired_at, 0.0);
  EXPECT_GE(fired_at - start, 0.018);
  EXPECT_LT(fired_at - start, 0.3);  // generous: CI boxes stall
}

TEST(ReactorTest, TimersFireInOrder) {
  Reactor reactor;
  std::vector<int> order;
  reactor.ScheduleAfter(0.02, [&] { order.push_back(2); });
  reactor.ScheduleAfter(0.01, [&] { order.push_back(1); });
  reactor.ScheduleAfter(0.03, [&] { order.push_back(3); });
  reactor.RunUntil([&] { return order.size() == 3; }, reactor.Now() + 1.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ReactorTest, CancelledTimerNeverFires) {
  Reactor reactor;
  bool fired = false;
  auto id = reactor.ScheduleAfter(0.01, [&] { fired = true; });
  EXPECT_TRUE(reactor.CancelTimer(id));
  EXPECT_FALSE(reactor.CancelTimer(id));
  reactor.RunUntil([] { return false; }, reactor.Now() + 0.05);
  EXPECT_FALSE(fired);
}

TEST(ReactorTest, RunUntilHonorsDeadline) {
  Reactor reactor;
  double start = reactor.Now();
  bool satisfied = reactor.RunUntil([] { return false; }, start + 0.05);
  EXPECT_FALSE(satisfied);
  EXPECT_GE(reactor.Now() - start, 0.045);
}

TEST(UdpSocketTest, RoundTrip) {
  Reactor reactor;
  UdpSocket a(reactor, 0);
  UdpSocket b(reactor, 0);
  std::string received;
  sockaddr_in from{};
  b.SetReceiver([&](std::string_view payload, const sockaddr_in& sender) {
    received = std::string(payload);
    from = sender;
  });
  a.SetReceiver([](std::string_view, const sockaddr_in&) {});
  a.SendTo("hello over udp", LoopbackEndpoint(b.Port()));
  reactor.RunUntil([&] { return !received.empty(); }, reactor.Now() + 1.0);
  EXPECT_EQ(received, "hello over udp");
  EXPECT_EQ(ntohs(from.sin_port), a.Port());
}

TEST(TcpTest, ConnectSendReceive) {
  Reactor reactor;
  std::unique_ptr<TcpConnection> server_side;
  TcpListener listener(reactor, 0, [&](std::unique_ptr<TcpConnection> conn) {
    server_side = std::move(conn);
    server_side->SetCallbacks(
        [&](std::string_view data) {
          // Echo.
          server_side->Write(data);
        },
        [] {});
  });

  std::string echoed;
  bool connected = false;
  auto client = TcpConnection::Connect(reactor, LoopbackEndpoint(listener.Port()),
                                       [&](bool ok) { connected = ok; });
  ASSERT_NE(client, nullptr);
  reactor.RunUntil([&] { return connected; }, reactor.Now() + 1.0);
  ASSERT_TRUE(connected);
  client->SetCallbacks([&](std::string_view data) { echoed.append(data); }, [] {});
  client->Write("ping");
  reactor.RunUntil([&] { return echoed.size() >= 4; }, reactor.Now() + 1.0);
  EXPECT_EQ(echoed, "ping");
  EXPECT_EQ(client->BytesReceived(), 4u);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  Reactor reactor;
  // Grab an ephemeral port then close it so nothing listens there.
  uint16_t dead_port;
  {
    TcpListener listener(reactor, 0, [](std::unique_ptr<TcpConnection>) {});
    dead_port = listener.Port();
  }
  bool done = false;
  bool ok = true;
  auto client = TcpConnection::Connect(reactor, LoopbackEndpoint(dead_port), [&](bool result) {
    ok = result;
    done = true;
  });
  ASSERT_NE(client, nullptr);
  reactor.RunUntil([&] { return done; }, reactor.Now() + 1.0);
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
}

TEST(WireTest, EncodeDecodeRoundTrip) {
  std::vector<ControlMessage> messages = {
      MsgRegister{42},
      MsgPing{7},
      MsgPong{7, {}},
      MsgRttProbe{9, 8080},
      MsgRtt{9, 1234},
      MsgMeasure{11, "HEAD", 8080, "/index.html"},
      MsgFire{12, 5, "GET", 8080, "/cgi/q.php?mfc=3"},
      MsgSample{12, 200, 102400, 83211, false, 0, {}},
  };
  for (const ControlMessage& message : messages) {
    std::string wire = EncodeMessage(message);
    auto decoded = DecodeMessage(wire);
    ASSERT_TRUE(decoded.has_value()) << wire;
    EXPECT_EQ(EncodeMessage(*decoded), wire);
  }
}

TEST(WireTest, DecodeRejectsMalformed) {
  const char* bad[] = {
      "",
      "NOPE 1",
      "REGISTER",
      "REGISTER abc",
      "PING 1 2",
      "MEASURE 1 BREW 80 /x",       // bad method
      "MEASURE 1 GET 80 noslash",   // target must start with '/'
      "FIRE 1 2 GET notaport /x",
      "SAMPLE 1 200 5",             // missing fields
  };
  for (const char* line : bad) {
    EXPECT_FALSE(DecodeMessage(line).has_value()) << line;
  }
}

TEST(WireTest, PongStatsTailRoundTrips) {
  AgentStats stats;
  stats.inflight = 2;
  stats.fetch_errors = 1;
  stats.rtt_ewma_us = 1500;
  stats.dedup_hits = 3;
  stats.fault_drops = 4;
  stats.requests_fired = 9;

  std::string wire = EncodeMessage(MsgPong{7, stats});
  EXPECT_EQ(wire, "PONG 7 2 1 1500 3 4 9");
  auto decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded.has_value());
  const auto& pong = std::get<MsgPong>(*decoded);
  EXPECT_EQ(pong.seq, 7u);
  ASSERT_TRUE(pong.stats.has_value());
  EXPECT_EQ(*pong.stats, stats);
}

TEST(WireTest, SampleStatsTailRoundTrips) {
  AgentStats stats;
  stats.inflight = 5;
  stats.requests_fired = 6;
  MsgSample sample{12, 200, 102400, 83211, false, 31, stats};
  std::string wire = EncodeMessage(sample);
  auto decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded.has_value());
  const auto& got = std::get<MsgSample>(*decoded);
  EXPECT_EQ(got.token, 12u);
  EXPECT_EQ(got.sample_id, 31u);
  ASSERT_TRUE(got.stats.has_value());
  EXPECT_EQ(*got.stats, stats);
  EXPECT_EQ(EncodeMessage(got), wire);
}

// A mixed fleet interoperates: the bare legacy encodings are byte-stable and
// decode with no stats payload attached.
TEST(WireTest, LegacyBareFormsUnchanged) {
  EXPECT_EQ(EncodeMessage(MsgPong{7, {}}), "PONG 7");
  auto pong = DecodeMessage("PONG 7");
  ASSERT_TRUE(pong.has_value());
  EXPECT_FALSE(std::get<MsgPong>(*pong).stats.has_value());

  MsgSample bare{12, 200, 102400, 83211, false, 31, {}};
  auto sample = DecodeMessage(EncodeMessage(bare));
  ASSERT_TRUE(sample.has_value());
  EXPECT_FALSE(std::get<MsgSample>(*sample).stats.has_value());
}

// A truncated or oversized stats tail is malformed, not silently accepted.
TEST(WireTest, PartialStatsTailRejected) {
  const char* bad[] = {
      "PONG 7 1",               // 1 of 6 stats words
      "PONG 7 1 2 3 4 5",       // 5 of 6
      "PONG 7 1 2 3 4 5 6 7",   // 7 of 6
      "PONG 7 1 2 3 4 5 x",     // non-numeric stats word
  };
  for (const char* line : bad) {
    EXPECT_FALSE(DecodeMessage(line).has_value()) << line;
  }
}

TEST(WireTest, DecodeToleratesExtraSpaces) {
  auto decoded = DecodeMessage("PING   5");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<MsgPing>(*decoded).seq, 5u);
}

}  // namespace
}  // namespace mfc
