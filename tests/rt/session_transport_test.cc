// Session + transport layer tests (DESIGN.md §13): MemoryHub datagram
// switching, reliable delivery with deterministic retransmits under injected
// loss (virtual time via SimTimerSource), receiver dedup, give-up, lane
// priority, cancellation, legacy fallback, and a real-UDP end-to-end pass.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/rt/fault_injector.h"
#include "src/rt/session.h"
#include "src/rt/transport.h"
#include "src/rt/wire.h"
#include "src/sim/event_loop.h"

namespace mfc {
namespace {

RetryPolicy FastRetry(size_t attempts) {
  RetryPolicy retry;
  retry.max_attempts = attempts;
  retry.initial_backoff = Millis(25);
  retry.multiplier = 2.0;
  retry.max_backoff = Millis(200);
  return retry;
}

SessionConfig ConnConfig(uint64_t conn, size_t attempts = 4) {
  SessionConfig config;
  config.conn = conn;
  config.retry = FastRetry(attempts);
  return config;
}

// Records every datagram handed to Send and delivers nothing — for
// observing the exact retransmit order the retry queue produces.
class RecordingTransport : public Transport {
 public:
  explicit RecordingTransport(TimerSource& clock) : clock_(clock) {}
  void Send(std::string_view payload, const TransportAddress& to) override {
    (void)to;
    sent.emplace_back(payload);
  }
  void SetReceiver(RecvCallback on_datagram) override { receiver_ = std::move(on_datagram); }
  TransportAddress LocalAddress() const override { return TransportAddress::Node(99); }
  TimerSource& clock() override { return clock_; }

  std::vector<std::string> sent;

 private:
  TimerSource& clock_;
  RecvCallback receiver_;
};

TEST(MemoryHubTest, DeliversBetweenEndpoints) {
  EventLoop loop;
  SimTimerSource clock(loop);
  MemoryHub hub(clock);
  auto a = hub.CreateEndpoint();
  auto b = hub.CreateEndpoint();

  std::string got;
  TransportAddress got_from;
  b->SetReceiver([&](std::string_view payload, const TransportAddress& from) {
    got = std::string(payload);
    got_from = from;
  });
  a->Send("hello", b->LocalAddress());
  EXPECT_TRUE(got.empty());  // delivery is asynchronous, like a socket
  loop.RunUntilIdle();
  EXPECT_EQ(got, "hello");
  EXPECT_TRUE(got_from == a->LocalAddress());
  EXPECT_EQ(hub.Delivered(), 1u);
}

TEST(MemoryHubTest, SendToMissingNodeIsDroppedLikeClosedPort) {
  EventLoop loop;
  SimTimerSource clock(loop);
  MemoryHub hub(clock);
  auto a = hub.CreateEndpoint();
  a->Send("into the void", TransportAddress::Node(12345));
  loop.RunUntilIdle();
  EXPECT_EQ(hub.Delivered(), 0u);
}

TEST(MemoryHubTest, EndpointDestroyedBeforeDeliveryDropsSafely) {
  EventLoop loop;
  SimTimerSource clock(loop);
  MemoryHub hub(clock);
  auto a = hub.CreateEndpoint();
  auto b = hub.CreateEndpoint();
  a->Send("late", b->LocalAddress());
  b.reset();  // destination gone while the delivery task is queued
  loop.RunUntilIdle();
  EXPECT_EQ(hub.Delivered(), 0u);
}

TEST(SessionTest, ReliableSendDeliversOnceAndAcks) {
  EventLoop loop;
  SimTimerSource clock(loop);
  MemoryHub hub(clock);
  auto send_ep = hub.CreateEndpoint();
  auto recv_ep = hub.CreateEndpoint();
  TransportAddress recv_addr = recv_ep->LocalAddress();
  Session sender(*send_ep, ConnConfig(10));
  Session receiver(*recv_ep, ConnConfig(20));

  size_t delivered = 0;
  uint64_t from_conn = 0;
  receiver.SetDeliveryHandler(
      [&](const ControlMessage& message, const TransportAddress&, uint64_t sender_conn) {
        delivered += std::holds_alternative<MsgPing>(message) ? 1 : 0;
        from_conn = sender_conn;
      });
  bool outcome_delivered = false;
  sender.SendReliable(MsgPing{7}, recv_addr, kLaneControl,
                      [&](bool ok) { outcome_delivered = ok; });
  EXPECT_EQ(sender.PendingReliable(), 1u);
  loop.RunUntilIdle();

  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(from_conn, 10u);
  EXPECT_TRUE(outcome_delivered);
  EXPECT_EQ(sender.PendingReliable(), 0u);
  EXPECT_EQ(sender.stats().frames_sent, 1u);
  EXPECT_EQ(sender.stats().retransmits, 0u);
  EXPECT_EQ(sender.stats().acks_received, 1u);
  EXPECT_EQ(receiver.stats().acks_sent, 1u);
  EXPECT_EQ(receiver.stats().delivered, 1u);
}

TEST(SessionTest, RetransmitsConvergeUnderDeterministicLoss) {
  // Virtual time + a seeded injector: the retransmit schedule is a pure
  // function of the seed, so two identical runs agree exactly.
  auto run_once = [](uint64_t seed) {
    EventLoop loop;
    SimTimerSource clock(loop);
    MemoryHub hub(clock);
    FaultConfig lossy;
    lossy.drop_rate = 0.5;
    lossy.seed = seed;
    FaultInjector injector(lossy);
    FaultedTransport lossy_ep(hub.CreateEndpoint(), &injector);
    auto recv_ep = hub.CreateEndpoint();
    Session sender(lossy_ep, ConnConfig(10, 10));
    Session receiver(*recv_ep, ConnConfig(20));
    size_t delivered = 0;
    receiver.SetDeliveryHandler(
        [&](const ControlMessage&, const TransportAddress&, uint64_t) { ++delivered; });
    size_t acked = 0;
    for (int i = 0; i < 20; ++i) {
      sender.SendReliable(MsgPing{static_cast<uint64_t>(i)}, recv_ep->LocalAddress(),
                          kLaneControl, [&](bool ok) { acked += ok ? 1 : 0; });
    }
    loop.RunUntilIdle();
    EXPECT_EQ(delivered, 20u);
    EXPECT_EQ(acked, 20u);
    EXPECT_EQ(sender.PendingReliable(), 0u);
    EXPECT_GT(sender.stats().retransmits, 0u);
    return std::pair<uint64_t, uint64_t>(sender.stats().retransmits,
                                         injector.stats().dropped);
  };
  auto first = run_once(42);
  auto second = run_once(42);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, run_once(43));  // and the seed actually matters
}

TEST(SessionTest, DuplicatedFramesDeliverOnceButAckEveryCopy) {
  EventLoop loop;
  SimTimerSource clock(loop);
  MemoryHub hub(clock);
  FaultConfig duper;
  duper.duplicate_rate = 1.0;  // every datagram sent twice
  duper.seed = 4;
  FaultInjector injector(duper);
  FaultedTransport dup_ep(hub.CreateEndpoint(), &injector);
  auto recv_ep = hub.CreateEndpoint();
  Session sender(dup_ep, ConnConfig(10));
  Session receiver(*recv_ep, ConnConfig(20));
  size_t delivered = 0;
  receiver.SetDeliveryHandler(
      [&](const ControlMessage&, const TransportAddress&, uint64_t) { ++delivered; });
  sender.SendReliable(MsgPing{1}, recv_ep->LocalAddress());
  loop.RunUntilIdle();

  EXPECT_EQ(delivered, 1u);  // exactly once despite the duplicate
  EXPECT_GE(receiver.stats().duplicates, 1u);
  // Duplicates are acked too (the first ack may have been the lost one).
  EXPECT_GE(receiver.stats().acks_sent, 2u);
  EXPECT_EQ(sender.PendingReliable(), 0u);
}

TEST(SessionTest, GivesUpAfterMaxAttempts) {
  EventLoop loop;
  SimTimerSource clock(loop);
  MemoryHub hub(clock);
  auto send_ep = hub.CreateEndpoint();
  Session sender(*send_ep, ConnConfig(10, 3));

  bool fired = false;
  bool outcome_delivered = true;
  sender.SendReliable(MsgPing{1}, TransportAddress::Node(404), kLaneControl, [&](bool ok) {
    fired = true;
    outcome_delivered = ok;
  });
  loop.RunUntilIdle();

  EXPECT_TRUE(fired);
  EXPECT_FALSE(outcome_delivered);
  EXPECT_EQ(sender.PendingReliable(), 0u);
  EXPECT_EQ(sender.stats().gave_up, 1u);
  // 1 first transmission + 2 retransmits = 3 attempts.
  EXPECT_EQ(sender.stats().frames_sent, 1u);
  EXPECT_EQ(sender.stats().retransmits, 2u);
}

TEST(SessionTest, CancelStopsRetransmitsAndSuppressesOutcome) {
  EventLoop loop;
  SimTimerSource clock(loop);
  MemoryHub hub(clock);
  auto send_ep = hub.CreateEndpoint();
  Session sender(*send_ep, ConnConfig(10, 8));

  bool fired = false;
  Session::TransferId id = sender.SendReliable(MsgPing{1}, TransportAddress::Node(404),
                                               kLaneControl, [&](bool) { fired = true; });
  EXPECT_TRUE(sender.Cancel(id));
  EXPECT_FALSE(sender.Cancel(id));  // already gone
  EXPECT_EQ(sender.PendingReliable(), 0u);
  loop.RunUntilIdle();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sender.stats().retransmits, 0u);
}

TEST(SessionTest, ControlLaneRetransmitsBeforeBulk) {
  EventLoop loop;
  SimTimerSource clock(loop);
  RecordingTransport blackhole(clock);
  Session sender(blackhole, ConnConfig(10, 2));

  // Bulk first, control second — identical due times, so the retry batch
  // order is purely the lane policy's doing.
  MsgSample sample;
  sample.token = 1;
  sender.SendReliable(sample, TransportAddress::Node(1), kLaneBulk);
  sender.SendReliable(MsgPing{2}, TransportAddress::Node(1), kLaneControl);
  loop.RunUntilIdle();

  ASSERT_EQ(blackhole.sent.size(), 4u);  // 2 first sends + 1 retransmit each
  auto lane_of = [](const std::string& datagram) {
    auto frame = DecodeSessionFrame(datagram);
    EXPECT_TRUE(frame.has_value()) << datagram;
    return frame.has_value() ? frame->lane : uint8_t{255};
  };
  EXPECT_EQ(lane_of(blackhole.sent[0]), kLaneBulk);     // send order
  EXPECT_EQ(lane_of(blackhole.sent[1]), kLaneControl);
  EXPECT_EQ(lane_of(blackhole.sent[2]), kLaneControl);  // retry batch: control first
  EXPECT_EQ(lane_of(blackhole.sent[3]), kLaneBulk);
}

TEST(SessionTest, LegacyBareDatagramsDeliverAsConnZero) {
  EventLoop loop;
  SimTimerSource clock(loop);
  MemoryHub hub(clock);
  auto legacy_ep = hub.CreateEndpoint();  // a pre-session peer: raw transport
  auto session_ep = hub.CreateEndpoint();
  Session receiver(*session_ep, ConnConfig(20));
  size_t delivered = 0;
  uint64_t from_conn = 99;
  receiver.SetDeliveryHandler(
      [&](const ControlMessage& message, const TransportAddress&, uint64_t sender_conn) {
        delivered += std::holds_alternative<MsgRegister>(message) ? 1 : 0;
        from_conn = sender_conn;
      });
  legacy_ep->Send(EncodeMessage(MsgRegister{5}), session_ep->LocalAddress());
  loop.RunUntilIdle();

  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(from_conn, 0u);  // the legacy sentinel
  EXPECT_EQ(receiver.stats().legacy_frames, 1u);
  EXPECT_EQ(receiver.stats().acks_sent, 0u);  // bare datagrams get no session ack
}

TEST(SessionTest, UndecodableDatagramsAreCountedAndDropped) {
  EventLoop loop;
  SimTimerSource clock(loop);
  MemoryHub hub(clock);
  auto raw = hub.CreateEndpoint();
  auto session_ep = hub.CreateEndpoint();
  Session receiver(*session_ep, ConnConfig(20));
  size_t delivered = 0;
  receiver.SetDeliveryHandler(
      [&](const ControlMessage&, const TransportAddress&, uint64_t) { ++delivered; });
  raw->Send("!! not a control message !!", session_ep->LocalAddress());
  raw->Send("S1 truncated", session_ep->LocalAddress());
  loop.RunUntilIdle();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(receiver.stats().decode_errors, 2u);
}

TEST(SessionTest, ReliableRoundTripOverRealUdp) {
  Reactor reactor;
  UdpTransport a(reactor, 0);
  UdpTransport b(reactor, 0);
  Session alice(a, ConnConfig(10));
  Session bob(b, ConnConfig(20));

  size_t bob_got = 0;
  bob.SetDeliveryHandler(
      [&](const ControlMessage& message, const TransportAddress& from, uint64_t sender_conn) {
        if (std::holds_alternative<MsgPing>(message) && sender_conn == 10) {
          ++bob_got;
          bob.SendReliable(MsgPong{std::get<MsgPing>(message).seq}, from);
        }
      });
  size_t alice_got = 0;
  alice.SetDeliveryHandler(
      [&](const ControlMessage& message, const TransportAddress&, uint64_t sender_conn) {
        alice_got += std::holds_alternative<MsgPong>(message) && sender_conn == 20 ? 1 : 0;
      });
  alice.SendReliable(MsgPing{7}, b.LocalAddress());
  ASSERT_TRUE(reactor.RunUntil([&] { return alice_got == 1; }, reactor.Now() + 5.0));
  // Alice's ack for the PONG is still in flight when she delivers it; let
  // Bob's side of the exchange finish too.
  ASSERT_TRUE(reactor.RunUntil([&] { return bob.PendingReliable() == 0; },
                               reactor.Now() + 5.0));
  EXPECT_EQ(bob_got, 1u);
  EXPECT_EQ(alice.PendingReliable(), 0u);
  EXPECT_EQ(bob.PendingReliable(), 0u);
  EXPECT_EQ(alice.stats().acks_received, 1u);
  EXPECT_EQ(bob.stats().acks_received, 1u);
}

TEST(SessionTest, UdpBatchedReceiveDrainsBurst) {
  // recvmmsg batching: a burst of datagrams larger than one recv batch must
  // all arrive, and the socket's batch counter must show fewer syscall
  // rounds than datagrams.
  Reactor reactor;
  UdpTransport sender(reactor, 0);
  UdpTransport receiver(reactor, 0);
  size_t got = 0;
  receiver.SetReceiver([&](std::string_view, const TransportAddress&) { ++got; });
  constexpr size_t kBurst = 100;
  for (size_t i = 0; i < kBurst; ++i) {
    sender.Send("PING " + std::to_string(i), receiver.LocalAddress());
  }
  ASSERT_TRUE(reactor.RunUntil([&] { return got == kBurst; }, reactor.Now() + 5.0));
  EXPECT_EQ(got, kBurst);
}

}  // namespace
}  // namespace mfc
