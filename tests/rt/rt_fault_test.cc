// Control-plane robustness tests for the live runtime: fault-injector
// behavior, lifetime safety of the async fetch/probe paths (ASan
// regressions), retry convergence under injected loss, and the end-to-end
// requirement that a faulted run reaches the same verdict as a clean one.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/content/site_generator.h"
#include "src/core/coordinator.h"
#include "src/rt/client_agent.h"
#include "src/rt/fault_injector.h"
#include "src/rt/http_fetch.h"
#include "src/rt/live_harness.h"
#include "src/rt/live_http_server.h"
#include "src/rt/transport.h"

namespace mfc {
namespace {

ContentStore TestSite() {
  ContentStore store;
  WebObject index;
  index.path = "/";
  index.content_class = ContentClass::kText;
  index.body = "<html>hello</html>";
  index.size_bytes = index.body.size();
  store.Add(index);
  return store;
}

RetryPolicy FastRetry(size_t attempts) {
  RetryPolicy retry;
  retry.max_attempts = attempts;
  retry.initial_backoff = Millis(25);
  retry.multiplier = 2.0;
  retry.max_backoff = Millis(200);
  return retry;
}

TEST(FaultInjectorTest, SeededPlansAreDeterministic) {
  FaultConfig config;
  config.drop_rate = 0.3;
  config.duplicate_rate = 0.2;
  config.delay_rate = 0.1;
  config.seed = 42;
  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 500; ++i) {
    auto pa = a.PlanDatagram(0.0);
    auto pb = b.PlanDatagram(0.0);
    EXPECT_EQ(pa.drop, pb.drop);
    EXPECT_EQ(pa.copies, pb.copies);
    EXPECT_EQ(pa.delay, pb.delay);
  }
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
}

TEST(FaultInjectorTest, DropRateRoughlyProportional) {
  FaultConfig config;
  config.drop_rate = 0.5;
  config.seed = 7;
  FaultInjector injector(config);
  for (int i = 0; i < 2000; ++i) {
    injector.PlanDatagram(0.0);
  }
  EXPECT_GT(injector.stats().dropped, 800u);
  EXPECT_LT(injector.stats().dropped, 1200u);
  EXPECT_EQ(injector.stats().datagrams, 2000u);
}

TEST(FaultInjectorTest, DeadAfterSilencesNode) {
  FaultConfig config;
  config.dead_after = 1.0;
  FaultInjector injector(config);
  EXPECT_FALSE(injector.PlanDatagram(10.0).drop);  // clock starts here
  EXPECT_FALSE(injector.PlanDatagram(10.5).drop);
  EXPECT_TRUE(injector.PlanDatagram(11.5).drop);
  EXPECT_TRUE(injector.PlanDatagram(99.0).drop);
}

TEST(FaultInjectorTest, ConnectFailureRateEdges) {
  FaultConfig always;
  always.connect_failure_rate = 1.0;
  FaultInjector fail(always);
  EXPECT_TRUE(fail.FailConnect());

  FaultConfig never;
  FaultInjector ok(never);
  EXPECT_FALSE(ok.FailConnect());
  EXPECT_EQ(ok.stats().failed_connects, 0u);
  EXPECT_EQ(fail.stats().failed_connects, 1u);
}

// Regression: Start() on a vetoed/failed connect schedules a 0-delay task
// reporting the failure. Destroying the fetch before the reactor drains used
// to leave that task dangling on a freed |this| (use-after-free under ASan).
TEST(HttpFetchFaultTest, DestroyWithPendingConnectFailureTaskIsSafe) {
  Reactor reactor;
  FaultConfig config;
  config.connect_failure_rate = 1.0;
  FaultInjector injector(config);

  bool called = false;
  HttpRequest request;
  request.target = "/";
  auto fetch = HttpFetch::Start(reactor, 9, request, 1.0,
                                [&](const FetchResult&) { called = true; }, &injector);
  ASSERT_NE(fetch, nullptr);
  fetch.reset();  // destroy while the failure report is still queued
  reactor.RunUntil([] { return false; }, reactor.Now() + 0.05);
  EXPECT_FALSE(called);  // destroying the handle cancels the operation
}

TEST(HttpFetchFaultTest, VetoedConnectReportsAsynchronously) {
  Reactor reactor;
  FaultConfig config;
  config.connect_failure_rate = 1.0;
  FaultInjector injector(config);

  bool done = false;
  FetchResult result;
  HttpRequest request;
  request.target = "/";
  auto fetch = HttpFetch::Start(reactor, 9, request, 1.0,
                                [&](const FetchResult& r) {
                                  result = r;
                                  done = true;
                                },
                                &injector);
  EXPECT_FALSE(done);  // failure must not be delivered from inside Start
  ASSERT_TRUE(reactor.RunUntil([&] { return done; }, reactor.Now() + 1.0));
  EXPECT_TRUE(result.connect_failed);
  EXPECT_EQ(result.status, HttpStatus::kServiceUnavailable);
}

// Captures control messages a client agent sends back, standing in for the
// coordinator.
class FakeCoordinator {
 public:
  explicit FakeCoordinator(Reactor& reactor) : socket_(reactor, 0) {
    socket_.SetReceiver([this](std::string_view payload, const sockaddr_in&) {
      auto message = DecodeMessage(payload);
      if (message.has_value()) {
        received.push_back(*message);
      }
    });
  }

  uint16_t Port() const { return socket_.Port(); }
  void Send(const ControlMessage& message, uint16_t agent_port) {
    socket_.SendTo(EncodeMessage(message), LoopbackEndpoint(agent_port));
  }

  template <typename T>
  size_t CountOf() const {
    size_t n = 0;
    for (const auto& m : received) {
      n += std::holds_alternative<T>(m) ? 1 : 0;
    }
    return n;
  }

  std::vector<ControlMessage> received;

 private:
  UdpSocket socket_;
};

// Regression: the RTT-probe completion lambda erases the probe connection via
// a 0-delay task capturing |this|; destroying the agent first used to leave
// the task touching a freed agent.
TEST(ClientAgentFaultTest, DestroyWithInFlightRttProbeIsSafe) {
  Reactor reactor;
  ContentStore content = TestSite();
  LiveHttpServer server(reactor, &content);
  FakeCoordinator coordinator(reactor);

  auto agent = std::make_unique<ClientAgent>(reactor, 1,
                                             LoopbackEndpoint(coordinator.Port()));
  coordinator.Send(MsgRttProbe{5, server.Port()}, agent->ControlPort());
  // Run until the agent's RTT reply lands: the probe's self-erase task is
  // scheduled around now and may still be queued.
  ASSERT_TRUE(reactor.RunUntil([&] { return coordinator.CountOf<MsgRtt>() > 0; },
                               reactor.Now() + 2.0));
  agent.reset();
  reactor.RunUntil([] { return false; }, reactor.Now() + 0.05);  // ASan verdict
}

TEST(ClientAgentFaultTest, DestroyImmediatelyAfterProbeIsSafe) {
  Reactor reactor;
  ContentStore content = TestSite();
  LiveHttpServer server(reactor, &content);
  FakeCoordinator coordinator(reactor);

  auto agent = std::make_unique<ClientAgent>(reactor, 1,
                                             LoopbackEndpoint(coordinator.Port()));
  coordinator.Send(MsgRttProbe{5, server.Port()}, agent->ControlPort());
  reactor.RunUntil([] { return false; }, reactor.Now() + 0.001);  // deliver datagram
  agent.reset();  // connect callback may still be pending
  reactor.RunUntil([] { return false; }, reactor.Now() + 0.1);
}

TEST(ClientAgentFaultTest, RttProbeConnectFailureGetsExplicitReply) {
  Reactor reactor;
  FakeCoordinator coordinator(reactor);
  FaultConfig config;
  config.connect_failure_rate = 1.0;
  FaultInjector injector(config);

  ClientAgent agent(reactor, 1, LoopbackEndpoint(coordinator.Port()));
  agent.set_fault_injector(&injector);
  coordinator.Send(MsgRttProbe{5, 9}, agent.ControlPort());
  ASSERT_TRUE(reactor.RunUntil([&] { return coordinator.CountOf<MsgRttFail>() > 0; },
                               reactor.Now() + 2.0));
  EXPECT_EQ(coordinator.CountOf<MsgRtt>(), 0u);
}

// Faults moved from UdpSocket into the FaultedTransport decorator; the
// lifetime hazard is the same — a delayed copy's timer must not outlive the
// transport that scheduled it.
TEST(FaultedTransportFaultTest, DestroyWithDelayedSendsIsSafe) {
  Reactor reactor;
  FaultConfig config;
  config.delay_rate = 1.0;
  config.delay = Millis(50);
  FaultInjector injector(config);

  auto receiver = std::make_unique<UdpTransport>(reactor, 0);
  uint16_t port = receiver->Port();
  {
    FaultedTransport sender(std::make_unique<UdpTransport>(reactor, 0), &injector);
    sender.Send("PING 1", TransportAddress::Udp(LoopbackEndpoint(port)));
    // sender destroyed here with the delayed datagram still scheduled
  }
  reactor.RunUntil([] { return false; }, reactor.Now() + 0.1);  // ASan verdict
  EXPECT_EQ(injector.stats().delayed, 1u);
}

// Fleet fixture with injectable faults on both sides of the control plane.
class FaultFleetTest : public ::testing::Test {
 protected:
  FaultFleetTest() : content_(TestSite()), server_(reactor_, &content_) {}

  void StartFleet(size_t fleet, const FaultConfig& agent_faults,
                  const FaultConfig& coord_faults, const RetryPolicy& retry) {
    harness_ = std::make_unique<LiveHarness>(reactor_, server_.Port());
    harness_->set_request_timeout(2.0);
    harness_->set_retry_policy(retry);
    if (coord_faults.Enabled()) {
      coord_injector_ = std::make_unique<FaultInjector>(coord_faults);
      harness_->set_fault_injector(coord_injector_.get());
    }
    for (size_t i = 0; i < fleet; ++i) {
      auto agent = std::make_unique<ClientAgent>(reactor_, i,
                                                 LoopbackEndpoint(harness_->ControlPort()));
      agent->set_request_timeout(2.0);
      agent->set_retry_policy(retry);
      if (agent_faults.Enabled()) {
        FaultConfig per_agent = agent_faults;
        per_agent.seed = agent_faults.seed + i;  // distinct fault schedules
        agent_injectors_.push_back(std::make_unique<FaultInjector>(per_agent));
        agent->set_fault_injector(agent_injectors_.back().get());
      }
      agent->Register();
      agents_.push_back(std::move(agent));
    }
  }

  Reactor reactor_;
  ContentStore content_;
  LiveHttpServer server_;
  std::unique_ptr<FaultInjector> coord_injector_;
  std::vector<std::unique_ptr<FaultInjector>> agent_injectors_;
  std::unique_ptr<LiveHarness> harness_;
  std::vector<std::unique_ptr<ClientAgent>> agents_;
};

TEST_F(FaultFleetTest, RegistrationRetriesConvergeUnderHeavyLoss) {
  FaultConfig lossy;
  lossy.drop_rate = 0.4;
  lossy.seed = 3;
  StartFleet(6, lossy, lossy, FastRetry(10));
  EXPECT_EQ(harness_->WaitForRegistrations(6, 10.0), 6u);
  reactor_.RunUntil([] { return false; }, reactor_.Now() + 0.2);  // let acks land
  for (const auto& agent : agents_) {
    EXPECT_TRUE(agent->Registered());
  }
  ASSERT_NE(coord_injector_, nullptr);
  EXPECT_GT(coord_injector_->stats().dropped + agent_injectors_[0]->stats().dropped, 0u);
}

TEST_F(FaultFleetTest, FetchOnceRetriesConnectFailures) {
  FaultConfig flaky;
  flaky.connect_failure_rate = 0.5;
  flaky.seed = 9;
  StartFleet(2, flaky, FaultConfig{}, FastRetry(8));
  ASSERT_EQ(harness_->WaitForRegistrations(2, 5.0), 2u);
  HttpRequest request;
  request.method = HttpMethod::kHead;
  request.target = "/";
  RequestSample sample = harness_->FetchOnce(0, request);
  EXPECT_EQ(sample.code, HttpStatus::kOk);
  EXPECT_FALSE(sample.timed_out);
}

TEST_F(FaultFleetTest, RttProbeFailureFallsBackAndIsSurfaced) {
  FaultConfig dead_target;
  dead_target.connect_failure_rate = 1.0;
  StartFleet(1, dead_target, FaultConfig{}, FastRetry(3));
  ASSERT_EQ(harness_->WaitForRegistrations(1, 5.0), 1u);
  SimDuration rtt = harness_->MeasureTargetRtt(0);
  EXPECT_DOUBLE_EQ(rtt, 1.0);  // the documented substitute
  EXPECT_GE(harness_->stats().rtt_failures, 1u);   // explicit RTTFAIL, no silent wait
  EXPECT_EQ(harness_->stats().rtt_fallbacks, 1u);  // the fallback is surfaced
  EXPECT_GE(harness_->stats().rtt_retries, 1u);
}

TEST_F(FaultFleetTest, DuplicatedDatagramsNeverDoubleCount) {
  FaultConfig duper;
  duper.duplicate_rate = 1.0;  // every control datagram sent twice, both ways
  duper.seed = 4;
  StartFleet(4, duper, duper, FastRetry(4));
  ASSERT_EQ(harness_->WaitForRegistrations(4, 5.0), 4u);

  std::vector<CrowdRequestPlan> plans;
  double now = reactor_.Now();
  for (size_t i = 0; i < 4; ++i) {
    CrowdRequestPlan plan;
    plan.client_id = i;
    plan.request.method = HttpMethod::kHead;
    plan.request.target = "/";
    plan.command_send_time = now + 0.02;
    plan.connections = 2;
    plans.push_back(plan);
  }
  auto samples = harness_->ExecuteCrowd(plans, now + 4.0);
  EXPECT_EQ(samples.size(), 8u);            // duplicates deduplicated
  EXPECT_EQ(server_.RequestsServed(), 8u);  // duplicated FIREs never re-fire
  // Session peers suppress duplicates by (conn, seq) before delivery, so the
  // evidence lives in the session counters now, not the app-level dedup.
  EXPECT_GT(harness_->session_stats().duplicates, 0u);
}

TEST_F(FaultFleetTest, ControlTokenMapsStayBounded) {
  StartFleet(4, FaultConfig{}, FaultConfig{}, FastRetry(4));
  ASSERT_EQ(harness_->WaitForRegistrations(4, 5.0), 4u);

  for (int round = 0; round < 3; ++round) {
    harness_->ProbeClients(0.5);
    harness_->MeasureCoordRtt(0);
    harness_->MeasureTargetRtt(1);
    HttpRequest request;
    request.method = HttpMethod::kHead;
    request.target = "/";
    harness_->FetchOnce(2, request);
    std::vector<CrowdRequestPlan> plans;
    double now = reactor_.Now();
    for (size_t i = 0; i < 4; ++i) {
      CrowdRequestPlan plan;
      plan.client_id = i;
      plan.request.method = HttpMethod::kHead;
      plan.request.target = "/";
      plan.command_send_time = now + 0.02;
      plans.push_back(plan);
    }
    harness_->ExecuteCrowd(plans, now + 2.0);
  }
  // Let any straggler datagrams drain, then check nothing accumulated.
  reactor_.RunUntil([] { return false; }, reactor_.Now() + 0.2);
  EXPECT_EQ(harness_->PendingControlEntries(), 0u);
}

TEST_F(FaultFleetTest, DestroyHarnessWithScheduledFiresIsSafe) {
  StartFleet(2, FaultConfig{}, FaultConfig{}, FastRetry(4));
  ASSERT_EQ(harness_->WaitForRegistrations(2, 5.0), 2u);
  std::vector<CrowdRequestPlan> plans;
  double now = reactor_.Now();
  for (size_t i = 0; i < 2; ++i) {
    CrowdRequestPlan plan;
    plan.client_id = i;
    plan.request.method = HttpMethod::kHead;
    plan.request.target = "/";
    plan.command_send_time = now + 5.0;  // far in the future
    plans.push_back(plan);
  }
  // Poll deadline passes before the sends fire: the scheduled FIRE tasks and
  // their retry chains are still queued when the harness dies.
  harness_->ExecuteCrowd(plans, now + 0.01);
  harness_.reset();
  reactor_.RunUntil([] { return false; }, reactor_.Now() + 0.1);  // ASan verdict
}

// The acceptance bar for the whole layer: with 20% control-message loss and
// 5% connect failures injected, the unmodified Coordinator must reach the
// same stopping-crowd-size verdict as the clean run (fixed seed, fixed knee).
TEST_F(FaultFleetTest, FaultedRunReachesSameVerdictAsClean) {
  constexpr size_t kFleet = 12;
  // Knee at >4 concurrent with crowds grown in steps of 2: the first crowd
  // over the knee (6) stays over it even if a straggler or two miss the
  // burst instant, so the verdict window tolerates residual command loss
  // past the retry budget instead of sitting on a one-client knife edge.
  server_.SetServiceDelay([](size_t concurrent) {
    return concurrent > 4 ? 0.150 : 0.030;
  });

  ExperimentConfig config;
  config.threshold = Millis(100);
  config.crowd_step = 2;
  config.max_crowd = kFleet;
  config.min_clients = 10;  // tolerate a straggler registration under loss
  config.min_crowd_for_inference = 4;
  config.request_timeout = Seconds(2);
  // FIREs are (re)transmitted across the lead and held client-side until the
  // burst instant: a 250 ms lead fits five send attempts at 10 ms backoff.
  config.schedule_lead = Seconds(0.25);
  config.epoch_gap = Seconds(0.05);
  RetryPolicy retry = FastRetry(8);
  retry.initial_backoff = Millis(10);
  config.retry = retry;
  config.epoch_quorum = 0.5;
  config.evict_after_misses = 3;

  auto run = [&](const FaultConfig& agent_faults, const FaultConfig& coord_faults) {
    agents_.clear();
    harness_.reset();
    agent_injectors_.clear();
    coord_injector_.reset();
    StartFleet(kFleet, agent_faults, coord_faults, config.retry);
    EXPECT_GE(harness_->WaitForRegistrations(kFleet, 10.0), config.min_clients);
    Coordinator coordinator(*harness_, config, 5);
    StageObjects objects;
    objects.base_page = *ParseUrl("http://127.0.0.1/");
    return coordinator.Run(objects, {StageKind::kBase});
  };

  ExperimentResult clean = run(FaultConfig{}, FaultConfig{});
  FaultConfig agent_faults;
  agent_faults.drop_rate = 0.2;
  agent_faults.connect_failure_rate = 0.05;
  agent_faults.seed = 11;
  FaultConfig coord_faults;
  coord_faults.drop_rate = 0.2;
  coord_faults.seed = 12;
  ExperimentResult faulted = run(agent_faults, coord_faults);

  ASSERT_FALSE(clean.aborted);
  ASSERT_FALSE(faulted.aborted);
  const StageResult* clean_base = clean.Stage(StageKind::kBase);
  const StageResult* faulted_base = faulted.Stage(StageKind::kBase);
  ASSERT_NE(clean_base, nullptr);
  ASSERT_NE(faulted_base, nullptr);

  EXPECT_TRUE(clean_base->stopped);
  EXPECT_TRUE(faulted_base->stopped);
  EXPECT_EQ(clean_base->end_reason, StageEndReason::kConstraintFound);
  EXPECT_EQ(faulted_base->end_reason, StageEndReason::kConstraintFound);
  // Same verdict window as the clean-knee test: the constraint shows between
  // the knee (6 concurrent) and the fleet ceiling.
  EXPECT_GE(clean_base->stopping_crowd_size, 6u);
  EXPECT_LE(clean_base->stopping_crowd_size, 10u);
  EXPECT_GE(faulted_base->stopping_crowd_size, 6u);
  EXPECT_LE(faulted_base->stopping_crowd_size, 10u);
}

}  // namespace
}  // namespace mfc
