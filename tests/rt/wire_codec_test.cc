// Wire-codec robustness: every control message and session frame must
// round-trip exactly, and the decoders must reject (never crash on, never
// mis-parse) truncated, overlong, and randomly mutated datagrams — the
// control plane reads raw UDP payloads straight off the wire.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/rt/wire.h"
#include "src/sim/rng.h"

namespace mfc {
namespace {

AgentStats SomeStats() {
  AgentStats stats;
  stats.inflight = 3;
  stats.fetch_errors = 1;
  stats.rtt_ewma_us = 1500;
  stats.dedup_hits = 2;
  stats.fault_drops = 7;
  stats.requests_fired = 42;
  return stats;
}

// One representative of every ControlMessage alternative, extreme values
// included (u64 max exercises the full from_chars range).
std::vector<ControlMessage> AllMessages() {
  std::vector<ControlMessage> all;
  all.push_back(MsgRegister{7});
  all.push_back(MsgRegister{UINT64_MAX});
  all.push_back(MsgPing{1});
  all.push_back(MsgPong{5, std::nullopt});
  all.push_back(MsgPong{5, SomeStats()});
  all.push_back(MsgRttProbe{9, 8080});
  all.push_back(MsgRtt{9, 1234567});
  all.push_back(MsgRttFail{9});
  all.push_back(MsgMeasure{11, "GET", 80, "/index.html"});
  all.push_back(MsgMeasure{12, "HEAD", 65535, "/"});
  all.push_back(MsgFire{13, 4, "GET", 8080, "/big.bin", 1700000000000000ull});
  all.push_back(MsgCmdAck{13});
  MsgSample sample;
  sample.token = 13;
  sample.http_code = 200;
  sample.bytes = 150 * 1024;
  sample.rt_microseconds = 98765;
  sample.timed_out = false;
  sample.sample_id = 3;
  all.push_back(sample);
  sample.timed_out = true;
  sample.stats = SomeStats();
  all.push_back(sample);
  all.push_back(MsgRegisterAck{7});
  all.push_back(MsgSampleAck{3});
  return all;
}

// Whatever the decoder accepts must re-encode to a canonical form that
// decodes to itself — the "no mis-parse" invariant the mutation corpus
// leans on (a decode that silently reinterprets bytes would break it).
void ExpectCanonicalOrRejected(std::string_view datagram) {
  if (LooksLikeSessionDatagram(datagram)) {
    auto frame = DecodeSessionFrame(datagram);
    auto ack = DecodeSessionAck(datagram);
    if (frame.has_value()) {
      std::string canonical = EncodeSessionFrame(*frame);
      auto again = DecodeSessionFrame(canonical);
      ASSERT_TRUE(again.has_value()) << canonical;
      EXPECT_EQ(EncodeSessionFrame(*again), canonical);
    }
    if (ack.has_value()) {
      EXPECT_EQ(EncodeSessionAck(*DecodeSessionAck(EncodeSessionAck(*ack))),
                EncodeSessionAck(*ack));
    }
    return;
  }
  auto message = DecodeMessage(datagram);
  if (message.has_value()) {
    std::string canonical = EncodeMessage(*message);
    auto again = DecodeMessage(canonical);
    ASSERT_TRUE(again.has_value()) << canonical;
    EXPECT_EQ(EncodeMessage(*again), canonical);
  }
}

TEST(WireCodecTest, EveryMessageTypeRoundTrips) {
  for (const ControlMessage& message : AllMessages()) {
    std::string wire = EncodeMessage(message);
    auto decoded = DecodeMessage(wire);
    ASSERT_TRUE(decoded.has_value()) << wire;
    EXPECT_EQ(decoded->index(), message.index()) << wire;
    EXPECT_EQ(EncodeMessage(*decoded), wire);
  }
}

TEST(WireCodecTest, EveryMessageTypeRoundTripsInsideSessionFrames) {
  uint64_t seq = 1;
  for (const ControlMessage& message : AllMessages()) {
    SessionFrame frame;
    frame.conn = 42;
    frame.seq = seq++;
    frame.lane = std::holds_alternative<MsgSample>(message) ? kLaneBulk : kLaneControl;
    frame.reliable = (seq % 2) == 0;
    frame.body = message;
    std::string wire = EncodeSessionFrame(frame);
    EXPECT_TRUE(LooksLikeSessionDatagram(wire));
    auto decoded = DecodeSessionFrame(wire);
    ASSERT_TRUE(decoded.has_value()) << wire;
    EXPECT_EQ(decoded->conn, frame.conn);
    EXPECT_EQ(decoded->seq, frame.seq);
    EXPECT_EQ(decoded->lane, frame.lane);
    EXPECT_EQ(decoded->reliable, frame.reliable);
    EXPECT_EQ(decoded->body.index(), frame.body.index());
    EXPECT_EQ(EncodeSessionFrame(*decoded), wire);
  }
}

TEST(WireCodecTest, SessionAckRoundTrips) {
  SessionAck ack{UINT64_MAX, 123456789};
  std::string wire = EncodeSessionAck(ack);
  EXPECT_TRUE(LooksLikeSessionDatagram(wire));
  auto decoded = DecodeSessionAck(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->conn, ack.conn);
  EXPECT_EQ(decoded->seq, ack.seq);
}

TEST(WireCodecTest, SessionPrefixDetection) {
  EXPECT_TRUE(LooksLikeSessionDatagram("S1 1 2 0 1 PING 5"));
  EXPECT_TRUE(LooksLikeSessionDatagram("A1 1 2"));
  EXPECT_FALSE(LooksLikeSessionDatagram("PING 5"));
  EXPECT_FALSE(LooksLikeSessionDatagram("SAMPLE 1 200 0 5 0 1"));
  EXPECT_FALSE(LooksLikeSessionDatagram(""));
  EXPECT_FALSE(LooksLikeSessionDatagram("S1"));
  EXPECT_FALSE(LooksLikeSessionDatagram("S2 1 2 0 1 PING 5"));
}

TEST(WireCodecTest, TruncatedDatagramsNeverMisparse) {
  for (const ControlMessage& message : AllMessages()) {
    std::string wire = EncodeMessage(message);
    for (size_t len = 0; len < wire.size(); ++len) {
      // A prefix may still be a valid shorter message (e.g. PONG without its
      // optional [stats] tail) but must never decode to something that fails
      // to re-encode canonically — and a partial [stats] tail must reject.
      ExpectCanonicalOrRejected(std::string_view(wire).substr(0, len));
    }
  }
}

TEST(WireCodecTest, PartialStatsTailsAreRejected) {
  MsgPong pong{5, SomeStats()};
  std::string wire = EncodeMessage(pong);
  std::string bare = EncodeMessage(MsgPong{5, std::nullopt});
  // Chop the stats tail one word at a time: 1..5 stats words present is
  // neither the bare form (0 words) nor the full form (6), so it must fail.
  for (int words_removed = 1; words_removed <= 5; ++words_removed) {
    std::string chopped = wire;
    for (int w = 0; w < words_removed; ++w) {
      chopped = chopped.substr(0, chopped.rfind(' '));
    }
    ASSERT_NE(chopped, bare);
    EXPECT_FALSE(DecodeMessage(chopped).has_value()) << chopped;
  }
  EXPECT_TRUE(DecodeMessage(bare).has_value());
}

TEST(WireCodecTest, OverlongDatagramsAreRejected) {
  for (const ControlMessage& message : AllMessages()) {
    std::string wire = EncodeMessage(message) + " 99";
    auto decoded = DecodeMessage(wire);
    if (decoded.has_value()) {
      // The only legal growth is a bare PONG/SAMPLE absorbing the start of a
      // stats tail — and a 1-word tail is invalid, so nothing may decode.
      ADD_FAILURE() << "accepted overlong datagram: " << wire;
    }
  }
  EXPECT_FALSE(DecodeSessionFrame("S1 1 2 0 1 PING 5 6").has_value());
  EXPECT_FALSE(DecodeSessionAck("A1 1 2 3").has_value());
}

TEST(WireCodecTest, GarbageDatagramsAreRejected) {
  EXPECT_FALSE(DecodeMessage("").has_value());
  EXPECT_FALSE(DecodeMessage("   ").has_value());
  EXPECT_FALSE(DecodeMessage("NOSUCHVERB 1 2 3").has_value());
  EXPECT_FALSE(DecodeMessage("PING").has_value());
  EXPECT_FALSE(DecodeMessage("PING x").has_value());
  EXPECT_FALSE(DecodeMessage("PING -1").has_value());
  EXPECT_FALSE(DecodeMessage("PING 99999999999999999999999").has_value());
  EXPECT_FALSE(DecodeMessage("MEASURE 1 PUT 80 /").has_value());  // bad method
  EXPECT_FALSE(DecodeSessionFrame("S1 1 2 9 1 PING 5").has_value());  // bad lane
  EXPECT_FALSE(DecodeSessionFrame("S1 1 2 0 7 PING 5").has_value());  // bad rel
  EXPECT_FALSE(DecodeSessionFrame("S1 1 2 0 1 NOSUCHVERB 5").has_value());
  EXPECT_FALSE(DecodeSessionFrame("S1 x 2 0 1 PING 5").has_value());
  EXPECT_FALSE(DecodeSessionAck("A1 x 2").has_value());
  EXPECT_FALSE(DecodeSessionAck("A1 1").has_value());
}

// Seeded random-mutation corpus: flip/insert/delete bytes and truncate both
// bare messages and session frames; the decoders must never crash and every
// accepted mutant must satisfy the canonical round-trip invariant.
TEST(WireCodecTest, SeededMutationCorpusNeverCrashesOrMisparses) {
  Rng rng(20260809);
  std::vector<std::string> corpus;
  uint64_t seq = 1;
  for (const ControlMessage& message : AllMessages()) {
    corpus.push_back(EncodeMessage(message));
    SessionFrame frame;
    frame.conn = 3;
    frame.seq = seq++;
    frame.reliable = true;
    frame.body = message;
    corpus.push_back(EncodeSessionFrame(frame));
    corpus.push_back(EncodeSessionAck(SessionAck{3, seq}));
  }
  const std::string alphabet = " 0123456789ABCZaz-+.\x01\x7f\xff";
  for (const std::string& seedling : corpus) {
    for (int round = 0; round < 200; ++round) {
      std::string mutant = seedling;
      size_t edits = 1 + rng.NextBelow(4);
      for (size_t e = 0; e < edits && !mutant.empty(); ++e) {
        size_t at = rng.NextBelow(mutant.size());
        switch (rng.NextBelow(4)) {
          case 0:  // flip
            mutant[at] = alphabet[rng.NextBelow(alphabet.size())];
            break;
          case 1:  // delete
            mutant.erase(at, 1);
            break;
          case 2:  // insert
            mutant.insert(at, 1, alphabet[rng.NextBelow(alphabet.size())]);
            break;
          default:  // truncate
            mutant.resize(at);
            break;
        }
      }
      ExpectCanonicalOrRejected(mutant);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

}  // namespace
}  // namespace mfc
