// End-to-end live-runtime tests: a real HTTP server, real client agents and
// the real coordinator harness, all over loopback sockets on one reactor.
// The crowning test runs the unmodified Coordinator — the same state machine
// the simulation uses — against a live target whose service delay depends on
// concurrency, and checks that it finds the knee.
#include <gtest/gtest.h>

#include <memory>

#include "src/content/site_generator.h"
#include "src/core/coordinator.h"
#include "src/rt/client_agent.h"
#include "src/rt/http_fetch.h"
#include "src/rt/live_harness.h"
#include "src/rt/live_http_server.h"

namespace mfc {
namespace {

ContentStore TestSite() {
  ContentStore store;
  WebObject index;
  index.path = "/";
  index.content_class = ContentClass::kText;
  index.body = "<html><a href=\"/files/big.bin\">big</a></html>";
  index.size_bytes = index.body.size();
  store.Add(index);
  WebObject big;
  big.path = "/files/big.bin";
  big.content_class = ContentClass::kBinary;
  big.size_bytes = 150 * 1024;
  store.Add(big);
  WebObject query;
  query.path = "/cgi/q.php";
  query.content_class = ContentClass::kQuery;
  query.dynamic = true;
  query.unique_per_query = true;
  query.size_bytes = 1024;
  store.Add(query);
  return store;
}

TEST(LiveHttpTest, FetchGetsRealBytes) {
  Reactor reactor;
  ContentStore content = TestSite();
  LiveHttpServer server(reactor, &content);

  HttpRequest request;
  request.method = HttpMethod::kGet;
  request.target = "/files/big.bin";
  request.headers.Set("Host", "127.0.0.1");

  bool done = false;
  FetchResult result;
  auto fetch = HttpFetch::Start(reactor, server.Port(), request, 5.0,
                                [&](const FetchResult& r) {
                                  result = r;
                                  done = true;
                                });
  ASSERT_TRUE(reactor.RunUntil([&] { return done; }, reactor.Now() + 5.0));
  EXPECT_EQ(result.status, HttpStatus::kOk);
  EXPECT_FALSE(result.timed_out);
  EXPECT_GT(result.bytes, 150u * 1024u);  // body + headers, real bytes on the wire
  EXPECT_EQ(server.RequestsServed(), 1u);
}

TEST(LiveHttpTest, HeadCarriesLengthWithoutBody) {
  Reactor reactor;
  ContentStore content = TestSite();
  LiveHttpServer server(reactor, &content);

  HttpRequest request;
  request.method = HttpMethod::kHead;
  request.target = "/files/big.bin";

  bool done = false;
  FetchResult result;
  auto fetch = HttpFetch::Start(reactor, server.Port(), request, 5.0,
                                [&](const FetchResult& r) {
                                  result = r;
                                  done = true;
                                });
  ASSERT_TRUE(reactor.RunUntil([&] { return done; }, reactor.Now() + 5.0));
  EXPECT_EQ(result.status, HttpStatus::kOk);
  EXPECT_LT(result.bytes, 1024u);  // headers only
}

TEST(LiveHttpTest, UnknownPathIs404) {
  Reactor reactor;
  ContentStore content = TestSite();
  LiveHttpServer server(reactor, &content);
  HttpRequest request;
  request.target = "/missing";
  bool done = false;
  FetchResult result;
  auto fetch = HttpFetch::Start(reactor, server.Port(), request, 5.0,
                                [&](const FetchResult& r) {
                                  result = r;
                                  done = true;
                                });
  ASSERT_TRUE(reactor.RunUntil([&] { return done; }, reactor.Now() + 5.0));
  EXPECT_EQ(result.status, HttpStatus::kNotFound);
}

TEST(LiveHttpTest, SlowServerHitsKillTimer) {
  Reactor reactor;
  ContentStore content = TestSite();
  LiveHttpServer server(reactor, &content);
  server.SetServiceDelay([](size_t) { return 2.0; });  // slower than the timeout

  HttpRequest request;
  request.target = "/";
  bool done = false;
  FetchResult result;
  auto fetch = HttpFetch::Start(reactor, server.Port(), request, 0.2,
                                [&](const FetchResult& r) {
                                  result = r;
                                  done = true;
                                });
  ASSERT_TRUE(reactor.RunUntil([&] { return done; }, reactor.Now() + 5.0));
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.status, HttpStatus::kClientTimeout);
  EXPECT_NEAR(result.elapsed, 0.2, 0.1);
}

class LiveFleetTest : public ::testing::Test {
 protected:
  static constexpr size_t kFleet = 12;

  LiveFleetTest() : content_(TestSite()), server_(reactor_, &content_) {
    harness_ = std::make_unique<LiveHarness>(reactor_, server_.Port());
    for (size_t i = 0; i < kFleet; ++i) {
      agents_.push_back(std::make_unique<ClientAgent>(
          reactor_, i, LoopbackEndpoint(harness_->ControlPort())));
      agents_.back()->set_request_timeout(2.0);
      agents_.back()->Register();
    }
    harness_->set_request_timeout(2.0);
    EXPECT_EQ(harness_->WaitForRegistrations(kFleet, 2.0), kFleet);
  }

  Reactor reactor_;
  ContentStore content_;
  LiveHttpServer server_;
  std::unique_ptr<LiveHarness> harness_;
  std::vector<std::unique_ptr<ClientAgent>> agents_;
};

TEST_F(LiveFleetTest, ProbeFindsAllAgents) {
  auto responsive = harness_->ProbeClients(1.0);
  EXPECT_EQ(responsive.size(), kFleet);
}

TEST_F(LiveFleetTest, RttMeasurementsArePlausible) {
  SimDuration coord_rtt = harness_->MeasureCoordRtt(0);
  SimDuration target_rtt = harness_->MeasureTargetRtt(0);
  EXPECT_GT(coord_rtt, 0.0);
  EXPECT_LT(coord_rtt, 0.5);
  EXPECT_GT(target_rtt, 0.0);
  EXPECT_LT(target_rtt, 0.5);
}

TEST_F(LiveFleetTest, FetchOnceMeasuresARealRequest) {
  HttpRequest request;
  request.method = HttpMethod::kHead;
  request.target = "/";
  RequestSample sample = harness_->FetchOnce(3, request);
  EXPECT_EQ(sample.client_id, 3u);
  EXPECT_EQ(sample.code, HttpStatus::kOk);
  EXPECT_FALSE(sample.timed_out);
  EXPECT_GT(sample.response_time, 0.0);
  EXPECT_LT(sample.response_time, 1.0);
}

TEST_F(LiveFleetTest, ExecuteCrowdCollectsAllSamples) {
  std::vector<CrowdRequestPlan> plans;
  double now = reactor_.Now();
  for (size_t i = 0; i < kFleet; ++i) {
    CrowdRequestPlan plan;
    plan.client_id = i;
    plan.request.method = HttpMethod::kHead;
    plan.request.target = "/";
    plan.command_send_time = now + 0.05;
    plan.intended_arrival = now + 0.06;
    plan.connections = 2;  // MFC-mr over real sockets
    plans.push_back(plan);
  }
  auto samples = harness_->ExecuteCrowd(plans, now + 4.0);
  EXPECT_EQ(samples.size(), kFleet * 2);
  for (const auto& sample : samples) {
    EXPECT_EQ(sample.code, HttpStatus::kOk);
  }
  EXPECT_EQ(server_.RequestsServed(), kFleet * 2);
}

TEST_F(LiveFleetTest, HealthTableTracksProbedFleet) {
  auto responsive = harness_->ProbeClients(1.0);
  ASSERT_EQ(responsive.size(), kFleet);
  auto table = harness_->SnapshotAgents();
  ASSERT_EQ(table.size(), kFleet);
  for (size_t i = 0; i < table.size(); ++i) {
    const AgentHealthSnapshot& row = table[i];
    EXPECT_EQ(row.agent_id, i);
    EXPECT_TRUE(row.healthy);
    EXPECT_EQ(row.miss_streak, 0u);
    EXPECT_GE(row.last_seen_age, 0.0);   // everyone just answered
    EXPECT_GT(row.rtt_ewma, 0.0);        // a real loopback RTT was folded in
    EXPECT_LT(row.rtt_ewma, 0.5);
    EXPECT_DOUBLE_EQ(row.loss_estimate, 0.0);
  }
  // Probe bookkeeping must not leak: pending/completed maps drain each round.
  EXPECT_EQ(harness_->PendingControlEntries(), 0u);
}

TEST_F(LiveFleetTest, UnansweredProbesTripTheUnhealthyVerdict) {
  harness_->set_unhealthy_after_misses(2);
  EXPECT_TRUE(harness_->ClientHealthy(0));
  agents_[0].reset();  // agent 0 goes dark but stays registered
  for (int round = 0; round < 2; ++round) {
    auto responsive = harness_->ProbeClients(0.3);
    EXPECT_EQ(responsive.size(), kFleet - 1);
  }
  EXPECT_FALSE(harness_->ClientHealthy(0));
  EXPECT_TRUE(harness_->ClientHealthy(1));

  auto table = harness_->SnapshotAgents();
  ASSERT_EQ(table.size(), kFleet);
  EXPECT_EQ(table[0].agent_id, 0u);
  EXPECT_FALSE(table[0].healthy);
  EXPECT_GE(table[0].miss_streak, 2u);
  EXPECT_GT(table[0].loss_estimate, 0.0);
  for (size_t i = 1; i < table.size(); ++i) {
    EXPECT_TRUE(table[i].healthy);
    EXPECT_EQ(table[i].miss_streak, 0u);
  }

  // With the knob at 0 the same miss streak carries no verdict: the default
  // keeps simulation and legacy behavior untouched.
  harness_->set_unhealthy_after_misses(0);
  EXPECT_TRUE(harness_->ClientHealthy(0));
}

TEST_F(LiveFleetTest, UnmodifiedCoordinatorFindsALiveKnee) {
  // The target degrades sharply beyond 6 concurrent requests.
  server_.SetServiceDelay([](size_t concurrent) {
    return concurrent > 6 ? 0.150 : 0.001;
  });

  ExperimentConfig config;
  config.threshold = Millis(100);
  config.crowd_step = 2;
  config.max_crowd = kFleet;
  config.min_clients = kFleet;
  config.min_crowd_for_inference = 4;
  config.request_timeout = Seconds(2);
  config.schedule_lead = Seconds(0.1);   // loopback: no need for 15 s leads
  config.epoch_gap = Seconds(0.05);
  Coordinator coordinator(*harness_, config, 5);

  StageObjects objects;
  objects.base_page = *ParseUrl("http://127.0.0.1/");
  ExperimentResult result = coordinator.Run(objects, {StageKind::kBase});
  ASSERT_FALSE(result.aborted);
  const StageResult* base = result.Stage(StageKind::kBase);
  ASSERT_NE(base, nullptr);
  EXPECT_TRUE(base->stopped);
  EXPECT_GE(base->stopping_crowd_size, 6u);
  EXPECT_LE(base->stopping_crowd_size, 10u);
}

}  // namespace
}  // namespace mfc
