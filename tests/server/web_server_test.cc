#include "src/server/web_server.h"

#include <gtest/gtest.h>

#include <vector>

namespace mfc {
namespace {

// Transport that delivers instantly and records what was sent.
struct SentRecord {
  HttpStatus status = HttpStatus::kOk;
  double bytes = 0.0;
  bool responded = false;
  SimTime at = 0.0;
};

ResponseTransport Record(EventLoop& loop, SentRecord* out) {
  return [&loop, out](HttpStatus status, double bytes, std::function<void()> on_sent) {
    out->status = status;
    out->bytes = bytes;
    out->responded = true;
    out->at = loop.Now();
    if (on_sent) {
      on_sent();
    }
  };
}

ContentStore SmallSite() {
  ContentStore store;
  WebObject index;
  index.path = "/";
  index.content_class = ContentClass::kText;
  index.body = "<html><a href=\"/big.bin\">big</a></html>";
  index.size_bytes = index.body.size();
  store.Add(index);

  WebObject big;
  big.path = "/big.bin";
  big.content_class = ContentClass::kBinary;
  big.size_bytes = 200 * 1024;
  store.Add(big);

  WebObject query;
  query.path = "/cgi/q.php";
  query.content_class = ContentClass::kQuery;
  query.dynamic = true;
  query.unique_per_query = true;
  query.size_bytes = 2048;
  query.db_rows = 5000;
  store.Add(query);
  return store;
}

HttpRequest Get(const std::string& target) {
  HttpRequest req;
  req.method = HttpMethod::kGet;
  req.target = target;
  req.headers.Set("Host", "t");
  return req;
}

HttpRequest Head(const std::string& target) {
  HttpRequest req = Get(target);
  req.method = HttpMethod::kHead;
  return req;
}

class WebServerTest : public ::testing::Test {
 protected:
  WebServerTest() : content_(SmallSite()) {}

  WebServerConfig DefaultConfig() {
    WebServerConfig config;
    config.cpu_cores = 1;
    config.request_parse_cpu_s = 1e-3;
    config.head_cpu_s = 1e-3;
    config.cgi_cpu_s = 1e-3;
    config.db.base_query_cpu_s = 1e-3;
    config.db.per_row_cpu_s = 1e-5;  // 5000 rows -> 50 ms
    config.db.disk_miss_fraction = 0.0;
    return config;
  }

  EventLoop loop_;
  ContentStore content_;
};

TEST_F(WebServerTest, HeadOfBasePageSucceedsWithHeaderOnlyBytes) {
  WebServer server(loop_, DefaultConfig(), &content_);
  SentRecord rec;
  server.OnRequest(Head("/"), true, Record(loop_, &rec));
  loop_.RunUntilIdle();
  ASSERT_TRUE(rec.responded);
  EXPECT_EQ(rec.status, HttpStatus::kOk);
  EXPECT_DOUBLE_EQ(rec.bytes, DefaultConfig().response_header_bytes);
  EXPECT_NEAR(rec.at, 2e-3, 1e-9);  // parse + head CPU
}

TEST_F(WebServerTest, UnknownPathGets404) {
  WebServer server(loop_, DefaultConfig(), &content_);
  SentRecord rec;
  server.OnRequest(Get("/missing.html"), true, Record(loop_, &rec));
  loop_.RunUntilIdle();
  EXPECT_EQ(rec.status, HttpStatus::kNotFound);
}

TEST_F(WebServerTest, StaticMissReadsDiskThenCacheHitIsFaster) {
  WebServer server(loop_, DefaultConfig(), &content_);
  SentRecord first;
  server.OnRequest(Get("/big.bin"), true, Record(loop_, &first));
  loop_.RunUntilIdle();
  SimTime first_latency = first.at;
  EXPECT_GT(first_latency, DefaultConfig().disk_seek_s);  // paid the disk seek
  EXPECT_DOUBLE_EQ(first.bytes, DefaultConfig().response_header_bytes + 200 * 1024);

  SimTime start = loop_.Now();
  SentRecord second;
  server.OnRequest(Get("/big.bin"), true, Record(loop_, &second));
  loop_.RunUntilIdle();
  EXPECT_LT(second.at - start, first_latency);  // no disk this time
  EXPECT_TRUE(server.PageCache().Contains("/big.bin"));
}

TEST_F(WebServerTest, DynamicQueryRunsThroughDatabase) {
  WebServer server(loop_, DefaultConfig(), &content_);
  SentRecord rec;
  server.OnRequest(Get("/cgi/q.php?id=1"), true, Record(loop_, &rec));
  loop_.RunUntilIdle();
  ASSERT_TRUE(rec.responded);
  EXPECT_EQ(rec.status, HttpStatus::kOk);
  EXPECT_DOUBLE_EQ(rec.bytes, DefaultConfig().response_header_bytes + 2048);
  EXPECT_GT(rec.at, 0.05);  // paid the 5000-row scan
  EXPECT_EQ(server.Db().ExecutedQueries(), 1u);
}

TEST_F(WebServerTest, UniquePerQueryKeysNeverHitCache) {
  WebServer server(loop_, DefaultConfig(), &content_);
  SentRecord a;
  SentRecord b;
  server.OnRequest(Get("/cgi/q.php?id=1"), true, Record(loop_, &a));
  loop_.RunUntilIdle();
  SimTime start = loop_.Now();
  server.OnRequest(Get("/cgi/q.php?id=2"), true, Record(loop_, &b));
  loop_.RunUntilIdle();
  EXPECT_GT(b.at - start, 0.05);  // different key, full scan again
}

TEST_F(WebServerTest, SameQueryStringHitsQueryCache) {
  WebServer server(loop_, DefaultConfig(), &content_);
  SentRecord a;
  SentRecord b;
  server.OnRequest(Get("/cgi/q.php?id=1"), true, Record(loop_, &a));
  loop_.RunUntilIdle();
  SimTime start = loop_.Now();
  server.OnRequest(Get("/cgi/q.php?id=1"), true, Record(loop_, &b));
  loop_.RunUntilIdle();
  EXPECT_LT(b.at - start, 0.02);
}

TEST_F(WebServerTest, CgiModelNoneRejectsQueries) {
  WebServerConfig config = DefaultConfig();
  config.cgi_model = CgiModel::kNone;
  WebServer server(loop_, config, &content_);
  SentRecord rec;
  server.OnRequest(Get("/cgi/q.php?id=1"), true, Record(loop_, &rec));
  loop_.RunUntilIdle();
  EXPECT_EQ(rec.status, HttpStatus::kNotFound);
}

TEST_F(WebServerTest, FastCgiGrowsMemoryDuringRequests) {
  WebServerConfig config = DefaultConfig();
  config.cgi_model = CgiModel::kFastCgi;
  config.cgi_process_memory_bytes = 24e6;
  WebServer server(loop_, config, &content_);
  double base_memory = server.MemoryUsedBytes();
  std::vector<SentRecord> recs(20);
  for (int i = 0; i < 20; ++i) {
    server.OnRequest(Get("/cgi/q.php?id=" + std::to_string(i)), true,
                     Record(loop_, &recs[static_cast<size_t>(i)]));
  }
  // Parse CPU for 20 requests takes ~20 ms; by 0.2 s every request has been
  // admitted to a CGI process but none has cleared its 50 ms DB scan (shared
  // 1-core CPU: the scans alone are 1 s of work).
  loop_.RunUntil(0.2);
  EXPECT_NEAR(server.MemoryUsedBytes(), base_memory + 20 * 24e6, 1.0);
  EXPECT_EQ(server.ActiveCgiProcesses(), 20u);
  loop_.RunUntilIdle();
  EXPECT_NEAR(server.MemoryUsedBytes(), base_memory, 1.0);
  EXPECT_EQ(server.ActiveCgiProcesses(), 0u);
}

TEST_F(WebServerTest, FastCgiMemoryPressureSlowsResponses) {
  WebServerConfig config = DefaultConfig();
  config.cgi_model = CgiModel::kFastCgi;
  config.cgi_process_memory_bytes = 24e6;
  config.ram_bytes = 500e6;
  config.base_memory_bytes = 200e6;
  config.swap_penalty = 12.0;
  WebServer fat(loop_, config, &content_);

  // One request alone vs 30 concurrent (30*24 MB > 300 MB headroom).
  SentRecord solo;
  fat.OnRequest(Get("/cgi/q.php?id=solo"), true, Record(loop_, &solo));
  loop_.RunUntilIdle();
  SimTime solo_latency = solo.at;

  SimTime start = loop_.Now();
  std::vector<SentRecord> recs(30);
  for (int i = 0; i < 30; ++i) {
    fat.OnRequest(Get("/cgi/q.php?id=" + std::to_string(i)), true,
                  Record(loop_, &recs[static_cast<size_t>(i)]));
  }
  loop_.RunUntilIdle();
  SimTime worst = 0.0;
  for (const auto& rec : recs) {
    worst = std::max(worst, rec.at - start);
  }
  // 30x concurrency alone explains 30x; swap pressure must push it beyond.
  EXPECT_GT(worst, 35.0 * solo_latency);
}

TEST_F(WebServerTest, MongrelMemoryStaysFlat) {
  WebServerConfig config = DefaultConfig();
  config.cgi_model = CgiModel::kMongrel;
  config.mongrel_pool = 4;
  WebServer server(loop_, config, &content_);
  double base_memory = server.MemoryUsedBytes();
  std::vector<SentRecord> recs(20);
  for (int i = 0; i < 20; ++i) {
    server.OnRequest(Get("/cgi/q.php?id=" + std::to_string(i)), true,
                     Record(loop_, &recs[static_cast<size_t>(i)]));
  }
  loop_.RunUntil(0.1);  // parsed and admitted up to the pool bound
  EXPECT_NEAR(server.MemoryUsedBytes(), base_memory, 1.0);
  EXPECT_EQ(server.ActiveCgiProcesses(), 4u);  // pool bound
  loop_.RunUntilIdle();
  for (const auto& rec : recs) {
    EXPECT_TRUE(rec.responded);
  }
}

TEST_F(WebServerTest, ThreadPoolExhaustionQueuesRequests) {
  WebServerConfig config = DefaultConfig();
  config.worker_threads = 2;
  WebServer server(loop_, config, &content_);
  std::vector<SentRecord> recs(5);
  for (int i = 0; i < 5; ++i) {
    server.OnRequest(Head("/"), true, Record(loop_, &recs[static_cast<size_t>(i)]));
  }
  EXPECT_EQ(server.ActiveThreads(), 2u);
  EXPECT_EQ(server.AcceptQueueDepth(), 3u);
  loop_.RunUntilIdle();
  for (const auto& rec : recs) {
    EXPECT_TRUE(rec.responded);
    EXPECT_EQ(rec.status, HttpStatus::kOk);
  }
  EXPECT_EQ(server.ActiveThreads(), 0u);
}

TEST_F(WebServerTest, BacklogOverflowGets503WithoutThread) {
  WebServerConfig config = DefaultConfig();
  config.worker_threads = 1;
  config.accept_backlog = 2;
  WebServer server(loop_, config, &content_);
  std::vector<SentRecord> recs(5);
  for (int i = 0; i < 5; ++i) {
    server.OnRequest(Head("/"), true, Record(loop_, &recs[static_cast<size_t>(i)]));
  }
  // 1 in service + 2 queued; 2 rejected immediately.
  EXPECT_EQ(server.Rejected503(), 2u);
  EXPECT_TRUE(recs[3].responded);
  EXPECT_EQ(recs[3].status, HttpStatus::kServiceUnavailable);
  loop_.RunUntilIdle();
  EXPECT_EQ(recs[0].status, HttpStatus::kOk);
}

TEST_F(WebServerTest, AccessLogRecordsEverything) {
  WebServer server(loop_, DefaultConfig(), &content_);
  SentRecord a;
  SentRecord b;
  server.OnRequest(Head("/"), true, Record(loop_, &a));
  server.OnRequest(Get("/missing"), false, Record(loop_, &b));
  loop_.RunUntilIdle();
  ASSERT_EQ(server.AccessLog().size(), 2u);
  EXPECT_TRUE(server.AccessLog()[0].is_mfc);
  EXPECT_FALSE(server.AccessLog()[1].is_mfc);
  EXPECT_EQ(server.AccessLog()[0].status, HttpStatus::kOk);
  EXPECT_EQ(server.AccessLog()[1].status, HttpStatus::kNotFound);
}

TEST_F(WebServerTest, DedicatedDbTierKeepsFrontEndResponsive) {
  // Same workload against a shared-CPU box and a two-tier deployment: HEAD
  // latency under query load should be much better with the dedicated tier.
  auto run = [&](WebServerConfig config) {
    EventLoop loop;
    WebServer server(loop, config, &content_);
    std::vector<SentRecord> queries(10);
    for (int i = 0; i < 10; ++i) {
      server.OnRequest(Get("/cgi/q.php?id=" + std::to_string(i)), true,
                       Record(loop, &queries[static_cast<size_t>(i)]));
    }
    // Let the queries reach their DB scans, then probe the front end.
    loop.RunUntil(0.1);
    SimTime start = loop.Now();
    SentRecord head;
    server.OnRequest(Head("/"), true, Record(loop, &head));
    loop.RunUntilIdle();
    return head.at - start;
  };
  WebServerConfig shared = DefaultConfig();
  WebServerConfig tiered = DefaultConfig();
  tiered.db_dedicated_cores = 2;
  EXPECT_LT(run(tiered), run(shared) / 2.0);
}

TEST_F(WebServerTest, PerConnectionOverheadGrowsWithConcurrency) {
  WebServerConfig config = DefaultConfig();
  config.per_connection_cpu_s = 1e-3;
  WebServer server(loop_, config, &content_);
  SentRecord solo;
  server.OnRequest(Head("/"), true, Record(loop_, &solo));
  loop_.RunUntilIdle();
  SimTime solo_latency = solo.at;

  SimTime start = loop_.Now();
  std::vector<SentRecord> recs(20);
  for (int i = 0; i < 20; ++i) {
    server.OnRequest(Head("/"), true, Record(loop_, &recs[static_cast<size_t>(i)]));
  }
  loop_.RunUntilIdle();
  SimTime worst = 0.0;
  for (const auto& rec : recs) {
    worst = std::max(worst, rec.at - start);
  }
  // Superlinear: 20 connections at ~20x the work each.
  EXPECT_GT(worst, 50.0 * solo_latency);
}

}  // namespace
}  // namespace mfc
