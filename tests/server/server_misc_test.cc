#include <gtest/gtest.h>

#include "src/server/background_traffic.h"
#include "src/server/cluster.h"
#include "src/server/synthetic_server.h"

namespace mfc {
namespace {

HttpRequest Get(const std::string& target) {
  HttpRequest req;
  req.method = HttpMethod::kGet;
  req.target = target;
  return req;
}

TEST(SyntheticServerTest, LinearModelDelaysScaleWithConcurrency) {
  EventLoop loop;
  SyntheticModelServer server(loop, LinearModel(0.010), 0.001, 100.0);
  std::vector<SimTime> done(5, 0.0);
  for (int i = 0; i < 5; ++i) {
    server.OnRequest(Get("/"), true,
                     [&, i](HttpStatus, double, std::function<void()> on_sent) {
                       done[static_cast<size_t>(i)] = loop.Now();
                       on_sent();
                     });
  }
  EXPECT_EQ(server.Concurrent(), 5u);
  loop.RunUntilIdle();
  // Queue-coupled (the paper's instrumented server): simultaneous arrivals
  // all end up delayed by the final queue depth, 0.001 + 0.010 * 5.
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(done[static_cast<size_t>(i)], 0.001 + 0.010 * 5, 1e-9) << i;
  }
  EXPECT_EQ(server.Concurrent(), 0u);
}

TEST(SyntheticServerTest, UncoupledModeDelaysByArrivalConcurrency) {
  EventLoop loop;
  SyntheticModelServer server(loop, LinearModel(0.010), 0.001, 100.0);
  server.set_queue_coupled(false);
  std::vector<SimTime> done(5, 0.0);
  for (int i = 0; i < 5; ++i) {
    server.OnRequest(Get("/"), true,
                     [&, i](HttpStatus, double, std::function<void()> on_sent) {
                       done[static_cast<size_t>(i)] = loop.Now();
                       on_sent();
                     });
  }
  loop.RunUntilIdle();
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(done[static_cast<size_t>(i)], 0.001 + 0.010 * (i + 1), 1e-9) << i;
  }
}

TEST(SyntheticServerTest, RecordsArrivals) {
  EventLoop loop;
  SyntheticModelServer server(loop, ConstantModel(0.0));
  server.OnRequest(Get("/"), true, [](HttpStatus, double, std::function<void()> s) { s(); });
  loop.RunUntil(1.0);
  server.OnRequest(Get("/"), true, [](HttpStatus, double, std::function<void()> s) { s(); });
  ASSERT_EQ(server.Arrivals().size(), 2u);
  EXPECT_DOUBLE_EQ(server.Arrivals()[0], 0.0);
  EXPECT_DOUBLE_EQ(server.Arrivals()[1], 1.0);
}

TEST(SyntheticServerTest, ModelShapes) {
  auto linear = LinearModel(0.002);
  EXPECT_DOUBLE_EQ(linear(10), 0.020);
  auto step = StepModel(5, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(step(4), 0.0);
  EXPECT_DOUBLE_EQ(step(5), 1.0);
  auto constant = ConstantModel(0.3);
  EXPECT_DOUBLE_EQ(constant(100), 0.3);
  auto expo = ExponentialModel(0.010, 1.0, 10);
  EXPECT_DOUBLE_EQ(expo(0), 0.0);
  EXPECT_GT(expo(20), expo(10));
  EXPECT_GT(expo(20) - expo(10), expo(10) - expo(0));  // convex
}

ContentStore TinySite() {
  ContentStore store;
  WebObject index;
  index.path = "/";
  index.body = "<html>x</html>";
  index.size_bytes = index.body.size();
  store.Add(index);
  return store;
}

TEST(ClusterTest, SpreadsLoadAcrossReplicas) {
  EventLoop loop;
  WebServerConfig config;
  config.request_parse_cpu_s = 0.01;
  ContentStore content = TinySite();
  ServerCluster cluster(loop, config, 4, &content);
  int responded = 0;
  for (int i = 0; i < 8; ++i) {
    cluster.OnRequest(Get("/"), true,
                      [&](HttpStatus, double, std::function<void()> on_sent) {
                        ++responded;
                        on_sent();
                      });
  }
  // Least-outstanding dispatch: 2 requests per replica.
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.Replica(r).AccessLog().size(), 2u);
  }
  loop.RunUntilIdle();
  EXPECT_EQ(responded, 8);
}

TEST(ClusterTest, ClusterIsFasterThanSingleUnderLoad) {
  auto latency = [](size_t replicas) {
    EventLoop loop;
    WebServerConfig config;
    config.cpu_cores = 1;
    config.request_parse_cpu_s = 0.005;
    ContentStore content = TinySite();
    ServerCluster cluster(loop, config, replicas, &content);
    SimTime worst = 0.0;
    for (int i = 0; i < 16; ++i) {
      cluster.OnRequest(Get("/"), true,
                        [&](HttpStatus, double, std::function<void()> on_sent) {
                          worst = std::max(worst, loop.Now());
                          on_sent();
                        });
    }
    loop.RunUntilIdle();
    return worst;
  };
  EXPECT_LT(latency(16), latency(1) / 4.0);
}

TEST(ClusterTest, MergedAccessLogSortedByArrival) {
  EventLoop loop;
  WebServerConfig config;
  ContentStore content = TinySite();
  ServerCluster cluster(loop, config, 2, &content);
  for (int i = 0; i < 6; ++i) {
    loop.ScheduleAt(static_cast<double>(i), [&] {
      cluster.OnRequest(Get("/"), true,
                        [](HttpStatus, double, std::function<void()> s) { s(); });
    });
  }
  loop.RunUntilIdle();
  auto merged = cluster.MergedAccessLog();
  ASSERT_EQ(merged.size(), 6u);
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].arrival, merged[i].arrival);
  }
}

TEST(BackgroundTrafficTest, GeneratesRoughlyPoissonLoad) {
  EventLoop loop;
  Rng rng(5);
  ContentStore content = TinySite();
  WebServerConfig config;
  WebServer server(loop, config, &content);
  BackgroundTrafficConfig bg;
  bg.requests_per_second = 10.0;
  BackgroundTraffic traffic(loop, rng, bg, server,
                            [] {
                              return [](HttpStatus, double, std::function<void()> s) { s(); };
                            });
  traffic.Start();
  loop.RunUntil(100.0);
  traffic.Stop();
  EXPECT_NEAR(static_cast<double>(traffic.RequestsIssued()), 1000.0, 120.0);
  EXPECT_EQ(server.AccessLog().size(), traffic.RequestsIssued());
  for (const auto& entry : server.AccessLog()) {
    EXPECT_FALSE(entry.is_mfc);
  }
  // Stop really stops.
  uint64_t n = traffic.RequestsIssued();
  loop.RunUntil(200.0);
  EXPECT_EQ(traffic.RequestsIssued(), n);
}

TEST(BackgroundTrafficTest, ZeroRateNeverStarts) {
  EventLoop loop;
  Rng rng(6);
  ContentStore content = TinySite();
  WebServerConfig config;
  WebServer server(loop, config, &content);
  BackgroundTrafficConfig bg;
  bg.requests_per_second = 0.0;
  BackgroundTraffic traffic(loop, rng, bg, server,
                            [] {
                              return [](HttpStatus, double, std::function<void()> s) { s(); };
                            });
  traffic.Start();
  EXPECT_FALSE(traffic.Running());
  loop.RunUntil(10.0);
  EXPECT_EQ(traffic.RequestsIssued(), 0u);
}

}  // namespace
}  // namespace mfc
