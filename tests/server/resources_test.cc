#include "src/server/resources.h"

#include <gtest/gtest.h>

#include <vector>

namespace mfc {
namespace {

TEST(CpuResourceTest, SingleJobTakesItsDemand) {
  EventLoop loop;
  CpuResource cpu(loop, 1);
  SimTime done = 0.0;
  cpu.Submit(0.5, [&] { done = loop.Now(); });
  loop.RunUntilIdle();
  EXPECT_NEAR(done, 0.5, 1e-9);
}

TEST(CpuResourceTest, ProcessorSharingSlowsConcurrentJobs) {
  EventLoop loop;
  CpuResource cpu(loop, 1);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    cpu.Submit(0.1, [&] { done.push_back(loop.Now()); });
  }
  loop.RunUntilIdle();
  ASSERT_EQ(done.size(), 4u);
  // 4 equal jobs on 1 core all finish together at 4 * 0.1.
  for (SimTime t : done) {
    EXPECT_NEAR(t, 0.4, 1e-9);
  }
}

TEST(CpuResourceTest, MultipleCoresRunInParallel) {
  EventLoop loop;
  CpuResource cpu(loop, 4);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    cpu.Submit(0.1, [&] { done.push_back(loop.Now()); });
  }
  loop.RunUntilIdle();
  for (SimTime t : done) {
    EXPECT_NEAR(t, 0.1, 1e-9);
  }
}

TEST(CpuResourceTest, SpeedScalesService) {
  EventLoop loop;
  CpuResource cpu(loop, 1, 2.0);
  SimTime done = 0.0;
  cpu.Submit(0.5, [&] { done = loop.Now(); });
  loop.RunUntilIdle();
  EXPECT_NEAR(done, 0.25, 1e-9);
}

TEST(CpuResourceTest, ShorterJobFinishesFirstUnderPs) {
  EventLoop loop;
  CpuResource cpu(loop, 1);
  SimTime short_done = 0.0;
  SimTime long_done = 0.0;
  cpu.Submit(0.1, [&] { short_done = loop.Now(); });
  cpu.Submit(0.3, [&] { long_done = loop.Now(); });
  loop.RunUntilIdle();
  // Shared at 1/2 speed until short job ends at 0.2; long job then has 0.2
  // demand left at full speed -> 0.4 total.
  EXPECT_NEAR(short_done, 0.2, 1e-9);
  EXPECT_NEAR(long_done, 0.4, 1e-9);
}

TEST(CpuResourceTest, SlowdownProviderStretchesService) {
  EventLoop loop;
  CpuResource cpu(loop, 1);
  double slowdown = 1.0;
  cpu.SetSlowdownProvider([&] { return slowdown; });
  SimTime done = 0.0;
  slowdown = 4.0;
  cpu.Submit(0.1, [&] { done = loop.Now(); });
  loop.RunUntilIdle();
  EXPECT_NEAR(done, 0.4, 1e-9);
}

TEST(CpuResourceTest, RescheduleAppliesNewSlowdownMidJob) {
  EventLoop loop;
  CpuResource cpu(loop, 1);
  double slowdown = 1.0;
  cpu.SetSlowdownProvider([&] { return slowdown; });
  SimTime done = 0.0;
  cpu.Submit(1.0, [&] { done = loop.Now(); });
  loop.RunUntil(0.5);  // half the work done at full speed
  slowdown = 2.0;
  cpu.Reschedule();
  loop.RunUntilIdle();
  EXPECT_NEAR(done, 1.5, 1e-9);  // remaining 0.5 at half speed -> 1.0 more
}

TEST(CpuResourceTest, UtilizationReflectsLoad) {
  EventLoop loop;
  CpuResource cpu(loop, 2);
  EXPECT_DOUBLE_EQ(cpu.Utilization(), 0.0);
  cpu.Submit(1.0, [] {});
  EXPECT_DOUBLE_EQ(cpu.Utilization(), 0.5);
  cpu.Submit(1.0, [] {});
  cpu.Submit(1.0, [] {});
  EXPECT_DOUBLE_EQ(cpu.Utilization(), 1.0);
  EXPECT_EQ(cpu.ActiveJobs(), 3u);
}

TEST(DiskResourceTest, SingleOpSeekPlusTransfer) {
  EventLoop loop;
  DiskResource disk(loop, 0.005, 1e6);
  SimTime done = 0.0;
  disk.Submit(100e3, [&] { done = loop.Now(); });
  loop.RunUntilIdle();
  EXPECT_NEAR(done, 0.105, 1e-9);
}

TEST(DiskResourceTest, OpsAreFifoSerialized) {
  EventLoop loop;
  DiskResource disk(loop, 0.01, 1e6);
  std::vector<int> order;
  std::vector<SimTime> times;
  for (int i = 0; i < 3; ++i) {
    disk.Submit(10e3, [&, i] {
      order.push_back(i);
      times.push_back(loop.Now());
    });
  }
  EXPECT_EQ(disk.QueueDepth(), 3u);
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_NEAR(times[0], 0.02, 1e-9);
  EXPECT_NEAR(times[1], 0.04, 1e-9);
  EXPECT_NEAR(times[2], 0.06, 1e-9);
}

TEST(DiskResourceTest, BusySecondsAccumulate) {
  EventLoop loop;
  DiskResource disk(loop, 0.01, 1e6);
  disk.Submit(10e3, [] {});
  loop.RunUntilIdle();
  EXPECT_NEAR(disk.BusySeconds(), 0.02, 1e-9);
  loop.RunUntil(10.0);
  EXPECT_NEAR(disk.BusySeconds(), 0.02, 1e-9);  // idle time not counted
  disk.Submit(10e3, [] {});
  loop.RunUntilIdle();
  EXPECT_NEAR(disk.BusySeconds(), 0.04, 1e-9);
}

TEST(MemoryModelTest, NoSlowdownWithinRam) {
  MemoryModel mem(1e9, 200e6, 10.0);
  EXPECT_DOUBLE_EQ(mem.SlowdownFactor(), 1.0);
  mem.Allocate(700e6);
  EXPECT_DOUBLE_EQ(mem.SlowdownFactor(), 1.0);
  EXPECT_FALSE(mem.Swapping());
}

TEST(MemoryModelTest, OvercommitSlowsLinearly) {
  MemoryModel mem(1e9, 200e6, 10.0);
  mem.Allocate(1.0e9);  // used 1.2e9, 20% over
  EXPECT_TRUE(mem.Swapping());
  EXPECT_NEAR(mem.SlowdownFactor(), 1.0 + 10.0 * 0.2, 1e-9);
}

TEST(MemoryModelTest, FreeRestores) {
  MemoryModel mem(1e9, 200e6, 10.0);
  mem.Allocate(1.0e9);
  mem.Free(1.0e9);
  EXPECT_DOUBLE_EQ(mem.SlowdownFactor(), 1.0);
  EXPECT_DOUBLE_EQ(mem.UsedBytes(), 200e6);
}

TEST(MemoryModelTest, FreeClampsAtZero) {
  MemoryModel mem(1e9, 100e6, 10.0);
  mem.Free(5e9);
  EXPECT_DOUBLE_EQ(mem.UsedBytes(), 0.0);
}

}  // namespace
}  // namespace mfc
