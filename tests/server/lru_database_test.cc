#include <gtest/gtest.h>

#include "src/server/database.h"
#include "src/server/lru_cache.h"
#include "src/server/resources.h"

namespace mfc {
namespace {

TEST(LruByteCacheTest, MissThenHit) {
  LruByteCache cache(100.0);
  EXPECT_FALSE(cache.Touch("a"));
  cache.Insert("a", 40.0);
  EXPECT_TRUE(cache.Touch("a"));
  EXPECT_EQ(cache.Hits(), 1u);
  EXPECT_EQ(cache.Misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
}

TEST(LruByteCacheTest, EvictsLeastRecentlyUsed) {
  LruByteCache cache(100.0);
  cache.Insert("a", 40.0);
  cache.Insert("b", 40.0);
  cache.Touch("a");          // a is now MRU
  cache.Insert("c", 40.0);   // evicts b
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_LE(cache.UsedBytes(), 100.0);
}

TEST(LruByteCacheTest, OversizedEntryNotCached) {
  LruByteCache cache(100.0);
  cache.Insert("huge", 200.0);
  EXPECT_FALSE(cache.Contains("huge"));
  EXPECT_DOUBLE_EQ(cache.UsedBytes(), 0.0);
}

TEST(LruByteCacheTest, ReinsertUpdatesSize) {
  LruByteCache cache(100.0);
  cache.Insert("a", 30.0);
  cache.Insert("a", 60.0);
  EXPECT_DOUBLE_EQ(cache.UsedBytes(), 60.0);
  EXPECT_EQ(cache.EntryCount(), 1u);
}

TEST(LruByteCacheTest, ClearEmpties) {
  LruByteCache cache(100.0);
  cache.Insert("a", 10.0);
  cache.Clear();
  EXPECT_EQ(cache.EntryCount(), 0u);
  EXPECT_FALSE(cache.Contains("a"));
}

TEST(LruByteCacheTest, ManyInsertionsRespectCapacity) {
  LruByteCache cache(1000.0);
  for (int i = 0; i < 500; ++i) {
    cache.Insert("key" + std::to_string(i), 37.0);
    EXPECT_LE(cache.UsedBytes(), 1000.0);
  }
}

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : cpu_(loop_, 1), disk_(loop_, 0.005, 50e6) {}

  Database MakeDb(DatabaseConfig config) { return Database(loop_, config, cpu_, disk_); }

  EventLoop loop_;
  CpuResource cpu_;
  DiskResource disk_;
};

TEST_F(DatabaseTest, CacheMissPaysPerRowCost) {
  DatabaseConfig config;
  config.base_query_cpu_s = 0.001;
  config.per_row_cpu_s = 1e-5;
  config.disk_miss_fraction = 0.0;
  Database db = MakeDb(config);
  SimTime done = 0.0;
  db.Execute("q1", 10000, 500.0, [&] { done = loop_.Now(); });
  loop_.RunUntilIdle();
  EXPECT_NEAR(done, 0.001 + 0.1, 1e-6);
}

TEST_F(DatabaseTest, CacheHitIsCheap) {
  DatabaseConfig config;
  config.base_query_cpu_s = 0.001;
  config.per_row_cpu_s = 1e-5;
  config.disk_miss_fraction = 0.0;
  Database db = MakeDb(config);
  db.Execute("q1", 10000, 500.0, [] {});
  loop_.RunUntilIdle();
  SimTime start = loop_.Now();
  SimTime done = 0.0;
  db.Execute("q1", 10000, 500.0, [&] { done = loop_.Now(); });
  loop_.RunUntilIdle();
  EXPECT_NEAR(done - start, 0.001, 1e-6);
  EXPECT_EQ(db.QueryCache().Hits(), 1u);
}

TEST_F(DatabaseTest, DistinctKeysDoNotShareCache) {
  DatabaseConfig config;
  config.per_row_cpu_s = 1e-5;
  config.disk_miss_fraction = 0.0;
  Database db = MakeDb(config);
  db.Execute("q1", 1000, 100.0, [] {});
  loop_.RunUntilIdle();
  SimTime start = loop_.Now();
  SimTime done = 0.0;
  db.Execute("q2", 1000, 100.0, [&] { done = loop_.Now(); });
  loop_.RunUntilIdle();
  EXPECT_GT(done - start, 0.009);  // paid the scan again
}

TEST_F(DatabaseTest, CacheDisabledAlwaysScans) {
  DatabaseConfig config;
  config.query_cache_bytes = 0.0;
  config.per_row_cpu_s = 1e-5;
  config.disk_miss_fraction = 0.0;
  Database db = MakeDb(config);
  db.Execute("q1", 1000, 100.0, [] {});
  loop_.RunUntilIdle();
  SimTime start = loop_.Now();
  SimTime done = 0.0;
  db.Execute("q1", 1000, 100.0, [&] { done = loop_.Now(); });
  loop_.RunUntilIdle();
  EXPECT_GT(done - start, 0.009);
}

TEST_F(DatabaseTest, InvalidateCacheForcesRescan) {
  DatabaseConfig config;
  config.per_row_cpu_s = 1e-5;
  config.disk_miss_fraction = 0.0;
  Database db = MakeDb(config);
  db.Execute("q1", 1000, 100.0, [] {});
  loop_.RunUntilIdle();
  db.InvalidateCache();
  SimTime start = loop_.Now();
  SimTime done = 0.0;
  db.Execute("q1", 1000, 100.0, [&] { done = loop_.Now(); });
  loop_.RunUntilIdle();
  EXPECT_GT(done - start, 0.009);
}

TEST_F(DatabaseTest, ConnectionPoolSerializesOverflow) {
  DatabaseConfig config;
  config.connection_pool = 2;
  config.base_query_cpu_s = 0.01;
  config.per_row_cpu_s = 0.0;
  config.query_cache_bytes = 0.0;
  config.disk_miss_fraction = 0.0;
  Database db = MakeDb(config);
  int done = 0;
  for (int i = 0; i < 6; ++i) {
    db.Execute("q" + std::to_string(i), 0, 10.0, [&] { ++done; });
  }
  EXPECT_EQ(db.ActiveConnections(), 2u);
  EXPECT_EQ(db.QueuedQueries(), 4u);
  loop_.RunUntilIdle();
  EXPECT_EQ(done, 6);
  EXPECT_EQ(db.ActiveConnections(), 0u);
  EXPECT_EQ(db.ExecutedQueries(), 6u);
}

TEST_F(DatabaseTest, DiskMissFractionTouchesDisk) {
  DatabaseConfig config;
  config.per_row_cpu_s = 0.0;
  config.base_query_cpu_s = 0.0001;
  config.disk_miss_fraction = 0.5;
  config.row_bytes = 100.0;
  Database db = MakeDb(config);
  SimTime done = 0.0;
  db.Execute("q1", 10000, 100.0, [&] { done = loop_.Now(); });
  loop_.RunUntilIdle();
  // Disk: seek 5 ms + 0.5*10000*100 B / 50 MB/s = 10 ms -> 15 ms, plus CPU.
  EXPECT_GT(done, 0.014);
  EXPECT_GT(disk_.BusySeconds(), 0.014);
}

}  // namespace
}  // namespace mfc
