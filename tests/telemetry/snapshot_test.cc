// Runtime health plane unit tests: snapshot ring retention, worker progress
// cells, counter-delta tracking, JSONL serialization, survey-progress
// arithmetic, and the read-only guarantee of the simulated-time sampler.
#include "src/telemetry/snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/stats_stream.h"

namespace mfc {
namespace {

StatsSnapshot Stamped(double t) {
  StatsSnapshot s;
  s.t = t;
  return s;
}

TEST(SnapshotRingTest, ZeroCapacityClampsToOne) {
  SnapshotRing ring(0);
  EXPECT_EQ(ring.Capacity(), 1u);
  ring.Push(Stamped(1.0));
  ring.Push(Stamped(2.0));
  EXPECT_EQ(ring.Size(), 1u);
  ASSERT_NE(ring.Latest(), nullptr);
  EXPECT_DOUBLE_EQ(ring.Latest()->t, 2.0);
}

TEST(SnapshotRingTest, PartialFillKeepsInsertionOrder) {
  SnapshotRing ring(4);
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(ring.Latest(), nullptr);
  ring.Push(Stamped(1.0));
  ring.Push(Stamped(2.0));
  EXPECT_EQ(ring.Size(), 2u);
  EXPECT_EQ(ring.TotalPushed(), 2u);
  EXPECT_DOUBLE_EQ(ring.At(0).t, 1.0);
  EXPECT_DOUBLE_EQ(ring.At(1).t, 2.0);
  EXPECT_DOUBLE_EQ(ring.Latest()->t, 2.0);
}

TEST(SnapshotRingTest, OverwritesOldestWhenFull) {
  SnapshotRing ring(3);
  for (int i = 1; i <= 5; ++i) {
    ring.Push(Stamped(static_cast<double>(i)));
  }
  EXPECT_EQ(ring.Size(), 3u);
  EXPECT_EQ(ring.TotalPushed(), 5u);
  // 1 and 2 were overwritten; oldest-to-newest reads 3, 4, 5.
  EXPECT_DOUBLE_EQ(ring.At(0).t, 3.0);
  EXPECT_DOUBLE_EQ(ring.At(1).t, 4.0);
  EXPECT_DOUBLE_EQ(ring.At(2).t, 5.0);
  EXPECT_DOUBLE_EQ(ring.Latest()->t, 5.0);
}

TEST(ParallelProgressTest, ClaimAndDoneLifecycle) {
  ParallelProgress progress(2);
  EXPECT_EQ(progress.Workers(), 2u);
  EXPECT_EQ(progress.BusyWorkers(), 0u);

  progress.OnClaim(0, 7);
  progress.OnClaim(1, 9);
  EXPECT_EQ(progress.BusyWorkers(), 2u);
  std::vector<WorkerSnapshot> snap = progress.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_TRUE(snap[0].busy);
  EXPECT_EQ(snap[0].current_index, 7u);
  EXPECT_EQ(snap[0].tasks_done, 0u);
  EXPECT_EQ(snap[1].current_index, 9u);

  progress.OnDone(0);
  snap = progress.Snapshot();
  EXPECT_FALSE(snap[0].busy);
  EXPECT_EQ(snap[0].tasks_done, 1u);
  EXPECT_EQ(progress.BusyWorkers(), 1u);

  // Out-of-range worker ids are ignored, not UB.
  progress.OnClaim(99, 1);
  progress.OnDone(99);
  EXPECT_EQ(progress.BusyWorkers(), 1u);
}

TEST(MetricsDeltaTrackerTest, ReportsOnlyChangedCounters) {
  MetricsRegistry metrics;
  metrics.Add("a", 3.0);
  metrics.Add("b", 1.0);
  MetricsDeltaTracker tracker;

  std::vector<std::pair<std::string, double>> out;
  tracker.Collect(metrics, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, "a");
  EXPECT_DOUBLE_EQ(out[0].second, 3.0);

  // No changes: nothing reported.
  out.clear();
  tracker.Collect(metrics, &out);
  EXPECT_TRUE(out.empty());

  // Only the bumped counter appears, with its delta (not its total).
  metrics.Add("b", 4.0);
  out.clear();
  tracker.Collect(metrics, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, "b");
  EXPECT_DOUBLE_EQ(out[0].second, 4.0);
}

TEST(StatsStreamTest, EmitStampsSequenceAndRetainsHistory) {
  std::string path = testing::TempDir() + "/stats_stream_emit.jsonl";
  std::string error;
  auto stream = StatsStream::Open(path, &error, /*retain=*/2);
  ASSERT_NE(stream, nullptr) << error;

  for (int i = 0; i < 3; ++i) {
    StatsSnapshot snap;
    snap.t = static_cast<double>(i);
    snap.source = "survey";
    stream->Emit(std::move(snap));
  }
  EXPECT_EQ(stream->Emitted(), 3u);
  // Retention ring holds only the last two, but seq counts every emit.
  EXPECT_EQ(stream->History().Size(), 2u);
  EXPECT_EQ(stream->History().At(0).seq, 1u);
  EXPECT_EQ(stream->History().Latest()->seq, 2u);

  stream.reset();  // flush + close
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    std::string expect_seq = "\"seq\":" + std::to_string(lines);
    EXPECT_NE(line.find(expect_seq), std::string::npos) << line;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 3);
}

TEST(StatsStreamTest, OpenFailureReportsError) {
  std::string error;
  auto stream = StatsStream::Open("/nonexistent-dir-mfc/stats.jsonl", &error);
  EXPECT_EQ(stream, nullptr);
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(StatsStreamTest, ToJsonLineEscapesStringsAndClampsNonFinite) {
  StatsSnapshot snap;
  snap.t = 1.5;
  snap.seq = 4;
  snap.source = "survey";
  snap.has_survey = true;
  snap.survey.label = "a\"b\nc";
  snap.survey.done = 1;
  snap.survey.total = 2;
  snap.survey.sites_per_sec = std::numeric_limits<double>::infinity();
  snap.survey.eta_seconds = -1.0;  // unknown: omitted
  snap.counter_deltas.emplace_back("x", 2.5);

  std::string line = StatsStream::ToJsonLine(snap);
  EXPECT_NE(line.find("\"label\":\"a\\\"b\\nc\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"sites_per_sec\":1e+308"), std::string::npos) << line;
  EXPECT_EQ(line.find("eta_seconds"), std::string::npos) << line;
  EXPECT_NE(line.find("\"deltas\":{\"x\":2.5}"), std::string::npos) << line;
}

TEST(StatsStreamTest, ToJsonLineCarriesJournalLagAndAgents) {
  StatsSnapshot snap;
  snap.source = "survey";
  snap.has_survey = true;
  snap.survey.done = 10;
  snap.survey.total = 20;
  snap.survey.journaled = 8;
  AgentHealthSnapshot agent;
  agent.agent_id = 3;
  agent.rtt_ewma = 0.25;
  agent.healthy = false;
  snap.agents.push_back(agent);

  std::string line = StatsStream::ToJsonLine(snap);
  EXPECT_NE(line.find("\"journaled\":8"), std::string::npos) << line;
  EXPECT_NE(line.find("\"journal_lag\":2"), std::string::npos) << line;
  EXPECT_NE(line.find("\"agents\":[{\"id\":3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"healthy\":false"), std::string::npos) << line;
  // last_seen_age is -1 (never heard): omitted rather than emitted negative.
  EXPECT_EQ(line.find("last_seen_age"), std::string::npos) << line;
}

TEST(BuildSurveyProgressTest, RateEtaAndJournalArithmetic) {
  std::atomic<size_t> processed{30};
  std::atomic<size_t> executed{20};
  std::atomic<size_t> resumed{5};
  SurveySamplerSource source;
  source.label = "cohort";
  source.processed = &processed;
  source.total = 60;
  source.journal_executed = &executed;
  source.journal_resumed = &resumed;

  SurveyProgressSnapshot p = BuildSurveyProgress(source, /*elapsed=*/10.0);
  EXPECT_EQ(p.done, 30u);
  EXPECT_DOUBLE_EQ(p.sites_per_sec, 3.0);
  EXPECT_DOUBLE_EQ(p.eta_seconds, 10.0);  // 30 remaining at 3/s
  EXPECT_EQ(p.journaled, 25);             // executed + resumed

  // No elapsed time yet: no rate, unknown ETA, rather than divide-by-zero.
  SurveyProgressSnapshot start = BuildSurveyProgress(source, 0.0);
  EXPECT_DOUBLE_EQ(start.sites_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(start.eta_seconds, -1.0);

  // Unjournaled run: journaled stays the "absent" sentinel.
  source.journal_executed = nullptr;
  source.journal_resumed = nullptr;
  EXPECT_EQ(BuildSurveyProgress(source, 1.0).journaled, -1);
}

// The sim sampler must observe the loop without perturbing it: the same
// event chain runs to the same final time and produces the same values with
// sampling on or off, and the sampler's snapshots land at exact simulated
// cadence.
TEST(SimStatsSamplerTest, SamplingIsReadOnlyAndOnCadence) {
  // A self-rescheduling chain of 10 events, 7 simulated seconds apart. The
  // recursive callback is owned by this scope (the returned holder must stay
  // alive while the loop runs); scheduled events reference it by pointer so
  // no shared_ptr cycle forms.
  auto make_chain = [](EventLoop& loop, std::vector<double>* times) {
    auto step = std::make_unique<std::function<void(int)>>();
    std::function<void(int)>* step_ptr = step.get();
    *step_ptr = [&loop, times, step_ptr](int remaining) {
      times->push_back(loop.Now());
      if (remaining > 1) {
        loop.ScheduleAfter(Seconds(7.0), [step_ptr, remaining] { (*step_ptr)(remaining - 1); });
      }
    };
    loop.ScheduleAfter(Seconds(7.0), [step_ptr] { (*step_ptr)(10); });
    return step;
  };

  std::vector<double> plain_times;
  EventLoop plain;
  auto plain_chain = make_chain(plain, &plain_times);
  plain.RunUntil(Seconds(75.0));

  std::vector<double> sampled_times;
  EventLoop sampled;
  auto sampled_chain = make_chain(sampled, &sampled_times);
  std::string path = testing::TempDir() + "/sim_sampler.jsonl";
  std::string error;
  auto stream = StatsStream::Open(path, &error);
  ASSERT_NE(stream, nullptr) << error;
  SimStatsSampler sampler(sampled, *stream, /*interval_sim_seconds=*/10.0,
                          [] { return SimHealthSnapshot{}; });
  sampler.Start();
  // The sampler re-arms itself forever, so drive the loop to a fixed horizon
  // instead of idle, then Stop() must cancel the pending tick.
  sampled.RunUntil(Seconds(75.0));
  sampler.Stop();
  EXPECT_EQ(sampled.PendingCount(), 0u);
  sampled.RunUntilIdle();

  EXPECT_EQ(sampled_times, plain_times);
  EXPECT_DOUBLE_EQ(sampled.Now(), plain.Now());

  // Seven ticks (t = 10..70) plus the final Stop() snapshot at t = 75.
  const SnapshotRing& history = stream->History();
  ASSERT_EQ(history.Size(), 8u);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(history.At(i).t, 10.0 * static_cast<double>(i + 1));
    EXPECT_EQ(history.At(i).clock, "sim");
    EXPECT_TRUE(history.At(i).has_sim);
  }
  EXPECT_DOUBLE_EQ(history.Latest()->t, 75.0);
}

}  // namespace
}  // namespace mfc
