#include <gtest/gtest.h>

#include "src/sim/event_loop.h"
#include "src/telemetry/arrival_log.h"
#include "src/telemetry/resource_monitor.h"
#include "src/telemetry/time_series.h"

namespace mfc {
namespace {

TEST(TimeSeriesTest, RecordsAndReads) {
  TimeSeries ts("cpu");
  EXPECT_TRUE(ts.Empty());
  ts.Record(1.0, 0.5);
  ts.Record(2.0, 0.7);
  EXPECT_EQ(ts.Size(), 2u);
  EXPECT_EQ(ts.Name(), "cpu");
  EXPECT_DOUBLE_EQ(ts.Last(), 0.7);
  EXPECT_EQ(ts.Values(), (std::vector<double>{0.5, 0.7}));
}

TEST(TimeSeriesTest, LastFallback) {
  TimeSeries ts("x");
  EXPECT_DOUBLE_EQ(ts.Last(9.0), 9.0);
}

TEST(TimeSeriesTest, WindowQueries) {
  TimeSeries ts("x");
  for (int i = 0; i < 10; ++i) {
    ts.Record(static_cast<double>(i), static_cast<double>(i * i));
  }
  EXPECT_DOUBLE_EQ(ts.MaxInWindow(2.0, 4.0), 16.0);
  EXPECT_DOUBLE_EQ(ts.MeanInWindow(2.0, 4.0), (4.0 + 9.0 + 16.0) / 3.0);
  EXPECT_DOUBLE_EQ(ts.MaxInWindow(100.0, 200.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.MeanInWindow(100.0, 200.0), 0.0);
}

TEST(ResourceMonitorTest, SamplesOnPeriod) {
  EventLoop loop;
  ResourceMonitor monitor(loop, 1.0);
  double value = 0.0;
  monitor.AddGauge("v", [&] { return value; });
  monitor.Start();
  value = 1.0;
  loop.RunUntil(0.5);  // first sample at t=0 already taken with value 0
  value = 2.0;
  loop.RunUntil(1.5);  // sample at t=1 -> 2.0
  value = 3.0;
  loop.RunUntil(2.5);  // sample at t=2 -> 3.0
  monitor.Stop();
  const TimeSeries& series = monitor.Series("v");
  ASSERT_EQ(series.Size(), 3u);
  EXPECT_DOUBLE_EQ(series.Points()[0].value, 0.0);
  EXPECT_DOUBLE_EQ(series.Points()[1].value, 2.0);
  EXPECT_DOUBLE_EQ(series.Points()[2].value, 3.0);
}

TEST(ResourceMonitorTest, StopHaltsSampling) {
  EventLoop loop;
  ResourceMonitor monitor(loop, 1.0);
  monitor.AddGauge("v", [] { return 1.0; });
  monitor.Start();
  loop.RunUntil(2.5);
  monitor.Stop();
  size_t n = monitor.Series("v").Size();
  loop.RunUntil(10.0);
  EXPECT_EQ(monitor.Series("v").Size(), n);
}

// Regression: Start() after Stop() must resume sampling instead of tripping
// over state left behind by the previous run.
TEST(ResourceMonitorTest, RestartAfterStopResumesSampling) {
  EventLoop loop;
  ResourceMonitor monitor(loop, 1.0);
  double value = 0.0;
  monitor.AddGauge("v", [&] { return value; });
  monitor.Start();
  loop.RunUntil(1.5);  // samples at t=0, t=1
  monitor.Stop();
  size_t after_first_run = monitor.Series("v").Size();
  ASSERT_EQ(after_first_run, 2u);

  loop.RunUntil(4.0);  // stopped: nothing accrues
  EXPECT_EQ(monitor.Series("v").Size(), after_first_run);

  value = 9.0;
  monitor.Start();     // immediate sample at t=4, then every period
  loop.RunUntil(5.5);  // samples at t=4, t=5
  monitor.Stop();
  ASSERT_EQ(monitor.Series("v").Size(), 4u);
  EXPECT_DOUBLE_EQ(monitor.Series("v").Points()[2].value, 9.0);
  EXPECT_DOUBLE_EQ(monitor.Series("v").Points()[2].time, 4.0);
  EXPECT_DOUBLE_EQ(monitor.Series("v").Points()[3].time, 5.0);
}

// Regression: Stop() invoked from inside a gauge callback (mid-SampleOnce)
// used to leave the just-rescheduled tick alive, so the "stopped" monitor
// kept sampling. The re-arm must respect running_ as cleared by the gauge.
TEST(ResourceMonitorTest, StopInsideGaugeHaltsImmediately) {
  EventLoop loop;
  ResourceMonitor monitor(loop, 1.0);
  int calls = 0;
  monitor.AddGauge("v", [&] {
    ++calls;
    if (calls == 2) {
      monitor.Stop();
    }
    return static_cast<double>(calls);
  });
  monitor.Start();
  loop.RunUntil(10.0);
  EXPECT_EQ(calls, 2);  // t=0 and t=1, then silence
  EXPECT_EQ(monitor.Series("v").Size(), 2u);

  // And a later restart still works cleanly.
  monitor.Start();
  loop.RunUntil(10.5);
  EXPECT_EQ(calls, 3);
}

TEST(ResourceMonitorTest, MultipleGauges) {
  EventLoop loop;
  ResourceMonitor monitor(loop, 0.5);
  monitor.AddGauge("a", [] { return 1.0; });
  monitor.AddGauge("b", [] { return 2.0; });
  monitor.Start();
  loop.RunUntil(1.1);
  monitor.Stop();
  EXPECT_EQ(monitor.AllSeries().size(), 2u);
  EXPECT_EQ(monitor.Series("a").Size(), monitor.Series("b").Size());
}

TEST(ArrivalLogTest, SpreadOfTwo) {
  std::vector<SimTime> arrivals{1.0, 1.5};
  ArrivalSpread spread = AnalyzeArrivals(arrivals);
  EXPECT_EQ(spread.count, 2u);
  EXPECT_DOUBLE_EQ(spread.full_spread, 0.5);
  EXPECT_DOUBLE_EQ(spread.middle90_spread, 0.5);
}

TEST(ArrivalLogTest, DegenerateInputs) {
  EXPECT_EQ(AnalyzeArrivals(std::vector<SimTime>{}).count, 0u);
  ArrivalSpread one = AnalyzeArrivals(std::vector<SimTime>{3.0});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.full_spread, 0.0);
}

TEST(ArrivalLogTest, Middle90DropsTails) {
  // 100 arrivals at t=i/100; two extreme outliers.
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 98; ++i) {
    arrivals.push_back(static_cast<double>(i) * 0.001);
  }
  arrivals.push_back(10.0);
  arrivals.push_back(20.0);
  ArrivalSpread spread = AnalyzeArrivals(arrivals);
  EXPECT_GT(spread.full_spread, 19.0);
  EXPECT_LT(spread.middle90_spread, 0.2);
}

TEST(ArrivalLogTest, UnsortedInputHandled) {
  std::vector<SimTime> arrivals{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(AnalyzeArrivals(arrivals).full_spread, 4.0);
}

TEST(MaxFractionWithinWindowTest, AllInside) {
  std::vector<SimTime> arrivals{1.0, 1.001, 1.002};
  EXPECT_DOUBLE_EQ(MaxFractionWithinWindow(arrivals, 0.005), 1.0);
}

TEST(MaxFractionWithinWindowTest, SlidingWindowFindsDensestCluster) {
  std::vector<SimTime> arrivals{0.0, 0.001, 0.002, 0.5, 0.501, 0.502, 0.503, 10.0};
  // Densest 5 ms window holds 4 of 8 arrivals.
  EXPECT_DOUBLE_EQ(MaxFractionWithinWindow(arrivals, 0.005), 0.5);
}

TEST(MaxFractionWithinWindowTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(MaxFractionWithinWindow(std::vector<SimTime>{}, 1.0), 0.0);
}

}  // namespace
}  // namespace mfc
