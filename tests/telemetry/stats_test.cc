#include "src/telemetry/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace mfc {
namespace {

TEST(PercentileTest, EmptyReturnsZero) {
  std::vector<double> v;
  EXPECT_EQ(Percentile(v, 50.0), 0.0);
}

TEST(PercentileTest, SingleElement) {
  std::vector<double> v{42.0};
  EXPECT_EQ(Percentile(v, 0.0), 42.0);
  EXPECT_EQ(Percentile(v, 50.0), 42.0);
  EXPECT_EQ(Percentile(v, 100.0), 42.0);
}

TEST(PercentileTest, MedianOfOddCount) {
  std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Median(v), 3.0);
}

TEST(PercentileTest, MedianOfEvenCountInterpolates) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
}

TEST(PercentileTest, NinetiethOfTen) {
  std::vector<double> v;
  for (int i = 1; i <= 10; ++i) {
    v.push_back(static_cast<double>(i));
  }
  EXPECT_NEAR(Percentile(v, 90.0), 9.1, 1e-9);
}

TEST(PercentileTest, ExtremesClampToMinMax) {
  std::vector<double> v{7.0, -2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), -2.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 7.0);
}

TEST(PercentileTest, InputOrderIrrelevant) {
  std::vector<double> a{3.0, 1.0, 2.0};
  std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(a, 75.0), Percentile(b, 75.0));
}

// The nth_element-based selection must agree with the straightforward
// full-sort implementation for arbitrary data and percentiles.
TEST(PercentileTest, SelectionMatchesSortedReference) {
  auto reference = [](std::vector<double> sorted, double pct) {
    std::sort(sorted.begin(), sorted.end());
    if (pct <= 0.0) {
      return sorted.front();
    }
    if (pct >= 100.0) {
      return sorted.back();
    }
    double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) {
      return sorted.back();
    }
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
  };
  // Deterministic pseudo-random values, including duplicates and negatives.
  std::vector<double> v;
  uint64_t state = 0x1234abcd;
  for (int i = 0; i < 237; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    v.push_back(static_cast<double>(static_cast<int64_t>(state >> 40) % 1000 - 500) / 7.0);
  }
  for (double pct : {0.0, 1.0, 10.0, 25.0, 50.0, 66.6, 75.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(Percentile(v, pct), reference(v, pct)) << "pct=" << pct;
    EXPECT_DOUBLE_EQ(Median(v), reference(v, 50.0));
  }
  // Small sizes hit the lo+1 >= size and frac == 0 edges.
  for (size_t n = 1; n <= 5; ++n) {
    std::vector<double> small(v.begin(), v.begin() + static_cast<ptrdiff_t>(n));
    for (double pct : {0.0, 33.0, 50.0, 80.0, 100.0}) {
      EXPECT_DOUBLE_EQ(Percentile(small, pct), reference(small, pct))
          << "n=" << n << " pct=" << pct;
    }
  }
}

TEST(MeanTest, Basics) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
}

TEST(StdDevTest, KnownValue) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(StdDev(v), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(StdDevTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(StdDev(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev(std::vector<double>{5.0}), 0.0);
}

TEST(MinMaxTest, Basics) {
  std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(Min(v), -1.0);
  EXPECT_DOUBLE_EQ(Max(v), 7.0);
  EXPECT_DOUBLE_EQ(Min(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(Max(std::vector<double>{}), 0.0);
}

TEST(FractionAboveTest, StrictComparison) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(FractionAbove(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(FractionAbove(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(FractionAbove(v, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(FractionAbove(std::vector<double>{}, 1.0), 0.0);
}

TEST(RunningStatsTest, MatchesBatchStats) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : v) {
    rs.Add(x);
  }
  EXPECT_EQ(rs.Count(), v.size());
  EXPECT_NEAR(rs.Mean(), Mean(v), 1e-12);
  EXPECT_NEAR(rs.StdDev(), StdDev(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.MinValue(), 2.0);
  EXPECT_DOUBLE_EQ(rs.MaxValue(), 9.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.Add(3.0);
  EXPECT_DOUBLE_EQ(rs.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.Variance(), 0.0);
}

// Parallel Welford combine: merging per-shard accumulators must agree with a
// single accumulator that saw every value, for any split of the stream.
TEST(RunningStatsTest, MergeMatchesSinglePass) {
  std::vector<double> v;
  uint64_t state = 0xdecafbad;
  for (int i = 0; i < 321; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    v.push_back(static_cast<double>(static_cast<int64_t>(state >> 40) % 2000 - 1000) / 13.0);
  }
  RunningStats single;
  for (double x : v) {
    single.Add(x);
  }
  for (size_t split : {size_t{0}, size_t{1}, v.size() / 3, v.size() - 1, v.size()}) {
    RunningStats left, right;
    for (size_t i = 0; i < v.size(); ++i) {
      (i < split ? left : right).Add(v[i]);
    }
    left.Merge(right);
    EXPECT_EQ(left.Count(), single.Count()) << "split=" << split;
    EXPECT_NEAR(left.Mean(), single.Mean(), 1e-9) << "split=" << split;
    EXPECT_NEAR(left.StdDev(), single.StdDev(), 1e-9) << "split=" << split;
    EXPECT_DOUBLE_EQ(left.MinValue(), single.MinValue());
    EXPECT_DOUBLE_EQ(left.MaxValue(), single.MaxValue());
  }
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats filled;
  filled.Add(1.0);
  filled.Add(3.0);
  RunningStats empty;

  RunningStats a = filled;
  a.Merge(empty);  // empty right side: no-op
  EXPECT_TRUE(a == filled);

  RunningStats b = empty;
  b.Merge(filled);  // empty left side: adopt right
  EXPECT_TRUE(b == filled);

  RunningStats c = empty;
  c.Merge(empty);
  EXPECT_EQ(c.Count(), 0u);
}

// Merging an accumulator into itself must behave exactly like merging an
// identical copy: the count doubles, the moments stay consistent, and no
// field is read after the aliased write corrupts it.
TEST(RunningStatsTest, SelfMergeEqualsMergingACopy) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 5.0, 9.0}) {
    rs.Add(x);
  }
  RunningStats copy = rs;
  RunningStats expected = rs;
  expected.Merge(copy);

  rs.Merge(rs);  // aliased operand
  EXPECT_TRUE(rs == expected);
  EXPECT_EQ(rs.Count(), 10u);
  EXPECT_NEAR(rs.Mean(), copy.Mean(), 1e-12);
  EXPECT_DOUBLE_EQ(rs.MinValue(), copy.MinValue());
  EXPECT_DOUBLE_EQ(rs.MaxValue(), copy.MaxValue());
  // Same data twice: variance shrinks (n-1 denominator) but m2 doubles.
  EXPECT_NEAR(rs.M2(), 2.0 * copy.M2(), 1e-12);

  // Self-merging an empty accumulator stays empty.
  RunningStats empty;
  empty.Merge(empty);
  EXPECT_EQ(empty.Count(), 0u);
}

// A zero-count operand must never disturb min/max: an empty shard's
// default-constructed min_ = 0 would otherwise leak into an all-positive
// or all-negative merged summary.
TEST(RunningStatsTest, ZeroCountOperandDoesNotPolluteExtrema) {
  RunningStats positives;
  positives.Add(5.0);
  positives.Add(7.0);
  positives.Merge(RunningStats{});
  EXPECT_DOUBLE_EQ(positives.MinValue(), 5.0);  // not 0 from the empty operand

  RunningStats negatives;
  negatives.Add(-7.0);
  negatives.Add(-5.0);
  negatives.Merge(RunningStats{});
  EXPECT_DOUBLE_EQ(negatives.MaxValue(), -5.0);
}

TEST(RunningStatsTest, MergeManyShardsAssociativity) {
  // Fold order over several shards must not change the combined moments.
  std::vector<RunningStats> shards(5);
  RunningStats single;
  for (int i = 0; i < 100; ++i) {
    double x = static_cast<double>((i * 29) % 41) - 20.0;
    shards[static_cast<size_t>(i) % shards.size()].Add(x);
    single.Add(x);
  }
  RunningStats forward;
  for (const RunningStats& s : shards) {
    forward.Merge(s);
  }
  RunningStats backward;
  for (size_t i = shards.size(); i-- > 0;) {
    backward.Merge(shards[i]);
  }
  EXPECT_EQ(forward.Count(), single.Count());
  EXPECT_NEAR(forward.Mean(), single.Mean(), 1e-9);
  EXPECT_NEAR(forward.Variance(), single.Variance(), 1e-9);
  EXPECT_NEAR(backward.Mean(), forward.Mean(), 1e-9);
  EXPECT_NEAR(backward.Variance(), forward.Variance(), 1e-9);
}

TEST(HistogramTest, MergeAddsBucketCounts) {
  Histogram a({10.0, 20.0});
  a.Add(5.0);
  a.Add(15.0);
  Histogram b({10.0, 20.0});
  b.Add(15.0);
  b.Add(25.0);
  a.Merge(b);
  EXPECT_EQ(a.Total(), 4u);
  EXPECT_EQ(a.BucketValue(0), 1u);
  EXPECT_EQ(a.BucketValue(1), 2u);
  EXPECT_EQ(a.BucketValue(2), 1u);
  EXPECT_EQ(a.Edges(), (std::vector<double>{10.0, 20.0}));
}

TEST(HistogramTest, MergeZeroCountOperandIsNoOp) {
  Histogram filled({10.0, 20.0});
  filled.Add(5.0);
  filled.Add(15.0);
  Histogram before = filled;
  filled.Merge(Histogram({10.0, 20.0}));  // zero-count operand
  EXPECT_TRUE(filled == before);
}

TEST(HistogramTest, MergeIntoEmptyAdoptsCounts) {
  Histogram filled({10.0, 20.0});
  filled.Add(5.0);
  filled.Add(15.0);
  filled.Add(25.0);
  Histogram empty({10.0, 20.0});
  empty.Merge(filled);
  EXPECT_TRUE(empty == filled);
  EXPECT_EQ(empty.Total(), 3u);
}

TEST(HistogramTest, SelfMergeDoublesEveryBucket) {
  Histogram h({10.0, 20.0});
  h.Add(5.0);
  h.Add(15.0);
  h.Add(15.0);
  h.Add(25.0);
  h.Merge(h);  // aliased operand
  EXPECT_EQ(h.Total(), 8u);
  EXPECT_EQ(h.BucketValue(0), 2u);
  EXPECT_EQ(h.BucketValue(1), 4u);
  EXPECT_EQ(h.BucketValue(2), 2u);
}

TEST(HistogramTest, BucketsAndFractions) {
  Histogram h({10.0, 20.0, 30.0});
  h.Add(5.0);    // (-inf, 10]
  h.Add(10.0);   // (-inf, 10]  (upper_bound semantics: 10 <= 10)
  h.Add(15.0);   // (10, 20]
  h.Add(25.0);   // (20, 30]
  h.Add(35.0);   // (30, inf)
  h.Add(40.0);   // (30, inf)
  ASSERT_EQ(h.BucketCount(), 4u);
  EXPECT_EQ(h.BucketValue(0), 2u);
  EXPECT_EQ(h.BucketValue(1), 1u);
  EXPECT_EQ(h.BucketValue(2), 1u);
  EXPECT_EQ(h.BucketValue(3), 2u);
  EXPECT_EQ(h.Total(), 6u);
  EXPECT_NEAR(h.BucketFraction(0), 2.0 / 6.0, 1e-12);
}

TEST(HistogramTest, LabelsAreReadable) {
  Histogram h({10.0, 20.0});
  EXPECT_EQ(h.BucketLabel(0), "(-inf, 10]");
  EXPECT_EQ(h.BucketLabel(1), "(10, 20]");
  EXPECT_EQ(h.BucketLabel(2), "(20, +inf)");
}

TEST(HistogramTest, EmptyHistogramFractionsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.BucketFraction(0), 0.0);
  EXPECT_EQ(h.Total(), 0u);
}

// Property-style sweep: percentile is monotone in pct for arbitrary data.
class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, MonotoneInPct) {
  int seed = GetParam();
  std::vector<double> v;
  unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1u;
  for (int i = 0; i < 37; ++i) {
    state = state * 1664525u + 1013904223u;
    v.push_back(static_cast<double>(state % 1000) / 10.0);
  }
  double prev = Percentile(v, 0.0);
  for (double pct = 5.0; pct <= 100.0; pct += 5.0) {
    double cur = Percentile(v, pct);
    EXPECT_GE(cur, prev) << "pct=" << pct;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace mfc
