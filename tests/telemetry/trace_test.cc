#include "src/telemetry/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/telemetry/metrics.h"

namespace mfc {
namespace {

TEST(TracerTest, RootSpanGetsOwnTrack) {
  Tracer tracer;
  SpanId root = tracer.StartSpan("request", "server", 0, 1.0);
  tracer.EndSpan(root, 2.0);
  ASSERT_EQ(tracer.SpanCount(), 1u);
  const TraceSpan& span = tracer.Spans()[0];
  EXPECT_EQ(span.id, root);
  EXPECT_EQ(span.parent, 0u);
  EXPECT_EQ(span.track, root);
  EXPECT_FALSE(span.open);
  EXPECT_DOUBLE_EQ(span.start, 1.0);
  EXPECT_DOUBLE_EQ(span.end, 2.0);
  EXPECT_DOUBLE_EQ(span.Duration(), 1.0);
}

TEST(TracerTest, ChildInheritsParentTrack) {
  Tracer tracer;
  SpanId root = tracer.StartSpan("request", "server", 0, 0.0);
  SpanId child = tracer.StartSpan("cpu", "server", root, 0.5);
  SpanId grandchild = tracer.StartSpan("inner", "server", child, 0.6);
  EXPECT_EQ(tracer.Spans()[child - 1].parent, root);
  EXPECT_EQ(tracer.Spans()[child - 1].track, root);
  EXPECT_EQ(tracer.Spans()[grandchild - 1].track, root);
}

TEST(TracerTest, AttrsStringifyAllOverloads) {
  Tracer tracer;
  SpanId id = tracer.StartSpan("epoch", "coord", 0, 0.0);
  tracer.Attr(id, "stage", std::string("Base"));
  tracer.Attr(id, "metric_ms", 12.5);
  tracer.Attr(id, "crowd", static_cast<uint64_t>(15));
  const TraceSpan& span = tracer.Spans()[0];
  ASSERT_EQ(span.attrs.size(), 3u);
  EXPECT_EQ(span.attrs[0].first, "stage");
  EXPECT_EQ(span.attrs[0].second, "Base");
  EXPECT_EQ(span.attrs[2].second, "15");
}

TEST(TracerTest, NamedFiltersByName) {
  Tracer tracer;
  tracer.StartSpan("epoch", "coord", 0, 0.0);
  tracer.StartSpan("request", "server", 0, 0.0);
  tracer.StartSpan("epoch", "coord", 0, 1.0);
  EXPECT_EQ(tracer.Named("epoch").size(), 2u);
  EXPECT_EQ(tracer.Named("request").size(), 1u);
  EXPECT_TRUE(tracer.Named("nope").empty());
}

TEST(TracerTest, MergeFromRemapsIdsAndParents) {
  Tracer a;
  SpanId a_root = a.StartSpan("request", "server", 0, 0.0);
  a.EndSpan(a_root, 1.0);

  Tracer b;
  SpanId b_root = b.StartSpan("request", "server", 0, 5.0);
  SpanId b_child = b.StartSpan("cpu", "server", b_root, 5.5);
  b.EndSpan(b_child, 5.8);
  b.EndSpan(b_root, 6.0);

  a.MergeFrom(b, 7);
  ASSERT_EQ(a.SpanCount(), 3u);
  const TraceSpan& merged_root = a.Spans()[1];
  const TraceSpan& merged_child = a.Spans()[2];
  // Ids are remapped past a's own id space and stay internally consistent.
  EXPECT_EQ(merged_root.id, a_root + b_root);
  EXPECT_EQ(merged_child.parent, merged_root.id);
  EXPECT_EQ(merged_child.track, merged_root.track);
  EXPECT_EQ(merged_root.pid, 7u);
  EXPECT_EQ(merged_child.pid, 7u);
  // The invariant Spans()[id-1].id == id survives the merge.
  for (const TraceSpan& span : a.Spans()) {
    EXPECT_EQ(a.Spans()[span.id - 1].id, span.id);
  }
}

TEST(TracerTest, MergeOrderIsDeterministic) {
  auto make = [](double offset) {
    Tracer t;
    SpanId id = t.StartSpan("request", "server", 0, offset);
    t.EndSpan(id, offset + 1.0);
    return t;
  };
  Tracer shard0 = make(0.0);
  Tracer shard1 = make(10.0);

  Tracer merged_a;
  merged_a.MergeFrom(shard0, 0);
  merged_a.MergeFrom(shard1, 1);
  Tracer merged_b;
  merged_b.MergeFrom(shard0, 0);
  merged_b.MergeFrom(shard1, 1);
  ASSERT_EQ(merged_a.SpanCount(), merged_b.SpanCount());
  for (size_t i = 0; i < merged_a.SpanCount(); ++i) {
    EXPECT_EQ(merged_a.Spans()[i].id, merged_b.Spans()[i].id);
    EXPECT_EQ(merged_a.Spans()[i].pid, merged_b.Spans()[i].pid);
    EXPECT_DOUBLE_EQ(merged_a.Spans()[i].start, merged_b.Spans()[i].start);
  }
}

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry m;
  m.Add("requests");
  m.Add("requests");
  m.Add("bytes", 100.0);
  EXPECT_DOUBLE_EQ(m.Counter("requests"), 2.0);
  EXPECT_DOUBLE_EQ(m.Counter("bytes"), 100.0);
  EXPECT_DOUBLE_EQ(m.Counter("absent"), 0.0);
}

TEST(MetricsRegistryTest, GaugeKeepsLastSet) {
  MetricsRegistry m;
  m.Set("depth", 3.0);
  m.Set("depth", 1.0);
  EXPECT_DOUBLE_EQ(m.Gauge("depth"), 1.0);
}

TEST(MetricsRegistryTest, MergeSemanticsPerKind) {
  MetricsRegistry a;
  a.Add("count", 2.0);
  a.Set("peak", 5.0);
  a.Observe("lat", 1.0);
  a.HistObserve("hist", {10.0, 20.0}, 5.0);

  MetricsRegistry b;
  b.Add("count", 3.0);
  b.Set("peak", 7.0);
  b.Observe("lat", 3.0);
  b.HistObserve("hist", {10.0, 20.0}, 15.0);
  b.Add("only_in_b");

  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Counter("count"), 5.0);       // counters add
  EXPECT_DOUBLE_EQ(a.Gauge("peak"), 7.0);          // gauges keep max
  EXPECT_DOUBLE_EQ(a.Counter("only_in_b"), 1.0);   // absent keys copy over
  ASSERT_NE(a.Summary("lat"), nullptr);
  EXPECT_EQ(a.Summary("lat")->Count(), 2u);
  EXPECT_DOUBLE_EQ(a.Summary("lat")->Mean(), 2.0);
  ASSERT_NE(a.Hist("hist"), nullptr);
  EXPECT_EQ(a.Hist("hist")->Total(), 2u);
  EXPECT_EQ(a.Hist("hist")->BucketValue(0), 1u);
  EXPECT_EQ(a.Hist("hist")->BucketValue(1), 1u);
}

TEST(MetricsRegistryTest, ShardedMergeMatchesSinglePass) {
  // The survey determinism contract in miniature: observations split across
  // shards and folded must equal one registry fed everything directly.
  std::vector<double> xs;
  for (int i = 0; i < 97; ++i) {
    xs.push_back(static_cast<double>((i * 37) % 100) / 3.0);
  }
  MetricsRegistry single;
  MetricsRegistry shard_a, shard_b, shard_c;
  MetricsRegistry* shards[] = {&shard_a, &shard_b, &shard_c};
  for (size_t i = 0; i < xs.size(); ++i) {
    single.Add("n");
    single.Observe("x", xs[i]);
    single.HistObserve("h", LatencyBucketEdgesMs(), xs[i]);
    MetricsRegistry* shard = shards[i % 3];
    shard->Add("n");
    shard->Observe("x", xs[i]);
    shard->HistObserve("h", LatencyBucketEdgesMs(), xs[i]);
  }
  MetricsRegistry merged;
  for (MetricsRegistry* shard : shards) {
    merged.Merge(*shard);
  }
  EXPECT_DOUBLE_EQ(merged.Counter("n"), single.Counter("n"));
  EXPECT_EQ(merged.Summary("x")->Count(), single.Summary("x")->Count());
  EXPECT_NEAR(merged.Summary("x")->Mean(), single.Summary("x")->Mean(), 1e-9);
  EXPECT_NEAR(merged.Summary("x")->StdDev(), single.Summary("x")->StdDev(), 1e-9);
  EXPECT_EQ(merged.Hist("h")->Total(), single.Hist("h")->Total());
  for (size_t i = 0; i < merged.Hist("h")->BucketCount(); ++i) {
    EXPECT_EQ(merged.Hist("h")->BucketValue(i), single.Hist("h")->BucketValue(i));
  }
}

TEST(MetricsRegistryTest, MergeIntoEmptyEqualsCopy) {
  MetricsRegistry src;
  src.Add("a", 4.0);
  src.Set("g", 2.0);
  src.Observe("s", 1.5);
  src.HistObserve("h", {1.0}, 0.5);
  MetricsRegistry dst;
  dst.Merge(src);
  EXPECT_TRUE(dst == src);
}

TEST(MetricsRegistryTest, EmptyAndEquality) {
  MetricsRegistry a, b;
  EXPECT_TRUE(a.Empty());
  EXPECT_TRUE(a == b);
  a.Add("x");
  EXPECT_FALSE(a.Empty());
  EXPECT_FALSE(a == b);
  b.Add("x");
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace mfc
