#!/usr/bin/env python3
"""Validates --stats-stream JSONL health feeds (DESIGN.md §11 schema).

Usage:
    check_stats_stream.py FILE [FILE ...]
    check_stats_stream.py --require-source=survey --expect-complete FILE
    check_stats_stream.py --require-source=live --expect-agents=20 FILE

Every line must be a standalone JSON object carrying the snapshot header
(t, seq, clock, source) with seq consecutive from 0; optional blocks are
checked per-kind: 'survey' progress (done <= total, journal_lag arithmetic,
worker cells), 'sim' event-loop/flow-network counters (events_executed
monotone), per-'agents' health rows (ids strictly increasing, loss estimate
in [0, 1], piggybacked counters non-negative), and counter 'deltas'.

Flags let ctest assert run-shaped properties: --require-source demands at
least one snapshot from that source, --expect-agents pins the fleet size
seen in the last agent-bearing snapshot, --min-lines a minimum feed length,
and --expect-complete that a survey feed ends with done == total.
"""

import argparse
import json
import math
import sys

CLOCKS = {"wall", "sim"}


def is_num(v):
    return not isinstance(v, bool) and isinstance(v, (int, float))


def is_count(v):
    return not isinstance(v, bool) and isinstance(v, int) and v >= 0


def check_survey(errors, where, s):
    for key in ("label", "done", "total", "sites_per_sec"):
        if key not in s:
            errors.append(f"{where}: survey missing key '{key}'")
            return
    if not isinstance(s["label"], str):
        errors.append(f"{where}: survey.label must be a string")
    if not is_count(s["done"]) or not is_count(s["total"]):
        errors.append(f"{where}: survey.done/total must be non-negative integers")
        return
    if s["done"] > s["total"]:
        errors.append(f"{where}: survey.done {s['done']} > total {s['total']}")
    if not is_num(s["sites_per_sec"]) or s["sites_per_sec"] < 0:
        errors.append(f"{where}: survey.sites_per_sec must be >= 0")
    if "eta_seconds" in s and (not is_num(s["eta_seconds"]) or s["eta_seconds"] < 0):
        errors.append(f"{where}: survey.eta_seconds must be >= 0")
    if "journaled" in s:
        if not is_count(s["journaled"]):
            errors.append(f"{where}: survey.journaled must be a non-negative integer")
        elif "journal_lag" not in s:
            errors.append(f"{where}: survey.journaled without journal_lag")
        else:
            expect = max(0, s["done"] - s["journaled"])
            if s["journal_lag"] != expect:
                errors.append(f"{where}: survey.journal_lag {s['journal_lag']} != "
                              f"done - journaled = {expect}")
    for i, w in enumerate(s.get("workers", [])):
        wwhere = f"{where}: workers[{i}]"
        if not is_count(w.get("worker", -1)) or w.get("worker") != i:
            errors.append(f"{wwhere} must carry worker == {i}")
        if not isinstance(w.get("busy"), bool):
            errors.append(f"{wwhere} missing boolean 'busy'")
        if w.get("busy") and not is_count(w.get("current_index", -1)):
            errors.append(f"{wwhere} busy but no valid current_index")
        if not is_count(w.get("tasks_done", -1)):
            errors.append(f"{wwhere} tasks_done must be a non-negative integer")


def check_sim(errors, where, s, last_executed):
    for key in ("event_loop_depth", "events_executed", "flows_active", "reallocs",
                "links_touched", "no_progress"):
        if not is_count(s.get(key, -1)):
            errors.append(f"{where}: sim.{key} must be a non-negative integer")
            return last_executed
    if last_executed is not None and s["events_executed"] < last_executed:
        errors.append(f"{where}: sim.events_executed went backwards "
                      f"({last_executed} -> {s['events_executed']})")
    return s["events_executed"]


def check_agents(errors, where, agents):
    last_id = -1
    for i, a in enumerate(agents):
        awhere = f"{where}: agents[{i}]"
        if not is_count(a.get("id", -1)):
            errors.append(f"{awhere} missing integer id")
            continue
        if a["id"] <= last_id:
            errors.append(f"{awhere} ids not strictly increasing "
                          f"({last_id} then {a['id']})")
        last_id = a["id"]
        if not isinstance(a.get("healthy"), bool):
            errors.append(f"{awhere} missing boolean 'healthy'")
        loss = a.get("loss_estimate")
        if not is_num(loss) or not (0.0 <= loss <= 1.0):
            errors.append(f"{awhere} loss_estimate must be in [0, 1], got {loss!r}")
        for key in ("miss_streak", "inflight", "fetch_errors", "dedup_hits",
                    "fault_drops", "requests_fired"):
            if not is_count(a.get(key, -1)):
                errors.append(f"{awhere} {key} must be a non-negative integer")
        for key in ("last_seen_age", "rtt_ewma"):
            if key in a and (not is_num(a[key]) or a[key] < 0 or not math.isfinite(a[key])):
                errors.append(f"{awhere} {key} must be a finite number >= 0")


def check_file(errors, path, args):
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        errors.append(f"{path}: cannot read: {e}")
        return
    lines = [line for line in lines if line.strip()]
    if len(lines) < args.min_lines:
        errors.append(f"{path}: only {len(lines)} snapshot(s), expected >= {args.min_lines}")
    sources = set()
    last_survey = None
    last_agent_count = None
    last_executed = None
    for n, line in enumerate(lines):
        where = f"{path}:{n + 1}"
        try:
            snap = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{where}: invalid JSON: {e}")
            continue
        if not isinstance(snap, dict):
            errors.append(f"{where}: snapshot must be a JSON object")
            continue
        for key in ("t", "seq", "clock", "source"):
            if key not in snap:
                errors.append(f"{where}: missing header key '{key}'")
        if not is_num(snap.get("t", None)) or not math.isfinite(snap.get("t", math.inf)):
            errors.append(f"{where}: 't' must be a finite number")
        if snap.get("seq") != n:
            errors.append(f"{where}: seq {snap.get('seq')!r} != line index {n}")
        if snap.get("clock") not in CLOCKS:
            errors.append(f"{where}: clock {snap.get('clock')!r} not in {sorted(CLOCKS)}")
        if not isinstance(snap.get("source"), str) or not snap.get("source"):
            errors.append(f"{where}: 'source' must be a non-empty string")
        else:
            sources.add(snap["source"])
        if "survey" in snap:
            check_survey(errors, where, snap["survey"])
            last_survey = snap["survey"]
        if "sim" in snap:
            last_executed = check_sim(errors, where, snap["sim"], last_executed)
        if "agents" in snap:
            check_agents(errors, where, snap["agents"])
            last_agent_count = len(snap["agents"])
        for name, delta in snap.get("deltas", {}).items():
            if not name or not is_num(delta) or not math.isfinite(delta):
                errors.append(f"{where}: deltas['{name}'] must be a finite number")
    if args.require_source and args.require_source not in sources:
        errors.append(f"{path}: no snapshot from source '{args.require_source}' "
                      f"(saw {sorted(sources) or 'none'})")
    if args.expect_complete:
        if last_survey is None:
            errors.append(f"{path}: --expect-complete but no survey snapshots")
        elif last_survey.get("done") != last_survey.get("total"):
            errors.append(f"{path}: final survey snapshot incomplete "
                          f"({last_survey.get('done')}/{last_survey.get('total')})")
    if args.expect_agents is not None:
        if last_agent_count is None:
            errors.append(f"{path}: --expect-agents but no agent-bearing snapshots")
        elif last_agent_count != args.expect_agents:
            errors.append(f"{path}: last snapshot carries {last_agent_count} agent "
                          f"row(s), expected {args.expect_agents}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="JSONL stats feeds to validate")
    parser.add_argument("--require-source", metavar="NAME",
                        help="fail unless a snapshot from this source appears")
    parser.add_argument("--expect-agents", type=int, metavar="N",
                        help="fail unless the last agent-bearing snapshot has N rows")
    parser.add_argument("--min-lines", type=int, default=1, metavar="N",
                        help="minimum snapshot count per feed (default 1)")
    parser.add_argument("--expect-complete", action="store_true",
                        help="fail unless the final survey snapshot has done == total")
    args = parser.parse_args()

    errors = []
    for path in args.files:
        check_file(errors, path, args)
    if errors:
        for error in errors:
            print(f"check_stats_stream: {error}", file=sys.stderr)
        print(f"check_stats_stream: FAIL ({len(errors)} error(s) across "
              f"{len(args.files)} feed(s))", file=sys.stderr)
        return 1
    print(f"check_stats_stream: OK ({len(args.files)} feed(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
