#!/usr/bin/env python3
"""Fleet soak gate for the session/transport layer (DESIGN.md §13).

Runs live_loopback twice at fleet scale over the in-process memory transport
— once fault-free, once with heavy control-plane faults (20% datagram drop,
5% connect failures by default) — and requires both runs to reach the same
verdict: same stopped/reason, and a stopping crowd size within one crowd
step. The faulted run recovering to the clean verdict is the acceptance bar
for the whole layer: retransmits, dedup, and lanes doing the work instead of
skewing the measurement.

Usage:
    check_fleet_soak.py --live-bin PATH [--fleet N] [--knee N]
                        [--crowd-step N] [--drop P] [--connect-fail P]
"""

import argparse
import subprocess
import sys


def parse_result(output, label):
    """Extracts the RESULT key=value line a run prints last."""
    line = None
    for candidate in output.splitlines():
        if candidate.startswith("RESULT "):
            line = candidate
    if line is None:
        print(f"check_fleet_soak: {label} run printed no RESULT line")
        print(output[-2000:])
        sys.exit(1)
    fields = {}
    for pair in line.split()[1:]:
        key, _, value = pair.partition("=")
        fields[key] = value
    for key in ("transport", "fleet", "registered", "stopped", "reason", "crowd"):
        if key not in fields:
            print(f"check_fleet_soak: {label} RESULT line missing '{key}': {line}")
            sys.exit(1)
    return fields


def run_one(args, faulted):
    cmd = [
        args.live_bin,
        str(args.fleet),
        str(args.knee),
        "--transport=memory",
        f"--crowd-step={args.crowd_step}",
    ]
    if faulted:
        cmd += [f"--drop={args.drop}", f"--connect-fail={args.connect_fail}",
                f"--fault-seed={args.fault_seed}"]
    label = "faulted" if faulted else "clean"
    print(f"check_fleet_soak: [{label}] {' '.join(cmd)}")
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=args.timeout)
    if proc.returncode != 0:
        print(f"check_fleet_soak: {label} run exited {proc.returncode}")
        print(proc.stdout[-2000:])
        print(proc.stderr[-2000:])
        sys.exit(1)
    result = parse_result(proc.stdout, label)
    print(f"check_fleet_soak: [{label}] {result}")
    return result


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--live-bin", required=True, help="path to live_loopback")
    parser.add_argument("--fleet", type=int, default=200)
    parser.add_argument("--knee", type=int, default=12)
    parser.add_argument("--crowd-step", type=int, default=4)
    parser.add_argument("--drop", type=float, default=0.2)
    parser.add_argument("--connect-fail", type=float, default=0.05)
    parser.add_argument("--fault-seed", type=int, default=11)
    parser.add_argument("--timeout", type=int, default=240,
                        help="per-run wall-clock limit, seconds")
    args = parser.parse_args()

    clean = run_one(args, faulted=False)
    faulted = run_one(args, faulted=True)

    errors = []
    if int(clean["registered"]) != args.fleet:
        errors.append(f"clean run registered {clean['registered']}/{args.fleet} agents")
    # Under 20% loss a straggler registration is tolerable; the coordinator
    # runs with min_clients = fleet - fleet/4, so hold the soak to that bar.
    min_registered = args.fleet - args.fleet // 4
    if int(faulted["registered"]) < min_registered:
        errors.append(
            f"faulted run registered only {faulted['registered']}/{args.fleet} "
            f"(need >= {min_registered})")
    if clean["stopped"] != "1":
        errors.append("clean run found no constraint — the knee must be detectable")
    if faulted["stopped"] != clean["stopped"]:
        errors.append(f"verdicts differ: clean stopped={clean['stopped']}, "
                      f"faulted stopped={faulted['stopped']}")
    if faulted["reason"] != clean["reason"]:
        errors.append(f"end reasons differ: clean {clean['reason']}, "
                      f"faulted {faulted['reason']}")
    crowd_delta = abs(int(faulted["crowd"]) - int(clean["crowd"]))
    if crowd_delta > args.crowd_step:
        errors.append(
            f"stopping crowd sizes diverge: clean {clean['crowd']}, faulted "
            f"{faulted['crowd']} (allowed drift: one step = {args.crowd_step})")

    if errors:
        print("check_fleet_soak: FAIL")
        for error in errors:
            print(f"  - {error}")
        sys.exit(1)
    print(f"check_fleet_soak: OK — {args.fleet} agents under drop={args.drop} "
          f"connect-fail={args.connect_fail} reached the clean verdict "
          f"(crowd {faulted['crowd']} vs {clean['crowd']})")


if __name__ == "__main__":
    main()
