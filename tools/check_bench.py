#!/usr/bin/env python3
"""Validates BENCH_*.json perf records against the DESIGN.md §10 schema.

Usage:
    check_bench.py FILE [FILE ...]      # validate specific records
    check_bench.py --glob DIR           # validate every BENCH_*.json under DIR

Checks structure (required keys, types), metadata sanity (non-empty commit,
jobs >= 1), and internal consistency: p50 <= p99, items > 0, items_per_sec
matching items / wall_seconds_p50, headline pointing at the first scenario,
and every extra counter being a non-negative finite number. Exits non-zero
with a per-file report on any violation, so ctest can gate on it.
"""

import argparse
import glob
import json
import math
import os
import sys

UNITS = {"events", "sites", "ops"}


def fail(errors, path, msg):
    errors.append(f"{path}: {msg}")


def check_scenario(errors, path, s, index):
    where = f"scenarios[{index}]"
    for key in ("name", "items_unit", "items", "repeats", "wall_seconds_p50",
                "wall_seconds_p99", "items_per_sec"):
        if key not in s:
            fail(errors, path, f"{where} missing key '{key}'")
            return
    if not isinstance(s["name"], str) or not s["name"]:
        fail(errors, path, f"{where} has empty name")
    if s["items_unit"] not in UNITS:
        fail(errors, path, f"{where} items_unit '{s['items_unit']}' not in {sorted(UNITS)}")
    if not isinstance(s["items"], int) or s["items"] <= 0:
        fail(errors, path, f"{where} items must be a positive integer, got {s['items']!r}")
        return
    if not isinstance(s["repeats"], int) or s["repeats"] < 1:
        fail(errors, path, f"{where} repeats must be >= 1, got {s['repeats']!r}")
    p50, p99 = s["wall_seconds_p50"], s["wall_seconds_p99"]
    for key, value in (("wall_seconds_p50", p50), ("wall_seconds_p99", p99)):
        if not isinstance(value, (int, float)) or not math.isfinite(value) or value <= 0:
            fail(errors, path, f"{where} {key} must be a positive finite number, got {value!r}")
            return
    if p50 > p99:
        fail(errors, path, f"{where} wall_seconds_p50 ({p50}) > wall_seconds_p99 ({p99})")
    ips = s["items_per_sec"]
    expect = s["items"] / p50
    # items_per_sec is derived from items/p50; emitted with %.3f so allow the
    # rounding, plus a little slack for float formatting of p50 itself.
    if not math.isclose(ips, expect, rel_tol=1e-3, abs_tol=0.002):
        fail(errors, path, f"{where} items_per_sec {ips} != items/p50 {expect:.3f}")
    for key, value in s.items():
        if key in ("name", "items_unit"):
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            fail(errors, path, f"{where} field '{key}' must be numeric, got {value!r}")
        elif not math.isfinite(value) or value < 0:
            fail(errors, path, f"{where} field '{key}' must be finite and >= 0, got {value!r}")


def check_record(errors, path, record):
    for key in ("bench", "schema", "commit", "flags", "jobs", "headline", "scenarios"):
        if key not in record:
            fail(errors, path, f"missing top-level key '{key}'")
            return
    if record["schema"] != 1:
        fail(errors, path, f"unknown schema version {record['schema']!r} (expected 1)")
    for key in ("bench", "commit", "flags"):
        if not isinstance(record[key], str) or not record[key]:
            fail(errors, path, f"'{key}' must be a non-empty string, got {record[key]!r}")
    if not isinstance(record["jobs"], int) or record["jobs"] < 1:
        fail(errors, path, f"'jobs' must be an integer >= 1, got {record['jobs']!r}")
    scenarios = record["scenarios"]
    if not isinstance(scenarios, list) or not scenarios:
        fail(errors, path, "'scenarios' must be a non-empty list")
        return
    for i, s in enumerate(scenarios):
        check_scenario(errors, path, s, i)
    headline = record["headline"]
    if not isinstance(headline, dict) or "name" not in headline or "items_per_sec" not in headline:
        fail(errors, path, "'headline' must be {name, items_per_sec}")
    elif scenarios and isinstance(scenarios[0], dict):
        if headline.get("name") != scenarios[0].get("name"):
            fail(errors, path,
                 f"headline '{headline.get('name')}' is not the first scenario "
                 f"'{scenarios[0].get('name')}'")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="BENCH_*.json records to validate")
    parser.add_argument("--glob", metavar="DIR",
                        help="also validate every BENCH_*.json under DIR")
    args = parser.parse_args()

    files = list(args.files)
    if args.glob:
        found = sorted(glob.glob(os.path.join(args.glob, "**", "BENCH_*.json"),
                                 recursive=True))
        if not found:
            print(f"check_bench: no BENCH_*.json under {args.glob}", file=sys.stderr)
            return 1
        files.extend(found)
    if not files:
        parser.error("no files given (pass records or --glob DIR)")

    errors = []
    for path in files:
        try:
            with open(path, encoding="utf-8") as f:
                record = json.load(f)
        except OSError as e:
            fail(errors, path, f"cannot read: {e}")
            continue
        except json.JSONDecodeError as e:
            fail(errors, path, f"invalid JSON: {e}")
            continue
        check_record(errors, path, record)

    if errors:
        for error in errors:
            print(f"check_bench: {error}", file=sys.stderr)
        print(f"check_bench: FAIL ({len(errors)} error(s) across {len(files)} file(s))",
              file=sys.stderr)
        return 1
    print(f"check_bench: OK ({len(files)} record(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
