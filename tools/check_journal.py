#!/usr/bin/env python3
"""Validate a write-ahead experiment journal emitted by the MFC tools.

Checks (stdlib only, no third-party deps):
  * every line is a well-formed frame {"crc":"<16 hex>","body":{...}} whose
    checksum equals FNV-1a 64 of the exact body bytes;
  * the first record is a header with magic "mfc-journal" and version 1;
  * cohort records carry strictly sequential ordinals;
  * site records are consistent with their cohort declaration (index within
    the server count and this journal's shard, seed derived per the cohort's
    seed mode — SplitMix64(seed, cohort, index) by default, seed * 1000 +
    index under legacy_seeds — pid == pid_base + index, matching stage) and
    never duplicated;
  * quarantine records (appended by the survey supervisor, DESIGN.md §14)
    name a site of their shard, carry crashes >= 1 and a signature, and
    never collide with a site record or another quarantine;
  * every site record embeds a structurally complete ExperimentResult.

A journal whose last cohort has no site or quarantine records yet is valid
but flagged "resumable, zero progress" (a worker died between BeginCohort
and its first site) naming the shard index.

Usage:
  check_journal.py <journal.jsonl>
  check_journal.py --profile-bin <mfc_profile> [--workdir <dir>]

The second form runs a small fixed-seed journaled survey through
mfc_profile, validates the journal, resumes it (complete, after a simulated
torn tail write, after a mid-journal checksum bit flip, and with a
quarantine record present) and requires byte-identical trace/metrics
outputs, and finally checks that config mismatches and a missing --resume
are hard errors (exit 3 — see the README exit-code table). Exit status
0 = valid, 1 = validation failure, 2 = usage/setup error.
"""

import json
import os
import subprocess
import sys
import tempfile

FRAME_PREFIX = b'{"crc":"'
FRAME_MID = b'","body":'


def fail(msg):
    print("check_journal: FAIL: %s" % msg, file=sys.stderr)
    return 1


def fnv1a64(data):
    h = 0xCBF29CE484222325
    for b in data:
        h ^= b
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


MASK64 = 0xFFFFFFFFFFFFFFFF
# Domain constants from src/core/population.cc ("mfc-expr" as bytes).
EXPERIMENT_DOMAIN = 0x6D66632D65787072


def splitmix64(x):
    """The SplitMix64 finalizer, mirroring mfc::SplitMix64."""
    x = (x + 0x9E3779B97F4A7C15) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)


def site_experiment_seed(survey_seed, cohort, index):
    h = splitmix64(survey_seed ^ EXPERIMENT_DOMAIN)
    h = splitmix64(h ^ cohort)
    return splitmix64(h ^ index)


def cohort_seed_layout(cohort):
    """(shards, shard_index, legacy_seeds) of a cohort record; pre-PR-8
    records carry no shard keys and decode as an unsharded legacy run."""
    if "shards" in cohort:
        return cohort["shards"], cohort["shard_index"], cohort["legacy_seeds"]
    return 1, 0, True


def expected_site_seed(cohort, index):
    _, _, legacy = cohort_seed_layout(cohort)
    if legacy:
        return cohort["seed"] * 1000 + index
    return site_experiment_seed(cohort["seed"], cohort["cohort"], index)


def parse_records(path):
    """Returns (records, error): the decoded bodies, or an error string."""
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as exc:
        return None, "%s: %s" % (path, exc)
    if not data:
        return None, "%s: empty journal" % path
    if not data.endswith(b"\n"):
        return None, "%s: missing trailing newline (torn final write?)" % path
    records = []
    for i, line in enumerate(data.split(b"\n")[:-1]):
        if (
            not line.startswith(FRAME_PREFIX)
            or line[24:33] != FRAME_MID
            or not line.endswith(b"}")
        ):
            return None, "record %d: malformed frame" % i
        crc = line[8:24].decode("ascii", errors="replace")
        body = line[33:-1]
        if "%016x" % fnv1a64(body) != crc:
            return None, "record %d: checksum mismatch" % i
        try:
            records.append(json.loads(body))
        except ValueError as exc:
            return None, "record %d: body is not valid JSON: %s" % (i, exc)
    return records, None


def check_result(result, where):
    if not isinstance(result, dict):
        return "%s: result is not an object" % where
    for key in ("aborted", "registered_clients", "stages"):
        if key not in result:
            return "%s: result missing %r" % (where, key)
    if not isinstance(result["stages"], list):
        return "%s: result stages is not a list" % where
    for s, stage in enumerate(result["stages"]):
        for key in ("kind", "stopped", "max_tested", "end_reason", "epochs"):
            if key not in stage:
                return "%s: stage %d missing %r" % (where, s, key)
    return None


def check_journal(path):
    records, error = parse_records(path)
    if error is not None:
        return fail(error)

    header = records[0]
    if header.get("type") != "header":
        return fail("record 0 is %r, expected the header" % header.get("type"))
    if header.get("magic") != "mfc-journal":
        return fail("bad magic %r" % header.get("magic"))
    if header.get("version") != 1:
        return fail("unsupported version %r" % header.get("version"))
    for key in ("tool", "fingerprint"):
        if not isinstance(header.get(key), str) or not header[key]:
            return fail("header missing %s" % key)

    cohorts = []
    sites = set()
    quarantines = set()
    for i, rec in enumerate(records[1:], start=1):
        rtype = rec.get("type")
        if rtype == "header":
            return fail("record %d: duplicate header" % i)
        if rtype == "cohort":
            if rec.get("ordinal") != len(cohorts):
                return fail(
                    "record %d: cohort ordinal %r, expected %d"
                    % (i, rec.get("ordinal"), len(cohorts))
                )
            for key in ("cohort", "stage", "servers", "max_crowd", "seed", "pid_base"):
                if key not in rec:
                    return fail("record %d: cohort record missing %r" % (i, key))
            cohorts.append(rec)
        elif rtype == "site":
            for key in ("cohort", "index", "seed", "stage", "pid", "result"):
                if key not in rec:
                    return fail("record %d: site record missing %r" % (i, key))
            ordinal, index = rec["cohort"], rec["index"]
            if ordinal < len(cohorts):
                cohort = cohorts[ordinal]
                if index >= cohort["servers"]:
                    return fail(
                        "record %d: site index %d >= cohort servers %d"
                        % (i, index, cohort["servers"])
                    )
                shards, shard_index, _ = cohort_seed_layout(cohort)
                if index % shards != shard_index:
                    return fail(
                        "record %d: site index %d not in shard %d/%d"
                        % (i, index, shard_index, shards)
                    )
                if rec["seed"] != expected_site_seed(cohort, index):
                    return fail("record %d: site seed inconsistent with cohort" % i)
                if rec["pid"] != cohort["pid_base"] + index:
                    return fail("record %d: site pid inconsistent with cohort" % i)
                if rec["stage"] != cohort["stage"]:
                    return fail("record %d: site stage inconsistent with cohort" % i)
            if (ordinal, index) in sites:
                return fail("record %d: duplicate site (%d, %d)" % (i, ordinal, index))
            if (ordinal, index) in quarantines:
                return fail(
                    "record %d: site record for quarantined site (%d, %d)"
                    % (i, ordinal, index)
                )
            sites.add((ordinal, index))
            error = check_result(rec["result"], "record %d" % i)
            if error is not None:
                return fail(error)
        elif rtype == "quarantine":
            for key in ("cohort", "index", "crashes", "signature"):
                if key not in rec:
                    return fail("record %d: quarantine record missing %r" % (i, key))
            ordinal, index = rec["cohort"], rec["index"]
            if not isinstance(rec["crashes"], int) or rec["crashes"] < 1:
                return fail("record %d: quarantine crashes %r < 1" % (i, rec["crashes"]))
            if ordinal < len(cohorts):
                cohort = cohorts[ordinal]
                if index >= cohort["servers"]:
                    return fail(
                        "record %d: quarantine index %d >= cohort servers %d"
                        % (i, index, cohort["servers"])
                    )
                shards, shard_index, _ = cohort_seed_layout(cohort)
                if index % shards != shard_index:
                    return fail(
                        "record %d: quarantine index %d not in shard %d/%d"
                        % (i, index, shard_index, shards)
                    )
            if (ordinal, index) in sites:
                return fail(
                    "record %d: quarantine for executed site (%d, %d)"
                    % (i, ordinal, index)
                )
            if (ordinal, index) in quarantines:
                return fail(
                    "record %d: duplicate quarantine (%d, %d)" % (i, ordinal, index)
                )
            quarantines.add((ordinal, index))
        else:
            return fail("record %d: unknown type %r" % (i, rtype))

    if cohorts:
        last = len(cohorts) - 1
        progressed = any(ordinal == last for ordinal, _ in sites | quarantines)
        if not progressed:
            shards, shard_index, _ = cohort_seed_layout(cohorts[last])
            print(
                "check_journal: NOTE: shard %d/%d is resumable, zero progress on "
                "cohort %d (BeginCohort written, no site records yet)"
                % (shard_index, shards, last)
            )
    print(
        "check_journal: OK: %d record(s): header + %d cohort(s) + %d site(s) + "
        "%d quarantine(s)"
        % (len(records), len(cohorts), len(sites), len(quarantines))
    )
    return 0


def run(cmd):
    return subprocess.run(cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def run_profile(profile_bin, workdir):
    journal = os.path.join(workdir, "journal.jsonl")

    def survey_cmd(seed, trace, metrics, resume):
        cmd = [
            profile_bin,
            "--cohort=startup",
            "--survey=4",
            "--seed=%d" % seed,
            "--max-crowd=20",
            "--jobs=2",
            "--quiet",
            "--journal=" + journal,
            "--trace=" + os.path.join(workdir, trace),
            "--metrics=" + os.path.join(workdir, metrics),
        ]
        if resume:
            cmd.append("--resume")
        return cmd

    def slurp(name):
        with open(os.path.join(workdir, name), "rb") as f:
            return f.read()

    # 1. A full journaled run must succeed and leave a valid journal.
    proc = run(survey_cmd(5, "t1.json", "m1.csv", resume=False))
    if proc.returncode != 0:
        print(proc.stderr.decode(errors="replace"), file=sys.stderr)
        print("check_journal: SETUP FAIL: journaled run exited %d" % proc.returncode,
              file=sys.stderr)
        return 2
    rc = check_journal(journal)
    if rc != 0:
        return rc

    # 2. Resuming the complete journal replays everything and reproduces the
    #    trace/metrics outputs byte for byte.
    proc = run(survey_cmd(5, "t2.json", "m2.csv", resume=True))
    if proc.returncode != 0:
        print(proc.stderr.decode(errors="replace"), file=sys.stderr)
        return fail("resume of a complete journal exited %d" % proc.returncode)
    if b"4 site(s) replayed, 0 executed" not in proc.stdout:
        return fail("complete-journal resume did not replay all 4 sites: %r" % proc.stdout)
    if slurp("t1.json") != slurp("t2.json"):
        return fail("trace differs after complete-journal resume")
    if slurp("m1.csv") != slurp("m2.csv"):
        return fail("metrics differ after complete-journal resume")
    print("check_journal: OK: complete-journal resume is byte-identical")

    # 3. Simulate a crash mid-append: chop the tail off the last record. The
    #    resume must warn, drop the torn record, re-execute that site, and
    #    still reproduce identical outputs.
    with open(journal, "rb") as f:
        contents = f.read()
    with open(journal, "wb") as f:
        f.write(contents[:-40])
    proc = run(survey_cmd(5, "t3.json", "m3.csv", resume=True))
    if proc.returncode != 0:
        print(proc.stderr.decode(errors="replace"), file=sys.stderr)
        return fail("resume of a torn journal exited %d" % proc.returncode)
    if b"journal warning" not in proc.stderr:
        return fail("torn-tail resume emitted no corruption warning")
    if b"3 site(s) replayed, 1 executed" not in proc.stdout:
        return fail("torn-tail resume had unexpected replay counts: %r" % proc.stdout)
    if slurp("t1.json") != slurp("t3.json"):
        return fail("trace differs after torn-tail resume")
    if slurp("m1.csv") != slurp("m3.csv"):
        return fail("metrics differ after torn-tail resume")
    rc = check_journal(journal)
    if rc != 0:
        return rc
    print("check_journal: OK: torn-tail resume recovered and is byte-identical")

    # 4. A different seed changes the config fingerprint: hard error, exit 3
    #    (journal error — see the README exit-code table).
    proc = run(survey_cmd(6, "t4.json", "m4.csv", resume=True))
    if proc.returncode != 3 or b"journal error" not in proc.stderr:
        return fail(
            "config-mismatch resume should exit 3 with a journal error, got %d: %r"
            % (proc.returncode, proc.stderr)
        )

    # 5. Reusing a populated journal without --resume: hard error, exit 3.
    proc = run(survey_cmd(5, "t5.json", "m5.csv", resume=False))
    if proc.returncode != 3 or b"--resume" not in proc.stderr:
        return fail(
            "populated journal without --resume should exit 3, got %d: %r"
            % (proc.returncode, proc.stderr)
        )
    print("check_journal: OK: config mismatch and missing --resume are hard errors")

    # 6. Bit-flipped checksum mid-journal: the checker must reject it, and a
    #    resume must warn, drop everything from the flipped record on,
    #    re-execute those sites, and still reproduce identical outputs.
    with open(journal, "rb") as f:
        lines = f.read().split(b"\n")
    flipped = bytearray(lines[2])  # first site record's frame
    flipped[9] = ord(b"0") if flipped[9] != ord(b"0") else ord(b"f")  # crc hex digit
    with open(journal, "wb") as f:
        f.write(b"\n".join(lines[:2] + [bytes(flipped)] + lines[3:]))
    if check_journal(journal) == 0:
        return fail("checker accepted a journal with a bit-flipped checksum")
    proc = run(survey_cmd(5, "t6.json", "m6.csv", resume=True))
    if proc.returncode != 0:
        print(proc.stderr.decode(errors="replace"), file=sys.stderr)
        return fail("resume of a bit-flipped journal exited %d" % proc.returncode)
    if b"journal warning" not in proc.stderr:
        return fail("bit-flip resume emitted no corruption warning")
    if slurp("t1.json") != slurp("t6.json"):
        return fail("trace differs after bit-flip resume")
    if slurp("m1.csv") != slurp("m6.csv"):
        return fail("metrics differ after bit-flip resume")
    rc = check_journal(journal)
    if rc != 0:
        return rc
    print("check_journal: OK: bit-flipped-checksum resume recovered, byte-identical")

    # 7. Quarantine round-trip: crash the worker on site 1 (jobs=1, so site 0
    #    is durable first), append a supervisor-style quarantine record, and
    #    resume: the run must skip site 1 and complete.
    q_journal = os.path.join(workdir, "quarantine.jsonl")

    def q_cmd(resume):
        return [
            profile_bin,
            "--cohort=startup",
            "--survey=4",
            "--seed=5",
            "--max-crowd=20",
            "--jobs=1",
            "--quiet",
            "--journal=" + q_journal,
        ] + (["--resume"] if resume else [])

    env = dict(os.environ, MFC_CRASH_SITE="1")
    proc = subprocess.run(q_cmd(resume=False), stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, env=env)
    if proc.returncode == 0:
        return fail("MFC_CRASH_SITE=1 run unexpectedly succeeded")
    record = json.dumps(
        {"type": "quarantine", "cohort": 0, "index": 1, "crashes": 3,
         "signature": "signal 6 (Aborted)"},
        separators=(",", ":")).encode()
    with open(q_journal, "ab") as f:
        f.write(b'{"crc":"%016x","body":%s}\n' % (fnv1a64(record), record))
    rc = check_journal(q_journal)
    if rc != 0:
        return rc
    proc = run(q_cmd(resume=True))
    if proc.returncode != 0:
        print(proc.stderr.decode(errors="replace"), file=sys.stderr)
        return fail("resume with a quarantined site exited %d" % proc.returncode)
    if b"1 site(s) replayed, 2 executed" not in proc.stdout:
        return fail("quarantine resume had unexpected replay counts: %r" % proc.stdout)
    print("check_journal: OK: quarantine record skips its site on resume")

    # 8. A duplicate quarantine record is corruption: the checker rejects it,
    #    and a resume drops it (plus anything after) with a warning.
    with open(q_journal, "ab") as f:
        f.write(b'{"crc":"%016x","body":%s}\n' % (fnv1a64(record), record))
    if check_journal(q_journal) == 0:
        return fail("checker accepted a duplicate quarantine record")
    proc = run(q_cmd(resume=True))
    if proc.returncode != 0 or b"journal warning" not in proc.stderr:
        return fail(
            "duplicate-quarantine resume should warn and recover, got %d: %r"
            % (proc.returncode, proc.stderr)
        )
    print("check_journal: OK: duplicate quarantine record is dropped corruption")
    return 0


def main(argv):
    if len(argv) >= 3 and argv[1] == "--profile-bin":
        profile_bin = argv[2]
        workdir = None
        if len(argv) >= 5 and argv[3] == "--workdir":
            workdir = argv[4]
        if workdir:
            os.makedirs(workdir, exist_ok=True)
            return run_profile(profile_bin, workdir)
        with tempfile.TemporaryDirectory() as tmp:
            return run_profile(profile_bin, tmp)
    if len(argv) == 2:
        return check_journal(argv[1])
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
