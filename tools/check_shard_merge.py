#!/usr/bin/env python3
"""Validate sharded surveys end-to-end against a single-process run.

Drives mfc_profile (stdlib only, no third-party deps) through:

  1. a reference unsharded survey with --json/--trace/--metrics/--journal;
  2. the same survey split --shards=2 and --shards=4 ways, with shard 0
     killed mid-run (simulated by truncating its journal tail) and resumed
     under a different --jobs count; the --merge of the shard journals must
     reproduce the reference report, trace and metrics BYTE FOR BYTE;
  3. seed validation: every journaled site seed must equal the SplitMix64
     derivation SiteExperimentSeed(seed, cohort, index) reimplemented here
     (the collision-free scheme that replaced seed * 1000 + index);
  4. merge of an incomplete shard: hard error naming --resume;
  5. a 100k-site --sample-only streaming pass over the long-tail cohort:
     must report materialized=0 (no instances vector) and a digest that is
     reproducible across invocations.

Usage:
  check_shard_merge.py --profile-bin <mfc_profile> [--workdir <dir>]

Exit status 0 = valid, 1 = validation failure, 2 = usage/setup error.
"""

import json
import os
import subprocess
import sys
import tempfile

SURVEY = ["--cohort=startup", "--survey=8", "--seed=5", "--max-crowd=20", "--quiet"]

MASK64 = 0xFFFFFFFFFFFFFFFF
EXPERIMENT_DOMAIN = 0x6D66632D65787072  # "mfc-expr", see src/core/population.cc


def splitmix64(x):
    x = (x + 0x9E3779B97F4A7C15) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)


def site_experiment_seed(survey_seed, cohort, index):
    h = splitmix64(survey_seed ^ EXPERIMENT_DOMAIN)
    h = splitmix64(h ^ cohort)
    return splitmix64(h ^ index)


def fail(msg):
    print("check_shard_merge: FAIL: %s" % msg, file=sys.stderr)
    return 1


def run(cmd):
    return subprocess.run(cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def slurp(path):
    with open(path, "rb") as f:
        return f.read()


def check_journal_seeds(path):
    """Every site record's seed must be the SplitMix64 derivation."""
    cohorts = {}
    with open(path, "rb") as f:
        for line in f.read().split(b"\n"):
            if not line:
                continue
            body = json.loads(line)["body"]
            if body.get("type") == "cohort":
                cohorts[body["ordinal"]] = body
            elif body.get("type") == "site":
                cohort = cohorts[body["cohort"]]
                if cohort.get("legacy_seeds", True):
                    return "cohort record unexpectedly in legacy-seed mode"
                expect = site_experiment_seed(
                    cohort["seed"], cohort["cohort"], body["index"]
                )
                if body["seed"] != expect:
                    return "site %d seed %d != SplitMix64 derivation %d" % (
                        body["index"],
                        body["seed"],
                        expect,
                    )
    return None


def run_checks(profile_bin, workdir):
    def path(name):
        return os.path.join(workdir, name)

    # 1. Reference single-process run.
    ref_journal = path("ref.jsonl")
    proc = run(
        [profile_bin, *SURVEY, "--jobs=2", "--journal=" + ref_journal]
        + ["--json=" + path(n) for n in ("ref.json",)]
        + ["--trace=" + path("ref.trace"), "--metrics=" + path("ref.csv")]
    )
    if proc.returncode != 0:
        print(proc.stderr.decode(errors="replace"), file=sys.stderr)
        print(
            "check_shard_merge: SETUP FAIL: reference run exited %d" % proc.returncode,
            file=sys.stderr,
        )
        return 2

    # Seeds in the reference journal follow the collision-free derivation.
    error = check_journal_seeds(ref_journal)
    if error is not None:
        return fail("reference journal: %s" % error)
    print("check_shard_merge: OK: journal seeds match the SplitMix64 derivation")

    # 2. Sharded runs, one shard killed + resumed, merged byte-identically.
    for shards in (2, 4):
        journals = []
        for shard in range(shards):
            journal = path("s%d_%d.jsonl" % (shards, shard))
            journals.append(journal)
            proc = run(
                [
                    profile_bin,
                    *SURVEY,
                    "--jobs=2",
                    "--shards=%d" % shards,
                    "--shard-index=%d" % shard,
                    "--journal=" + journal,
                    "--trace=" + path("s.trace"),
                    "--metrics=" + path("s.csv"),
                ]
            )
            if proc.returncode != 0:
                print(proc.stderr.decode(errors="replace"), file=sys.stderr)
                return fail("shard %d/%d exited %d" % (shard, shards, proc.returncode))
        # Kill shard 0 mid-run: chop its journal tail (every append was
        # fsynced, so this is exactly the post-crash on-disk state), then
        # resume with a different jobs count.
        contents = slurp(journals[0])
        with open(journals[0], "wb") as f:
            f.write(contents[:-40])
        proc = run(
            [
                profile_bin,
                *SURVEY,
                "--jobs=1",
                "--shards=%d" % shards,
                "--shard-index=0",
                "--journal=" + journals[0],
                "--resume",
                "--trace=" + path("s.trace"),
                "--metrics=" + path("s.csv"),
            ]
        )
        if proc.returncode != 0:
            print(proc.stderr.decode(errors="replace"), file=sys.stderr)
            return fail("killed shard 0/%d did not resume cleanly" % shards)
        if b"journal warning" not in proc.stderr:
            return fail("killed shard 0/%d resumed without a corruption warning" % shards)

        merged = ("m%d.json" % shards, "m%d.trace" % shards, "m%d.csv" % shards)
        proc = run(
            [
                profile_bin,
                "--merge=" + ",".join(journals),
                "--json=" + path(merged[0]),
                "--trace=" + path(merged[1]),
                "--metrics=" + path(merged[2]),
            ]
        )
        if proc.returncode != 0:
            print(proc.stderr.decode(errors="replace"), file=sys.stderr)
            return fail("merge of %d shards exited %d" % (shards, proc.returncode))
        for ref, out in zip(("ref.json", "ref.trace", "ref.csv"), merged):
            if slurp(path(ref)) != slurp(path(out)):
                return fail(
                    "%d-shard merge: %s differs from the single-process %s" % (shards, out, ref)
                )
        print(
            "check_shard_merge: OK: %d-shard merge (with a killed + resumed shard) is "
            "byte-identical" % shards
        )

    # 3. Merging an incomplete shard is a hard error (exit 3, see the README
    #    exit-code table) with a resume hint naming the shard.
    contents = slurp(journals[1])
    cut = contents.rstrip(b"\n").rfind(b"\n")
    with open(journals[1], "wb") as f:
        f.write(contents[: cut + 1])
    proc = run([profile_bin, "--merge=" + ",".join(journals), "--json=" + path("bad.json")])
    if (
        proc.returncode != 3
        or b"missing site" not in proc.stderr
        or b"--resume" not in proc.stderr
    ):
        return fail(
            "incomplete-shard merge should exit 3 with a resume hint, got %d: %r"
            % (proc.returncode, proc.stderr)
        )
    print("check_shard_merge: OK: incomplete-shard merge is a hard error")

    # 3b. A shard that died between BeginCohort and its first site record is
    #     classified "resumable, zero progress" naming the shard, not
    #     rejected ambiguously.
    lines = contents.split(b"\n")
    with open(journals[1], "wb") as f:
        f.write(b"\n".join(lines[:2]) + b"\n")  # header + cohort record only
    proc = run([profile_bin, "--merge=" + ",".join(journals), "--json=" + path("bad.json")])
    if (
        proc.returncode != 3
        or b"zero progress" not in proc.stderr
        or b"--resume" not in proc.stderr
    ):
        return fail(
            "zero-progress shard merge should exit 3 and classify the shard, got %d: %r"
            % (proc.returncode, proc.stderr)
        )
    print("check_shard_merge: OK: zero-progress shard is classified resumable")

    # 4. Streaming sampling holds no instances at 100k sites and is
    # reproducible.
    digests = []
    for _ in range(2):
        proc = run(
            [profile_bin, "--cohort=longtail", "--survey=100000", "--seed=9", "--sample-only"]
        )
        if proc.returncode != 0:
            print(proc.stderr.decode(errors="replace"), file=sys.stderr)
            return fail("100k-site --sample-only exited %d" % proc.returncode)
        out = proc.stdout.decode(errors="replace")
        if "materialized=0" not in out:
            return fail("streaming sample materialized instances: %r" % out)
        digests.append(out)
    if digests[0] != digests[1]:
        return fail("streaming sample digest is not reproducible: %r vs %r" % tuple(digests))
    print("check_shard_merge: OK: 100k-site streaming sample, materialized=0, stable digest")
    return 0


def main(argv):
    if len(argv) >= 3 and argv[1] == "--profile-bin":
        profile_bin = argv[2]
        workdir = None
        if len(argv) >= 5 and argv[3] == "--workdir":
            workdir = argv[4]
        if workdir:
            os.makedirs(workdir, exist_ok=True)
            return run_checks(profile_bin, workdir)
        with tempfile.TemporaryDirectory() as tmp:
            return run_checks(profile_bin, tmp)
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
