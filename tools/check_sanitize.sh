#!/usr/bin/env bash
# Builds the AddressSanitizer and ThreadSanitizer presets and runs the
# runtime (rt) and robustness test subset under each — the tests that
# exercise real sockets, reactor timers, fault injection, and the lifetime
# paths the control-plane hardening touches. Intended as a pre-merge gate:
#
#   tools/check_sanitize.sh            # both sanitizers
#   tools/check_sanitize.sh asan       # one of them
#
# Exits non-zero if any configure, build, or test step fails.
set -euo pipefail

cd "$(dirname "$0")/.."

# Reactor polls and socket waits make these tests timing-sensitive; the
# sanitizer slowdown is real, so give ctest headroom instead of flaking.
FILTER='Fault|LiveHttp|LiveFleet|Reactor|UdpSocket|Tcp|Wire|ClientAgent|Session|Transport|WireCodec|MemoryHub|Robustness|FlowNetwork|IndexedHeap|EventLoop|Snapshot|StatsStream|SimStatsSampler|ParallelProgress|MetricsDelta|BuildSurveyProgress|RunningStats|Histogram|Supervisor|WorkerExit|QuarantineTracker|NextPendingSite'
TIMEOUT=600
# Only the binaries the filter can hit — building every bench/example under
# two sanitizers would dominate the wall clock for no extra coverage.
# (Undiscovered sibling test binaries surface as *_NOT_BUILT placeholders,
# which the filter never matches.)
# mfc_net_tests/mfc_sim_tests cover the incremental flow allocator and its
# slot/generation handle reuse — exactly the pointer-lifetime surface the
# hot-path rework touches, including the 10k-op differential test.
# mfc_telemetry_tests covers the health-plane snapshot/stream machinery —
# its background writer thread and the shared progress cells the survey
# workers update are precisely what TSan should see.
# mfc_supervisor_tests forks real workers and exercises the hang-kill and
# drain paths — the fork/exec/waitpid lifetime surface ASan should see.
TARGETS=(mfc_rt_tests mfc_core_tests mfc_net_tests mfc_sim_tests mfc_telemetry_tests mfc_supervisor_tests)

run_one() {
  local preset="$1"
  echo "=== [${preset}] configure ==="
  cmake --preset "${preset}" >/dev/null
  echo "=== [${preset}] build (${TARGETS[*]}) ==="
  cmake --build --preset "${preset}" -j --target "${TARGETS[@]}" >/dev/null
  echo "=== [${preset}] test (-R '${FILTER}') ==="
  # Reactor tests race real deadlines; oversubscribing cores under a
  # sanitizer's slowdown turns those deadlines into flakes, so parallelism
  # follows the core count instead of a fixed fan-out.
  ctest --preset "${preset}" -R "${FILTER}" --timeout "${TIMEOUT}" -j "$(nproc)"
  if [ "${preset}" = "asan" ]; then
    # The journal's signal/drain/fsync path only shows its lifetime bugs
    # under a real SIGINT; run the kill/resume harness against the ASan
    # bench so leaks or use-after-free in the drain path fail the gate.
    echo "=== [${preset}] kill/resume harness ==="
    cmake --build --preset "${preset}" -j --target fig7_survey_base >/dev/null
    tools/check_resume.sh "build-asan/bench/fig7_survey_base"
  fi
}

presets=("${@}")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(asan tsan)
fi

for preset in "${presets[@]}"; do
  case "${preset}" in
    asan|tsan) run_one "${preset}" ;;
    *) echo "unknown preset '${preset}' (expected: asan tsan)" >&2; exit 2 ;;
  esac
done

echo "sanitizer runs clean: ${presets[*]}"
