#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json records (DESIGN.md §10/§11).

Usage:
    check_perf_regression.py --baseline-dir DIR FRESH [FRESH ...]
        # each FRESH BENCH_x.json compares against DIR/BENCH_x.json
    check_perf_regression.py --baseline OLD --fresh NEW
        # one explicit pair
    check_perf_regression.py --baseline-dir DIR --against-seed
        # trajectory check: DIR/BENCH_x.json vs DIR/BENCH_x.seed.json
    check_perf_regression.py --self-test --baseline-dir DIR
        # sanity: a synthetically degraded copy of a baseline MUST fail

For every scenario present in both records it prints a delta table
(baseline vs fresh items_per_sec). The gate FAILS only when a *headline*
scenario's throughput drops by more than --threshold (default 15%):
non-headline scenarios are reported informationally, because trajectory
baselines legitimately trade micro-scenario speed for algorithmic wins
(see bench/baselines/). Scenarios whose 'items' differ are skipped, not
failed — ctest smoke runs emit records at --scale=0.1 / --sites=4, and a
throughput ratio across different workload sizes is meaningless.
"""

import argparse
import copy
import json
import os
import sys

DEFAULT_THRESHOLD = 0.15


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def scenario_map(record):
    return {s["name"]: s for s in record.get("scenarios", []) if isinstance(s, dict)}


def compare(baseline, fresh, baseline_name, fresh_name, threshold):
    """Returns (rows, failures). Each row is a printable delta entry."""
    rows = []
    failures = []
    headline = fresh.get("headline", {}).get("name")
    base_scenarios = scenario_map(baseline)
    for s in fresh.get("scenarios", []):
        name = s.get("name")
        base = base_scenarios.get(name)
        tag = "headline" if name == headline else ""
        if base is None:
            rows.append((name, tag, None, s.get("items_per_sec"), None,
                         "SKIP (no baseline scenario)"))
            continue
        if base.get("items") != s.get("items"):
            rows.append((name, tag, base.get("items_per_sec"), s.get("items_per_sec"), None,
                         f"SKIP (items {base.get('items')} vs {s.get('items')})"))
            continue
        old_ips, new_ips = base.get("items_per_sec"), s.get("items_per_sec")
        if not old_ips or not new_ips:
            rows.append((name, tag, old_ips, new_ips, None, "SKIP (missing items_per_sec)"))
            continue
        delta = (new_ips - old_ips) / old_ips
        if name == headline and delta < -threshold:
            status = f"FAIL (> {threshold:.0%} regression)"
            failures.append(
                f"{fresh_name}: headline '{name}' regressed {-delta:.1%} "
                f"({old_ips:,.0f} -> {new_ips:,.0f} items/sec) vs {baseline_name}")
        elif delta < -threshold:
            status = "regressed (non-headline, informational)"
        else:
            status = "OK"
        rows.append((name, tag, old_ips, new_ips, delta, status))
    return rows, failures


def print_table(title, rows):
    print(f"\n{title}")
    print(f"  {'scenario':<24} {'':<9} {'baseline/s':>14} {'fresh/s':>14} {'delta':>8}  status")
    for name, tag, old_ips, new_ips, delta, status in rows:
        old_s = f"{old_ips:,.0f}" if isinstance(old_ips, (int, float)) else "-"
        new_s = f"{new_ips:,.0f}" if isinstance(new_ips, (int, float)) else "-"
        delta_s = f"{delta:+.1%}" if delta is not None else "-"
        print(f"  {name:<24} {tag:<9} {old_s:>14} {new_s:>14} {delta_s:>8}  {status}")


def run_pairs(pairs, threshold):
    failures = []
    compared = 0
    for baseline_path, fresh_path in pairs:
        try:
            baseline = load(baseline_path)
            fresh = load(fresh_path)
        except (OSError, json.JSONDecodeError) as e:
            failures.append(f"{fresh_path}: cannot compare: {e}")
            continue
        rows, fails = compare(baseline, fresh, baseline_path, fresh_path, threshold)
        print_table(f"{os.path.basename(fresh_path)} vs {os.path.basename(baseline_path)}", rows)
        failures.extend(fails)
        compared += 1
    return compared, failures


def self_test(baseline_dir, threshold):
    """The gate must flag a record whose headline throughput halved."""
    candidates = sorted(
        f for f in os.listdir(baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json") and not f.endswith(".seed.json"))
    if not candidates:
        print(f"check_perf_regression: self-test found no baselines in {baseline_dir}",
              file=sys.stderr)
        return 1
    path = os.path.join(baseline_dir, candidates[0])
    baseline = load(path)
    degraded = copy.deepcopy(baseline)
    headline = degraded["headline"]["name"]
    for s in degraded["scenarios"]:
        if s["name"] == headline:
            s["items_per_sec"] *= 0.5
            s["wall_seconds_p50"] *= 2
            s["wall_seconds_p99"] *= 2
    degraded["headline"]["items_per_sec"] *= 0.5
    rows, failures = compare(baseline, degraded, path, "<degraded copy>", threshold)
    print_table(f"self-test: synthetically degraded {os.path.basename(path)}", rows)
    if not failures:
        print("check_perf_regression: SELF-TEST FAIL — a 50% headline regression "
              "was not flagged", file=sys.stderr)
        return 1
    print(f"\ncheck_perf_regression: self-test OK (degraded headline was flagged: "
          f"{failures[0]})")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh_files", nargs="*",
                        help="fresh BENCH_*.json records (with --baseline-dir)")
    parser.add_argument("--baseline-dir", metavar="DIR",
                        help="directory of baseline BENCH_*.json records")
    parser.add_argument("--baseline", metavar="FILE", help="explicit baseline record")
    parser.add_argument("--fresh", metavar="FILE", help="explicit fresh record")
    parser.add_argument("--against-seed", action="store_true",
                        help="compare DIR/BENCH_x.json against DIR/BENCH_x.seed.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="max allowed fractional headline regression (default 0.15)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate fails on a synthetic degradation")
    args = parser.parse_args()

    if args.self_test:
        if not args.baseline_dir:
            parser.error("--self-test requires --baseline-dir")
        return self_test(args.baseline_dir, args.threshold)

    pairs = []
    if args.baseline and args.fresh:
        pairs.append((args.baseline, args.fresh))
    if args.against_seed:
        if not args.baseline_dir:
            parser.error("--against-seed requires --baseline-dir")
        for name in sorted(os.listdir(args.baseline_dir)):
            if not (name.startswith("BENCH_") and name.endswith(".json")):
                continue
            if name.endswith(".seed.json"):
                continue
            seed = os.path.join(args.baseline_dir, name[:-len(".json")] + ".seed.json")
            if os.path.exists(seed):
                pairs.append((seed, os.path.join(args.baseline_dir, name)))
    for fresh_path in args.fresh_files:
        if not args.baseline_dir:
            parser.error("fresh files require --baseline-dir")
        baseline_path = os.path.join(args.baseline_dir, os.path.basename(fresh_path))
        if not os.path.exists(baseline_path):
            print(f"check_perf_regression: no baseline for {fresh_path}, skipping",
                  file=sys.stderr)
            continue
        pairs.append((baseline_path, fresh_path))
    if not pairs:
        parser.error("nothing to compare (see usage)")

    compared, failures = run_pairs(pairs, args.threshold)
    if failures:
        print()
        for failure in failures:
            print(f"check_perf_regression: {failure}", file=sys.stderr)
        print(f"check_perf_regression: FAIL ({len(failures)} headline regression(s) "
              f"across {compared} record(s))", file=sys.stderr)
        return 1
    print(f"\ncheck_perf_regression: OK ({compared} record(s), headline threshold "
          f"{args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
