#!/usr/bin/env bash
# Kill/resume determinism harness for the write-ahead experiment journal.
#
# Runs a journaled survey bench, kills it mid-flight (SIGINT, i.e. the
# graceful-drain path), resumes with a different --jobs count, and requires
# the resumed outputs to be byte-identical to an uninterrupted baseline:
# --trace and --metrics files compared with cmp, the --json record compared
# after stripping the volatile audit fields (wall_seconds, jobs,
# resumed_sites, executed_sites, interrupted, resume_hint). Covers an
# immediate kill (nothing journaled yet), a mid-run kill, and a kill that
# may land after completion — every kill point must resume to the same
# bytes.
#
#   tools/check_resume.sh [path/to/survey/bench]
#
# Default bench: build/bench/fig7_survey_base. Exits non-zero on the first
# mismatch. check_sanitize.sh runs this against the ASan build so the
# signal/drain/fsync path is exercised under the sanitizer.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN="${1:-build/bench/fig7_survey_base}"
if [ ! -x "${BIN}" ]; then
  echo "check_resume: bench binary '${BIN}' not found (build it first)" >&2
  exit 2
fi

SERVERS=12
WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

# The volatile fields: timing, worker fan-out, and the journal audit block —
# everything else in the --json record must be bit-identical.
strip_volatile() {
  grep -v -E '"(wall_seconds|jobs|resumed_sites|executed_sites|interrupted|resume_hint)"' "$1"
}

echo "=== baseline (uninterrupted, --jobs=3) ==="
"${BIN}" "${SERVERS}" --jobs=3 \
  --json="${WORK}/base.json" --trace="${WORK}/base.trace" \
  --metrics="${WORK}/base.csv" >/dev/null

kill_resume_case() {
  local delay="$1" resume_jobs="$2" tag="$3"
  echo "=== kill after ${delay}s, resume with --jobs=${resume_jobs} ==="
  local journal="${WORK}/journal.${tag}"
  rm -f "${journal}"

  "${BIN}" "${SERVERS}" --jobs=2 --journal="${journal}" \
    --json="${WORK}/${tag}.part.json" --trace="${WORK}/${tag}.part.trace" \
    --metrics="${WORK}/${tag}.part.csv" >/dev/null 2>"${WORK}/${tag}.part.err" &
  local pid=$!
  sleep "${delay}"
  kill -INT "${pid}" 2>/dev/null || true
  local rc=0
  wait "${pid}" || rc=$?
  # 130 = drained after the signal; 0 = the run beat the signal. Both are
  # legitimate kill points — the resume below must converge either way.
  if [ "${rc}" -ne 130 ] && [ "${rc}" -ne 0 ]; then
    echo "check_resume: FAIL(${tag}): interrupted run exited ${rc}" >&2
    cat "${WORK}/${tag}.part.err" >&2
    exit 1
  fi
  if [ "${rc}" -eq 130 ]; then
    grep -q '"interrupted": true' "${WORK}/${tag}.part.json" || {
      echo "check_resume: FAIL(${tag}): partial --json not marked interrupted" >&2
      exit 1
    }
    grep -q -- '--resume' "${WORK}/${tag}.part.err" || {
      echo "check_resume: FAIL(${tag}): no resume hint on stderr" >&2
      exit 1
    }
  fi

  "${BIN}" "${SERVERS}" --jobs="${resume_jobs}" --journal="${journal}" --resume \
    --json="${WORK}/${tag}.json" --trace="${WORK}/${tag}.trace" \
    --metrics="${WORK}/${tag}.csv" >/dev/null

  cmp "${WORK}/base.trace" "${WORK}/${tag}.trace" || {
    echo "check_resume: FAIL(${tag}): trace differs from baseline" >&2
    exit 1
  }
  cmp "${WORK}/base.csv" "${WORK}/${tag}.csv" || {
    echo "check_resume: FAIL(${tag}): metrics differ from baseline" >&2
    exit 1
  }
  if ! diff <(strip_volatile "${WORK}/base.json") <(strip_volatile "${WORK}/${tag}.json"); then
    echo "check_resume: FAIL(${tag}): json differs from baseline" >&2
    exit 1
  fi
  echo "check_resume: OK(${tag}): rc=${rc}, outputs byte-identical after resume"
}

kill_resume_case 0    5 k0   # kill before anything is journaled
kill_resume_case 0.2  5 k1   # mid-run kill, resume wider
kill_resume_case 0.6  1 k2   # late kill (may finish first), resume sequential

echo "check_resume: all kill/resume cases byte-identical"
