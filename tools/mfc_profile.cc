// mfc_profile — command-line driver for simulated MFC experiments.
//
// Profile a named deployment (the paper's case-study profiles) or a site
// sampled from a survey cohort, with the experiment knobs exposed as flags:
//
//   mfc_profile --profile=qtnp --theta-ms=100 --max-crowd=55
//   mfc_profile --cohort=startup --seed=9 --stages=base,query
//   mfc_profile --profile=univ3 --background-rps=20 --mr=2 --theta-ms=250
//   mfc_profile --cohort=rank3 --stagger-ms=20 --report
//   mfc_profile --cohort=rank4 --survey=100 --jobs=8
//
// Prints per-epoch progress and the operator inference report; --survey=N
// instead profiles N sites sampled from the cohort in parallel and prints
// the stopping-crowd-size breakdown.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/core/arg_parse.h"
#include "src/core/experiment_runner.h"
#include "src/core/export.h"
#include "src/core/inference.h"
#include "src/core/journal/journal.h"
#include "src/core/journal/shutdown.h"
#include "src/core/parallel_runner.h"
#include "src/core/shard_merge.h"
#include "src/core/supervisor.h"
#include "src/core/survey.h"
#include "src/telemetry/stats_stream.h"

namespace mfc {
namespace {

// Exit codes (see the README table): 0 success; 1 experiment aborted;
// 2 usage / flag errors; 3 journal or merge errors; 130 interrupted by
// SIGINT/SIGTERM (after draining). The supervisor relies on the split:
// 2/3 are permanent (restarting the same argv would fail identically),
// everything else is retryable.
enum ExitCode {
  kExitOk = 0,
  kExitAborted = 1,
  kExitUsage = 2,
  kExitJournal = 3,
  kExitInterrupted = 130,
};

struct Options {
  std::string argv0 = "mfc_profile";  // worker re-exec fallback (--supervise)
  std::string profile;          // named profile, or empty
  std::string cohort;           // survey cohort, or empty
  double theta_ms = 100.0;
  size_t step = 5;
  size_t max_crowd = 85;
  size_t fleet = 85;
  size_t mr = 1;
  double stagger_ms = 0.0;
  double background_rps = 0.0;
  uint64_t seed = 1;
  size_t survey = 0;            // when > 0: survey this many cohort sites
  size_t jobs = 0;              // worker threads (0 = MFC_JOBS env / hardware)
  size_t shards = 1;            // total survey shards (DESIGN.md §12)
  size_t shard_index = 0;       // this process's shard in [0, shards)
  bool legacy_seeds = false;    // pre-PR-8 sampling + seed*1000+i seeds
  std::vector<std::string> merge_paths;  // --merge: shard journals to fold
  bool supervise = false;       // fork/monitor shard workers, then auto-merge
  double hang_timeout = 30.0;   // supervise: no-heartbeat deadline (seconds)
  size_t quarantine_after = 3;  // supervise: same-site crashes before quarantine
  bool sample_only = false;     // stream/sample survey sites, run nothing
  bool crawl = false;           // profile via crawling instead of operator input
  bool verbose_epochs = true;
  std::string csv_path;         // write per-epoch CSV here
  std::string json_path;        // write the full result as JSON here
  std::string trace_path;       // write a Chrome trace_event JSON here
  std::string metrics_path;     // write the merged metrics CSV here
  std::string journal_path;     // write-ahead experiment journal (crash-safe)
  bool resume = false;          // replay journaled experiments from --journal
  std::string stats_stream_path;  // JSONL health snapshots ("-" = stdout)
  double stats_interval = 1.0;    // snapshot cadence (wall s for surveys, sim s otherwise)
  bool progress = false;          // verbose per-site survey lines on stderr
  std::vector<StageKind> stages = {StageKind::kBase, StageKind::kSmallQuery,
                                   StageKind::kLargeObject};
};

void Usage() {
  printf(
      "usage: mfc_profile [flags]\n"
      "  --profile=<lab|qtnp|qtp|univ1|univ2|univ3>   named case-study deployment\n"
      "  --cohort=<rank1|rank2|rank3|rank4|startup|phishing|longtail>  survey cohort\n"
      "  --theta-ms=<N>        degradation threshold (default 100)\n"
      "  --step=<N>            crowd-size increment (default 5)\n"
      "  --max-crowd=<N>       request ceiling (default 85)\n"
      "  --fleet=<N>           available clients (default 85)\n"
      "  --mr=<N>              MFC-mr connections per client (default 1)\n"
      "  --stagger-ms=<N>      staggered arrivals, spacing in ms (default 0)\n"
      "  --background-rps=<N>  Poisson background request rate (default 0)\n"
      "  --stages=<list>       comma list of base,query,large (default all)\n"
      "  --survey=<N>          run N sampled cohort sites and print the breakdown\n"
      "  --jobs=<N>            survey worker threads (default: MFC_JOBS env, then cores)\n"
      "  --shards=<K>          split the survey across K cooperating processes; this one\n"
      "                        runs sites with index %% K == --shard-index (needs --journal)\n"
      "  --shard-index=<J>     this process's shard (default 0)\n"
      "  --merge=<p1,p2,...>   fold K shard journals into the single-run report/outputs\n"
      "  --supervise           run the whole sharded survey unattended: fork one worker\n"
      "                        per shard (journals at <--journal>.shard<j>), restart\n"
      "                        crashes with backoff, kill+restart hung workers,\n"
      "                        quarantine poisoned sites, then merge automatically\n"
      "  --hang-timeout=<S>    supervise: seconds without journal/stats growth before\n"
      "                        a live worker is declared hung (default 30)\n"
      "  --quarantine-after=<K> supervise: consecutive no-progress crashes on the same\n"
      "                        site before it is quarantined (default 3)\n"
      "  --legacy-seeds        pre-PR-8 seed derivation (sequential sampling, seed*1000+i;\n"
      "                        collides past 1000 sites) for replaying old journals\n"
      "  --sample-only         stream-sample the survey sites (no experiments); prints a\n"
      "                        digest + resident instance count\n"
      "  --crawl               discover probe objects by crawling\n"
      "  --csv=<path>          write per-epoch CSV\n"
      "  --json=<path>         write the result as JSON\n"
      "  --trace=<path>        write request/coordinator spans as Chrome trace JSON\n"
      "  --metrics=<path>      write the (merged) metrics registry as CSV\n"
      "  --journal=<path>      write-ahead journal: completed experiments are appended\n"
      "                        + fsynced; surveys drain gracefully on SIGINT/SIGTERM\n"
      "  --resume              replay already-journaled experiments from --journal\n"
      "  --stats-stream=<path> stream runtime health snapshots as JSONL ('-' = stdout)\n"
      "  --stats-interval=<S>  snapshot cadence in seconds (wall-clock for surveys,\n"
      "                        simulated time for single experiments; default 1)\n"
      "  --progress            verbose per-site survey lines on stderr (default: a\n"
      "                        rate-limited progress line, terminal only)\n"
      "  --seed=<N>            RNG seed\n"
      "  --quiet               suppress per-epoch output\n");
}

std::optional<Options> ParseArgs(int argc, char** argv) {
  Options options;
  if (argc > 0 && argv[0] != nullptr && argv[0][0] != '\0') {
    options.argv0 = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> std::optional<std::string> {
      size_t n = strlen(prefix);
      if (arg.rfind(prefix, 0) == 0) {
        return arg.substr(n);
      }
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") {
      return std::nullopt;
    } else if (auto v = value_of("--profile=")) {
      options.profile = *v;
    } else if (auto v = value_of("--cohort=")) {
      options.cohort = *v;
    } else if (auto v = value_of("--theta-ms=")) {
      if (!ParseDoubleFlag("--theta-ms", *v, &options.theta_ms)) return std::nullopt;
    } else if (auto v = value_of("--step=")) {
      if (!ParseSizeFlag("--step", *v, &options.step)) return std::nullopt;
    } else if (auto v = value_of("--max-crowd=")) {
      if (!ParseSizeFlag("--max-crowd", *v, &options.max_crowd)) return std::nullopt;
    } else if (auto v = value_of("--fleet=")) {
      if (!ParseSizeFlag("--fleet", *v, &options.fleet)) return std::nullopt;
    } else if (auto v = value_of("--mr=")) {
      if (!ParseSizeFlag("--mr", *v, &options.mr)) return std::nullopt;
    } else if (auto v = value_of("--stagger-ms=")) {
      if (!ParseDoubleFlag("--stagger-ms", *v, &options.stagger_ms)) return std::nullopt;
    } else if (auto v = value_of("--background-rps=")) {
      if (!ParseDoubleFlag("--background-rps", *v, &options.background_rps)) return std::nullopt;
    } else if (auto v = value_of("--seed=")) {
      if (!ParseU64Flag("--seed", *v, &options.seed)) return std::nullopt;
    } else if (auto v = value_of("--survey=")) {
      if (!ParseSizeFlag("--survey", *v, &options.survey)) return std::nullopt;
    } else if (auto v = value_of("--jobs=")) {
      if (!ParseSizeFlag("--jobs", *v, &options.jobs)) return std::nullopt;
    } else if (auto v = value_of("--shards=")) {
      if (!ParseSizeFlag("--shards", *v, &options.shards)) return std::nullopt;
    } else if (auto v = value_of("--shard-index=")) {
      if (!ParseSizeFlag("--shard-index", *v, &options.shard_index)) return std::nullopt;
    } else if (auto v = value_of("--merge=")) {
      std::string list = *v;
      size_t pos = 0;
      while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        std::string path = list.substr(pos, comma == std::string::npos ? std::string::npos
                                                                       : comma - pos);
        if (!path.empty()) {
          options.merge_paths.push_back(path);
        }
        if (comma == std::string::npos) {
          break;
        }
        pos = comma + 1;
      }
    } else if (arg == "--supervise") {
      options.supervise = true;
    } else if (auto v = value_of("--hang-timeout=")) {
      if (!ParseDoubleFlag("--hang-timeout", *v, &options.hang_timeout)) return std::nullopt;
    } else if (auto v = value_of("--quarantine-after=")) {
      if (!ParseSizeFlag("--quarantine-after", *v, &options.quarantine_after))
        return std::nullopt;
    } else if (arg == "--legacy-seeds") {
      options.legacy_seeds = true;
    } else if (arg == "--sample-only") {
      options.sample_only = true;
    } else if (auto v = value_of("--csv=")) {
      options.csv_path = *v;
    } else if (auto v = value_of("--json=")) {
      options.json_path = *v;
    } else if (auto v = value_of("--trace=")) {
      options.trace_path = *v;
    } else if (auto v = value_of("--metrics=")) {
      options.metrics_path = *v;
    } else if (auto v = value_of("--journal=")) {
      options.journal_path = *v;
    } else if (auto v = value_of("--stats-stream=")) {
      options.stats_stream_path = *v;
    } else if (auto v = value_of("--stats-interval=")) {
      if (!ParseDoubleFlag("--stats-interval", *v, &options.stats_interval)) return std::nullopt;
    } else if (arg == "--progress") {
      options.progress = true;
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--crawl") {
      options.crawl = true;
    } else if (arg == "--quiet") {
      options.verbose_epochs = false;
    } else if (auto v = value_of("--stages=")) {
      options.stages.clear();
      std::string list = *v;
      size_t pos = 0;
      while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        std::string stage = list.substr(pos, comma == std::string::npos ? std::string::npos
                                                                        : comma - pos);
        if (stage == "base") {
          options.stages.push_back(StageKind::kBase);
        } else if (stage == "query") {
          options.stages.push_back(StageKind::kSmallQuery);
        } else if (stage == "large") {
          options.stages.push_back(StageKind::kLargeObject);
        } else {
          fprintf(stderr, "unknown stage '%s'\n", stage.c_str());
          return std::nullopt;
        }
        if (comma == std::string::npos) {
          break;
        }
        pos = comma + 1;
      }
    } else {
      fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (options.resume && options.journal_path.empty()) {
    fprintf(stderr, "--resume requires --journal=<path>\n");
    return std::nullopt;
  }
  if (options.shards == 0) {
    fprintf(stderr, "--shards must be >= 1\n");
    return std::nullopt;
  }
  if (options.shard_index >= options.shards) {
    fprintf(stderr, "--shard-index=%zu out of range for --shards=%zu\n", options.shard_index,
            options.shards);
    return std::nullopt;
  }
  if (options.supervise) {
    // Supervised runs drive full shard workers and merge their journals, so
    // --json/--trace/--metrics are fine at any shard count — the supervisor
    // writes them from the merged view, never a partial one.
    if (options.survey == 0) {
      fprintf(stderr, "--supervise requires --survey=<N>\n");
      return std::nullopt;
    }
    if (options.journal_path.empty()) {
      fprintf(stderr,
              "--supervise requires --journal=<prefix> (shard journals land at "
              "<prefix>.shard<j>)\n");
      return std::nullopt;
    }
    if (!options.merge_paths.empty()) {
      fprintf(stderr, "--supervise merges automatically; drop --merge\n");
      return std::nullopt;
    }
    if (options.sample_only) {
      fprintf(stderr, "--supervise cannot be combined with --sample-only\n");
      return std::nullopt;
    }
    if (options.shard_index != 0) {
      fprintf(stderr, "--shard-index is assigned by the supervisor; drop it\n");
      return std::nullopt;
    }
    if (options.hang_timeout <= 0.0) {
      fprintf(stderr, "--hang-timeout must be > 0\n");
      return std::nullopt;
    }
    if (options.quarantine_after == 0) {
      fprintf(stderr, "--quarantine-after must be >= 1\n");
      return std::nullopt;
    }
  } else if (options.shards > 1) {
    if (options.survey == 0) {
      fprintf(stderr, "--shards requires --survey=<N>\n");
      return std::nullopt;
    }
    if (options.journal_path.empty() && !options.sample_only) {
      // Without journals there is nothing to merge — a sharded run's only
      // durable output is its journal.
      fprintf(stderr, "--shards requires --journal=<path> (shards are merged from journals)\n");
      return std::nullopt;
    }
    if (!options.json_path.empty()) {
      fprintf(stderr,
              "--json with --shards > 1 would be a partial report; use --merge after the "
              "shards finish\n");
      return std::nullopt;
    }
  }
  if (options.sample_only && options.survey == 0) {
    fprintf(stderr, "--sample-only requires --survey=<N>\n");
    return std::nullopt;
  }
  return options;
}

std::optional<Cohort> ResolveCohort(const Options& options) {
  static const std::map<std::string, Cohort> kCohorts = {
      {"rank1", Cohort::kRank1To1K},      {"rank2", Cohort::kRank1KTo10K},
      {"rank3", Cohort::kRank10KTo100K},  {"rank4", Cohort::kRank100KTo1M},
      {"startup", Cohort::kStartup},      {"phishing", Cohort::kPhishing},
      {"longtail", Cohort::kLongTail},
  };
  std::string cohort = options.cohort.empty() ? "rank3" : options.cohort;
  auto it = kCohorts.find(cohort);
  if (it == kCohorts.end()) {
    fprintf(stderr, "unknown cohort '%s'\n", cohort.c_str());
    return std::nullopt;
  }
  return it->second;
}

std::optional<SiteInstance> ResolveSite(const Options& options) {
  if (!options.profile.empty()) {
    static const std::map<std::string, SiteInstance (*)()> kProfiles = {
        {"lab", &MakeLabValidationProfile}, {"qtnp", &MakeQtnpProfile},
        {"qtp", &MakeQtpProfile},           {"univ1", &MakeUniv1Profile},
        {"univ2", &MakeUniv2Profile},       {"univ3", &MakeUniv3Profile},
    };
    auto it = kProfiles.find(options.profile);
    if (it == kProfiles.end()) {
      fprintf(stderr, "unknown profile '%s'\n", options.profile.c_str());
      return std::nullopt;
    }
    return it->second();
  }
  auto cohort = ResolveCohort(options);
  if (!cohort.has_value()) {
    return std::nullopt;
  }
  Rng rng(options.seed);
  return SampleSite(rng, *cohort);
}

// Atomic (temp file + rename): an aborted run never leaves a truncated
// export behind.
bool WriteFile(const std::string& path, const std::string& contents) {
  if (!WriteFileAtomic(path, contents)) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  printf("wrote %s\n", path.c_str());
  return true;
}

// Opens the journal for either mode, printing errors/warnings. The
// fingerprint must pin everything that shapes the experiment — never --jobs
// or output paths.
std::unique_ptr<SurveyJournal> OpenJournal(const Options& options, const std::string& tool,
                                           const std::string& fingerprint) {
  std::string error;
  std::unique_ptr<SurveyJournal> journal =
      SurveyJournal::Open(options.journal_path, tool, fingerprint, options.resume, &error);
  if (journal == nullptr) {
    fprintf(stderr, "journal error: %s\n", error.c_str());
    return nullptr;
  }
  if (!journal->Warning().empty()) {
    fprintf(stderr, "journal warning: %s\n", journal->Warning().c_str());
  }
  return journal;
}

std::string StagesToken(const std::vector<StageKind>& stages) {
  std::string token;
  for (StageKind kind : stages) {
    token += std::to_string(static_cast<int>(kind));
  }
  return token;
}

void PrintSurveyBreakdownLine(const SurveyBreakdown& b) {
  auto pct = [&](size_t n) {
    return b.servers == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                                      static_cast<double>(b.servers);
  };
  printf("servers=%zu  <=10: %.0f%%  10-20: %.0f%%  20-30: %.0f%%  30-40: %.0f%%  "
         "40-50: %.0f%%  >50: %.0f%%  NoStop: %.0f%%\n",
         b.servers, pct(b.b10), pct(b.b20), pct(b.b30), pct(b.b40), pct(b.b50),
         pct(b.b50plus), pct(b.nostop));
}

// --sample-only: stream this shard's slice of the survey's site instances —
// provisioning only, no experiments — and print an order-independent FNV-1a
// digest plus how many instances ended up resident. check_shard_merge.py
// drives 100k+ sites through this to pin the O(1)-memory streaming claim.
int RunSampleOnly(const Options& options, Cohort cohort) {
  SiteStream sites(cohort, options.seed, options.survey, options.legacy_seeds);
  uint64_t digest = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  auto fold = [&digest](double v) {
    uint64_t bits;
    memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 64; b += 8) {
      digest = (digest ^ ((bits >> b) & 0xff)) * 1099511628211ULL;
    }
  };
  for (size_t i = options.shard_index; i < options.survey; i += options.shards) {
    SiteInstance instance = sites.Site(i);
    fold(instance.base_knee);
    fold(instance.query_knee);
    fold(instance.bandwidth_knee);
    fold(instance.server_access_bps);
    fold(instance.background_rps);
    fold(static_cast<double>(instance.replicas));
  }
  printf("sampled cohort=%s servers=%zu shard=%zu/%zu digest=%016llx materialized=%zu\n",
         std::string(CohortName(cohort)).c_str(), options.survey, options.shard_index,
         options.shards, static_cast<unsigned long long>(digest), sites.MaterializedCount());
  return 0;
}

// --survey=N: profile N cohort sites across the worker pool and print the
// paper-style stopping breakdown.
int RunSurvey(const Options& options) {
  if (!options.profile.empty()) {
    fprintf(stderr, "--survey requires a cohort, not a named profile\n");
    return 2;
  }
  auto cohort = ResolveCohort(options);
  if (!cohort.has_value()) {
    return 2;
  }
  if (options.sample_only) {
    return RunSampleOnly(options, *cohort);
  }
  StageKind stage = options.stages.empty() ? StageKind::kBase : options.stages[0];
  size_t jobs = ResolveJobs(options.jobs);
  printf("survey: cohort=%s stage=%s servers=%zu max-crowd=%zu jobs=%zu seed=%llu",
         std::string(CohortName(*cohort)).c_str(), std::string(StageName(stage)).c_str(),
         options.survey, options.max_crowd, jobs,
         static_cast<unsigned long long>(options.seed));
  if (options.shards > 1) {
    printf(" shard=%zu/%zu", options.shard_index, options.shards);
  }
  if (options.legacy_seeds) {
    printf(" legacy-seeds");
  }
  printf("\n\n");
  SurveyTelemetry telemetry;
  telemetry.collect_trace = !options.trace_path.empty();
  telemetry.collect_metrics = !options.metrics_path.empty();
  telemetry.progress = options.progress;

  // Health plane: JSONL snapshot stream and/or the rate-limited terminal
  // progress line (which replaces the old unconditional per-site spam; the
  // verbose lines are now opt-in via --progress).
  std::unique_ptr<StatsStream> stats;
  if (!options.stats_stream_path.empty()) {
    std::string error;
    stats = StatsStream::Open(options.stats_stream_path, &error);
    if (stats == nullptr) {
      fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
  }
  ProgressLine progress_line(1.0);
  telemetry.stats = stats.get();
  if (!options.progress && progress_line.Enabled()) {
    telemetry.progress_line = &progress_line;
  }
  telemetry.stats_interval = options.stats_interval;
  telemetry.stats_label = std::string(CohortName(*cohort));
  std::unique_ptr<SurveyJournal> journal;
  if (!options.journal_path.empty()) {
    char fingerprint[160];
    snprintf(fingerprint, sizeof(fingerprint),
             "cohort=%s;stage=%d;servers=%zu;max=%zu;seed=%llu;trace=%d;metrics=%d",
             std::string(CohortName(*cohort)).c_str(), static_cast<int>(stage), options.survey,
             options.max_crowd, static_cast<unsigned long long>(options.seed),
             telemetry.collect_trace ? 1 : 0, telemetry.collect_metrics ? 1 : 0);
    journal = OpenJournal(options, "mfc_profile:survey", fingerprint);
    if (journal == nullptr) {
      return kExitJournal;
    }
    std::string error;
    if (!journal->BeginCohort(*cohort, stage, options.survey, options.max_crowd, options.seed,
                              0, &error, options.shards, options.shard_index,
                              options.legacy_seeds)) {
      fprintf(stderr, "journal error: %s\n", error.c_str());
      return kExitJournal;
    }
    ClearShutdownRequest();
    InstallShutdownHandlers();
  }
  SurveyTelemetry* telemetry_arg =
      telemetry.Enabled() || telemetry.progress || telemetry.HealthAttached() ? &telemetry
                                                                              : nullptr;
  SurveyRunOptions run;
  run.shards = options.shards;
  run.shard_index = options.shard_index;
  run.legacy_seeds = options.legacy_seeds;
  std::vector<ExperimentResult> per_site;
  const bool want_report = !options.json_path.empty();
  SurveyBreakdown b = RunSurveyCohortParallel(*cohort, stage, options.survey,
                                              options.max_crowd, options.seed, jobs,
                                              want_report ? &per_site : nullptr, telemetry_arg,
                                              journal.get(), run);
  PrintSurveyBreakdownLine(b);
  if (telemetry.collect_metrics) {
    // A non-zero stall count means some allocation pass left flows pinned at
    // rate 0 (see FlowNetworkStats::no_progress) — results are suspect.
    double stalls = telemetry.metrics.Counter("flow_network.no_progress");
    if (stalls > 0.0) {
      fprintf(stderr, "warning: flow_network.no_progress = %.0f (water-filling stalls)\n",
              stalls);
    }
  }
  if (!options.trace_path.empty()) {
    WriteFile(options.trace_path, ExportTraceJson(telemetry.trace));
  }
  if (!options.metrics_path.empty()) {
    WriteFile(options.metrics_path, ExportMetricsCsv(telemetry.metrics));
  }
  if (journal != nullptr) {
    journal->Sync();
    printf("journal: %zu site(s) replayed, %zu executed\n",
           journal->resumed_sites.load(), journal->executed_sites.load());
    if (journal->interrupted.load()) {
      fprintf(stderr, "interrupted: resume with --journal=%s --resume\n",
              journal->Path().c_str());
      return kExitInterrupted;
    }
  }
  if (want_report) {
    // Quarantine records in a resumed journal surface in this run's report
    // too, in global index order — the same view --merge would build.
    std::vector<JournalQuarantineRecord> quarantined;
    if (journal != nullptr) {
      for (const JournalQuarantineRecord& q : journal->Quarantines()) {
        if (q.cohort_ordinal == journal->CurrentOrdinal()) {
          quarantined.push_back(q);
        }
      }
      std::sort(quarantined.begin(), quarantined.end(),
                [](const JournalQuarantineRecord& a, const JournalQuarantineRecord& b2) {
                  return a.site_index < b2.site_index;
                });
    }
    SurveyReportInput report;
    report.cohort_name = std::string(CohortName(*cohort));
    report.stage = static_cast<int>(stage);
    report.servers = options.survey;
    report.max_crowd = options.max_crowd;
    report.seed = options.seed;
    report.legacy_seeds = options.legacy_seeds;
    report.breakdown = b;
    report.per_site = &per_site;
    report.quarantined = &quarantined;
    WriteFile(options.json_path, BuildSurveyReportJson(report));
  }
  return kExitOk;
}

// Folds the shard journals at |paths| back into the single-process outputs
// (report JSON, merged trace/metrics). The report goes through the same
// builder as an unsharded --survey --json run, so the two are comparable
// byte for byte. Shared by --merge and the --supervise auto-merge.
int MergeAndWrite(const Options& options, const std::vector<std::string>& paths) {
  ShardMergeResult merged;
  std::string error;
  if (!MergeShardJournals(paths, &merged, &error)) {
    fprintf(stderr, "merge error: %s\n", error.c_str());
    return kExitJournal;
  }
  printf("merged %zu shard journal(s): tool=%s cohorts=%zu\n", paths.size(),
         merged.tool.c_str(), merged.cohorts.size());
  for (size_t ord = 0; ord < merged.breakdowns.size(); ++ord) {
    printf("[%s] ", std::string(CohortName(merged.cohorts[ord].cohort)).c_str());
    PrintSurveyBreakdownLine(merged.breakdowns[ord]);
    for (const JournalQuarantineRecord& q : merged.quarantined[ord]) {
      printf("  quarantined site %zu after %zu crash(es): %s\n", q.site_index, q.crashes,
             q.signature.c_str());
    }
  }
  if (!options.json_path.empty()) {
    if (merged.cohorts.size() != 1) {
      fprintf(stderr, "--json merge report requires single-cohort journals (these hold %zu)\n",
              merged.cohorts.size());
      return kExitJournal;
    }
    const JournalCohortRecord& c = merged.cohorts[0];
    SurveyReportInput report;
    report.cohort_name = std::string(CohortName(c.cohort));
    report.stage = static_cast<int>(c.stage);
    report.servers = c.servers;
    report.max_crowd = c.max_crowd;
    report.seed = c.seed;
    report.legacy_seeds = c.legacy_seeds;
    report.breakdown = merged.breakdowns[0];
    report.per_site = &merged.per_site[0];
    report.quarantined = &merged.quarantined[0];
    if (!WriteFile(options.json_path, BuildSurveyReportJson(report))) {
      return kExitAborted;
    }
  }
  if (!options.trace_path.empty() &&
      !WriteFile(options.trace_path, ExportTraceJson(merged.trace))) {
    return kExitAborted;
  }
  if (!options.metrics_path.empty() &&
      !WriteFile(options.metrics_path, ExportMetricsCsv(merged.metrics))) {
    return kExitAborted;
  }
  return kExitOk;
}

int RunMerge(const Options& options) { return MergeAndWrite(options, options.merge_paths); }

const char* StageFlagName(StageKind kind) {
  switch (kind) {
    case StageKind::kBase:
      return "base";
    case StageKind::kSmallQuery:
      return "query";
    case StageKind::kLargeObject:
      return "large";
  }
  return "base";
}

// The path workers are exec'd from: this very binary, so supervisor and
// worker can never skew versions. argv[0] is the fallback off-proc.
std::string SelfExePath(const std::string& fallback) {
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    return fallback;
  }
  buf[n] = '\0';
  return buf;
}

// --supervise: run the whole sharded survey unattended (DESIGN.md §14).
// Forks one worker per shard with its own journal/stats/log files derived
// from --journal, restarts crashes from their journals, SIGKILLs hung
// workers, quarantines poisoned sites, and on success merges everything into
// the same report/trace/metrics files an unsharded run would have written.
int RunSupervise(const Options& options) {
  auto cohort = ResolveCohort(options);
  if (!cohort.has_value()) {
    return kExitUsage;
  }
  const std::string exe = SelfExePath(options.argv0);
  const size_t shards = options.shards;
  // Each worker gets an equal slice of the machine unless --jobs pins it.
  size_t worker_jobs = options.jobs;
  if (worker_jobs == 0) {
    worker_jobs = std::max<size_t>(1, ResolveJobs(0) / shards);
  }
  std::vector<std::string> journal_paths;
  std::vector<std::string> stats_paths;
  std::vector<std::string> log_paths;
  for (size_t j = 0; j < shards; ++j) {
    journal_paths.push_back(options.journal_path + ".shard" + std::to_string(j));
    stats_paths.push_back(journal_paths.back() + ".stats");
    log_paths.push_back(journal_paths.back() + ".log");
  }
  // Workers always stream stats: their growth is the heartbeat that lets the
  // supervisor tell "slow site" from "wedged worker", so the cadence must
  // beat the hang deadline comfortably.
  const double worker_stats_interval =
      std::min(options.stats_interval, options.hang_timeout / 4.0);

  SupervisorOptions sup;
  sup.shards = shards;
  sup.journal_paths = journal_paths;
  sup.heartbeat_paths = stats_paths;
  sup.log_paths = log_paths;
  sup.hang_timeout = options.hang_timeout;
  sup.quarantine_after = options.quarantine_after;
  sup.seed = options.seed;
  sup.command = [&](size_t shard) {
    std::vector<std::string> argv = {exe};
    if (!options.cohort.empty()) {
      argv.push_back("--cohort=" + options.cohort);
    }
    argv.push_back("--survey=" + std::to_string(options.survey));
    argv.push_back("--max-crowd=" + std::to_string(options.max_crowd));
    argv.push_back("--seed=" + std::to_string(options.seed));
    std::string stages = "--stages=";
    for (size_t i = 0; i < options.stages.size(); ++i) {
      if (i > 0) {
        stages += ',';
      }
      stages += StageFlagName(options.stages[i]);
    }
    argv.push_back(stages);
    if (options.legacy_seeds) {
      argv.push_back("--legacy-seeds");
    }
    argv.push_back("--jobs=" + std::to_string(worker_jobs));
    argv.push_back("--shards=" + std::to_string(shards));
    argv.push_back("--shard-index=" + std::to_string(shard));
    argv.push_back("--journal=" + journal_paths[shard]);
    // --resume makes every launch — first, restart, whole-command re-run —
    // the same argv: replay what the journal has, execute the rest.
    argv.push_back("--resume");
    argv.push_back("--stats-stream=" + stats_paths[shard]);
    char interval[48];
    snprintf(interval, sizeof(interval), "--stats-interval=%g", worker_stats_interval);
    argv.push_back(interval);
    // Trace/metrics requests make workers journal their telemetry so the
    // merge can export it; the workers' own export files are scratch.
    if (!options.trace_path.empty()) {
      argv.push_back("--trace=" + journal_paths[shard] + ".trace.json");
    }
    if (!options.metrics_path.empty()) {
      argv.push_back("--metrics=" + journal_paths[shard] + ".metrics.csv");
    }
    return argv;
  };
  std::unique_ptr<StatsStream> stats;
  if (!options.stats_stream_path.empty()) {
    std::string error;
    stats = StatsStream::Open(options.stats_stream_path, &error);
    if (stats == nullptr) {
      fprintf(stderr, "%s\n", error.c_str());
      return kExitUsage;
    }
    sup.stats = stats.get();
    sup.stats_interval = options.stats_interval;
  }

  printf("supervise: shards=%zu jobs/worker=%zu hang-timeout=%.0fs quarantine-after=%zu "
         "journals=%s.shard<j>\n",
         shards, worker_jobs, options.hang_timeout, options.quarantine_after,
         options.journal_path.c_str());
  SurveySupervisor supervisor(std::move(sup));
  SupervisorResult result = supervisor.Run();
  if (result.interrupted) {
    size_t done = 0;
    for (const SupervisorShardStatus& s : result.shards) {
      done += s.completed ? 1 : 0;
    }
    fprintf(stderr,
            "interrupted: %zu/%zu shard(s) complete; re-run the same --supervise command to "
            "resume\n",
            done, shards);
    return kExitInterrupted;
  }
  if (!result.ok) {
    fprintf(stderr, "supervise error: %s\n", result.error.c_str());
    return kExitJournal;
  }
  printf("supervise: all %zu shard(s) complete (%zu restart(s), %zu hang kill(s), "
         "%zu quarantine(s))\n",
         shards, result.restarts, result.hang_kills, result.quarantines.size());
  return MergeAndWrite(options, journal_paths);
}

int Run(const Options& options) {
  if (options.supervise) {
    return RunSupervise(options);
  }
  if (!options.merge_paths.empty()) {
    return RunMerge(options);
  }
  if (options.survey > 0) {
    return RunSurvey(options);
  }
  auto site = ResolveSite(options);
  if (!site.has_value()) {
    return 2;
  }

  ExperimentConfig config;
  config.threshold = Millis(options.theta_ms);
  config.crowd_step = options.step;
  config.max_crowd = options.max_crowd;
  config.min_clients = std::min<size_t>(50, options.fleet);
  config.requests_per_client = options.mr;
  config.stagger_spacing = Millis(options.stagger_ms);

  const bool want_trace = !options.trace_path.empty();
  const bool want_metrics = !options.metrics_path.empty();
  std::unique_ptr<SurveyJournal> journal;
  if (!options.journal_path.empty()) {
    char fingerprint[256];
    snprintf(fingerprint, sizeof(fingerprint),
             "profile=%s;cohort=%s;theta=%g;step=%zu;max=%zu;fleet=%zu;mr=%zu;stagger=%g;"
             "bg=%g;seed=%llu;stages=%s;crawl=%d;trace=%d;metrics=%d",
             options.profile.c_str(), options.cohort.c_str(), options.theta_ms, options.step,
             options.max_crowd, options.fleet, options.mr, options.stagger_ms,
             options.background_rps, static_cast<unsigned long long>(options.seed),
             StagesToken(options.stages).c_str(), options.crawl ? 1 : 0, want_trace ? 1 : 0,
             want_metrics ? 1 : 0);
    journal = OpenJournal(options, "mfc_profile:single", fingerprint);
    if (journal == nullptr) {
      return kExitJournal;
    }
  }

  Tracer tracer;
  MetricsRegistry metrics;
  ExperimentResult result;
  // Single experiments journal as site (0, 0) with no cohort record; a
  // completed run replays without even deploying the site.
  const JournalSiteRecord* replay = journal != nullptr ? journal->SiteAt(0, 0) : nullptr;
  if (replay != nullptr) {
    printf("target: %s  fleet=%zu  theta=%.0fms  step=%zu  max=%zu  mr=%zu  "
           "(replayed from journal)\n\n",
           site->server.name.c_str(), options.fleet, options.theta_ms, options.step,
           options.max_crowd, options.mr);
    result = replay->result;
    for (const TraceSpan& span : replay->trace_spans) {
      tracer.RestoreSpan(span);
    }
    metrics = replay->metrics;
    journal->resumed_sites.fetch_add(1);
  } else {
    DeploymentOptions deployment_options;
    deployment_options.seed = options.seed;
    deployment_options.fleet_size = options.fleet;
    deployment_options.background_rps = options.background_rps;
    Deployment deployment(*site, deployment_options);
    deployment.StartBackground();

    // Telemetry sink; wired only when a --trace / --metrics output was asked
    // for, so plain runs keep the uninstrumented code path.
    Telemetry telemetry;
    if (want_trace) {
      telemetry.tracer = &tracer;
    }
    if (want_metrics) {
      telemetry.metrics = &metrics;
    }
    telemetry.progress = telemetry.Enabled();
    if (telemetry.Enabled()) {
      deployment.SetTelemetry(&telemetry);
    }

    StageObjects objects =
        options.crawl ? deployment.ProfileByCrawl() : deployment.ObjectsFromContent();

    printf("target: %s  fleet=%zu  theta=%.0fms  step=%zu  max=%zu  mr=%zu%s\n\n",
           site->server.name.c_str(), options.fleet, options.theta_ms, options.step,
           options.max_crowd, options.mr, options.crawl ? "  (crawl-profiled)" : "");

    Coordinator coordinator(deployment.Testbed(), config, options.seed + 1);
    if (telemetry.Enabled()) {
      coordinator.SetTelemetry(&telemetry);
    }

    // Health plane for a single experiment: simulated-time snapshots of the
    // event loop and flow network. The sampler's events are read-only, so
    // results with it attached are identical to results without.
    std::unique_ptr<StatsStream> stats;
    std::unique_ptr<SimStatsSampler> sampler;
    if (!options.stats_stream_path.empty()) {
      std::string error;
      stats = StatsStream::Open(options.stats_stream_path, &error);
      if (stats == nullptr) {
        fprintf(stderr, "%s\n", error.c_str());
        return 2;
      }
      auto probe = [&deployment] {
        SimHealthSnapshot s;
        const FlowNetwork& net = deployment.Testbed().Wan().Flows();
        s.flows_active = net.ActiveFlowCount();
        s.reallocs = net.Stats().reallocs;
        s.links_touched = net.Stats().links_touched;
        s.no_progress = net.Stats().no_progress;
        return s;
      };
      sampler = std::make_unique<SimStatsSampler>(deployment.Loop(), *stats,
                                                  options.stats_interval, probe,
                                                  want_metrics ? &metrics : nullptr);
      sampler->Start();
    }

    result = coordinator.Run(objects, options.stages);
    if (sampler != nullptr) {
      sampler->Stop();  // cancels the pending tick, emits the final snapshot
    }
    deployment.StopBackground();

    if (journal != nullptr) {
      JournalSiteRecord record;
      record.seed = options.seed;
      record.stage = options.stages.empty() ? StageKind::kBase : options.stages[0];
      record.result = result;
      if (want_trace) {
        record.has_trace = true;
        record.trace_spans = tracer.Spans();
      }
      if (want_metrics) {
        record.has_metrics = true;
        record.metrics = metrics;
      }
      journal->AppendSite(record);
    }
  }

  if (result.aborted) {
    printf("ABORTED: %s\n", result.abort_reason.c_str());
    return 1;
  }
  for (const StageResult& stage : result.stages) {
    printf("[%s]\n", std::string(StageName(stage.kind)).c_str());
    if (options.verbose_epochs) {
      for (const EpochResult& epoch : stage.epochs) {
        printf("  crowd=%-4zu samples=%-4zu metric=%7.1f ms%s%s\n", epoch.crowd_size,
               epoch.samples_received, ToMillis(epoch.metric),
               epoch.check_phase ? "  [check]" : "",
               epoch.exceeded_threshold ? "  EXCEEDED" : "");
      }
    }
    printf("  -> %s\n\n",
           stage.stopped
               ? ("stopped at crowd " + std::to_string(stage.stopping_crowd_size)).c_str()
               : "NoStop");
  }
  printf("%s", AnalyzeExperiment(result, config).ToText().c_str());

  if (!options.csv_path.empty()) {
    WriteFile(options.csv_path, ExportEpochsCsv(result));
  }
  if (!options.json_path.empty()) {
    WriteFile(options.json_path, ExportJson(result));
  }
  if (!options.trace_path.empty()) {
    WriteFile(options.trace_path, ExportTraceJson(tracer));
  }
  if (!options.metrics_path.empty()) {
    WriteFile(options.metrics_path, ExportMetricsCsv(metrics));
  }
  return 0;
}

}  // namespace
}  // namespace mfc

int main(int argc, char** argv) {
  auto options = mfc::ParseArgs(argc, argv);
  if (!options.has_value()) {
    mfc::Usage();
    return 2;  // kExitUsage
  }
  return mfc::Run(*options);
}
