#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file emitted by the MFC tracer.

Checks (stdlib only, no third-party deps):
  * the file parses as JSON and has a non-empty ``traceEvents`` list;
  * every event carries the required keys (name/cat/ph/ts/dur/pid/tid) with
    ``ph`` == "X" (complete events are all the exporter emits);
  * durations are non-negative and timestamps are monotone non-decreasing
    within each pid (the exporter sorts by (pid, start, id));
  * ``args.parent`` links resolve to an existing span's ``args.id`` and
    parents fully enclose their children in simulated time;
  * span ids are unique across the whole file (survey merge remaps them).

Usage:
  check_trace.py <trace.json> [<metrics.csv>]
  check_trace.py --profile-bin <mfc_profile> [--workdir <dir>]

The second form runs a small fixed-seed experiment through mfc_profile with
--trace/--metrics and validates what comes out, so a ctest entry needs no
pre-generated fixture. Exit status 0 = valid, 1 = validation failure,
2 = usage/setup error.
"""

import json
import os
import subprocess
import sys
import tempfile

REQUIRED_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


def fail(msg):
    print("check_trace: FAIL: %s" % msg, file=sys.stderr)
    return 1


def check_trace(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        return fail("%s: not readable JSON: %s" % (path, exc))

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail("%s: missing traceEvents" % path)
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return fail("%s: traceEvents empty" % path)

    ids = {}
    last_ts = {}
    for i, ev in enumerate(events):
        for key in REQUIRED_KEYS:
            if key not in ev:
                return fail("event %d missing key %r" % (i, key))
        if ev["ph"] != "X":
            return fail("event %d: unexpected ph %r" % (i, ev["ph"]))
        if ev["dur"] < 0:
            return fail("event %d (%s): negative dur %r" % (i, ev["name"], ev["dur"]))
        pid = ev["pid"]
        if pid in last_ts and ev["ts"] < last_ts[pid]:
            return fail(
                "event %d (%s): ts %r < previous ts %r in pid %r — not monotone"
                % (i, ev["name"], ev["ts"], last_ts[pid], pid)
            )
        last_ts[pid] = ev["ts"]
        args = ev.get("args", {})
        span_id = args.get("id")
        if span_id is None:
            return fail("event %d (%s): missing args.id" % (i, ev["name"]))
        if span_id in ids:
            return fail("event %d (%s): duplicate span id %r" % (i, ev["name"], span_id))
        ids[span_id] = ev

    names = set()
    for ev in events:
        names.add(ev["name"])
        parent = ev["args"].get("parent")
        if parent is None:
            continue
        if parent not in ids:
            return fail(
                "span %r (%s): parent %r does not resolve"
                % (ev["args"]["id"], ev["name"], parent)
            )
        pev = ids[parent]
        if pev["pid"] != ev["pid"]:
            return fail(
                "span %r: parent %r lives in a different pid" % (ev["args"]["id"], parent)
            )
        # Parents must enclose children in simulated time (tolerate the
        # exporter's fixed-point microsecond rounding).
        eps = 0.5
        if ev["ts"] + eps < pev["ts"] or ev["ts"] + ev["dur"] > pev["ts"] + pev["dur"] + eps:
            return fail(
                "span %r (%s) [%r,+%r] escapes parent %r (%s) [%r,+%r]"
                % (
                    ev["args"]["id"],
                    ev["name"],
                    ev["ts"],
                    ev["dur"],
                    parent,
                    pev["name"],
                    pev["ts"],
                    pev["dur"],
                )
            )

    print(
        "check_trace: OK: %d events, %d pids, span names: %s"
        % (len(events), len(last_ts), ", ".join(sorted(names)))
    )
    return 0


def check_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as exc:
        return fail("%s: %s" % (path, exc))
    if not lines or lines[0] != "kind,name,field,value":
        return fail("%s: bad or missing CSV header" % path)
    if len(lines) < 2:
        return fail("%s: no metric rows" % path)
    for i, line in enumerate(lines[1:], start=2):
        parts = line.split(",")
        if len(parts) != 4:
            return fail("%s:%d: expected 4 columns, got %d" % (path, i, len(parts)))
        try:
            float(parts[3])
        except ValueError:
            return fail("%s:%d: non-numeric value %r" % (path, i, parts[3]))
    print("check_trace: OK: %d metric rows in %s" % (len(lines) - 1, path))
    return 0


def run_profile(profile_bin, workdir):
    trace = os.path.join(workdir, "trace.json")
    metrics = os.path.join(workdir, "metrics.csv")
    # univ1 at seed 3 stops in every stage, so the trace exercises the full
    # span vocabulary including check_phase confirmation epochs.
    cmd = [
        profile_bin,
        "--profile=univ1",
        "--seed=3",
        "--max-crowd=60",
        "--quiet",
        "--trace=" + trace,
        "--metrics=" + metrics,
    ]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    if proc.returncode != 0:
        print(proc.stderr.decode(errors="replace"), file=sys.stderr)
        print("check_trace: SETUP FAIL: %s exited %d" % (cmd, proc.returncode), file=sys.stderr)
        return 2
    rc = check_trace(trace)
    if rc == 0:
        rc = check_metrics(metrics)
    # A fixed-seed lab profile must produce both request-lifecycle and
    # coordinator spans; their absence means the wiring regressed even if the
    # file is structurally valid.
    if rc == 0:
        with open(trace, "r", encoding="utf-8") as f:
            names = {ev["name"] for ev in json.load(f)["traceEvents"]}
        for required in ("request", "queue", "cpu", "net", "experiment", "stage",
                         "epoch", "check_phase", "stop_decision"):
            if required not in names:
                return fail("expected span %r absent from fixed-seed profile" % required)
        print("check_trace: OK: all expected span kinds present")
    return rc


def main(argv):
    if len(argv) >= 3 and argv[1] == "--profile-bin":
        profile_bin = argv[2]
        workdir = None
        if len(argv) >= 5 and argv[3] == "--workdir":
            workdir = argv[4]
        if workdir:
            os.makedirs(workdir, exist_ok=True)
            return run_profile(profile_bin, workdir)
        with tempfile.TemporaryDirectory() as tmp:
            return run_profile(profile_bin, tmp)
    if len(argv) == 2:
        return check_trace(argv[1])
    if len(argv) == 3:
        rc = check_trace(argv[1])
        return rc if rc else check_metrics(argv[2])
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
