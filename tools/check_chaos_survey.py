#!/usr/bin/env python3
"""Chaos gate for the survey supervisor (DESIGN.md §14).

Proves that `mfc_profile --supervise` converges to the exact fault-free
answer while its workers are being killed out from under it (stdlib only,
no third-party deps):

  1. a fault-free unsharded reference run records the expected report,
     trace and metrics bytes;
  2. N seeded chaos rounds (default 3) each start a supervised 2-shard run
     and repeatedly SIGKILL or SIGSTOP a random live worker mid-run —
     worker pids are parsed from the supervisor's "shard J pid P started"
     lines, and a shard only becomes a target again after its journal
     grew past the previous kill (so restarts demonstrably made progress
     and no healthy site can accumulate a no-progress blame streak).
     SIGSTOPped workers must be detected by the heartbeat deadline and
     hang-killed. Every round must end with exit 0 and report/trace/
     metrics BYTE-IDENTICAL to the fault-free reference;
  3. a poisoned-site round: MFC_CRASH_SITE makes one site abort() its
     worker on every attempt; with --quarantine-after=2 the supervisor
     must quarantine exactly that site, finish the survey, and surface it
     in the merged report's "quarantined_sites".

Usage:
  check_chaos_survey.py --profile-bin <mfc_profile> [--rounds N]
      [--seed S] [--workdir <dir>]

Exit status 0 = valid, 1 = validation failure, 2 = usage/setup error.
"""

import json
import os
import re
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time

SURVEY = ["--cohort=startup", "--survey=240", "--seed=7", "--max-crowd=24", "--quiet"]
SHARDS = 2
KILLS_PER_ROUND = 3
START_RE = re.compile(rb"supervisor: shard (\d+) pid (\d+) started")
CRASH_SITE = "5"

ROUND_TIMEOUT = 120  # seconds per supervised run, far above the ~10s typical


def fail(msg):
    print("check_chaos_survey: FAIL: %s" % msg, file=sys.stderr)
    return 1


def slurp(path):
    with open(path, "rb") as f:
        return f.read()


def journal_lines(path):
    try:
        return slurp(path).count(b"\n")
    except OSError:
        return 0


class PidWatcher(threading.Thread):
    """Tails the supervisor's stderr, tracking each shard's current pid."""

    def __init__(self, stream):
        super().__init__(daemon=True)
        self.stream = stream
        self.lock = threading.Lock()
        self.pids = {}
        self.lines = []

    def run(self):
        for line in self.stream:
            with self.lock:
                self.lines.append(line)
                match = START_RE.search(line)
                if match:
                    self.pids[int(match.group(1))] = int(match.group(2))

    def pid_of(self, shard):
        with self.lock:
            return self.pids.get(shard)

    def stderr(self):
        with self.lock:
            return b"".join(self.lines)


def reference_run(profile_bin, path):
    proc = subprocess.run(
        [
            profile_bin,
            *SURVEY,
            "--journal=" + path("ref.jsonl"),
            "--json=" + path("ref.json"),
            "--trace=" + path("ref.trace"),
            "--metrics=" + path("ref.csv"),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    if proc.returncode != 0:
        print(proc.stderr.decode(errors="replace"), file=sys.stderr)
        print(
            "check_chaos_survey: SETUP FAIL: reference run exited %d" % proc.returncode,
            file=sys.stderr,
        )
        return 2
    return 0


def supervised_cmd(path, prefix, extra=()):
    return [
        *extra,
        *SURVEY,
        "--supervise",
        "--shards=%d" % SHARDS,
        "--hang-timeout=1.5",
        "--journal=" + path(prefix + ".jsonl"),
        "--json=" + path(prefix + ".json"),
        "--trace=" + path(prefix + ".trace"),
        "--metrics=" + path(prefix + ".csv"),
    ]


def chaos_round(profile_bin, path, round_idx, seed):
    """One supervised run with seeded SIGKILL/SIGSTOP injection."""
    rng = random.Random(seed * 1000 + round_idx)
    prefix = "r%d" % round_idx
    proc = subprocess.Popen(
        [profile_bin] + supervised_cmd(path, prefix),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    watcher = PidWatcher(proc.stderr)
    watcher.start()

    shard_journal = lambda j: path("%s.jsonl.shard%d" % (prefix, j))
    # A shard may be struck again only after its journal grew past the last
    # strike: the restart provably resumed, and the no-progress blame streak
    # (quarantine_after=3 default) can never reach a healthy site.
    last_kill_lines = {j: 2 for j in range(SHARDS)}  # past header+cohort
    kills = []
    deadline = time.monotonic() + ROUND_TIMEOUT
    while proc.poll() is None and time.monotonic() < deadline:
        if len(kills) < KILLS_PER_ROUND:
            eligible = [
                j
                for j in range(SHARDS)
                if watcher.pid_of(j) is not None
                and journal_lines(shard_journal(j)) > last_kill_lines[j]
            ]
            if eligible:
                victim = rng.choice(eligible)
                sig = rng.choice([signal.SIGKILL, signal.SIGSTOP])
                pid = watcher.pid_of(victim)
                last_kill_lines[victim] = journal_lines(shard_journal(victim))
                try:
                    os.kill(pid, sig)
                    kills.append((victim, pid, sig))
                except ProcessLookupError:
                    pass  # won the race against a clean exit; try again
        time.sleep(0.02)

    if proc.poll() is None:
        proc.kill()
        proc.wait()
        return fail("round %d: supervised run still alive after %ds" % (round_idx, ROUND_TIMEOUT))
    proc.stdout.read()
    watcher.join(timeout=10)
    stderr = watcher.stderr()
    if proc.returncode != 0:
        print(stderr.decode(errors="replace"), file=sys.stderr)
        return fail("round %d: supervised run exited %d" % (round_idx, proc.returncode))
    if not kills:
        return fail("round %d: no fault was injected — survey too fast to be a chaos round" % round_idx)
    if any(sig == signal.SIGSTOP for _, _, sig in kills) and b"hung" not in stderr:
        return fail("round %d: a worker was SIGSTOPped but no hang kill was logged" % round_idx)
    for ref, out in (("ref.json", ".json"), ("ref.trace", ".trace"), ("ref.csv", ".csv")):
        if slurp(path(ref)) != slurp(path(prefix + out)):
            return fail(
                "round %d: %s%s differs from the fault-free reference %s"
                % (round_idx, prefix, out, ref)
            )
    print(
        "check_chaos_survey: OK: round %d — %d fault(s) (%s), merged output byte-identical"
        % (
            round_idx,
            len(kills),
            ", ".join(
                "shard %d %s" % (j, "SIGKILL" if s == signal.SIGKILL else "SIGSTOP")
                for j, _, s in kills
            ),
        )
    )
    return 0


def quarantine_round(profile_bin, path):
    """A site that crashes its worker on every attempt must be quarantined."""
    env = dict(os.environ, MFC_CRASH_SITE=CRASH_SITE)
    proc = subprocess.run(
        [profile_bin] + supervised_cmd(path, "q", extra=["--quarantine-after=2"]),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        timeout=ROUND_TIMEOUT,
    )
    if proc.returncode != 0:
        print(proc.stderr.decode(errors="replace"), file=sys.stderr)
        return fail("quarantine round: supervised run exited %d" % proc.returncode)
    if b"quarantined site %s" % CRASH_SITE.encode() not in proc.stderr:
        return fail("quarantine round: supervisor never quarantined site %s" % CRASH_SITE)
    report = json.loads(slurp(path("q.json")))
    quarantined = report.get("quarantined_sites")
    if not quarantined or [q["index"] for q in quarantined] != [int(CRASH_SITE)]:
        return fail(
            "quarantine round: report quarantined_sites is %r, want index %s"
            % (quarantined, CRASH_SITE)
        )
    if quarantined[0]["crashes"] < 2 or "signal" not in quarantined[0]["signature"]:
        return fail("quarantine round: implausible record %r" % quarantined[0])
    print(
        "check_chaos_survey: OK: poisoned site %s quarantined after %d crash(es) (%s), "
        "survey completed" % (CRASH_SITE, quarantined[0]["crashes"], quarantined[0]["signature"])
    )
    return 0


def run_checks(profile_bin, workdir, rounds, seed):
    def path(name):
        return os.path.join(workdir, name)

    rc = reference_run(profile_bin, path)
    if rc != 0:
        return rc
    for round_idx in range(rounds):
        rc = chaos_round(profile_bin, path, round_idx, seed)
        if rc != 0:
            return rc
    return quarantine_round(profile_bin, path)


def main(argv):
    profile_bin = None
    workdir = None
    rounds = 3
    seed = 1
    i = 1
    while i < len(argv):
        if argv[i] == "--profile-bin" and i + 1 < len(argv):
            profile_bin = argv[i + 1]
            i += 2
        elif argv[i] == "--workdir" and i + 1 < len(argv):
            workdir = argv[i + 1]
            i += 2
        elif argv[i] == "--rounds" and i + 1 < len(argv):
            rounds = int(argv[i + 1])
            i += 2
        elif argv[i] == "--seed" and i + 1 < len(argv):
            seed = int(argv[i + 1])
            i += 2
        else:
            print(__doc__, file=sys.stderr)
            return 2
    if not profile_bin:
        print(__doc__, file=sys.stderr)
        return 2
    if workdir:
        os.makedirs(workdir, exist_ok=True)
        return run_checks(profile_bin, workdir, rounds, seed)
    with tempfile.TemporaryDirectory() as tmp:
        return run_checks(profile_bin, tmp, rounds, seed)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
