
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/client_agent.cc" "src/rt/CMakeFiles/mfc_rt.dir/client_agent.cc.o" "gcc" "src/rt/CMakeFiles/mfc_rt.dir/client_agent.cc.o.d"
  "/root/repo/src/rt/http_fetch.cc" "src/rt/CMakeFiles/mfc_rt.dir/http_fetch.cc.o" "gcc" "src/rt/CMakeFiles/mfc_rt.dir/http_fetch.cc.o.d"
  "/root/repo/src/rt/live_harness.cc" "src/rt/CMakeFiles/mfc_rt.dir/live_harness.cc.o" "gcc" "src/rt/CMakeFiles/mfc_rt.dir/live_harness.cc.o.d"
  "/root/repo/src/rt/live_http_server.cc" "src/rt/CMakeFiles/mfc_rt.dir/live_http_server.cc.o" "gcc" "src/rt/CMakeFiles/mfc_rt.dir/live_http_server.cc.o.d"
  "/root/repo/src/rt/reactor.cc" "src/rt/CMakeFiles/mfc_rt.dir/reactor.cc.o" "gcc" "src/rt/CMakeFiles/mfc_rt.dir/reactor.cc.o.d"
  "/root/repo/src/rt/sockets.cc" "src/rt/CMakeFiles/mfc_rt.dir/sockets.cc.o" "gcc" "src/rt/CMakeFiles/mfc_rt.dir/sockets.cc.o.d"
  "/root/repo/src/rt/wire.cc" "src/rt/CMakeFiles/mfc_rt.dir/wire.cc.o" "gcc" "src/rt/CMakeFiles/mfc_rt.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mfc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mfc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/mfc_server.dir/DependInfo.cmake"
  "/root/repo/build/src/content/CMakeFiles/mfc_content.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/mfc_http.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/mfc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mfc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
