file(REMOVE_RECURSE
  "CMakeFiles/mfc_rt.dir/client_agent.cc.o"
  "CMakeFiles/mfc_rt.dir/client_agent.cc.o.d"
  "CMakeFiles/mfc_rt.dir/http_fetch.cc.o"
  "CMakeFiles/mfc_rt.dir/http_fetch.cc.o.d"
  "CMakeFiles/mfc_rt.dir/live_harness.cc.o"
  "CMakeFiles/mfc_rt.dir/live_harness.cc.o.d"
  "CMakeFiles/mfc_rt.dir/live_http_server.cc.o"
  "CMakeFiles/mfc_rt.dir/live_http_server.cc.o.d"
  "CMakeFiles/mfc_rt.dir/reactor.cc.o"
  "CMakeFiles/mfc_rt.dir/reactor.cc.o.d"
  "CMakeFiles/mfc_rt.dir/sockets.cc.o"
  "CMakeFiles/mfc_rt.dir/sockets.cc.o.d"
  "CMakeFiles/mfc_rt.dir/wire.cc.o"
  "CMakeFiles/mfc_rt.dir/wire.cc.o.d"
  "libmfc_rt.a"
  "libmfc_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
