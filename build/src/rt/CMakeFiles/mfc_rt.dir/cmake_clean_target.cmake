file(REMOVE_RECURSE
  "libmfc_rt.a"
)
