# Empty compiler generated dependencies file for mfc_rt.
# This may be replaced when dependencies are built.
