# Empty dependencies file for mfc_http.
# This may be replaced when dependencies are built.
