file(REMOVE_RECURSE
  "libmfc_http.a"
)
