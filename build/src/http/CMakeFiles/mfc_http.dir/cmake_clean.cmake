file(REMOVE_RECURSE
  "CMakeFiles/mfc_http.dir/content_type.cc.o"
  "CMakeFiles/mfc_http.dir/content_type.cc.o.d"
  "CMakeFiles/mfc_http.dir/header_map.cc.o"
  "CMakeFiles/mfc_http.dir/header_map.cc.o.d"
  "CMakeFiles/mfc_http.dir/html.cc.o"
  "CMakeFiles/mfc_http.dir/html.cc.o.d"
  "CMakeFiles/mfc_http.dir/message.cc.o"
  "CMakeFiles/mfc_http.dir/message.cc.o.d"
  "CMakeFiles/mfc_http.dir/parser.cc.o"
  "CMakeFiles/mfc_http.dir/parser.cc.o.d"
  "CMakeFiles/mfc_http.dir/status.cc.o"
  "CMakeFiles/mfc_http.dir/status.cc.o.d"
  "CMakeFiles/mfc_http.dir/url.cc.o"
  "CMakeFiles/mfc_http.dir/url.cc.o.d"
  "libmfc_http.a"
  "libmfc_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
