file(REMOVE_RECURSE
  "libmfc_telemetry.a"
)
