# Empty compiler generated dependencies file for mfc_telemetry.
# This may be replaced when dependencies are built.
