file(REMOVE_RECURSE
  "CMakeFiles/mfc_telemetry.dir/arrival_log.cc.o"
  "CMakeFiles/mfc_telemetry.dir/arrival_log.cc.o.d"
  "CMakeFiles/mfc_telemetry.dir/resource_monitor.cc.o"
  "CMakeFiles/mfc_telemetry.dir/resource_monitor.cc.o.d"
  "CMakeFiles/mfc_telemetry.dir/stats.cc.o"
  "CMakeFiles/mfc_telemetry.dir/stats.cc.o.d"
  "CMakeFiles/mfc_telemetry.dir/time_series.cc.o"
  "CMakeFiles/mfc_telemetry.dir/time_series.cc.o.d"
  "libmfc_telemetry.a"
  "libmfc_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
