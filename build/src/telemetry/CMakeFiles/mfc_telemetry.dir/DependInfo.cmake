
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/arrival_log.cc" "src/telemetry/CMakeFiles/mfc_telemetry.dir/arrival_log.cc.o" "gcc" "src/telemetry/CMakeFiles/mfc_telemetry.dir/arrival_log.cc.o.d"
  "/root/repo/src/telemetry/resource_monitor.cc" "src/telemetry/CMakeFiles/mfc_telemetry.dir/resource_monitor.cc.o" "gcc" "src/telemetry/CMakeFiles/mfc_telemetry.dir/resource_monitor.cc.o.d"
  "/root/repo/src/telemetry/stats.cc" "src/telemetry/CMakeFiles/mfc_telemetry.dir/stats.cc.o" "gcc" "src/telemetry/CMakeFiles/mfc_telemetry.dir/stats.cc.o.d"
  "/root/repo/src/telemetry/time_series.cc" "src/telemetry/CMakeFiles/mfc_telemetry.dir/time_series.cc.o" "gcc" "src/telemetry/CMakeFiles/mfc_telemetry.dir/time_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mfc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
