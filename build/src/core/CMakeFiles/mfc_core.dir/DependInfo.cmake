
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coordinator.cc" "src/core/CMakeFiles/mfc_core.dir/coordinator.cc.o" "gcc" "src/core/CMakeFiles/mfc_core.dir/coordinator.cc.o.d"
  "/root/repo/src/core/crawler.cc" "src/core/CMakeFiles/mfc_core.dir/crawler.cc.o" "gcc" "src/core/CMakeFiles/mfc_core.dir/crawler.cc.o.d"
  "/root/repo/src/core/experiment_runner.cc" "src/core/CMakeFiles/mfc_core.dir/experiment_runner.cc.o" "gcc" "src/core/CMakeFiles/mfc_core.dir/experiment_runner.cc.o.d"
  "/root/repo/src/core/export.cc" "src/core/CMakeFiles/mfc_core.dir/export.cc.o" "gcc" "src/core/CMakeFiles/mfc_core.dir/export.cc.o.d"
  "/root/repo/src/core/inference.cc" "src/core/CMakeFiles/mfc_core.dir/inference.cc.o" "gcc" "src/core/CMakeFiles/mfc_core.dir/inference.cc.o.d"
  "/root/repo/src/core/population.cc" "src/core/CMakeFiles/mfc_core.dir/population.cc.o" "gcc" "src/core/CMakeFiles/mfc_core.dir/population.cc.o.d"
  "/root/repo/src/core/sim_testbed.cc" "src/core/CMakeFiles/mfc_core.dir/sim_testbed.cc.o" "gcc" "src/core/CMakeFiles/mfc_core.dir/sim_testbed.cc.o.d"
  "/root/repo/src/core/sync_scheduler.cc" "src/core/CMakeFiles/mfc_core.dir/sync_scheduler.cc.o" "gcc" "src/core/CMakeFiles/mfc_core.dir/sync_scheduler.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/mfc_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/mfc_core.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mfc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/mfc_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mfc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/content/CMakeFiles/mfc_content.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/mfc_server.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/mfc_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
