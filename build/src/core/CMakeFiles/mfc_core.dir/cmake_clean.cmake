file(REMOVE_RECURSE
  "CMakeFiles/mfc_core.dir/coordinator.cc.o"
  "CMakeFiles/mfc_core.dir/coordinator.cc.o.d"
  "CMakeFiles/mfc_core.dir/crawler.cc.o"
  "CMakeFiles/mfc_core.dir/crawler.cc.o.d"
  "CMakeFiles/mfc_core.dir/experiment_runner.cc.o"
  "CMakeFiles/mfc_core.dir/experiment_runner.cc.o.d"
  "CMakeFiles/mfc_core.dir/export.cc.o"
  "CMakeFiles/mfc_core.dir/export.cc.o.d"
  "CMakeFiles/mfc_core.dir/inference.cc.o"
  "CMakeFiles/mfc_core.dir/inference.cc.o.d"
  "CMakeFiles/mfc_core.dir/population.cc.o"
  "CMakeFiles/mfc_core.dir/population.cc.o.d"
  "CMakeFiles/mfc_core.dir/sim_testbed.cc.o"
  "CMakeFiles/mfc_core.dir/sim_testbed.cc.o.d"
  "CMakeFiles/mfc_core.dir/sync_scheduler.cc.o"
  "CMakeFiles/mfc_core.dir/sync_scheduler.cc.o.d"
  "CMakeFiles/mfc_core.dir/types.cc.o"
  "CMakeFiles/mfc_core.dir/types.cc.o.d"
  "libmfc_core.a"
  "libmfc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
