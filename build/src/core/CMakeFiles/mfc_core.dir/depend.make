# Empty dependencies file for mfc_core.
# This may be replaced when dependencies are built.
