# Empty dependencies file for mfc_sim.
# This may be replaced when dependencies are built.
