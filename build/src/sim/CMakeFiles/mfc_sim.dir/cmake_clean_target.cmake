file(REMOVE_RECURSE
  "libmfc_sim.a"
)
