file(REMOVE_RECURSE
  "CMakeFiles/mfc_sim.dir/distributions.cc.o"
  "CMakeFiles/mfc_sim.dir/distributions.cc.o.d"
  "CMakeFiles/mfc_sim.dir/event_loop.cc.o"
  "CMakeFiles/mfc_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/mfc_sim.dir/rng.cc.o"
  "CMakeFiles/mfc_sim.dir/rng.cc.o.d"
  "libmfc_sim.a"
  "libmfc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
