file(REMOVE_RECURSE
  "libmfc_baseline.a"
)
