file(REMOVE_RECURSE
  "CMakeFiles/mfc_baseline.dir/closed_loop_loadgen.cc.o"
  "CMakeFiles/mfc_baseline.dir/closed_loop_loadgen.cc.o.d"
  "CMakeFiles/mfc_baseline.dir/keynote_prober.cc.o"
  "CMakeFiles/mfc_baseline.dir/keynote_prober.cc.o.d"
  "libmfc_baseline.a"
  "libmfc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
