# Empty compiler generated dependencies file for mfc_baseline.
# This may be replaced when dependencies are built.
