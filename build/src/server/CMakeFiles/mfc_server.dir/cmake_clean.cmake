file(REMOVE_RECURSE
  "CMakeFiles/mfc_server.dir/background_traffic.cc.o"
  "CMakeFiles/mfc_server.dir/background_traffic.cc.o.d"
  "CMakeFiles/mfc_server.dir/cluster.cc.o"
  "CMakeFiles/mfc_server.dir/cluster.cc.o.d"
  "CMakeFiles/mfc_server.dir/database.cc.o"
  "CMakeFiles/mfc_server.dir/database.cc.o.d"
  "CMakeFiles/mfc_server.dir/lru_cache.cc.o"
  "CMakeFiles/mfc_server.dir/lru_cache.cc.o.d"
  "CMakeFiles/mfc_server.dir/resources.cc.o"
  "CMakeFiles/mfc_server.dir/resources.cc.o.d"
  "CMakeFiles/mfc_server.dir/synthetic_server.cc.o"
  "CMakeFiles/mfc_server.dir/synthetic_server.cc.o.d"
  "CMakeFiles/mfc_server.dir/web_server.cc.o"
  "CMakeFiles/mfc_server.dir/web_server.cc.o.d"
  "libmfc_server.a"
  "libmfc_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
