# Empty compiler generated dependencies file for mfc_server.
# This may be replaced when dependencies are built.
