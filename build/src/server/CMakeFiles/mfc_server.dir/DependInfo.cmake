
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/background_traffic.cc" "src/server/CMakeFiles/mfc_server.dir/background_traffic.cc.o" "gcc" "src/server/CMakeFiles/mfc_server.dir/background_traffic.cc.o.d"
  "/root/repo/src/server/cluster.cc" "src/server/CMakeFiles/mfc_server.dir/cluster.cc.o" "gcc" "src/server/CMakeFiles/mfc_server.dir/cluster.cc.o.d"
  "/root/repo/src/server/database.cc" "src/server/CMakeFiles/mfc_server.dir/database.cc.o" "gcc" "src/server/CMakeFiles/mfc_server.dir/database.cc.o.d"
  "/root/repo/src/server/lru_cache.cc" "src/server/CMakeFiles/mfc_server.dir/lru_cache.cc.o" "gcc" "src/server/CMakeFiles/mfc_server.dir/lru_cache.cc.o.d"
  "/root/repo/src/server/resources.cc" "src/server/CMakeFiles/mfc_server.dir/resources.cc.o" "gcc" "src/server/CMakeFiles/mfc_server.dir/resources.cc.o.d"
  "/root/repo/src/server/synthetic_server.cc" "src/server/CMakeFiles/mfc_server.dir/synthetic_server.cc.o" "gcc" "src/server/CMakeFiles/mfc_server.dir/synthetic_server.cc.o.d"
  "/root/repo/src/server/web_server.cc" "src/server/CMakeFiles/mfc_server.dir/web_server.cc.o" "gcc" "src/server/CMakeFiles/mfc_server.dir/web_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mfc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/mfc_http.dir/DependInfo.cmake"
  "/root/repo/build/src/content/CMakeFiles/mfc_content.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/mfc_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
