file(REMOVE_RECURSE
  "libmfc_server.a"
)
