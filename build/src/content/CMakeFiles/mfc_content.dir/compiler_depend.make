# Empty compiler generated dependencies file for mfc_content.
# This may be replaced when dependencies are built.
