file(REMOVE_RECURSE
  "CMakeFiles/mfc_content.dir/object_store.cc.o"
  "CMakeFiles/mfc_content.dir/object_store.cc.o.d"
  "CMakeFiles/mfc_content.dir/site_generator.cc.o"
  "CMakeFiles/mfc_content.dir/site_generator.cc.o.d"
  "libmfc_content.a"
  "libmfc_content.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
