file(REMOVE_RECURSE
  "libmfc_content.a"
)
