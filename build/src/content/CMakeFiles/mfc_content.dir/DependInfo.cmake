
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/content/object_store.cc" "src/content/CMakeFiles/mfc_content.dir/object_store.cc.o" "gcc" "src/content/CMakeFiles/mfc_content.dir/object_store.cc.o.d"
  "/root/repo/src/content/site_generator.cc" "src/content/CMakeFiles/mfc_content.dir/site_generator.cc.o" "gcc" "src/content/CMakeFiles/mfc_content.dir/site_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/mfc_http.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mfc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
