file(REMOVE_RECURSE
  "CMakeFiles/mfc_net.dir/flow_network.cc.o"
  "CMakeFiles/mfc_net.dir/flow_network.cc.o.d"
  "CMakeFiles/mfc_net.dir/wide_area.cc.o"
  "CMakeFiles/mfc_net.dir/wide_area.cc.o.d"
  "libmfc_net.a"
  "libmfc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
