
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/flow_network.cc" "src/net/CMakeFiles/mfc_net.dir/flow_network.cc.o" "gcc" "src/net/CMakeFiles/mfc_net.dir/flow_network.cc.o.d"
  "/root/repo/src/net/wide_area.cc" "src/net/CMakeFiles/mfc_net.dir/wide_area.cc.o" "gcc" "src/net/CMakeFiles/mfc_net.dir/wide_area.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mfc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
