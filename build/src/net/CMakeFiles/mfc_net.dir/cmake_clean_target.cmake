file(REMOVE_RECURSE
  "libmfc_net.a"
)
