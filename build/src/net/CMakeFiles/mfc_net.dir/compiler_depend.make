# Empty compiler generated dependencies file for mfc_net.
# This may be replaced when dependencies are built.
