file(REMOVE_RECURSE
  "CMakeFiles/fig6_small_query_fcgi.dir/fig6_small_query_fcgi.cc.o"
  "CMakeFiles/fig6_small_query_fcgi.dir/fig6_small_query_fcgi.cc.o.d"
  "fig6_small_query_fcgi"
  "fig6_small_query_fcgi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_small_query_fcgi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
