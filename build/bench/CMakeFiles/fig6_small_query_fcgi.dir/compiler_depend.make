# Empty compiler generated dependencies file for fig6_small_query_fcgi.
# This may be replaced when dependencies are built.
