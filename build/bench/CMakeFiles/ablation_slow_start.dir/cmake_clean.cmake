file(REMOVE_RECURSE
  "CMakeFiles/ablation_slow_start.dir/ablation_slow_start.cc.o"
  "CMakeFiles/ablation_slow_start.dir/ablation_slow_start.cc.o.d"
  "ablation_slow_start"
  "ablation_slow_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slow_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
