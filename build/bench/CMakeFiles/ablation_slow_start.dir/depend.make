# Empty dependencies file for ablation_slow_start.
# This may be replaced when dependencies are built.
