file(REMOVE_RECURSE
  "CMakeFiles/fig3_synchronization.dir/fig3_synchronization.cc.o"
  "CMakeFiles/fig3_synchronization.dir/fig3_synchronization.cc.o.d"
  "fig3_synchronization"
  "fig3_synchronization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_synchronization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
