# Empty dependencies file for fig3_synchronization.
# This may be replaced when dependencies are built.
