# Empty compiler generated dependencies file for fig4_tracking.
# This may be replaced when dependencies are built.
