file(REMOVE_RECURSE
  "CMakeFiles/fig4_tracking.dir/fig4_tracking.cc.o"
  "CMakeFiles/fig4_tracking.dir/fig4_tracking.cc.o.d"
  "fig4_tracking"
  "fig4_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
