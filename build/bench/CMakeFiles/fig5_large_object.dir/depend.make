# Empty dependencies file for fig5_large_object.
# This may be replaced when dependencies are built.
