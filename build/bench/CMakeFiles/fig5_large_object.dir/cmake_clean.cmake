file(REMOVE_RECURSE
  "CMakeFiles/fig5_large_object.dir/fig5_large_object.cc.o"
  "CMakeFiles/fig5_large_object.dir/fig5_large_object.cc.o.d"
  "fig5_large_object"
  "fig5_large_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_large_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
