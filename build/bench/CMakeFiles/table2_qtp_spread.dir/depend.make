# Empty dependencies file for table2_qtp_spread.
# This may be replaced when dependencies are built.
