file(REMOVE_RECURSE
  "CMakeFiles/table2_qtp_spread.dir/table2_qtp_spread.cc.o"
  "CMakeFiles/table2_qtp_spread.dir/table2_qtp_spread.cc.o.d"
  "table2_qtp_spread"
  "table2_qtp_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_qtp_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
