# Empty dependencies file for table3_universities.
# This may be replaced when dependencies are built.
