
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_universities.cc" "bench/CMakeFiles/table3_universities.dir/table3_universities.cc.o" "gcc" "bench/CMakeFiles/table3_universities.dir/table3_universities.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mfc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mfc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mfc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/mfc_server.dir/DependInfo.cmake"
  "/root/repo/build/src/content/CMakeFiles/mfc_content.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/mfc_http.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/mfc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mfc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
