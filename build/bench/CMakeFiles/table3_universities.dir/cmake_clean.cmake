file(REMOVE_RECURSE
  "CMakeFiles/table3_universities.dir/table3_universities.cc.o"
  "CMakeFiles/table3_universities.dir/table3_universities.cc.o.d"
  "table3_universities"
  "table3_universities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_universities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
