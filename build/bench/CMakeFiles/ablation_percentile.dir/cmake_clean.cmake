file(REMOVE_RECURSE
  "CMakeFiles/ablation_percentile.dir/ablation_percentile.cc.o"
  "CMakeFiles/ablation_percentile.dir/ablation_percentile.cc.o.d"
  "ablation_percentile"
  "ablation_percentile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_percentile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
