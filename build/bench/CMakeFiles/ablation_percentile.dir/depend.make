# Empty dependencies file for ablation_percentile.
# This may be replaced when dependencies are built.
