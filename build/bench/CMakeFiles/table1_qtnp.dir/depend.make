# Empty dependencies file for table1_qtnp.
# This may be replaced when dependencies are built.
