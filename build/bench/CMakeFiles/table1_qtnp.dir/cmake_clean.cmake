file(REMOVE_RECURSE
  "CMakeFiles/table1_qtnp.dir/table1_qtnp.cc.o"
  "CMakeFiles/table1_qtnp.dir/table1_qtnp.cc.o.d"
  "table1_qtnp"
  "table1_qtnp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_qtnp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
