# Empty compiler generated dependencies file for ablation_check_phase.
# This may be replaced when dependencies are built.
