file(REMOVE_RECURSE
  "CMakeFiles/ablation_check_phase.dir/ablation_check_phase.cc.o"
  "CMakeFiles/ablation_check_phase.dir/ablation_check_phase.cc.o.d"
  "ablation_check_phase"
  "ablation_check_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_check_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
