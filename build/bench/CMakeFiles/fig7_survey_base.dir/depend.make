# Empty dependencies file for fig7_survey_base.
# This may be replaced when dependencies are built.
