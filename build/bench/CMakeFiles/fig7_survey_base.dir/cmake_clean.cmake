file(REMOVE_RECURSE
  "CMakeFiles/fig7_survey_base.dir/fig7_survey_base.cc.o"
  "CMakeFiles/fig7_survey_base.dir/fig7_survey_base.cc.o.d"
  "fig7_survey_base"
  "fig7_survey_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_survey_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
