# Empty compiler generated dependencies file for table4_startups.
# This may be replaced when dependencies are built.
