file(REMOVE_RECURSE
  "CMakeFiles/table4_startups.dir/table4_startups.cc.o"
  "CMakeFiles/table4_startups.dir/table4_startups.cc.o.d"
  "table4_startups"
  "table4_startups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_startups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
