# Empty compiler generated dependencies file for fig8_survey_query.
# This may be replaced when dependencies are built.
