file(REMOVE_RECURSE
  "CMakeFiles/fig8_survey_query.dir/fig8_survey_query.cc.o"
  "CMakeFiles/fig8_survey_query.dir/fig8_survey_query.cc.o.d"
  "fig8_survey_query"
  "fig8_survey_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_survey_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
