# Empty compiler generated dependencies file for fig9_survey_large.
# This may be replaced when dependencies are built.
