# Empty dependencies file for ablation_measurers.
# This may be replaced when dependencies are built.
