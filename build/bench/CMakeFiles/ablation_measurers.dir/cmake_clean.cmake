file(REMOVE_RECURSE
  "CMakeFiles/ablation_measurers.dir/ablation_measurers.cc.o"
  "CMakeFiles/ablation_measurers.dir/ablation_measurers.cc.o.d"
  "ablation_measurers"
  "ablation_measurers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_measurers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
