file(REMOVE_RECURSE
  "CMakeFiles/table5_phishing.dir/table5_phishing.cc.o"
  "CMakeFiles/table5_phishing.dir/table5_phishing.cc.o.d"
  "table5_phishing"
  "table5_phishing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_phishing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
