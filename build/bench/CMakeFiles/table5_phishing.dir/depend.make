# Empty dependencies file for table5_phishing.
# This may be replaced when dependencies are built.
