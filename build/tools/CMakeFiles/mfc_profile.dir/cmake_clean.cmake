file(REMOVE_RECURSE
  "CMakeFiles/mfc_profile.dir/mfc_profile.cc.o"
  "CMakeFiles/mfc_profile.dir/mfc_profile.cc.o.d"
  "mfc_profile"
  "mfc_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
