# Empty compiler generated dependencies file for mfc_profile.
# This may be replaced when dependencies are built.
