# Empty dependencies file for staggered_crowd.
# This may be replaced when dependencies are built.
