file(REMOVE_RECURSE
  "CMakeFiles/staggered_crowd.dir/staggered_crowd.cpp.o"
  "CMakeFiles/staggered_crowd.dir/staggered_crowd.cpp.o.d"
  "staggered_crowd"
  "staggered_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staggered_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
