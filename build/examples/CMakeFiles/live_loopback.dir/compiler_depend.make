# Empty compiler generated dependencies file for live_loopback.
# This may be replaced when dependencies are built.
