file(REMOVE_RECURSE
  "CMakeFiles/live_loopback.dir/live_loopback.cpp.o"
  "CMakeFiles/live_loopback.dir/live_loopback.cpp.o.d"
  "live_loopback"
  "live_loopback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_loopback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
