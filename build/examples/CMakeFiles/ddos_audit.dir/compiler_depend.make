# Empty compiler generated dependencies file for ddos_audit.
# This may be replaced when dependencies are built.
