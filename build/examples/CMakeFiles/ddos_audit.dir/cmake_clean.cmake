file(REMOVE_RECURSE
  "CMakeFiles/ddos_audit.dir/ddos_audit.cpp.o"
  "CMakeFiles/ddos_audit.dir/ddos_audit.cpp.o.d"
  "ddos_audit"
  "ddos_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
