file(REMOVE_RECURSE
  "CMakeFiles/mfc_content_tests.dir/content/content_test.cc.o"
  "CMakeFiles/mfc_content_tests.dir/content/content_test.cc.o.d"
  "mfc_content_tests"
  "mfc_content_tests.pdb"
  "mfc_content_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_content_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
