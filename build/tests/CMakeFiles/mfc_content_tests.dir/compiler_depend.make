# Empty compiler generated dependencies file for mfc_content_tests.
# This may be replaced when dependencies are built.
