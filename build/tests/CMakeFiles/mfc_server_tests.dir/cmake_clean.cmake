file(REMOVE_RECURSE
  "CMakeFiles/mfc_server_tests.dir/server/lru_database_test.cc.o"
  "CMakeFiles/mfc_server_tests.dir/server/lru_database_test.cc.o.d"
  "CMakeFiles/mfc_server_tests.dir/server/resources_test.cc.o"
  "CMakeFiles/mfc_server_tests.dir/server/resources_test.cc.o.d"
  "CMakeFiles/mfc_server_tests.dir/server/server_misc_test.cc.o"
  "CMakeFiles/mfc_server_tests.dir/server/server_misc_test.cc.o.d"
  "CMakeFiles/mfc_server_tests.dir/server/web_server_test.cc.o"
  "CMakeFiles/mfc_server_tests.dir/server/web_server_test.cc.o.d"
  "mfc_server_tests"
  "mfc_server_tests.pdb"
  "mfc_server_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_server_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
