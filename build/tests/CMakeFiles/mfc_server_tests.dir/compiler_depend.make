# Empty compiler generated dependencies file for mfc_server_tests.
# This may be replaced when dependencies are built.
