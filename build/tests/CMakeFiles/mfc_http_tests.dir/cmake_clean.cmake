file(REMOVE_RECURSE
  "CMakeFiles/mfc_http_tests.dir/http/html_test.cc.o"
  "CMakeFiles/mfc_http_tests.dir/http/html_test.cc.o.d"
  "CMakeFiles/mfc_http_tests.dir/http/message_test.cc.o"
  "CMakeFiles/mfc_http_tests.dir/http/message_test.cc.o.d"
  "CMakeFiles/mfc_http_tests.dir/http/parser_test.cc.o"
  "CMakeFiles/mfc_http_tests.dir/http/parser_test.cc.o.d"
  "CMakeFiles/mfc_http_tests.dir/http/url_test.cc.o"
  "CMakeFiles/mfc_http_tests.dir/http/url_test.cc.o.d"
  "mfc_http_tests"
  "mfc_http_tests.pdb"
  "mfc_http_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_http_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
