# Empty compiler generated dependencies file for mfc_http_tests.
# This may be replaced when dependencies are built.
