file(REMOVE_RECURSE
  "CMakeFiles/mfc_core_tests.dir/core/coordinator_test.cc.o"
  "CMakeFiles/mfc_core_tests.dir/core/coordinator_test.cc.o.d"
  "CMakeFiles/mfc_core_tests.dir/core/crawler_test.cc.o"
  "CMakeFiles/mfc_core_tests.dir/core/crawler_test.cc.o.d"
  "CMakeFiles/mfc_core_tests.dir/core/export_test.cc.o"
  "CMakeFiles/mfc_core_tests.dir/core/export_test.cc.o.d"
  "CMakeFiles/mfc_core_tests.dir/core/inference_population_test.cc.o"
  "CMakeFiles/mfc_core_tests.dir/core/inference_population_test.cc.o.d"
  "CMakeFiles/mfc_core_tests.dir/core/integration_test.cc.o"
  "CMakeFiles/mfc_core_tests.dir/core/integration_test.cc.o.d"
  "CMakeFiles/mfc_core_tests.dir/core/robustness_test.cc.o"
  "CMakeFiles/mfc_core_tests.dir/core/robustness_test.cc.o.d"
  "CMakeFiles/mfc_core_tests.dir/core/sim_testbed_test.cc.o"
  "CMakeFiles/mfc_core_tests.dir/core/sim_testbed_test.cc.o.d"
  "CMakeFiles/mfc_core_tests.dir/core/sync_scheduler_test.cc.o"
  "CMakeFiles/mfc_core_tests.dir/core/sync_scheduler_test.cc.o.d"
  "mfc_core_tests"
  "mfc_core_tests.pdb"
  "mfc_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
