# Empty dependencies file for mfc_core_tests.
# This may be replaced when dependencies are built.
