file(REMOVE_RECURSE
  "CMakeFiles/mfc_rt_tests.dir/rt/live_mfc_test.cc.o"
  "CMakeFiles/mfc_rt_tests.dir/rt/live_mfc_test.cc.o.d"
  "CMakeFiles/mfc_rt_tests.dir/rt/rt_core_test.cc.o"
  "CMakeFiles/mfc_rt_tests.dir/rt/rt_core_test.cc.o.d"
  "mfc_rt_tests"
  "mfc_rt_tests.pdb"
  "mfc_rt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_rt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
