# Empty compiler generated dependencies file for mfc_rt_tests.
# This may be replaced when dependencies are built.
