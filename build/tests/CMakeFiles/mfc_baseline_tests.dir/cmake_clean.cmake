file(REMOVE_RECURSE
  "CMakeFiles/mfc_baseline_tests.dir/baseline/baseline_test.cc.o"
  "CMakeFiles/mfc_baseline_tests.dir/baseline/baseline_test.cc.o.d"
  "mfc_baseline_tests"
  "mfc_baseline_tests.pdb"
  "mfc_baseline_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_baseline_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
