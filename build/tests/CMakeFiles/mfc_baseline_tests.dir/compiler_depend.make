# Empty compiler generated dependencies file for mfc_baseline_tests.
# This may be replaced when dependencies are built.
