# Empty compiler generated dependencies file for mfc_sim_tests.
# This may be replaced when dependencies are built.
