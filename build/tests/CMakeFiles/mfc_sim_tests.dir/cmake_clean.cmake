file(REMOVE_RECURSE
  "CMakeFiles/mfc_sim_tests.dir/sim/distributions_test.cc.o"
  "CMakeFiles/mfc_sim_tests.dir/sim/distributions_test.cc.o.d"
  "CMakeFiles/mfc_sim_tests.dir/sim/event_loop_test.cc.o"
  "CMakeFiles/mfc_sim_tests.dir/sim/event_loop_test.cc.o.d"
  "CMakeFiles/mfc_sim_tests.dir/sim/rng_test.cc.o"
  "CMakeFiles/mfc_sim_tests.dir/sim/rng_test.cc.o.d"
  "mfc_sim_tests"
  "mfc_sim_tests.pdb"
  "mfc_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
