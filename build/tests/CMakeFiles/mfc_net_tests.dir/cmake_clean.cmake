file(REMOVE_RECURSE
  "CMakeFiles/mfc_net_tests.dir/net/flow_network_test.cc.o"
  "CMakeFiles/mfc_net_tests.dir/net/flow_network_test.cc.o.d"
  "CMakeFiles/mfc_net_tests.dir/net/wide_area_test.cc.o"
  "CMakeFiles/mfc_net_tests.dir/net/wide_area_test.cc.o.d"
  "mfc_net_tests"
  "mfc_net_tests.pdb"
  "mfc_net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
