# Empty compiler generated dependencies file for mfc_net_tests.
# This may be replaced when dependencies are built.
