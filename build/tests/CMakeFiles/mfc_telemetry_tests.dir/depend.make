# Empty dependencies file for mfc_telemetry_tests.
# This may be replaced when dependencies are built.
