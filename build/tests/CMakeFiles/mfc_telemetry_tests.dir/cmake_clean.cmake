file(REMOVE_RECURSE
  "CMakeFiles/mfc_telemetry_tests.dir/telemetry/stats_test.cc.o"
  "CMakeFiles/mfc_telemetry_tests.dir/telemetry/stats_test.cc.o.d"
  "CMakeFiles/mfc_telemetry_tests.dir/telemetry/telemetry_misc_test.cc.o"
  "CMakeFiles/mfc_telemetry_tests.dir/telemetry/telemetry_misc_test.cc.o.d"
  "mfc_telemetry_tests"
  "mfc_telemetry_tests.pdb"
  "mfc_telemetry_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_telemetry_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
