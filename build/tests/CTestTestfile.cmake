# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mfc_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/mfc_telemetry_tests[1]_include.cmake")
include("/root/repo/build/tests/mfc_http_tests[1]_include.cmake")
include("/root/repo/build/tests/mfc_net_tests[1]_include.cmake")
include("/root/repo/build/tests/mfc_server_tests[1]_include.cmake")
include("/root/repo/build/tests/mfc_content_tests[1]_include.cmake")
include("/root/repo/build/tests/mfc_core_tests[1]_include.cmake")
include("/root/repo/build/tests/mfc_baseline_tests[1]_include.cmake")
include("/root/repo/build/tests/mfc_rt_tests[1]_include.cmake")
