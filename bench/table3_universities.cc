// Table 3 (+ Univ-1 from Section 4.2): MFC against the three university
// servers under their observed background-traffic regimes.
//
//   Univ-1: tiny research-group server, std MFC θ=100 ms: everything stops
//           at small crowds; bandwidth the least bad.
//   Univ-2: 1 Gbps link but an old software configuration: all stages stall
//           around 110-150 (MFC-mr, θ=250 ms); bg 2.9-4.2 req/s.
//   Univ-3: Sun V240: Base 90-110/NoStop, Small Query ~30, Large Object
//           NoStop (MFC-mr, θ=250 ms); bg 12.5-20.3 req/s, morning runs stop
//           earlier on Base.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiment_runner.h"

namespace mfc {
namespace {

void RunRow(const char* site, const char* when, const SiteInstance& instance, double bg_rps,
            SimDuration theta, size_t requests_per_client, size_t max_crowd, uint64_t seed) {
  DeploymentOptions options;
  options.seed = seed;
  options.fleet_size = 85;
  options.background_rps = bg_rps;
  Deployment deployment(instance, options);
  deployment.StartBackground();
  ExperimentConfig config;
  config.threshold = theta;
  config.requests_per_client = requests_per_client;
  config.max_crowd = max_crowd;
  config.crowd_step = requests_per_client == 1 ? 5 : 10;
  ExperimentResult result =
      deployment.RunMfc(config, deployment.ObjectsFromContent(), seed + 5);
  deployment.StopBackground();
  uint64_t mfc_requests = result.TotalRequests();
  uint64_t bg_requests = deployment.BackgroundRequests();
  double mfc_fraction = mfc_requests + bg_requests == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(mfc_requests) /
                                  static_cast<double>(mfc_requests + bg_requests);
  printf("%-8s %-14s %-7.1f %-12s %-12s %-14s %-10.0f%%\n", site, when, bg_rps,
         StopLabel(result.Stage(StageKind::kBase)).c_str(),
         StopLabel(result.Stage(StageKind::kSmallQuery)).c_str(),
         StopLabel(result.Stage(StageKind::kLargeObject)).c_str(), mfc_fraction);
}

}  // namespace
}  // namespace mfc

int main() {
  mfc::PrintHeader("University servers under background traffic",
                   "Table 3 + Univ-1 (Section 4.2)");
  printf("\n%-8s %-14s %-7s %-12s %-12s %-14s %-10s\n", "site", "time of day", "bg r/s",
         "Base", "SmallQry", "LargeObj", "MFC traffic");

  // Univ-1: standard MFC, θ=100 ms, almost no background traffic.
  mfc::RunRow("Univ-1", "afternoon", mfc::MakeUniv1Profile(), 0.15, mfc::Millis(100), 1, 50,
              11);

  // Univ-2: MFC-mr, θ=250 ms, three times of day.
  mfc::RunRow("Univ-2", "morning", mfc::MakeUniv2Profile(), 4.2, mfc::Millis(250), 2, 150, 21);
  mfc::RunRow("Univ-2", "afternoon", mfc::MakeUniv2Profile(), 2.9, mfc::Millis(250), 2, 150,
              22);
  mfc::RunRow("Univ-2", "late evening", mfc::MakeUniv2Profile(), 3.5, mfc::Millis(250), 2, 150,
              23);

  // Univ-3: MFC-mr, θ=250 ms, heavier and more variable background load.
  mfc::RunRow("Univ-3", "morning", mfc::MakeUniv3Profile(), 20.3, mfc::Millis(250), 2, 150,
              31);
  mfc::RunRow("Univ-3", "afternoon", mfc::MakeUniv3Profile(), 18.7, mfc::Millis(250), 2, 130,
              32);
  mfc::RunRow("Univ-3", "late evening", mfc::MakeUniv3Profile(), 12.5, mfc::Millis(250), 2, 150,
              33);

  printf("\nPaper shape: Univ-1 stops everywhere at 5-25; Univ-2 stops (or nearly\n"
         "stops) at 110-150 on every stage regardless of stage type; Univ-3 Base\n"
         "stops at 90-110 when busy / NoStop late evening, Small Query at ~30 at all\n"
         "times, Large Object never.\n");
  return 0;
}
