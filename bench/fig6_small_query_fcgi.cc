// Figure 6: the Small Query lab workload against the FastCGI back-end —
// every client issues the same 50,000-row aggregate query (response < 100 B).
// FastCGI forks a process per in-flight request, each inheriting the parent
// image (footnote 1), so memory climbs with the crowd until the box thrashes;
// response time rises with it. The Mongrel configuration (fixed worker pool)
// is printed alongside: it stays flat, as the paper's text reports.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiment_runner.h"
#include "src/core/sync_scheduler.h"
#include "src/telemetry/resource_monitor.h"
#include "src/telemetry/stats.h"

namespace mfc {
namespace {

struct Row {
  size_t crowd;
  double median_ms;
  double cpu_pct;
  double mem_mb;
};

std::vector<Row> RunVariant(CgiModel model) {
  SiteInstance instance = MakeLabValidationProfile();
  instance.server.cgi_model = model;
  DeploymentOptions options;
  options.seed = 23;
  options.fleet_size = 55;
  options.lan_clients = true;
  options.jitter_sigma = 0.0;
  Deployment deployment(instance, options);
  SimTestbed& testbed = deployment.Testbed();

  StageObjects objects = deployment.ObjectsFromContent();
  HttpRequest request = HttpRequest::For(HttpMethod::kGet, *objects.small_query);

  // atop-style sampler on the server box.
  ResourceMonitor monitor(testbed.Loop(), Millis(20));
  monitor.AddGauge("cpu", [&] { return deployment.Server().CpuUtilization(); });
  monitor.AddGauge("mem", [&] { return deployment.Server().MemoryUsedBytes(); });
  monitor.Start();

  const size_t kClients = 50;
  std::vector<double> base(kClients, 0.0);
  std::vector<ClientLatencyEstimate> latencies;
  for (size_t i = 0; i < kClients; ++i) {
    latencies.push_back(
        ClientLatencyEstimate{i, testbed.MeasureCoordRtt(i), testbed.MeasureTargetRtt(i)});
    base[i] = testbed.FetchOnce(i, request).response_time;
  }

  std::vector<Row> rows;
  for (size_t crowd = 5; crowd <= 50; crowd += 5) {
    SimTime arrival = testbed.Now() + 15.0;
    std::vector<ClientLatencyEstimate> chosen(latencies.begin(),
                                              latencies.begin() + static_cast<long>(crowd));
    auto dispatch = ComputeDispatchTimes(chosen, arrival);
    std::vector<CrowdRequestPlan> plans;
    for (size_t i = 0; i < crowd; ++i) {
      CrowdRequestPlan plan;
      plan.client_id = i;
      plan.request = request;
      plan.command_send_time = dispatch[i].command_send_time;
      plan.intended_arrival = dispatch[i].intended_arrival;
      plans.push_back(plan);
    }
    auto samples = testbed.ExecuteCrowd(plans, arrival + 11.0);
    std::vector<double> normalized;
    for (const auto& sample : samples) {
      normalized.push_back(sample.response_time - base[sample.client_id]);
    }
    Row row;
    row.crowd = crowd;
    row.median_ms = ToMillis(Median(normalized));
    row.cpu_pct = 100.0 * monitor.Series("cpu").MaxInWindow(arrival - 1.0, arrival + 11.0);
    row.mem_mb = monitor.Series("mem").MaxInWindow(arrival - 1.0, arrival + 11.0) / 1e6;
    rows.push_back(row);
    testbed.WaitUntil(testbed.Now() + 10.0);
  }
  monitor.Stop();
  return rows;
}

void Print(const std::string& name, const std::vector<Row>& rows) {
  printf("\n--- %s ---\n", name.c_str());
  printf("%-10s %-26s %-14s %-16s\n", "crowd", "median incr in resp (ms)", "peak cpu (%)",
         "peak memory (MB)");
  for (const Row& row : rows) {
    printf("%-10zu %-26.1f %-14.1f %-16.0f\n", row.crowd, row.median_ms, row.cpu_pct,
           row.mem_mb);
  }
}

}  // namespace
}  // namespace mfc

int main() {
  mfc::PrintHeader("Small Query lab workload (same 50k-row query, <100 B response)",
                   "Figure 6 (Section 3.2): FastCGI memory blow-up; Mongrel stays flat");
  mfc::Print("FastCGI (process per request, inherited image)",
             mfc::RunVariant(mfc::CgiModel::kFastCgi));
  mfc::Print("Mongrel (fixed worker pool) — paper: response stays within ~10 ms",
             mfc::RunVariant(mfc::CgiModel::kMongrel));
  printf("\nPaper shape: FastCGI memory grows toward ~1 GB and response time toward\n"
         "1-2 s by crowd 45-50; Mongrel memory and response time stay flat.\n");
  return 0;
}
