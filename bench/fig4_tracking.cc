// Figure 4: MFC's measured median normalized response time tracking the
// target's synthetic response-time models — (a) linear, (b) exponential —
// as a function of crowd size.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/coordinator.h"
#include "src/core/sim_testbed.h"
#include "src/core/sync_scheduler.h"
#include "src/server/synthetic_server.h"
#include "src/telemetry/stats.h"

namespace mfc {
namespace {

class LateTarget : public HttpTarget {
 public:
  HttpTarget* inner = nullptr;
  void OnRequest(const HttpRequest& request, bool is_mfc, ResponseTransport transport) override {
    inner->OnRequest(request, is_mfc, std::move(transport));
  }
};

// Runs fixed-size synchronized crowds (no stop rule: we want the full curve)
// and returns (crowd, median normalized ms) pairs.
void RunModel(const std::string& name, ResponseTimeModel model,
              ResponseTimeModel ideal /* same shape, for the printed truth */) {
  TestbedConfig config;
  config.wan.jitter_sigma = 0.02;
  LateTarget late;
  Rng fleet_rng(7);
  SimTestbed testbed(1234, config, MakePlanetLabFleet(fleet_rng, 65, 0), late);
  SyntheticModelServer server(testbed.Loop(), std::move(model), 0.002, 500.0);
  late.inner = &server;

  // Base response time per client, measured sequentially.
  const size_t kClients = 60;
  std::vector<double> base(kClients, 0.0);
  std::vector<ClientLatencyEstimate> latencies;
  HttpRequest request;
  request.method = HttpMethod::kGet;
  request.target = "/";
  for (size_t i = 0; i < kClients; ++i) {
    latencies.push_back(
        ClientLatencyEstimate{i, testbed.MeasureCoordRtt(i), testbed.MeasureTargetRtt(i)});
    base[i] = testbed.FetchOnce(i, request).response_time;
  }

  printf("\n--- %s model ---\n", name.c_str());
  printf("%-10s %-26s %-26s\n", "crowd", "measured median incr (ms)", "ideal model incr (ms)");
  for (size_t crowd = 5; crowd <= 60; crowd += 5) {
    SimTime arrival = testbed.Now() + 15.0;
    std::vector<ClientLatencyEstimate> chosen(latencies.begin(),
                                              latencies.begin() + static_cast<long>(crowd));
    auto dispatch = ComputeDispatchTimes(chosen, arrival);
    std::vector<CrowdRequestPlan> plans;
    for (size_t i = 0; i < crowd; ++i) {
      CrowdRequestPlan plan;
      plan.client_id = i;
      plan.request = request;
      plan.command_send_time = dispatch[i].command_send_time;
      plan.intended_arrival = dispatch[i].intended_arrival;
      plans.push_back(plan);
    }
    auto samples = testbed.ExecuteCrowd(plans, arrival + 11.0);
    std::vector<double> normalized;
    for (const auto& sample : samples) {
      normalized.push_back(sample.response_time - base[sample.client_id]);
    }
    printf("%-10zu %-26.1f %-26.1f\n", crowd, ToMillis(Median(normalized)),
           ToMillis(ideal(crowd)));
    testbed.WaitUntil(testbed.Now() + 10.0);
  }
}

}  // namespace
}  // namespace mfc

int main() {
  mfc::PrintHeader("Tracking synthetic response-time functions",
                   "Figure 4 (Section 3.1): median tracks linear & exponential models");
  mfc::RunModel("linear (5 ms/request)", mfc::LinearModel(0.005), mfc::LinearModel(0.005));
  mfc::RunModel("exponential", mfc::ExponentialModel(0.010, 2.3, 30),
                mfc::ExponentialModel(0.010, 2.3, 30));
  return 0;
}
