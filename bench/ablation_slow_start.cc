// Ablation: why the Large Object category requires >= 100 KB (Section 2.2.2).
//
// "We use a fairly large lower bound (100KB) on the size of the Large Object
// to allow TCP to exit slow start and fully utilize the available network
// bandwidth." Below that, transfer time is dominated by cwnd growth and a
// crowd barely moves it, so small objects cannot expose a bandwidth
// constraint. We measure single-transfer link efficiency and the crowd's
// response-time inflation as a function of object size.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/net/flow_network.h"
#include "src/sim/event_loop.h"

namespace mfc {
namespace {

// Time for one object of |bytes| over a dedicated link with slow start.
double SoloTransferTime(double bytes, double link_bps, double rtt) {
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId link = net.AddLink(link_bps);
  SimTime done = 0.0;
  net.StartFlow({link}, bytes, rtt, TcpParams{}, [&] { done = loop.Now(); });
  loop.RunUntilIdle();
  return done;
}

// Completion time of the last of |n| simultaneous transfers sharing the link.
double CrowdTransferTime(size_t n, double bytes, double link_bps, double rtt) {
  EventLoop loop;
  FlowNetwork net(loop);
  LinkId link = net.AddLink(link_bps);
  SimTime last = 0.0;
  for (size_t i = 0; i < n; ++i) {
    net.StartFlow({link}, bytes, rtt, TcpParams{}, [&] { last = loop.Now(); });
  }
  loop.RunUntilIdle();
  return last;
}

}  // namespace
}  // namespace mfc

int main() {
  mfc::PrintHeader("Ablation: object size vs slow start on a 100 Mbit/s link, RTT 80 ms",
                   "Section 2.2.2: the 100 KB Large Object lower bound");
  const double kLink = 12.5e6;
  const double kRtt = 0.080;
  printf("\n%-12s %-14s %-16s %-18s %-22s\n", "size (KB)", "solo (ms)", "ideal fluid (ms)",
         "link efficiency", "crowd-of-30 vs solo");
  for (double kb : {4.0, 16.0, 64.0, 100.0, 256.0, 512.0, 1024.0}) {
    double bytes = kb * 1024.0;
    double solo = mfc::SoloTransferTime(bytes, kLink, kRtt);
    double ideal = bytes / kLink;
    double crowd = mfc::CrowdTransferTime(30, bytes, kLink, kRtt);
    printf("%-12.0f %-14.1f %-16.1f %-16.0f%% %-22.1fx\n", kb, mfc::ToMillis(solo),
           mfc::ToMillis(ideal), 100.0 * ideal / solo, crowd / solo);
  }
  printf("\nExpected: small objects never leave slow start (single-digit link\n"
         "efficiency) and a 30-strong crowd barely moves their completion time, so\n"
         "they cannot expose a bandwidth constraint at theta=100 ms. From ~100 KB the\n"
         "crowd penalty reaches the threshold scale and keeps growing with size —\n"
         "hence the paper's 100 KB lower bound for the Large Object category.\n");
  return 0;
}
