// Table 2: synchronization quality of MFC-mr requests against the QTP
// production system (16 load-balanced servers), from the merged server logs.
// For each epoch: requests scheduled, requests seen in the logs, and the
// time spread of the middle 90% of arrivals, per stage.
//
// Paper: Base/Small Query epochs land within 0.15-1.6 s; Large Object is
// looser (up to ~3.3 s at 375 scheduled requests) because transfers perturb
// the paths the sync estimates were made on.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiment_runner.h"
#include "src/core/sync_scheduler.h"
#include "src/telemetry/arrival_log.h"

namespace mfc {
namespace {

struct EpochRow {
  size_t scheduled;
  size_t received;
  double spread90;
};

std::vector<EpochRow> RunStage(Deployment& deployment, const HttpRequest& request_template,
                               bool unique_queries) {
  SimTestbed& testbed = deployment.Testbed();
  ServerCluster* cluster = deployment.Cluster();
  const size_t kClients = 75;
  const size_t kConnections = 5;  // the October 3 experiment: 5 parallel reqs

  std::vector<ClientLatencyEstimate> latencies;
  for (size_t i = 0; i < kClients; ++i) {
    latencies.push_back(
        ClientLatencyEstimate{i, testbed.MeasureCoordRtt(i), testbed.MeasureTargetRtt(i)});
  }

  std::vector<EpochRow> rows;
  const size_t kEpochRequests[] = {25, 40, 55, 75, 100, 125, 175, 225, 275, 325, 375};
  for (size_t requests : kEpochRequests) {
    size_t clients = (requests + kConnections - 1) / kConnections;
    clients = std::min(clients, kClients);
    SimTime arrival = testbed.Now() + 15.0;
    std::vector<ClientLatencyEstimate> chosen(latencies.begin(),
                                              latencies.begin() + static_cast<long>(clients));
    auto dispatch = ComputeDispatchTimes(chosen, arrival);

    // Log watermark: arrivals after this index belong to this epoch.
    size_t log_before = cluster->MergedAccessLog().size();
    std::vector<CrowdRequestPlan> plans;
    size_t scheduled = 0;
    for (size_t i = 0; i < clients && scheduled < requests; ++i) {
      CrowdRequestPlan plan;
      plan.client_id = i;
      plan.request = request_template;
      if (unique_queries) {
        plan.request.target += "&mfc=" + std::to_string(i);
      }
      plan.command_send_time = dispatch[i].command_send_time;
      plan.intended_arrival = dispatch[i].intended_arrival;
      plan.connections = std::min(kConnections, requests - scheduled);
      scheduled += plan.connections;
      plans.push_back(plan);
    }
    testbed.ExecuteCrowd(plans, arrival + 11.0);

    auto log = cluster->MergedAccessLog();
    std::vector<SimTime> arrivals;
    for (size_t i = log_before; i < log.size(); ++i) {
      if (log[i].is_mfc) {
        arrivals.push_back(log[i].arrival);
      }
    }
    ArrivalSpread spread = AnalyzeArrivals(arrivals);
    rows.push_back(EpochRow{scheduled, spread.count, spread.middle90_spread});
    testbed.WaitUntil(testbed.Now() + 10.0);
  }
  return rows;
}

void Run() {
  PrintHeader("MFC-mr request time spread at QTP (16-server production cluster)",
              "Table 2 (Section 4.1), October 3 experiment, 5 connections/client");

  DeploymentOptions options;
  options.seed = 1003;
  options.fleet_size = 75;
  options.control_loss_rate = 0.01;  // no retransmit: some commands are lost
  options.jitter_sigma = 0.18;  // rough PlanetLab-era path variability
  Deployment deployment(MakeQtpProfile(), options);

  StageObjects objects = deployment.ObjectsFromContent();
  struct StageSpec {
    const char* name;
    HttpRequest request;
    bool unique;
  };
  std::vector<StageSpec> stages;
  stages.push_back({"Base", HttpRequest::For(HttpMethod::kHead, *objects.base_page), false});
  stages.push_back(
      {"Small Qry", HttpRequest::For(HttpMethod::kGet, *objects.small_query), true});
  stages.push_back(
      {"Large Obj", HttpRequest::For(HttpMethod::kGet, *objects.large_object), false});

  for (const StageSpec& stage : stages) {
    printf("\n--- %s stage ---\n", stage.name);
    printf("%-12s %-12s %-20s\n", "scheduled", "in logs", "90% spread (s)");
    for (const EpochRow& row : RunStage(deployment, stage.request, stage.unique)) {
      printf("%-12zu %-12zu %-20.2f\n", row.scheduled, row.received, row.spread90);
    }
  }
  printf("\nPaper shape: nearly all scheduled requests appear in the logs; Base and\n"
         "Small Query spreads stay within ~0.15-1.6 s; Large Object spreads are\n"
         "looser (up to ~3.3 s) since bulk transfers perturb the latency estimates.\n");
}

}  // namespace
}  // namespace mfc

int main() {
  mfc::Run();
  return 0;
}
