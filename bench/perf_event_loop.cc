// Perf microbench for the EventLoop slot-vector hot path (PR 1 rework):
// schedule/run churn, O(1) cancellation, and same-instant FIFO storms.
// Emits BENCH_event_loop.json so later PRs can see scheduler regressions.
//
//   perf_event_loop [--repeats=N] [--scale=X] [--out=PATH]
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bench/perf_util.h"
#include "src/sim/event_loop.h"

namespace {

// Schedule/run churn: a self-rescheduling cascade of timers, the shape the
// simulated testbed produces (every request schedules its own next step).
uint64_t RunChurn(size_t n_chains, size_t steps) {
  mfc::EventLoop loop;
  struct Chain {
    double period;
    size_t left;
    std::function<void()> step;  // stable address: rescheduled by reference
  };
  std::vector<std::unique_ptr<Chain>> chains;
  chains.reserve(n_chains);
  for (size_t c = 0; c < n_chains; ++c) {
    auto chain = std::make_unique<Chain>();
    // Stagger chains so the heap stays mixed rather than draining in bands.
    chain->period = 1e-3 * static_cast<double>(c % 97 + 1);
    chain->left = steps;
    Chain* p = chain.get();
    chain->step = [&loop, p] {
      if (p->left-- > 1) {
        loop.ScheduleAfter(p->period, p->step);
      }
    };
    loop.ScheduleAfter(p->period, p->step);
    chains.push_back(std::move(chain));
  }
  loop.RunUntilIdle();
  return loop.ExecutedCount();
}

// Cancel-heavy: schedule then cancel most events before they run — the
// testbed's kill-timer pattern (every download arms a timeout it usually
// cancels).
uint64_t RunCancelStorm(size_t n) {
  mfc::EventLoop loop;
  std::vector<mfc::EventId> ids;
  ids.reserve(n);
  uint64_t cancelled = 0;
  for (size_t round = 0; round < 8; ++round) {
    ids.clear();
    for (size_t i = 0; i < n; ++i) {
      ids.push_back(loop.ScheduleAfter(1.0 + 1e-6 * static_cast<double>(i), [] {}));
    }
    // Cancel 7 of every 8; survivors run below.
    for (size_t i = 0; i < n; ++i) {
      if (i % 8 != 0 && loop.Cancel(ids[i])) {
        ++cancelled;
      }
    }
    loop.RunUntilIdle();
  }
  return loop.ExecutedCount() + cancelled;
}

// Same-instant FIFO storm: many events at one timestamp exercise the seq
// tie-breaker and the stale-entry skip path.
uint64_t RunSameInstant(size_t n) {
  mfc::EventLoop loop;
  for (size_t round = 0; round < 16; ++round) {
    double t = static_cast<double>(round + 1);
    for (size_t i = 0; i < n; ++i) {
      loop.ScheduleAt(t, [] {});
    }
    loop.RunUntil(t);
  }
  return loop.ExecutedCount();
}

template <typename Fn>
mfc::PerfScenario Measure(const char* name, size_t repeats, Fn fn) {
  mfc::PerfScenario s;
  s.name = name;
  for (size_t r = 0; r < repeats; ++r) {
    mfc::PerfTimer timer;
    uint64_t items = fn();
    s.wall_seconds.push_back(timer.Seconds());
    assert(r == 0 || items == s.items);
    s.items = items;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  mfc::PerfArgs args = mfc::ParsePerfArgs(argc, argv, "BENCH_event_loop.json");
  if (!args.ok) {
    return 2;
  }
  auto scaled = [&args](size_t n) {
    return std::max<size_t>(1, static_cast<size_t>(static_cast<double>(n) * args.scale));
  };
  mfc::PerfReport report("event_loop", 1);
  report.Add(Measure("churn_chains", args.repeats,
                     [&] { return RunChurn(scaled(512), scaled(400)); }));
  report.Add(Measure("cancel_storm", args.repeats,
                     [&] { return RunCancelStorm(scaled(20000)); }));
  report.Add(Measure("same_instant", args.repeats,
                     [&] { return RunSameInstant(scaled(10000)); }));
  return report.Finish(args.out_path);
}
