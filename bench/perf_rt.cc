// Perf harness for the session/transport control plane (DESIGN.md §13):
// reliable control-message throughput over the in-process MemoryHub, an
// agents-per-coordinator soak, and retransmit behavior at 5%/20% injected
// loss. All scenarios run under virtual time (EventLoop + SimTimerSource),
// so the work is deterministic — wall time measures the session layer's CPU
// cost, not socket waits. Emits BENCH_rt.json.
//
//   perf_rt [--repeats=N] [--scale=X] [--out=PATH]
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "bench/perf_util.h"
#include "src/rt/fault_injector.h"
#include "src/rt/session.h"
#include "src/rt/transport.h"
#include "src/rt/wire.h"
#include "src/sim/event_loop.h"

namespace {

mfc::RetryPolicy SoakRetry() {
  mfc::RetryPolicy retry;
  retry.max_attempts = 10;
  retry.initial_backoff = mfc::Millis(25);
  retry.multiplier = 2.0;
  retry.max_backoff = mfc::Millis(200);
  return retry;
}

mfc::SessionConfig ConnConfig(uint64_t conn) {
  mfc::SessionConfig config;
  config.conn = conn;
  config.retry = SoakRetry();
  return config;
}

// Reliable control-message pump: |messages| PINGs sender -> receiver, every
// one acked, with |drop_rate| loss injected on the sender's transport.
// Returns (delivered, retransmits).
std::pair<uint64_t, uint64_t> RunPump(size_t messages, double drop_rate, uint64_t seed) {
  mfc::EventLoop loop;
  mfc::SimTimerSource clock(loop);
  mfc::MemoryHub hub(clock);
  mfc::FaultConfig faults;
  faults.drop_rate = drop_rate;
  faults.seed = seed;
  mfc::FaultInjector injector(faults);
  mfc::FaultedTransport sender_ep(hub.CreateEndpoint(),
                                  drop_rate > 0 ? &injector : nullptr);
  auto recv_ep = hub.CreateEndpoint();
  mfc::Session sender(sender_ep, ConnConfig(1));
  mfc::Session receiver(*recv_ep, ConnConfig(2));
  uint64_t delivered = 0;
  receiver.SetDeliveryHandler(
      [&](const mfc::ControlMessage&, const mfc::TransportAddress&, uint64_t) {
        ++delivered;
      });
  // Batched: keep ~64 transfers in flight so the retry queue and dedup map
  // stay realistically loaded without building a million-entry backlog.
  constexpr size_t kWindow = 64;
  size_t next = 0;
  for (; next < std::min(messages, kWindow); ++next) {
    sender.SendReliable(mfc::MsgPing{next}, recv_ep->LocalAddress());
  }
  while (sender.PendingReliable() > 0 || next < messages) {
    loop.RunUntilIdle();
    while (next < messages && sender.PendingReliable() < kWindow) {
      sender.SendReliable(mfc::MsgPing{next}, recv_ep->LocalAddress());
      ++next;
    }
  }
  return {delivered, sender.stats().retransmits};
}

// Agents-per-coordinator soak: |agents| sessions register and answer one
// ping round, all through one coordinator session — the fleet shape
// live_loopback's soak runs over real sockets, minus the HTTP side.
uint64_t RunSoak(size_t agents) {
  mfc::EventLoop loop;
  mfc::SimTimerSource clock(loop);
  mfc::MemoryHub hub(clock);
  auto coord_ep = hub.CreateEndpoint();
  mfc::TransportAddress coord_addr = coord_ep->LocalAddress();
  mfc::Session coordinator(*coord_ep, ConnConfig(1));

  struct Agent {
    std::unique_ptr<mfc::Transport> transport;
    std::unique_ptr<mfc::Session> session;
  };
  std::vector<Agent> fleet;
  std::vector<mfc::TransportAddress> agent_addrs;
  fleet.reserve(agents);
  uint64_t coordinator_received = 0;
  coordinator.SetDeliveryHandler(
      [&](const mfc::ControlMessage&, const mfc::TransportAddress&, uint64_t) {
        ++coordinator_received;
      });
  for (size_t i = 0; i < agents; ++i) {
    Agent agent;
    agent.transport = hub.CreateEndpoint();
    agent.session = std::make_unique<mfc::Session>(*agent.transport, ConnConfig(i + 2));
    mfc::Session* session = agent.session.get();
    agent.session->SetDeliveryHandler(
        [session, coord_addr](const mfc::ControlMessage& message,
                              const mfc::TransportAddress&, uint64_t) {
          if (const auto* ping = std::get_if<mfc::MsgPing>(&message)) {
            session->SendReliable(mfc::MsgPong{ping->seq}, coord_addr);
          }
        });
    agent_addrs.push_back(agent.transport->LocalAddress());
    agent.session->SendReliable(mfc::MsgRegister{i}, coord_addr);
    fleet.push_back(std::move(agent));
  }
  loop.RunUntilIdle();  // registrations converge
  for (size_t i = 0; i < agents; ++i) {
    coordinator.SendReliable(mfc::MsgPing{i}, agent_addrs[i]);
  }
  loop.RunUntilIdle();  // ping + pong legs converge
  return coordinator_received;  // REGISTER + PONG per agent
}

template <typename Fn>
mfc::PerfScenario Measure(const char* name, size_t repeats, Fn fn) {
  mfc::PerfScenario s;
  s.name = name;
  s.items_unit = "ops";
  for (size_t r = 0; r < repeats; ++r) {
    mfc::PerfTimer timer;
    uint64_t items = fn();
    s.wall_seconds.push_back(timer.Seconds());
    assert(r == 0 || items == s.items);
    s.items = items;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  mfc::PerfArgs args = mfc::ParsePerfArgs(argc, argv, "BENCH_rt.json");
  if (!args.ok) {
    return 2;
  }
  auto scaled = [&args](size_t n) {
    return std::max<size_t>(1, static_cast<size_t>(static_cast<double>(n) * args.scale));
  };
  mfc::PerfReport report("rt", 1);

  // Headline: loss-free reliable control-message throughput (send + deliver
  // + ack + complete, the whole session round trip).
  size_t messages = scaled(50000);
  report.Add(Measure("control_msgs", args.repeats, [&] {
    return RunPump(messages, 0.0, 7).first;
  }));
  report.Add(Measure("soak_agents", args.repeats, [&] {
    // items = control messages the coordinator processed (2 per agent).
    return RunSoak(scaled(400));
  }));
  size_t lossy_messages = scaled(10000);
  for (auto [name, rate, seed] :
       {std::tuple<const char*, double, uint64_t>{"loss_5pct", 0.05, 11},
        std::tuple<const char*, double, uint64_t>{"loss_20pct", 0.20, 12}}) {
    uint64_t retransmits = 0;
    mfc::PerfScenario s = Measure(name, args.repeats, [&] {
      auto [delivered, resent] = RunPump(lossy_messages, rate, seed);
      retransmits = resent;
      return delivered;
    });
    // Retransmit cost of the loss level: resends per delivered message.
    s.extras.emplace_back("retransmits", static_cast<double>(retransmits));
    s.extras.emplace_back("retransmit_rate", static_cast<double>(retransmits) /
                                                 static_cast<double>(lossy_messages));
    report.Add(std::move(s));
  }
  return report.Finish(args.out_path);
}
