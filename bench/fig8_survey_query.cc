// Figure 8: breakdown of Small-Query-stage stopping crowd sizes across
// Quantcast rank bands (106/103/103/122 servers in the paper).
#include "bench/bench_util.h"
#include "bench/survey_common.h"

int main(int argc, char** argv) {
  mfc::SurveyArgs args = mfc::ParseSurveyArgs(argc, argv);
  if (!args.ok) {
    return 2;
  }
  // Per-band server counts as in the paper; the positional arg scales all bands.
  size_t counts[] = {106, 103, 103, 122};
  if (args.servers_override > 0) {
    for (auto& c : counts) {
      c = args.servers_override;
    }
  }
  mfc::PrintHeader("Survey: Small Query stage stopping crowd sizes by Quantcast rank",
                   "Figure 8 (Section 5.1)");
  printf("\n");
  mfc::PrintBreakdownHeader();
  mfc::SurveyRecorder recorder("fig8_survey_query", args);
  uint64_t seed = 800;
  mfc::Cohort bands[] = {mfc::Cohort::kRank1To1K, mfc::Cohort::kRank1KTo10K,
                         mfc::Cohort::kRank10KTo100K, mfc::Cohort::kRank100KTo1M};
  for (int i = 0; i < 4; ++i) {
    recorder.RunAndPrint(bands[i], mfc::StageKind::kSmallQuery, counts[i], 85, seed++);
  }
  printf("\nPaper shape: strong rank correlation, and uniformly worse than Base — for\n"
         "100K-1M, ~75%% cannot handle 50 simultaneous queries and ~45%% cannot handle\n"
         "20; even in the 1-1K band ~20%% stop by 40.\n");
  return recorder.Finish();
}
