// google-benchmark microbenchmarks for the substrate hot paths: event-loop
// throughput, max-min reallocation cost, processor-sharing queue churn, and
// HTTP parsing.
#include <benchmark/benchmark.h>

#include "src/http/parser.h"
#include "src/net/flow_network.h"
#include "src/server/resources.h"
#include "src/sim/event_loop.h"
#include "src/sim/rng.h"

namespace mfc {
namespace {

void BM_EventLoopScheduleRun(benchmark::State& state) {
  EventLoop loop;
  size_t batch = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      loop.ScheduleAfter(1.0 + static_cast<double>(i % 97), [] {});
    }
    loop.RunUntilIdle();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(64)->Arg(1024)->Arg(16384);

// The cancel-heavy pattern of the simulation (kill timers, TCP timeouts that
// mostly don't fire): schedule a batch, cancel half of it, drain the rest.
// Exercises the O(1) free-listed cancel path and stale-entry skipping.
void BM_EventLoopScheduleCancelRun(benchmark::State& state) {
  EventLoop loop;
  size_t batch = static_cast<size_t>(state.range(0));
  std::vector<EventId> ids(batch);
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      ids[i] = loop.ScheduleAfter(1.0 + static_cast<double>(i % 97), [] {});
    }
    for (size_t i = 0; i < batch; i += 2) {
      loop.Cancel(ids[i]);
    }
    loop.RunUntilIdle();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_EventLoopScheduleCancelRun)->Arg(64)->Arg(1024)->Arg(16384);

void BM_FlowNetworkReallocate(benchmark::State& state) {
  size_t flows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    EventLoop loop;
    FlowNetwork net(loop);
    LinkId server = net.AddLink(1e9);
    Rng rng(1);
    std::vector<LinkId> clients;
    for (size_t i = 0; i < flows; ++i) {
      clients.push_back(net.AddLink(rng.Uniform(1e6, 1e8)));
    }
    state.ResumeTiming();
    // Each StartFlow triggers a full water-filling pass.
    for (size_t i = 0; i < flows; ++i) {
      net.StartFlow({server, clients[i]}, 1e6, 0.05, TcpParams{}, [] {});
    }
    benchmark::DoNotOptimize(net.LinkRate(server));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(flows));
}
BENCHMARK(BM_FlowNetworkReallocate)->Arg(16)->Arg(64)->Arg(256);

void BM_ProcessorSharingChurn(benchmark::State& state) {
  size_t jobs = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    EventLoop loop;
    CpuResource cpu(loop, 4);
    for (size_t i = 0; i < jobs; ++i) {
      cpu.Submit(1e-3 * static_cast<double>(1 + i % 7), [] {});
    }
    loop.RunUntilIdle();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(jobs));
}
BENCHMARK(BM_ProcessorSharingChurn)->Arg(16)->Arg(128);

void BM_HttpRequestParse(benchmark::State& state) {
  HttpRequest req;
  req.method = HttpMethod::kGet;
  req.target = "/cgi/search.php?q=flash+crowds&page=3&mfc=42";
  req.headers.Set("Host", "target.example.com");
  req.headers.Set("User-Agent", "mfc-client/1.0");
  req.headers.Set("Accept", "*/*");
  std::string wire = req.Serialize();
  for (auto _ : state) {
    RequestParser parser;
    parser.Feed(wire);
    benchmark::DoNotOptimize(parser.Done());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_HttpRequestParse);

void BM_HttpResponseParseChunked(benchmark::State& state) {
  HttpResponse resp = HttpResponse::Make(HttpStatus::kOk, "text/html",
                                         std::string(8192, 'x'));
  std::string wire = resp.Serialize();
  size_t chunk = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    ResponseParser parser;
    size_t pos = 0;
    while (pos < wire.size()) {
      size_t n = std::min(chunk, wire.size() - pos);
      parser.Feed(std::string_view(wire).substr(pos, n));
      pos += n;
    }
    benchmark::DoNotOptimize(parser.Done());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_HttpResponseParseChunked)->Arg(64)->Arg(1460)->Arg(65536);

}  // namespace
}  // namespace mfc

BENCHMARK_MAIN();
