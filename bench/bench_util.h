// Shared helpers for the paper-reproduction bench binaries. Each binary
// regenerates one table or figure from the paper and prints it in a
// comparable text form, with the paper's reported values alongside where
// they exist.
#ifndef MFC_BENCH_BENCH_UTIL_H_
#define MFC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/core/types.h"

namespace mfc {

inline void PrintHeader(const std::string& title, const std::string& paper_ref) {
  printf("==============================================================================\n");
  printf("%s\n", title.c_str());
  printf("Reproduces: %s\n", paper_ref.c_str());
  printf("==============================================================================\n");
}

inline std::string StopLabel(const StageResult* stage) {
  if (stage == nullptr) {
    return "n/a";
  }
  if (!stage->stopped) {
    return "NoStop(" + std::to_string(stage->max_crowd_tested) + ")";
  }
  return std::to_string(stage->stopping_crowd_size);
}

}  // namespace mfc

#endif  // MFC_BENCH_BENCH_UTIL_H_
