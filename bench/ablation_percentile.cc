// Ablation: the Large Object decision rule (Section 2.2.3).
//
// When many MFC clients sit behind a shared mid-path bottleneck, a crowd can
// congest that bottleneck instead of the server's access link. The median
// rule then reports a "constraint" that is not the server's; requiring 90%
// of clients to degrade (P10 > θ) suppresses it. We build a topology where
// half the fleet shares a congested POP while the server link is enormous,
// and run the Large Object stage under both rules.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/coordinator.h"
#include "src/core/sim_testbed.h"
#include "src/server/web_server.h"
#include "src/content/site_generator.h"

namespace mfc {
namespace {

struct Shim : HttpTarget {
  HttpTarget* inner = nullptr;
  const ContentStore* content = nullptr;
  void OnRequest(const HttpRequest& request, bool is_mfc, ResponseTransport transport) override {
    inner->OnRequest(request, is_mfc, std::move(transport));
  }
  const ContentStore* Content() const override { return content; }
};

void RunRule(const char* label, double percentile) {
  Rng rng(42);
  SiteSpec spec;
  spec.binary_size_min = 400 * 1024;
  spec.binary_size_max = 400 * 1024;
  ContentStore content = GenerateSite(rng, spec);

  TestbedConfig testbed_config;
  testbed_config.wan.server_access_bps = 2e9;  // the server link is not the problem
  // POP 0 is a congested shared bottleneck; POP 1 is clean.
  testbed_config.wan.pop_bottleneck_bps = {3e6, 1e9};

  auto fleet = MakePlanetLabFleet(rng, 85, 2);  // alternating POP assignment
  Shim shim;
  shim.content = &content;
  SimTestbed testbed(9, testbed_config, std::move(fleet), shim);
  WebServerConfig server_config;
  server_config.cpu_cores = 8;
  WebServer server(testbed.Loop(), server_config, &content);
  shim.inner = &server;

  ExperimentConfig config;
  config.threshold = Millis(100);
  config.max_crowd = 50;
  config.large_object_percentile = percentile;
  Coordinator coordinator(testbed, config, 7);

  StageObjects objects;
  Url large;
  large.host = "t";
  for (const WebObject& object : content.Objects()) {
    if (object.content_class == ContentClass::kBinary) {
      large.path = object.path;
    }
  }
  objects.large_object = large;
  ExperimentResult result = coordinator.Run(objects, {StageKind::kLargeObject});
  printf("%-44s %s\n", label, StopLabel(result.Stage(StageKind::kLargeObject)).c_str());
}

}  // namespace
}  // namespace mfc

int main() {
  mfc::PrintHeader("Ablation: median vs 90%-of-clients rule on the Large Object stage",
                   "Section 2.2.3 design rationale");
  printf("\nTopology: server access link 16 Gbit/s (unconstrained); half the clients\n"
         "behind a congested 24 Mbit/s shared POP bottleneck.\n\n");
  printf("%-44s %s\n", "decision rule", "verdict");
  mfc::RunRule("median (P50 > theta)  [naive]", 50.0);
  mfc::RunRule("90% of clients (P10 > theta)  [paper]", 10.0);
  printf("\nExpected: the median rule blames the (well-provisioned) server because the\n"
         "POP clients dominate the median; the paper's rule reports NoStop.\n");
  return 0;
}
