// Section 6 "Role of Measurers": independent observers requesting *other*
// objects concurrently with the crowd quantify cross-resource correlations —
// e.g. how a bandwidth-intensive crowd affects a database-bound request.
//
// We run the Small Query stage (a DB/CPU-intensive crowd) with two measurers
// riding along: one issuing a HEAD (front-end path) and one downloading the
// large object (bandwidth path). On a single-box deployment the HEAD
// measurer suffers as the query crowd grows — the DB is eating the shared
// CPU; on a two-tier deployment it barely moves. The bandwidth measurer is
// flat in both: a query crowd does not touch the access link.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiment_runner.h"
#include "src/telemetry/stats.h"

namespace mfc {
namespace {

void RunDeployment(const char* label, size_t db_cores) {
  SiteInstance site = MakeQtnpProfile();
  site.server.db_dedicated_cores = db_cores;
  site.server.head_cpu_s = 2e-3;          // the front end itself is modest
  site.site.query_rows_min = 2500;        // ~10 ms of DB work per query
  site.site.query_rows_max = 2500;
  site.server_access_bps = 200e6;         // bandwidth out of the picture

  DeploymentOptions options;
  options.seed = 61;
  options.fleet_size = 85;
  Deployment deployment(site, options);
  StageObjects objects = deployment.ObjectsFromContent();

  ExperimentConfig config;
  config.threshold = Millis(100);
  config.max_crowd = 40;
  Coordinator coordinator(deployment.Testbed(), config, 9);

  // Measurers: the last two fleet clients, observing *other* resources while
  // the query crowd runs.
  std::vector<MeasurerSpec> measurers;
  measurers.push_back(MeasurerSpec{83, HttpRequest::For(HttpMethod::kHead, *objects.base_page)});
  measurers.push_back(
      MeasurerSpec{84, HttpRequest::For(HttpMethod::kGet, *objects.large_object)});
  coordinator.SetMeasurers(measurers);

  ExperimentResult result = coordinator.Run(objects, {StageKind::kSmallQuery});
  const StageResult* stage = result.Stage(StageKind::kSmallQuery);

  printf("\n--- %s ---\n", label);
  printf("%-10s %-26s %-24s %-24s\n", "crowd", "crowd metric (median, ms)",
         "HEAD measurer (ms)", "download measurer (ms)");
  const auto& measurer_epochs = coordinator.MeasurerSamples();
  for (size_t e = 0; e < stage->epochs.size() && e < measurer_epochs.size(); ++e) {
    double head_ms = -1.0;
    double download_ms = -1.0;
    for (const RequestSample& sample : measurer_epochs[e]) {
      if (sample.client_id == 83) {
        head_ms = ToMillis(sample.response_time);
      }
      if (sample.client_id == 84) {
        download_ms = ToMillis(sample.response_time);
      }
    }
    printf("%-10zu %-26.1f %-24.1f %-24.1f\n", stage->epochs[e].crowd_size,
           ToMillis(stage->epochs[e].metric), head_ms, download_ms);
  }
  printf("verdict: %s\n", StopLabel(stage).c_str());
}

}  // namespace
}  // namespace mfc

int main() {
  mfc::PrintHeader("Measurers: cross-resource impact of a DB-intensive crowd",
                   "Section 6, 'Role of Measurers'");
  mfc::RunDeployment("single box (DB shares the front-end CPU)", 0);
  mfc::RunDeployment("two-tier (dedicated DB server)", 2);
  printf("\nReading: the query crowd degrades either way, but only on the single box\n"
         "does the HEAD measurer's response time climb with it — the DB is eating the\n"
         "shared CPU. The download measurer stays flat in both: the query crowd never\n"
         "touches the access link. That cross-resource view is what measurers add.\n");
  return 0;
}
