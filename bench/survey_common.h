// Shared machinery for the Section 5 survey benches (Figures 7-9, Tables
// 4-5): run one MFC stage against N sites sampled from a cohort (fanned
// across cores by ParallelRunner) and print the paper's stopping-crowd-size
// breakdown. Common flags:
//
//   <N>             positional: override every cohort's server count
//   --jobs=N        worker threads (default: MFC_JOBS env, then hardware)
//   --json=<path>   write the breakdowns + wall-clock + jobs as JSON
#ifndef MFC_BENCH_SURVEY_COMMON_H_
#define MFC_BENCH_SURVEY_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/parallel_runner.h"
#include "src/core/survey.h"

namespace mfc {

struct SurveyArgs {
  size_t servers_override = 0;  // 0 = use each bench's paper counts
  size_t jobs = 0;              // 0 = MFC_JOBS env / hardware default
  std::string json_path;
  bool ok = true;
};

inline SurveyArgs ParseSurveyArgs(int argc, char** argv) {
  SurveyArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      args.jobs = static_cast<size_t>(atoi(arg.c_str() + strlen("--jobs=")));
    } else if (arg == "--jobs" && i + 1 < argc) {
      args.jobs = static_cast<size_t>(atoi(argv[++i]));
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json_path = arg.substr(strlen("--json="));
    } else if (arg == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      args.servers_override = static_cast<size_t>(atoi(arg.c_str()));
    } else {
      fprintf(stderr, "unknown flag '%s' (supported: <servers> --jobs=N --json=<path>)\n",
              arg.c_str());
      args.ok = false;
    }
  }
  return args;
}

inline void PrintBreakdownHeader() {
  printf("%-20s %-8s %-7s %-7s %-7s %-7s %-7s %-7s %-8s %-10s\n", "cohort", "servers",
         "<=10", "10-20", "20-30", "30-40", "40-50", ">50", "NoStop", "stop frac");
}

inline void PrintBreakdown(const SurveyBreakdown& b) {
  auto pct = [&](size_t n) {
    char buf[16];
    double v = b.servers == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                                          static_cast<double>(b.servers);
    snprintf(buf, sizeof(buf), "%.0f%%", v);
    return std::string(buf);
  };
  printf("%-20s %-8zu %-7s %-7s %-7s %-7s %-7s %-7s %-8s %-10s\n",
         std::string(CohortName(b.cohort)).c_str(), b.servers, pct(b.b10).c_str(),
         pct(b.b20).c_str(), pct(b.b30).c_str(), pct(b.b40).c_str(), pct(b.b50).c_str(),
         pct(b.b50plus).c_str(), pct(b.nostop).c_str(),
         pct(b.servers - b.nostop).c_str());
}

// Collects a bench run's breakdowns and, when --json was given, writes a
// machine-readable record (breakdowns + wall-clock seconds + jobs used) so
// per-PR BENCH_*.json trajectories can be captured.
class SurveyRecorder {
 public:
  SurveyRecorder(std::string bench_name, const SurveyArgs& args)
      : bench_name_(std::move(bench_name)),
        json_path_(args.json_path),
        jobs_(ResolveJobs(args.jobs)),
        start_(std::chrono::steady_clock::now()) {}

  size_t Jobs() const { return jobs_; }

  // Runs one cohort with the recorder's jobs count, prints it, and records it.
  SurveyBreakdown RunAndPrint(Cohort cohort, StageKind stage, size_t servers,
                              size_t max_crowd, uint64_t seed) {
    SurveyBreakdown b = RunSurveyCohortParallel(cohort, stage, servers, max_crowd, seed, jobs_);
    PrintBreakdown(b);
    breakdowns_.push_back(b);
    return b;
  }

  // Writes the JSON record if requested. Returns 0 (main's exit code) on
  // success, 1 if the file could not be written.
  int Finish() const {
    if (json_path_.empty()) {
      return 0;
    }
    double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                      .count();
    FILE* f = fopen(json_path_.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "cannot write %s\n", json_path_.c_str());
      return 1;
    }
    fprintf(f, "{\n  \"bench\": \"%s\",\n  \"jobs\": %zu,\n  \"wall_seconds\": %.6f,\n",
            bench_name_.c_str(), jobs_, wall);
    fprintf(f, "  \"breakdowns\": [\n");
    for (size_t i = 0; i < breakdowns_.size(); ++i) {
      const SurveyBreakdown& b = breakdowns_[i];
      fprintf(f,
              "    {\"cohort\": \"%s\", \"servers\": %zu, \"le10\": %zu, \"b20\": %zu, "
              "\"b30\": %zu, \"b40\": %zu, \"b50\": %zu, \"gt50\": %zu, \"nostop\": %zu}%s\n",
              std::string(CohortName(b.cohort)).c_str(), b.servers, b.b10, b.b20, b.b30,
              b.b40, b.b50, b.b50plus, b.nostop, i + 1 < breakdowns_.size() ? "," : "");
    }
    fprintf(f, "  ]\n}\n");
    fclose(f);
    printf("wrote %s\n", json_path_.c_str());
    return 0;
  }

 private:
  std::string bench_name_;
  std::string json_path_;
  size_t jobs_;
  std::chrono::steady_clock::time_point start_;
  std::vector<SurveyBreakdown> breakdowns_;
};

}  // namespace mfc

#endif  // MFC_BENCH_SURVEY_COMMON_H_
