// Shared machinery for the Section 5 survey benches (Figures 7-9, Tables
// 4-5): run one MFC stage against N sites sampled from a cohort (fanned
// across cores by ParallelRunner) and print the paper's stopping-crowd-size
// breakdown. Common flags:
//
//   <N>               positional: override every cohort's server count
//   --jobs=N          worker threads (default: MFC_JOBS env, then hardware)
//   --json=<path>     write the breakdowns + wall-clock + jobs as JSON
//   --trace=<path>    collect per-site spans, write merged Chrome trace JSON
//   --metrics=<path>  collect per-site metrics, write the merged CSV; also
//                     adds span_totals to the --json record (see README.md)
#ifndef MFC_BENCH_SURVEY_COMMON_H_
#define MFC_BENCH_SURVEY_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/export.h"
#include "src/core/parallel_runner.h"
#include "src/core/survey.h"

namespace mfc {

struct SurveyArgs {
  size_t servers_override = 0;  // 0 = use each bench's paper counts
  size_t jobs = 0;              // 0 = MFC_JOBS env / hardware default
  std::string json_path;
  std::string trace_path;       // empty = tracing off (the default path)
  std::string metrics_path;     // empty = metrics off
  bool ok = true;
};

inline SurveyArgs ParseSurveyArgs(int argc, char** argv) {
  SurveyArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      args.jobs = static_cast<size_t>(atoi(arg.c_str() + strlen("--jobs=")));
    } else if (arg == "--jobs" && i + 1 < argc) {
      args.jobs = static_cast<size_t>(atoi(argv[++i]));
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json_path = arg.substr(strlen("--json="));
    } else if (arg == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      args.trace_path = arg.substr(strlen("--trace="));
    } else if (arg.rfind("--metrics=", 0) == 0) {
      args.metrics_path = arg.substr(strlen("--metrics="));
    } else if (!arg.empty() && arg[0] != '-') {
      args.servers_override = static_cast<size_t>(atoi(arg.c_str()));
    } else {
      fprintf(stderr,
              "unknown flag '%s' (supported: <servers> --jobs=N --json=<path> "
              "--trace=<path> --metrics=<path>)\n",
              arg.c_str());
      args.ok = false;
    }
  }
  return args;
}

inline void PrintBreakdownHeader() {
  printf("%-20s %-8s %-7s %-7s %-7s %-7s %-7s %-7s %-8s %-10s\n", "cohort", "servers",
         "<=10", "10-20", "20-30", "30-40", "40-50", ">50", "NoStop", "stop frac");
}

inline void PrintBreakdown(const SurveyBreakdown& b) {
  auto pct = [&](size_t n) {
    char buf[16];
    double v = b.servers == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                                          static_cast<double>(b.servers);
    snprintf(buf, sizeof(buf), "%.0f%%", v);
    return std::string(buf);
  };
  printf("%-20s %-8zu %-7s %-7s %-7s %-7s %-7s %-7s %-8s %-10s\n",
         std::string(CohortName(b.cohort)).c_str(), b.servers, pct(b.b10).c_str(),
         pct(b.b20).c_str(), pct(b.b30).c_str(), pct(b.b40).c_str(), pct(b.b50).c_str(),
         pct(b.b50plus).c_str(), pct(b.nostop).c_str(),
         pct(b.servers - b.nostop).c_str());
}

inline bool WriteBenchFile(const std::string& path, const std::string& contents) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  fwrite(contents.data(), 1, contents.size(), f);
  fclose(f);
  printf("wrote %s\n", path.c_str());
  return true;
}

// Collects a bench run's breakdowns and, when --json was given, writes a
// machine-readable record (breakdowns + wall-clock seconds + jobs used) so
// per-PR BENCH_*.json trajectories can be captured. With --trace/--metrics it
// also owns a SurveyTelemetry that the cohort runs fold their per-site spans
// and metrics into; without those flags no telemetry is attached and output
// stays byte-identical to the untraced bench.
class SurveyRecorder {
 public:
  SurveyRecorder(std::string bench_name, const SurveyArgs& args)
      : bench_name_(std::move(bench_name)),
        json_path_(args.json_path),
        trace_path_(args.trace_path),
        metrics_path_(args.metrics_path),
        jobs_(ResolveJobs(args.jobs)),
        start_(std::chrono::steady_clock::now()) {
    telemetry_.collect_trace = !trace_path_.empty();
    telemetry_.collect_metrics = !metrics_path_.empty();
    telemetry_.progress = telemetry_.Enabled();
  }

  size_t Jobs() const { return jobs_; }

  // Runs one cohort with the recorder's jobs count, prints it, and records it.
  SurveyBreakdown RunAndPrint(Cohort cohort, StageKind stage, size_t servers,
                              size_t max_crowd, uint64_t seed) {
    SurveyBreakdown b = RunSurveyCohortParallel(cohort, stage, servers, max_crowd, seed, jobs_,
                                                nullptr,
                                                telemetry_.Enabled() ? &telemetry_ : nullptr);
    PrintBreakdown(b);
    breakdowns_.push_back(b);
    return b;
  }

  // Writes the JSON record / trace / metrics files that were requested.
  // Returns 0 (main's exit code) on success, 1 if any file could not be
  // written.
  int Finish() const {
    int rc = 0;
    if (!trace_path_.empty() && !WriteBenchFile(trace_path_, ExportTraceJson(telemetry_.trace))) {
      rc = 1;
    }
    if (!metrics_path_.empty() &&
        !WriteBenchFile(metrics_path_, ExportMetricsCsv(telemetry_.metrics))) {
      rc = 1;
    }
    if (json_path_.empty()) {
      return rc;
    }
    double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                      .count();
    FILE* f = fopen(json_path_.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "cannot write %s\n", json_path_.c_str());
      return 1;
    }
    fprintf(f, "{\n  \"bench\": \"%s\",\n  \"jobs\": %zu,\n  \"wall_seconds\": %.6f,\n",
            bench_name_.c_str(), jobs_, wall);
    fprintf(f, "  \"breakdowns\": [\n");
    for (size_t i = 0; i < breakdowns_.size(); ++i) {
      const SurveyBreakdown& b = breakdowns_[i];
      fprintf(f,
              "    {\"cohort\": \"%s\", \"servers\": %zu, \"le10\": %zu, \"b20\": %zu, "
              "\"b30\": %zu, \"b40\": %zu, \"b50\": %zu, \"gt50\": %zu, \"nostop\": %zu}%s\n",
              std::string(CohortName(b.cohort)).c_str(), b.servers, b.b10, b.b20, b.b30,
              b.b40, b.b50, b.b50plus, b.nostop, i + 1 < breakdowns_.size() ? "," : "");
    }
    fprintf(f, "  ]%s\n", telemetry_.collect_metrics ? "," : "");
    // Per-stage span-time breakdown (seconds of simulated time each request
    // spent per lifecycle phase), summed over every surveyed site. Only
    // present when --metrics was given so default --json output is unchanged.
    if (telemetry_.collect_metrics) {
      fprintf(f, "  \"span_totals\": {\n");
      static const char* kStages[] = {"Base", "SmallQuery", "LargeObject"};
      bool first = true;
      for (const char* stage : kStages) {
        std::string prefix = std::string("span.") + stage + ".";
        double count = telemetry_.metrics.Counter(prefix + "count");
        if (count == 0.0) {
          continue;
        }
        fprintf(f,
                "%s    \"%s\": {\"count\": %.0f, \"queue_s\": %.9g, \"cpu_s\": %.9g, "
                "\"db_s\": %.9g, \"disk_s\": %.9g, \"net_s\": %.9g}",
                first ? "" : ",\n", stage, count,
                telemetry_.metrics.Counter(prefix + "queue_s"),
                telemetry_.metrics.Counter(prefix + "cpu_s"),
                telemetry_.metrics.Counter(prefix + "db_s"),
                telemetry_.metrics.Counter(prefix + "disk_s"),
                telemetry_.metrics.Counter(prefix + "net_s"));
        first = false;
      }
      fprintf(f, "\n  }\n");
    }
    fprintf(f, "}\n");
    fclose(f);
    printf("wrote %s\n", json_path_.c_str());
    return rc;
  }

 private:
  std::string bench_name_;
  std::string json_path_;
  std::string trace_path_;
  std::string metrics_path_;
  size_t jobs_;
  std::chrono::steady_clock::time_point start_;
  std::vector<SurveyBreakdown> breakdowns_;
  SurveyTelemetry telemetry_;
};

}  // namespace mfc

#endif  // MFC_BENCH_SURVEY_COMMON_H_
