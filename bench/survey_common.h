// Shared machinery for the Section 5 survey benches (Figures 7-9, Tables
// 4-5): run one MFC stage against N sites sampled from a cohort (fanned
// across cores by ParallelRunner) and print the paper's stopping-crowd-size
// breakdown. Common flags:
//
//   <N>               positional: override every cohort's server count
//   --jobs=N          worker threads (default: MFC_JOBS env, then hardware)
//   --json=<path>     write the breakdowns + wall-clock + jobs as JSON
//   --trace=<path>    collect per-site spans, write merged Chrome trace JSON
//   --metrics=<path>  collect per-site metrics, write the merged CSV; also
//                     adds span_totals to the --json record (see README.md)
//   --journal=<path>  write-ahead journal: every completed site experiment
//                     is appended + fsynced, SIGINT/SIGTERM drain in-flight
//                     sites and exit 130 with a resume hint
//   --resume          replay already-journaled sites from --journal and run
//                     only the remainder (bit-identical output, any --jobs)
//   --stats-stream=<path>  stream runtime health snapshots as JSONL
//                     ('-' = stdout); --stats-interval=<S> sets the cadence
//   --progress        verbose per-site stderr lines (default: a rate-limited
//                     single progress line, terminal only)
//
// Exit codes match mfc_profile (see the README table): 0 success, 1 output
// write failure, 2 usage errors, 3 journal errors, 130 interrupted.
#ifndef MFC_BENCH_SURVEY_COMMON_H_
#define MFC_BENCH_SURVEY_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/arg_parse.h"
#include "src/core/export.h"
#include "src/core/journal/journal.h"
#include "src/core/journal/shutdown.h"
#include "src/core/parallel_runner.h"
#include "src/core/survey.h"
#include "src/telemetry/stats_stream.h"

namespace mfc {

struct SurveyArgs {
  size_t servers_override = 0;  // 0 = use each bench's paper counts
  size_t jobs = 0;              // 0 = MFC_JOBS env / hardware default
  size_t shards = 1;            // split each cohort across K processes
  size_t shard_index = 0;       // this process's shard in [0, shards)
  bool legacy_seeds = false;    // pre-PR-8 seed derivation
  std::string json_path;
  std::string trace_path;       // empty = tracing off (the default path)
  std::string metrics_path;     // empty = metrics off
  std::string journal_path;     // empty = no journal (default crash behavior)
  bool resume = false;
  std::string stats_stream_path;  // empty = no JSONL health feed
  double stats_interval = 1.0;    // wall-clock seconds between snapshots
  bool progress = false;          // verbose per-site stderr lines
  bool ok = true;
};

inline SurveyArgs ParseSurveyArgs(int argc, char** argv) {
  SurveyArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0) {
      args.ok &= ParseSizeFlag("--jobs", arg.substr(strlen("--jobs=")), &args.jobs);
    } else if (arg == "--jobs" && i + 1 < argc) {
      args.ok &= ParseSizeFlag("--jobs", argv[++i], &args.jobs);
    } else if (arg.rfind("--shards=", 0) == 0) {
      args.ok &= ParseSizeFlag("--shards", arg.substr(strlen("--shards=")), &args.shards);
    } else if (arg.rfind("--shard-index=", 0) == 0) {
      args.ok &= ParseSizeFlag("--shard-index", arg.substr(strlen("--shard-index=")),
                               &args.shard_index);
    } else if (arg == "--legacy-seeds") {
      args.legacy_seeds = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json_path = arg.substr(strlen("--json="));
    } else if (arg == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      args.trace_path = arg.substr(strlen("--trace="));
    } else if (arg.rfind("--metrics=", 0) == 0) {
      args.metrics_path = arg.substr(strlen("--metrics="));
    } else if (arg.rfind("--journal=", 0) == 0) {
      args.journal_path = arg.substr(strlen("--journal="));
    } else if (arg == "--journal" && i + 1 < argc) {
      args.journal_path = argv[++i];
    } else if (arg == "--resume") {
      args.resume = true;
    } else if (arg.rfind("--stats-stream=", 0) == 0) {
      args.stats_stream_path = arg.substr(strlen("--stats-stream="));
    } else if (arg.rfind("--stats-interval=", 0) == 0) {
      args.ok &= ParseDoubleFlag("--stats-interval", arg.substr(strlen("--stats-interval=")),
                                 &args.stats_interval);
    } else if (arg == "--progress") {
      args.progress = true;
    } else if (!arg.empty() && arg[0] != '-') {
      args.ok &= ParseSizeFlag("<servers>", arg, &args.servers_override);
    } else {
      fprintf(stderr,
              "unknown flag '%s' (supported: <servers> --jobs=N --shards=K "
              "--shard-index=J --legacy-seeds --json=<path> "
              "--trace=<path> --metrics=<path> --journal=<path> --resume "
              "--stats-stream=<path> --stats-interval=<S> --progress)\n",
              arg.c_str());
      args.ok = false;
    }
  }
  if (args.resume && args.journal_path.empty()) {
    fprintf(stderr, "--resume requires --journal=<path>\n");
    args.ok = false;
  }
  if (args.shards == 0 || args.shard_index >= args.shards) {
    fprintf(stderr, "--shard-index=%zu out of range for --shards=%zu\n", args.shard_index,
            args.shards);
    args.ok = false;
  }
  if (args.shards > 1 && args.journal_path.empty()) {
    fprintf(stderr, "--shards requires --journal=<path> (shards are merged from journals)\n");
    args.ok = false;
  }
  return args;
}

inline void PrintBreakdownHeader() {
  printf("%-20s %-8s %-7s %-7s %-7s %-7s %-7s %-7s %-8s %-10s\n", "cohort", "servers",
         "<=10", "10-20", "20-30", "30-40", "40-50", ">50", "NoStop", "stop frac");
}

inline void PrintBreakdown(const SurveyBreakdown& b) {
  auto pct = [&](size_t n) {
    char buf[16];
    double v = b.servers == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                                          static_cast<double>(b.servers);
    snprintf(buf, sizeof(buf), "%.0f%%", v);
    return std::string(buf);
  };
  printf("%-20s %-8zu %-7s %-7s %-7s %-7s %-7s %-7s %-8s %-10s\n",
         std::string(CohortName(b.cohort)).c_str(), b.servers, pct(b.b10).c_str(),
         pct(b.b20).c_str(), pct(b.b30).c_str(), pct(b.b40).c_str(), pct(b.b50).c_str(),
         pct(b.b50plus).c_str(), pct(b.nostop).c_str(),
         pct(b.servers - b.nostop).c_str());
}

// Atomic write (temp file + rename): an aborted bench never leaves a
// truncated trace/metrics/json file behind.
inline bool WriteBenchFile(const std::string& path, const std::string& contents) {
  if (!WriteFileAtomic(path, contents)) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  printf("wrote %s\n", path.c_str());
  return true;
}

// Collects a bench run's breakdowns and, when --json was given, writes a
// machine-readable record (breakdowns + wall-clock seconds + jobs used) so
// per-PR BENCH_*.json trajectories can be captured. With --trace/--metrics it
// also owns a SurveyTelemetry that the cohort runs fold their per-site spans
// and metrics into; without those flags no telemetry is attached and output
// stays byte-identical to the untraced bench.
//
// With --journal the recorder opens (or resumes) a SurveyJournal, installs
// the graceful-shutdown signal handlers, and threads the journal through
// every cohort run; Finish() then reports resumed/executed site counts in
// the --json record and returns 130 when the run was interrupted.
class SurveyRecorder {
 public:
  SurveyRecorder(std::string bench_name, const SurveyArgs& args)
      : bench_name_(std::move(bench_name)),
        json_path_(args.json_path),
        trace_path_(args.trace_path),
        metrics_path_(args.metrics_path),
        jobs_(ResolveJobs(args.jobs)),
        start_(std::chrono::steady_clock::now()) {
    run_.shards = args.shards;
    run_.shard_index = args.shard_index;
    run_.legacy_seeds = args.legacy_seeds;
    telemetry_.collect_trace = !trace_path_.empty();
    telemetry_.collect_metrics = !metrics_path_.empty();
    telemetry_.progress = args.progress;
    // Health plane: the verbose per-site lines are opt-in (--progress);
    // by default a rate-limited terminal line and/or the --stats-stream
    // JSONL feed report progress instead.
    if (!args.stats_stream_path.empty()) {
      std::string error;
      stats_ = StatsStream::Open(args.stats_stream_path, &error);
      if (stats_ == nullptr) {
        fprintf(stderr, "%s\n", error.c_str());
        exit(2);
      }
      telemetry_.stats = stats_.get();
    }
    if (!args.progress && progress_line_.Enabled()) {
      telemetry_.progress_line = &progress_line_;
    }
    telemetry_.stats_interval = args.stats_interval;
    if (!args.journal_path.empty()) {
      // The fingerprint pins everything that shapes the work partition —
      // but never --jobs or output paths, which a resume may change freely.
      char fingerprint[96];
      snprintf(fingerprint, sizeof(fingerprint), "trace=%d;metrics=%d;servers_override=%zu",
               telemetry_.collect_trace ? 1 : 0, telemetry_.collect_metrics ? 1 : 0,
               args.servers_override);
      std::string error;
      journal_ = SurveyJournal::Open(args.journal_path, bench_name_, fingerprint, args.resume,
                                     &error);
      if (journal_ == nullptr) {
        fprintf(stderr, "journal error: %s\n", error.c_str());
        exit(3);  // journal error — permanent, same across restarts
      }
      if (!journal_->Warning().empty()) {
        fprintf(stderr, "journal warning: %s\n", journal_->Warning().c_str());
      }
      ClearShutdownRequest();
      InstallShutdownHandlers();
    }
  }

  size_t Jobs() const { return jobs_; }

  // Runs one cohort with the recorder's jobs count, prints it, and records it.
  // Once a shutdown signal arrived, remaining cohorts are skipped entirely
  // (they stay absent from the journal and the --json breakdowns).
  SurveyBreakdown RunAndPrint(Cohort cohort, StageKind stage, size_t servers,
                              size_t max_crowd, uint64_t seed) {
    if (journal_ != nullptr && ShutdownRequested()) {
      interrupted_ = true;
      SurveyBreakdown skipped;
      skipped.cohort = cohort;
      return skipped;
    }
    if (journal_ != nullptr) {
      std::string error;
      if (!journal_->BeginCohort(cohort, stage, servers, max_crowd, seed, telemetry_.next_pid,
                                 &error, run_.shards, run_.shard_index, run_.legacy_seeds)) {
        fprintf(stderr, "journal error: %s\n", error.c_str());
        exit(3);  // journal error — permanent, same across restarts
      }
    }
    telemetry_.stats_label = std::string(CohortName(cohort));
    SurveyTelemetry* telemetry_arg =
        telemetry_.Enabled() || telemetry_.progress || telemetry_.HealthAttached() ? &telemetry_
                                                                                   : nullptr;
    SurveyBreakdown b = RunSurveyCohortParallel(cohort, stage, servers, max_crowd, seed, jobs_,
                                                nullptr, telemetry_arg, journal_.get(), run_);
    if (journal_ != nullptr && journal_->interrupted.load(std::memory_order_relaxed)) {
      interrupted_ = true;
    }
    PrintBreakdown(b);
    breakdowns_.push_back(b);
    return b;
  }

  // Writes the JSON record / trace / metrics files that were requested.
  // Returns 0 (main's exit code) on success, 1 if any file could not be
  // written, 130 when the run was interrupted by a shutdown signal (the
  // journal holds every completed site; rerun with --resume to finish).
  int Finish() {
    if (journal_ != nullptr) {
      journal_->Sync();
      if (interrupted_) {
        fprintf(stderr,
                "interrupted: %zu site(s) journaled; resume with --journal=%s --resume\n",
                journal_->resumed_sites.load() + journal_->executed_sites.load(),
                journal_->Path().c_str());
      }
    }
    double stalls =
        telemetry_.collect_metrics ? telemetry_.metrics.Counter("flow_network.no_progress") : 0.0;
    if (stalls > 0.0) {
      fprintf(stderr, "warning: flow_network.no_progress = %.0f (water-filling stalls)\n",
              stalls);
    }
    int rc = 0;
    if (!trace_path_.empty() && !WriteBenchFile(trace_path_, ExportTraceJson(telemetry_.trace))) {
      rc = 1;
    }
    if (!metrics_path_.empty() &&
        !WriteBenchFile(metrics_path_, ExportMetricsCsv(telemetry_.metrics))) {
      rc = 1;
    }
    if (!json_path_.empty() && !WriteBenchFile(json_path_, BuildJson())) {
      rc = 1;
    }
    if (rc == 0 && interrupted_) {
      rc = 130;
    }
    return rc;
  }

 private:
  std::string BuildJson() const {
    double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                      .count();
    std::string json;
    char line[512];
    snprintf(line, sizeof(line), "{\n  \"bench\": \"%s\",\n  \"jobs\": %zu,\n",
             bench_name_.c_str(), jobs_);
    json += line;
    if (journal_ != nullptr) {
      // Resume-audit fields: only present when journaling so a no-journal
      // run's --json stays byte-identical to pre-journal builds.
      snprintf(line, sizeof(line),
               "  \"resumed_sites\": %zu,\n  \"executed_sites\": %zu,\n"
               "  \"interrupted\": %s,\n",
               journal_->resumed_sites.load(), journal_->executed_sites.load(),
               interrupted_ ? "true" : "false");
      json += line;
      if (interrupted_) {
        snprintf(line, sizeof(line), "  \"resume_hint\": \"--journal=%s --resume\",\n",
                 journal_->Path().c_str());
        json += line;
      }
    }
    snprintf(line, sizeof(line), "  \"wall_seconds\": %.6f,\n", wall);
    json += line;
    json += "  \"breakdowns\": [\n";
    for (size_t i = 0; i < breakdowns_.size(); ++i) {
      const SurveyBreakdown& b = breakdowns_[i];
      snprintf(line, sizeof(line),
               "    {\"cohort\": \"%s\", \"servers\": %zu, \"le10\": %zu, \"b20\": %zu, "
               "\"b30\": %zu, \"b40\": %zu, \"b50\": %zu, \"gt50\": %zu, \"nostop\": %zu}%s\n",
               std::string(CohortName(b.cohort)).c_str(), b.servers, b.b10, b.b20, b.b30,
               b.b40, b.b50, b.b50plus, b.nostop, i + 1 < breakdowns_.size() ? "," : "");
      json += line;
    }
    json += "  ]";
    json += telemetry_.collect_metrics ? ",\n" : "\n";
    // Per-stage span-time breakdown (seconds of simulated time each request
    // spent per lifecycle phase), summed over every surveyed site. Only
    // present when --metrics was given so default --json output is unchanged.
    if (telemetry_.collect_metrics) {
      json += "  \"span_totals\": {\n";
      static const char* kStages[] = {"Base", "SmallQuery", "LargeObject"};
      bool first = true;
      for (const char* stage : kStages) {
        std::string prefix = std::string("span.") + stage + ".";
        double count = telemetry_.metrics.Counter(prefix + "count");
        if (count == 0.0) {
          continue;
        }
        snprintf(line, sizeof(line),
                 "%s    \"%s\": {\"count\": %.0f, \"queue_s\": %.9g, \"cpu_s\": %.9g, "
                 "\"db_s\": %.9g, \"disk_s\": %.9g, \"net_s\": %.9g}",
                 first ? "" : ",\n", stage, count,
                 telemetry_.metrics.Counter(prefix + "queue_s"),
                 telemetry_.metrics.Counter(prefix + "cpu_s"),
                 telemetry_.metrics.Counter(prefix + "db_s"),
                 telemetry_.metrics.Counter(prefix + "disk_s"),
                 telemetry_.metrics.Counter(prefix + "net_s"));
        json += line;
        first = false;
      }
      json += "\n  },\n";
      // Allocator health: water-filling passes that made no progress. Always
      // 0 in a healthy run; a nonzero value means some flows were left
      // pinned at rate 0 (see FlowNetworkStats::no_progress).
      snprintf(line, sizeof(line), "  \"flow_network\": {\"no_progress\": %.0f}\n",
               telemetry_.metrics.Counter("flow_network.no_progress"));
      json += line;
    }
    json += "}\n";
    return json;
  }

  std::string bench_name_;
  std::string json_path_;
  std::string trace_path_;
  std::string metrics_path_;
  size_t jobs_;
  SurveyRunOptions run_;
  std::chrono::steady_clock::time_point start_;
  std::vector<SurveyBreakdown> breakdowns_;
  SurveyTelemetry telemetry_;
  std::unique_ptr<StatsStream> stats_;
  ProgressLine progress_line_{1.0};
  std::unique_ptr<SurveyJournal> journal_;
  bool interrupted_ = false;
};

}  // namespace mfc

#endif  // MFC_BENCH_SURVEY_COMMON_H_
