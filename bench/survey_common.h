// Shared machinery for the Section 5 survey benches (Figures 7-9, Tables
// 4-5): run one MFC stage against N sites sampled from a cohort and print
// the paper's stopping-crowd-size breakdown.
#ifndef MFC_BENCH_SURVEY_COMMON_H_
#define MFC_BENCH_SURVEY_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/experiment_runner.h"

namespace mfc {

struct SurveyBreakdown {
  Cohort cohort;
  size_t servers = 0;
  // Counts by stopping bucket: <=10, 10-20, 20-30, 30-40, 40-50, 50+..max, NoStop.
  size_t b10 = 0, b20 = 0, b30 = 0, b40 = 0, b50 = 0, b50plus = 0, nostop = 0;
};

inline SurveyBreakdown RunSurveyCohort(Cohort cohort, StageKind stage, size_t servers,
                                       size_t max_crowd, uint64_t seed) {
  Rng rng(seed);
  SurveyBreakdown breakdown;
  breakdown.cohort = cohort;
  ExperimentConfig config;
  config.threshold = Millis(100);
  config.crowd_step = 5;
  config.max_crowd = max_crowd;
  config.min_clients = 50;
  for (size_t i = 0; i < servers; ++i) {
    ExperimentResult result =
        RunSurveyExperiment(rng, cohort, config, {stage}, seed * 1000 + i);
    const StageResult* stage_result = result.stages.empty() ? nullptr : &result.stages[0];
    if (result.aborted || stage_result == nullptr) {
      continue;
    }
    ++breakdown.servers;
    if (!stage_result->stopped) {
      ++breakdown.nostop;
    } else if (stage_result->stopping_crowd_size <= 10) {
      ++breakdown.b10;
    } else if (stage_result->stopping_crowd_size <= 20) {
      ++breakdown.b20;
    } else if (stage_result->stopping_crowd_size <= 30) {
      ++breakdown.b30;
    } else if (stage_result->stopping_crowd_size <= 40) {
      ++breakdown.b40;
    } else if (stage_result->stopping_crowd_size <= 50) {
      ++breakdown.b50;
    } else {
      ++breakdown.b50plus;
    }
  }
  return breakdown;
}

inline void PrintBreakdownHeader() {
  printf("%-20s %-8s %-7s %-7s %-7s %-7s %-7s %-7s %-8s %-10s\n", "cohort", "servers",
         "<=10", "10-20", "20-30", "30-40", "40-50", ">50", "NoStop", "stop frac");
}

inline void PrintBreakdown(const SurveyBreakdown& b) {
  auto pct = [&](size_t n) {
    char buf[16];
    double v = b.servers == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                                          static_cast<double>(b.servers);
    snprintf(buf, sizeof(buf), "%.0f%%", v);
    return std::string(buf);
  };
  printf("%-20s %-8zu %-7s %-7s %-7s %-7s %-7s %-7s %-8s %-10s\n",
         std::string(CohortName(b.cohort)).c_str(), b.servers, pct(b.b10).c_str(),
         pct(b.b20).c_str(), pct(b.b30).c_str(), pct(b.b40).c_str(), pct(b.b50).c_str(),
         pct(b.b50plus).c_str(), pct(b.nostop).c_str(),
         pct(b.servers - b.nostop).c_str());
}

}  // namespace mfc

#endif  // MFC_BENCH_SURVEY_COMMON_H_
