// Figure 7: breakdown of Base-stage stopping crowd sizes across Quantcast
// rank bands (114 + 107 + 118 + 148 servers in the paper; θ=100 ms, at most
// one request per client, up to 85 clients).
#include "bench/bench_util.h"
#include "bench/survey_common.h"

int main(int argc, char** argv) {
  mfc::SurveyArgs args = mfc::ParseSurveyArgs(argc, argv);
  if (!args.ok) {
    return 2;
  }
  // Per-band server counts as in the paper; the positional arg scales all bands.
  size_t counts[] = {114, 107, 118, 148};
  if (args.servers_override > 0) {
    for (auto& c : counts) {
      c = args.servers_override;
    }
  }
  mfc::PrintHeader("Survey: Base stage stopping crowd sizes by Quantcast rank",
                   "Figure 7 (Section 5.1)");
  printf("\n");
  mfc::PrintBreakdownHeader();
  mfc::SurveyRecorder recorder("fig7_survey_base", args);
  uint64_t seed = 700;
  mfc::Cohort bands[] = {mfc::Cohort::kRank1To1K, mfc::Cohort::kRank1KTo10K,
                         mfc::Cohort::kRank10KTo100K, mfc::Cohort::kRank100KTo1M};
  for (int i = 0; i < 4; ++i) {
    recorder.RunAndPrint(bands[i], mfc::StageKind::kBase, counts[i], 85, seed++);
  }
  printf("\nPaper shape: stop fraction rises monotonically with rank index — 17%% for\n"
         "1-1K up to 45%% for 100K-1M; >15%% of 100K-1M servers stop at <=20; ~10%% of\n"
         "even the top band stops below 40.\n");
  return recorder.Finish();
}
