// Perf microbench for the fluid-flow network allocator: high-churn
// concurrent downloads over shared and component-disjoint bottlenecks, the
// slow-start doubling storm, and abort churn. Emits BENCH_flow_network.json
// (events/sec + allocator recompute counters) so the incremental-allocator
// speedup stays auditable across PRs.
//
// The headline scenario (churn_components) is many disjoint bottleneck
// groups — the shape a multi-site survey shard produces — where incremental
// reallocation only touches the changed component. churn_shared is the
// honest worst case: one bottleneck, every flow in one component.
//
//   perf_flow_network [--repeats=N] [--scale=X] [--out=PATH]
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bench/perf_util.h"
#include "src/net/flow_network.h"
#include "src/sim/event_loop.h"

namespace {

struct ChurnSpec {
  size_t groups = 1;             // disjoint bottleneck components
  size_t clients_per_group = 8;  // one access link each
  size_t downloads = 4;          // sequential downloads per client
  double bytes_base = 50e3;
  bool slow_start = false;
  bool aborts = false;  // abort every odd download mid-flight
};

struct ChurnResult {
  uint64_t events = 0;
  mfc::FlowNetworkStats stats;
};

// One client's download chain: start -> complete -> think -> next download.
struct Client {
  mfc::EventLoop* loop;
  mfc::FlowNetwork* net;
  std::vector<mfc::LinkId> path;
  double bytes;
  double rtt;
  size_t left;
  bool slow_start;
  std::function<void()> start_next;  // stable address for rescheduling
};

ChurnResult RunChurn(const ChurnSpec& spec) {
  mfc::EventLoop loop;
  mfc::FlowNetwork net(loop);
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(spec.groups * spec.clients_per_group);
  size_t idx = 0;
  for (size_t g = 0; g < spec.groups; ++g) {
    // 10 Mbps server access link per group, 2 Mbps client links: the server
    // link is the bottleneck once ~5 downloads overlap, as in the paper's
    // Large Object stage.
    mfc::LinkId server = net.AddLink(1.25e6);
    for (size_t c = 0; c < spec.clients_per_group; ++c, ++idx) {
      mfc::LinkId access = net.AddLink(2.5e5);
      auto client = std::make_unique<Client>();
      client->loop = &loop;
      client->net = &net;
      client->path = {server, access};
      client->bytes = spec.bytes_base * (1.0 + 0.25 * static_cast<double>(idx % 5));
      client->rtt = 0.02 + 0.002 * static_cast<double>(idx % 7);
      client->left = spec.downloads;
      client->slow_start = spec.slow_start;
      Client* p = client.get();
      if (spec.aborts) {
        // Kill-timer pattern: independent downloads at fixed instants, every
        // odd one aborted mid-flight (chaining would double-advance when a
        // flow completes before its abort timer fires).
        double t0 = 0.01 * static_cast<double>(idx % 101);
        for (size_t k = 0; k < spec.downloads; ++k) {
          bool abort_it = k % 2 == 1;
          loop.ScheduleAt(t0 + 0.4 * static_cast<double>(k), [p, abort_it] {
            mfc::TcpParams tcp;
            tcp.slow_start = p->slow_start;
            mfc::FlowId id = p->net->StartFlow(p->path, p->bytes, p->rtt, tcp, [] {});
            if (abort_it) {
              mfc::FlowNetwork* net = p->net;
              p->loop->ScheduleAfter(0.08, [net, id] { net->AbortFlow(id); });
            }
          });
        }
      } else {
        client->start_next = [p] {
          if (p->left == 0) {
            return;
          }
          --p->left;
          mfc::TcpParams tcp;
          tcp.slow_start = p->slow_start;
          p->net->StartFlow(p->path, p->bytes, p->rtt, tcp,
                            [p] { p->loop->ScheduleAfter(0.005, p->start_next); });
        };
        // Staggered arrivals keep the flow set churning instead of phased.
        loop.ScheduleAfter(0.01 * static_cast<double>(idx % 101), p->start_next);
      }
      clients.push_back(std::move(client));
    }
  }
  loop.RunUntilIdle();
  ChurnResult r;
  r.events = loop.ExecutedCount();
  r.stats = net.Stats();
  return r;
}

mfc::PerfScenario Measure(const char* name, size_t repeats, const ChurnSpec& spec) {
  mfc::PerfScenario s;
  s.name = name;
  ChurnResult r;
  for (size_t rep = 0; rep < repeats; ++rep) {
    mfc::PerfTimer timer;
    r = RunChurn(spec);
    s.wall_seconds.push_back(timer.Seconds());
    assert(rep == 0 || r.events == s.items);
    s.items = r.events;
  }
  s.extras.emplace_back("reallocs", static_cast<double>(r.stats.reallocs));
  s.extras.emplace_back("full_reallocs", static_cast<double>(r.stats.full_reallocs));
  s.extras.emplace_back("flows_touched", static_cast<double>(r.stats.flows_touched));
  s.extras.emplace_back("links_touched", static_cast<double>(r.stats.links_touched));
  s.extras.emplace_back("no_progress", static_cast<double>(r.stats.no_progress));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  mfc::PerfArgs args = mfc::ParsePerfArgs(argc, argv, "BENCH_flow_network.json");
  if (!args.ok) {
    return 2;
  }
  auto scaled = [&args](size_t n) {
    return std::max<size_t>(1, static_cast<size_t>(static_cast<double>(n) * args.scale));
  };
  mfc::PerfReport report("flow_network", 1);

  ChurnSpec components;
  components.groups = scaled(24);
  components.clients_per_group = 40;
  components.downloads = 10;
  report.Add(Measure("churn_components", args.repeats, components));

  ChurnSpec shared;
  shared.groups = 1;
  shared.clients_per_group = scaled(256);
  shared.downloads = 8;
  report.Add(Measure("churn_shared", args.repeats, shared));

  ChurnSpec slow_start;
  slow_start.groups = scaled(8);
  slow_start.clients_per_group = 48;
  slow_start.downloads = 3;
  slow_start.bytes_base = 400e3;
  slow_start.slow_start = true;
  report.Add(Measure("slow_start_crowd", args.repeats, slow_start));

  ChurnSpec aborts;
  aborts.groups = scaled(12);
  aborts.clients_per_group = 24;
  aborts.downloads = 6;
  aborts.aborts = true;
  report.Add(Measure("abort_churn", args.repeats, aborts));

  return report.Finish(args.out_path);
}
