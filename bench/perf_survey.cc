// Perf macrobench: fig9-shaped Large Object survey (the allocator-heaviest
// stage — every crowd client holds a concurrent flow on the server access
// link) across the four Quantcast rank bands. Emits BENCH_survey.json with
// sites/sec plus the full breakdown counts, so a run doubles as a result-
// identity check across allocator rewrites: same commit-to-commit counts or
// the speedup is measuring different work.
//
//   perf_survey [--repeats=N] [--sites=N] [--jobs=N] [--out=PATH]
#include <cstdint>

#include "bench/perf_util.h"
#include "src/core/survey.h"

int main(int argc, char** argv) {
  mfc::PerfArgs args = mfc::ParsePerfArgs(argc, argv, "BENCH_survey.json");
  if (!args.ok) {
    return 2;
  }
  size_t sites_per_band = args.sites > 0 ? args.sites : 24;
  // Default jobs=1: sites/sec then measures the hot path, not the core count,
  // and numbers stay comparable across differently-sized machines.
  size_t jobs = args.jobs > 0 ? args.jobs : 1;

  const mfc::Cohort kBands[] = {mfc::Cohort::kRank1To1K, mfc::Cohort::kRank1KTo10K,
                                mfc::Cohort::kRank10KTo100K, mfc::Cohort::kRank100KTo1M};
  const char* kBandNames[] = {"rank1", "rank2", "rank3", "rank4"};

  mfc::PerfReport report("survey", jobs);
  mfc::PerfScenario all;
  all.name = "fig9_large_object";
  all.items_unit = "sites";
  all.items = 4 * sites_per_band;
  mfc::SurveyBreakdown breakdowns[4];
  for (size_t rep = 0; rep < args.repeats; ++rep) {
    mfc::PerfTimer timer;
    uint64_t seed = 900;
    for (int band = 0; band < 4; ++band) {
      mfc::SurveyBreakdown b = mfc::RunSurveyCohortParallel(
          kBands[band], mfc::StageKind::kLargeObject, sites_per_band, 85, seed++, jobs);
      if (rep == 0) {
        breakdowns[band] = b;
      } else if (!(b == breakdowns[band])) {
        fprintf(stderr, "non-deterministic breakdown in band %s\n", kBandNames[band]);
        return 1;
      }
    }
    all.wall_seconds.push_back(timer.Seconds());
  }
  // Breakdown counts double as a cross-allocator result fingerprint.
  for (int band = 0; band < 4; ++band) {
    const mfc::SurveyBreakdown& b = breakdowns[band];
    size_t stopped = b.servers - b.nostop;
    all.extras.emplace_back(std::string(kBandNames[band]) + "_stopped",
                            static_cast<double>(stopped));
    all.extras.emplace_back(std::string(kBandNames[band]) + "_le10",
                            static_cast<double>(b.b10));
    all.extras.emplace_back(std::string(kBandNames[band]) + "_nostop",
                            static_cast<double>(b.nostop));
  }
  report.Add(std::move(all));
  return report.Finish(args.out_path);
}
