// Perf macrobench: fig9-shaped Large Object survey (the allocator-heaviest
// stage — every crowd client holds a concurrent flow on the server access
// link) across the four Quantcast rank bands. Emits BENCH_survey.json with
// sites/sec plus the full breakdown counts, so a run doubles as a result-
// identity check across allocator rewrites: same commit-to-commit counts or
// the speedup is measuring different work.
//
// Three non-headline scenarios ride along: the rank3 band re-run as a 2-way
// interleaved shard partition (whose summed breakdown must equal the
// headline's single-process run — the shard-equivalence contract of
// DESIGN.md §12, timed), the same band run 4-way under the multi-process
// SurveySupervisor (DESIGN.md §14 — fork/exec/wait overhead on top of the
// simulation, the unattended-survey configuration), and the streaming
// long-tail sampler regenerating sites from (seed, cohort, index) with no
// instances vector.
//
//   perf_survey [--repeats=N] [--sites=N] [--jobs=N] [--out=PATH]
#include <unistd.h>

#include <cstdint>
#include <cstring>

#include "bench/perf_util.h"
#include "src/core/population.h"
#include "src/core/supervisor.h"
#include "src/core/survey.h"

namespace {

// Re-exec target for the supervised scenario: run one 4-way shard of the
// rank3 band and write its breakdown counts where the parent can fold them.
// Handled before ParsePerfArgs — it is not a user-facing flag.
int RunSupervisedWorker(int argc, char** argv) {
  size_t shard = 0, sites = 0, jobs = 1;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    if (sscanf(argv[i], "--supervised-worker=%zu", &shard) == 1) continue;
    if (sscanf(argv[i], "--worker-sites=%zu", &sites) == 1) continue;
    if (sscanf(argv[i], "--worker-jobs=%zu", &jobs) == 1) continue;
    if (strncmp(argv[i], "--worker-out=", 13) == 0) out = argv[i] + 13;
  }
  if (sites == 0 || out.empty()) {
    return 2;
  }
  mfc::SurveyRunOptions run;
  run.shards = 4;
  run.shard_index = shard;
  mfc::SurveyBreakdown b = mfc::RunSurveyCohortParallel(
      mfc::Cohort::kRank10KTo100K, mfc::StageKind::kLargeObject, sites, 85, 902, jobs,
      nullptr, nullptr, nullptr, run);
  FILE* f = fopen(out.c_str(), "w");
  if (!f) {
    return 1;
  }
  fprintf(f, "%zu %zu %zu %zu %zu %zu %zu %zu\n", b.servers, b.b10, b.b20, b.b30, b.b40,
          b.b50, b.b50plus, b.nostop);
  fclose(f);
  return 0;
}

std::string SelfExePath(const char* fallback) {
  char buf[4096];
  ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    return fallback;
  }
  buf[n] = '\0';
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && strncmp(argv[1], "--supervised-worker=", 20) == 0) {
    return RunSupervisedWorker(argc, argv);
  }
  mfc::PerfArgs args = mfc::ParsePerfArgs(argc, argv, "BENCH_survey.json");
  if (!args.ok) {
    return 2;
  }
  size_t sites_per_band = args.sites > 0 ? args.sites : 24;
  // Default jobs=1: sites/sec then measures the hot path, not the core count,
  // and numbers stay comparable across differently-sized machines.
  size_t jobs = args.jobs > 0 ? args.jobs : 1;

  const mfc::Cohort kBands[] = {mfc::Cohort::kRank1To1K, mfc::Cohort::kRank1KTo10K,
                                mfc::Cohort::kRank10KTo100K, mfc::Cohort::kRank100KTo1M};
  const char* kBandNames[] = {"rank1", "rank2", "rank3", "rank4"};

  mfc::PerfReport report("survey", jobs);
  mfc::PerfScenario all;
  all.name = "fig9_large_object";
  all.items_unit = "sites";
  all.items = 4 * sites_per_band;
  mfc::SurveyBreakdown breakdowns[4];
  for (size_t rep = 0; rep < args.repeats; ++rep) {
    mfc::PerfTimer timer;
    uint64_t seed = 900;
    for (int band = 0; band < 4; ++band) {
      mfc::SurveyBreakdown b = mfc::RunSurveyCohortParallel(
          kBands[band], mfc::StageKind::kLargeObject, sites_per_band, 85, seed++, jobs);
      if (rep == 0) {
        breakdowns[band] = b;
      } else if (!(b == breakdowns[band])) {
        fprintf(stderr, "non-deterministic breakdown in band %s\n", kBandNames[band]);
        return 1;
      }
    }
    all.wall_seconds.push_back(timer.Seconds());
  }
  // Breakdown counts double as a cross-allocator result fingerprint.
  for (int band = 0; band < 4; ++band) {
    const mfc::SurveyBreakdown& b = breakdowns[band];
    size_t stopped = b.servers - b.nostop;
    all.extras.emplace_back(std::string(kBandNames[band]) + "_stopped",
                            static_cast<double>(stopped));
    all.extras.emplace_back(std::string(kBandNames[band]) + "_le10",
                            static_cast<double>(b.b10));
    all.extras.emplace_back(std::string(kBandNames[band]) + "_nostop",
                            static_cast<double>(b.nostop));
  }
  report.Add(std::move(all));

  // Sharded partition of the headline's rank3 band: shard 0 + shard 1 run
  // back to back (one process standing in for two), and their summed
  // breakdown must reproduce the single-process band bucket for bucket.
  mfc::PerfScenario sharded;
  sharded.name = "sharded_2way_rank3";
  sharded.items_unit = "sites";
  sharded.items = sites_per_band;
  mfc::SurveyBreakdown combined;
  for (size_t rep = 0; rep < args.repeats; ++rep) {
    mfc::PerfTimer timer;
    mfc::SurveyBreakdown shard_sum;
    shard_sum.cohort = kBands[2];
    for (size_t shard = 0; shard < 2; ++shard) {
      mfc::SurveyRunOptions run;
      run.shards = 2;
      run.shard_index = shard;
      mfc::SurveyBreakdown b = mfc::RunSurveyCohortParallel(
          kBands[2], mfc::StageKind::kLargeObject, sites_per_band, 85, 902, jobs,
          nullptr, nullptr, nullptr, run);
      shard_sum.servers += b.servers;
      shard_sum.b10 += b.b10;
      shard_sum.b20 += b.b20;
      shard_sum.b30 += b.b30;
      shard_sum.b40 += b.b40;
      shard_sum.b50 += b.b50;
      shard_sum.b50plus += b.b50plus;
      shard_sum.nostop += b.nostop;
    }
    if (rep == 0) {
      combined = shard_sum;
    }
    if (!(shard_sum == combined) || !(shard_sum == breakdowns[2])) {
      fprintf(stderr, "2-way shard partition does not reproduce the rank3 band\n");
      return 1;
    }
    sharded.wall_seconds.push_back(timer.Seconds());
  }
  report.Add(std::move(sharded));

  // The same rank3 band as a real supervised fleet: fork/exec 4 shard worker
  // processes (re-execing this binary in --supervised-worker mode) under the
  // SurveySupervisor and fold their written breakdowns. Times what an
  // unattended `mfc_profile --supervise` run pays on top of the simulation —
  // process launch, heartbeat polling, exit collection — and re-checks the
  // shard-equivalence contract across a process boundary.
  mfc::PerfScenario supervised;
  supervised.name = "supervised_fig9_4shard";
  supervised.items_unit = "sites";
  supervised.items = sites_per_band;
  std::string self_exe = SelfExePath(argv[0]);
  std::string worker_prefix = args.out_path + ".supworker";
  for (size_t rep = 0; rep < args.repeats; ++rep) {
    for (size_t shard = 0; shard < 4; ++shard) {
      remove((worker_prefix + std::to_string(shard)).c_str());
    }
    mfc::PerfTimer timer;
    mfc::SupervisorOptions opt;
    opt.shards = 4;
    opt.command = [&](size_t shard) {
      return std::vector<std::string>{
          self_exe, "--supervised-worker=" + std::to_string(shard),
          "--worker-sites=" + std::to_string(sites_per_band),
          "--worker-jobs=" + std::to_string(jobs),
          "--worker-out=" + worker_prefix + std::to_string(shard)};
    };
    for (size_t shard = 0; shard < 4; ++shard) {
      opt.journal_paths.push_back(worker_prefix + std::to_string(shard));
    }
    opt.hang_timeout = 600.0;  // workers journal nothing; never hang-kill
    opt.poll_interval = 0.002;
    opt.log = nullptr;
    mfc::SupervisorResult sup = mfc::SurveySupervisor(std::move(opt)).Run();
    if (!sup.ok) {
      fprintf(stderr, "supervised 4-shard run failed: %s\n", sup.error.c_str());
      return 1;
    }
    mfc::SurveyBreakdown shard_sum;
    shard_sum.cohort = kBands[2];
    for (size_t shard = 0; shard < 4; ++shard) {
      std::string out_file = worker_prefix + std::to_string(shard);
      FILE* f = fopen(out_file.c_str(), "r");
      size_t v[8] = {0};
      if (!f || fscanf(f, "%zu %zu %zu %zu %zu %zu %zu %zu", &v[0], &v[1], &v[2], &v[3],
                       &v[4], &v[5], &v[6], &v[7]) != 8) {
        fprintf(stderr, "supervised worker %zu left no breakdown in %s\n", shard,
                out_file.c_str());
        if (f) fclose(f);
        return 1;
      }
      fclose(f);
      remove(out_file.c_str());
      shard_sum.servers += v[0];
      shard_sum.b10 += v[1];
      shard_sum.b20 += v[2];
      shard_sum.b30 += v[3];
      shard_sum.b40 += v[4];
      shard_sum.b50 += v[5];
      shard_sum.b50plus += v[6];
      shard_sum.nostop += v[7];
    }
    if (!(shard_sum == breakdowns[2])) {
      fprintf(stderr, "supervised 4-shard partition does not reproduce the rank3 band\n");
      return 1;
    }
    supervised.wall_seconds.push_back(timer.Seconds());
  }
  report.Add(std::move(supervised));

  // Streaming long-tail sampling: regenerate sites_per_band * 2500 sites as
  // pure functions of (seed, cohort, index). The checksum keeps the work
  // live and doubles as a cross-repeat determinism fingerprint;
  // materialized stays 0 or the stream is secretly building a vector.
  mfc::PerfScenario stream;
  stream.name = "longtail_stream_sample";
  stream.items_unit = "sites";
  stream.items = sites_per_band * 2500;
  uint64_t checksum = 0;
  size_t materialized = 0;
  for (size_t rep = 0; rep < args.repeats; ++rep) {
    mfc::PerfTimer timer;
    mfc::SiteStream sites(mfc::Cohort::kLongTail, 4242, stream.items,
                          /*legacy_seeds=*/false);
    uint64_t sum = 0;
    for (size_t i = 0; i < stream.items; ++i) {
      mfc::SiteInstance inst = sites.Site(i);
      sum += sites.ExperimentSeed(i) ^ static_cast<uint64_t>(inst.base_knee * 1e3) ^
             static_cast<uint64_t>(inst.background_rps * 1e3);
    }
    materialized = sites.MaterializedCount();
    if (rep == 0) {
      checksum = sum;
    }
    if (sum != checksum || materialized != 0) {
      fprintf(stderr, "non-deterministic or materializing long-tail stream\n");
      return 1;
    }
    stream.wall_seconds.push_back(timer.Seconds());
  }
  stream.extras.emplace_back("checksum_low32", static_cast<double>(checksum & 0xFFFFFFFF));
  stream.extras.emplace_back("materialized", static_cast<double>(materialized));
  report.Add(std::move(stream));
  return report.Finish(args.out_path);
}
