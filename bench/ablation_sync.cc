// Ablation: synchronized vs staggered vs unsynchronized probing.
//
// Section 6 (Staggered Mini-FC) and Section 7 (Keynote) motivate this: a
// server can look healthy to single unsynchronized requests and to loosely
// staggered arrivals, yet keel over under a tightly synchronized crowd.
// We probe the same thread-limited server three ways.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/keynote_prober.h"
#include "src/core/experiment_runner.h"

namespace mfc {
namespace {

SiteInstance BurstSensitiveServer() {
  // A server with a modest concurrency sweet spot: fine at low simultaneity,
  // painful when dozens of requests land in the same instant.
  SiteInstance instance = MakeQtnpProfile();
  instance.base_knee = 18;
  instance.server.head_cpu_s = 0.1 * 2.0 / 18.0;
  return instance;
}

void RunMfcVariant(const char* label, SimDuration stagger) {
  DeploymentOptions options;
  options.seed = 77;
  options.fleet_size = 85;
  Deployment deployment(BurstSensitiveServer(), options);
  ExperimentConfig config;
  config.threshold = Millis(100);
  config.max_crowd = 50;
  config.stagger_spacing = stagger;
  ExperimentResult result = deployment.RunMfc(config, deployment.ObjectsFromContent(), 3);
  printf("%-52s %s\n", label, StopLabel(result.Stage(StageKind::kBase)).c_str());
}

void RunKeynote() {
  DeploymentOptions options;
  options.seed = 77;
  options.fleet_size = 85;
  Deployment deployment(BurstSensitiveServer(), options);
  StageObjects objects = deployment.ObjectsFromContent();
  KeynoteProber prober(deployment.Testbed(),
                       HttpRequest::For(HttpMethod::kHead, *objects.base_page), Seconds(5));
  ProbeReport report = prober.Run(50);
  printf("%-52s p95=%.0fms over %zu probes (no verdict possible)\n",
         "Keynote-style single unsynchronized requests", ToMillis(report.p95_response),
         report.probes);
}

}  // namespace
}  // namespace mfc

int main() {
  mfc::PrintHeader("Ablation: what each probing discipline can detect",
                   "Sections 6 (staggered MFC) and 7 (commercial services)");
  printf("\nTarget: request-handling knee at ~18 simultaneous requests.\n\n");
  printf("%-52s %s\n", "probing discipline", "Base-stage verdict");
  mfc::RunMfcVariant("synchronized crowd (MFC)", 0.0);
  mfc::RunMfcVariant("staggered, 1 request / 20 ms", mfc::Millis(20));
  mfc::RunMfcVariant("staggered, 1 request / 200 ms", mfc::Millis(200));
  mfc::RunKeynote();
  printf("\nExpected: tight sync finds the knee near 18; mild stagger finds it later\n"
         "or not at all; wide stagger and single probes see a healthy server. A\n"
         "server fine under stagger but poor under sync handles gradual load surges\n"
         "but not true flash crowds (Section 6).\n");
  return 0;
}
