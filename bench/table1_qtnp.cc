// Table 1: MFC runs against the QTNP server (top-50 commercial site's
// non-production mirror). Two standard MFC runs at θ=100 ms, then an MFC-mr
// run (two connections per client) at θ=250 ms.
//
// Paper rows:            Base        Small Qry    Large Obj
//   MFC 100ms   (9/11)   25          55           NoStop(55)
//   MFC 100ms   (9/12)   20          45           NoStop(55)
//   MFC-mr 250ms(9/21)   40          90           NoStop(150)
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiment_runner.h"

namespace mfc {
namespace {

void RunRow(const char* label, uint64_t seed, SimDuration theta, size_t requests_per_client,
            size_t max_crowd) {
  DeploymentOptions options;
  options.seed = seed;
  options.fleet_size = 85;
  Deployment deployment(MakeQtnpProfile(), options);
  ExperimentConfig config;
  config.threshold = theta;
  config.max_crowd = max_crowd;
  config.requests_per_client = requests_per_client;
  config.crowd_step = requests_per_client == 1 ? 5 : 10;
  ExperimentResult result =
      deployment.RunMfc(config, deployment.ObjectsFromContent(), seed * 31 + 7);
  if (result.aborted) {
    printf("%-22s experiment aborted: %s\n", label, result.abort_reason.c_str());
    return;
  }
  printf("%-22s %-12s %-12s %-14s %-8llu\n", label,
         StopLabel(result.Stage(StageKind::kBase)).c_str(),
         StopLabel(result.Stage(StageKind::kSmallQuery)).c_str(),
         StopLabel(result.Stage(StageKind::kLargeObject)).c_str(),
         static_cast<unsigned long long>(result.TotalRequests()));
}

}  // namespace
}  // namespace mfc

int main() {
  mfc::PrintHeader("QTNP (top-50 commercial site, non-production mirror)",
                   "Table 1 (Section 4.1)");
  printf("\n%-22s %-12s %-12s %-14s %-8s\n", "experiment", "Base", "SmallQry", "LargeObj",
         "#reqs");
  mfc::RunRow("MFC 100ms (run 1)", 101, mfc::Millis(100), 1, 55);
  mfc::RunRow("MFC 100ms (run 2)", 202, mfc::Millis(100), 1, 55);
  mfc::RunRow("MFC-mr 250ms", 303, mfc::Millis(250), 2, 150);
  printf("\nPaper: Base stops at 20-25 (100ms) / 40 (mr,250ms); Small Query at 45-55 /\n"
         "90; Large Object never stops (55 and 150 request maxima). ~1000-1600 reqs.\n");
  return 0;
}
