// Figure 3: request arrival times at the target for an MFC crowd of 45
// clients, commands issued 15 s after the latency measurements. The paper
// reports ~70% of requests arriving within 5 ms of each other and ~90%
// within 30 ms.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/sim_testbed.h"
#include "src/core/sync_scheduler.h"
#include "src/net/wide_area.h"
#include "src/server/synthetic_server.h"
#include "src/telemetry/arrival_log.h"

namespace mfc {
namespace {

class LateTarget : public HttpTarget {
 public:
  HttpTarget* inner = nullptr;
  void OnRequest(const HttpRequest& request, bool is_mfc, ResponseTransport transport) override {
    inner->OnRequest(request, is_mfc, std::move(transport));
  }
};

void Run() {
  PrintHeader("Request arrival synchronization, crowd of 45",
              "Figure 3 (Section 3.1): 70% within 5 ms, 90% within 30 ms");

  TestbedConfig config;
  config.wan.jitter_sigma = 0.03;
  LateTarget late;
  Rng fleet_rng(2008);
  SimTestbed testbed(42, config, MakePlanetLabFleet(fleet_rng, 65, 0), late);
  SyntheticModelServer server(testbed.Loop(), ConstantModel(0.0), 0.001, 200.0);
  late.inner = &server;

  const size_t kCrowd = 45;
  std::vector<ClientLatencyEstimate> latencies;
  for (size_t i = 0; i < kCrowd; ++i) {
    latencies.push_back(
        ClientLatencyEstimate{i, testbed.MeasureCoordRtt(i), testbed.MeasureTargetRtt(i)});
  }
  SimTime arrival_target = testbed.Now() + 15.0;
  auto dispatch = ComputeDispatchTimes(latencies, arrival_target);
  std::vector<CrowdRequestPlan> plans;
  for (size_t i = 0; i < kCrowd; ++i) {
    CrowdRequestPlan plan;
    plan.client_id = i;
    plan.request.method = HttpMethod::kHead;
    plan.request.target = "/";
    plan.command_send_time = dispatch[i].command_send_time;
    plan.intended_arrival = dispatch[i].intended_arrival;
    plans.push_back(plan);
  }
  testbed.ExecuteCrowd(plans, arrival_target + 11.0);

  std::vector<SimTime> arrivals = server.Arrivals();
  std::vector<SimTime> relative;
  SimTime first = arrivals.empty() ? 0.0 : arrivals[0];
  for (SimTime t : arrivals) {
    first = std::min(first, t);
  }
  for (SimTime t : arrivals) {
    relative.push_back(t - first);
  }
  std::sort(relative.begin(), relative.end());

  printf("\n%-22s %s\n", "client request index", "arrival time offset (ms)");
  for (size_t i = 0; i < relative.size(); ++i) {
    printf("%-22zu %8.2f\n", i + 1, ToMillis(relative[i]));
  }

  ArrivalSpread spread = AnalyzeArrivals(arrivals);
  printf("\nrequests arrived        : %zu of %zu scheduled\n", spread.count, kCrowd);
  printf("full spread             : %.1f ms\n", ToMillis(spread.full_spread));
  printf("middle-90%% spread       : %.1f ms\n", ToMillis(spread.middle90_spread));
  printf("fraction within 5 ms    : %.0f%%   (paper: ~70%%)\n",
         100.0 * MaxFractionWithinWindow(arrivals, Millis(5)));
  printf("fraction within 30 ms   : %.0f%%   (paper: ~90%%)\n",
         100.0 * MaxFractionWithinWindow(arrivals, Millis(30)));
}

}  // namespace
}  // namespace mfc

int main() {
  mfc::Run();
  return 0;
}
