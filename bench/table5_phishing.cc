// Table 5: Base-stage stopping crowd sizes for 89 PhishTank-listed servers,
// compared against the Quantcast 100K-1M band (the paper's conclusion:
// phishing sites are hosted on hardware resembling low-end legitimate sites).
#include "bench/bench_util.h"
#include "bench/survey_common.h"

int main(int argc, char** argv) {
  mfc::SurveyArgs args = mfc::ParseSurveyArgs(argc, argv);
  if (!args.ok) {
    return 2;
  }
  size_t servers = args.servers_override > 0 ? args.servers_override : 89;
  mfc::PrintHeader("Survey: phishing servers (Base stage)", "Table 5 (Section 5.3)");
  printf("\n");
  mfc::PrintBreakdownHeader();
  mfc::SurveyRecorder recorder("table5_phishing", args);
  recorder.RunAndPrint(mfc::Cohort::kPhishing, mfc::StageKind::kBase, servers, 50, 55);
  // The comparison band, at the same crowd ceiling.
  recorder.RunAndPrint(mfc::Cohort::kRank100KTo1M, mfc::StageKind::kBase, servers, 50, 56);
  printf("\n(rows: phishing, then Quantcast 100K-1M at the same crowd ceiling)\n");
  printf("\nPaper: phishing — 12%% stop in 10-20, 16%% in 20-30, 11%%/11%% above, 50%%\n"
         "NoStop; 28%% cannot handle 30 requests vs 18%% for the 100K-1M band, whose\n"
         "NoStop fraction (62%%) is only slightly higher.\n");
  return recorder.Finish();
}
