// Ablation: the check phase (Section 2.2.3).
//
// Under noisy wide-area latencies, a single epoch's median can cross θ by
// chance. The check phase (re-run N-1, N, N+1 before stopping) suppresses
// these false stops. We run many Base-stage experiments against a genuinely
// unconstrained server under heavy jitter, with and without the check phase,
// and count how often each declares a (spurious) constraint.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/coordinator.h"
#include "src/core/harness.h"
#include "src/sim/rng.h"
#include "src/telemetry/stats.h"

namespace mfc {
namespace {

// A harness whose target is unconstrained but whose per-epoch medians are
// noisy: occasionally a whole epoch is slow (shared path weather), which is
// exactly the effect the check phase exists to reject.
class NoisyHarness : public ClientHarness {
 public:
  NoisyHarness(uint64_t seed, double epoch_spike_prob, SimDuration spike)
      : rng_(seed), spike_prob_(epoch_spike_prob), spike_(spike) {}

  size_t ClientCount() const override { return 60; }
  std::vector<size_t> ProbeClients(SimDuration) override {
    std::vector<size_t> ids(60);
    for (size_t i = 0; i < 60; ++i) {
      ids[i] = i;
    }
    return ids;
  }
  SimDuration MeasureCoordRtt(size_t) override { return 0.020; }
  SimDuration MeasureTargetRtt(size_t) override { return 0.060; }
  RequestSample FetchOnce(size_t client, const HttpRequest&) override {
    RequestSample sample;
    sample.client_id = client;
    sample.response_time = 0.050;
    return sample;
  }
  std::vector<RequestSample> ExecuteCrowd(const std::vector<CrowdRequestPlan>& plans,
                                          SimTime poll) override {
    bool spike = rng_.Chance(spike_prob_);
    std::vector<RequestSample> samples;
    for (const auto& plan : plans) {
      for (size_t c = 0; c < plan.connections; ++c) {
        RequestSample sample;
        sample.client_id = plan.client_id;
        sample.response_time = 0.050 + (spike ? spike_ : 0.0) +
                               0.020 * rng_.NextDouble();  // per-sample noise
        samples.push_back(sample);
      }
    }
    now_ = poll;
    return samples;
  }
  SimTime Now() const override { return now_; }
  void WaitUntil(SimTime t) override { now_ = t; }

 private:
  Rng rng_;
  double spike_prob_;
  SimDuration spike_;
  SimTime now_ = 0.0;
};

// "No check phase" is emulated by treating any exceeded epoch at >=15 as a
// stop: we run with the standard coordinator but count a run as a naive stop
// if ANY non-check epoch of size >=15 exceeded the threshold.
void Run() {
  const int kTrials = 200;
  int naive_stops = 0;
  int checked_stops = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    NoisyHarness harness(1000 + static_cast<uint64_t>(trial), 0.10, Millis(150));
    ExperimentConfig config;
    config.threshold = Millis(100);
    config.max_crowd = 50;
    Coordinator coordinator(harness, config, static_cast<uint64_t>(trial));
    StageObjects objects;
    objects.base_page = *ParseUrl("http://t/");
    ExperimentResult result = coordinator.Run(objects, {StageKind::kBase});
    const StageResult* stage = result.Stage(StageKind::kBase);
    if (stage == nullptr) {
      continue;
    }
    if (stage->stopped) {
      ++checked_stops;
    }
    for (const EpochResult& epoch : stage->epochs) {
      if (!epoch.check_phase && epoch.exceeded_threshold &&
          epoch.crowd_size >= config.min_crowd_for_inference) {
        ++naive_stops;
        break;
      }
    }
  }
  printf("\nTrials against an UNCONSTRAINED server, 10%% chance any epoch is a\n"
         "+150 ms weather spike:\n\n");
  printf("%-46s %d / %d  (%.0f%%)\n", "false constraints without check phase",
         naive_stops, kTrials, 100.0 * naive_stops / kTrials);
  printf("%-46s %d / %d  (%.0f%%)\n", "false constraints with check phase (paper)",
         checked_stops, kTrials, 100.0 * checked_stops / kTrials);
  printf("\nExpected: the check phase cuts the false-stop rate by roughly the spike\n"
         "probability squared-ish (a stop now needs back-to-back bad epochs).\n");
}

}  // namespace
}  // namespace mfc

int main() {
  mfc::PrintHeader("Ablation: check phase vs single-epoch stopping",
                   "Section 2.2.3 'Check' step");
  mfc::Run();
  return 0;
}
