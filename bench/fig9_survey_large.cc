// Figure 9: breakdown of Large-Object-stage stopping crowd sizes across
// Quantcast rank bands (129/100/114/103 servers in the paper).
#include "bench/bench_util.h"
#include "bench/survey_common.h"

int main(int argc, char** argv) {
  mfc::SurveyArgs args = mfc::ParseSurveyArgs(argc, argv);
  if (!args.ok) {
    return 2;
  }
  // Per-band server counts as in the paper; the positional arg scales all bands.
  size_t counts[] = {129, 100, 114, 103};
  if (args.servers_override > 0) {
    for (auto& c : counts) {
      c = args.servers_override;
    }
  }
  mfc::PrintHeader("Survey: Large Object stage stopping crowd sizes by Quantcast rank",
                   "Figure 9 (Section 5.1)");
  printf("\n");
  mfc::PrintBreakdownHeader();
  mfc::SurveyRecorder recorder("fig9_survey_large", args);
  uint64_t seed = 900;
  mfc::Cohort bands[] = {mfc::Cohort::kRank1To1K, mfc::Cohort::kRank1KTo10K,
                         mfc::Cohort::kRank10KTo100K, mfc::Cohort::kRank100KTo1M};
  for (int i = 0; i < 4; ++i) {
    recorder.RunAndPrint(bands[i], mfc::StageKind::kLargeObject, counts[i], 85, seed++);
  }
  printf("\nPaper shape: bandwidth provisioning is less rank-correlated than the\n"
         "back-end: outside the top band, ~45-57%% of servers stop by 50, and the\n"
         "lower two bands look better here than they did on Small Query.\n");
  return recorder.Finish();
}
