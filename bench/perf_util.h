// Shared scaffolding for the perf harness binaries (bench/perf_*.cc).
//
// Each perf binary times a set of scenarios over several repeats and emits a
// machine-readable BENCH_<name>.json record so the repo's performance
// trajectory is visible to later PRs (see DESIGN.md §10 for the schema and
// tools/check_bench.py for the validator). The JSON carries enough metadata
// (commit, build flags, hardware threads) that two records are comparable, or
// visibly not.
#ifndef MFC_BENCH_PERF_UTIL_H_
#define MFC_BENCH_PERF_UTIL_H_

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/export.h"

// Injected by bench/CMakeLists.txt at configure time; stale only until the
// next cmake run, and recorded as provenance, not ground truth.
#ifndef MFC_GIT_COMMIT
#define MFC_GIT_COMMIT "unknown"
#endif
#ifndef MFC_BENCH_FLAGS
#define MFC_BENCH_FLAGS "unknown"
#endif

namespace mfc {

class PerfTimer {
 public:
  PerfTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Nearest-rank percentile over an unsorted sample set (copied; samples are
// tiny — one per repeat).
inline double PerfPercentile(std::vector<double> xs, double q) {
  assert(!xs.empty());
  std::sort(xs.begin(), xs.end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(rank, xs.size() - 1)];
}

// One timed scenario: |items| units of work (identical every repeat — the
// harness asserts this, since a perf bench that does different work per
// repeat measures nothing) and one wall-clock sample per repeat.
struct PerfScenario {
  std::string name;
  std::string items_unit = "events";  // "events" | "sites" | "ops"
  uint64_t items = 0;
  std::vector<double> wall_seconds;
  // Free-form numeric counters (allocator recompute counts etc.), emitted in
  // insertion order.
  std::vector<std::pair<std::string, double>> extras;

  double P50() const { return PerfPercentile(wall_seconds, 0.50); }
  double P99() const { return PerfPercentile(wall_seconds, 0.99); }
  double ItemsPerSec() const {
    double p50 = P50();
    return p50 > 0.0 ? static_cast<double>(items) / p50 : 0.0;
  }
};

// Accumulates scenarios, prints a human-readable table, and writes the
// BENCH_<name>.json record (atomic write; schema in DESIGN.md §10). The
// first scenario is the headline the acceptance trajectory tracks.
class PerfReport {
 public:
  PerfReport(std::string bench, size_t jobs = 0)
      : bench_(std::move(bench)),
        jobs_(jobs > 0 ? jobs : static_cast<size_t>(std::thread::hardware_concurrency())) {}

  void Add(PerfScenario scenario) {
    assert(!scenario.wall_seconds.empty());
    scenarios_.push_back(std::move(scenario));
  }

  // Prints the table and writes |out_path| (when non-empty). Returns main()'s
  // exit code.
  int Finish(const std::string& out_path) const {
    printf("%-24s %10s %14s %12s %12s\n", "scenario", "items", "items/sec", "p50 ms",
           "p99 ms");
    for (const PerfScenario& s : scenarios_) {
      printf("%-24s %10llu %14.0f %12.3f %12.3f\n", s.name.c_str(),
             static_cast<unsigned long long>(s.items), s.ItemsPerSec(), s.P50() * 1e3,
             s.P99() * 1e3);
    }
    if (out_path.empty()) {
      return 0;
    }
    if (!WriteFileAtomic(out_path, ToJson())) {
      fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    printf("wrote %s\n", out_path.c_str());
    return 0;
  }

  std::string ToJson() const {
    std::string json;
    char line[512];
    snprintf(line, sizeof(line),
             "{\n  \"bench\": \"%s\",\n  \"schema\": 1,\n  \"commit\": \"%s\",\n"
             "  \"flags\": \"%s\",\n  \"jobs\": %zu,\n",
             bench_.c_str(), MFC_GIT_COMMIT, MFC_BENCH_FLAGS, jobs_);
    json += line;
    if (!scenarios_.empty()) {
      const PerfScenario& h = scenarios_.front();
      snprintf(line, sizeof(line),
               "  \"headline\": {\"name\": \"%s\", \"items_per_sec\": %.3f},\n",
               h.name.c_str(), h.ItemsPerSec());
      json += line;
    }
    json += "  \"scenarios\": [\n";
    for (size_t i = 0; i < scenarios_.size(); ++i) {
      const PerfScenario& s = scenarios_[i];
      snprintf(line, sizeof(line),
               "    {\"name\": \"%s\", \"items_unit\": \"%s\", \"items\": %llu,\n"
               "     \"repeats\": %zu, \"wall_seconds_p50\": %.9f, \"wall_seconds_p99\": %.9f,\n"
               "     \"items_per_sec\": %.3f",
               s.name.c_str(), s.items_unit.c_str(), static_cast<unsigned long long>(s.items),
               s.wall_seconds.size(), s.P50(), s.P99(), s.ItemsPerSec());
      json += line;
      for (const auto& [key, value] : s.extras) {
        snprintf(line, sizeof(line), ",\n     \"%s\": %.6f", key.c_str(), value);
        json += line;
      }
      json += i + 1 < scenarios_.size() ? "},\n" : "}\n";
    }
    json += "  ]\n}\n";
    return json;
  }

 private:
  std::string bench_;
  size_t jobs_;
  std::vector<PerfScenario> scenarios_;
};

// Common flag parsing for the perf binaries: --repeats=N --scale=X --out=PATH
// plus bench-specific extras handled by |extra| (return false = unknown).
struct PerfArgs {
  size_t repeats = 5;
  double scale = 1.0;
  std::string out_path;
  size_t sites = 0;  // perf_survey only
  size_t jobs = 0;   // perf_survey only
  bool ok = true;
};

inline PerfArgs ParsePerfArgs(int argc, char** argv, const char* default_out) {
  PerfArgs args;
  args.out_path = default_out;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      size_t n = strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--repeats=")) {
      args.repeats = std::max<size_t>(1, static_cast<size_t>(atoi(v)));
    } else if (const char* v = value_of("--scale=")) {
      args.scale = atof(v);
    } else if (const char* v = value_of("--out=")) {
      args.out_path = v;
    } else if (const char* v = value_of("--sites=")) {
      args.sites = static_cast<size_t>(atoi(v));
    } else if (const char* v = value_of("--jobs=")) {
      args.jobs = static_cast<size_t>(atoi(v));
    } else {
      fprintf(stderr,
              "unknown flag '%s' (supported: --repeats=N --scale=X --out=PATH"
              " [--sites=N --jobs=N])\n",
              arg.c_str());
      args.ok = false;
    }
  }
  return args;
}

}  // namespace mfc

#endif  // MFC_BENCH_PERF_UTIL_H_
