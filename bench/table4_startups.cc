// Table 4: stopping crowd sizes for startup-company servers — Base stage on
// 107 servers, Small Query on 82 (plus the Large Object result quoted in the
// text: ~30% stop below crowd 30). Max crowd 50, θ=100 ms.
#include "bench/bench_util.h"
#include "bench/survey_common.h"

int main(int argc, char** argv) {
  mfc::SurveyArgs args = mfc::ParseSurveyArgs(argc, argv);
  if (!args.ok) {
    return 2;
  }
  size_t base_servers = args.servers_override > 0 ? args.servers_override : 107;
  size_t query_servers = args.servers_override > 0 ? args.servers_override : 82;
  size_t large_servers = args.servers_override > 0 ? args.servers_override : 103;
  mfc::PrintHeader("Survey: startup-company servers", "Table 4 (Section 5.2)");
  printf("\n");
  mfc::PrintBreakdownHeader();
  mfc::SurveyRecorder recorder("table4_startups", args);
  recorder.RunAndPrint(mfc::Cohort::kStartup, mfc::StageKind::kBase, base_servers, 50, 40);
  recorder.RunAndPrint(mfc::Cohort::kStartup, mfc::StageKind::kSmallQuery, query_servers, 50, 41);
  recorder.RunAndPrint(mfc::Cohort::kStartup, mfc::StageKind::kLargeObject, large_servers, 50, 42);
  printf("\n(rows: Base, Small Query, Large Object)\n");
  printf("\nPaper: Base — 24%% stop <=20, 6%%/7%%/6%% in 20-30/30-40/40-50, 58%% NoStop.\n"
         "Small Query — 33%% stop <=20, 12%%/6%%/5%%, 44%% NoStop. Large Object —\n"
         "qualitatively like Base, ~30%% stopping below 30.\n");
  return recorder.Finish();
}
