// Figure 5: the Large Object lab workload — every client requests the same
// 100 KB object from the Apache box behind a 100 Mbit/s link. Response time
// rises with crowd size while CPU, memory and disk stay flat: the network is
// the constraint. We print the same two panels (median response time, network
// usage) plus the flat resource gauges.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/experiment_runner.h"
#include "src/core/sync_scheduler.h"
#include "src/telemetry/resource_monitor.h"
#include "src/telemetry/stats.h"

namespace mfc {
namespace {

void Run() {
  PrintHeader("Large Object lab workload (same 100 KB object)",
              "Figure 5 (Section 3.2): response time tracks network, other resources flat");

  SiteInstance instance = MakeLabValidationProfile();
  DeploymentOptions options;
  options.seed = 17;
  options.fleet_size = 55;
  options.lan_clients = true;
  options.jitter_sigma = 0.0;
  Deployment deployment(instance, options);
  SimTestbed& testbed = deployment.Testbed();

  // The probe object: the site's single 100 KB binary.
  StageObjects objects = deployment.ObjectsFromContent();
  HttpRequest request = HttpRequest::For(HttpMethod::kGet, *objects.large_object);

  ResourceMonitor monitor(testbed.Loop(), Millis(20));
  monitor.AddGauge("cpu", [&] { return deployment.Server().CpuUtilization(); });
  monitor.AddGauge("mem", [&] { return deployment.Server().MemoryUsedBytes(); });
  monitor.Start();

  const size_t kClients = 50;
  std::vector<double> base(kClients, 0.0);
  std::vector<ClientLatencyEstimate> latencies;
  for (size_t i = 0; i < kClients; ++i) {
    latencies.push_back(
        ClientLatencyEstimate{i, testbed.MeasureCoordRtt(i), testbed.MeasureTargetRtt(i)});
    base[i] = testbed.FetchOnce(i, request).response_time;
  }

  printf("\n%-10s %-22s %-20s %-10s %-12s %-10s\n", "crowd", "median resp time (ms)",
         "net usage (KB/epoch)", "cpu (%)", "mem (MB)", "disk ops");
  for (size_t crowd = 5; crowd <= 50; crowd += 5) {
    double net_before = testbed.Wan().ServerLinkCumulativeBytes();
    double disk_before = deployment.Server().Disk().BusySeconds();
    SimTime arrival = testbed.Now() + 15.0;
    std::vector<ClientLatencyEstimate> chosen(latencies.begin(),
                                              latencies.begin() + static_cast<long>(crowd));
    auto dispatch = ComputeDispatchTimes(chosen, arrival);
    std::vector<CrowdRequestPlan> plans;
    for (size_t i = 0; i < crowd; ++i) {
      CrowdRequestPlan plan;
      plan.client_id = i;
      plan.request = request;
      plan.command_send_time = dispatch[i].command_send_time;
      plan.intended_arrival = dispatch[i].intended_arrival;
      plans.push_back(plan);
    }
    auto samples = testbed.ExecuteCrowd(plans, arrival + 11.0);
    double peak_cpu = monitor.Series("cpu").MaxInWindow(arrival - 1.0, arrival + 11.0);
    double peak_mem = monitor.Series("mem").MaxInWindow(arrival - 1.0, arrival + 11.0) / 1e6;
    std::vector<double> response;
    for (const auto& sample : samples) {
      response.push_back(sample.response_time);
    }
    double net_kb = (testbed.Wan().ServerLinkCumulativeBytes() - net_before) / 1e3;
    double disk_busy = deployment.Server().Disk().BusySeconds() - disk_before;
    printf("%-10zu %-22.1f %-20.0f %-10.1f %-12.0f %-10.3f\n", crowd,
           ToMillis(Median(response)), net_kb, 100.0 * peak_cpu, peak_mem, disk_busy);
    testbed.WaitUntil(testbed.Now() + 10.0);
  }
  printf("\nPaper shape: response time rises to ~400 ms at crowd 50; network KB scales\n"
         "with the crowd; CPU / memory / disk stay negligible throughout.\n");
}

}  // namespace
}  // namespace mfc

int main() {
  mfc::Run();
  return 0;
}
