#include "src/rt/live_http_server.h"

#include <string>

#include "src/http/content_type.h"

namespace mfc {
namespace {

// Body for objects whose real bytes we do not store (bulk data): filler of
// exactly the advertised size.
std::string FillerBody(uint64_t size) {
  std::string body(size, 'x');
  return body;
}

}  // namespace

LiveHttpServer::LiveHttpServer(Reactor& reactor, const ContentStore* content, uint16_t port)
    : reactor_(reactor), content_(content),
      listener_(reactor, port,
                [this](std::unique_ptr<TcpConnection> conn) { OnAccept(std::move(conn)); }) {}

void LiveHttpServer::OnAccept(std::unique_ptr<TcpConnection> connection) {
  uint64_t id = next_session_id_++;
  Session& session = sessions_[id];
  session.id = id;
  session.connection = std::move(connection);
  session.connection->SetCallbacks(
      [this, id](std::string_view data) { OnData(id, data); },
      [this, id] { DropSession(id); });
}

void LiveHttpServer::OnData(uint64_t session_id, std::string_view data) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return;
  }
  Session& session = it->second;
  session.parser.Feed(data);
  if (session.parser.Failed()) {
    HttpResponse bad;
    bad.status = HttpStatus::kBadRequest;
    session.connection->Write(bad.Serialize());
    DropSession(session_id);
    return;
  }
  if (!session.parser.Done()) {
    return;
  }
  arrivals_.push_back(reactor_.Now());
  double delay = delay_model_ ? delay_model_(sessions_.size()) : 0.0;
  if (delay > 0.0) {
    reactor_.ScheduleAfter(delay, [this, session_id] { Respond(session_id); });
  } else {
    Respond(session_id);
  }
}

void LiveHttpServer::Respond(uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return;  // client went away while we were "working"
  }
  Session& session = it->second;
  const HttpRequest& request = session.parser.Message();
  const WebObject* object =
      content_ != nullptr ? content_->Find(request.Path()) : nullptr;

  HttpResponse response;
  if (object == nullptr) {
    response = HttpResponse::Make(HttpStatus::kNotFound, "text/plain", "not found\n");
  } else if (request.method == HttpMethod::kHead) {
    response.status = HttpStatus::kOk;
    response.headers.Set("Content-Type", MimeTypeForPath(object->path));
    response.headers.Set("Content-Length", std::to_string(object->size_bytes));
  } else {
    std::string body = object->body.empty() ? FillerBody(object->size_bytes) : object->body;
    response = HttpResponse::Make(HttpStatus::kOk, MimeTypeForPath(object->path),
                                  std::move(body));
  }
  response.headers.Set("Connection", "close");
  session.connection->Write(response.Serialize());
  ++requests_served_;
  // The write buffer drains asynchronously; closing is deferred until the
  // client reads everything, which it signals by closing its end (our
  // on_closed drops the session). For header-only responses close now.
  if (request.method == HttpMethod::kHead) {
    // Leave the connection open briefly; the client closes after parsing.
  }
}

void LiveHttpServer::DropSession(uint64_t session_id) { sessions_.erase(session_id); }

}  // namespace mfc
