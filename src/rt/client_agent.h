// Live MFC client agent (Figure 2b over real sockets).
//
// Registers with the coordinator over UDP, answers latency probes, and on
// command fires HTTP requests at the target. FIRE commands carry the burst
// instant (Section 2.2.4's scheduled arrival): the agent holds fire until
// then, so a command re-issued after control loss still joins the crowd on
// time. Samples are pushed back over UDP as each request completes or hits
// the kill timer.
//
// The control plane assumes loss: registration repeats until the coordinator
// acks it, MEASURE/FIRE commands are acked on receipt (and deduplicated by
// token, so a re-issued or fault-duplicated command never double-fires), and
// samples are retransmitted with bounded backoff until SAMPLEACK arrives.
#ifndef MFC_SRC_RT_CLIENT_AGENT_H_
#define MFC_SRC_RT_CLIENT_AGENT_H_

#include <map>
#include <memory>

#include "src/core/config.h"
#include "src/rt/http_fetch.h"
#include "src/rt/sockets.h"
#include "src/rt/wire.h"

namespace mfc {

class ClientAgent {
 public:
  ClientAgent(Reactor& reactor, uint64_t client_id, const sockaddr_in& coordinator);
  ~ClientAgent();
  ClientAgent(const ClientAgent&) = delete;
  ClientAgent& operator=(const ClientAgent&) = delete;

  // Announces this agent to the coordinator; re-sends with backoff until the
  // coordinator's REGACK arrives (or attempts run out).
  void Register();
  bool Registered() const { return registered_; }

  uint64_t ClientId() const { return client_id_; }
  uint16_t ControlPort() const { return socket_.Port(); }
  void set_request_timeout(double seconds) { request_timeout_ = seconds; }
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  // Routes control datagrams and TCP connects through |fault| (which must
  // outlive the agent). nullptr restores fault-free operation.
  void set_fault_injector(FaultInjector* fault);

  uint64_t RequestsFired() const { return requests_fired_; }

  // Health payload piggybacked on every PONG and SAMPLE (wire.h [stats]):
  // instantaneous inflight count plus the agent's cumulative counters.
  AgentStats CurrentStats() const;

 private:
  struct PendingSample {
    MsgSample sample;
    size_t attempts = 1;
    Reactor::TimerId timer = 0;
  };

  void OnDatagram(std::string_view payload, const sockaddr_in& from);
  void HandleMeasure(const MsgMeasure& message);
  void HandleFire(const MsgFire& message);
  // Opens the command's parallel connections immediately; HandleFire defers
  // to this at the commanded fire_at instant.
  void FireNow(const MsgFire& message);
  void HandleRttProbe(const MsgRttProbe& message);
  // True if |token| was already executed (duplicate command); records it
  // otherwise. Old tokens are pruned so the set stays bounded.
  bool SeenCommand(uint64_t token);
  void LaunchFetch(uint64_t token, const std::string& method, uint16_t port,
                   const std::string& target, size_t attempt, bool retry_connect);
  // Sends |sample| and schedules bounded retransmissions until SAMPLEACK.
  void SendSampleReliably(MsgSample sample);
  void ScheduleSampleRetransmit(uint64_t sample_id);
  void SendRegister();
  void Send(const ControlMessage& message);

  Reactor& reactor_;
  uint64_t client_id_;
  sockaddr_in coordinator_;
  UdpSocket socket_;
  double request_timeout_ = 10.0;
  RetryPolicy retry_;
  FaultInjector* fault_ = nullptr;
  uint64_t requests_fired_ = 0;
  uint64_t fetch_errors_ = 0;  // failed connects + kill-timer expiries
  uint64_t dedup_hits_ = 0;    // duplicate MEASURE/FIRE commands discarded
  double rtt_ewma_ = -1.0;     // target-RTT EWMA from RTTPROBE successes, seconds
  uint64_t next_fetch_id_ = 1;
  uint64_t next_sample_id_ = 1;
  bool registered_ = false;
  size_t register_attempts_ = 0;
  Reactor::TimerId register_timer_ = 0;
  std::map<uint64_t, std::unique_ptr<HttpFetch>> fetches_;
  std::map<uint64_t, std::unique_ptr<TcpConnection>> rtt_probes_;
  std::map<uint64_t, PendingSample> pending_samples_;
  std::map<uint64_t, double> seen_commands_;  // token -> receipt time
  // Guards every reactor task that captures |this|: the destructor flips it,
  // so tasks still queued when the agent dies become no-ops instead of
  // use-after-frees.
  std::shared_ptr<bool> alive_;
};

}  // namespace mfc

#endif  // MFC_SRC_RT_CLIENT_AGENT_H_
