// Live MFC client agent (Figure 2b over real sockets).
//
// Registers with the coordinator, answers latency probes, and on command
// fires HTTP requests at the target. FIRE commands carry the burst instant
// (Section 2.2.4's scheduled arrival): the agent holds fire until then, so a
// command re-issued after control loss still joins the crowd on time.
//
// All control reliability lives in the session layer (src/rt/session.h):
// REGISTER, PONG, RTT/RTTFAIL, and SAMPLE are reliable session sends that
// retransmit until the coordinator's session ack; incoming MEASURE/FIRE
// duplicates are suppressed by the session's (conn, seq) dedup. The agent
// itself schedules no retransmits. A thin legacy path answers bare
// (pre-session) coordinators with the PR-3 ack/token-dedup protocol.
#ifndef MFC_SRC_RT_CLIENT_AGENT_H_
#define MFC_SRC_RT_CLIENT_AGENT_H_

#include <map>
#include <memory>

#include "src/core/config.h"
#include "src/rt/http_fetch.h"
#include "src/rt/session.h"
#include "src/rt/sockets.h"
#include "src/rt/transport.h"
#include "src/rt/wire.h"

namespace mfc {

// Session connection ids: the coordinator owns 1, agent |client_id| owns
// |client_id| + 2 — disjoint and nonzero (0 is the legacy sentinel) for any
// id the examples and tests mint.
inline constexpr uint64_t kCoordinatorConn = 1;
inline uint64_t AgentConn(uint64_t client_id) { return client_id + 2; }

class ClientAgent {
 public:
  // UDP backend: binds an ephemeral control socket on |reactor|.
  ClientAgent(Reactor& reactor, uint64_t client_id, const sockaddr_in& coordinator);
  // Custom backend (e.g. a MemoryHub endpoint): control datagrams ride
  // |transport|; HTTP fetches still use |reactor| sockets.
  ClientAgent(Reactor& reactor, uint64_t client_id, std::unique_ptr<Transport> transport,
              const TransportAddress& coordinator);
  ~ClientAgent();
  ClientAgent(const ClientAgent&) = delete;
  ClientAgent& operator=(const ClientAgent&) = delete;

  // Announces this agent to the coordinator; the session layer re-sends with
  // backoff until the coordinator acks (or attempts run out).
  void Register();
  bool Registered() const { return registered_; }

  uint64_t ClientId() const { return client_id_; }
  // Control port of the UDP backend; 0 when riding a custom transport.
  uint16_t ControlPort() const;
  void set_request_timeout(double seconds) { request_timeout_ = seconds; }
  void set_retry_policy(const RetryPolicy& policy);

  // Routes control datagrams and TCP connects through |fault| (which must
  // outlive the agent). nullptr restores fault-free operation.
  void set_fault_injector(FaultInjector* fault);

  uint64_t RequestsFired() const { return requests_fired_; }
  const SessionStats& session_stats() const { return session_->stats(); }

  // Health payload piggybacked on every PONG and SAMPLE (wire.h [stats]):
  // instantaneous inflight count plus the agent's cumulative counters.
  AgentStats CurrentStats() const;

 private:
  void OnDeliver(const ControlMessage& message, const TransportAddress& from,
                 uint64_t sender_conn);
  void HandleMeasure(const MsgMeasure& message, bool legacy);
  void HandleFire(const MsgFire& message, bool legacy);
  // Opens the command's parallel connections immediately; HandleFire defers
  // to this at the commanded fire_at instant.
  void FireNow(const MsgFire& message, bool legacy);
  void HandleRttProbe(const MsgRttProbe& message, bool legacy);
  // Legacy-peer token dedup (session peers are deduplicated by (conn, seq)
  // before delivery). True if |token| was already executed.
  bool SeenCommand(uint64_t token);
  void LaunchFetch(uint64_t token, const std::string& method, uint16_t port,
                   const std::string& target, size_t attempt, bool retry_connect,
                   bool legacy);
  // Reliable session send to the coordinator.
  void Reply(const ControlMessage& message, uint8_t lane = kLaneControl);

  Reactor& reactor_;
  uint64_t client_id_;
  TransportAddress coordinator_;
  std::unique_ptr<FaultedTransport> transport_;
  UdpTransport* udp_ = nullptr;  // inner transport when UDP-backed, else null
  std::unique_ptr<Session> session_;
  double request_timeout_ = 10.0;
  RetryPolicy retry_;
  FaultInjector* fault_ = nullptr;
  uint64_t requests_fired_ = 0;
  uint64_t fetch_errors_ = 0;      // failed connects + kill-timer expiries
  uint64_t legacy_dedup_hits_ = 0; // duplicate legacy commands discarded
  double rtt_ewma_ = -1.0;  // target-RTT EWMA from RTTPROBE successes, seconds
  uint64_t next_fetch_id_ = 1;
  uint64_t next_sample_id_ = 1;
  bool registered_ = false;
  std::map<uint64_t, std::unique_ptr<HttpFetch>> fetches_;
  std::map<uint64_t, std::unique_ptr<TcpConnection>> rtt_probes_;
  std::map<uint64_t, double> seen_commands_;  // legacy token -> receipt time
  // Guards every reactor task that captures |this|: the destructor flips it,
  // so tasks still queued when the agent dies become no-ops instead of
  // use-after-frees.
  std::shared_ptr<bool> alive_;
};

}  // namespace mfc

#endif  // MFC_SRC_RT_CLIENT_AGENT_H_
