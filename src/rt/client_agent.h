// Live MFC client agent (Figure 2b over real sockets).
//
// Registers with the coordinator over UDP, answers latency probes, and on
// command fires HTTP requests at the target the moment the command arrives —
// the synchronization comes entirely from when the coordinator *sends* each
// command (Section 2.2.4). Samples are pushed back over UDP as each request
// completes or hits the kill timer.
#ifndef MFC_SRC_RT_CLIENT_AGENT_H_
#define MFC_SRC_RT_CLIENT_AGENT_H_

#include <map>
#include <memory>

#include "src/rt/http_fetch.h"
#include "src/rt/sockets.h"
#include "src/rt/wire.h"

namespace mfc {

class ClientAgent {
 public:
  ClientAgent(Reactor& reactor, uint64_t client_id, const sockaddr_in& coordinator);
  ClientAgent(const ClientAgent&) = delete;
  ClientAgent& operator=(const ClientAgent&) = delete;

  // Announces this agent to the coordinator.
  void Register();

  uint64_t ClientId() const { return client_id_; }
  uint16_t ControlPort() const { return socket_.Port(); }
  void set_request_timeout(double seconds) { request_timeout_ = seconds; }

  uint64_t RequestsFired() const { return requests_fired_; }

 private:
  void OnDatagram(std::string_view payload, const sockaddr_in& from);
  void HandleMeasure(const MsgMeasure& message);
  void HandleFire(const MsgFire& message);
  void HandleRttProbe(const MsgRttProbe& message);
  void LaunchFetch(uint64_t token, const std::string& method, uint16_t port,
                   const std::string& target);
  void Send(const ControlMessage& message);

  Reactor& reactor_;
  uint64_t client_id_;
  sockaddr_in coordinator_;
  UdpSocket socket_;
  double request_timeout_ = 10.0;
  uint64_t requests_fired_ = 0;
  uint64_t next_fetch_id_ = 1;
  std::map<uint64_t, std::unique_ptr<HttpFetch>> fetches_;
  std::map<uint64_t, std::unique_ptr<TcpConnection>> rtt_probes_;
};

}  // namespace mfc

#endif  // MFC_SRC_RT_CLIENT_AGENT_H_
