#include "src/rt/http_fetch.h"

#include <utility>

#include "src/rt/fault_injector.h"

namespace mfc {

HttpFetch::HttpFetch(Reactor& reactor, double timeout, DoneCallback done)
    : reactor_(reactor), timeout_(timeout), done_(std::move(done)) {}

std::unique_ptr<HttpFetch> HttpFetch::Start(Reactor& reactor, uint16_t port,
                                            const HttpRequest& request, double timeout,
                                            DoneCallback done, FaultInjector* fault) {
  // unique_ptr with private ctor: wrap manually.
  std::unique_ptr<HttpFetch> fetch(new HttpFetch(reactor, timeout, std::move(done)));
  HttpFetch* self = fetch.get();
  self->start_ = reactor.Now();
  if (request.method == HttpMethod::kHead) {
    self->parser_.set_expect_body(false);
  }
  self->kill_timer_ = reactor.ScheduleAfter(timeout, [self] {
    self->kill_timer_ = 0;
    FetchResult result;
    result.timed_out = true;
    result.status = HttpStatus::kClientTimeout;
    result.elapsed = self->timeout_;
    result.bytes = self->wire_bytes_;
    self->Finish(result);
  });
  self->connection_ = TcpConnection::Connect(
      reactor, LoopbackEndpoint(port),
      [self, request](bool ok) { self->OnConnected(ok, request); }, fault);
  if (self->connection_ == nullptr) {
    // Immediate local failure; report asynchronously for a uniform contract.
    // The timer id is kept so destruction before the reactor drains cancels
    // the task instead of leaving it to fire on a dangling |self|.
    self->connect_fail_timer_ = reactor.ScheduleAfter(0.0, [self] {
      self->connect_fail_timer_ = 0;
      FetchResult result;
      result.connect_failed = true;
      result.status = HttpStatus::kServiceUnavailable;
      self->Finish(result);
    });
  }
  return fetch;
}

HttpFetch::~HttpFetch() {
  finished_ = true;  // suppress any in-flight Finish path
  if (kill_timer_ != 0) {
    reactor_.CancelTimer(kill_timer_);
  }
  if (connect_fail_timer_ != 0) {
    reactor_.CancelTimer(connect_fail_timer_);
  }
  if (done_timer_ != 0) {
    reactor_.CancelTimer(done_timer_);
  }
}

void HttpFetch::OnConnected(bool ok, const HttpRequest& request) {
  if (finished_) {
    return;
  }
  if (!ok) {
    FetchResult result;
    result.connect_failed = true;
    result.status = HttpStatus::kServiceUnavailable;
    result.elapsed = reactor_.Now() - start_;
    Finish(result);
    return;
  }
  connection_->SetCallbacks([this](std::string_view data) { OnData(data); },
                            [this] { OnClosed(); });
  connection_->Write(request.Serialize());
}

void HttpFetch::OnData(std::string_view data) {
  if (finished_) {
    return;
  }
  wire_bytes_ += data.size();
  parser_.Feed(data);
  if (parser_.Done()) {
    FetchResult result;
    result.status = parser_.Message().status;
    result.bytes = wire_bytes_;
    result.elapsed = reactor_.Now() - start_;
    Finish(result);
  } else if (parser_.Failed()) {
    FetchResult result;
    result.status = HttpStatus::kBadGateway;
    result.bytes = wire_bytes_;
    result.elapsed = reactor_.Now() - start_;
    Finish(result);
  }
}

void HttpFetch::OnClosed() {
  if (finished_) {
    return;
  }
  // Peer closed before a complete response: treat as a failed fetch.
  FetchResult result;
  result.status = HttpStatus::kBadGateway;
  result.bytes = wire_bytes_;
  result.elapsed = reactor_.Now() - start_;
  Finish(result);
}

void HttpFetch::Finish(FetchResult result) {
  if (finished_) {
    return;
  }
  finished_ = true;
  if (kill_timer_ != 0) {
    reactor_.CancelTimer(kill_timer_);
    kill_timer_ = 0;
  }
  if (connection_ != nullptr) {
    connection_->Close();
  }
  // Deliver off-stack so the owner may destroy us inside the callback. The
  // timer is cancelled by the destructor: "destroying the handle cancels the
  // operation" must hold even between Finish and delivery.
  auto callback = std::move(done_);
  done_timer_ = reactor_.ScheduleAfter(0.0, [callback = std::move(callback), result] {
    if (callback) {
      callback(result);
    }
  });
}

}  // namespace mfc
