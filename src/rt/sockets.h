// Thin RAII socket wrappers over the reactor: nonblocking TCP listener,
// TCP connection with buffered writes, and UDP datagram socket. Loopback-
// oriented (the test deployment), but nothing here is loopback-specific.
#ifndef MFC_SRC_RT_SOCKETS_H_
#define MFC_SRC_RT_SOCKETS_H_

#include <netinet/in.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>

#include "src/rt/reactor.h"

namespace mfc {

class FaultInjector;

// Closes the fd on destruction.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { Reset(); }
  ScopedFd(ScopedFd&& other) noexcept : fd_(other.Release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept;
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int Get() const { return fd_; }
  bool Valid() const { return fd_ >= 0; }
  int Release();
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

// IPv4 loopback endpoint helper.
sockaddr_in LoopbackEndpoint(uint16_t port);

class TcpConnection {
 public:
  using DataCallback = std::function<void(std::string_view)>;
  using ClosedCallback = std::function<void()>;

  // Adopts a connected (or connecting) nonblocking socket.
  TcpConnection(Reactor& reactor, ScopedFd fd);
  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Initiates a nonblocking connect; |on_connected| fires when writable.
  // A non-null |fault| may veto the attempt (returns nullptr, as for any
  // immediate local failure).
  static std::unique_ptr<TcpConnection> Connect(Reactor& reactor, const sockaddr_in& addr,
                                                std::function<void(bool ok)> on_connected,
                                                FaultInjector* fault = nullptr);

  void SetCallbacks(DataCallback on_data, ClosedCallback on_closed);

  // Queues |data| and flushes as the socket drains.
  void Write(std::string_view data);

  // Total payload bytes received so far.
  uint64_t BytesReceived() const { return bytes_received_; }
  bool IsOpen() const { return fd_.Valid(); }
  void Close();

 private:
  void OnEvent(uint32_t events);
  void FlushWrites();
  void UpdateInterest();

  Reactor& reactor_;
  ScopedFd fd_;
  std::function<void(bool)> on_connected_;
  DataCallback on_data_;
  ClosedCallback on_closed_;
  std::string write_buffer_;
  uint64_t bytes_received_ = 0;
  bool connecting_ = false;
};

class TcpListener {
 public:
  using AcceptCallback = std::function<void(std::unique_ptr<TcpConnection>)>;

  // Binds 127.0.0.1:|port| (0 = ephemeral) and listens.
  TcpListener(Reactor& reactor, uint16_t port, AcceptCallback on_accept);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  uint16_t Port() const { return port_; }

 private:
  void OnReadable();

  Reactor& reactor_;
  ScopedFd fd_;
  uint16_t port_ = 0;
  AcceptCallback on_accept_;
};

// Plain datagram socket: faults live one layer up (FaultedTransport in
// src/rt/transport.h wraps any transport with the PR-3 injector), so this
// class only moves bytes. Receives are batched with recvmmsg on Linux —
// a coordinator draining hundreds of agents' replies pays one syscall per
// batch instead of one per datagram.
class UdpSocket {
 public:
  using DatagramCallback = std::function<void(std::string_view, const sockaddr_in& from)>;

  // Binds 127.0.0.1:|port| (0 = ephemeral).
  UdpSocket(Reactor& reactor, uint16_t port);
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  void SetReceiver(DatagramCallback on_datagram);
  void SendTo(std::string_view payload, const sockaddr_in& to);
  uint16_t Port() const { return port_; }

  // Datagrams handed to the receiver / receive batches drained; the ratio is
  // the syscall amortization the batched path buys.
  uint64_t DatagramsReceived() const { return datagrams_received_; }
  uint64_t RecvBatches() const { return recv_batches_; }

 private:
  void OnReadable();

  Reactor& reactor_;
  ScopedFd fd_;
  uint16_t port_ = 0;
  DatagramCallback on_datagram_;
  uint64_t datagrams_received_ = 0;
  uint64_t recv_batches_ = 0;
};

}  // namespace mfc

#endif  // MFC_SRC_RT_SOCKETS_H_
