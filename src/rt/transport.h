// Pluggable datagram transports for the live control plane (DESIGN.md §13).
//
// The session layer (src/rt/session.h) is written against this interface so
// the same reliable-datagram code runs over three backends:
//
//   * UdpTransport     — real UDP sockets on the epoll reactor (deployment).
//   * MemoryHub        — in-process datagram switching with no file
//                        descriptors, delivered through reactor timers:
//                        hundreds of endpoints on one loopback box cost no
//                        fds and no kernel round trips.
//   * MemoryHub + SimTimerSource — the same hub driven by the simulation's
//                        EventLoop, so session retransmit/backoff logic runs
//                        under virtual time, deterministically.
//
// Faults are a decorator (FaultedTransport), not a socket feature: any
// backend becomes lossy/duplicating/delaying by wrapping it, which is how
// the PR-3 FaultInjector now reaches every transport uniformly.
#ifndef MFC_SRC_RT_TRANSPORT_H_
#define MFC_SRC_RT_TRANSPORT_H_

#include <netinet/in.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>

#include "src/rt/sockets.h"
#include "src/sim/event_loop.h"

namespace mfc {

class FaultInjector;

// Datagram source/destination, generic over backends: UDP endpoints carry a
// sockaddr_in, hub endpoints a small node id. Key() gives a total order so
// addresses can index maps regardless of kind.
struct TransportAddress {
  enum class Kind : uint8_t { kNode = 0, kUdp = 1 };
  Kind kind = Kind::kNode;
  uint64_t node = 0;  // kNode
  sockaddr_in udp{};  // kUdp

  static TransportAddress Node(uint64_t id) {
    TransportAddress address;
    address.kind = Kind::kNode;
    address.node = id;
    return address;
  }
  static TransportAddress Udp(const sockaddr_in& sa) {
    TransportAddress address;
    address.kind = Kind::kUdp;
    address.udp = sa;
    return address;
  }

  // kUdp keys pack (ip, port) under a high tag bit; kNode keys are the id.
  uint64_t Key() const {
    if (kind == Kind::kUdp) {
      return (1ull << 63) | (static_cast<uint64_t>(ntohl(udp.sin_addr.s_addr)) << 16) |
             static_cast<uint64_t>(ntohs(udp.sin_port));
    }
    return node;
  }
  bool operator==(const TransportAddress& other) const { return Key() == other.Key(); }
  bool operator<(const TransportAddress& other) const { return Key() < other.Key(); }
};

// Timer surface the session layer drives its retransmit queue with. Real
// transports back it with the epoll Reactor; the in-sim backend with the
// simulation EventLoop — the session code cannot tell the difference.
class TimerSource {
 public:
  virtual ~TimerSource() = default;
  virtual double Now() const = 0;
  virtual uint64_t ScheduleAfter(double delay, std::function<void()> callback) = 0;
  virtual bool Cancel(uint64_t id) = 0;
};

class ReactorTimerSource : public TimerSource {
 public:
  explicit ReactorTimerSource(Reactor& reactor) : reactor_(reactor) {}
  double Now() const override { return reactor_.Now(); }
  uint64_t ScheduleAfter(double delay, std::function<void()> callback) override {
    return reactor_.ScheduleAfter(delay, std::move(callback));
  }
  bool Cancel(uint64_t id) override { return reactor_.CancelTimer(id); }

 private:
  Reactor& reactor_;
};

class SimTimerSource : public TimerSource {
 public:
  explicit SimTimerSource(EventLoop& loop) : loop_(loop) {}
  double Now() const override { return loop_.Now(); }
  uint64_t ScheduleAfter(double delay, std::function<void()> callback) override {
    return loop_.ScheduleAfter(delay, std::move(callback));
  }
  bool Cancel(uint64_t id) override { return loop_.Cancel(id); }

 private:
  EventLoop& loop_;
};

// Unreliable datagram transport: send, receive, and a clock. Reliability,
// dedup, and priorities live one layer up, in Session.
class Transport {
 public:
  using RecvCallback =
      std::function<void(std::string_view payload, const TransportAddress& from)>;

  virtual ~Transport() = default;
  virtual void Send(std::string_view payload, const TransportAddress& to) = 0;
  virtual void SetReceiver(RecvCallback on_datagram) = 0;
  virtual TransportAddress LocalAddress() const = 0;
  virtual TimerSource& clock() = 0;
};

// Real UDP over the reactor. LocalAddress() is the bound loopback endpoint.
class UdpTransport : public Transport {
 public:
  // |port| 0 = ephemeral.
  UdpTransport(Reactor& reactor, uint16_t port);

  void Send(std::string_view payload, const TransportAddress& to) override;
  void SetReceiver(RecvCallback on_datagram) override;
  TransportAddress LocalAddress() const override;
  TimerSource& clock() override { return clock_; }

  uint16_t Port() const { return socket_.Port(); }

 private:
  ReactorTimerSource clock_;
  UdpSocket socket_;
};

// In-process datagram switch: endpoints register under small node ids and
// exchange datagrams through zero-delay clock tasks (so delivery is always
// asynchronous, exactly like a socket — a receive handler never runs inside
// the sender's Send call). Destinations that disappeared drop the datagram,
// as UDP to a closed port would. The hub must outlive its endpoints'
// *useful* life, but delivery tasks hold the internal state alive, so
// destruction order with pending tasks is safe in any order.
class MemoryHub {
 public:
  explicit MemoryHub(TimerSource& clock);
  ~MemoryHub();
  MemoryHub(const MemoryHub&) = delete;
  MemoryHub& operator=(const MemoryHub&) = delete;

  // A new endpoint with the next free node id.
  std::unique_ptr<Transport> CreateEndpoint();

  // Datagrams delivered (handed to a receiver) so far, across all endpoints.
  uint64_t Delivered() const;

 private:
  class Endpoint;
  struct State;
  std::shared_ptr<State> state_;
};

// Fault-injecting decorator: every Send consults |injector| (drop /
// duplicate / delay, per PR 3's deterministic streams). A null injector is a
// passthrough, so owners can wrap unconditionally and arm faults later.
// Delayed copies are delivered through clock timers, cancelled on
// destruction so no task outlives the decorator.
class FaultedTransport : public Transport {
 public:
  explicit FaultedTransport(std::unique_ptr<Transport> inner,
                            FaultInjector* injector = nullptr);
  ~FaultedTransport() override;

  void set_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* injector() const { return injector_; }
  Transport& inner() { return *inner_; }

  void Send(std::string_view payload, const TransportAddress& to) override;
  void SetReceiver(RecvCallback on_datagram) override;
  TransportAddress LocalAddress() const override;
  TimerSource& clock() override { return inner_->clock(); }

 private:
  std::unique_ptr<Transport> inner_;
  FaultInjector* injector_ = nullptr;
  std::set<uint64_t> pending_sends_;  // delayed-copy timers, cancelled in dtor
};

}  // namespace mfc

#endif  // MFC_SRC_RT_TRANSPORT_H_
