// Control-plane fault injection for the live runtime.
//
// The paper's deployment ran against flaky PlanetLab nodes and a lossy wide
// area; the simulation models that with WideAreaConfig::control_loss_rate.
// FaultInjector gives the live substrate the same failure model: hooked into
// UdpSocket it drops, delays, and duplicates control datagrams; hooked into
// TcpConnection::Connect it fails connection attempts — each with a
// configurable probability drawn from its own deterministic stream, so a
// fixed seed reproduces the same fault schedule.
#ifndef MFC_SRC_RT_FAULT_INJECTOR_H_
#define MFC_SRC_RT_FAULT_INJECTOR_H_

#include <cstdint>

#include "src/sim/rng.h"
#include "src/sim/sim_time.h"

namespace mfc {

struct FaultConfig {
  double drop_rate = 0.0;             // P(control datagram silently lost)
  double duplicate_rate = 0.0;        // P(datagram delivered twice)
  double delay_rate = 0.0;            // P(datagram held back |delay| seconds)
  SimDuration delay = Millis(20);     // reordering window for delayed datagrams
  double connect_failure_rate = 0.0;  // P(TCP connect attempt fails outright)
  // Half-dead node: after this many seconds past the first datagram, every
  // datagram is dropped regardless of |drop_rate|. <= 0 disables.
  SimDuration dead_after = 0.0;
  uint64_t seed = 1;

  bool AffectsDatagrams() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || delay_rate > 0.0 || dead_after > 0.0;
  }
  bool Enabled() const { return AffectsDatagrams() || connect_failure_rate > 0.0; }

  // The sim testbed's single control-loss knob, mapped onto the live model.
  static FaultConfig FromControlLossRate(double loss, uint64_t seed = 1) {
    FaultConfig config;
    config.drop_rate = loss;
    config.seed = seed;
    return config;
  }
};

struct FaultStats {
  uint64_t datagrams = 0;  // datagrams offered to the injector
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t delayed = 0;
  uint64_t connects = 0;  // connect attempts offered
  uint64_t failed_connects = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config) : config_(config), rng_(config.seed) {}

  struct DatagramPlan {
    bool drop = false;
    uint32_t copies = 1;
    SimDuration delay = 0.0;  // 0 = deliver immediately
  };

  // Fate of one outgoing control datagram; |now| feeds the dead_after clock.
  DatagramPlan PlanDatagram(double now);

  // True if this TCP connect attempt should fail.
  bool FailConnect();

  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }

 private:
  FaultConfig config_;
  Rng rng_;
  FaultStats stats_;
  double first_datagram_at_ = -1.0;
};

}  // namespace mfc

#endif  // MFC_SRC_RT_FAULT_INJECTOR_H_
