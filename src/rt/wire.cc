#include "src/rt/wire.h"

#include <charconv>
#include <vector>

namespace mfc {
namespace {

std::vector<std::string_view> SplitWords(std::string_view line) {
  std::vector<std::string_view> words;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') {
      ++pos;
    }
    size_t end = pos;
    while (end < line.size() && line[end] != ' ') {
      ++end;
    }
    if (end > pos) {
      words.push_back(line.substr(pos, end - pos));
    }
    pos = end;
  }
  return words;
}

template <typename T>
bool ParseNumber(std::string_view word, T& out) {
  auto [ptr, ec] = std::from_chars(word.data(), word.data() + word.size(), out);
  return ec == std::errc() && ptr == word.data() + word.size();
}

bool ValidMethod(std::string_view method) { return method == "GET" || method == "HEAD"; }

// The optional 6-word [stats] tail shared by PONG and SAMPLE.
std::string EncodeStats(const AgentStats& s) {
  return " " + std::to_string(s.inflight) + " " + std::to_string(s.fetch_errors) + " " +
         std::to_string(s.rtt_ewma_us) + " " + std::to_string(s.dedup_hits) + " " +
         std::to_string(s.fault_drops) + " " + std::to_string(s.requests_fired);
}

bool ParseStats(const std::vector<std::string_view>& words, size_t at, AgentStats& out) {
  return ParseNumber(words[at], out.inflight) && ParseNumber(words[at + 1], out.fetch_errors) &&
         ParseNumber(words[at + 2], out.rtt_ewma_us) &&
         ParseNumber(words[at + 3], out.dedup_hits) &&
         ParseNumber(words[at + 4], out.fault_drops) &&
         ParseNumber(words[at + 5], out.requests_fired);
}

}  // namespace

std::string EncodeMessage(const ControlMessage& message) {
  struct Encoder {
    std::string operator()(const MsgRegister& m) const {
      return "REGISTER " + std::to_string(m.client_id);
    }
    std::string operator()(const MsgPing& m) const { return "PING " + std::to_string(m.seq); }
    std::string operator()(const MsgPong& m) const {
      std::string line = "PONG " + std::to_string(m.seq);
      if (m.stats.has_value()) {
        line += EncodeStats(*m.stats);
      }
      return line;
    }
    std::string operator()(const MsgRttProbe& m) const {
      return "RTTPROBE " + std::to_string(m.token) + " " + std::to_string(m.tcp_port);
    }
    std::string operator()(const MsgRtt& m) const {
      return "RTT " + std::to_string(m.token) + " " + std::to_string(m.microseconds);
    }
    std::string operator()(const MsgMeasure& m) const {
      return "MEASURE " + std::to_string(m.token) + " " + m.method + " " +
             std::to_string(m.tcp_port) + " " + m.target;
    }
    std::string operator()(const MsgFire& m) const {
      return "FIRE " + std::to_string(m.token) + " " + std::to_string(m.connections) + " " +
             m.method + " " + std::to_string(m.tcp_port) + " " + m.target + " " +
             std::to_string(m.fire_at_micros);
    }
    std::string operator()(const MsgSample& m) const {
      std::string line = "SAMPLE " + std::to_string(m.token) + " " +
                         std::to_string(m.http_code) + " " + std::to_string(m.bytes) + " " +
                         std::to_string(m.rt_microseconds) + " " + (m.timed_out ? "1" : "0") +
                         " " + std::to_string(m.sample_id);
      if (m.stats.has_value()) {
        line += EncodeStats(*m.stats);
      }
      return line;
    }
    std::string operator()(const MsgRegisterAck& m) const {
      return "REGACK " + std::to_string(m.client_id);
    }
    std::string operator()(const MsgRttFail& m) const {
      return "RTTFAIL " + std::to_string(m.token);
    }
    std::string operator()(const MsgCmdAck& m) const {
      return "CMDACK " + std::to_string(m.token);
    }
    std::string operator()(const MsgSampleAck& m) const {
      return "SAMPLEACK " + std::to_string(m.sample_id);
    }
  };
  return std::visit(Encoder{}, message);
}

std::optional<ControlMessage> DecodeMessage(std::string_view line) {
  auto words = SplitWords(line);
  if (words.empty()) {
    return std::nullopt;
  }
  std::string_view verb = words[0];
  if (verb == "REGISTER" && words.size() == 2) {
    MsgRegister m;
    if (ParseNumber(words[1], m.client_id)) {
      return m;
    }
  } else if (verb == "PING" && words.size() == 2) {
    MsgPing m;
    if (ParseNumber(words[1], m.seq)) {
      return m;
    }
  } else if (verb == "PONG" && (words.size() == 2 || words.size() == 8)) {
    // The 6-word stats tail is optional so bare legacy pongs still parse.
    MsgPong m;
    if (ParseNumber(words[1], m.seq)) {
      if (words.size() == 2) {
        return m;
      }
      AgentStats stats;
      if (ParseStats(words, 2, stats)) {
        m.stats = stats;
        return m;
      }
    }
  } else if (verb == "RTTPROBE" && words.size() == 3) {
    MsgRttProbe m;
    if (ParseNumber(words[1], m.token) && ParseNumber(words[2], m.tcp_port)) {
      return m;
    }
  } else if (verb == "RTT" && words.size() == 3) {
    MsgRtt m;
    if (ParseNumber(words[1], m.token) && ParseNumber(words[2], m.microseconds)) {
      return m;
    }
  } else if (verb == "MEASURE" && words.size() == 5) {
    MsgMeasure m;
    m.method = std::string(words[2]);
    m.target = std::string(words[4]);
    if (ParseNumber(words[1], m.token) && ValidMethod(m.method) &&
        ParseNumber(words[3], m.tcp_port) && !m.target.empty() && m.target[0] == '/') {
      return m;
    }
  } else if (verb == "FIRE" && (words.size() == 6 || words.size() == 7)) {
    // The trailing fire-at timestamp is optional so pre-timestamp senders
    // still parse; absent means "fire on receipt".
    MsgFire m;
    m.method = std::string(words[3]);
    m.target = std::string(words[5]);
    if (ParseNumber(words[1], m.token) && ParseNumber(words[2], m.connections) &&
        ValidMethod(m.method) && ParseNumber(words[4], m.tcp_port) && !m.target.empty() &&
        m.target[0] == '/' && (words.size() == 6 || ParseNumber(words[6], m.fire_at_micros))) {
      return m;
    }
  } else if (verb == "SAMPLE" && (words.size() == 7 || words.size() == 13)) {
    // As with PONG, the stats tail is optional.
    MsgSample m;
    int timed_out = 0;
    if (ParseNumber(words[1], m.token) && ParseNumber(words[2], m.http_code) &&
        ParseNumber(words[3], m.bytes) && ParseNumber(words[4], m.rt_microseconds) &&
        ParseNumber(words[5], timed_out) && ParseNumber(words[6], m.sample_id)) {
      m.timed_out = timed_out != 0;
      if (words.size() == 7) {
        return m;
      }
      AgentStats stats;
      if (ParseStats(words, 7, stats)) {
        m.stats = stats;
        return m;
      }
    }
  } else if (verb == "REGACK" && words.size() == 2) {
    MsgRegisterAck m;
    if (ParseNumber(words[1], m.client_id)) {
      return m;
    }
  } else if (verb == "RTTFAIL" && words.size() == 2) {
    MsgRttFail m;
    if (ParseNumber(words[1], m.token)) {
      return m;
    }
  } else if (verb == "CMDACK" && words.size() == 2) {
    MsgCmdAck m;
    if (ParseNumber(words[1], m.token)) {
      return m;
    }
  } else if (verb == "SAMPLEACK" && words.size() == 2) {
    MsgSampleAck m;
    if (ParseNumber(words[1], m.sample_id)) {
      return m;
    }
  }
  return std::nullopt;
}

std::string EncodeSessionFrame(const SessionFrame& frame) {
  return "S1 " + std::to_string(frame.conn) + " " + std::to_string(frame.seq) + " " +
         std::to_string(frame.lane) + " " + (frame.reliable ? "1" : "0") + " " +
         EncodeMessage(frame.body);
}

std::string EncodeSessionAck(const SessionAck& ack) {
  return "A1 " + std::to_string(ack.conn) + " " + std::to_string(ack.seq);
}

bool LooksLikeSessionDatagram(std::string_view datagram) {
  return datagram.size() >= 3 && datagram[2] == ' ' && datagram[1] == '1' &&
         (datagram[0] == 'S' || datagram[0] == 'A');
}

std::optional<SessionFrame> DecodeSessionFrame(std::string_view datagram) {
  if (datagram.size() < 3 || datagram.substr(0, 3) != "S1 ") {
    return std::nullopt;
  }
  // Header = 4 fixed words after the magic; the rest of the line is the
  // inner message, decoded by the plain codec.
  std::string_view rest = datagram.substr(3);
  SessionFrame frame;
  uint32_t lane = 0;
  uint32_t rel = 0;
  uint32_t* header_u32[] = {&lane, &rel};
  uint64_t* header_u64[] = {&frame.conn, &frame.seq};
  size_t word = 0;
  size_t pos = 0;
  while (word < 4) {
    while (pos < rest.size() && rest[pos] == ' ') {
      ++pos;
    }
    size_t end = pos;
    while (end < rest.size() && rest[end] != ' ') {
      ++end;
    }
    if (end == pos) {
      return std::nullopt;  // ran out of header words
    }
    std::string_view token = rest.substr(pos, end - pos);
    bool ok = word < 2 ? ParseNumber(token, *header_u64[word])
                       : ParseNumber(token, *header_u32[word - 2]);
    if (!ok) {
      return std::nullopt;
    }
    pos = end;
    ++word;
  }
  if (lane > kLaneBulk || rel > 1) {
    return std::nullopt;
  }
  frame.lane = static_cast<uint8_t>(lane);
  frame.reliable = rel == 1;
  auto body = DecodeMessage(rest.substr(pos));
  if (!body.has_value()) {
    return std::nullopt;
  }
  frame.body = std::move(*body);
  return frame;
}

std::optional<SessionAck> DecodeSessionAck(std::string_view datagram) {
  if (datagram.size() < 3 || datagram.substr(0, 3) != "A1 ") {
    return std::nullopt;
  }
  auto words = SplitWords(datagram.substr(3));
  if (words.size() != 2) {
    return std::nullopt;
  }
  SessionAck ack;
  if (!ParseNumber(words[0], ack.conn) || !ParseNumber(words[1], ack.seq)) {
    return std::nullopt;
  }
  return ack;
}

}  // namespace mfc
