// Live-socket implementation of ClientHarness: the real MFC coordinator's
// transport. The very same Coordinator state machine that drives the
// simulation drives this over UDP control + TCP data on real hosts (here:
// loopback agents).
//
// The control plane is loss-tolerant: registrations are acked (REGACK),
// pings/RTT probes are re-sent with bounded backoff, MEASURE/FIRE commands
// are re-issued until the client's CMDACK arrives, and every SAMPLE is acked
// so client retransmissions stop. Duplicate samples (retransmits, or copies
// minted by a fault injector) are deduplicated by (token, sample_id), and a
// per-token budget caps how many samples one command may contribute.
#ifndef MFC_SRC_RT_LIVE_HARNESS_H_
#define MFC_SRC_RT_LIVE_HARNESS_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "src/core/config.h"
#include "src/core/harness.h"
#include "src/rt/sockets.h"
#include "src/rt/wire.h"
#include "src/telemetry/snapshot.h"

namespace mfc {

class MetricsRegistry;

// Control-plane health counters, exported to MetricsRegistry as live.*.
struct ControlPlaneStats {
  uint64_t ping_retries = 0;     // PINGs re-sent after a missed slice
  uint64_t rtt_retries = 0;      // RTTPROBEs re-sent
  uint64_t rtt_failures = 0;     // explicit RTTFAIL replies received
  uint64_t rtt_fallbacks = 0;    // probes that exhausted retries -> 1 s substitute
  uint64_t measure_retries = 0;  // MEASUREs re-issued awaiting CMDACK
  uint64_t fire_retries = 0;     // FIREs re-issued awaiting CMDACK
  uint64_t duplicate_samples = 0;  // retransmitted/duplicated SAMPLEs discarded
};

class LiveHarness : public ClientHarness {
 public:
  // |target_port|: TCP port of the server under test (requests carry only
  // the path; the harness owns the endpoint). |control_port| 0 = ephemeral.
  LiveHarness(Reactor& reactor, uint16_t target_port, uint16_t control_port = 0);
  ~LiveHarness() override;

  uint16_t ControlPort() const { return socket_.Port(); }

  // Blocks (runs the reactor) until |count| clients have registered or
  // |timeout| passes. Returns the registered count.
  size_t WaitForRegistrations(size_t count, double timeout);

  // Per-request client-side kill timer mirrored into fetch deadlines.
  void set_request_timeout(double seconds) { request_timeout_ = seconds; }
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  // Routes the coordinator's own control datagrams through |fault| (must
  // outlive the harness). nullptr restores fault-free operation.
  void set_fault_injector(FaultInjector* fault) { socket_.set_fault_injector(fault); }
  // Mirrors ControlPlaneStats increments into |metrics| under live.* names.
  void SetMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  const ControlPlaneStats& stats() const { return stats_; }
  // Total in-flight/leftover control-plane bookkeeping entries; tests assert
  // this stays bounded across stages (no token-map leaks).
  size_t PendingControlEntries() const;

  // Per-agent health table (DESIGN.md §11): last-seen age, probe miss
  // streak, control RTT EWMA, loss estimate, and the agent's own
  // piggybacked [stats] payload. One row per registered client, id order.
  std::vector<AgentHealthSnapshot> SnapshotAgents() const;

  // After this many consecutive unanswered ProbeClients rounds the agent is
  // reported unhealthy through ClientHealthy (and the coordinator's eviction
  // logic, when enabled, drops it). 0 = never (the default: health is
  // observed but has no effect).
  void set_unhealthy_after_misses(size_t misses) { unhealthy_after_misses_ = misses; }

  // ClientHarness:
  size_t ClientCount() const override { return clients_.size(); }
  std::vector<size_t> ProbeClients(SimDuration timeout) override;
  SimDuration MeasureCoordRtt(size_t client) override;
  SimDuration MeasureTargetRtt(size_t client) override;
  RequestSample FetchOnce(size_t client, const HttpRequest& request) override;
  std::vector<RequestSample> ExecuteCrowd(const std::vector<CrowdRequestPlan>& plans,
                                          SimTime poll_time) override;
  SimTime Now() const override { return reactor_.Now(); }
  void WaitUntil(SimTime t) override;
  bool ClientHealthy(size_t client) const override;

 private:
  // One agent's running health record, folded from every datagram we can
  // attribute to it (registrations, solicited pongs, crowd samples).
  struct AgentHealth {
    double last_seen = -1.0;     // reactor time of the last attributed datagram
    uint64_t miss_streak = 0;    // consecutive ProbeClients rounds unanswered
    double rtt_ewma = -1.0;      // coordinator-side control RTT EWMA, seconds
    uint64_t pings_sent = 0;     // PINGs addressed to this agent
    uint64_t pongs_received = 0; // solicited PONGs attributed back
    bool has_agent_stats = false;
    AgentStats agent;            // last piggybacked [stats] payload
  };

  // Records a datagram attributed to |client| and merges an optional
  // piggybacked payload.
  void TouchAgent(size_t client, const AgentStats* stats);
  void OnDatagram(std::string_view payload, const sockaddr_in& from);
  void SendTo(size_t client, const ControlMessage& message);
  void Bump(uint64_t& counter, const char* metric, uint64_t delta = 1);
  // Re-sends |fire| with backoff until the client acks it, the crowd
  // generation moves on, or attempts run out.
  void ScheduleFireRetry(uint64_t generation, size_t client, const MsgFire& fire,
                         size_t attempt);

  Reactor& reactor_;
  uint16_t target_port_;
  UdpSocket socket_;
  double request_timeout_ = 10.0;
  RetryPolicy retry_;
  ControlPlaneStats stats_;
  MetricsRegistry* metrics_ = nullptr;
  std::map<size_t, sockaddr_in> clients_;  // registered agents by id
  std::map<size_t, AgentHealth> health_;   // health rows by client id
  size_t unhealthy_after_misses_ = 0;      // 0 = ClientHealthy always true

  // In-flight expectations, keyed by token / seq. Every wait cleans up the
  // tokens it minted — from the completed maps too — so late or unsolicited
  // replies cannot accumulate across a long experiment.
  uint64_t next_token_ = 1;
  std::map<uint64_t, double> pending_pongs_;    // seq -> send time
  std::map<uint64_t, double> completed_pongs_;  // seq -> rtt
  std::map<uint64_t, size_t> pong_owner_;       // seq -> client, for attribution
  std::set<uint64_t> pending_rtt_probes_;       // tokens with an outstanding probe
  std::map<uint64_t, double> completed_rtts_;   // token -> seconds (-1 = failed)
  std::set<uint64_t> acked_commands_;           // MEASURE/FIRE tokens CMDACKed
  struct PendingCrowd {
    std::map<uint64_t, size_t> token_to_client;
    // token -> samples this command may still contribute (connections).
    std::map<uint64_t, uint32_t> budget;
    // (token, sample_id) pairs already counted.
    std::set<std::pair<uint64_t, uint64_t>> seen;
    std::vector<RequestSample> samples;
  };
  std::optional<PendingCrowd> crowd_;
  // Bumped at crowd start AND end so pending FIRE-retry timers from any
  // earlier crowd turn into no-ops.
  uint64_t crowd_generation_ = 0;
  // Guards reactor tasks that capture |this| (FIRE sends/retries) against
  // the harness being destroyed first.
  std::shared_ptr<bool> alive_;
};

}  // namespace mfc

#endif  // MFC_SRC_RT_LIVE_HARNESS_H_
