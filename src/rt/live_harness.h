// Live-socket implementation of ClientHarness: the real MFC coordinator's
// transport. The very same Coordinator state machine that drives the
// simulation drives this over UDP control + TCP data on real hosts (here:
// loopback agents).
#ifndef MFC_SRC_RT_LIVE_HARNESS_H_
#define MFC_SRC_RT_LIVE_HARNESS_H_

#include <map>
#include <optional>
#include <vector>

#include "src/core/harness.h"
#include "src/rt/sockets.h"
#include "src/rt/wire.h"

namespace mfc {

class LiveHarness : public ClientHarness {
 public:
  // |target_port|: TCP port of the server under test (requests carry only
  // the path; the harness owns the endpoint). |control_port| 0 = ephemeral.
  LiveHarness(Reactor& reactor, uint16_t target_port, uint16_t control_port = 0);

  uint16_t ControlPort() const { return socket_.Port(); }

  // Blocks (runs the reactor) until |count| clients have registered or
  // |timeout| passes. Returns the registered count.
  size_t WaitForRegistrations(size_t count, double timeout);

  // Per-request client-side kill timer mirrored into fetch deadlines.
  void set_request_timeout(double seconds) { request_timeout_ = seconds; }

  // ClientHarness:
  size_t ClientCount() const override { return clients_.size(); }
  std::vector<size_t> ProbeClients(SimDuration timeout) override;
  SimDuration MeasureCoordRtt(size_t client) override;
  SimDuration MeasureTargetRtt(size_t client) override;
  RequestSample FetchOnce(size_t client, const HttpRequest& request) override;
  std::vector<RequestSample> ExecuteCrowd(const std::vector<CrowdRequestPlan>& plans,
                                          SimTime poll_time) override;
  SimTime Now() const override { return reactor_.Now(); }
  void WaitUntil(SimTime t) override;

 private:
  void OnDatagram(std::string_view payload, const sockaddr_in& from);
  void SendTo(size_t client, const ControlMessage& message);

  Reactor& reactor_;
  uint16_t target_port_;
  UdpSocket socket_;
  double request_timeout_ = 10.0;
  std::map<size_t, sockaddr_in> clients_;  // registered agents by id

  // In-flight expectations, keyed by token / seq.
  uint64_t next_token_ = 1;
  std::map<uint64_t, double> pending_pongs_;        // seq -> send time
  std::map<uint64_t, double> completed_pongs_;      // seq -> rtt
  std::map<uint64_t, double> completed_rtts_;       // token -> seconds
  struct PendingCrowd {
    std::map<uint64_t, size_t> token_to_client;
    std::vector<RequestSample> samples;
  };
  std::optional<PendingCrowd> crowd_;
};

}  // namespace mfc

#endif  // MFC_SRC_RT_LIVE_HARNESS_H_
