// Live-socket implementation of ClientHarness: the real MFC coordinator's
// transport. The very same Coordinator state machine that drives the
// simulation drives this over UDP control + TCP data on real hosts (here:
// loopback agents).
//
// Loss tolerance is delegated to the session layer (src/rt/session.h): every
// command (PING, RTTPROBE, MEASURE, FIRE) is one reliable session send that
// retransmits until the agent's session ack, and every reply leg (PONG,
// RTT/RTTFAIL, SAMPLE) is reliable in the opposite direction — so each leg
// converges independently and this harness schedules no retransmits of its
// own. Duplicate frames are suppressed by (conn, seq) before delivery; an
// app-level (token, sample_id) dedup plus a per-token budget remain as the
// compat path for legacy (bare-datagram) agents.
#ifndef MFC_SRC_RT_LIVE_HARNESS_H_
#define MFC_SRC_RT_LIVE_HARNESS_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "src/core/config.h"
#include "src/core/harness.h"
#include "src/rt/session.h"
#include "src/rt/sockets.h"
#include "src/rt/transport.h"
#include "src/rt/wire.h"
#include "src/telemetry/snapshot.h"

namespace mfc {

class MetricsRegistry;

// App-level control-plane health counters, exported to MetricsRegistry as
// live.* (transport-level retry/dedup counters moved to the session layer's
// live.session.* family).
struct ControlPlaneStats {
  uint64_t rtt_retries = 0;        // RTT probes re-issued (new token) after RTTFAIL
  uint64_t rtt_failures = 0;       // explicit RTTFAIL replies received
  uint64_t rtt_fallbacks = 0;      // probes that exhausted retries -> 1 s substitute
  uint64_t duplicate_samples = 0;  // over-budget or legacy-duplicate SAMPLEs discarded
};

class LiveHarness : public ClientHarness {
 public:
  // UDP backend. |target_port|: TCP port of the server under test (requests
  // carry only the path; the harness owns the endpoint). |control_port| 0 =
  // ephemeral.
  LiveHarness(Reactor& reactor, uint16_t target_port, uint16_t control_port = 0);
  // Custom control-plane backend (e.g. a MemoryHub endpoint).
  LiveHarness(Reactor& reactor, uint16_t target_port, std::unique_ptr<Transport> transport);
  ~LiveHarness() override;

  // Control port of the UDP backend; 0 when riding a custom transport.
  uint16_t ControlPort() const;

  // Blocks (runs the reactor) until |count| clients have registered or
  // |timeout| passes. Returns the registered count.
  size_t WaitForRegistrations(size_t count, double timeout);

  // Per-request client-side kill timer mirrored into fetch deadlines.
  void set_request_timeout(double seconds) { request_timeout_ = seconds; }
  void set_retry_policy(const RetryPolicy& policy);
  // Routes the coordinator's own control datagrams through |fault| (must
  // outlive the harness). nullptr restores fault-free operation.
  void set_fault_injector(FaultInjector* fault) { transport_->set_injector(fault); }
  // Mirrors stats increments into |metrics| under live.* / live.session.*.
  void SetMetrics(MetricsRegistry* metrics);

  const ControlPlaneStats& stats() const { return stats_; }
  const SessionStats& session_stats() const { return session_->stats(); }
  // Total in-flight/leftover control-plane bookkeeping entries — harness
  // token maps plus the session's pending reliable transfers; tests assert
  // this stays bounded across stages (no token-map leaks).
  size_t PendingControlEntries() const;

  // Per-agent health table (DESIGN.md §11): last-seen age, probe miss
  // streak, control RTT EWMA, loss estimate, and the agent's own
  // piggybacked [stats] payload. One row per registered client, id order.
  std::vector<AgentHealthSnapshot> SnapshotAgents() const;

  // After this many consecutive unanswered ProbeClients rounds the agent is
  // reported unhealthy through ClientHealthy (and the coordinator's eviction
  // logic, when enabled, drops it). 0 = never (the default: health is
  // observed but has no effect).
  void set_unhealthy_after_misses(size_t misses) { unhealthy_after_misses_ = misses; }

  // ClientHarness:
  size_t ClientCount() const override { return clients_.size(); }
  std::vector<size_t> ProbeClients(SimDuration timeout) override;
  SimDuration MeasureCoordRtt(size_t client) override;
  SimDuration MeasureTargetRtt(size_t client) override;
  RequestSample FetchOnce(size_t client, const HttpRequest& request) override;
  std::vector<RequestSample> ExecuteCrowd(const std::vector<CrowdRequestPlan>& plans,
                                          SimTime poll_time) override;
  SimTime Now() const override { return reactor_.Now(); }
  void WaitUntil(SimTime t) override;
  bool ClientHealthy(size_t client) const override;

 private:
  // One agent's running health record, folded from every datagram we can
  // attribute to it (registrations, solicited pongs, crowd samples).
  struct AgentHealth {
    double last_seen = -1.0;     // reactor time of the last attributed datagram
    uint64_t miss_streak = 0;    // consecutive ProbeClients rounds unanswered
    double rtt_ewma = -1.0;      // coordinator-side control RTT EWMA, seconds
    uint64_t pings_sent = 0;     // PING rounds addressed to this agent
    uint64_t pongs_received = 0; // solicited PONGs attributed back
    bool has_agent_stats = false;
    AgentStats agent;            // last piggybacked [stats] payload
  };

  // Records a datagram attributed to |client| and merges an optional
  // piggybacked payload.
  void TouchAgent(size_t client, const AgentStats* stats);
  void OnDeliver(const ControlMessage& message, const TransportAddress& from,
                 uint64_t sender_conn);
  // Reliable session send to a registered client; returns 0 if unknown.
  Session::TransferId SendTo(size_t client, const ControlMessage& message);
  void Bump(uint64_t& counter, const char* metric, uint64_t delta = 1);
  // Cancels any still-pending transfers a wait minted before returning.
  void CancelTransfers(const std::vector<Session::TransferId>& ids);

  Reactor& reactor_;
  uint16_t target_port_;
  std::unique_ptr<FaultedTransport> transport_;
  UdpTransport* udp_ = nullptr;  // inner transport when UDP-backed, else null
  std::unique_ptr<Session> session_;
  double request_timeout_ = 10.0;
  RetryPolicy retry_;
  ControlPlaneStats stats_;
  MetricsRegistry* metrics_ = nullptr;
  std::map<size_t, TransportAddress> clients_;   // registered agents by id
  std::set<size_t> legacy_clients_;              // agents speaking bare datagrams
  std::map<size_t, AgentHealth> health_;         // health rows by client id
  size_t unhealthy_after_misses_ = 0;            // 0 = ClientHealthy always true

  // In-flight expectations, keyed by token / seq. Every wait cleans up the
  // tokens it minted — from the completed maps too — so late or unsolicited
  // replies cannot accumulate across a long experiment.
  uint64_t next_token_ = 1;
  std::map<uint64_t, double> pending_pongs_;    // seq -> send time
  std::map<uint64_t, double> completed_pongs_;  // seq -> rtt
  std::map<uint64_t, size_t> pong_owner_;       // seq -> client, for attribution
  std::set<uint64_t> pending_rtt_probes_;       // tokens with an outstanding probe
  std::map<uint64_t, double> completed_rtts_;   // token -> seconds (-1 = failed)
  struct PendingCrowd {
    std::map<uint64_t, size_t> token_to_client;
    // token -> samples this command may still contribute (connections).
    std::map<uint64_t, uint32_t> budget;
    // (token, sample_id) pairs already counted — the legacy-agent dedup
    // (session agents are deduplicated by (conn, seq) before delivery).
    std::set<std::pair<uint64_t, uint64_t>> seen;
    std::vector<RequestSample> samples;
  };
  std::optional<PendingCrowd> crowd_;
  // Reliable transfers the current crowd minted; cancelled when it ends so
  // FIREs to dead agents stop retransmitting into the next stage.
  std::vector<Session::TransferId> crowd_transfers_;
  // Bumped at crowd start AND end so scheduled FIRE sends from any earlier
  // crowd turn into no-ops.
  uint64_t crowd_generation_ = 0;
  // Guards reactor tasks that capture |this| (deferred FIRE sends) against
  // the harness being destroyed first.
  std::shared_ptr<bool> alive_;
};

}  // namespace mfc

#endif  // MFC_SRC_RT_LIVE_HARNESS_H_
