// Real TCP/HTTP server serving a ContentStore on loopback.
//
// One request per connection (like the probe clients' usage pattern): parse
// with the incremental RequestParser, resolve against the store, optionally
// delay the response by a configurable service model, then write real bytes
// (text pages verbatim, bulk objects as filler of the advertised size) and
// close. This is the target for the live-runtime integration tests and the
// loopback demo tool.
#ifndef MFC_SRC_RT_LIVE_HTTP_SERVER_H_
#define MFC_SRC_RT_LIVE_HTTP_SERVER_H_

#include <functional>
#include <map>
#include <memory>

#include "src/content/object_store.h"
#include "src/http/parser.h"
#include "src/rt/sockets.h"

namespace mfc {

class LiveHttpServer {
 public:
  // Seconds of artificial service time given the number of requests
  // currently being handled (the validation server's knob, Section 3.1).
  using ServiceDelayModel = std::function<double(size_t concurrent)>;

  LiveHttpServer(Reactor& reactor, const ContentStore* content, uint16_t port = 0);

  uint16_t Port() const { return listener_.Port(); }
  void SetServiceDelay(ServiceDelayModel model) { delay_model_ = std::move(model); }

  uint64_t RequestsServed() const { return requests_served_; }
  size_t Concurrent() const { return sessions_.size(); }
  // Arrival timestamps (reactor clock) for sync analysis.
  const std::vector<double>& Arrivals() const { return arrivals_; }

 private:
  struct Session {
    uint64_t id;
    std::unique_ptr<TcpConnection> connection;
    RequestParser parser;
  };

  void OnAccept(std::unique_ptr<TcpConnection> connection);
  void OnData(uint64_t session_id, std::string_view data);
  void Respond(uint64_t session_id);
  void DropSession(uint64_t session_id);

  Reactor& reactor_;
  const ContentStore* content_;
  TcpListener listener_;
  ServiceDelayModel delay_model_;
  uint64_t next_session_id_ = 1;
  std::map<uint64_t, Session> sessions_;
  uint64_t requests_served_ = 0;
  std::vector<double> arrivals_;
};

}  // namespace mfc

#endif  // MFC_SRC_RT_LIVE_HTTP_SERVER_H_
