#include "src/rt/fault_injector.h"

namespace mfc {

FaultInjector::DatagramPlan FaultInjector::PlanDatagram(double now) {
  DatagramPlan plan;
  ++stats_.datagrams;
  if (first_datagram_at_ < 0.0) {
    first_datagram_at_ = now;
  }
  bool dead = config_.dead_after > 0.0 && now - first_datagram_at_ >= config_.dead_after;
  if (dead || (config_.drop_rate > 0.0 && rng_.Chance(config_.drop_rate))) {
    plan.drop = true;
    ++stats_.dropped;
    return plan;
  }
  if (config_.duplicate_rate > 0.0 && rng_.Chance(config_.duplicate_rate)) {
    plan.copies = 2;
    ++stats_.duplicated;
  }
  if (config_.delay_rate > 0.0 && rng_.Chance(config_.delay_rate)) {
    plan.delay = config_.delay;
    ++stats_.delayed;
  }
  return plan;
}

bool FaultInjector::FailConnect() {
  ++stats_.connects;
  if (config_.connect_failure_rate > 0.0 && rng_.Chance(config_.connect_failure_rate)) {
    ++stats_.failed_connects;
    return true;
  }
  return false;
}

}  // namespace mfc
