// Generic reliable-datagram session layer (DESIGN.md §13).
//
// PR 3 hardened the control plane with five bespoke retry/dedup paths —
// REGISTER/REGACK backoff, per-attempt PING reprobes, RTTPROBE re-issue,
// MEASURE/FIRE-until-CMDACK, SAMPLE/SAMPLEACK retransmit — each with its own
// timers, token maps, and leak hazards. This layer replaces all five with
// one mechanism, libquicr-style:
//
//   * every endpoint owns a connection id; outgoing frames carry
//     (conn, seq) and an optional reliable bit,
//   * SendReliable retransmits a frame with RetryPolicy backoff until the
//     peer's session-level ack arrives (or attempts run out), driven by a
//     single time-ordered retry queue with ONE armed clock timer,
//   * receivers ack reliable frames — duplicates included, so the sender's
//     loop always terminates — and deduplicate by (conn, seq) before
//     delivery, so the application sees each frame exactly once,
//   * two priority lanes: when a retry batch comes due, control frames
//     (PING/RTTPROBE/MEASURE/FIRE/...) retransmit before bulk (SAMPLE),
//     so a loss burst can't starve command delivery behind sample backlog.
//
// Datagrams without session framing are legacy control messages from
// pre-session peers: they are delivered with sender_conn == 0 and no dedup,
// leaving app-level token dedup (kept for compat) to cover mixed fleets.
//
// The layer is transport- and clock-agnostic: the same Session runs over
// real UDP on the reactor, the in-process MemoryHub, or the simulation
// EventLoop via SimTimerSource — which is how the perf suite measures
// retransmit behavior deterministically.
#ifndef MFC_SRC_RT_SESSION_H_
#define MFC_SRC_RT_SESSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "src/core/config.h"
#include "src/rt/transport.h"
#include "src/rt/wire.h"

namespace mfc {

class MetricsRegistry;

struct SessionConfig {
  // Endpoint's connection id; must be unique fleet-wide and nonzero (0 is
  // the legacy-peer sentinel in delivery callbacks).
  uint64_t conn = 1;
  RetryPolicy retry;
  // Receiver-side dedup window: (conn, seq) pairs older than |dedup_ttl|
  // seconds are forgotten, and at most |dedup_cap| pairs are held (oldest
  // evicted first) — same bounds the agent's token dedup used.
  double dedup_ttl = 60.0;
  size_t dedup_cap = 4096;
};

// Mirrored to MetricsRegistry under live.session.* when SetMetrics is set.
struct SessionStats {
  uint64_t frames_sent = 0;     // first transmissions, reliable + bare
  uint64_t retransmits = 0;     // reliable frames re-sent after backoff
  uint64_t delivered = 0;       // unique frames handed to the application
  uint64_t duplicates = 0;      // (conn, seq) repeats suppressed before delivery
  uint64_t acks_sent = 0;
  uint64_t acks_received = 0;   // acks that completed a pending transfer
  uint64_t gave_up = 0;         // reliable transfers that exhausted attempts
  uint64_t legacy_frames = 0;   // bare pre-session datagrams delivered
  uint64_t decode_errors = 0;   // undecodable datagrams dropped
};

class Session {
 public:
  using TransferId = uint64_t;
  // |sender_conn| is the peer's connection id, or 0 for a legacy bare
  // datagram (no session framing, no dedup performed).
  using DeliveryHandler = std::function<void(const ControlMessage& message,
                                             const TransportAddress& from,
                                             uint64_t sender_conn)>;
  // Fired exactly once per SendReliable: true when the peer acked, false
  // when attempts ran out. Cancelled transfers fire nothing.
  using SendOutcome = std::function<void(bool delivered)>;

  Session(Transport& transport, const SessionConfig& config);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  void SetDeliveryHandler(DeliveryHandler handler);

  // Sends |message| framed on |lane| and retransmits with the configured
  // backoff until acked. Returns a handle for Cancel.
  TransferId SendReliable(const ControlMessage& message, const TransportAddress& to,
                          uint8_t lane = kLaneControl, SendOutcome outcome = nullptr);

  // Drops a pending transfer (no further retransmits, outcome never fires).
  // Returns false if it already completed.
  bool Cancel(TransferId id);

  // Fire-and-forget *unframed* datagram — the legacy wire format, for peers
  // that predate the session layer.
  void SendBare(const ControlMessage& message, const TransportAddress& to);

  // Reliable transfers still awaiting ack or give-up. Tests assert this
  // drains back to zero between stages.
  size_t PendingReliable() const { return pending_.size(); }

  const SessionStats& stats() const { return stats_; }
  // Mirrors every stats increment into |metrics| under live.session.*.
  void SetMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  uint64_t conn() const { return config_.conn; }
  void set_retry_policy(const RetryPolicy& retry) { config_.retry = retry; }

 private:
  struct PendingTransfer {
    std::string encoded;  // framed bytes, re-sent verbatim
    TransportAddress to;
    uint8_t lane = kLaneControl;
    size_t attempts = 1;  // transmissions so far
    double due = 0.0;     // next retransmit (or give-up) instant
    SendOutcome outcome;
  };

  void OnDatagram(std::string_view payload, const TransportAddress& from);
  void OnAck(const SessionAck& ack);
  // True if (conn, seq) was already delivered; records it otherwise.
  bool SeenFrame(uint64_t conn, uint64_t seq);
  void ArmRetryTimer();
  void OnRetryTimer();
  void Bump(uint64_t& counter, const char* metric, uint64_t delta = 1);

  Transport& transport_;
  SessionConfig config_;
  DeliveryHandler handler_;
  MetricsRegistry* metrics_ = nullptr;
  SessionStats stats_;

  uint64_t next_seq_ = 1;
  std::map<TransferId, PendingTransfer> pending_;  // keyed by our seq
  // Time-ordered retry index over pending_; the earliest entry decides the
  // single armed clock timer.
  std::multimap<double, TransferId> retry_queue_;
  uint64_t armed_timer_ = 0;
  double armed_due_ = -1.0;

  // Receiver dedup: (sender conn, seq) -> receipt time, pruned FIFO.
  std::map<std::pair<uint64_t, uint64_t>, double> seen_;
  std::deque<std::pair<uint64_t, uint64_t>> seen_order_;
};

}  // namespace mfc

#endif  // MFC_SRC_RT_SESSION_H_
