#include "src/rt/sockets.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>

#include "src/rt/fault_injector.h"

namespace mfc {
namespace {

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

uint16_t BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  return ntohs(addr.sin_port);
}

}  // namespace

ScopedFd& ScopedFd::operator=(ScopedFd&& other) noexcept {
  if (this != &other) {
    Reset(other.Release());
  }
  return *this;
}

int ScopedFd::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void ScopedFd::Reset(int fd) {
  if (fd_ >= 0) {
    close(fd_);
  }
  fd_ = fd;
}

sockaddr_in LoopbackEndpoint(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

TcpConnection::TcpConnection(Reactor& reactor, ScopedFd fd)
    : reactor_(reactor), fd_(std::move(fd)) {
  SetNonBlocking(fd_.Get());
  reactor_.WatchFd(fd_.Get(), EPOLLIN, [this](uint32_t events) { OnEvent(events); });
}

TcpConnection::~TcpConnection() { Close(); }

std::unique_ptr<TcpConnection> TcpConnection::Connect(Reactor& reactor, const sockaddr_in& addr,
                                                      std::function<void(bool)> on_connected,
                                                      FaultInjector* fault) {
  if (fault != nullptr && fault->FailConnect()) {
    return nullptr;  // injected local connect failure
  }
  ScopedFd fd(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.Valid()) {
    return nullptr;
  }
  SetNonBlocking(fd.Get());
  int rc = connect(fd.Get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return nullptr;
  }
  auto conn = std::make_unique<TcpConnection>(reactor, std::move(fd));
  conn->connecting_ = true;
  conn->on_connected_ = std::move(on_connected);
  conn->UpdateInterest();
  return conn;
}

void TcpConnection::SetCallbacks(DataCallback on_data, ClosedCallback on_closed) {
  on_data_ = std::move(on_data);
  on_closed_ = std::move(on_closed);
}

void TcpConnection::Write(std::string_view data) {
  write_buffer_.append(data);
  FlushWrites();
}

void TcpConnection::Close() {
  if (fd_.Valid()) {
    reactor_.UnwatchFd(fd_.Get());
    fd_.Reset();
  }
}

void TcpConnection::UpdateInterest() {
  if (!fd_.Valid()) {
    return;
  }
  uint32_t events = EPOLLIN;
  if (connecting_ || !write_buffer_.empty()) {
    events |= EPOLLOUT;
  }
  reactor_.WatchFd(fd_.Get(), events, [this](uint32_t ev) { OnEvent(ev); });
}

void TcpConnection::FlushWrites() {
  if (!fd_.Valid() || connecting_) {
    return;
  }
  while (!write_buffer_.empty()) {
    ssize_t n = send(fd_.Get(), write_buffer_.data(), write_buffer_.size(), MSG_NOSIGNAL);
    if (n > 0) {
      write_buffer_.erase(0, static_cast<size_t>(n));
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else {
      Close();
      if (on_closed_) {
        on_closed_();
      }
      return;
    }
  }
  UpdateInterest();
}

void TcpConnection::OnEvent(uint32_t events) {
  if (connecting_ && (events & (EPOLLOUT | EPOLLERR))) {
    connecting_ = false;
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd_.Get(), SOL_SOCKET, SO_ERROR, &err, &len);
    auto callback = std::move(on_connected_);
    on_connected_ = nullptr;
    if (err != 0) {
      Close();
      if (callback) {
        callback(false);
      }
      return;
    }
    UpdateInterest();
    if (callback) {
      callback(true);
    }
    if (!fd_.Valid()) {
      return;
    }
  }
  if (events & EPOLLIN) {
    char buf[64 * 1024];
    for (;;) {
      ssize_t n = recv(fd_.Get(), buf, sizeof(buf), 0);
      if (n > 0) {
        bytes_received_ += static_cast<uint64_t>(n);
        if (on_data_) {
          on_data_(std::string_view(buf, static_cast<size_t>(n)));
          if (!fd_.Valid()) {
            return;  // callback closed us
          }
        }
      } else if (n == 0) {
        Close();
        if (on_closed_) {
          on_closed_();
        }
        return;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else {
        Close();
        if (on_closed_) {
          on_closed_();
        }
        return;
      }
    }
  }
  if (events & EPOLLOUT) {
    FlushWrites();
  }
  if (events & (EPOLLHUP | EPOLLERR)) {
    if (fd_.Valid()) {
      Close();
      if (on_closed_) {
        on_closed_();
      }
    }
  }
}

TcpListener::TcpListener(Reactor& reactor, uint16_t port, AcceptCallback on_accept)
    : reactor_(reactor), on_accept_(std::move(on_accept)) {
  fd_.Reset(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  assert(fd_.Valid());
  int one = 1;
  setsockopt(fd_.Get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackEndpoint(port);
  int rc = bind(fd_.Get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  assert(rc == 0);
  rc = listen(fd_.Get(), 128);
  assert(rc == 0);
  (void)rc;
  port_ = BoundPort(fd_.Get());
  SetNonBlocking(fd_.Get());
  reactor_.WatchFd(fd_.Get(), EPOLLIN, [this](uint32_t) { OnReadable(); });
}

TcpListener::~TcpListener() {
  if (fd_.Valid()) {
    reactor_.UnwatchFd(fd_.Get());
  }
}

void TcpListener::OnReadable() {
  for (;;) {
    int client = accept4(fd_.Get(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client < 0) {
      return;  // EAGAIN or transient error
    }
    on_accept_(std::make_unique<TcpConnection>(reactor_, ScopedFd(client)));
  }
}

UdpSocket::UdpSocket(Reactor& reactor, uint16_t port) : reactor_(reactor) {
  fd_.Reset(socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0));
  assert(fd_.Valid());
  // A coordinator taking a whole fleet's SAMPLE burst on one socket can
  // overrun the default receive buffer between polls; ask for headroom (the
  // kernel clamps to rmem_max, so this is best-effort).
  int rcvbuf = 1 << 20;
  setsockopt(fd_.Get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr = LoopbackEndpoint(port);
  int rc = bind(fd_.Get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  assert(rc == 0);
  (void)rc;
  port_ = BoundPort(fd_.Get());
  SetNonBlocking(fd_.Get());
}

UdpSocket::~UdpSocket() {
  if (fd_.Valid()) {
    reactor_.UnwatchFd(fd_.Get());
  }
}

void UdpSocket::SetReceiver(DatagramCallback on_datagram) {
  on_datagram_ = std::move(on_datagram);
  reactor_.WatchFd(fd_.Get(), EPOLLIN, [this](uint32_t) { OnReadable(); });
}

void UdpSocket::SendTo(std::string_view payload, const sockaddr_in& to) {
  sendto(fd_.Get(), payload.data(), payload.size(), 0,
         reinterpret_cast<const sockaddr*>(&to), sizeof(to));
}

void UdpSocket::OnReadable() {
#ifdef __linux__
  // Batched drain: one recvmmsg syscall pulls up to a batch of datagrams.
  constexpr unsigned kBatch = 32;
  constexpr size_t kDatagramMax = 8192;
  static thread_local char bufs[kBatch][kDatagramMax];
  mmsghdr msgs[kBatch];
  iovec iovs[kBatch];
  sockaddr_in froms[kBatch];
  for (;;) {
    for (unsigned i = 0; i < kBatch; ++i) {
      iovs[i] = {bufs[i], kDatagramMax};
      memset(&msgs[i].msg_hdr, 0, sizeof(msgs[i].msg_hdr));
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = &froms[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(froms[i]);
    }
    int n = recvmmsg(fd_.Get(), msgs, kBatch, 0, nullptr);
    if (n <= 0) {
      return;  // EAGAIN (drained) or transient error
    }
    ++recv_batches_;
    datagrams_received_ += static_cast<uint64_t>(n);
    for (int i = 0; i < n; ++i) {
      if (on_datagram_) {
        on_datagram_(std::string_view(bufs[i], msgs[i].msg_len), froms[i]);
      }
      if (!fd_.Valid()) {
        return;  // a callback destroyed the socket's owner
      }
    }
    if (static_cast<unsigned>(n) < kBatch) {
      return;  // short batch: the queue is drained
    }
  }
#else
  char buf[8192];
  for (;;) {
    sockaddr_in from{};
    socklen_t len = sizeof(from);
    ssize_t n = recvfrom(fd_.Get(), buf, sizeof(buf), 0, reinterpret_cast<sockaddr*>(&from),
                         &len);
    if (n < 0) {
      return;
    }
    ++recv_batches_;
    ++datagrams_received_;
    if (on_datagram_) {
      on_datagram_(std::string_view(buf, static_cast<size_t>(n)), from);
    }
    if (!fd_.Valid()) {
      return;
    }
  }
#endif
}

}  // namespace mfc
