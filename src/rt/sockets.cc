#include "src/rt/sockets.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>

#include "src/rt/fault_injector.h"

namespace mfc {
namespace {

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

uint16_t BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  return ntohs(addr.sin_port);
}

}  // namespace

ScopedFd& ScopedFd::operator=(ScopedFd&& other) noexcept {
  if (this != &other) {
    Reset(other.Release());
  }
  return *this;
}

int ScopedFd::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void ScopedFd::Reset(int fd) {
  if (fd_ >= 0) {
    close(fd_);
  }
  fd_ = fd;
}

sockaddr_in LoopbackEndpoint(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

TcpConnection::TcpConnection(Reactor& reactor, ScopedFd fd)
    : reactor_(reactor), fd_(std::move(fd)) {
  SetNonBlocking(fd_.Get());
  reactor_.WatchFd(fd_.Get(), EPOLLIN, [this](uint32_t events) { OnEvent(events); });
}

TcpConnection::~TcpConnection() { Close(); }

std::unique_ptr<TcpConnection> TcpConnection::Connect(Reactor& reactor, const sockaddr_in& addr,
                                                      std::function<void(bool)> on_connected,
                                                      FaultInjector* fault) {
  if (fault != nullptr && fault->FailConnect()) {
    return nullptr;  // injected local connect failure
  }
  ScopedFd fd(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.Valid()) {
    return nullptr;
  }
  SetNonBlocking(fd.Get());
  int rc = connect(fd.Get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return nullptr;
  }
  auto conn = std::make_unique<TcpConnection>(reactor, std::move(fd));
  conn->connecting_ = true;
  conn->on_connected_ = std::move(on_connected);
  conn->UpdateInterest();
  return conn;
}

void TcpConnection::SetCallbacks(DataCallback on_data, ClosedCallback on_closed) {
  on_data_ = std::move(on_data);
  on_closed_ = std::move(on_closed);
}

void TcpConnection::Write(std::string_view data) {
  write_buffer_.append(data);
  FlushWrites();
}

void TcpConnection::Close() {
  if (fd_.Valid()) {
    reactor_.UnwatchFd(fd_.Get());
    fd_.Reset();
  }
}

void TcpConnection::UpdateInterest() {
  if (!fd_.Valid()) {
    return;
  }
  uint32_t events = EPOLLIN;
  if (connecting_ || !write_buffer_.empty()) {
    events |= EPOLLOUT;
  }
  reactor_.WatchFd(fd_.Get(), events, [this](uint32_t ev) { OnEvent(ev); });
}

void TcpConnection::FlushWrites() {
  if (!fd_.Valid() || connecting_) {
    return;
  }
  while (!write_buffer_.empty()) {
    ssize_t n = send(fd_.Get(), write_buffer_.data(), write_buffer_.size(), MSG_NOSIGNAL);
    if (n > 0) {
      write_buffer_.erase(0, static_cast<size_t>(n));
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else {
      Close();
      if (on_closed_) {
        on_closed_();
      }
      return;
    }
  }
  UpdateInterest();
}

void TcpConnection::OnEvent(uint32_t events) {
  if (connecting_ && (events & (EPOLLOUT | EPOLLERR))) {
    connecting_ = false;
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd_.Get(), SOL_SOCKET, SO_ERROR, &err, &len);
    auto callback = std::move(on_connected_);
    on_connected_ = nullptr;
    if (err != 0) {
      Close();
      if (callback) {
        callback(false);
      }
      return;
    }
    UpdateInterest();
    if (callback) {
      callback(true);
    }
    if (!fd_.Valid()) {
      return;
    }
  }
  if (events & EPOLLIN) {
    char buf[64 * 1024];
    for (;;) {
      ssize_t n = recv(fd_.Get(), buf, sizeof(buf), 0);
      if (n > 0) {
        bytes_received_ += static_cast<uint64_t>(n);
        if (on_data_) {
          on_data_(std::string_view(buf, static_cast<size_t>(n)));
          if (!fd_.Valid()) {
            return;  // callback closed us
          }
        }
      } else if (n == 0) {
        Close();
        if (on_closed_) {
          on_closed_();
        }
        return;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else {
        Close();
        if (on_closed_) {
          on_closed_();
        }
        return;
      }
    }
  }
  if (events & EPOLLOUT) {
    FlushWrites();
  }
  if (events & (EPOLLHUP | EPOLLERR)) {
    if (fd_.Valid()) {
      Close();
      if (on_closed_) {
        on_closed_();
      }
    }
  }
}

TcpListener::TcpListener(Reactor& reactor, uint16_t port, AcceptCallback on_accept)
    : reactor_(reactor), on_accept_(std::move(on_accept)) {
  fd_.Reset(socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  assert(fd_.Valid());
  int one = 1;
  setsockopt(fd_.Get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackEndpoint(port);
  int rc = bind(fd_.Get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  assert(rc == 0);
  rc = listen(fd_.Get(), 128);
  assert(rc == 0);
  (void)rc;
  port_ = BoundPort(fd_.Get());
  SetNonBlocking(fd_.Get());
  reactor_.WatchFd(fd_.Get(), EPOLLIN, [this](uint32_t) { OnReadable(); });
}

TcpListener::~TcpListener() {
  if (fd_.Valid()) {
    reactor_.UnwatchFd(fd_.Get());
  }
}

void TcpListener::OnReadable() {
  for (;;) {
    int client = accept4(fd_.Get(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client < 0) {
      return;  // EAGAIN or transient error
    }
    on_accept_(std::make_unique<TcpConnection>(reactor_, ScopedFd(client)));
  }
}

UdpSocket::UdpSocket(Reactor& reactor, uint16_t port) : reactor_(reactor) {
  fd_.Reset(socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0));
  assert(fd_.Valid());
  sockaddr_in addr = LoopbackEndpoint(port);
  int rc = bind(fd_.Get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  assert(rc == 0);
  (void)rc;
  port_ = BoundPort(fd_.Get());
  SetNonBlocking(fd_.Get());
}

UdpSocket::~UdpSocket() {
  for (Reactor::TimerId id : pending_sends_) {
    reactor_.CancelTimer(id);
  }
  if (fd_.Valid()) {
    reactor_.UnwatchFd(fd_.Get());
  }
}

void UdpSocket::SetReceiver(DatagramCallback on_datagram) {
  on_datagram_ = std::move(on_datagram);
  reactor_.WatchFd(fd_.Get(), EPOLLIN, [this](uint32_t) { OnReadable(); });
}

void UdpSocket::RawSend(std::string_view payload, const sockaddr_in& to) {
  sendto(fd_.Get(), payload.data(), payload.size(), 0,
         reinterpret_cast<const sockaddr*>(&to), sizeof(to));
}

void UdpSocket::SendTo(std::string_view payload, const sockaddr_in& to) {
  if (fault_ == nullptr) {
    RawSend(payload, to);
    return;
  }
  FaultInjector::DatagramPlan plan = fault_->PlanDatagram(reactor_.Now());
  if (plan.drop) {
    return;
  }
  if (plan.delay <= 0.0) {
    for (uint32_t c = 0; c < plan.copies; ++c) {
      RawSend(payload, to);
    }
    return;
  }
  for (uint32_t c = 0; c < plan.copies; ++c) {
    auto id = std::make_shared<Reactor::TimerId>(0);
    *id = reactor_.ScheduleAfter(plan.delay, [this, id, copy = std::string(payload), to] {
      pending_sends_.erase(*id);
      RawSend(copy, to);
    });
    pending_sends_.insert(*id);
  }
}

void UdpSocket::OnReadable() {
  char buf[8192];
  for (;;) {
    sockaddr_in from{};
    socklen_t len = sizeof(from);
    ssize_t n = recvfrom(fd_.Get(), buf, sizeof(buf), 0, reinterpret_cast<sockaddr*>(&from),
                         &len);
    if (n < 0) {
      return;
    }
    if (on_datagram_) {
      on_datagram_(std::string_view(buf, static_cast<size_t>(n)), from);
    }
  }
}

}  // namespace mfc
