// Asynchronous one-shot HTTP fetch over a real TCP connection, with the
// client-side kill timer from Figure 2b (default 10 s; configurable).
#ifndef MFC_SRC_RT_HTTP_FETCH_H_
#define MFC_SRC_RT_HTTP_FETCH_H_

#include <functional>
#include <memory>

#include "src/http/message.h"
#include "src/http/parser.h"
#include "src/rt/sockets.h"

namespace mfc {

class FaultInjector;

struct FetchResult {
  HttpStatus status = HttpStatus::kClientTimeout;
  uint64_t bytes = 0;    // wire bytes received (headers + body)
  double elapsed = 0.0;  // seconds from connect() start to last byte (or kill)
  bool timed_out = false;
  bool connect_failed = false;
};

// Fires |done| exactly once, via a zero-delay reactor timer so the owner may
// destroy the fetch from inside the callback. Destroying the handle earlier
// cancels the operation (no callback) — including the asynchronous
// connect-failure and result-delivery tasks, whose timers the destructor
// cancels so no scheduled lambda ever touches a destroyed fetch.
class HttpFetch {
 public:
  using DoneCallback = std::function<void(const FetchResult&)>;

  // |fault| (optional) may veto the TCP connect, exercising the same
  // immediate-failure path as a local socket error.
  static std::unique_ptr<HttpFetch> Start(Reactor& reactor, uint16_t port,
                                          const HttpRequest& request, double timeout,
                                          DoneCallback done, FaultInjector* fault = nullptr);
  ~HttpFetch();
  HttpFetch(const HttpFetch&) = delete;
  HttpFetch& operator=(const HttpFetch&) = delete;

 private:
  HttpFetch(Reactor& reactor, double timeout, DoneCallback done);

  void OnConnected(bool ok, const HttpRequest& request);
  void OnData(std::string_view data);
  void OnClosed();
  void Finish(FetchResult result);

  Reactor& reactor_;
  double timeout_;
  double start_ = 0.0;
  Reactor::TimerId kill_timer_ = 0;
  Reactor::TimerId connect_fail_timer_ = 0;  // pending immediate-failure report
  Reactor::TimerId done_timer_ = 0;          // pending |done| delivery
  std::unique_ptr<TcpConnection> connection_;
  ResponseParser parser_;
  uint64_t wire_bytes_ = 0;
  DoneCallback done_;
  bool finished_ = false;
};

}  // namespace mfc

#endif  // MFC_SRC_RT_HTTP_FETCH_H_
