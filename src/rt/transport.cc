#include "src/rt/transport.h"

#include <utility>

#include "src/rt/fault_injector.h"

namespace mfc {

// ---------------------------------------------------------------------------
// UdpTransport

UdpTransport::UdpTransport(Reactor& reactor, uint16_t port)
    : clock_(reactor), socket_(reactor, port) {}

void UdpTransport::Send(std::string_view payload, const TransportAddress& to) {
  if (to.kind != TransportAddress::Kind::kUdp) {
    return;  // unroutable: a node address has no UDP endpoint
  }
  socket_.SendTo(payload, to.udp);
}

void UdpTransport::SetReceiver(RecvCallback on_datagram) {
  socket_.SetReceiver([cb = std::move(on_datagram)](std::string_view payload,
                                                    const sockaddr_in& from) {
    cb(payload, TransportAddress::Udp(from));
  });
}

TransportAddress UdpTransport::LocalAddress() const {
  return TransportAddress::Udp(LoopbackEndpoint(socket_.Port()));
}

// ---------------------------------------------------------------------------
// MemoryHub

struct MemoryHub::State {
  explicit State(TimerSource& c) : clock(c) {}
  TimerSource& clock;
  std::map<uint64_t, Endpoint*> endpoints;  // node id -> live endpoint
  uint64_t next_node = 1;
  uint64_t delivered = 0;
};

class MemoryHub::Endpoint : public Transport {
 public:
  Endpoint(std::shared_ptr<State> state, uint64_t node)
      : state_(std::move(state)), node_(node) {
    state_->endpoints[node_] = this;
  }
  ~Endpoint() override { state_->endpoints.erase(node_); }

  void Send(std::string_view payload, const TransportAddress& to) override {
    if (to.kind != TransportAddress::Kind::kNode) {
      return;  // unroutable: UDP addresses don't exist inside the hub
    }
    // Delivery is always a separate clock task — a receiver never runs inside
    // the sender's call stack, matching real-socket asynchrony. The task
    // holds the hub state alive; an endpoint destroyed before the task fires
    // just isn't in the map any more, like UDP to a closed port.
    const TransportAddress from = TransportAddress::Node(node_);
    state_->clock.ScheduleAfter(
        0.0, [state = state_, data = std::string(payload), dest = to.node, from]() {
          auto it = state->endpoints.find(dest);
          if (it == state->endpoints.end() || !it->second->on_datagram_) {
            return;
          }
          ++state->delivered;
          it->second->on_datagram_(data, from);
        });
  }

  void SetReceiver(RecvCallback on_datagram) override {
    on_datagram_ = std::move(on_datagram);
  }

  TransportAddress LocalAddress() const override { return TransportAddress::Node(node_); }
  TimerSource& clock() override { return state_->clock; }

 private:
  std::shared_ptr<State> state_;
  uint64_t node_;
  RecvCallback on_datagram_;
};

MemoryHub::MemoryHub(TimerSource& clock) : state_(std::make_shared<State>(clock)) {}

MemoryHub::~MemoryHub() = default;

std::unique_ptr<Transport> MemoryHub::CreateEndpoint() {
  return std::make_unique<Endpoint>(state_, state_->next_node++);
}

uint64_t MemoryHub::Delivered() const { return state_->delivered; }

// ---------------------------------------------------------------------------
// FaultedTransport

FaultedTransport::FaultedTransport(std::unique_ptr<Transport> inner, FaultInjector* injector)
    : inner_(std::move(inner)), injector_(injector) {}

FaultedTransport::~FaultedTransport() {
  for (uint64_t id : pending_sends_) {
    inner_->clock().Cancel(id);
  }
}

void FaultedTransport::Send(std::string_view payload, const TransportAddress& to) {
  if (injector_ == nullptr || !injector_->config().AffectsDatagrams()) {
    inner_->Send(payload, to);
    return;
  }
  FaultInjector::DatagramPlan plan = injector_->PlanDatagram(inner_->clock().Now());
  if (plan.drop) {
    return;
  }
  for (uint32_t i = 0; i < plan.copies; ++i) {
    if (plan.delay <= 0.0) {
      inner_->Send(payload, to);
      continue;
    }
    auto id = std::make_shared<uint64_t>(0);
    *id = inner_->clock().ScheduleAfter(
        plan.delay, [this, data = std::string(payload), to, id]() {
          pending_sends_.erase(*id);
          inner_->Send(data, to);
        });
    pending_sends_.insert(*id);
  }
}

void FaultedTransport::SetReceiver(RecvCallback on_datagram) {
  inner_->SetReceiver(std::move(on_datagram));
}

TransportAddress FaultedTransport::LocalAddress() const { return inner_->LocalAddress(); }

}  // namespace mfc
