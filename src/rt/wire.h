// Control-plane wire protocol between the live coordinator and client
// agents. UDP datagrams carrying one space-separated text line each — the
// paper likewise used UDP for all control messages, with no retransmission.
//
//   client -> coordinator   REGISTER <client_id>
//   coordinator -> client   PING <seq>
//   client -> coordinator   PONG <seq>
//   coordinator -> client   RTTPROBE <token> <tcp_port>
//   client -> coordinator   RTT <token> <microseconds>
//   coordinator -> client   MEASURE <token> <method> <tcp_port> <target>
//   coordinator -> client   FIRE <token> <connections> <method> <tcp_port> <target>
//   client -> coordinator   SAMPLE <token> <http_code> <bytes> <rt_us> <timed_out>
#ifndef MFC_SRC_RT_WIRE_H_
#define MFC_SRC_RT_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace mfc {

struct MsgRegister {
  uint64_t client_id = 0;
};
struct MsgPing {
  uint64_t seq = 0;
};
struct MsgPong {
  uint64_t seq = 0;
};
struct MsgRttProbe {
  uint64_t token = 0;
  uint16_t tcp_port = 0;
};
struct MsgRtt {
  uint64_t token = 0;
  uint64_t microseconds = 0;
};
struct MsgMeasure {
  uint64_t token = 0;
  std::string method;  // "GET" | "HEAD"
  uint16_t tcp_port = 0;
  std::string target;
};
struct MsgFire {
  uint64_t token = 0;
  uint32_t connections = 1;
  std::string method;
  uint16_t tcp_port = 0;
  std::string target;
};
struct MsgSample {
  uint64_t token = 0;
  int http_code = 0;
  uint64_t bytes = 0;
  uint64_t rt_microseconds = 0;
  bool timed_out = false;
};

using ControlMessage = std::variant<MsgRegister, MsgPing, MsgPong, MsgRttProbe, MsgRtt,
                                    MsgMeasure, MsgFire, MsgSample>;

std::string EncodeMessage(const ControlMessage& message);

// Returns nullopt on malformed input (wrong verb, missing/garbage fields).
std::optional<ControlMessage> DecodeMessage(std::string_view line);

}  // namespace mfc

#endif  // MFC_SRC_RT_WIRE_H_
