// Control-plane wire protocol between the live coordinator and client
// agents. UDP datagrams carrying one space-separated text line each — the
// paper used UDP for all control messages with no retransmission; we add
// explicit acks so the retry layer can re-issue lost commands, registrations
// and samples without ever double-executing them (receivers deduplicate by
// token / sample id).
//
//   client -> coordinator   REGISTER <client_id>
//   coordinator -> client   REGACK <client_id>
//   coordinator -> client   PING <seq>
//   client -> coordinator   PONG <seq> [stats]
//   coordinator -> client   RTTPROBE <token> <tcp_port>
//   client -> coordinator   RTT <token> <microseconds>
//   client -> coordinator   RTTFAIL <token>            (probe connect failed)
//   coordinator -> client   MEASURE <token> <method> <tcp_port> <target>
//   coordinator -> client   FIRE <token> <connections> <method> <tcp_port> <target>
//   client -> coordinator   CMDACK <token>             (MEASURE/FIRE received)
//   client -> coordinator   SAMPLE <token> <http_code> <bytes> <rt_us> <timed_out> <sample_id> [stats]
//   coordinator -> client   SAMPLEACK <sample_id>
//
// [stats] is an optional 6-word agent health payload piggybacked on replies
// the client already owes the coordinator (no extra datagrams, no extra
// loss exposure):
//
//   <inflight> <fetch_errors> <rtt_ewma_us> <dedup_hits> <fault_drops> <requests_fired>
//
// Receivers accept both the bare legacy form and the stats form, so mixed
// fleets interoperate; encoders emit the tail only when a payload is
// attached, keeping the legacy bytes unchanged.
#ifndef MFC_SRC_RT_WIRE_H_
#define MFC_SRC_RT_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace mfc {

struct MsgRegister {
  uint64_t client_id = 0;
};
struct MsgRegisterAck {
  uint64_t client_id = 0;
};
struct MsgPing {
  uint64_t seq = 0;
};
// Compact agent-side health payload piggybacked on PONG and SAMPLE replies
// (see the [stats] grammar above). All counters are cumulative since agent
// start except |inflight|, an instantaneous level.
struct AgentStats {
  uint64_t inflight = 0;        // fetches currently open
  uint64_t fetch_errors = 0;    // failed connects + kill-timer expiries
  uint64_t rtt_ewma_us = 0;     // agent's own target-RTT EWMA, microseconds (0 = none yet)
  uint64_t dedup_hits = 0;      // duplicate commands/probes discarded
  uint64_t fault_drops = 0;     // datagrams the agent's fault injector dropped
  uint64_t requests_fired = 0;  // HTTP requests launched

  bool operator==(const AgentStats&) const = default;
};
struct MsgPong {
  uint64_t seq = 0;
  std::optional<AgentStats> stats;  // absent in legacy/bare form
};
struct MsgRttProbe {
  uint64_t token = 0;
  uint16_t tcp_port = 0;
};
struct MsgRtt {
  uint64_t token = 0;
  uint64_t microseconds = 0;
};
// Explicit probe-failure reply: without it the coordinator would block until
// its deadline and silently substitute a fallback RTT.
struct MsgRttFail {
  uint64_t token = 0;
};
struct MsgMeasure {
  uint64_t token = 0;
  std::string method;  // "GET" | "HEAD"
  uint16_t tcp_port = 0;
  std::string target;
};
struct MsgFire {
  uint64_t token = 0;
  uint32_t connections = 1;
  std::string method;
  uint16_t tcp_port = 0;
  std::string target;
  // Absolute reactor-clock instant (microseconds) at which the client must
  // launch its requests; 0 means fire on receipt. Commands are sent a
  // schedule_lead ahead of the burst, so a copy re-issued after control-plane
  // loss still joins the crowd at the same instant as everyone else.
  uint64_t fire_at_micros = 0;
};
// Receipt ack for MEASURE/FIRE, sent even for duplicate commands so the
// coordinator stops re-issuing once any copy got through.
struct MsgCmdAck {
  uint64_t token = 0;
};
struct MsgSample {
  uint64_t token = 0;
  int http_code = 0;
  uint64_t bytes = 0;
  uint64_t rt_microseconds = 0;
  bool timed_out = false;
  // Unique per client; (token, sample_id) identifies one sample so
  // retransmitted or duplicated reports are counted once.
  uint64_t sample_id = 0;
  std::optional<AgentStats> stats;  // absent in legacy/bare form
};
struct MsgSampleAck {
  uint64_t sample_id = 0;
};

using ControlMessage = std::variant<MsgRegister, MsgPing, MsgPong, MsgRttProbe, MsgRtt,
                                    MsgMeasure, MsgFire, MsgSample, MsgRegisterAck,
                                    MsgRttFail, MsgCmdAck, MsgSampleAck>;

std::string EncodeMessage(const ControlMessage& message);

// Returns nullopt on malformed input (wrong verb, missing/garbage fields).
std::optional<ControlMessage> DecodeMessage(std::string_view line);

// --- Session framing (DESIGN.md §13) ---------------------------------------
//
// The session layer wraps control messages in a thin text frame so one
// generic ack/retransmit/dedup mechanism covers every message type:
//
//   data  S1 <conn> <seq> <lane> <rel> <inner control message>
//   ack   A1 <conn> <seq>
//
// <conn> is the sender's connection id, <seq> a per-connection sequence
// number, <lane> 0 = control / 1 = bulk, <rel> 1 if the sender retransmits
// until acked (the receiver must reply A1). Datagrams that don't start with
// "S1 "/"A1 " are legacy bare control messages from pre-session peers; the
// session layer falls back to DecodeMessage and treats them as conn 0.

inline constexpr uint8_t kLaneControl = 0;  // PING/RTT/MEASURE/FIRE/REGISTER/...
inline constexpr uint8_t kLaneBulk = 1;     // SAMPLE

struct SessionFrame {
  uint64_t conn = 0;
  uint64_t seq = 0;
  uint8_t lane = kLaneControl;
  bool reliable = false;
  ControlMessage body;
};

struct SessionAck {
  uint64_t conn = 0;
  uint64_t seq = 0;
};

std::string EncodeSessionFrame(const SessionFrame& frame);
std::string EncodeSessionAck(const SessionAck& ack);

// True if |datagram| carries a session prefix ("S1 "/"A1 ") — such datagrams
// must never be fed to DecodeMessage directly.
bool LooksLikeSessionDatagram(std::string_view datagram);

// Returns nullopt on malformed framing or malformed inner message.
std::optional<SessionFrame> DecodeSessionFrame(std::string_view datagram);
std::optional<SessionAck> DecodeSessionAck(std::string_view datagram);

}  // namespace mfc

#endif  // MFC_SRC_RT_WIRE_H_
