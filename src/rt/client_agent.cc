#include "src/rt/client_agent.h"

#include <cmath>

namespace mfc {

ClientAgent::ClientAgent(Reactor& reactor, uint64_t client_id, const sockaddr_in& coordinator)
    : reactor_(reactor), client_id_(client_id), coordinator_(coordinator),
      socket_(reactor, 0) {
  socket_.SetReceiver(
      [this](std::string_view payload, const sockaddr_in& from) { OnDatagram(payload, from); });
}

void ClientAgent::Register() { Send(MsgRegister{client_id_}); }

void ClientAgent::Send(const ControlMessage& message) {
  socket_.SendTo(EncodeMessage(message), coordinator_);
}

void ClientAgent::OnDatagram(std::string_view payload, const sockaddr_in&) {
  auto message = DecodeMessage(payload);
  if (!message.has_value()) {
    return;  // garbage on the control port: drop, as any UDP service must
  }
  if (const auto* ping = std::get_if<MsgPing>(&*message)) {
    Send(MsgPong{ping->seq});
  } else if (const auto* measure = std::get_if<MsgMeasure>(&*message)) {
    HandleMeasure(*measure);
  } else if (const auto* fire = std::get_if<MsgFire>(&*message)) {
    HandleFire(*fire);
  } else if (const auto* probe = std::get_if<MsgRttProbe>(&*message)) {
    HandleRttProbe(*probe);
  }
}

void ClientAgent::HandleRttProbe(const MsgRttProbe& message) {
  // TCP connect() round trip approximates the SYN RTT to the target.
  double start = reactor_.Now();
  uint64_t token = message.token;
  uint64_t probe_id = next_fetch_id_++;
  auto conn = TcpConnection::Connect(
      reactor_, LoopbackEndpoint(message.tcp_port), [this, token, probe_id, start](bool ok) {
        double rtt = reactor_.Now() - start;
        if (ok) {
          Send(MsgRtt{token, static_cast<uint64_t>(std::llround(rtt * 1e6))});
        }
        reactor_.ScheduleAfter(0.0, [this, probe_id] { rtt_probes_.erase(probe_id); });
      });
  if (conn != nullptr) {
    rtt_probes_[probe_id] = std::move(conn);
  }
}

void ClientAgent::HandleMeasure(const MsgMeasure& message) {
  LaunchFetch(message.token, message.method, message.tcp_port, message.target);
}

void ClientAgent::HandleFire(const MsgFire& message) {
  // MFC-mr: open |connections| parallel connections carrying the same
  // request (Section 4.1).
  for (uint32_t c = 0; c < message.connections; ++c) {
    LaunchFetch(message.token, message.method, message.tcp_port, message.target);
  }
}

void ClientAgent::LaunchFetch(uint64_t token, const std::string& method, uint16_t port,
                              const std::string& target) {
  HttpRequest request;
  request.method = method == "HEAD" ? HttpMethod::kHead : HttpMethod::kGet;
  request.target = target;
  request.headers.Set("Host", "127.0.0.1");
  request.headers.Set("User-Agent", "mfc-live-client/1.0");

  ++requests_fired_;
  uint64_t fetch_id = next_fetch_id_++;
  auto fetch = HttpFetch::Start(
      reactor_, port, request, request_timeout_,
      [this, token, fetch_id](const FetchResult& result) {
        MsgSample sample;
        sample.token = token;
        sample.http_code = static_cast<int>(result.status);
        sample.bytes = result.bytes;
        sample.rt_microseconds = static_cast<uint64_t>(std::llround(result.elapsed * 1e6));
        sample.timed_out = result.timed_out;
        Send(sample);
        fetches_.erase(fetch_id);
      });
  fetches_[fetch_id] = std::move(fetch);
}

}  // namespace mfc
