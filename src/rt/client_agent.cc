#include "src/rt/client_agent.h"

#include <cmath>
#include <utility>

#include "src/rt/fault_injector.h"

namespace mfc {
namespace {

// Legacy-peer command tokens older than this are forgotten; a coordinator
// re-issuing a command after a minute has long since failed the stage.
constexpr double kSeenCommandTtl = 60.0;
constexpr size_t kSeenCommandCap = 4096;

}  // namespace

ClientAgent::ClientAgent(Reactor& reactor, uint64_t client_id, const sockaddr_in& coordinator)
    : ClientAgent(reactor, client_id,
                  std::make_unique<UdpTransport>(reactor, static_cast<uint16_t>(0)),
                  TransportAddress::Udp(coordinator)) {}

ClientAgent::ClientAgent(Reactor& reactor, uint64_t client_id,
                         std::unique_ptr<Transport> transport,
                         const TransportAddress& coordinator)
    : reactor_(reactor), client_id_(client_id), coordinator_(coordinator),
      alive_(std::make_shared<bool>(true)) {
  udp_ = dynamic_cast<UdpTransport*>(transport.get());
  transport_ = std::make_unique<FaultedTransport>(std::move(transport));
  SessionConfig config;
  config.conn = AgentConn(client_id);
  config.retry = retry_;
  session_ = std::make_unique<Session>(*transport_, config);
  session_->SetDeliveryHandler(
      [this](const ControlMessage& message, const TransportAddress& from,
             uint64_t sender_conn) { OnDeliver(message, from, sender_conn); });
}

ClientAgent::~ClientAgent() { *alive_ = false; }

uint16_t ClientAgent::ControlPort() const { return udp_ != nullptr ? udp_->Port() : 0; }

void ClientAgent::set_retry_policy(const RetryPolicy& policy) {
  retry_ = policy;
  session_->set_retry_policy(policy);
}

void ClientAgent::set_fault_injector(FaultInjector* fault) {
  fault_ = fault;
  transport_->set_injector(fault);
}

void ClientAgent::Register() {
  registered_ = false;
  // Registered() means the coordinator's session layer acked our REGISTER —
  // the coordinator processes the frame in the same tick it acks, so the ack
  // doubles as the registration receipt (REGACK remains for legacy peers).
  session_->SendReliable(MsgRegister{client_id_}, coordinator_, kLaneControl,
                         [this](bool delivered) {
                           if (delivered) {
                             registered_ = true;
                           }
                         });
}

void ClientAgent::Reply(const ControlMessage& message, uint8_t lane) {
  session_->SendReliable(message, coordinator_, lane);
}

void ClientAgent::OnDeliver(const ControlMessage& message, const TransportAddress& from,
                            uint64_t sender_conn) {
  (void)from;
  bool legacy = sender_conn == 0;
  if (const auto* ping = std::get_if<MsgPing>(&message)) {
    // Piggyback the health payload on the pong the coordinator is owed
    // anyway — the fleet's telemetry rides the existing probe cadence. The
    // pong leg is itself reliable, so a lost reply converges on its own.
    MsgPong pong{ping->seq, CurrentStats()};
    if (legacy) {
      session_->SendBare(pong, coordinator_);
    } else {
      Reply(pong);
    }
  } else if (const auto* ack = std::get_if<MsgRegisterAck>(&message)) {
    if (ack->client_id == client_id_) {
      registered_ = true;  // legacy coordinator's explicit receipt
    }
  } else if (std::get_if<MsgSampleAck>(&message) != nullptr) {
    // Legacy-peer sample acks: session peers ack at the session layer, and
    // samples to legacy peers are fire-and-forget, so nothing to cancel.
  } else if (const auto* measure = std::get_if<MsgMeasure>(&message)) {
    HandleMeasure(*measure, legacy);
  } else if (const auto* fire = std::get_if<MsgFire>(&message)) {
    HandleFire(*fire, legacy);
  } else if (const auto* probe = std::get_if<MsgRttProbe>(&message)) {
    HandleRttProbe(*probe, legacy);
  }
}

bool ClientAgent::SeenCommand(uint64_t token) {
  double now = transport_->clock().Now();
  // Tokens are issued monotonically, so map order tracks receipt time: prune
  // from the front until the set is fresh and bounded.
  while (!seen_commands_.empty() &&
         (now - seen_commands_.begin()->second > kSeenCommandTtl ||
          seen_commands_.size() >= kSeenCommandCap)) {
    seen_commands_.erase(seen_commands_.begin());
  }
  auto [it, inserted] = seen_commands_.emplace(token, now);
  (void)it;
  return !inserted;
}

void ClientAgent::HandleRttProbe(const MsgRttProbe& message, bool legacy) {
  // TCP connect() round trip approximates the SYN RTT to the target. Legacy
  // coordinators can't parse session frames, so they get the reply bare.
  double start = transport_->clock().Now();
  uint64_t token = message.token;
  uint64_t probe_id = next_fetch_id_++;
  auto reply = [this, legacy](const ControlMessage& reply_message) {
    if (legacy) {
      session_->SendBare(reply_message, coordinator_);
    } else {
      Reply(reply_message);
    }
  };
  auto conn = TcpConnection::Connect(
      reactor_, LoopbackEndpoint(message.tcp_port),
      [this, alive = alive_, token, probe_id, start, reply](bool ok) {
        if (!*alive) {
          return;
        }
        double rtt = transport_->clock().Now() - start;
        if (ok) {
          // TCP-style smoothing: 7/8 history, 1/8 new measurement.
          rtt_ewma_ = rtt_ewma_ < 0 ? rtt : 0.875 * rtt_ewma_ + 0.125 * rtt;
          reply(MsgRtt{token, static_cast<uint64_t>(std::llround(rtt * 1e6))});
        } else {
          // A silent client here would stall the coordinator until its
          // deadline; tell it outright so it can retry or fall back.
          reply(MsgRttFail{token});
        }
        reactor_.ScheduleAfter(0.0, [this, alive, probe_id] {
          if (*alive) {
            rtt_probes_.erase(probe_id);
          }
        });
      },
      fault_);
  if (conn != nullptr) {
    rtt_probes_[probe_id] = std::move(conn);
  } else {
    reply(MsgRttFail{token});
  }
}

void ClientAgent::HandleMeasure(const MsgMeasure& message, bool legacy) {
  if (legacy) {
    bool duplicate = SeenCommand(message.token);
    // Ack duplicates too: the first ack was lost.
    session_->SendBare(MsgCmdAck{message.token}, coordinator_);
    if (duplicate) {
      ++legacy_dedup_hits_;
      return;
    }
  }
  // Session peers need neither token dedup (the session deduplicates by
  // (conn, seq) before delivery) nor CMDACK (the session ack supersedes it).
  //
  // Solo measurements tolerate connect retries — there is no crowd to stay
  // synchronized with.
  LaunchFetch(message.token, message.method, message.tcp_port, message.target,
              /*attempt=*/1, /*retry_connect=*/true, legacy);
}

void ClientAgent::HandleFire(const MsgFire& message, bool legacy) {
  if (legacy) {
    bool duplicate = SeenCommand(message.token);
    session_->SendBare(MsgCmdAck{message.token}, coordinator_);
    if (duplicate) {
      ++legacy_dedup_hits_;
      return;
    }
  }
  // Hold fire until the commanded instant: every client joins the burst
  // together no matter when its (possibly retransmitted) copy of the command
  // arrived within the schedule lead.
  double fire_at = static_cast<double>(message.fire_at_micros) * 1e-6;
  if (fire_at > transport_->clock().Now()) {
    transport_->clock().ScheduleAfter(fire_at - transport_->clock().Now(),
                                      [this, alive = alive_, message, legacy] {
                                        if (*alive) {
                                          FireNow(message, legacy);
                                        }
                                      });
    return;
  }
  FireNow(message, legacy);
}

void ClientAgent::FireNow(const MsgFire& message, bool legacy) {
  // MFC-mr: open |connections| parallel connections carrying the same
  // request (Section 4.1). No connect retries: a late re-fire would fall
  // outside the synchronized burst and skew the crowd's response times.
  for (uint32_t c = 0; c < message.connections; ++c) {
    LaunchFetch(message.token, message.method, message.tcp_port, message.target,
                /*attempt=*/1, /*retry_connect=*/false, legacy);
  }
}

void ClientAgent::LaunchFetch(uint64_t token, const std::string& method, uint16_t port,
                              const std::string& target, size_t attempt, bool retry_connect,
                              bool legacy) {
  HttpRequest request;
  request.method = method == "HEAD" ? HttpMethod::kHead : HttpMethod::kGet;
  request.target = target;
  request.headers.Set("Host", "127.0.0.1");
  request.headers.Set("User-Agent", "mfc-live-client/1.0");

  ++requests_fired_;
  uint64_t fetch_id = next_fetch_id_++;
  auto fetch = HttpFetch::Start(
      reactor_, port, request, request_timeout_,
      [this, token, fetch_id, method, port, target, attempt, retry_connect,
       legacy](const FetchResult& result) {
        if (result.connect_failed || result.timed_out) {
          ++fetch_errors_;
        }
        if (result.connect_failed && retry_connect && attempt < retry_.max_attempts) {
          reactor_.ScheduleAfter(
              retry_.BackoffFor(attempt),
              [this, alive = alive_, token, method, port, target, attempt, retry_connect,
               legacy] {
                if (*alive) {
                  LaunchFetch(token, method, port, target, attempt + 1, retry_connect, legacy);
                }
              });
          fetches_.erase(fetch_id);
          return;
        }
        MsgSample sample;
        sample.token = token;
        sample.http_code = static_cast<int>(result.status);
        sample.bytes = result.bytes;
        sample.rt_microseconds = static_cast<uint64_t>(std::llround(result.elapsed * 1e6));
        sample.timed_out = result.timed_out;
        sample.sample_id = next_sample_id_++;
        sample.stats = CurrentStats();
        if (legacy) {
          // Pre-session coordinators get the paper's original fire-and-forget
          // UDP report; only session peers get the reliable leg.
          session_->SendBare(sample, coordinator_);
        } else {
          // The session retransmits the sample until the coordinator's ack
          // lands or attempts run out (coordinator quorum decides then).
          Reply(sample, kLaneBulk);
        }
        fetches_.erase(fetch_id);
      },
      fault_);
  fetches_[fetch_id] = std::move(fetch);
}

AgentStats ClientAgent::CurrentStats() const {
  AgentStats stats;
  stats.inflight = fetches_.size();
  stats.fetch_errors = fetch_errors_;
  if (rtt_ewma_ >= 0) {
    stats.rtt_ewma_us = static_cast<uint64_t>(std::llround(rtt_ewma_ * 1e6));
  }
  stats.dedup_hits = legacy_dedup_hits_ + session_->stats().duplicates;
  if (fault_ != nullptr) {
    stats.fault_drops = fault_->stats().dropped;
  }
  stats.requests_fired = requests_fired_;
  return stats;
}

}  // namespace mfc
