#include "src/rt/client_agent.h"

#include <cmath>
#include <utility>

#include "src/rt/fault_injector.h"

namespace mfc {
namespace {

// Command tokens older than this are forgotten; a coordinator re-issuing a
// command after a minute has long since failed the stage.
constexpr double kSeenCommandTtl = 60.0;
constexpr size_t kSeenCommandCap = 4096;

}  // namespace

ClientAgent::ClientAgent(Reactor& reactor, uint64_t client_id, const sockaddr_in& coordinator)
    : reactor_(reactor), client_id_(client_id), coordinator_(coordinator),
      socket_(reactor, 0), alive_(std::make_shared<bool>(true)) {
  socket_.SetReceiver(
      [this](std::string_view payload, const sockaddr_in& from) { OnDatagram(payload, from); });
}

ClientAgent::~ClientAgent() {
  *alive_ = false;
  if (register_timer_ != 0) {
    reactor_.CancelTimer(register_timer_);
  }
  for (auto& [id, pending] : pending_samples_) {
    if (pending.timer != 0) {
      reactor_.CancelTimer(pending.timer);
    }
  }
}

void ClientAgent::set_fault_injector(FaultInjector* fault) {
  fault_ = fault;
  socket_.set_fault_injector(fault);
}

void ClientAgent::Register() {
  registered_ = false;
  register_attempts_ = 0;
  if (register_timer_ != 0) {
    reactor_.CancelTimer(register_timer_);
    register_timer_ = 0;
  }
  SendRegister();
}

void ClientAgent::SendRegister() {
  ++register_attempts_;
  Send(MsgRegister{client_id_});
  if (register_attempts_ >= retry_.max_attempts) {
    return;  // out of attempts; Registered() stays false unless an ack lands
  }
  register_timer_ = reactor_.ScheduleAfter(
      retry_.BackoffFor(register_attempts_), [this, alive = alive_] {
        if (!*alive) {
          return;
        }
        register_timer_ = 0;
        if (!registered_) {
          SendRegister();
        }
      });
}

void ClientAgent::Send(const ControlMessage& message) {
  socket_.SendTo(EncodeMessage(message), coordinator_);
}

void ClientAgent::OnDatagram(std::string_view payload, const sockaddr_in&) {
  auto message = DecodeMessage(payload);
  if (!message.has_value()) {
    return;  // garbage on the control port: drop, as any UDP service must
  }
  if (const auto* ping = std::get_if<MsgPing>(&*message)) {
    // Piggyback the health payload on the pong the coordinator is owed
    // anyway — the fleet's telemetry rides the existing probe cadence.
    Send(MsgPong{ping->seq, CurrentStats()});
  } else if (const auto* ack = std::get_if<MsgRegisterAck>(&*message)) {
    if (ack->client_id == client_id_) {
      registered_ = true;
      if (register_timer_ != 0) {
        reactor_.CancelTimer(register_timer_);
        register_timer_ = 0;
      }
    }
  } else if (const auto* sample_ack = std::get_if<MsgSampleAck>(&*message)) {
    auto it = pending_samples_.find(sample_ack->sample_id);
    if (it != pending_samples_.end()) {
      if (it->second.timer != 0) {
        reactor_.CancelTimer(it->second.timer);
      }
      pending_samples_.erase(it);
    }
  } else if (const auto* measure = std::get_if<MsgMeasure>(&*message)) {
    HandleMeasure(*measure);
  } else if (const auto* fire = std::get_if<MsgFire>(&*message)) {
    HandleFire(*fire);
  } else if (const auto* probe = std::get_if<MsgRttProbe>(&*message)) {
    HandleRttProbe(*probe);
  }
}

bool ClientAgent::SeenCommand(uint64_t token) {
  double now = reactor_.Now();
  // Tokens are issued monotonically, so map order tracks receipt time: prune
  // from the front until the set is fresh and bounded.
  while (!seen_commands_.empty() &&
         (now - seen_commands_.begin()->second > kSeenCommandTtl ||
          seen_commands_.size() >= kSeenCommandCap)) {
    seen_commands_.erase(seen_commands_.begin());
  }
  auto [it, inserted] = seen_commands_.emplace(token, now);
  (void)it;
  return !inserted;
}

void ClientAgent::HandleRttProbe(const MsgRttProbe& message) {
  // TCP connect() round trip approximates the SYN RTT to the target.
  double start = reactor_.Now();
  uint64_t token = message.token;
  uint64_t probe_id = next_fetch_id_++;
  auto conn = TcpConnection::Connect(
      reactor_, LoopbackEndpoint(message.tcp_port),
      [this, alive = alive_, token, probe_id, start](bool ok) {
        if (!*alive) {
          return;
        }
        double rtt = reactor_.Now() - start;
        if (ok) {
          // TCP-style smoothing: 7/8 history, 1/8 new measurement.
          rtt_ewma_ = rtt_ewma_ < 0 ? rtt : 0.875 * rtt_ewma_ + 0.125 * rtt;
          Send(MsgRtt{token, static_cast<uint64_t>(std::llround(rtt * 1e6))});
        } else {
          Send(MsgRttFail{token});
        }
        reactor_.ScheduleAfter(0.0, [this, alive, probe_id] {
          if (*alive) {
            rtt_probes_.erase(probe_id);
          }
        });
      },
      fault_);
  if (conn != nullptr) {
    rtt_probes_[probe_id] = std::move(conn);
  } else {
    // A silent client here would stall the coordinator until its deadline;
    // tell it outright so it can retry or fall back immediately.
    Send(MsgRttFail{token});
  }
}

void ClientAgent::HandleMeasure(const MsgMeasure& message) {
  bool duplicate = SeenCommand(message.token);
  Send(MsgCmdAck{message.token});  // ack duplicates too: the first ack was lost
  if (duplicate) {
    ++dedup_hits_;
    return;
  }
  // Solo measurements tolerate connect retries — there is no crowd to stay
  // synchronized with.
  LaunchFetch(message.token, message.method, message.tcp_port, message.target,
              /*attempt=*/1, /*retry_connect=*/true);
}

void ClientAgent::HandleFire(const MsgFire& message) {
  bool duplicate = SeenCommand(message.token);
  Send(MsgCmdAck{message.token});
  if (duplicate) {
    ++dedup_hits_;
    return;
  }
  // Hold fire until the commanded instant: every client joins the burst
  // together no matter when its (possibly re-issued) copy of the command
  // arrived within the schedule lead.
  double fire_at = static_cast<double>(message.fire_at_micros) * 1e-6;
  if (fire_at > reactor_.Now()) {
    reactor_.ScheduleAt(fire_at, [this, alive = alive_, message] {
      if (*alive) {
        FireNow(message);
      }
    });
    return;
  }
  FireNow(message);
}

void ClientAgent::FireNow(const MsgFire& message) {
  // MFC-mr: open |connections| parallel connections carrying the same
  // request (Section 4.1). No connect retries: a late re-fire would fall
  // outside the synchronized burst and skew the crowd's response times.
  for (uint32_t c = 0; c < message.connections; ++c) {
    LaunchFetch(message.token, message.method, message.tcp_port, message.target,
                /*attempt=*/1, /*retry_connect=*/false);
  }
}

void ClientAgent::LaunchFetch(uint64_t token, const std::string& method, uint16_t port,
                              const std::string& target, size_t attempt, bool retry_connect) {
  HttpRequest request;
  request.method = method == "HEAD" ? HttpMethod::kHead : HttpMethod::kGet;
  request.target = target;
  request.headers.Set("Host", "127.0.0.1");
  request.headers.Set("User-Agent", "mfc-live-client/1.0");

  ++requests_fired_;
  uint64_t fetch_id = next_fetch_id_++;
  auto fetch = HttpFetch::Start(
      reactor_, port, request, request_timeout_,
      [this, token, fetch_id, method, port, target, attempt,
       retry_connect](const FetchResult& result) {
        if (result.connect_failed || result.timed_out) {
          ++fetch_errors_;
        }
        if (result.connect_failed && retry_connect && attempt < retry_.max_attempts) {
          reactor_.ScheduleAfter(
              retry_.BackoffFor(attempt),
              [this, alive = alive_, token, method, port, target, attempt, retry_connect] {
                if (*alive) {
                  LaunchFetch(token, method, port, target, attempt + 1, retry_connect);
                }
              });
          fetches_.erase(fetch_id);
          return;
        }
        MsgSample sample;
        sample.token = token;
        sample.http_code = static_cast<int>(result.status);
        sample.bytes = result.bytes;
        sample.rt_microseconds = static_cast<uint64_t>(std::llround(result.elapsed * 1e6));
        sample.timed_out = result.timed_out;
        sample.stats = CurrentStats();
        SendSampleReliably(sample);
        fetches_.erase(fetch_id);
      },
      fault_);
  fetches_[fetch_id] = std::move(fetch);
}

AgentStats ClientAgent::CurrentStats() const {
  AgentStats stats;
  stats.inflight = fetches_.size();
  stats.fetch_errors = fetch_errors_;
  if (rtt_ewma_ >= 0) {
    stats.rtt_ewma_us = static_cast<uint64_t>(std::llround(rtt_ewma_ * 1e6));
  }
  stats.dedup_hits = dedup_hits_;
  if (fault_ != nullptr) {
    stats.fault_drops = fault_->stats().dropped;
  }
  stats.requests_fired = requests_fired_;
  return stats;
}

void ClientAgent::SendSampleReliably(MsgSample sample) {
  sample.sample_id = next_sample_id_++;
  Send(sample);
  if (retry_.max_attempts <= 1) {
    return;  // fire-and-forget, as the paper's original UDP control plane did
  }
  PendingSample pending;
  pending.sample = sample;
  pending.attempts = 1;
  pending_samples_[sample.sample_id] = pending;
  ScheduleSampleRetransmit(sample.sample_id);
}

void ClientAgent::ScheduleSampleRetransmit(uint64_t sample_id) {
  auto it = pending_samples_.find(sample_id);
  if (it == pending_samples_.end()) {
    return;
  }
  it->second.timer = reactor_.ScheduleAfter(
      retry_.BackoffFor(it->second.attempts), [this, alive = alive_, sample_id] {
        if (!*alive) {
          return;
        }
        auto entry = pending_samples_.find(sample_id);
        if (entry == pending_samples_.end()) {
          return;  // acked while the retransmit was queued
        }
        entry->second.timer = 0;
        ++entry->second.attempts;
        Send(entry->second.sample);
        if (entry->second.attempts < retry_.max_attempts) {
          ScheduleSampleRetransmit(sample_id);
        } else {
          pending_samples_.erase(entry);  // give up; coordinator quorum decides
        }
      });
}

}  // namespace mfc
