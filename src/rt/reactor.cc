#include "src/rt/reactor.h"

#include <sys/epoll.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <vector>

namespace mfc {

Reactor::Reactor() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  assert(epoll_fd_ >= 0);
}

Reactor::~Reactor() {
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
}

double Reactor::Now() const {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

void Reactor::WatchFd(int fd, uint32_t events, FdCallback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  bool existed = fd_callbacks_.count(fd) != 0;
  fd_callbacks_[fd] = std::move(callback);
  int op = existed ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  int rc = epoll_ctl(epoll_fd_, op, fd, &ev);
  assert(rc == 0);
  (void)rc;
}

void Reactor::UnwatchFd(int fd) {
  if (fd_callbacks_.erase(fd) > 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

Reactor::TimerId Reactor::ScheduleAt(double when, std::function<void()> callback) {
  TimerId id = next_timer_id_++;
  timers_.push(TimerEntry{when, next_seq_++, id});
  timer_callbacks_.emplace(id, std::move(callback));
  return id;
}

Reactor::TimerId Reactor::ScheduleAfter(double delay, std::function<void()> callback) {
  return ScheduleAt(Now() + delay, std::move(callback));
}

bool Reactor::CancelTimer(TimerId id) { return timer_callbacks_.erase(id) > 0; }

void Reactor::FireDueTimers() {
  double now = Now();
  while (!timers_.empty() && timers_.top().when <= now) {
    TimerEntry top = timers_.top();
    timers_.pop();
    auto it = timer_callbacks_.find(top.id);
    if (it == timer_callbacks_.end()) {
      continue;  // cancelled
    }
    auto callback = std::move(it->second);
    timer_callbacks_.erase(it);
    ++stats_.timers_fired;
    callback();
  }
}

double Reactor::NextTimerDelay() const {
  // Skim over cancelled heads without mutating (they drain in FireDueTimers).
  if (timers_.empty()) {
    return 0.1;
  }
  return std::max(0.0, timers_.top().when - Now());
}

void Reactor::PollOnce(double max_wait) {
  double wait = std::min(max_wait, NextTimerDelay());
  int timeout_ms = static_cast<int>(wait * 1000.0);
  epoll_event events[64];
  ++stats_.polls;
  int n = epoll_wait(epoll_fd_, events, 64, std::max(0, timeout_ms));
  for (int i = 0; i < n; ++i) {
    auto it = fd_callbacks_.find(events[i].data.fd);
    if (it != fd_callbacks_.end()) {
      // Copy: the callback may unwatch (and thus erase) itself.
      FdCallback callback = it->second;
      ++stats_.fd_dispatches;
      callback(events[i].events);
    }
  }
  FireDueTimers();
}

bool Reactor::RunUntil(const std::function<bool()>& done, double deadline) {
  while (!done()) {
    double remaining = deadline - Now();
    if (remaining <= 0.0) {
      return false;
    }
    PollOnce(std::min(remaining, 0.05));
  }
  return true;
}

void Reactor::Run() {
  running_ = true;
  while (running_) {
    PollOnce(0.05);
  }
}

}  // namespace mfc
