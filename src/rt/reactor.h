// Real-time event loop (epoll + timer heap) for the live-socket runtime.
//
// The simulation substrate runs the MFC control logic against virtual time;
// this reactor runs the very same logic against CLOCK_MONOTONIC and real
// sockets — the deployable form of the paper's coordinator/client programs.
// Single-threaded: all callbacks fire on the thread calling Run/Poll.
#ifndef MFC_SRC_RT_REACTOR_H_
#define MFC_SRC_RT_REACTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace mfc {

// Loop-health counters, exported by the live harness through
// MetricsRegistry (live.reactor.*): how often the loop turned, how much fd
// and timer work each turn dispatched.
struct ReactorStats {
  uint64_t polls = 0;         // PollOnce calls (epoll_wait syscalls)
  uint64_t fd_dispatches = 0;  // fd events handed to callbacks
  uint64_t timers_fired = 0;   // timer callbacks run
};

class Reactor {
 public:
  using FdCallback = std::function<void(uint32_t epoll_events)>;
  using TimerId = uint64_t;

  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Seconds on the monotonic clock.
  double Now() const;

  // Registers interest in |events| (EPOLLIN/EPOLLOUT/...) on |fd|. One
  // callback per fd; re-watching replaces events and callback.
  void WatchFd(int fd, uint32_t events, FdCallback callback);
  void UnwatchFd(int fd);

  TimerId ScheduleAt(double when, std::function<void()> callback);
  TimerId ScheduleAfter(double delay, std::function<void()> callback);
  bool CancelTimer(TimerId id);

  // Processes due timers and ready fds; blocks at most |max_wait| seconds.
  void PollOnce(double max_wait);

  // Runs until |done| returns true or |deadline| (absolute Now() time)
  // passes. Returns whether |done| was satisfied.
  bool RunUntil(const std::function<bool()>& done, double deadline);

  // Runs until Stop() is called (from a callback).
  void Run();
  void Stop() { running_ = false; }

  const ReactorStats& stats() const { return stats_; }

 private:
  struct TimerEntry {
    double when;
    uint64_t seq;
    TimerId id;
    bool operator<(const TimerEntry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  void FireDueTimers();
  double NextTimerDelay() const;

  int epoll_fd_ = -1;
  bool running_ = false;
  ReactorStats stats_;
  uint64_t next_seq_ = 0;
  TimerId next_timer_id_ = 1;
  std::priority_queue<TimerEntry> timers_;
  std::unordered_map<TimerId, std::function<void()>> timer_callbacks_;
  std::unordered_map<int, FdCallback> fd_callbacks_;
};

}  // namespace mfc

#endif  // MFC_SRC_RT_REACTOR_H_
