#include "src/rt/session.h"

#include <vector>

#include "src/telemetry/metrics.h"

namespace mfc {

Session::Session(Transport& transport, const SessionConfig& config)
    : transport_(transport), config_(config) {
  transport_.SetReceiver([this](std::string_view payload, const TransportAddress& from) {
    OnDatagram(payload, from);
  });
}

Session::~Session() {
  if (armed_timer_ != 0) {
    transport_.clock().Cancel(armed_timer_);
  }
  // The transport may outlive this session (it is typically a sibling
  // member); a datagram arriving in that window must not call into freed
  // session state.
  transport_.SetReceiver([](std::string_view, const TransportAddress&) {});
}

void Session::SetDeliveryHandler(DeliveryHandler handler) { handler_ = std::move(handler); }

void Session::Bump(uint64_t& counter, const char* metric, uint64_t delta) {
  counter += delta;
  if (metrics_ != nullptr) {
    metrics_->Add(metric, static_cast<double>(delta));
  }
}

Session::TransferId Session::SendReliable(const ControlMessage& message,
                                          const TransportAddress& to, uint8_t lane,
                                          SendOutcome outcome) {
  SessionFrame frame;
  frame.conn = config_.conn;
  frame.seq = next_seq_++;
  frame.lane = lane;
  frame.reliable = true;
  frame.body = message;

  PendingTransfer transfer;
  transfer.encoded = EncodeSessionFrame(frame);
  transfer.to = to;
  transfer.lane = lane;
  transfer.attempts = 1;
  transfer.due = transport_.clock().Now() + config_.retry.BackoffFor(1);
  transfer.outcome = std::move(outcome);

  transport_.Send(transfer.encoded, to);
  Bump(stats_.frames_sent, "live.session.frames_sent");

  TransferId id = frame.seq;
  retry_queue_.emplace(transfer.due, id);
  pending_.emplace(id, std::move(transfer));
  ArmRetryTimer();
  return id;
}

bool Session::Cancel(TransferId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return false;
  }
  for (auto entry = retry_queue_.find(it->second.due); entry != retry_queue_.end();
       ++entry) {
    if (entry->first != it->second.due) {
      break;
    }
    if (entry->second == id) {
      retry_queue_.erase(entry);
      break;
    }
  }
  pending_.erase(it);
  ArmRetryTimer();
  return true;
}

void Session::SendBare(const ControlMessage& message, const TransportAddress& to) {
  transport_.Send(EncodeMessage(message), to);
  Bump(stats_.frames_sent, "live.session.frames_sent");
}

void Session::ArmRetryTimer() {
  if (retry_queue_.empty()) {
    if (armed_timer_ != 0) {
      transport_.clock().Cancel(armed_timer_);
      armed_timer_ = 0;
      armed_due_ = -1.0;
    }
    return;
  }
  double earliest = retry_queue_.begin()->first;
  if (armed_timer_ != 0 && armed_due_ <= earliest) {
    return;  // already armed at or before the earliest deadline
  }
  if (armed_timer_ != 0) {
    transport_.clock().Cancel(armed_timer_);
  }
  armed_due_ = earliest;
  double delay = earliest - transport_.clock().Now();
  armed_timer_ =
      transport_.clock().ScheduleAfter(delay < 0.0 ? 0.0 : delay, [this] { OnRetryTimer(); });
}

void Session::OnRetryTimer() {
  armed_timer_ = 0;
  armed_due_ = -1.0;
  double now = transport_.clock().Now();

  // Collect everything due, then service the control lane before bulk: a
  // retry burst must re-send lost FIREs/PINGs before it re-sends SAMPLE
  // backlog.
  std::vector<TransferId> due[2];
  for (auto it = retry_queue_.begin();
       it != retry_queue_.end() && it->first <= now + 1e-9;) {
    auto pending = pending_.find(it->second);
    if (pending != pending_.end()) {
      uint8_t lane = pending->second.lane <= kLaneBulk ? pending->second.lane : kLaneBulk;
      due[lane].push_back(it->second);
    }
    it = retry_queue_.erase(it);
  }
  for (const std::vector<TransferId>& batch : due) {
    for (TransferId id : batch) {
      auto it = pending_.find(id);
      if (it == pending_.end()) {
        continue;  // acked while an earlier entry in this batch ran
      }
      PendingTransfer& transfer = it->second;
      if (transfer.attempts >= config_.retry.max_attempts) {
        Bump(stats_.gave_up, "live.session.gave_up");
        SendOutcome outcome = std::move(transfer.outcome);
        pending_.erase(it);
        if (outcome) {
          outcome(false);
        }
        continue;
      }
      ++transfer.attempts;
      transport_.Send(transfer.encoded, transfer.to);
      Bump(stats_.retransmits, "live.session.retransmits");
      transfer.due = now + config_.retry.BackoffFor(transfer.attempts);
      retry_queue_.emplace(transfer.due, id);
    }
  }
  ArmRetryTimer();
}

bool Session::SeenFrame(uint64_t conn, uint64_t seq) {
  double now = transport_.clock().Now();
  while (!seen_order_.empty() &&
         (seen_order_.size() >= config_.dedup_cap ||
          now - seen_[seen_order_.front()] > config_.dedup_ttl)) {
    seen_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  auto [it, inserted] = seen_.emplace(std::make_pair(conn, seq), now);
  (void)it;
  if (inserted) {
    seen_order_.emplace_back(conn, seq);
  }
  return !inserted;
}

void Session::OnAck(const SessionAck& ack) {
  if (ack.conn != config_.conn) {
    return;  // acks someone else's frame; not ours to complete
  }
  auto it = pending_.find(ack.seq);
  if (it == pending_.end()) {
    return;  // late duplicate ack
  }
  Bump(stats_.acks_received, "live.session.acks_received");
  double due = it->second.due;
  for (auto entry = retry_queue_.find(due); entry != retry_queue_.end(); ++entry) {
    if (entry->first != due) {
      break;
    }
    if (entry->second == ack.seq) {
      retry_queue_.erase(entry);
      break;
    }
  }
  SendOutcome outcome = std::move(it->second.outcome);
  pending_.erase(it);
  ArmRetryTimer();
  if (outcome) {
    outcome(true);
  }
}

void Session::OnDatagram(std::string_view payload, const TransportAddress& from) {
  if (LooksLikeSessionDatagram(payload)) {
    if (payload[0] == 'A') {
      auto ack = DecodeSessionAck(payload);
      if (!ack.has_value()) {
        Bump(stats_.decode_errors, "live.session.decode_errors");
        return;
      }
      OnAck(*ack);
      return;
    }
    auto frame = DecodeSessionFrame(payload);
    if (!frame.has_value()) {
      Bump(stats_.decode_errors, "live.session.decode_errors");
      return;
    }
    if (frame->reliable) {
      // Ack before the dedup check — duplicates mean the first ack was
      // lost, and only another ack stops the sender's retransmit loop.
      transport_.Send(EncodeSessionAck({frame->conn, frame->seq}), from);
      Bump(stats_.acks_sent, "live.session.acks_sent");
    }
    if (SeenFrame(frame->conn, frame->seq)) {
      Bump(stats_.duplicates, "live.session.duplicates");
      return;
    }
    Bump(stats_.delivered, "live.session.delivered");
    if (handler_) {
      handler_(frame->body, from, frame->conn);
    }
    return;
  }
  // No session framing: a legacy peer's bare control message.
  auto message = DecodeMessage(payload);
  if (!message.has_value()) {
    Bump(stats_.decode_errors, "live.session.decode_errors");
    return;
  }
  Bump(stats_.legacy_frames, "live.session.legacy_frames");
  Bump(stats_.delivered, "live.session.delivered");
  if (handler_) {
    handler_(*message, from, 0);
  }
}

}  // namespace mfc
