#include "src/rt/live_harness.h"

#include <algorithm>
#include <string>

namespace mfc {

LiveHarness::LiveHarness(Reactor& reactor, uint16_t target_port, uint16_t control_port)
    : reactor_(reactor), target_port_(target_port), socket_(reactor, control_port) {
  socket_.SetReceiver(
      [this](std::string_view payload, const sockaddr_in& from) { OnDatagram(payload, from); });
}

void LiveHarness::OnDatagram(std::string_view payload, const sockaddr_in& from) {
  auto message = DecodeMessage(payload);
  if (!message.has_value()) {
    return;
  }
  if (const auto* reg = std::get_if<MsgRegister>(&*message)) {
    clients_[static_cast<size_t>(reg->client_id)] = from;
  } else if (const auto* pong = std::get_if<MsgPong>(&*message)) {
    auto it = pending_pongs_.find(pong->seq);
    if (it != pending_pongs_.end()) {
      completed_pongs_[pong->seq] = reactor_.Now() - it->second;
      pending_pongs_.erase(it);
    }
  } else if (const auto* rtt = std::get_if<MsgRtt>(&*message)) {
    completed_rtts_[rtt->token] = static_cast<double>(rtt->microseconds) * 1e-6;
  } else if (const auto* sample = std::get_if<MsgSample>(&*message)) {
    if (crowd_.has_value()) {
      auto it = crowd_->token_to_client.find(sample->token);
      if (it != crowd_->token_to_client.end()) {
        RequestSample out;
        out.client_id = it->second;
        out.code = static_cast<HttpStatus>(sample->http_code);
        out.bytes = static_cast<double>(sample->bytes);
        out.response_time = static_cast<double>(sample->rt_microseconds) * 1e-6;
        out.timed_out = sample->timed_out;
        crowd_->samples.push_back(out);
      }
    }
  }
}

void LiveHarness::SendTo(size_t client, const ControlMessage& message) {
  auto it = clients_.find(client);
  if (it != clients_.end()) {
    socket_.SendTo(EncodeMessage(message), it->second);
  }
}

size_t LiveHarness::WaitForRegistrations(size_t count, double timeout) {
  double deadline = reactor_.Now() + timeout;
  reactor_.RunUntil([this, count] { return clients_.size() >= count; }, deadline);
  return clients_.size();
}

std::vector<size_t> LiveHarness::ProbeClients(SimDuration timeout) {
  std::vector<size_t> responsive;
  std::map<uint64_t, size_t> seq_to_client;
  for (const auto& [id, addr] : clients_) {
    uint64_t seq = next_token_++;
    pending_pongs_[seq] = reactor_.Now();
    seq_to_client[seq] = id;
    SendTo(id, MsgPing{seq});
  }
  double deadline = reactor_.Now() + timeout;
  reactor_.RunUntil([this] { return pending_pongs_.empty(); }, deadline);
  for (const auto& [seq, client] : seq_to_client) {
    if (completed_pongs_.count(seq) != 0) {
      responsive.push_back(client);
    }
  }
  std::sort(responsive.begin(), responsive.end());
  pending_pongs_.clear();
  return responsive;
}

SimDuration LiveHarness::MeasureCoordRtt(size_t client) {
  uint64_t seq = next_token_++;
  pending_pongs_[seq] = reactor_.Now();
  SendTo(client, MsgPing{seq});
  double deadline = reactor_.Now() + 1.0;
  reactor_.RunUntil([this, seq] { return completed_pongs_.count(seq) != 0; }, deadline);
  auto it = completed_pongs_.find(seq);
  SimDuration rtt = it != completed_pongs_.end() ? it->second : 1.0;
  completed_pongs_.erase(seq);
  pending_pongs_.erase(seq);
  return rtt;
}

SimDuration LiveHarness::MeasureTargetRtt(size_t client) {
  uint64_t token = next_token_++;
  SendTo(client, MsgRttProbe{token, target_port_});
  double deadline = reactor_.Now() + 1.0;
  reactor_.RunUntil([this, token] { return completed_rtts_.count(token) != 0; }, deadline);
  auto it = completed_rtts_.find(token);
  SimDuration rtt = it != completed_rtts_.end() ? it->second : 1.0;
  completed_rtts_.erase(token);
  return rtt;
}

RequestSample LiveHarness::FetchOnce(size_t client, const HttpRequest& request) {
  uint64_t token = next_token_++;
  // Reuse the crowd sink for singleton fetches.
  PendingCrowd saved;
  bool had_crowd = crowd_.has_value();
  if (had_crowd) {
    saved = std::move(*crowd_);
  }
  crowd_ = PendingCrowd{};
  crowd_->token_to_client[token] = client;

  MsgMeasure measure;
  measure.token = token;
  measure.method = std::string(MethodName(request.method));
  measure.tcp_port = target_port_;
  measure.target = request.target;
  SendTo(client, measure);

  double deadline = reactor_.Now() + request_timeout_ + 1.0;
  reactor_.RunUntil([this] { return !crowd_->samples.empty(); }, deadline);

  RequestSample sample;
  sample.client_id = client;
  if (!crowd_->samples.empty()) {
    sample = crowd_->samples.front();
  } else {
    sample.code = HttpStatus::kClientTimeout;
    sample.timed_out = true;
    sample.response_time = request_timeout_;
  }
  crowd_.reset();
  if (had_crowd) {
    crowd_ = std::move(saved);
  }
  return sample;
}

std::vector<RequestSample> LiveHarness::ExecuteCrowd(const std::vector<CrowdRequestPlan>& plans,
                                                     SimTime poll_time) {
  crowd_ = PendingCrowd{};
  size_t expected = 0;
  for (const CrowdRequestPlan& plan : plans) {
    uint64_t token = next_token_++;
    crowd_->token_to_client[token] = plan.client_id;
    expected += plan.connections;

    MsgFire fire;
    fire.token = token;
    fire.connections = static_cast<uint32_t>(plan.connections);
    fire.method = std::string(MethodName(plan.request.method));
    fire.tcp_port = target_port_;
    fire.target = plan.request.target;
    double send_at = std::max(plan.command_send_time, reactor_.Now());
    size_t client = plan.client_id;
    reactor_.ScheduleAt(send_at, [this, client, fire] { SendTo(client, fire); });
  }
  reactor_.RunUntil([this, expected] { return crowd_->samples.size() >= expected; },
                    poll_time);
  std::vector<RequestSample> samples = std::move(crowd_->samples);
  crowd_.reset();
  return samples;
}

void LiveHarness::WaitUntil(SimTime t) {
  reactor_.RunUntil([] { return false; }, t);
}

}  // namespace mfc
