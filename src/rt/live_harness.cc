#include "src/rt/live_harness.h"

#include <algorithm>
#include <string>

#include "src/rt/client_agent.h"
#include "src/telemetry/metrics.h"

namespace mfc {

LiveHarness::LiveHarness(Reactor& reactor, uint16_t target_port, uint16_t control_port)
    : LiveHarness(reactor, target_port, std::make_unique<UdpTransport>(reactor, control_port)) {}

LiveHarness::LiveHarness(Reactor& reactor, uint16_t target_port,
                         std::unique_ptr<Transport> transport)
    : reactor_(reactor), target_port_(target_port), alive_(std::make_shared<bool>(true)) {
  udp_ = dynamic_cast<UdpTransport*>(transport.get());
  transport_ = std::make_unique<FaultedTransport>(std::move(transport));
  SessionConfig config;
  config.conn = kCoordinatorConn;
  config.retry = retry_;
  session_ = std::make_unique<Session>(*transport_, config);
  session_->SetDeliveryHandler(
      [this](const ControlMessage& message, const TransportAddress& from,
             uint64_t sender_conn) { OnDeliver(message, from, sender_conn); });
}

LiveHarness::~LiveHarness() { *alive_ = false; }

uint16_t LiveHarness::ControlPort() const { return udp_ != nullptr ? udp_->Port() : 0; }

void LiveHarness::set_retry_policy(const RetryPolicy& policy) {
  retry_ = policy;
  session_->set_retry_policy(policy);
}

void LiveHarness::SetMetrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  session_->SetMetrics(metrics);
}

void LiveHarness::Bump(uint64_t& counter, const char* metric, uint64_t delta) {
  counter += delta;
  if (metrics_ != nullptr) {
    metrics_->Add(metric, static_cast<double>(delta));
  }
}

size_t LiveHarness::PendingControlEntries() const {
  return pending_pongs_.size() + completed_pongs_.size() + pong_owner_.size() +
         pending_rtt_probes_.size() + completed_rtts_.size() + session_->PendingReliable();
}

void LiveHarness::CancelTransfers(const std::vector<Session::TransferId>& ids) {
  for (Session::TransferId id : ids) {
    if (id != 0) {
      session_->Cancel(id);
    }
  }
}

void LiveHarness::TouchAgent(size_t client, const AgentStats* stats) {
  AgentHealth& health = health_[client];
  health.last_seen = reactor_.Now();
  if (stats != nullptr) {
    health.has_agent_stats = true;
    health.agent = *stats;
  }
}

bool LiveHarness::ClientHealthy(size_t client) const {
  if (unhealthy_after_misses_ == 0) {
    return true;
  }
  auto it = health_.find(client);
  return it == health_.end() || it->second.miss_streak < unhealthy_after_misses_;
}

std::vector<AgentHealthSnapshot> LiveHarness::SnapshotAgents() const {
  std::vector<AgentHealthSnapshot> rows;
  rows.reserve(clients_.size());
  double now = reactor_.Now();
  for (const auto& [id, addr] : clients_) {
    AgentHealthSnapshot row;
    row.agent_id = id;
    auto it = health_.find(id);
    if (it != health_.end()) {
      const AgentHealth& h = it->second;
      if (h.last_seen >= 0) {
        row.last_seen_age = now - h.last_seen;
      }
      row.miss_streak = h.miss_streak;
      if (h.rtt_ewma >= 0) {
        row.rtt_ewma = h.rtt_ewma;
      }
      if (h.pings_sent > 0) {
        double loss = 1.0 - static_cast<double>(h.pongs_received) /
                                static_cast<double>(h.pings_sent);
        row.loss_estimate = loss < 0 ? 0.0 : loss;
      }
      if (h.has_agent_stats) {
        row.inflight = h.agent.inflight;
        row.fetch_errors = h.agent.fetch_errors;
        row.dedup_hits = h.agent.dedup_hits;
        row.fault_drops = h.agent.fault_drops;
        row.requests_fired = h.agent.requests_fired;
      }
    }
    row.healthy = ClientHealthy(id);
    rows.push_back(row);
  }
  return rows;
}

void LiveHarness::OnDeliver(const ControlMessage& message, const TransportAddress& from,
                            uint64_t sender_conn) {
  if (const auto* reg = std::get_if<MsgRegister>(&message)) {
    // Re-registrations refresh the address (and the peer's protocol level).
    size_t id = static_cast<size_t>(reg->client_id);
    clients_[id] = from;
    if (sender_conn == 0) {
      legacy_clients_.insert(id);
      // Legacy agents need the explicit receipt; session agents take the
      // session-level ack as registration confirmation.
      session_->SendBare(MsgRegisterAck{reg->client_id}, from);
    } else {
      legacy_clients_.erase(id);
    }
    TouchAgent(id, nullptr);
  } else if (const auto* pong = std::get_if<MsgPong>(&message)) {
    auto it = pending_pongs_.find(pong->seq);
    if (it != pending_pongs_.end()) {
      double rtt = reactor_.Now() - it->second;
      completed_pongs_[pong->seq] = rtt;
      pending_pongs_.erase(it);
      // Fold the answer into the sender's health row: liveness, control-RTT
      // EWMA, and the agent's piggybacked payload when present.
      auto owner = pong_owner_.find(pong->seq);
      if (owner != pong_owner_.end()) {
        AgentHealth& health = health_[owner->second];
        ++health.pongs_received;
        health.rtt_ewma = health.rtt_ewma < 0 ? rtt : 0.875 * health.rtt_ewma + 0.125 * rtt;
        TouchAgent(owner->second, pong->stats.has_value() ? &*pong->stats : nullptr);
      }
    }
  } else if (const auto* rtt = std::get_if<MsgRtt>(&message)) {
    // Only solicited replies are recorded; late duplicates from earlier
    // attempts would otherwise pile up in completed_rtts_ forever.
    if (pending_rtt_probes_.erase(rtt->token) != 0) {
      completed_rtts_[rtt->token] = static_cast<double>(rtt->microseconds) * 1e-6;
    }
  } else if (const auto* fail = std::get_if<MsgRttFail>(&message)) {
    if (pending_rtt_probes_.erase(fail->token) != 0) {
      completed_rtts_[fail->token] = -1.0;  // explicit failure, not a timeout
      Bump(stats_.rtt_failures, "live.rtt_failures");
    }
  } else if (std::get_if<MsgCmdAck>(&message) != nullptr) {
    // Legacy command receipt; command delivery is tracked by session acks
    // now, so there is nothing left to record.
  } else if (const auto* sample = std::get_if<MsgSample>(&message)) {
    if (sender_conn == 0) {
      // Ack legacy samples unconditionally — late and duplicate copies
      // included — so an old agent's retransmit loop always terminates.
      session_->SendBare(MsgSampleAck{sample->sample_id}, from);
    }
    if (!crowd_.has_value()) {
      return;
    }
    auto it = crowd_->token_to_client.find(sample->token);
    if (it == crowd_->token_to_client.end()) {
      return;
    }
    // Any attributable sample — duplicate or not — proves the agent alive
    // and carries its freshest stats payload.
    TouchAgent(it->second, sample->stats.has_value() ? &*sample->stats : nullptr);
    if (!crowd_->seen.insert({sample->token, sample->sample_id}).second) {
      Bump(stats_.duplicate_samples, "live.duplicate_samples");
      return;
    }
    auto budget = crowd_->budget.find(sample->token);
    if (budget == crowd_->budget.end() || budget->second == 0) {
      Bump(stats_.duplicate_samples, "live.duplicate_samples");
      return;
    }
    --budget->second;
    RequestSample out;
    out.client_id = it->second;
    out.code = static_cast<HttpStatus>(sample->http_code);
    out.bytes = static_cast<double>(sample->bytes);
    out.response_time = static_cast<double>(sample->rt_microseconds) * 1e-6;
    out.timed_out = sample->timed_out;
    crowd_->samples.push_back(out);
  }
}

Session::TransferId LiveHarness::SendTo(size_t client, const ControlMessage& message) {
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    return 0;
  }
  if (legacy_clients_.count(client) != 0) {
    // A bare-datagram agent cannot parse session frames: it gets the paper's
    // original fire-and-forget command (no retransmit on loss).
    session_->SendBare(message, it->second);
    return 0;
  }
  return session_->SendReliable(message, it->second);
}

size_t LiveHarness::WaitForRegistrations(size_t count, double timeout) {
  double deadline = reactor_.Now() + timeout;
  reactor_.RunUntil([this, count] { return clients_.size() >= count; }, deadline);
  return clients_.size();
}

std::vector<size_t> LiveHarness::ProbeClients(SimDuration timeout) {
  // One reliable PING per agent; the session keeps re-sending it across the
  // whole probe window, so no per-attempt re-probing is needed here.
  std::map<uint64_t, size_t> seq_to_client;  // every seq minted by this call
  std::vector<Session::TransferId> transfers;
  std::set<size_t> answered;
  for (const auto& [id, addr] : clients_) {
    uint64_t seq = next_token_++;
    pending_pongs_[seq] = reactor_.Now();
    seq_to_client[seq] = id;
    pong_owner_[seq] = id;
    ++health_[id].pings_sent;
    transfers.push_back(SendTo(id, MsgPing{seq}));
  }
  double deadline = reactor_.Now() + timeout;
  reactor_.RunUntil(
      [this, &seq_to_client, &answered] {
        for (const auto& [seq, client] : seq_to_client) {
          if (completed_pongs_.count(seq) != 0) {
            answered.insert(client);
          }
        }
        return answered.size() >= clients_.size();
      },
      deadline);
  for (const auto& [seq, client] : seq_to_client) {
    if (completed_pongs_.count(seq) != 0) {
      answered.insert(client);
    }
    pending_pongs_.erase(seq);
    completed_pongs_.erase(seq);
    pong_owner_.erase(seq);
  }
  CancelTransfers(transfers);
  // Miss-streak accounting: one probe round answered resets the streak; a
  // silent round extends it. ClientHealthy turns the streak into a verdict
  // once set_unhealthy_after_misses arms it.
  for (const auto& [id, addr] : clients_) {
    if (answered.count(id) != 0) {
      health_[id].miss_streak = 0;
    } else {
      ++health_[id].miss_streak;
    }
  }
  return std::vector<size_t>(answered.begin(), answered.end());
}

SimDuration LiveHarness::MeasureCoordRtt(size_t client) {
  uint64_t seq = next_token_++;
  pending_pongs_[seq] = reactor_.Now();
  pong_owner_[seq] = client;
  ++health_[client].pings_sent;
  Session::TransferId transfer = SendTo(client, MsgPing{seq});
  double deadline = reactor_.Now() + 1.0;
  reactor_.RunUntil([this, seq] { return completed_pongs_.count(seq) != 0; }, deadline);
  SimDuration rtt = 1.0;  // conservative substitute when the window closes empty
  auto it = completed_pongs_.find(seq);
  if (it != completed_pongs_.end()) {
    rtt = it->second;
  }
  pending_pongs_.erase(seq);
  completed_pongs_.erase(seq);
  pong_owner_.erase(seq);
  CancelTransfers({transfer});
  return rtt;
}

SimDuration LiveHarness::MeasureTargetRtt(size_t client) {
  // The datagram legs are reliable, so re-issuing here means "run another
  // TCP probe" (after an explicit RTTFAIL), not "resend a lost datagram".
  size_t attempts = std::max<size_t>(retry_.max_attempts, 1);
  double slice = 1.0 / static_cast<double>(attempts);
  SimDuration rtt = 1.0;
  bool got = false;
  for (size_t attempt = 1; attempt <= attempts && !got; ++attempt) {
    uint64_t token = next_token_++;
    pending_rtt_probes_.insert(token);
    if (attempt > 1) {
      Bump(stats_.rtt_retries, "live.rtt_retries");
    }
    Session::TransferId transfer = SendTo(client, MsgRttProbe{token, target_port_});
    double deadline = reactor_.Now() + slice;
    // An RTTFAIL reply also completes the wait — that is the point of the
    // explicit failure message: retry immediately instead of idling to the
    // deadline.
    reactor_.RunUntil([this, token] { return completed_rtts_.count(token) != 0; },
                      deadline);
    auto it = completed_rtts_.find(token);
    if (it != completed_rtts_.end() && it->second >= 0.0) {
      rtt = it->second;
      got = true;
    }
    pending_rtt_probes_.erase(token);
    completed_rtts_.erase(token);
    CancelTransfers({transfer});
  }
  if (!got) {
    Bump(stats_.rtt_fallbacks, "live.rtt_fallbacks");
  }
  return rtt;
}

RequestSample LiveHarness::FetchOnce(size_t client, const HttpRequest& request) {
  uint64_t token = next_token_++;
  // Reuse the crowd sink for singleton fetches.
  PendingCrowd saved;
  bool had_crowd = crowd_.has_value();
  if (had_crowd) {
    saved = std::move(*crowd_);
  }
  crowd_ = PendingCrowd{};
  crowd_->token_to_client[token] = client;
  crowd_->budget[token] = 1;

  MsgMeasure measure;
  measure.token = token;
  measure.method = std::string(MethodName(request.method));
  measure.tcp_port = target_port_;
  measure.target = request.target;
  Session::TransferId transfer = SendTo(client, measure);

  // The session re-sends the command under loss; one wait with fetch
  // headroom covers both delivery and execution.
  double deadline = reactor_.Now() + request_timeout_ + 1.0;
  reactor_.RunUntil([this] { return !crowd_->samples.empty(); }, deadline);

  RequestSample sample;
  sample.client_id = client;
  if (!crowd_->samples.empty()) {
    sample = crowd_->samples.front();
  } else {
    sample.code = HttpStatus::kClientTimeout;
    sample.timed_out = true;
    sample.response_time = request_timeout_;
  }
  CancelTransfers({transfer});
  crowd_.reset();
  if (had_crowd) {
    crowd_ = std::move(saved);
  }
  return sample;
}

std::vector<RequestSample> LiveHarness::ExecuteCrowd(const std::vector<CrowdRequestPlan>& plans,
                                                     SimTime poll_time) {
  uint64_t generation = ++crowd_generation_;
  crowd_ = PendingCrowd{};
  crowd_transfers_.clear();
  size_t expected = 0;
  for (const CrowdRequestPlan& plan : plans) {
    uint64_t token = next_token_++;
    crowd_->token_to_client[token] = plan.client_id;
    crowd_->budget[token] = static_cast<uint32_t>(plan.connections);
    expected += plan.connections;

    MsgFire fire;
    fire.token = token;
    fire.connections = static_cast<uint32_t>(plan.connections);
    fire.method = std::string(MethodName(plan.request.method));
    fire.tcp_port = target_port_;
    fire.target = plan.request.target;
    // Ship the burst instant with the command and transmit right away: the
    // agent holds fire until the instant, so the whole schedule lead becomes
    // headroom for retransmitting lost commands instead of dead air. Plans
    // without an arrival time keep the legacy send-time pacing (the agent
    // fires on receipt).
    double send_at = std::max(plan.command_send_time, reactor_.Now());
    if (plan.intended_arrival > 0.0) {
      fire.fire_at_micros = static_cast<uint64_t>(plan.intended_arrival * 1e6);
      send_at = reactor_.Now();
    }
    size_t client = plan.client_id;
    if (send_at <= reactor_.Now()) {
      crowd_transfers_.push_back(SendTo(client, fire));
      continue;
    }
    reactor_.ScheduleAt(send_at, [this, alive = alive_, generation, client, fire] {
      if (!*alive || crowd_generation_ != generation) {
        return;
      }
      crowd_transfers_.push_back(SendTo(client, fire));
    });
  }
  reactor_.RunUntil([this, expected] { return crowd_->samples.size() >= expected; },
                    poll_time);
  std::vector<RequestSample> samples = std::move(crowd_->samples);
  crowd_.reset();
  // Invalidate any still-queued FIRE sends and stop retransmitting to agents
  // that never acked: tokens are never reused, so leftovers are pure leak.
  ++crowd_generation_;
  CancelTransfers(crowd_transfers_);
  crowd_transfers_.clear();
  return samples;
}

void LiveHarness::WaitUntil(SimTime t) {
  reactor_.RunUntil([] { return false; }, t);
}

}  // namespace mfc
