// Keynote-style single-request monitoring (Section 7, "Commercial Services").
//
// A global network of monitors measures response times for single requests,
// one at a time, with no synchronization. The ablation bench uses this to
// show what such probing can and cannot see: it tracks baseline latency
// accurately but never drives concurrency, so bottlenecks that only surface
// under synchronized load stay invisible.
#ifndef MFC_SRC_BASELINE_KEYNOTE_PROBER_H_
#define MFC_SRC_BASELINE_KEYNOTE_PROBER_H_

#include <vector>

#include "src/core/sim_testbed.h"
#include "src/http/message.h"

namespace mfc {

struct ProbeReport {
  size_t probes = 0;
  size_t failures = 0;
  SimDuration mean_response = 0.0;
  SimDuration median_response = 0.0;
  SimDuration p95_response = 0.0;
  SimDuration max_response = 0.0;
};

class KeynoteProber {
 public:
  KeynoteProber(SimTestbed& testbed, HttpRequest request, SimDuration interval)
      : testbed_(testbed), request_(std::move(request)), interval_(interval) {}

  // Issues |count| sequential probes from rotating vantage clients, spaced by
  // the configured interval, and summarizes.
  ProbeReport Run(size_t count);

 private:
  SimTestbed& testbed_;
  HttpRequest request_;
  SimDuration interval_;
  size_t next_client_ = 0;
};

}  // namespace mfc

#endif  // MFC_SRC_BASELINE_KEYNOTE_PROBER_H_
