// httperf/SPECweb-style closed-loop LAN load generator (Section 7, "Web
// server Benchmarking").
//
// N concurrent emulated users each loop request -> response -> think time.
// This is the lab-bench comparator MFC argues against: it measures raw
// server capacity on a LAN but cannot reflect wide-area client diversity or
// access-bandwidth effects.
#ifndef MFC_SRC_BASELINE_CLOSED_LOOP_LOADGEN_H_
#define MFC_SRC_BASELINE_CLOSED_LOOP_LOADGEN_H_

#include <vector>

#include "src/core/sim_testbed.h"
#include "src/http/message.h"

namespace mfc {

struct LoadGenReport {
  size_t completed = 0;
  size_t errors = 0;
  double throughput_rps = 0.0;
  SimDuration mean_response = 0.0;
  SimDuration p90_response = 0.0;
  SimDuration max_response = 0.0;
};

class ClosedLoopLoadGen {
 public:
  ClosedLoopLoadGen(SimTestbed& testbed, HttpRequest request, size_t concurrency,
                    SimDuration think_time)
      : testbed_(testbed), request_(std::move(request)), concurrency_(concurrency),
        think_time_(think_time) {}

  // Drives the loop for |duration| of simulated time.
  LoadGenReport Run(SimDuration duration);

 private:
  SimTestbed& testbed_;
  HttpRequest request_;
  size_t concurrency_;
  SimDuration think_time_;
};

}  // namespace mfc

#endif  // MFC_SRC_BASELINE_CLOSED_LOOP_LOADGEN_H_
