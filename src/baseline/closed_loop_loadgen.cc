#include "src/baseline/closed_loop_loadgen.h"

#include <memory>

#include "src/telemetry/stats.h"

namespace mfc {

LoadGenReport ClosedLoopLoadGen::Run(SimDuration duration) {
  EventLoop& loop = testbed_.Loop();
  SimTime deadline = loop.Now() + duration;

  struct Shared {
    std::vector<double> times;
    size_t errors = 0;
    SimTime deadline = 0.0;
  };
  auto shared = std::make_shared<Shared>();
  shared->deadline = deadline;

  // Each user is a self-rescheduling request chain pinned to one client.
  struct User {
    static void Next(SimTestbed* testbed, HttpRequest request, size_t client,
                     SimDuration think, std::shared_ptr<Shared> shared) {
      if (testbed->Loop().Now() >= shared->deadline) {
        return;
      }
      testbed->Launch(client, request,
                      [testbed, request, client, think, shared](const RequestSample& sample) {
                        shared->times.push_back(sample.response_time);
                        if (sample.timed_out || !IsSuccess(sample.code)) {
                          ++shared->errors;
                        }
                        testbed->Loop().ScheduleAfter(think, [testbed, request, client, think,
                                                              shared] {
                          Next(testbed, request, client, think, shared);
                        });
                      });
    }
  };

  for (size_t u = 0; u < concurrency_; ++u) {
    size_t client = u % testbed_.ClientCount();
    User::Next(&testbed_, request_, client, think_time_, shared);
  }
  loop.RunUntil(deadline + Seconds(15));  // drain in-flight requests

  LoadGenReport report;
  report.completed = shared->times.size();
  report.errors = shared->errors;
  report.throughput_rps = duration > 0 ? static_cast<double>(report.completed) / duration : 0.0;
  report.mean_response = Mean(shared->times);
  report.p90_response = Percentile(shared->times, 90.0);
  report.max_response = Max(shared->times);
  return report;
}

}  // namespace mfc
