#include "src/baseline/keynote_prober.h"

#include "src/telemetry/stats.h"

namespace mfc {

ProbeReport KeynoteProber::Run(size_t count) {
  ProbeReport report;
  std::vector<double> times;
  times.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t client = next_client_++ % testbed_.ClientCount();
    RequestSample sample = testbed_.FetchOnce(client, request_);
    ++report.probes;
    if (sample.timed_out || !IsSuccess(sample.code)) {
      ++report.failures;
    }
    times.push_back(sample.response_time);
    testbed_.WaitUntil(testbed_.Now() + interval_);
  }
  report.mean_response = Mean(times);
  report.median_response = Median(times);
  report.p95_response = Percentile(times, 95.0);
  report.max_response = Max(times);
  return report;
}

}  // namespace mfc
