// Synthetic web-site generation.
//
// Produces a ContentStore whose text pages are real HTML documents linking to
// each other and to images, binaries and CGI endpoints, so that crawling the
// site from "/" discovers everything reachable — the input the MFC profiling
// stage (Section 2.2.1) needs. Sizes are drawn from the configured ranges;
// whether a site has any Large Object (>100 KB) or Small Query (<15 KB
// dynamic) candidate is controlled by the spec, because the paper's survey
// had to select sites hosting at least one object of each kind.
#ifndef MFC_SRC_CONTENT_SITE_GENERATOR_H_
#define MFC_SRC_CONTENT_SITE_GENERATOR_H_

#include <cstdint>

#include "src/content/object_store.h"
#include "src/sim/rng.h"

namespace mfc {

struct SiteSpec {
  size_t page_count = 12;       // HTML pages, including the index
  size_t image_count = 20;
  size_t binary_count = 4;      // pdf/tarball-style downloads
  size_t query_endpoint_count = 2;

  uint64_t page_size_min = 2 * 1024;
  uint64_t page_size_max = 40 * 1024;
  uint64_t image_size_min = 4 * 1024;
  uint64_t image_size_max = 80 * 1024;
  uint64_t binary_size_min = 150 * 1024;
  uint64_t binary_size_max = 2 * 1024 * 1024;
  uint64_t query_response_min = 300;
  uint64_t query_response_max = 12 * 1024;

  uint64_t query_rows_min = 5'000;   // DB rows touched per dynamic request
  uint64_t query_rows_max = 80'000;

  // Dynamic endpoints accept arbitrary query strings, each a distinct result.
  bool queries_unique_per_string = true;

  // Average out-links per page to other discovered content.
  size_t links_per_page = 6;
};

// Generates a site. Every object is reachable from the base page through
// href/src links (pages form a random tree plus extra cross edges).
ContentStore GenerateSite(Rng& rng, const SiteSpec& spec);

}  // namespace mfc

#endif  // MFC_SRC_CONTENT_SITE_GENERATOR_H_
