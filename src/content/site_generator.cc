#include "src/content/site_generator.h"

#include <algorithm>
#include <string>
#include <vector>

namespace mfc {
namespace {

constexpr std::string_view kFiller =
    "lorem ipsum dolor sit amet consectetur adipiscing elit sed do eiusmod tempor "
    "incididunt ut labore et dolore magna aliqua ut enim ad minim veniam quis ";

// Builds an HTML document with the given link targets, padded with filler
// prose to approximately |target_size| bytes.
std::string BuildHtml(const std::string& title, const std::vector<std::string>& links,
                      uint64_t target_size) {
  std::string html = "<html><head><title>" + title + "</title></head><body>\n";
  html += "<h1>" + title + "</h1>\n";
  for (const std::string& link : links) {
    if (link.size() > 4 && (link.ends_with(".jpg") || link.ends_with(".png") ||
                            link.ends_with(".gif"))) {
      html += "<img src=\"" + link + "\" alt=\"img\">\n";
    } else {
      html += "<a href=\"" + link + "\">" + link + "</a>\n";
    }
  }
  html += "<p>";
  while (html.size() + 20 < target_size) {
    size_t take = std::min<size_t>(kFiller.size(), target_size - 20 - html.size());
    html.append(kFiller.substr(0, take));
  }
  html += "</p>\n</body></html>\n";
  return html;
}

std::string_view BinaryExtension(Rng& rng) {
  switch (rng.NextBelow(4)) {
    case 0:
      return ".pdf";
    case 1:
      return ".tar.gz";
    case 2:
      return ".zip";
    default:
      return ".exe";
  }
}

std::string_view ImageExtension(Rng& rng) {
  switch (rng.NextBelow(3)) {
    case 0:
      return ".jpg";
    case 1:
      return ".png";
    default:
      return ".gif";
  }
}

}  // namespace

ContentStore GenerateSite(Rng& rng, const SiteSpec& spec) {
  ContentStore store;
  size_t page_count = std::max<size_t>(spec.page_count, 1);

  std::vector<std::string> page_paths;
  page_paths.reserve(page_count);
  page_paths.push_back("/");
  for (size_t i = 1; i < page_count; ++i) {
    page_paths.push_back("/page" + std::to_string(i) + ".html");
  }

  // Non-page assets, each assigned a hosting page that links to it.
  struct Asset {
    WebObject object;
    size_t host_page;
    std::string link_target;  // how pages reference it (may carry a query)
  };
  std::vector<Asset> assets;

  auto host_for = [&](size_t) { return static_cast<size_t>(rng.NextBelow(page_count)); };

  for (size_t i = 0; i < spec.image_count; ++i) {
    WebObject img;
    img.path = "/img/picture" + std::to_string(i) + std::string(ImageExtension(rng));
    img.content_class = ContentClass::kImage;
    img.size_bytes = static_cast<uint64_t>(
        rng.UniformInt(static_cast<int64_t>(spec.image_size_min),
                       static_cast<int64_t>(spec.image_size_max)));
    assets.push_back(Asset{img, host_for(i), img.path});
  }
  for (size_t i = 0; i < spec.binary_count; ++i) {
    WebObject bin;
    bin.path = "/files/release" + std::to_string(i) + std::string(BinaryExtension(rng));
    bin.content_class = ContentClass::kBinary;
    bin.size_bytes = static_cast<uint64_t>(
        rng.UniformInt(static_cast<int64_t>(spec.binary_size_min),
                       static_cast<int64_t>(spec.binary_size_max)));
    assets.push_back(Asset{bin, host_for(i), bin.path});
  }
  for (size_t i = 0; i < spec.query_endpoint_count; ++i) {
    WebObject query;
    query.path = "/cgi/search" + std::to_string(i) + ".php";
    query.content_class = ContentClass::kQuery;
    query.dynamic = true;
    query.unique_per_query = spec.queries_unique_per_string;
    query.size_bytes = static_cast<uint64_t>(
        rng.UniformInt(static_cast<int64_t>(spec.query_response_min),
                       static_cast<int64_t>(spec.query_response_max)));
    query.db_rows = static_cast<uint64_t>(
        rng.UniformInt(static_cast<int64_t>(spec.query_rows_min),
                       static_cast<int64_t>(spec.query_rows_max)));
    assets.push_back(Asset{query, host_for(i), query.path + "?id=" + std::to_string(i)});
  }

  // Per-page link lists. Pages form a random tree rooted at the index so
  // everything is crawlable, plus random cross links up to links_per_page.
  std::vector<std::vector<std::string>> links(page_count);
  for (size_t i = 1; i < page_count; ++i) {
    size_t parent = static_cast<size_t>(rng.NextBelow(i));
    links[parent].push_back(page_paths[i]);
  }
  for (const Asset& asset : assets) {
    links[asset.host_page].push_back(asset.link_target);
  }
  for (size_t i = 0; i < page_count; ++i) {
    while (links[i].size() < spec.links_per_page && page_count > 1) {
      size_t to = static_cast<size_t>(rng.NextBelow(page_count));
      if (to != i) {
        links[i].push_back(page_paths[to]);
      }
    }
  }

  for (size_t i = 0; i < page_count; ++i) {
    WebObject page;
    page.path = page_paths[i];
    page.content_class = ContentClass::kText;
    uint64_t target = static_cast<uint64_t>(
        rng.UniformInt(static_cast<int64_t>(spec.page_size_min),
                       static_cast<int64_t>(spec.page_size_max)));
    page.body = BuildHtml(i == 0 ? "index" : "page " + std::to_string(i), links[i], target);
    page.size_bytes = page.body.size();
    store.Add(std::move(page));
  }
  for (Asset& asset : assets) {
    store.Add(std::move(asset.object));
  }
  return store;
}

}  // namespace mfc
