#include "src/content/object_store.h"

namespace mfc {

void ContentStore::Add(WebObject object) {
  for (auto& existing : objects_) {
    if (existing.path == object.path) {
      existing = std::move(object);
      return;
    }
  }
  objects_.push_back(std::move(object));
}

const WebObject* ContentStore::Find(std::string_view path) const {
  for (const auto& object : objects_) {
    if (object.path == path) {
      return &object;
    }
  }
  return nullptr;
}

const WebObject* ContentStore::BasePage() const {
  if (const WebObject* root = Find("/")) {
    return root;
  }
  if (const WebObject* index = Find("/index.html")) {
    return index;
  }
  for (const auto& object : objects_) {
    if (object.content_class == ContentClass::kText && !object.dynamic) {
      return &object;
    }
  }
  return nullptr;
}

uint64_t ContentStore::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& object : objects_) {
    total += object.size_bytes;
  }
  return total;
}

size_t ContentStore::CountOf(ContentClass c) const {
  size_t n = 0;
  for (const auto& object : objects_) {
    if (object.content_class == c) {
      ++n;
    }
  }
  return n;
}

size_t ContentStore::DynamicCount() const {
  size_t n = 0;
  for (const auto& object : objects_) {
    if (object.dynamic) {
      ++n;
    }
  }
  return n;
}

}  // namespace mfc
