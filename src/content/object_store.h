// The content hosted by a simulated site: static objects (pages, images,
// binaries) and dynamic (CGI/database) endpoints. Text pages carry real HTML
// bodies with real links so the profiling crawler exercises the actual HTTP
// and HTML machinery.
#ifndef MFC_SRC_CONTENT_OBJECT_STORE_H_
#define MFC_SRC_CONTENT_OBJECT_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/http/content_type.h"

namespace mfc {

struct WebObject {
  std::string path;                // canonical path, starts with '/'
  ContentClass content_class = ContentClass::kText;
  uint64_t size_bytes = 0;         // body size of a GET response
  std::string body;                // real bytes for text pages; empty for bulk data
  bool dynamic = false;            // served by the CGI/DB pipeline
  uint64_t db_rows = 0;            // rows touched per query (dynamic only)
  // Dynamic endpoints can serve per-query-string unique results. When true,
  // distinct query strings are distinct cache keys (the paper's "unique
  // dynamically generated object" case).
  bool unique_per_query = false;
};

class ContentStore {
 public:
  // Adds an object; last add wins on duplicate paths.
  void Add(WebObject object);

  // Exact-path lookup; nullptr if absent.
  const WebObject* Find(std::string_view path) const;

  // The site's base page: "/", else "/index.html", else the first text page.
  const WebObject* BasePage() const;

  const std::vector<WebObject>& Objects() const { return objects_; }
  size_t Size() const { return objects_.size(); }

  // Totals for reporting.
  uint64_t TotalBytes() const;
  size_t CountOf(ContentClass c) const;
  size_t DynamicCount() const;

 private:
  std::vector<WebObject> objects_;
};

}  // namespace mfc

#endif  // MFC_SRC_CONTENT_OBJECT_STORE_H_
