#include "src/server/resources.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

namespace mfc {
namespace {

constexpr double kWorkEpsilon = 1e-9;

}  // namespace

CpuResource::CpuResource(EventLoop& loop, size_t cores, double speed)
    : loop_(loop), cores_(cores == 0 ? 1 : cores), speed_(speed) {
  assert(speed > 0.0);
}

double CpuResource::PerJobRate() const {
  if (jobs_.empty()) {
    return 0.0;
  }
  double share = std::min(1.0, static_cast<double>(cores_) / static_cast<double>(jobs_.size()));
  double slowdown = slowdown_ ? std::max(1.0, slowdown_()) : 1.0;
  return speed_ * share / slowdown;
}

void CpuResource::Submit(double demand, std::function<void()> done) {
  Advance();
  jobs_.emplace(next_job_id_++, Job{std::max(demand, kWorkEpsilon), std::move(done)});
  ScheduleNext();
}

void CpuResource::Reschedule() {
  Advance();
  ScheduleNext();
}

double CpuResource::Utilization() const {
  if (jobs_.empty()) {
    return 0.0;
  }
  return std::min(1.0, static_cast<double>(jobs_.size()) / static_cast<double>(cores_));
}

void CpuResource::Advance() {
  SimTime now = loop_.Now();
  double dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0.0 || jobs_.empty()) {
    return;
  }
  for (auto& [id, job] : jobs_) {
    job.remaining = std::max(0.0, job.remaining - current_rate_ * dt);
  }
}

void CpuResource::ScheduleNext() {
  if (timer_ != 0) {
    loop_.Cancel(timer_);
    timer_ = 0;
  }
  if (jobs_.empty()) {
    current_rate_ = 0.0;
    return;
  }
  current_rate_ = PerJobRate();
  assert(current_rate_ > 0.0);
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, job] : jobs_) {
    min_remaining = std::min(min_remaining, job.remaining);
  }
  timer_ = loop_.ScheduleAfter(min_remaining / current_rate_, [this] {
    timer_ = 0;
    OnTimer();
  });
}

void CpuResource::OnTimer() {
  Advance();
  std::vector<std::function<void()>> done;
  SimDuration quantum = TimeQuantum(loop_.Now());
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    // Done when the work is gone or the residual cannot advance the clock.
    if (it->second.remaining <= kWorkEpsilon ||
        (current_rate_ > 0.0 && it->second.remaining / current_rate_ <= quantum)) {
      done.push_back(std::move(it->second.done));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  ScheduleNext();
  for (auto& cb : done) {
    if (cb) {
      cb();
    }
  }
}

DiskResource::DiskResource(EventLoop& loop, double seek_seconds, double bandwidth_bps)
    : loop_(loop), seek_seconds_(seek_seconds), bandwidth_bps_(bandwidth_bps) {
  assert(bandwidth_bps > 0.0);
}

void DiskResource::Submit(double bytes, std::function<void()> done) {
  queue_.push_back(Op{bytes, std::move(done)});
  if (!busy_) {
    StartNext();
  }
}

double DiskResource::BusySeconds() const {
  if (!busy_) {
    return busy_accum_;
  }
  return busy_accum_ + (loop_.Now() - busy_since_);
}

void DiskResource::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  Op op = std::move(queue_.front());
  queue_.pop_front();
  if (!busy_) {
    busy_ = true;
    busy_since_ = loop_.Now();
  }
  double service = seek_seconds_ + op.bytes / bandwidth_bps_;
  loop_.ScheduleAfter(service, [this, done = std::move(op.done)]() mutable {
    if (done) {
      done();
    }
    // Account busy time up to now before possibly idling.
    busy_accum_ += loop_.Now() - busy_since_;
    busy_since_ = loop_.Now();
    if (queue_.empty()) {
      busy_ = false;
    } else {
      StartNext();
    }
  });
}

MemoryModel::MemoryModel(double ram_bytes, double base_bytes, double swap_penalty)
    : ram_(ram_bytes), used_(base_bytes), swap_penalty_(swap_penalty) {}

void MemoryModel::Allocate(double bytes) { used_ += bytes; }

void MemoryModel::Free(double bytes) { used_ = std::max(0.0, used_ - bytes); }

double MemoryModel::SlowdownFactor() const {
  if (used_ <= ram_) {
    return 1.0;
  }
  return 1.0 + swap_penalty_ * (used_ - ram_) / ram_;
}

}  // namespace mfc
