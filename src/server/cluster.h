// Load-balanced server cluster.
//
// The paper's QTP production system served the tested IP from a data center
// with 16 multiprocessor servers behind a load balancer; no MFC stage could
// move its response time (Section 4.1). ServerCluster models that: one
// HttpTarget fronting k identical WebServers with least-outstanding-requests
// dispatch.
#ifndef MFC_SRC_SERVER_CLUSTER_H_
#define MFC_SRC_SERVER_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/server/web_server.h"

namespace mfc {

class ServerCluster : public HttpTarget {
 public:
  // Builds |replica_count| servers from |config| (names suffixed by index).
  ServerCluster(EventLoop& loop, const WebServerConfig& config, size_t replica_count,
                const ContentStore* content);

  void OnRequest(const HttpRequest& request, bool is_mfc, ResponseTransport transport) override;
  const ContentStore* Content() const override { return content_; }

  size_t ReplicaCount() const { return replicas_.size(); }
  WebServer& Replica(size_t i) { return *replicas_[i]; }

  // Cluster-wide aggregates.
  size_t TotalActiveThreads() const;
  // Merged access log across replicas, sorted by arrival (the operators
  // collected logs "from all 16 servers").
  std::vector<AccessLogEntry> MergedAccessLog() const;

 private:
  size_t PickReplica() const;

  const ContentStore* content_;
  std::vector<std::unique_ptr<WebServer>> replicas_;
  std::vector<size_t> outstanding_;
};

}  // namespace mfc

#endif  // MFC_SRC_SERVER_CLUSTER_H_
