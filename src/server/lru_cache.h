// Byte-bounded LRU cache used for both the server page cache (static objects)
// and the database query cache (MySQL query_cache_size in the paper's lab
// setup was 16 MB).
#ifndef MFC_SRC_SERVER_LRU_CACHE_H_
#define MFC_SRC_SERVER_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace mfc {

class LruByteCache {
 public:
  explicit LruByteCache(double capacity_bytes) : capacity_(capacity_bytes) {}

  // Looks up |key|; a hit promotes it to most-recently-used.
  bool Touch(const std::string& key);

  // Inserts (or refreshes) |key| costing |bytes|, evicting LRU entries as
  // needed. Entries larger than the whole capacity are not cached.
  void Insert(const std::string& key, double bytes);

  bool Contains(const std::string& key) const { return index_.count(key) != 0; }
  void Clear();

  double UsedBytes() const { return used_; }
  double CapacityBytes() const { return capacity_; }
  size_t EntryCount() const { return index_.size(); }

  uint64_t Hits() const { return hits_; }
  uint64_t Misses() const { return misses_; }
  double HitRate() const;

 private:
  struct Entry {
    std::string key;
    double bytes;
  };

  void EvictUntilFits(double incoming);

  double capacity_;
  double used_ = 0.0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace mfc

#endif  // MFC_SRC_SERVER_LRU_CACHE_H_
