#include "src/server/lru_cache.h"

namespace mfc {

bool LruByteCache::Touch(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return true;
}

void LruByteCache::Insert(const std::string& key, double bytes) {
  if (bytes > capacity_) {
    return;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    used_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  EvictUntilFits(bytes);
  lru_.push_front(Entry{key, bytes});
  index_[key] = lru_.begin();
  used_ += bytes;
}

void LruByteCache::Clear() {
  lru_.clear();
  index_.clear();
  used_ = 0.0;
}

double LruByteCache::HitRate() const {
  uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

void LruByteCache::EvictUntilFits(double incoming) {
  while (!lru_.empty() && used_ + incoming > capacity_) {
    const Entry& victim = lru_.back();
    used_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

}  // namespace mfc
