#include "src/server/cluster.h"

#include <algorithm>

namespace mfc {

ServerCluster::ServerCluster(EventLoop& loop, const WebServerConfig& config, size_t replica_count,
                             const ContentStore* content)
    : content_(content) {
  replicas_.reserve(replica_count);
  for (size_t i = 0; i < replica_count; ++i) {
    WebServerConfig replica_config = config;
    replica_config.name = config.name + "-" + std::to_string(i);
    replicas_.push_back(std::make_unique<WebServer>(loop, replica_config, content));
  }
  outstanding_.assign(replica_count, 0);
}

size_t ServerCluster::PickReplica() const {
  size_t best = 0;
  for (size_t i = 1; i < outstanding_.size(); ++i) {
    if (outstanding_[i] < outstanding_[best]) {
      best = i;
    }
  }
  return best;
}

void ServerCluster::OnRequest(const HttpRequest& request, bool is_mfc,
                              ResponseTransport transport) {
  size_t idx = PickReplica();
  ++outstanding_[idx];
  auto wrapped = [this, idx, transport = std::move(transport)](
                     HttpStatus status, double bytes, std::function<void()> on_sent) mutable {
    auto release = [this, idx, on_sent = std::move(on_sent)]() mutable {
      if (outstanding_[idx] > 0) {
        --outstanding_[idx];
      }
      if (on_sent) {
        on_sent();
      }
    };
    transport(status, bytes, std::move(release));
  };
  replicas_[idx]->OnRequest(request, is_mfc, std::move(wrapped));
}

size_t ServerCluster::TotalActiveThreads() const {
  size_t total = 0;
  for (const auto& replica : replicas_) {
    total += replica->ActiveThreads();
  }
  return total;
}

std::vector<AccessLogEntry> ServerCluster::MergedAccessLog() const {
  std::vector<AccessLogEntry> merged;
  for (const auto& replica : replicas_) {
    const auto& log = replica->AccessLog();
    merged.insert(merged.end(), log.begin(), log.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const AccessLogEntry& a, const AccessLogEntry& b) { return a.arrival < b.arrival; });
  return merged;
}

}  // namespace mfc
