#include "src/server/database.h"

#include <utility>

namespace mfc {

Database::Database(EventLoop& loop, const DatabaseConfig& config, CpuResource& cpu,
                   DiskResource& disk)
    : loop_(loop), config_(config), cpu_(cpu), disk_(disk), cache_(config.query_cache_bytes) {}

void Database::Execute(const std::string& key, uint64_t rows, double result_bytes,
                       std::function<void()> done) {
  Pending pending{key, rows, result_bytes, std::move(done)};
  if (active_ < config_.connection_pool) {
    Admit(std::move(pending));
  } else {
    waiting_.push_back(std::move(pending));
  }
}

void Database::Admit(Pending pending) {
  ++active_;
  ++executed_;
  bool cache_hit = config_.query_cache_bytes > 0.0 && cache_.Touch(pending.key);
  if (cache_hit) {
    // Result served straight from the query cache: dispatch CPU only.
    cpu_.Submit(config_.base_query_cpu_s,
                [this, pending = std::move(pending)]() mutable { Finish(std::move(pending)); });
    return;
  }
  double scan_cpu =
      config_.base_query_cpu_s + config_.per_row_cpu_s * static_cast<double>(pending.rows);
  double disk_bytes =
      config_.disk_miss_fraction * config_.row_bytes * static_cast<double>(pending.rows);
  // Disk scan for cold rows runs first (buffer-pool misses), then the CPU
  // aggregation pass.
  auto after_disk = [this, scan_cpu, pending = std::move(pending)]() mutable {
    cpu_.Submit(scan_cpu, [this, pending = std::move(pending)]() mutable {
      if (config_.query_cache_bytes > 0.0) {
        cache_.Insert(pending.key, pending.result_bytes);
      }
      Finish(std::move(pending));
    });
  };
  if (disk_bytes > 0.0) {
    disk_.Submit(disk_bytes, std::move(after_disk));
  } else {
    after_disk();
  }
}

void Database::Finish(Pending pending) {
  if (pending.done) {
    pending.done();
  }
  --active_;
  if (!waiting_.empty() && active_ < config_.connection_pool) {
    Pending next = std::move(waiting_.front());
    waiting_.pop_front();
    Admit(std::move(next));
  }
}

}  // namespace mfc
