// Back-end database model.
//
// A query identified by its normalized text ("key") touches |rows| rows.
// Query-cache hits cost only the base dispatch CPU; misses pay per-row CPU
// plus a disk scan for the portion of the table not resident in the buffer
// pool, then populate the cache. A bounded connection pool serializes excess
// queries — the back-end contention the paper's Small Query stage exists to
// expose.
#ifndef MFC_SRC_SERVER_DATABASE_H_
#define MFC_SRC_SERVER_DATABASE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/server/lru_cache.h"
#include "src/server/resources.h"
#include "src/sim/event_loop.h"

namespace mfc {

struct DatabaseConfig {
  size_t connection_pool = 32;
  // CPU cost of parsing/dispatching any query.
  double base_query_cpu_s = 0.0015;
  // CPU per row scanned/aggregated on a cache miss.
  double per_row_cpu_s = 4e-6;
  double row_bytes = 100.0;
  // MySQL-style result cache; 0 disables caching.
  double query_cache_bytes = 16e6;
  // Fraction of scanned rows that miss the buffer pool and hit the disk.
  double disk_miss_fraction = 0.05;
};

class Database {
 public:
  Database(EventLoop& loop, const DatabaseConfig& config, CpuResource& cpu, DiskResource& disk);
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Runs the query; |done| fires when the result is ready to serialize.
  void Execute(const std::string& key, uint64_t rows, double result_bytes,
               std::function<void()> done);

  size_t ActiveConnections() const { return active_; }
  size_t QueuedQueries() const { return waiting_.size(); }
  const LruByteCache& QueryCache() const { return cache_; }
  uint64_t ExecutedQueries() const { return executed_; }

  // Flushes the query cache (table modification, in MySQL semantics).
  void InvalidateCache() { cache_.Clear(); }

 private:
  struct Pending {
    std::string key;
    uint64_t rows;
    double result_bytes;
    std::function<void()> done;
  };

  void Admit(Pending pending);
  void Finish(Pending pending);

  EventLoop& loop_;
  DatabaseConfig config_;
  CpuResource& cpu_;
  DiskResource& disk_;
  LruByteCache cache_;
  size_t active_ = 0;
  uint64_t executed_ = 0;
  std::deque<Pending> waiting_;
};

}  // namespace mfc

#endif  // MFC_SRC_SERVER_DATABASE_H_
