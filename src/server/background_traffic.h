// Poisson background request load against a target.
//
// The university experiments (Section 4.2) quantify how regular production
// traffic (0.15–20 requests/second in their logs) shifts MFC's stopping crowd
// sizes. BackgroundTraffic replays that: Poisson arrivals, objects drawn
// Zipf-style from the site's content, a GET/HEAD mix, each request sent
// through a caller-provided transport factory (so the bytes traverse the
// simulated network like any other client's).
#ifndef MFC_SRC_SERVER_BACKGROUND_TRAFFIC_H_
#define MFC_SRC_SERVER_BACKGROUND_TRAFFIC_H_

#include <functional>

#include "src/server/http_target.h"
#include "src/sim/distributions.h"
#include "src/sim/event_loop.h"
#include "src/sim/rng.h"

namespace mfc {

struct BackgroundTrafficConfig {
  double requests_per_second = 1.0;
  double head_fraction = 0.05;   // fraction issued as HEAD
  double zipf_exponent = 0.9;    // object popularity skew
};

class BackgroundTraffic {
 public:
  // |transport_factory| builds a fresh ResponseTransport per request (e.g. a
  // download to a random simulated spectator client).
  using TransportFactory = std::function<ResponseTransport()>;

  BackgroundTraffic(EventLoop& loop, Rng& rng, BackgroundTrafficConfig config, HttpTarget& target,
                    TransportFactory transport_factory);
  ~BackgroundTraffic() { Stop(); }
  BackgroundTraffic(const BackgroundTraffic&) = delete;
  BackgroundTraffic& operator=(const BackgroundTraffic&) = delete;

  void Start();
  void Stop();
  bool Running() const { return running_; }
  uint64_t RequestsIssued() const { return issued_; }

 private:
  void ScheduleNext();
  void FireOne();

  EventLoop& loop_;
  Rng rng_;
  BackgroundTrafficConfig config_;
  HttpTarget& target_;
  TransportFactory transport_factory_;
  ExponentialDist inter_arrival_;
  ZipfDist popularity_;
  bool running_ = false;
  EventId pending_ = 0;
  uint64_t issued_ = 0;
};

}  // namespace mfc

#endif  // MFC_SRC_SERVER_BACKGROUND_TRAFFIC_H_
