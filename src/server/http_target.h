// Interface between the network-facing testbed and a server implementation.
//
// The testbed delivers fully-arrived requests and a ResponseTransport that
// moves response bytes back toward the requesting client (over the simulated
// wide-area network, a LAN, or instantaneously in unit tests). Servers call
// the transport exactly once per request; |on_sent| fires when the last byte
// has been delivered, which is when a worker thread blocked on the socket
// write would be released.
#ifndef MFC_SRC_SERVER_HTTP_TARGET_H_
#define MFC_SRC_SERVER_HTTP_TARGET_H_

#include <functional>

#include "src/content/object_store.h"
#include "src/http/message.h"

namespace mfc {

// (status, wire bytes, completion) — wire bytes include headers.
using ResponseTransport =
    std::function<void(HttpStatus status, double bytes, std::function<void()> on_sent)>;

class HttpTarget {
 public:
  virtual ~HttpTarget() = default;

  // Handles a request arriving at the server now. |is_mfc| tags probe
  // requests in the access log (the paper separated MFC from background
  // traffic in the operators' logs).
  virtual void OnRequest(const HttpRequest& request, bool is_mfc, ResponseTransport transport) = 0;

  // The content hosted here, if content-backed (nullptr for synthetic).
  virtual const ContentStore* Content() const { return nullptr; }
};

}  // namespace mfc

#endif  // MFC_SRC_SERVER_HTTP_TARGET_H_
