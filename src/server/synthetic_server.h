// Validation target with pluggable synthetic response-time models.
//
// Section 3.1 instruments a lightweight HTTP server so that the average
// increase in response time per request is a configurable function of the
// number of simultaneous requests at the server, then checks that the crowd's
// median normalized response time tracks the model (Figure 4). This class is
// that server: no content, no resources — just the model.
#ifndef MFC_SRC_SERVER_SYNTHETIC_SERVER_H_
#define MFC_SRC_SERVER_SYNTHETIC_SERVER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/server/http_target.h"
#include "src/sim/event_loop.h"

namespace mfc {

// Maps the number of simultaneous requests to the added response time
// (seconds). Must be non-decreasing, as in the paper.
using ResponseTimeModel = std::function<SimDuration(size_t concurrent)>;

// The shapes used in Figure 4 (plus ones for property tests).
ResponseTimeModel LinearModel(SimDuration per_request);
ResponseTimeModel ExponentialModel(SimDuration scale, double growth, size_t knee);
ResponseTimeModel StepModel(size_t threshold, SimDuration low, SimDuration high);
ResponseTimeModel ConstantModel(SimDuration value);

class SyntheticModelServer : public HttpTarget {
 public:
  SyntheticModelServer(EventLoop& loop, ResponseTimeModel model,
                       SimDuration base_service = 0.002, double response_bytes = 1024.0);

  void OnRequest(const HttpRequest& request, bool is_mfc, ResponseTransport transport) override;

  // Queue-coupled delays (default, the paper's instrumented server): each
  // request's added delay is the model evaluated at the LARGEST pending-queue
  // size observed while it was pending — a new arrival stretches everything
  // already queued, the way a shared service queue behaves. When false, the
  // delay is fixed at arrival from the instantaneous concurrency.
  void set_queue_coupled(bool coupled) { queue_coupled_ = coupled; }

  size_t Concurrent() const { return pending_.size(); }
  // Arrival timestamps of every request, for the Figure 3 analysis.
  const std::vector<SimTime>& Arrivals() const { return arrivals_; }
  void ClearArrivals() { arrivals_.clear(); }

 private:
  struct Pending {
    uint64_t id;
    SimTime arrival;
    SimTime completion;
    EventId event;
    ResponseTransport transport;
  };

  void Complete(uint64_t id);

  EventLoop& loop_;
  ResponseTimeModel model_;
  SimDuration base_service_;
  double response_bytes_;
  bool queue_coupled_ = true;
  uint64_t next_id_ = 1;
  std::vector<Pending> pending_;
  std::vector<SimTime> arrivals_;
};

}  // namespace mfc

#endif  // MFC_SRC_SERVER_SYNTHETIC_SERVER_H_
