#include "src/server/background_traffic.h"

#include <cassert>
#include <utility>

namespace mfc {

BackgroundTraffic::BackgroundTraffic(EventLoop& loop, Rng& rng, BackgroundTrafficConfig config,
                                     HttpTarget& target, TransportFactory transport_factory)
    : loop_(loop), rng_(rng.Fork()), config_(config), target_(target),
      transport_factory_(std::move(transport_factory)),
      inter_arrival_(config.requests_per_second > 0 ? config.requests_per_second : 1.0),
      popularity_(target.Content() != nullptr && target.Content()->Size() > 0
                      ? target.Content()->Size()
                      : 1,
                  config.zipf_exponent) {}

void BackgroundTraffic::Start() {
  if (running_ || config_.requests_per_second <= 0.0) {
    return;
  }
  running_ = true;
  ScheduleNext();
}

void BackgroundTraffic::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (pending_ != 0) {
    loop_.Cancel(pending_);
    pending_ = 0;
  }
}

void BackgroundTraffic::ScheduleNext() {
  pending_ = loop_.ScheduleAfter(inter_arrival_.Sample(rng_), [this] {
    pending_ = 0;
    FireOne();
    if (running_) {
      ScheduleNext();
    }
  });
}

void BackgroundTraffic::FireOne() {
  const ContentStore* content = target_.Content();
  HttpRequest request;
  if (content != nullptr && content->Size() > 0) {
    const WebObject& object = content->Objects()[popularity_.Sample(rng_)];
    request.target = object.dynamic && object.unique_per_query
                         ? object.path + "?bg=" + std::to_string(rng_.NextBelow(1'000'000))
                         : object.path;
    request.method = rng_.Chance(config_.head_fraction) ? HttpMethod::kHead : HttpMethod::kGet;
  } else {
    request.target = "/";
    request.method = HttpMethod::kGet;
  }
  request.headers.Set("Host", "target");
  request.headers.Set("User-Agent", "background/1.0");
  ++issued_;
  target_.OnRequest(request, /*is_mfc=*/false, transport_factory_());
}

}  // namespace mfc
