// Server-side hardware resource models.
//
// CpuResource: k-core processor-sharing queue — with n jobs each progresses
// at speed * min(1, cores/n), optionally scaled down by a slowdown provider
// (memory pressure / swap). DiskResource: FIFO-serialized device with
// seek + transfer service times; serialized access to a single disk is one of
// the resource-serialization effects Section 3.3 discusses. MemoryModel:
// explicit allocation accounting with a swap penalty once resident usage
// exceeds RAM — the mechanism behind the FastCGI blow-up in Figure 6.
#ifndef MFC_SRC_SERVER_RESOURCES_H_
#define MFC_SRC_SERVER_RESOURCES_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "src/sim/event_loop.h"

namespace mfc {

class CpuResource {
 public:
  // |cores| parallel cores, each at |speed| (1.0 = demands are in seconds).
  CpuResource(EventLoop& loop, size_t cores, double speed = 1.0);
  CpuResource(const CpuResource&) = delete;
  CpuResource& operator=(const CpuResource&) = delete;

  // External factor >= 1 dividing effective speed (e.g. swap thrashing).
  // Queried on every reallocation.
  void SetSlowdownProvider(std::function<double()> provider) { slowdown_ = std::move(provider); }

  // Submits a job needing |demand| core-seconds; |done| fires on completion.
  void Submit(double demand, std::function<void()> done);

  // Forces a re-read of the slowdown provider (call after memory changes).
  void Reschedule();

  size_t ActiveJobs() const { return jobs_.size(); }
  // Instantaneous utilization in [0, 1].
  double Utilization() const;
  size_t Cores() const { return cores_; }

 private:
  struct Job {
    double remaining;
    std::function<void()> done;
  };

  void Advance();
  double PerJobRate() const;
  void ScheduleNext();
  void OnTimer();

  EventLoop& loop_;
  size_t cores_;
  double speed_;
  std::function<double()> slowdown_;
  std::unordered_map<uint64_t, Job> jobs_;
  uint64_t next_job_id_ = 1;
  SimTime last_advance_ = kTimeZero;
  // Rate in effect since the last reallocation; Advance() must use this, not
  // a fresh PerJobRate(), so slowdown changes apply only from the instant of
  // the Reschedule() that observed them.
  double current_rate_ = 0.0;
  EventId timer_ = 0;
};

class DiskResource {
 public:
  DiskResource(EventLoop& loop, double seek_seconds, double bandwidth_bps);
  DiskResource(const DiskResource&) = delete;
  DiskResource& operator=(const DiskResource&) = delete;

  // Reads/writes |bytes|; operations are strictly FIFO.
  void Submit(double bytes, std::function<void()> done);

  size_t QueueDepth() const { return queue_.size() + (busy_ ? 1 : 0); }
  bool Busy() const { return busy_; }
  // Cumulative busy seconds — callers derive utilization over a window.
  double BusySeconds() const;

 private:
  struct Op {
    double bytes;
    std::function<void()> done;
  };

  void StartNext();

  EventLoop& loop_;
  double seek_seconds_;
  double bandwidth_bps_;
  bool busy_ = false;
  SimTime busy_since_ = kTimeZero;
  double busy_accum_ = 0.0;
  std::deque<Op> queue_;
};

class MemoryModel {
 public:
  // |ram_bytes| of physical memory; |base_bytes| always resident (OS, server
  // binary). |swap_penalty| scales the CPU slowdown per unit of overcommit.
  MemoryModel(double ram_bytes, double base_bytes, double swap_penalty = 8.0);

  void Allocate(double bytes);
  void Free(double bytes);

  double UsedBytes() const { return used_; }
  double RamBytes() const { return ram_; }
  bool Swapping() const { return used_ > ram_; }

  // >= 1; 1 while resident fits in RAM, then grows linearly with overcommit.
  double SlowdownFactor() const;

 private:
  double ram_;
  double used_;
  double swap_penalty_;
};

}  // namespace mfc

#endif  // MFC_SRC_SERVER_RESOURCES_H_
