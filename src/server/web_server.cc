#include "src/server/web_server.h"

#include <cassert>
#include <utility>

namespace mfc {

WebServer::WebServer(EventLoop& loop, WebServerConfig config, const ContentStore* content)
    : loop_(loop), config_(std::move(config)), content_(content),
      cpu_(loop, config_.cpu_cores, config_.cpu_speed),
      db_cpu_(config_.db_dedicated_cores > 0
                  ? std::make_unique<CpuResource>(loop, config_.db_dedicated_cores,
                                                  config_.db_cpu_speed)
                  : nullptr),
      disk_(loop, config_.disk_seek_s, config_.disk_bw_bps),
      memory_(config_.ram_bytes, config_.base_memory_bytes, config_.swap_penalty),
      db_(loop, config_.db, db_cpu_ != nullptr ? *db_cpu_ : cpu_, disk_),
      page_cache_(config_.page_cache_bytes) {
  cpu_.SetSlowdownProvider([this] { return memory_.SlowdownFactor(); });
}

void WebServer::OnRequest(const HttpRequest& request, bool is_mfc, ResponseTransport transport) {
  access_log_.push_back(AccessLogEntry{loop_.Now(), request.method, request.target,
                                       HttpStatus::kOk, 0.0, is_mfc});
  Ctx ctx{request, is_mfc, std::move(transport), access_log_.size() - 1};
  Enqueue(std::move(ctx));
}

void WebServer::Enqueue(Ctx ctx) {
  if (active_threads_ < config_.worker_threads) {
    ++active_threads_;
    Process(std::move(ctx));
    return;
  }
  if (accept_queue_.size() < config_.accept_backlog) {
    accept_queue_.push_back(std::move(ctx));
    return;
  }
  // Listen backlog exhausted: immediate refusal, no worker consumed.
  ++rejected_;
  Send(std::move(ctx), HttpStatus::kServiceUnavailable, 0.0);
}

void WebServer::Process(Ctx ctx) {
  double demand = config_.request_parse_cpu_s +
                  config_.per_connection_cpu_s * static_cast<double>(active_threads_);
  cpu_.Submit(demand, [this, ctx = std::move(ctx)]() mutable { Dispatch(std::move(ctx)); });
}

void WebServer::Dispatch(Ctx ctx) {
  const WebObject* object =
      content_ != nullptr ? content_->Find(ctx.request.Path()) : nullptr;
  if (object == nullptr) {
    Send(std::move(ctx), HttpStatus::kNotFound, 200.0);
    return;
  }
  if (ctx.request.method == HttpMethod::kHead) {
    // Metadata only: a stat() plus header assembly; never touches the body.
    cpu_.Submit(config_.head_cpu_s, [this, ctx = std::move(ctx)]() mutable {
      Send(std::move(ctx), HttpStatus::kOk, 0.0);
    });
    return;
  }
  if (object->dynamic) {
    ServeDynamic(std::move(ctx), *object);
  } else {
    ServeStatic(std::move(ctx), *object);
  }
}

void WebServer::ServeStatic(Ctx ctx, const WebObject& object) {
  double size = static_cast<double>(object.size_bytes);
  if (page_cache_.Touch(object.path)) {
    Send(std::move(ctx), HttpStatus::kOk, size);
    return;
  }
  const std::string path = object.path;
  disk_.Submit(size, [this, ctx = std::move(ctx), path, size]() mutable {
    page_cache_.Insert(path, size);
    Send(std::move(ctx), HttpStatus::kOk, size);
  });
}

void WebServer::ServeDynamic(Ctx ctx, const WebObject& object) {
  switch (config_.cgi_model) {
    case CgiModel::kNone:
      Send(std::move(ctx), HttpStatus::kNotFound, 200.0);
      return;
    case CgiModel::kFastCgi:
      // Process-per-request: the forked handler inherits the parent image.
      ++active_cgi_;
      memory_.Allocate(config_.cgi_process_memory_bytes);
      cpu_.Reschedule();
      RunCgi(std::move(ctx), object);
      return;
    case CgiModel::kMongrel: {
      if (active_cgi_ < config_.mongrel_pool) {
        ++active_cgi_;
        RunCgi(std::move(ctx), object);
      } else {
        // Wait for a pool worker; captures by value, object outlives us
        // (ContentStore is owned by the testbed for the whole run).
        const WebObject* obj = &object;
        cgi_wait_.push_back([this, ctx = std::move(ctx), obj]() mutable {
          ++active_cgi_;
          RunCgi(std::move(ctx), *obj);
        });
      }
      return;
    }
  }
}

void WebServer::RunCgi(Ctx ctx, const WebObject& object) {
  // Query-cache key: unique-per-query endpoints key on the full target so
  // distinct query strings never hit; otherwise all callers share one key.
  std::string key = object.unique_per_query ? ctx.request.target : object.path;
  uint64_t rows = object.db_rows;
  double result_bytes = static_cast<double>(object.size_bytes);
  cpu_.Submit(config_.cgi_cpu_s, [this, ctx = std::move(ctx), key, rows, result_bytes]() mutable {
    db_.Execute(key, rows, result_bytes, [this, ctx = std::move(ctx), result_bytes]() mutable {
      ReleaseCgiSlot();
      Send(std::move(ctx), HttpStatus::kOk, result_bytes);
    });
  });
}

void WebServer::Send(Ctx ctx, HttpStatus status, double body_bytes) {
  access_log_[ctx.log_index].status = status;
  access_log_[ctx.log_index].bytes = body_bytes;
  double wire = config_.response_header_bytes + body_bytes;
  bool had_thread = status != HttpStatus::kServiceUnavailable;
  auto transport = std::move(ctx.transport);
  transport(status, wire, [this, had_thread] {
    if (had_thread) {
      ReleaseThread();
    }
  });
}

void WebServer::ReleaseThread() {
  assert(active_threads_ > 0);
  --active_threads_;
  if (!accept_queue_.empty() && active_threads_ < config_.worker_threads) {
    Ctx next = std::move(accept_queue_.front());
    accept_queue_.pop_front();
    ++active_threads_;
    Process(std::move(next));
  }
}

void WebServer::ReleaseCgiSlot() {
  assert(active_cgi_ > 0);
  --active_cgi_;
  if (config_.cgi_model == CgiModel::kFastCgi) {
    memory_.Free(config_.cgi_process_memory_bytes);
    cpu_.Reschedule();
    return;
  }
  if (config_.cgi_model == CgiModel::kMongrel && !cgi_wait_.empty()) {
    auto next = std::move(cgi_wait_.front());
    cgi_wait_.pop_front();
    next();
  }
}

}  // namespace mfc
