#include "src/server/web_server.h"

#include <cassert>
#include <utility>

#include "src/telemetry/metrics.h"

namespace mfc {

WebServer::WebServer(EventLoop& loop, WebServerConfig config, const ContentStore* content)
    : loop_(loop), config_(std::move(config)), content_(content),
      cpu_(loop, config_.cpu_cores, config_.cpu_speed),
      db_cpu_(config_.db_dedicated_cores > 0
                  ? std::make_unique<CpuResource>(loop, config_.db_dedicated_cores,
                                                  config_.db_cpu_speed)
                  : nullptr),
      disk_(loop, config_.disk_seek_s, config_.disk_bw_bps),
      memory_(config_.ram_bytes, config_.base_memory_bytes, config_.swap_penalty),
      db_(loop, config_.db, db_cpu_ != nullptr ? *db_cpu_ : cpu_, disk_),
      page_cache_(config_.page_cache_bytes) {
  cpu_.SetSlowdownProvider([this] { return memory_.SlowdownFactor(); });
}

void WebServer::OnRequest(const HttpRequest& request, bool is_mfc, ResponseTransport transport) {
  access_log_.push_back(AccessLogEntry{loop_.Now(), request.method, request.target,
                                       HttpStatus::kOk, 0.0, is_mfc});
  Ctx ctx{request, is_mfc, std::move(transport), access_log_.size() - 1, nullptr};
  if (telemetry_ != nullptr && telemetry_->Enabled()) {
    ctx.trace = std::make_shared<RequestTrace>();
    ctx.trace->arrival = loop_.Now();
    ctx.trace->stage = telemetry_->stage;
    if (telemetry_->tracer != nullptr) {
      Tracer& tracer = *telemetry_->tracer;
      ctx.trace->root = tracer.StartSpan("request", "server", 0, loop_.Now());
      tracer.Attr(ctx.trace->root, "target", request.target);
      tracer.Attr(ctx.trace->root, "method", std::string(MethodName(request.method)));
      tracer.Attr(ctx.trace->root, "stage", ctx.trace->stage);
      tracer.Attr(ctx.trace->root, "is_mfc", std::string(is_mfc ? "true" : "false"));
    }
  }
  Enqueue(std::move(ctx));
}

void WebServer::Charge(const Ctx& ctx, const char* name, SimTime t0,
                       double RequestTrace::* bucket) {
  if (ctx.trace == nullptr) {
    return;
  }
  SimTime now = loop_.Now();
  if (telemetry_->tracer != nullptr && ctx.trace->root != 0) {
    SpanId span = telemetry_->tracer->StartSpan(name, "server", ctx.trace->root, t0);
    telemetry_->tracer->EndSpan(span, now);
  }
  (*ctx.trace).*bucket += now - t0;
}

void WebServer::FinishRequestTrace(const RequestTrace& trace, HttpStatus status,
                                   double body_bytes) {
  SimTime now = loop_.Now();
  if (telemetry_->tracer != nullptr && trace.root != 0) {
    Tracer& tracer = *telemetry_->tracer;
    tracer.Attr(trace.root, "status", static_cast<uint64_t>(status));
    tracer.Attr(trace.root, "bytes", body_bytes);
    tracer.EndSpan(trace.root, now);
  }
  if (telemetry_->metrics != nullptr) {
    MetricsRegistry& m = *telemetry_->metrics;
    const std::string prefix = "span." + trace.stage + ".";
    m.Add(prefix + "count");
    m.Add(prefix + "queue_s", trace.queue_s);
    m.Add(prefix + "cpu_s", trace.cpu_s);
    m.Add(prefix + "db_s", trace.db_s);
    m.Add(prefix + "disk_s", trace.disk_s);
    m.Add(prefix + "net_s", trace.net_s);
    m.Add("server.requests_total");
    double total_ms = ToMillis(now - trace.arrival);
    m.HistObserve("server.request_ms", LatencyBucketEdgesMs(), total_ms);
    m.Observe("server.request_ms", total_ms);
  }
}

void WebServer::Enqueue(Ctx ctx) {
  if (active_threads_ < config_.worker_threads) {
    ++active_threads_;
    Process(std::move(ctx));
    return;
  }
  if (accept_queue_.size() < config_.accept_backlog) {
    accept_queue_.push_back(std::move(ctx));
    return;
  }
  // Listen backlog exhausted: immediate refusal, no worker consumed.
  ++rejected_;
  if (telemetry_ != nullptr && telemetry_->metrics != nullptr) {
    telemetry_->metrics->Add("server.rejected_503");
  }
  Send(std::move(ctx), HttpStatus::kServiceUnavailable, 0.0);
}

void WebServer::Process(Ctx ctx) {
  if (ctx.trace != nullptr) {
    // Accept-queue wait: arrival to worker-thread acquisition (0 when a
    // worker was free; the zero-length span keeps traces structurally
    // uniform).
    Charge(ctx, "queue", ctx.trace->arrival, &RequestTrace::queue_s);
  }
  double demand = config_.request_parse_cpu_s +
                  config_.per_connection_cpu_s * static_cast<double>(active_threads_);
  SimTime t0 = loop_.Now();
  cpu_.Submit(demand, [this, t0, ctx = std::move(ctx)]() mutable {
    Charge(ctx, "cpu", t0, &RequestTrace::cpu_s);
    Dispatch(std::move(ctx));
  });
}

void WebServer::Dispatch(Ctx ctx) {
  const WebObject* object =
      content_ != nullptr ? content_->Find(ctx.request.Path()) : nullptr;
  if (object == nullptr) {
    Send(std::move(ctx), HttpStatus::kNotFound, 200.0);
    return;
  }
  if (ctx.request.method == HttpMethod::kHead) {
    // Metadata only: a stat() plus header assembly; never touches the body.
    SimTime t0 = loop_.Now();
    cpu_.Submit(config_.head_cpu_s, [this, t0, ctx = std::move(ctx)]() mutable {
      Charge(ctx, "cpu", t0, &RequestTrace::cpu_s);
      Send(std::move(ctx), HttpStatus::kOk, 0.0);
    });
    return;
  }
  if (object->dynamic) {
    ServeDynamic(std::move(ctx), *object);
  } else {
    ServeStatic(std::move(ctx), *object);
  }
}

void WebServer::ServeStatic(Ctx ctx, const WebObject& object) {
  double size = static_cast<double>(object.size_bytes);
  if (page_cache_.Touch(object.path)) {
    Send(std::move(ctx), HttpStatus::kOk, size);
    return;
  }
  const std::string path = object.path;
  SimTime t0 = loop_.Now();
  disk_.Submit(size, [this, t0, ctx = std::move(ctx), path, size]() mutable {
    Charge(ctx, "disk", t0, &RequestTrace::disk_s);
    page_cache_.Insert(path, size);
    Send(std::move(ctx), HttpStatus::kOk, size);
  });
}

void WebServer::ServeDynamic(Ctx ctx, const WebObject& object) {
  switch (config_.cgi_model) {
    case CgiModel::kNone:
      Send(std::move(ctx), HttpStatus::kNotFound, 200.0);
      return;
    case CgiModel::kFastCgi:
      // Process-per-request: the forked handler inherits the parent image.
      ++active_cgi_;
      memory_.Allocate(config_.cgi_process_memory_bytes);
      cpu_.Reschedule();
      RunCgi(std::move(ctx), object);
      return;
    case CgiModel::kMongrel: {
      if (active_cgi_ < config_.mongrel_pool) {
        ++active_cgi_;
        RunCgi(std::move(ctx), object);
      } else {
        // Wait for a pool worker; captures by value, object outlives us
        // (ContentStore is owned by the testbed for the whole run).
        const WebObject* obj = &object;
        SimTime t0 = loop_.Now();
        cgi_wait_.push_back([this, t0, ctx = std::move(ctx), obj]() mutable {
          Charge(ctx, "queue", t0, &RequestTrace::queue_s);
          ++active_cgi_;
          RunCgi(std::move(ctx), *obj);
        });
      }
      return;
    }
  }
}

void WebServer::RunCgi(Ctx ctx, const WebObject& object) {
  // Query-cache key: unique-per-query endpoints key on the full target so
  // distinct query strings never hit; otherwise all callers share one key.
  std::string key = object.unique_per_query ? ctx.request.target : object.path;
  uint64_t rows = object.db_rows;
  double result_bytes = static_cast<double>(object.size_bytes);
  SimTime t0 = loop_.Now();
  cpu_.Submit(config_.cgi_cpu_s, [this, t0, ctx = std::move(ctx), key, rows,
                                  result_bytes]() mutable {
    Charge(ctx, "cpu", t0, &RequestTrace::cpu_s);
    SimTime db_t0 = loop_.Now();
    db_.Execute(key, rows, result_bytes, [this, db_t0, ctx = std::move(ctx),
                                          result_bytes]() mutable {
      Charge(ctx, "db", db_t0, &RequestTrace::db_s);
      ReleaseCgiSlot();
      Send(std::move(ctx), HttpStatus::kOk, result_bytes);
    });
  });
}

void WebServer::Send(Ctx ctx, HttpStatus status, double body_bytes) {
  access_log_[ctx.log_index].status = status;
  access_log_[ctx.log_index].bytes = body_bytes;
  double wire = config_.response_header_bytes + body_bytes;
  bool had_thread = status != HttpStatus::kServiceUnavailable;
  SimTime t0 = loop_.Now();
  auto trace = std::move(ctx.trace);
  auto transport = std::move(ctx.transport);
  transport(status, wire, [this, had_thread, t0, trace, status, body_bytes] {
    if (trace != nullptr) {
      // Outbound transfer: transport call to last-byte delivery.
      SimTime now = loop_.Now();
      if (telemetry_->tracer != nullptr && trace->root != 0) {
        SpanId span = telemetry_->tracer->StartSpan("net", "server", trace->root, t0);
        telemetry_->tracer->EndSpan(span, now);
      }
      trace->net_s += now - t0;
      FinishRequestTrace(*trace, status, body_bytes);
    }
    if (had_thread) {
      ReleaseThread();
    }
  });
}

void WebServer::ReleaseThread() {
  assert(active_threads_ > 0);
  --active_threads_;
  if (!accept_queue_.empty() && active_threads_ < config_.worker_threads) {
    Ctx next = std::move(accept_queue_.front());
    accept_queue_.pop_front();
    ++active_threads_;
    Process(std::move(next));
  }
}

void WebServer::ReleaseCgiSlot() {
  assert(active_cgi_ > 0);
  --active_cgi_;
  if (config_.cgi_model == CgiModel::kFastCgi) {
    memory_.Free(config_.cgi_process_memory_bytes);
    cpu_.Reschedule();
    return;
  }
  if (config_.cgi_model == CgiModel::kMongrel && !cgi_wait_.empty()) {
    auto next = std::move(cgi_wait_.front());
    cgi_wait_.pop_front();
    next();
  }
}

}  // namespace mfc
