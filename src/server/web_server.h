// Multi-resource web-server model (Apache worker-MPM style).
//
// Request lifecycle: accept (bounded worker-thread pool with a bounded accept
// backlog; overflow gets an immediate 503) → per-request parse CPU → dispatch
// by object type:
//   HEAD            : metadata-only, small CPU — the paper's Base stage.
//   GET static      : page-cache lookup; miss pays a FIFO disk read — the
//                     Large Object stage path (the same object is requested
//                     by every client, so after one miss it is cache-hot and
//                     only the outbound link is exercised).
//   GET dynamic     : CGI handler + back-end database — the Small Query path.
//                     FastCGI forks a process per in-flight request, each
//                     inheriting the parent memory image (footnote 1 of the
//                     paper); memory overcommit slows the CPU via the swap
//                     penalty. Mongrel uses a fixed worker pool instead.
// The worker thread is held until the last response byte is delivered, which
// is what couples thread limits to large transfers (the Univ-2 observation).
#ifndef MFC_SRC_SERVER_WEB_SERVER_H_
#define MFC_SRC_SERVER_WEB_SERVER_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/content/object_store.h"
#include "src/server/database.h"
#include "src/server/http_target.h"
#include "src/server/lru_cache.h"
#include "src/server/resources.h"
#include "src/sim/event_loop.h"
#include "src/telemetry/trace.h"

namespace mfc {

enum class CgiModel {
  kNone,      // no dynamic content support: queries get 404
  kFastCgi,   // process-per-request, inherited memory image
  kMongrel,   // fixed worker pool, constant memory
};

struct WebServerConfig {
  std::string name = "server";

  // Concurrency limits (Apache worker MPM semantics).
  size_t worker_threads = 256;
  size_t accept_backlog = 511;

  // CPU.
  size_t cpu_cores = 2;
  double cpu_speed = 1.0;            // >1 = faster hardware
  double request_parse_cpu_s = 8e-4; // HTTP parse + dispatch per request
  double head_cpu_s = 4e-4;          // extra work for metadata-only responses
  // Software-configuration artifact (the Univ-2 effect): extra per-request
  // CPU proportional to the number of concurrent connections, as in an O(n)
  // readiness scan. 0 disables.
  double per_connection_cpu_s = 0.0;

  // Back-end database placement: 0 = the DB shares the front-end CPU (single
  // box, the lab setup); > 0 = a dedicated DB server with this many cores
  // (multi-tier, the QTNP/QTP setup).
  size_t db_dedicated_cores = 0;
  double db_cpu_speed = 1.0;

  // Memory.
  double ram_bytes = 1e9;
  double base_memory_bytes = 250e6;
  double swap_penalty = 12.0;

  // Disk & page cache.
  double disk_seek_s = 6e-3;
  double disk_bw_bps = 50e6;
  double page_cache_bytes = 400e6;

  // Wire overhead of a response's status line + headers.
  double response_header_bytes = 250.0;

  // Dynamic-content handler.
  CgiModel cgi_model = CgiModel::kFastCgi;
  double cgi_process_memory_bytes = 24e6;  // FastCGI inherited image
  double cgi_cpu_s = 2e-3;                 // marshalling CPU per dynamic request
  size_t mongrel_pool = 16;

  DatabaseConfig db;
};

struct AccessLogEntry {
  SimTime arrival;
  HttpMethod method;
  std::string target;
  HttpStatus status = HttpStatus::kOk;
  double bytes = 0.0;
  bool is_mfc = false;
};

class WebServer : public HttpTarget {
 public:
  WebServer(EventLoop& loop, WebServerConfig config, const ContentStore* content);

  void OnRequest(const HttpRequest& request, bool is_mfc, ResponseTransport transport) override;
  const ContentStore* Content() const override { return content_; }

  // Telemetry gauges.
  size_t ActiveThreads() const { return active_threads_; }
  size_t AcceptQueueDepth() const { return accept_queue_.size(); }
  double CpuUtilization() const { return cpu_.Utilization(); }
  double MemoryUsedBytes() const { return memory_.UsedBytes(); }
  size_t ActiveCgiProcesses() const { return active_cgi_; }
  uint64_t Rejected503() const { return rejected_; }

  CpuResource& Cpu() { return cpu_; }
  DiskResource& Disk() { return disk_; }
  MemoryModel& Memory() { return memory_; }
  Database& Db() { return db_; }
  LruByteCache& PageCache() { return page_cache_; }
  const WebServerConfig& Config() const { return config_; }

  // Access log (always on; tests and the bench harness read it).
  const std::vector<AccessLogEntry>& AccessLog() const { return access_log_; }
  void ClearAccessLog() { access_log_.clear(); }

  // Optional tracing/metrics sink. Null (the default) keeps the request path
  // identical to the uninstrumented server; when set, every request gets a
  // root "request" span with queue/cpu/db/disk/net children and per-stage
  // span-time totals accumulate in the registry.
  void SetTelemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

 private:
  // Per-request span state; allocated only while telemetry is enabled so the
  // default path copies a null pointer around. shared_ptr because Ctx flows
  // through std::function callbacks, which require copyable captures.
  struct RequestTrace {
    SpanId root = 0;        // 0 when only metrics are enabled
    SimTime arrival = 0.0;
    std::string stage;      // coordinator stage label at arrival
    double queue_s = 0.0;
    double cpu_s = 0.0;
    double db_s = 0.0;
    double disk_s = 0.0;
    double net_s = 0.0;
  };

  struct Ctx {
    HttpRequest request;
    bool is_mfc;
    ResponseTransport transport;
    size_t log_index;  // entry to fill in with status/bytes
    std::shared_ptr<RequestTrace> trace;  // null when telemetry is off
  };

  // Emits a child span [t0, Now()] of the request's root and charges the
  // elapsed time to the request's |bucket| total. No-op when untraced.
  void Charge(const Ctx& ctx, const char* name, SimTime t0, double RequestTrace::* bucket);
  // Closes the root span and flushes per-stage totals into the registry.
  void FinishRequestTrace(const RequestTrace& trace, HttpStatus status, double body_bytes);

  void Enqueue(Ctx ctx);
  void Process(Ctx ctx);
  void Dispatch(Ctx ctx);
  void ServeStatic(Ctx ctx, const WebObject& object);
  void ServeDynamic(Ctx ctx, const WebObject& object);
  void RunCgi(Ctx ctx, const WebObject& object);
  void Send(Ctx ctx, HttpStatus status, double body_bytes);
  void ReleaseThread();
  void ReleaseCgiSlot();

  EventLoop& loop_;
  WebServerConfig config_;
  const ContentStore* content_;
  CpuResource cpu_;
  std::unique_ptr<CpuResource> db_cpu_;  // non-null when the DB tier is separate
  DiskResource disk_;
  MemoryModel memory_;
  Database db_;
  LruByteCache page_cache_;

  Telemetry* telemetry_ = nullptr;
  size_t active_threads_ = 0;
  std::deque<Ctx> accept_queue_;
  size_t active_cgi_ = 0;
  std::deque<std::function<void()>> cgi_wait_;  // Mongrel admission queue
  uint64_t rejected_ = 0;
  std::vector<AccessLogEntry> access_log_;
};

}  // namespace mfc

#endif  // MFC_SRC_SERVER_WEB_SERVER_H_
