#include "src/server/synthetic_server.h"

#include <cmath>
#include <utility>

namespace mfc {

ResponseTimeModel LinearModel(SimDuration per_request) {
  return [per_request](size_t concurrent) {
    return per_request * static_cast<double>(concurrent);
  };
}

ResponseTimeModel ExponentialModel(SimDuration scale, double growth, size_t knee) {
  return [scale, growth, knee](size_t concurrent) {
    return scale * (std::exp(growth * static_cast<double>(concurrent) /
                             static_cast<double>(knee)) -
                    1.0);
  };
}

ResponseTimeModel StepModel(size_t threshold, SimDuration low, SimDuration high) {
  return [threshold, low, high](size_t concurrent) {
    return concurrent < threshold ? low : high;
  };
}

ResponseTimeModel ConstantModel(SimDuration value) {
  return [value](size_t) { return value; };
}

SyntheticModelServer::SyntheticModelServer(EventLoop& loop, ResponseTimeModel model,
                                           SimDuration base_service, double response_bytes)
    : loop_(loop), model_(std::move(model)), base_service_(base_service),
      response_bytes_(response_bytes) {}

void SyntheticModelServer::OnRequest(const HttpRequest& request, bool is_mfc,
                                     ResponseTransport transport) {
  (void)request;
  (void)is_mfc;
  SimTime now = loop_.Now();
  arrivals_.push_back(now);

  Pending entry;
  entry.id = next_id_++;
  entry.arrival = now;
  entry.event = 0;
  entry.completion = 0.0;
  entry.transport = std::move(transport);
  pending_.push_back(std::move(entry));

  size_t concurrent = pending_.size();
  if (queue_coupled_) {
    // The whole queue slows to the new depth: push out any completion that
    // the larger queue implies (delays are non-decreasing, so completions
    // only ever move later).
    SimDuration added = model_(concurrent);
    for (Pending& p : pending_) {
      SimTime completion = p.arrival + base_service_ + added;
      if (p.event == 0 || completion > p.completion) {
        if (p.event != 0) {
          loop_.Cancel(p.event);
        }
        p.completion = completion;
        uint64_t id = p.id;
        p.event = loop_.ScheduleAt(completion, [this, id] { Complete(id); });
      }
    }
  } else {
    Pending& p = pending_.back();
    p.completion = now + base_service_ + model_(concurrent);
    uint64_t id = p.id;
    p.event = loop_.ScheduleAt(p.completion, [this, id] { Complete(id); });
  }
}

void SyntheticModelServer::Complete(uint64_t id) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->id == id) {
      ResponseTransport transport = std::move(it->transport);
      pending_.erase(it);
      transport(HttpStatus::kOk, response_bytes_, [] {});
      return;
    }
  }
}

}  // namespace mfc
