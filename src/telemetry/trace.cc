#include "src/telemetry/trace.h"

#include <cstdio>

namespace mfc {
namespace {

std::string FormatDouble(double v) {
  char buf[40];
  snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

SpanId Tracer::StartSpan(std::string name, std::string category, SpanId parent, SimTime at) {
  TraceSpan span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = std::move(name);
  span.category = std::move(category);
  span.start = at;
  span.end = at;
  span.track = (parent != 0 && parent <= spans_.size()) ? spans_[parent - 1].track : span.id;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(SpanId id, SimTime at) {
  if (id == 0 || id > spans_.size()) {
    return;
  }
  TraceSpan& span = spans_[id - 1];
  span.end = at;
  span.open = false;
}

void Tracer::Attr(SpanId id, std::string key, std::string value) {
  if (id == 0 || id > spans_.size()) {
    return;
  }
  spans_[id - 1].attrs.emplace_back(std::move(key), std::move(value));
}

void Tracer::Attr(SpanId id, std::string key, double value) {
  Attr(id, std::move(key), FormatDouble(value));
}

void Tracer::Attr(SpanId id, std::string key, uint64_t value) {
  Attr(id, std::move(key), std::to_string(value));
}

void Tracer::MergeFrom(const Tracer& other, uint64_t pid) {
  SpanId offset = next_id_ - 1;
  spans_.reserve(spans_.size() + other.spans_.size());
  for (const TraceSpan& span : other.spans_) {
    TraceSpan copy = span;
    copy.id += offset;
    if (copy.parent != 0) {
      copy.parent += offset;
    }
    copy.track += offset;
    copy.pid = pid;
    spans_.push_back(std::move(copy));
  }
  next_id_ += other.spans_.size();
}

void Tracer::RestoreSpan(TraceSpan span) {
  spans_.push_back(std::move(span));
  next_id_ = spans_.size() + 1;
}

std::vector<const TraceSpan*> Tracer::Named(const std::string& name) const {
  std::vector<const TraceSpan*> out;
  for (const TraceSpan& span : spans_) {
    if (span.name == name) {
      out.push_back(&span);
    }
  }
  return out;
}

}  // namespace mfc
