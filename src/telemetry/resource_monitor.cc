#include "src/telemetry/resource_monitor.h"

#include <cassert>
#include <utility>

namespace mfc {

void ResourceMonitor::AddGauge(const std::string& name, Gauge gauge) {
  gauges_.emplace(name, std::move(gauge));
  series_.emplace(name, TimeSeries(name));
}

void ResourceMonitor::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  SampleOnce();
}

void ResourceMonitor::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (pending_event_ != 0) {
    loop_.Cancel(pending_event_);
    pending_event_ = 0;
  }
}

const TimeSeries& ResourceMonitor::Series(const std::string& name) const {
  auto it = series_.find(name);
  assert(it != series_.end() && "unknown gauge");
  return it->second;
}

void ResourceMonitor::SampleOnce() {
  // The event that delivered us has fired; forget its id before running the
  // gauges so a Stop() from inside a gauge callback sees no pending event
  // and — because the re-arm below checks running_ — actually halts the
  // sampler instead of leaving a live event behind a stopped monitor.
  pending_event_ = 0;
  for (auto& [name, gauge] : gauges_) {
    series_.at(name).Record(loop_.Now(), gauge());
  }
  if (running_) {
    pending_event_ = loop_.ScheduleAfter(period_, [this] { SampleOnce(); });
  }
}

}  // namespace mfc
