#include "src/telemetry/arrival_log.h"

#include <algorithm>
#include <cmath>

namespace mfc {

ArrivalSpread AnalyzeArrivals(std::span<const SimTime> arrivals) {
  ArrivalSpread out;
  out.count = arrivals.size();
  if (arrivals.size() < 2) {
    return out;
  }
  std::vector<SimTime> sorted(arrivals.begin(), arrivals.end());
  std::sort(sorted.begin(), sorted.end());
  out.full_spread = sorted.back() - sorted.front();
  // Middle 90%: drop 5% from each tail (at least one element stays).
  size_t n = sorted.size();
  size_t drop = static_cast<size_t>(std::floor(static_cast<double>(n) * 0.05));
  size_t lo = drop;
  size_t hi = n - 1 - drop;
  if (hi > lo) {
    out.middle90_spread = sorted[hi] - sorted[lo];
  }
  return out;
}

double MaxFractionWithinWindow(std::span<const SimTime> arrivals, SimDuration window) {
  if (arrivals.empty()) {
    return 0.0;
  }
  std::vector<SimTime> sorted(arrivals.begin(), arrivals.end());
  std::sort(sorted.begin(), sorted.end());
  size_t best = 1;
  size_t lo = 0;
  for (size_t hi = 0; hi < sorted.size(); ++hi) {
    while (sorted[hi] - sorted[lo] > window) {
      ++lo;
    }
    best = std::max(best, hi - lo + 1);
  }
  return static_cast<double>(best) / static_cast<double>(sorted.size());
}

}  // namespace mfc
