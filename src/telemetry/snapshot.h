// Runtime health snapshots: the typed record a running survey, experiment,
// or live fleet periodically captures about itself, plus the fixed-size ring
// that retains the most recent ones.
//
// A snapshot is pure data — capturing one never blocks the work being
// observed. Survey snapshots are built from atomics the workers already
// maintain (wall-clock sampler thread); simulation snapshots are built on the
// sim thread at simulated-time cadence (the sampler's events only read state,
// so a run with sampling on computes byte-identical results); live-fleet
// snapshots fold the coordinator's per-agent health table. Serialization to
// the JSONL stats stream lives in stats_stream.h.
#ifndef MFC_SRC_TELEMETRY_SNAPSHOT_H_
#define MFC_SRC_TELEMETRY_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mfc {

// One ParallelRunner worker's instantaneous state (see ParallelProgress).
struct WorkerSnapshot {
  size_t worker = 0;
  bool busy = false;
  // Index of the task the worker currently holds; meaningful only when busy.
  uint64_t current_index = 0;
  uint64_t tasks_done = 0;
};

// Progress of one survey cohort run across the worker pool.
struct SurveyProgressSnapshot {
  std::string label;            // cohort name (or the caller's run label)
  uint64_t done = 0;            // sites completed (replayed + executed)
  uint64_t total = 0;
  double sites_per_sec = 0.0;   // completion rate since the run started
  double eta_seconds = -1.0;    // -1 = unknown (no completions yet)
  // Sites durably journaled; -1 when the run carries no journal. The lag
  // (done - journaled) counts sites finished in memory but not yet fsynced —
  // expected 0 or tiny, since workers append before reporting completion.
  int64_t journaled = -1;
  std::vector<WorkerSnapshot> workers;
};

// Health of one simulation world, sampled on its own thread.
struct SimHealthSnapshot {
  uint64_t event_loop_depth = 0;    // EventLoop::PendingCount()
  uint64_t events_executed = 0;     // EventLoop::ExecutedCount()
  uint64_t flows_active = 0;        // FlowNetwork::ActiveFlowCount()
  uint64_t reallocs = 0;            // FlowNetworkStats::reallocs
  uint64_t links_touched = 0;       // FlowNetworkStats::links_touched
  uint64_t no_progress = 0;         // FlowNetworkStats::no_progress (expect 0)
};

// One live agent's row in the coordinator's health table.
struct AgentHealthSnapshot {
  uint64_t agent_id = 0;
  double last_seen_age = -1.0;   // seconds since any datagram; -1 = never heard
  uint64_t miss_streak = 0;      // consecutive unanswered probe rounds
  double rtt_ewma = -1.0;        // control-plane RTT EWMA, seconds; -1 unknown
  double loss_estimate = 0.0;    // 1 - pongs/pings over the probe history
  bool healthy = true;           // coordinator's current verdict
  // Piggybacked agent-side STATS payload (zeros until the first report).
  uint64_t inflight = 0;         // fetches currently open on the agent
  uint64_t fetch_errors = 0;     // timeouts + failed connects, cumulative
  uint64_t dedup_hits = 0;       // duplicate commands discarded
  uint64_t fault_drops = 0;      // datagrams the agent's injector dropped
  uint64_t requests_fired = 0;   // HTTP requests launched, cumulative
};

// A point-in-time health record. Sections are optional: a survey snapshot
// carries |survey|, a simulation snapshot carries |sim|, a live-fleet
// snapshot carries |agents| — all stamped by the same stream.
struct StatsSnapshot {
  double t = 0.0;          // seconds since the stream/run started
  uint64_t seq = 0;        // assigned by StatsStream::Emit, monotone per stream
  std::string clock = "wall";   // "wall" | "sim"
  std::string source;           // "survey" | "experiment" | "live"

  bool has_survey = false;
  SurveyProgressSnapshot survey;

  bool has_sim = false;
  SimHealthSnapshot sim;

  std::vector<AgentHealthSnapshot> agents;

  // Named counter deltas since the previous snapshot of this stream (from a
  // MetricsRegistry the sampling thread may legally read). Insertion order.
  std::vector<std::pair<std::string, double>> counter_deltas;
};

// Fixed-capacity retention ring: Push overwrites the oldest snapshot once
// full, so a week-long run holds a bounded window of recent history for the
// final report and for tests.
class SnapshotRing {
 public:
  explicit SnapshotRing(size_t capacity);

  void Push(StatsSnapshot snapshot);

  size_t Capacity() const { return capacity_; }
  size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }
  // Snapshots pushed over the ring's lifetime, including overwritten ones.
  uint64_t TotalPushed() const { return pushed_; }

  // i = 0 is the oldest retained snapshot, i = Size() - 1 the newest.
  const StatsSnapshot& At(size_t i) const;
  const StatsSnapshot* Latest() const;

 private:
  size_t capacity_;
  size_t size_ = 0;
  size_t head_ = 0;  // slot the next Push writes
  uint64_t pushed_ = 0;
  std::vector<StatsSnapshot> slots_;
};

}  // namespace mfc

#endif  // MFC_SRC_TELEMETRY_SNAPSHOT_H_
