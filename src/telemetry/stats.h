// Order statistics and summary statistics used by the coordinator's decision
// rule (median / 90th percentile of normalized response times) and by the
// benchmark reports.
#ifndef MFC_SRC_TELEMETRY_STATS_H_
#define MFC_SRC_TELEMETRY_STATS_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mfc {

// Percentile in [0, 100] with linear interpolation between order statistics.
// Copies the input (callers keep their samples). Empty input returns 0.
double Percentile(std::span<const double> values, double pct);

double Median(std::span<const double> values);

double Mean(std::span<const double> values);

// Sample standard deviation (n-1 denominator). Returns 0 for n < 2.
double StdDev(std::span<const double> values);

double Min(std::span<const double> values);
double Max(std::span<const double> values);

// Fraction of values strictly greater than |threshold|. Empty input: 0.
double FractionAbove(std::span<const double> values, double threshold);

// Incremental accumulator for streaming summaries (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);
  // Parallel-safe Welford combine (Chan et al.): after a.Merge(b), |a| holds
  // the same count/mean/variance/min/max as a single pass over both inputs.
  // Used to fold per-job summaries from a parallel survey into one.
  void Merge(const RunningStats& other);
  size_t Count() const { return count_; }
  double Mean() const { return mean_; }
  double Variance() const;  // sample variance, 0 for n < 2
  double StdDev() const;
  double MinValue() const { return min_; }
  double MaxValue() const { return max_; }
  // Raw Welford second moment — with Count/Mean/Min/Max this is the full
  // accumulator state, so journals can round-trip a summary exactly.
  double M2() const { return m2_; }

  // Rebuilds an accumulator from serialized state (journal replay).
  static RunningStats FromParts(size_t count, double mean, double m2, double min, double max) {
    RunningStats s;
    s.count_ = count;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

  bool operator==(const RunningStats&) const = default;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bucket histogram for building the paper's stopping-crowd-size
// breakdowns (Figs 7-9, Tables 4-5).
class Histogram {
 public:
  // Buckets are (edges[i-1], edges[i]]; values at or below the first edge or
  // above the last edge land in saturating end buckets.
  explicit Histogram(std::vector<double> edges);

  void Add(double x);
  // Adds |other|'s per-bucket counts; both histograms must have identical
  // edges (asserted). The combine is exact, so merged parallel shards equal
  // a single-pass histogram.
  void Merge(const Histogram& other);
  size_t BucketCount() const { return counts_.size(); }
  size_t BucketValue(size_t i) const { return counts_[i]; }
  size_t Total() const { return total_; }
  const std::vector<double>& Edges() const { return edges_; }

  // Rebuilds a histogram from serialized state (journal replay). |counts|
  // must have edges.size() + 1 entries; the total is recomputed.
  static Histogram FromParts(std::vector<double> edges, std::vector<size_t> counts) {
    Histogram h(std::move(edges));
    h.total_ = 0;
    for (size_t c : counts) {
      h.total_ += c;
    }
    h.counts_ = std::move(counts);
    return h;
  }

  bool operator==(const Histogram&) const = default;
  // Fraction of all samples in bucket i. 0 if empty.
  double BucketFraction(size_t i) const;
  // Human-readable label like "[10, 20)".
  std::string BucketLabel(size_t i) const;

 private:
  std::vector<double> edges_;
  std::vector<size_t> counts_;  // edges_.size() + 1 buckets (underflow .. overflow)
  size_t total_ = 0;
};

}  // namespace mfc

#endif  // MFC_SRC_TELEMETRY_STATS_H_
