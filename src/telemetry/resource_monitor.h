// atop/sysstat-style periodic sampler for the simulated server.
//
// The paper's lab validation (Section 3.2) monitors CPU, resident memory,
// disk access and network usage with atop while the MFC runs. ResourceMonitor
// reproduces that: register named gauges (functions returning the current
// value) and it samples them on a fixed period through the event loop.
#ifndef MFC_SRC_TELEMETRY_RESOURCE_MONITOR_H_
#define MFC_SRC_TELEMETRY_RESOURCE_MONITOR_H_

#include <functional>
#include <map>
#include <string>

#include "src/sim/event_loop.h"
#include "src/telemetry/time_series.h"

namespace mfc {

class ResourceMonitor {
 public:
  using Gauge = std::function<double()>;

  ResourceMonitor(EventLoop& loop, SimDuration period) : loop_(loop), period_(period) {}
  ~ResourceMonitor() { Stop(); }
  ResourceMonitor(const ResourceMonitor&) = delete;
  ResourceMonitor& operator=(const ResourceMonitor&) = delete;

  // Registers a gauge; must be called before Start().
  void AddGauge(const std::string& name, Gauge gauge);

  // Start/Stop may be paired repeatedly: a restarted monitor samples
  // immediately and appends to the existing series.
  void Start();
  void Stop();
  bool Running() const { return running_; }

  // Series for a gauge; asserts the name exists.
  const TimeSeries& Series(const std::string& name) const;

  const std::map<std::string, TimeSeries>& AllSeries() const { return series_; }

 private:
  void SampleOnce();

  EventLoop& loop_;
  SimDuration period_;
  bool running_ = false;
  EventId pending_event_ = 0;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, TimeSeries> series_;
};

}  // namespace mfc

#endif  // MFC_SRC_TELEMETRY_RESOURCE_MONITOR_H_
