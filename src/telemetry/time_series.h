// Timestamped sample series recorded during experiments (utilization traces,
// response-time-vs-crowd-size curves). Deliberately simple: append-only,
// queried after the run.
#ifndef MFC_SRC_TELEMETRY_TIME_SERIES_H_
#define MFC_SRC_TELEMETRY_TIME_SERIES_H_

#include <span>
#include <string>
#include <vector>

#include "src/sim/sim_time.h"

namespace mfc {

class TimeSeries {
 public:
  struct Point {
    SimTime time;
    double value;
  };

  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void Record(SimTime t, double value) { points_.push_back(Point{t, value}); }

  const std::string& Name() const { return name_; }
  std::span<const Point> Points() const { return points_; }
  bool Empty() const { return points_.empty(); }
  size_t Size() const { return points_.size(); }

  // Values only, for feeding the stats helpers.
  std::vector<double> Values() const;

  // Maximum value in the window [t0, t1]; 0 if no points fall inside.
  double MaxInWindow(SimTime t0, SimTime t1) const;

  // Mean value in the window [t0, t1]; 0 if no points fall inside.
  double MeanInWindow(SimTime t0, SimTime t1) const;

  // Last recorded value, or |fallback| when empty.
  double Last(double fallback = 0.0) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

}  // namespace mfc

#endif  // MFC_SRC_TELEMETRY_TIME_SERIES_H_
