// Span-based tracer for the simulated MFC service, stamped with simulated
// time.
//
// Two span families exist (Section 3.2's resource-attribution methodology,
// see DESIGN.md "Telemetry & tracing"):
//   - server request-lifecycle spans: one root "request" span per HTTP
//     request with children "queue" / "cpu" / "db" / "disk" / "net", so a
//     response time decomposes into where the request actually waited;
//   - coordinator spans: "experiment" > "stage" > "prepare" / "epoch" /
//     "check_phase" / "stop_decision", with the decision metric attached as
//     attributes.
//
// The tracer is passive: call sites pass explicit SimTime stamps, nothing is
// scheduled on the event loop, and a null tracer costs one pointer test — so
// tracing off is bit-identical to the pre-telemetry code path. Each
// simulation world owns its own Tracer (no cross-thread sharing); per-job
// tracers from a parallel survey combine with MergeFrom() in index order,
// which keeps the merged trace independent of the jobs count.
#ifndef MFC_SRC_TELEMETRY_TRACE_H_
#define MFC_SRC_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/sim_time.h"

namespace mfc {

class MetricsRegistry;

using SpanId = uint64_t;  // 0 = no span / no parent

struct TraceSpan {
  SpanId id = 0;
  SpanId parent = 0;  // 0 for roots
  std::string name;
  std::string category;  // Chrome "cat": "server" or "coord"
  SimTime start = 0.0;
  SimTime end = 0.0;
  bool open = true;
  // Chrome pid/tid. pid distinguishes merged sub-traces (survey sites);
  // tid is the root span's id so concurrent requests render on separate
  // tracks and children nest under their own root.
  uint64_t pid = 0;
  uint64_t track = 0;
  std::vector<std::pair<std::string, std::string>> attrs;

  SimDuration Duration() const { return end - start; }
};

class Tracer {
 public:
  // Opens a span at |at|. Children inherit the parent's track; roots get
  // track = id. Returns the span id for EndSpan/Attr.
  SpanId StartSpan(std::string name, std::string category, SpanId parent, SimTime at);

  void EndSpan(SpanId id, SimTime at);

  void Attr(SpanId id, std::string key, std::string value);
  void Attr(SpanId id, std::string key, double value);
  void Attr(SpanId id, std::string key, uint64_t value);

  const std::vector<TraceSpan>& Spans() const { return spans_; }
  size_t SpanCount() const { return spans_.size(); }

  // Appends |other|'s spans under process id |pid|, remapping span ids past
  // our own so merged traces stay internally consistent. Merging per-site
  // tracers in index order yields the same bytes for any jobs count.
  void MergeFrom(const Tracer& other, uint64_t pid);

  // Spans with matching |name| (tests / structural golden files).
  std::vector<const TraceSpan*> Named(const std::string& name) const;

  // Journal-replay restore: appends |span| verbatim. Spans must be restored
  // in id order (1..n) so the id-to-index invariant holds; next_id_ advances
  // past every restored span.
  void RestoreSpan(TraceSpan span);

 private:
  SpanId next_id_ = 1;
  std::vector<TraceSpan> spans_;  // indexed by id - 1
};

// Shared wiring handed to every instrumented component of one simulation
// world. Either pointer may be null: tracer off still lets metrics
// accumulate and vice versa. |stage| is the coordinator's current MFC stage
// label; the server stamps it onto request spans and per-stage metric names
// (everything in one world runs on one thread, so a plain string is safe).
struct Telemetry {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  std::string stage = "idle";
  // When set, the coordinator emits live per-epoch progress lines on stderr.
  bool progress = false;

  bool Enabled() const { return tracer != nullptr || metrics != nullptr; }
};

}  // namespace mfc

#endif  // MFC_SRC_TELEMETRY_TRACE_H_
