#include "src/telemetry/snapshot.h"

#include <cassert>

namespace mfc {

SnapshotRing::SnapshotRing(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  slots_.resize(capacity_);
}

void SnapshotRing::Push(StatsSnapshot snapshot) {
  slots_[head_] = std::move(snapshot);
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) {
    ++size_;
  }
  ++pushed_;
}

const StatsSnapshot& SnapshotRing::At(size_t i) const {
  assert(i < size_);
  // When the ring is full, head_ points at the oldest slot; before that the
  // oldest is slot 0.
  size_t oldest = size_ < capacity_ ? 0 : head_;
  return slots_[(oldest + i) % capacity_];
}

const StatsSnapshot* SnapshotRing::Latest() const {
  if (size_ == 0) {
    return nullptr;
  }
  return &slots_[(head_ + capacity_ - 1) % capacity_];
}

}  // namespace mfc
