// Streaming runtime-health plane: serializes StatsSnapshots as JSONL to a
// file (or stdout), retains recent history in a SnapshotRing, and provides
// the samplers that capture snapshots at a fixed cadence — wall-clock for
// surveys (a sampler thread reading worker atomics) and simulated-time for
// single experiments (read-only events on the world's own EventLoop).
//
// Everything here is opt-in: with no stream and no progress line attached,
// the instrumented code paths cost one null test and all tool outputs stay
// byte-identical to builds without this layer (DESIGN.md §11).
#ifndef MFC_SRC_TELEMETRY_STATS_STREAM_H_
#define MFC_SRC_TELEMETRY_STATS_STREAM_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/telemetry/snapshot.h"

namespace mfc {

class MetricsRegistry;

// Shared per-worker progress cells for ParallelRunner: each worker writes
// only its own cell (relaxed atomics), so a sampler thread can read a
// consistent-enough view without ever blocking the pool. Lives here rather
// than in core so telemetry stays the lower layer.
class ParallelProgress {
 public:
  explicit ParallelProgress(size_t workers);
  ParallelProgress(const ParallelProgress&) = delete;
  ParallelProgress& operator=(const ParallelProgress&) = delete;

  size_t Workers() const { return workers_; }

  // Called by worker |w| when it claims task |index| / finishes it.
  void OnClaim(size_t w, size_t index);
  void OnDone(size_t w);

  // Sampled from any thread.
  size_t BusyWorkers() const;
  std::vector<WorkerSnapshot> Snapshot() const;

 private:
  static constexpr uint64_t kIdle = ~uint64_t{0};
  struct Cell {
    std::atomic<uint64_t> current{kIdle};
    std::atomic<uint64_t> done{0};
  };
  size_t workers_;
  std::unique_ptr<Cell[]> cells_;
};

// Tracks a MetricsRegistry's counters across snapshots and reports the
// per-interval deltas. Must only be fed from a thread allowed to read the
// registry (the registry owner's thread).
class MetricsDeltaTracker {
 public:
  void Collect(const MetricsRegistry& metrics,
               std::vector<std::pair<std::string, double>>* out);

 private:
  std::map<std::string, double> last_;
};

// Append-only JSONL sink for snapshots. Thread-safe: Emit may be called from
// a sampler thread while the owner later reads History().
class StatsStream {
 public:
  // |path| "-" writes to stdout. Returns null (with |error| set) when the
  // file cannot be created. |retain| bounds the in-memory history ring.
  static std::unique_ptr<StatsStream> Open(const std::string& path, std::string* error,
                                           size_t retain = 256);
  ~StatsStream();
  StatsStream(const StatsStream&) = delete;
  StatsStream& operator=(const StatsStream&) = delete;

  // Stamps |snapshot|.seq, appends one JSON line, and retains the snapshot.
  void Emit(StatsSnapshot snapshot);

  bool Flush();
  const std::string& Path() const { return path_; }

  // History must not race Emit; read it after the samplers stopped.
  const SnapshotRing& History() const { return ring_; }
  uint64_t Emitted() const { return emitted_.load(std::memory_order_relaxed); }

  // One snapshot as a single JSON object line (no trailing newline).
  static std::string ToJsonLine(const StatsSnapshot& snapshot);

 private:
  StatsStream(FILE* file, bool owned, std::string path, size_t retain);

  std::mutex mu_;
  FILE* file_;
  bool owned_;
  std::string path_;
  uint64_t next_seq_ = 0;
  std::atomic<uint64_t> emitted_{0};
  SnapshotRing ring_;
};

// Rate-limited single-line progress report on stderr: the replacement for
// per-site print spam. Silent unless stderr is a terminal (so logs, tests
// and pipelines stay clean) or |force| is set.
class ProgressLine {
 public:
  explicit ProgressLine(double min_interval_seconds = 1.0, bool force = false);

  bool Enabled() const { return enabled_; }

  // Throttled: prints at most once per interval. On a terminal the line
  // redraws in place; when forced onto a pipe each report is its own line.
  void Report(const SurveyProgressSnapshot& progress);
  // Always prints (when enabled) and terminates the in-place line.
  void Finish(const SurveyProgressSnapshot& progress);

 private:
  void Print(const SurveyProgressSnapshot& progress, bool final);

  double min_interval_;
  bool enabled_;
  bool tty_;
  bool printed_ = false;
  std::chrono::steady_clock::time_point last_{};
};

// Everything a survey sampler reads; all pointers are optional except
// |processed| and outlive the sampler's Start()..Stop() window.
struct SurveySamplerSource {
  std::string label;                                  // cohort name
  const std::atomic<size_t>* processed = nullptr;     // sites completed
  size_t total = 0;
  // Durable-site counters from the journal (executed + resumed); null when
  // the run is unjournaled.
  const std::atomic<size_t>* journal_executed = nullptr;
  const std::atomic<size_t>* journal_resumed = nullptr;
  const ParallelProgress* workers = nullptr;
};

// Builds one survey snapshot from the source; |elapsed| is seconds since the
// run started (drives sites/sec and the ETA).
SurveyProgressSnapshot BuildSurveyProgress(const SurveySamplerSource& source, double elapsed);

// Wall-clock sampler thread for a parallel survey: every |interval| seconds
// it captures a SurveyProgressSnapshot, emits it to |stream| (if any), and
// feeds |line| (if any). Stop() joins the thread and emits a final snapshot,
// so a completed run always ends its feed with done == total.
class SurveyStatsSampler {
 public:
  // Null |stream| and |line| are allowed (the sampler then never starts).
  SurveyStatsSampler(StatsStream* stream, ProgressLine* line, double interval_seconds,
                     SurveySamplerSource source);
  ~SurveyStatsSampler();

  void Start();
  void Stop();

 private:
  void EmitOnce(double elapsed, bool final);

  StatsStream* stream_;
  ProgressLine* line_;
  double interval_;
  SurveySamplerSource source_;
  std::chrono::steady_clock::time_point start_{};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
};

// Simulated-time sampler for one simulation world: schedules a read-only
// event every |interval| simulated seconds that probes the world (EventLoop
// depth, flow-network stats via |probe|) and counter deltas from |metrics|
// (optional), then emits to |stream|. The events never mutate simulation
// state or draw randomness, so results with sampling on are identical to
// sampling off; Stop() cancels the pending event and emits a final snapshot.
class SimStatsSampler {
 public:
  SimStatsSampler(EventLoop& loop, StatsStream& stream, double interval_sim_seconds,
                  std::function<SimHealthSnapshot()> probe,
                  const MetricsRegistry* metrics = nullptr);
  ~SimStatsSampler();

  void Start();
  void Stop();

 private:
  void Tick();
  void EmitOnce();

  EventLoop& loop_;
  StatsStream& stream_;
  double interval_;
  std::function<SimHealthSnapshot()> probe_;
  const MetricsRegistry* metrics_;
  MetricsDeltaTracker deltas_;
  EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace mfc

#endif  // MFC_SRC_TELEMETRY_STATS_STREAM_H_
