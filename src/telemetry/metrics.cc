#include "src/telemetry/metrics.h"

#include <algorithm>

namespace mfc {

void MetricsRegistry::Add(const std::string& name, double delta) { counters_[name] += delta; }

void MetricsRegistry::Set(const std::string& name, double value) { gauges_[name] = value; }

void MetricsRegistry::Observe(const std::string& name, double x) { summaries_[name].Add(x); }

void MetricsRegistry::HistObserve(const std::string& name, const std::vector<double>& edges,
                                  double x) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(name, Histogram(edges)).first;
  }
  it->second.Add(x);
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauges_[name] = value;
    } else {
      it->second = std::max(it->second, value);
    }
  }
  for (const auto& [name, stats] : other.summaries_) {
    summaries_[name].Merge(stats);
  }
  for (const auto& [name, hist] : other.hists_) {
    auto it = hists_.find(name);
    if (it == hists_.end()) {
      hists_.emplace(name, hist);
    } else {
      it->second.Merge(hist);
    }
  }
}

void MetricsRegistry::RestoreSummary(const std::string& name, RunningStats stats) {
  summaries_.insert_or_assign(name, std::move(stats));
}

void MetricsRegistry::RestoreHist(const std::string& name, Histogram hist) {
  hists_.insert_or_assign(name, std::move(hist));
}

double MetricsRegistry::Counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::Gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const RunningStats* MetricsRegistry::Summary(const std::string& name) const {
  auto it = summaries_.find(name);
  return it == summaries_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::Hist(const std::string& name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

bool MetricsRegistry::operator==(const MetricsRegistry& other) const {
  return counters_ == other.counters_ && gauges_ == other.gauges_ &&
         summaries_ == other.summaries_ && hists_ == other.hists_;
}

const std::vector<double>& LatencyBucketEdgesMs() {
  static const std::vector<double> kEdges = {1,   2,   5,    10,   25,   50,  100,
                                             250, 500, 1000, 2500, 5000, 10000};
  return kEdges;
}

}  // namespace mfc
