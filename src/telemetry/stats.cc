#include "src/telemetry/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace mfc {

double Percentile(std::span<const double> values, double pct) {
  if (values.empty()) {
    return 0.0;
  }
  // This sits on the coordinator's per-epoch decision path, so avoid a full
  // O(n log n) sort: select just the two order statistics the interpolation
  // needs. nth_element partitions, so after selecting the lower neighbor the
  // upper neighbor is the minimum of the right partition.
  std::vector<double> scratch(values.begin(), values.end());
  if (pct <= 0.0) {
    return *std::min_element(scratch.begin(), scratch.end());
  }
  if (pct >= 100.0) {
    return *std::max_element(scratch.begin(), scratch.end());
  }
  double rank = pct / 100.0 * static_cast<double>(scratch.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  auto lo_it = scratch.begin() + static_cast<ptrdiff_t>(lo);
  std::nth_element(scratch.begin(), lo_it, scratch.end());
  if (lo + 1 >= scratch.size() || frac == 0.0) {
    return *lo_it;
  }
  double hi_value = *std::min_element(lo_it + 1, scratch.end());
  return *lo_it * (1.0 - frac) + hi_value * frac;
}

double Median(std::span<const double> values) { return Percentile(values, 50.0); }

double Mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double StdDev(std::span<const double> values) {
  if (values.size() < 2) {
    return 0.0;
  }
  double mean = Mean(values);
  double sq = 0.0;
  for (double v : values) {
    sq += (v - mean) * (v - mean);
  }
  return std::sqrt(sq / static_cast<double>(values.size() - 1));
}

double Min(std::span<const double> values) {
  return values.empty() ? 0.0 : *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  return values.empty() ? 0.0 : *std::max_element(values.begin(), values.end());
}

double FractionAbove(std::span<const double> values, double threshold) {
  if (values.empty()) {
    return 0.0;
  }
  size_t n = 0;
  for (double v : values) {
    if (v > threshold) {
      ++n;
    }
  }
  return static_cast<double>(n) / static_cast<double>(values.size());
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  std::sort(edges_.begin(), edges_.end());
  counts_.assign(edges_.size() + 1, 0);
}

void Histogram::Add(double x) {
  // Buckets are (edges[i-1], edges[i]]: lower_bound finds the first edge >= x.
  auto it = std::lower_bound(edges_.begin(), edges_.end(), x);
  counts_[static_cast<size_t>(it - edges_.begin())]++;
  ++total_;
}

void Histogram::Merge(const Histogram& other) {
  assert(edges_ == other.edges_ && "histogram merge requires identical bucket edges");
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double Histogram::BucketFraction(size_t i) const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

std::string Histogram::BucketLabel(size_t i) const {
  auto fmt = [](double v) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%g", v);
    return std::string(buf);
  };
  if (i == 0) {
    return "(-inf, " + fmt(edges_.front()) + "]";
  }
  if (i == counts_.size() - 1) {
    return "(" + fmt(edges_.back()) + ", +inf)";
  }
  return "(" + fmt(edges_[i - 1]) + ", " + fmt(edges_[i]) + "]";
}

}  // namespace mfc
