// Request-arrival analysis mirroring the paper's server-log studies.
//
// Figure 3 plots per-request arrival times for one crowd and reports the
// fraction of requests arriving within a window of each other; Table 2
// reports, per epoch, how many scheduled requests appeared in the server log
// and the time spread of the middle 90% of them.
#ifndef MFC_SRC_TELEMETRY_ARRIVAL_LOG_H_
#define MFC_SRC_TELEMETRY_ARRIVAL_LOG_H_

#include <span>
#include <vector>

#include "src/sim/sim_time.h"

namespace mfc {

struct ArrivalSpread {
  size_t count = 0;           // requests observed
  SimDuration full_spread = 0;    // last arrival - first arrival
  SimDuration middle90_spread = 0;  // spread of the middle 90% (Table 2 metric)
};

// Computes spread statistics over a set of arrival timestamps.
ArrivalSpread AnalyzeArrivals(std::span<const SimTime> arrivals);

// Largest fraction of arrivals that fit inside any window of width |window|
// (Fig 3: "70% of the requests arrive within 5ms of each other").
double MaxFractionWithinWindow(std::span<const SimTime> arrivals, SimDuration window);

}  // namespace mfc

#endif  // MFC_SRC_TELEMETRY_ARRIVAL_LOG_H_
