#include "src/telemetry/time_series.h"

#include <algorithm>

namespace mfc {

std::vector<double> TimeSeries::Values() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const Point& p : points_) {
    out.push_back(p.value);
  }
  return out;
}

double TimeSeries::MaxInWindow(SimTime t0, SimTime t1) const {
  double best = 0.0;
  bool any = false;
  for (const Point& p : points_) {
    if (p.time >= t0 && p.time <= t1) {
      best = any ? std::max(best, p.value) : p.value;
      any = true;
    }
  }
  return any ? best : 0.0;
}

double TimeSeries::MeanInWindow(SimTime t0, SimTime t1) const {
  double sum = 0.0;
  size_t n = 0;
  for (const Point& p : points_) {
    if (p.time >= t0 && p.time <= t1) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double TimeSeries::Last(double fallback) const {
  return points_.empty() ? fallback : points_.back().value;
}

}  // namespace mfc
