// Merge-safe metrics registry: named counters, gauges, fixed-bucket latency
// histograms, and Welford summaries.
//
// Each simulation world (one ParallelRunner task, one Deployment) owns its
// own registry; nothing is shared across threads. Cross-job aggregation is a
// deterministic fold: Merge() combines two registries field-by-field —
// counters add, gauges keep the maximum, histograms add per-bucket counts
// (bucket edges must match), summaries combine with the parallel Welford
// rule — and every container is an ordered map, so merging per-job
// registries in index order produces the same bytes regardless of --jobs.
#ifndef MFC_SRC_TELEMETRY_METRICS_H_
#define MFC_SRC_TELEMETRY_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "src/telemetry/stats.h"

namespace mfc {

class MetricsRegistry {
 public:
  // Counter: monotone accumulator (counts or summed seconds).
  void Add(const std::string& name, double delta = 1.0);
  // Gauge: last observed level; Merge keeps the maximum, so a merged survey
  // gauge reads "worst seen by any job".
  void Set(const std::string& name, double value);
  // Summary: streaming mean/stddev/min/max via RunningStats.
  void Observe(const std::string& name, double x);
  // Histogram observation; the histogram is created with |edges| on first
  // use. Passing different edges for the same name later is a programming
  // error (the first edges win).
  void HistObserve(const std::string& name, const std::vector<double>& edges, double x);

  // Deterministic pairwise combine (see file comment for per-kind rules).
  void Merge(const MetricsRegistry& other);

  // Journal-replay restore: install a fully built summary / histogram under
  // |name|, replacing any existing entry.
  void RestoreSummary(const std::string& name, RunningStats stats);
  void RestoreHist(const std::string& name, Histogram hist);

  double Counter(const std::string& name) const;  // 0 if absent
  double Gauge(const std::string& name) const;    // 0 if absent
  const RunningStats* Summary(const std::string& name) const;  // null if absent
  const Histogram* Hist(const std::string& name) const;        // null if absent

  const std::map<std::string, double>& Counters() const { return counters_; }
  const std::map<std::string, double>& Gauges() const { return gauges_; }
  const std::map<std::string, RunningStats>& Summaries() const { return summaries_; }
  const std::map<std::string, Histogram>& Histograms() const { return hists_; }

  bool Empty() const {
    return counters_.empty() && gauges_.empty() && summaries_.empty() && hists_.empty();
  }

  bool operator==(const MetricsRegistry& other) const;

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, RunningStats> summaries_;
  std::map<std::string, Histogram> hists_;
};

// The fixed latency buckets (milliseconds) every per-request histogram uses,
// chosen to straddle the paper's θ values (100 ms / 250 ms).
const std::vector<double>& LatencyBucketEdgesMs();

}  // namespace mfc

#endif  // MFC_SRC_TELEMETRY_METRICS_H_
