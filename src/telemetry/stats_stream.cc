#include "src/telemetry/stats_stream.h"

#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "src/telemetry/metrics.h"

namespace mfc {

namespace {

// Minimal JSON string escape (labels and counter names are plain ASCII, but
// stay safe for anything a caller passes through).
std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

// JSON has no inf/nan; clamp them so the feed always parses.
std::string Num(double v) {
  if (!std::isfinite(v)) {
    v = v > 0 ? 1e308 : (v < 0 ? -1e308 : 0.0);
  }
  char buf[32];
  snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string Num(uint64_t v) { return std::to_string(v); }

void AppendWorkers(const std::vector<WorkerSnapshot>& workers, std::string* json) {
  *json += "[";
  for (size_t i = 0; i < workers.size(); ++i) {
    const WorkerSnapshot& w = workers[i];
    if (i > 0) {
      *json += ",";
    }
    *json += "{\"worker\":" + Num(static_cast<uint64_t>(w.worker)) +
             ",\"busy\":" + (w.busy ? "true" : "false");
    if (w.busy) {
      *json += ",\"current_index\":" + Num(w.current_index);
    }
    *json += ",\"tasks_done\":" + Num(w.tasks_done) + "}";
  }
  *json += "]";
}

void AppendSurvey(const SurveyProgressSnapshot& s, std::string* json) {
  *json += "\"survey\":{\"label\":\"" + Escape(s.label) + "\",\"done\":" + Num(s.done) +
           ",\"total\":" + Num(s.total) + ",\"sites_per_sec\":" + Num(s.sites_per_sec);
  if (s.eta_seconds >= 0) {
    *json += ",\"eta_seconds\":" + Num(s.eta_seconds);
  }
  if (s.journaled >= 0) {
    *json += ",\"journaled\":" + Num(static_cast<uint64_t>(s.journaled));
    uint64_t durable = static_cast<uint64_t>(s.journaled);
    *json += ",\"journal_lag\":" + Num(s.done > durable ? s.done - durable : 0);
  }
  if (!s.workers.empty()) {
    *json += ",\"workers\":";
    AppendWorkers(s.workers, json);
  }
  *json += "}";
}

void AppendSim(const SimHealthSnapshot& s, std::string* json) {
  *json += "\"sim\":{\"event_loop_depth\":" + Num(s.event_loop_depth) +
           ",\"events_executed\":" + Num(s.events_executed) +
           ",\"flows_active\":" + Num(s.flows_active) + ",\"reallocs\":" + Num(s.reallocs) +
           ",\"links_touched\":" + Num(s.links_touched) +
           ",\"no_progress\":" + Num(s.no_progress) + "}";
}

void AppendAgents(const std::vector<AgentHealthSnapshot>& agents, std::string* json) {
  *json += "\"agents\":[";
  for (size_t i = 0; i < agents.size(); ++i) {
    const AgentHealthSnapshot& a = agents[i];
    if (i > 0) {
      *json += ",";
    }
    *json += "{\"id\":" + Num(a.agent_id);
    if (a.last_seen_age >= 0) {
      *json += ",\"last_seen_age\":" + Num(a.last_seen_age);
    }
    *json += ",\"miss_streak\":" + Num(a.miss_streak);
    if (a.rtt_ewma >= 0) {
      *json += ",\"rtt_ewma\":" + Num(a.rtt_ewma);
    }
    *json += ",\"loss_estimate\":" + Num(a.loss_estimate);
    *json += std::string(",\"healthy\":") + (a.healthy ? "true" : "false");
    *json += ",\"inflight\":" + Num(a.inflight) + ",\"fetch_errors\":" + Num(a.fetch_errors) +
             ",\"dedup_hits\":" + Num(a.dedup_hits) + ",\"fault_drops\":" + Num(a.fault_drops) +
             ",\"requests_fired\":" + Num(a.requests_fired) + "}";
  }
  *json += "]";
}

}  // namespace

// --- ParallelProgress -------------------------------------------------------

ParallelProgress::ParallelProgress(size_t workers)
    : workers_(workers == 0 ? 1 : workers), cells_(new Cell[workers_]) {}

void ParallelProgress::OnClaim(size_t w, size_t index) {
  if (w >= workers_) {
    return;
  }
  cells_[w].current.store(static_cast<uint64_t>(index), std::memory_order_relaxed);
}

void ParallelProgress::OnDone(size_t w) {
  if (w >= workers_) {
    return;
  }
  cells_[w].done.fetch_add(1, std::memory_order_relaxed);
  cells_[w].current.store(kIdle, std::memory_order_relaxed);
}

size_t ParallelProgress::BusyWorkers() const {
  size_t busy = 0;
  for (size_t w = 0; w < workers_; ++w) {
    if (cells_[w].current.load(std::memory_order_relaxed) != kIdle) {
      ++busy;
    }
  }
  return busy;
}

std::vector<WorkerSnapshot> ParallelProgress::Snapshot() const {
  std::vector<WorkerSnapshot> out(workers_);
  for (size_t w = 0; w < workers_; ++w) {
    uint64_t current = cells_[w].current.load(std::memory_order_relaxed);
    out[w].worker = w;
    out[w].busy = current != kIdle;
    out[w].current_index = out[w].busy ? current : 0;
    out[w].tasks_done = cells_[w].done.load(std::memory_order_relaxed);
  }
  return out;
}

// --- MetricsDeltaTracker ----------------------------------------------------

void MetricsDeltaTracker::Collect(const MetricsRegistry& metrics,
                                  std::vector<std::pair<std::string, double>>* out) {
  for (const auto& [name, value] : metrics.Counters()) {
    double& last = last_[name];
    if (value != last) {
      out->emplace_back(name, value - last);
      last = value;
    }
  }
}

// --- StatsStream ------------------------------------------------------------

StatsStream::StatsStream(FILE* file, bool owned, std::string path, size_t retain)
    : file_(file), owned_(owned), path_(std::move(path)), ring_(retain) {}

StatsStream::~StatsStream() {
  if (file_ != nullptr) {
    fflush(file_);
    if (owned_) {
      fclose(file_);
    }
  }
}

std::unique_ptr<StatsStream> StatsStream::Open(const std::string& path, std::string* error,
                                               size_t retain) {
  if (path == "-") {
    return std::unique_ptr<StatsStream>(new StatsStream(stdout, false, path, retain));
  }
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open stats stream '" + path + "': " + strerror(errno);
    }
    return nullptr;
  }
  return std::unique_ptr<StatsStream>(new StatsStream(f, true, path, retain));
}

void StatsStream::Emit(StatsSnapshot snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.seq = next_seq_++;
  std::string line = ToJsonLine(snapshot);
  line += '\n';
  fwrite(line.data(), 1, line.size(), file_);
  fflush(file_);
  ring_.Push(std::move(snapshot));
  emitted_.fetch_add(1, std::memory_order_relaxed);
}

bool StatsStream::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return fflush(file_) == 0;
}

std::string StatsStream::ToJsonLine(const StatsSnapshot& snapshot) {
  std::string json = "{\"t\":" + Num(snapshot.t) + ",\"seq\":" + Num(snapshot.seq) +
                     ",\"clock\":\"" + Escape(snapshot.clock) + "\",\"source\":\"" +
                     Escape(snapshot.source) + "\"";
  if (snapshot.has_survey) {
    json += ",";
    AppendSurvey(snapshot.survey, &json);
  }
  if (snapshot.has_sim) {
    json += ",";
    AppendSim(snapshot.sim, &json);
  }
  if (!snapshot.agents.empty()) {
    json += ",";
    AppendAgents(snapshot.agents, &json);
  }
  if (!snapshot.counter_deltas.empty()) {
    json += ",\"deltas\":{";
    for (size_t i = 0; i < snapshot.counter_deltas.size(); ++i) {
      if (i > 0) {
        json += ",";
      }
      json += "\"" + Escape(snapshot.counter_deltas[i].first) +
              "\":" + Num(snapshot.counter_deltas[i].second);
    }
    json += "}";
  }
  json += "}";
  return json;
}

// --- ProgressLine -----------------------------------------------------------

ProgressLine::ProgressLine(double min_interval_seconds, bool force)
    : min_interval_(min_interval_seconds),
      tty_(isatty(fileno(stderr)) != 0),
      last_(std::chrono::steady_clock::now()) {
  enabled_ = tty_ || force;
}

void ProgressLine::Report(const SurveyProgressSnapshot& progress) {
  if (!enabled_) {
    return;
  }
  auto now = std::chrono::steady_clock::now();
  if (printed_ && std::chrono::duration<double>(now - last_).count() < min_interval_) {
    return;
  }
  last_ = now;
  Print(progress, /*final=*/false);
}

void ProgressLine::Finish(const SurveyProgressSnapshot& progress) {
  if (!enabled_) {
    return;
  }
  Print(progress, /*final=*/true);
}

void ProgressLine::Print(const SurveyProgressSnapshot& progress, bool final) {
  double pct = progress.total > 0
                   ? 100.0 * static_cast<double>(progress.done) / static_cast<double>(progress.total)
                   : 0.0;
  std::string line = "[survey";
  if (!progress.label.empty()) {
    line += " " + progress.label;
  }
  line += "] " + std::to_string(progress.done) + "/" + std::to_string(progress.total);
  char buf[96];
  snprintf(buf, sizeof(buf), " (%.0f%%) %.1f sites/s", pct, progress.sites_per_sec);
  line += buf;
  if (progress.eta_seconds >= 0 && !final) {
    snprintf(buf, sizeof(buf), " eta %.0fs", progress.eta_seconds);
    line += buf;
  }
  if (!progress.workers.empty()) {
    size_t busy = 0;
    for (const WorkerSnapshot& w : progress.workers) {
      busy += w.busy ? 1 : 0;
    }
    snprintf(buf, sizeof(buf), " workers %zu/%zu", busy, progress.workers.size());
    line += buf;
  }
  if (tty_) {
    // Redraw in place; pad so a shrinking line leaves no stale tail.
    fprintf(stderr, "\r%-78s", line.c_str());
    if (final) {
      fputc('\n', stderr);
    }
  } else {
    fprintf(stderr, "%s\n", line.c_str());
  }
  fflush(stderr);
  printed_ = true;
}

// --- SurveyStatsSampler -----------------------------------------------------

SurveyProgressSnapshot BuildSurveyProgress(const SurveySamplerSource& source, double elapsed) {
  SurveyProgressSnapshot out;
  out.label = source.label;
  out.total = source.total;
  out.done =
      source.processed != nullptr ? source.processed->load(std::memory_order_relaxed) : 0;
  if (elapsed > 0) {
    out.sites_per_sec = static_cast<double>(out.done) / elapsed;
  }
  if (out.sites_per_sec > 0 && out.total >= out.done) {
    out.eta_seconds = static_cast<double>(out.total - out.done) / out.sites_per_sec;
  }
  if (source.journal_executed != nullptr || source.journal_resumed != nullptr) {
    uint64_t durable = 0;
    if (source.journal_executed != nullptr) {
      durable += source.journal_executed->load(std::memory_order_relaxed);
    }
    if (source.journal_resumed != nullptr) {
      durable += source.journal_resumed->load(std::memory_order_relaxed);
    }
    out.journaled = static_cast<int64_t>(durable);
  }
  if (source.workers != nullptr) {
    out.workers = source.workers->Snapshot();
  }
  return out;
}

SurveyStatsSampler::SurveyStatsSampler(StatsStream* stream, ProgressLine* line,
                                       double interval_seconds, SurveySamplerSource source)
    : stream_(stream),
      line_(line),
      interval_(interval_seconds > 0 ? interval_seconds : 1.0),
      source_(std::move(source)) {}

SurveyStatsSampler::~SurveyStatsSampler() { Stop(); }

void SurveyStatsSampler::Start() {
  bool line_live = line_ != nullptr && line_->Enabled();
  if ((stream_ == nullptr && !line_live) || running_ || source_.processed == nullptr) {
    return;
  }
  running_ = true;
  stop_ = false;
  start_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::duration<double>(interval_), [this] { return stop_; });
      if (stop_) {
        break;
      }
      double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
      EmitOnce(elapsed, /*final=*/false);
    }
  });
}

void SurveyStatsSampler::Stop() {
  if (!running_) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
  // Final snapshot so every feed ends with the run's true completion state.
  double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  EmitOnce(elapsed, /*final=*/true);
}

void SurveyStatsSampler::EmitOnce(double elapsed, bool final) {
  SurveyProgressSnapshot progress = BuildSurveyProgress(source_, elapsed);
  if (stream_ != nullptr) {
    StatsSnapshot snapshot;
    snapshot.t = elapsed;
    snapshot.clock = "wall";
    snapshot.source = "survey";
    snapshot.has_survey = true;
    snapshot.survey = progress;
    stream_->Emit(std::move(snapshot));
  }
  if (line_ != nullptr) {
    if (final) {
      line_->Finish(progress);
    } else {
      line_->Report(progress);
    }
  }
}

// --- SimStatsSampler --------------------------------------------------------

SimStatsSampler::SimStatsSampler(EventLoop& loop, StatsStream& stream,
                                 double interval_sim_seconds,
                                 std::function<SimHealthSnapshot()> probe,
                                 const MetricsRegistry* metrics)
    : loop_(loop),
      stream_(stream),
      interval_(interval_sim_seconds > 0 ? interval_sim_seconds : 1.0),
      probe_(std::move(probe)),
      metrics_(metrics) {}

SimStatsSampler::~SimStatsSampler() {
  if (running_ && pending_ != 0) {
    loop_.Cancel(pending_);
    pending_ = 0;
    running_ = false;
  }
}

void SimStatsSampler::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  pending_ = loop_.ScheduleAfter(Seconds(interval_), [this] { Tick(); });
}

void SimStatsSampler::Stop() {
  if (!running_) {
    return;
  }
  if (pending_ != 0) {
    loop_.Cancel(pending_);
    pending_ = 0;
  }
  running_ = false;
  EmitOnce();
}

void SimStatsSampler::Tick() {
  pending_ = 0;
  EmitOnce();
  // Re-arm; the sampler is the only self-rescheduling event in the world, so
  // Stop() must run before the caller expects RunUntilIdle() to drain.
  pending_ = loop_.ScheduleAfter(Seconds(interval_), [this] { Tick(); });
}

void SimStatsSampler::EmitOnce() {
  StatsSnapshot snapshot;
  snapshot.t = loop_.Now();
  snapshot.clock = "sim";
  snapshot.source = "experiment";
  snapshot.has_sim = true;
  if (probe_) {
    snapshot.sim = probe_();
  }
  // The probe fills the network-side fields; the loop's own counters are
  // always authoritative here.
  snapshot.sim.event_loop_depth = loop_.PendingCount();
  snapshot.sim.events_executed = loop_.ExecutedCount();
  if (metrics_ != nullptr) {
    deltas_.Collect(*metrics_, &snapshot.counter_deltas);
  }
  stream_.Emit(std::move(snapshot));
}

}  // namespace mfc
