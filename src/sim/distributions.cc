#include "src/sim/distributions.h"

#include <algorithm>
#include <cmath>

namespace mfc {

double ExponentialDist::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  // 1 - u is in (0, 1], so the log is finite.
  return -std::log(1.0 - u) / lambda_;
}

LognormalDist LognormalDist::FromMedian(double median, double sigma) {
  return LognormalDist(std::log(median), sigma);
}

double LognormalDist::Sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * SampleStandardNormal(rng));
}

double BoundedParetoDist::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  double la = std::pow(lo_, alpha_);
  double ha = std::pow(hi_, alpha_);
  // Inverse CDF of the bounded Pareto.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
}

ZipfDist::ZipfDist(size_t n, double s) {
  cdf_.reserve(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_.push_back(total);
  }
  for (auto& v : cdf_) {
    v /= total;
  }
}

size_t ZipfDist::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

double SampleStandardNormal(Rng& rng) {
  for (;;) {
    double x = rng.Uniform(-1.0, 1.0);
    double y = rng.Uniform(-1.0, 1.0);
    double s = x * x + y * y;
    if (s > 0.0 && s < 1.0) {
      return x * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace mfc
