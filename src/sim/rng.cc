#include "src/sim/rng.h"

namespace mfc {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::NextU64() {
  // xoshiro256++
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::NextBelow(uint64_t n) {
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (-n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
}

bool Rng::Chance(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace mfc
