#include "src/sim/event_loop.h"

#include <utility>

namespace mfc {

uint32_t EventLoop::AcquireSlot() {
  if (free_head_ != kNoFreeSlot) {
    uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoFreeSlot;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventLoop::ReleaseSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = nullptr;
  ++s.generation;
  s.next_free = free_head_;
  free_head_ = slot;
}

EventId EventLoop::ScheduleAt(SimTime t, Callback cb) {
  if (t < now_) {
    t = now_;
  }
  uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  queue_.push(Entry{t, next_seq_++, slot, s.generation});
  ++live_;
  return PackId(slot, s.generation);
}

EventId EventLoop::Reschedule(EventId id, SimTime t) {
  uint32_t raw = static_cast<uint32_t>(id & 0xffffffffu);
  if (raw == 0) {
    return 0;
  }
  uint32_t slot = raw - 1;
  uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].generation != generation ||
      slots_[slot].cb == nullptr) {
    return 0;
  }
  if (t < now_) {
    t = now_;
  }
  Slot& s = slots_[slot];
  // Mirrors Cancel + ScheduleAt on the same slot: one generation bump (which
  // strands the old heap entry), one fresh sequence number, live_ unchanged.
  ++s.generation;
  queue_.push(Entry{t, next_seq_++, slot, s.generation});
  return PackId(slot, s.generation);
}

bool EventLoop::Cancel(EventId id) {
  uint32_t raw = static_cast<uint32_t>(id & 0xffffffffu);
  if (raw == 0) {
    return false;
  }
  uint32_t slot = raw - 1;
  uint32_t generation = static_cast<uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].generation != generation ||
      slots_[slot].cb == nullptr) {
    return false;
  }
  ReleaseSlot(slot);
  --live_;
  return true;
}

bool EventLoop::RunOne() {
  while (!queue_.empty()) {
    Entry top = queue_.top();
    queue_.pop();
    if (slots_[top.slot].generation != top.generation) {
      continue;  // cancelled: the slot moved on, this entry is stale
    }
    Callback cb = std::move(slots_[top.slot].cb);
    ReleaseSlot(top.slot);
    --live_;
    now_ = top.time;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void EventLoop::RunUntil(SimTime t) {
  while (!queue_.empty()) {
    // Skip over stale (cancelled) entries so queue_.top() is a live event.
    const Entry& top = queue_.top();
    if (slots_[top.slot].generation != top.generation) {
      queue_.pop();
      continue;
    }
    if (top.time > t) {
      break;
    }
    RunOne();
  }
  if (now_ < t) {
    now_ = t;
  }
}

void EventLoop::RunUntilIdle() {
  while (RunOne()) {
  }
}

}  // namespace mfc
