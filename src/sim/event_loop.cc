#include "src/sim/event_loop.h"

#include <utility>

namespace mfc {

EventId EventLoop::ScheduleAt(SimTime t, Callback cb) {
  if (t < now_) {
    t = now_;
  }
  EventId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool EventLoop::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return false;
  }
  callbacks_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool EventLoop::RunOne() {
  while (!queue_.empty()) {
    Entry top = queue_.top();
    queue_.pop();
    auto cancelled_it = cancelled_.find(top.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    auto cb_it = callbacks_.find(top.id);
    if (cb_it == callbacks_.end()) {
      continue;  // defensive: should be unreachable
    }
    Callback cb = std::move(cb_it->second);
    callbacks_.erase(cb_it);
    now_ = top.time;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void EventLoop::RunUntil(SimTime t) {
  while (!queue_.empty()) {
    // Skip over cancelled entries so queue_.top() is a live event.
    Entry top = queue_.top();
    if (cancelled_.count(top.id) != 0) {
      queue_.pop();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.time > t) {
      break;
    }
    RunOne();
  }
  if (now_ < t) {
    now_ = t;
  }
}

void EventLoop::RunUntilIdle() {
  while (RunOne()) {
  }
}

}  // namespace mfc
