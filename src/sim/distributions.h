// Random-variate generators used across the simulation.
//
// Wide-area RTTs are modelled as shifted lognormals, access bandwidths and
// object sizes as bounded Paretos, object popularity as Zipf — the standard
// choices in web-workload literature (e.g. SPECweb, SURGE). Every sampler is
// a small value-type over Rng so call sites can hold them by value.
#ifndef MFC_SRC_SIM_DISTRIBUTIONS_H_
#define MFC_SRC_SIM_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/rng.h"

namespace mfc {

// Exponential with rate lambda (mean 1/lambda).
class ExponentialDist {
 public:
  explicit ExponentialDist(double lambda) : lambda_(lambda) {}
  double Sample(Rng& rng) const;
  double Mean() const { return 1.0 / lambda_; }

 private:
  double lambda_;
};

// Lognormal: exp(N(mu, sigma^2)).
class LognormalDist {
 public:
  LognormalDist(double mu, double sigma) : mu_(mu), sigma_(sigma) {}
  // Convenience: parameterize by the median and a multiplicative spread
  // (sigma of the underlying normal); median = exp(mu).
  static LognormalDist FromMedian(double median, double sigma);
  double Sample(Rng& rng) const;

 private:
  double mu_;
  double sigma_;
};

// Pareto truncated to [lo, hi]; shape alpha. Samples via inverse CDF of the
// bounded Pareto.
class BoundedParetoDist {
 public:
  BoundedParetoDist(double alpha, double lo, double hi) : alpha_(alpha), lo_(lo), hi_(hi) {}
  double Sample(Rng& rng) const;

 private:
  double alpha_;
  double lo_;
  double hi_;
};

// Zipf over {0, 1, ..., n-1} with exponent s: P(k) proportional to 1/(k+1)^s.
// Precomputes the CDF; sampling is a binary search.
class ZipfDist {
 public:
  ZipfDist(size_t n, double s);
  size_t Sample(Rng& rng) const;
  size_t Size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

// Standard normal via Marsaglia polar method (no cached spare: simpler and
// keeps the draw count deterministic per call site).
double SampleStandardNormal(Rng& rng);

}  // namespace mfc

#endif  // MFC_SRC_SIM_DISTRIBUTIONS_H_
