// Discrete-event simulation core.
//
// EventLoop owns a time-ordered queue of callbacks. Events scheduled for the
// same instant run in scheduling order (stable), which keeps simulations
// deterministic.
//
// Hot-path layout: the heap holds small POD entries {time, seq, slot,
// generation}; the callback itself lives in a free-listed slot vector indexed
// by |slot|. Cancellation is O(1) — bump the slot's generation and return the
// slot to the free list — and stale heap entries are skipped on pop by a
// generation compare, with no hash-table lookups anywhere on the
// schedule/run/cancel path. PendingCount() is an exact live counter.
#ifndef MFC_SRC_SIM_EVENT_LOOP_H_
#define MFC_SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/sim_time.h"

namespace mfc {

// Identifies a scheduled event for cancellation. 0 is never a valid id.
using EventId = uint64_t;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Current simulated time. Advances only while running events.
  SimTime Now() const { return now_; }

  // Schedules |cb| to run at absolute time |t|. Scheduling in the past is a
  // programming error; the event is clamped to Now() and runs next.
  EventId ScheduleAt(SimTime t, Callback cb);

  // Schedules |cb| to run |d| seconds from Now().
  EventId ScheduleAfter(SimDuration d, Callback cb) { return ScheduleAt(now_ + d, std::move(cb)); }

  // Cancels a pending event in O(1). Returns false if the event already ran,
  // was already cancelled, or never existed.
  bool Cancel(EventId id);

  // Moves a pending event to time |t|, reusing its stored callback: exactly
  // equivalent to Cancel(id) + ScheduleAt(t, same-callback) — one sequence
  // number is consumed, the slot's generation advances once, and the old heap
  // entry goes stale — but without destroying and rebuilding the callback.
  // Returns the new id, or 0 if |id| was stale (caller must ScheduleAt).
  EventId Reschedule(EventId id, SimTime t);

  // Runs a single event if one is pending. Returns false when idle.
  bool RunOne();

  // Runs every event with timestamp <= |t|, then advances Now() to |t|
  // (even if the queue drained earlier).
  void RunUntil(SimTime t);

  // Runs until no events remain. The final Now() is the last event's time.
  void RunUntilIdle();

  // Number of pending (non-cancelled) events. Exact: maintained as a live
  // counter, independent of how many stale entries still sit in the heap.
  size_t PendingCount() const { return live_; }

  // Total events executed since construction; useful for budget assertions.
  uint64_t ExecutedCount() const { return executed_; }

 private:
  static constexpr uint32_t kNoFreeSlot = UINT32_MAX;

  struct Slot {
    Callback cb;
    // Matches the heap entry only while the event is pending; bumped when the
    // event runs or is cancelled, which invalidates any stale heap entry and
    // any stale EventId in O(1).
    uint32_t generation = 1;
    uint32_t next_free = kNoFreeSlot;
  };

  struct Entry {
    SimTime time;
    uint64_t seq;  // tie-breaker: FIFO among same-time events
    uint32_t slot;
    uint32_t generation;
    // Min-heap ordering (std::priority_queue is a max-heap, so invert).
    bool operator<(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  // An EventId packs {generation, slot + 1}; +1 keeps 0 invalid.
  static EventId PackId(uint32_t slot, uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | (static_cast<EventId>(slot) + 1);
  }

  // Pops a free slot, growing the vector when the free list is empty.
  uint32_t AcquireSlot();
  // Invalidates |slot| and returns it to the free list.
  void ReleaseSlot(uint32_t slot);

  SimTime now_ = kTimeZero;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t live_ = 0;
  std::priority_queue<Entry> queue_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNoFreeSlot;
};

}  // namespace mfc

#endif  // MFC_SRC_SIM_EVENT_LOOP_H_
