// Discrete-event simulation core.
//
// EventLoop owns a time-ordered queue of callbacks. Events scheduled for the
// same instant run in scheduling order (stable), which keeps simulations
// deterministic. Cancellation is O(log n) via lazy deletion.
#ifndef MFC_SRC_SIM_EVENT_LOOP_H_
#define MFC_SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/sim/sim_time.h"

namespace mfc {

// Identifies a scheduled event for cancellation. 0 is never a valid id.
using EventId = uint64_t;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Current simulated time. Advances only while running events.
  SimTime Now() const { return now_; }

  // Schedules |cb| to run at absolute time |t|. Scheduling in the past is a
  // programming error; the event is clamped to Now() and runs next.
  EventId ScheduleAt(SimTime t, Callback cb);

  // Schedules |cb| to run |d| seconds from Now().
  EventId ScheduleAfter(SimDuration d, Callback cb) { return ScheduleAt(now_ + d, std::move(cb)); }

  // Cancels a pending event. Returns false if the event already ran, was
  // already cancelled, or never existed.
  bool Cancel(EventId id);

  // Runs a single event if one is pending. Returns false when idle.
  bool RunOne();

  // Runs every event with timestamp <= |t|, then advances Now() to |t|
  // (even if the queue drained earlier).
  void RunUntil(SimTime t);

  // Runs until no events remain. The final Now() is the last event's time.
  void RunUntilIdle();

  // Number of pending (non-cancelled) events.
  size_t PendingCount() const { return queue_.size() - cancelled_.size(); }

  // Total events executed since construction; useful for budget assertions.
  uint64_t ExecutedCount() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;  // tie-breaker: FIFO among same-time events
    EventId id;
    // Min-heap ordering (std::priority_queue is a max-heap, so invert).
    bool operator<(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  SimTime now_ = kTimeZero;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Entry> queue_;
  // Callbacks keyed by id; erased on run or cancel.
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace mfc

#endif  // MFC_SRC_SIM_EVENT_LOOP_H_
