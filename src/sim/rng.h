// Deterministic pseudo-random number generation for simulations.
//
// xoshiro256++ seeded through splitmix64. One Rng instance per simulation;
// child streams (Fork) let subsystems draw independently without coupling
// their consumption order to each other, which keeps experiments reproducible
// when one subsystem changes.
#ifndef MFC_SRC_SIM_RNG_H_
#define MFC_SRC_SIM_RNG_H_

#include <array>
#include <cstdint>

namespace mfc {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Bernoulli trial.
  bool Chance(double p);

  // Derives an independent child stream. Deterministic: the i-th Fork of a
  // given Rng state is always the same stream.
  Rng Fork();

  // Fisher-Yates shuffle of [first, last).
  template <typename It>
  void Shuffle(It first, It last) {
    auto n = static_cast<uint64_t>(last - first);
    for (uint64_t i = n; i > 1; --i) {
      uint64_t j = NextBelow(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

 private:
  std::array<uint64_t, 4> state_;
};

}  // namespace mfc

#endif  // MFC_SRC_SIM_RNG_H_
