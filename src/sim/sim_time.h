// Simulated-time primitives.
//
// All simulation code expresses time as seconds in a double. Doubles keep the
// fluid-flow bandwidth math (rates, remaining bytes / rate) exact enough and
// avoid unit-mixing bugs; helpers below are the only sanctioned constructors
// for literals so call sites stay readable ("Millis(100)" rather than "0.1").
#ifndef MFC_SRC_SIM_SIM_TIME_H_
#define MFC_SRC_SIM_SIM_TIME_H_

#include <algorithm>
#include <cmath>
#include <limits>

namespace mfc {

// Absolute simulated time, in seconds since simulation start.
using SimTime = double;
// A span of simulated time, in seconds.
using SimDuration = double;

constexpr SimTime kTimeZero = 0.0;
constexpr SimTime kTimeInfinity = std::numeric_limits<double>::infinity();

constexpr SimDuration Seconds(double s) { return s; }
constexpr SimDuration Millis(double ms) { return ms / 1e3; }
constexpr SimDuration Micros(double us) { return us / 1e6; }

constexpr double ToMillis(SimDuration d) { return d * 1e3; }
constexpr double ToMicros(SimDuration d) { return d * 1e6; }

// Smallest delta that reliably advances a double-precision clock sitting at
// absolute time |t|. Continuous processes (fluid flows, processor sharing)
// must treat any residual work whose projected duration is below this as
// complete, or a completion event scheduled at Now() + dt == Now() re-fires
// forever without progress.
inline SimDuration TimeQuantum(SimTime t) {
  return 8.0 * std::numeric_limits<double>::epsilon() * std::max(1.0, std::abs(t));
}

}  // namespace mfc

#endif  // MFC_SRC_SIM_SIM_TIME_H_
