// Fluid-flow network model with event-driven max-min fair bandwidth sharing.
//
// Transfers are modelled as fluid flows over a path of links. Whenever the
// flow set changes (start, completion, abort, or a TCP slow-start window
// doubling), remaining bytes are advanced at the old rates and a max-min fair
// allocation (water-filling with per-flow rate caps) is recomputed. This is
// the standard fluid approximation of TCP bandwidth sharing: cheap,
// deterministic, and it reproduces the two effects the paper's Large Object
// stage depends on — contention at the server access link and the slow-start
// regime that motivates the 100 KB object-size lower bound.
#ifndef MFC_SRC_NET_FLOW_NETWORK_H_
#define MFC_SRC_NET_FLOW_NETWORK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/sim/event_loop.h"

namespace mfc {

using LinkId = size_t;
using FlowId = uint64_t;

// TCP behaviour knobs for a single flow.
struct TcpParams {
  // Initial congestion window in bytes (10 segments of 1460 B, RFC 6928).
  double init_cwnd_bytes = 14600.0;
  // When false the flow is only limited by fair share (no slow start).
  bool slow_start = true;
};

class FlowNetwork {
 public:
  explicit FlowNetwork(EventLoop& loop) : loop_(loop) {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  // Adds a link with |capacity| in bytes/second. Capacity must be > 0.
  LinkId AddLink(double capacity);

  // Starts a transfer of |bytes| over |path|. |rtt| drives the slow-start
  // cwnd-doubling cadence. |on_complete| fires (via the event loop) when the
  // last byte leaves the final link. Returns an id usable with AbortFlow.
  FlowId StartFlow(std::vector<LinkId> path, double bytes, double rtt, TcpParams tcp,
                   std::function<void()> on_complete);

  // Cancels a transfer; its callback never fires. No-op if already complete.
  void AbortFlow(FlowId id);

  size_t ActiveFlowCount() const { return flows_.size(); }

  // Instantaneous aggregate rate through a link (bytes/second).
  double LinkRate(LinkId id) const;
  double LinkCapacity(LinkId id) const { return links_[id].capacity; }
  // Total bytes that have traversed the link since creation.
  double LinkCumulativeBytes(LinkId id) const { return links_[id].cumulative_bytes; }
  // Utilization in [0, 1].
  double LinkUtilization(LinkId id) const { return LinkRate(id) / links_[id].capacity; }

  // Current allocated rate of a flow; 0 if unknown/finished.
  double FlowRate(FlowId id) const;

 private:
  struct Link {
    double capacity = 0.0;
    double cumulative_bytes = 0.0;
    // Scratch fields for the water-filling pass.
    double residual = 0.0;
    size_t unfixed = 0;
  };

  struct Flow {
    std::vector<LinkId> path;
    double remaining = 0.0;
    double rate = 0.0;
    double rate_cap = 0.0;  // cwnd/rtt slow-start cap; infinity once opened
    double rtt = 0.0;
    double cwnd = 0.0;
    SimTime next_double = kTimeInfinity;  // next cwnd doubling instant
    bool fixed = false;                   // scratch for water-filling
    std::function<void()> on_complete;
  };

  // Advances all flows' remaining bytes to loop_.Now() at current rates.
  void Advance();
  // Recomputes the max-min allocation with per-flow caps.
  void Reallocate();
  // (Re)schedules the single pending timer for min(completion, doubling).
  void ScheduleNext();
  void OnTimer();

  EventLoop& loop_;
  std::vector<Link> links_;
  std::unordered_map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 1;
  SimTime last_advance_ = kTimeZero;
  EventId timer_ = 0;
};

}  // namespace mfc

#endif  // MFC_SRC_NET_FLOW_NETWORK_H_
