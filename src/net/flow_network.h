// Fluid-flow network model with event-driven max-min fair bandwidth sharing.
//
// Transfers are modelled as fluid flows over a path of links. Whenever the
// flow set changes (start, completion, abort, or a TCP slow-start window
// doubling), affected flows' remaining bytes are advanced at the old rates
// and a max-min fair allocation (water-filling with per-flow rate caps) is
// recomputed. This is the standard fluid approximation of TCP bandwidth
// sharing: cheap, deterministic, and it reproduces the two effects the
// paper's Large Object stage depends on — contention at the server access
// link and the slow-start regime that motivates the 100 KB object-size lower
// bound.
//
// Hot-path layout (mirrors the EventLoop slot-vector rework): flows live in
// a dense free-listed slot vector, FlowIds pack {generation, slot} for O(1)
// lookup and stale-handle rejection, and each link keeps a membership list
// plus an aggregate rate so LinkRate() is O(1). Reallocation is incremental:
// only the connected component of links/flows reachable from the changed
// flows is recomputed (see DESIGN.md §10 for the dirty-set rules), flows
// advance lazily when their component is touched, and indexed min-heaps
// (next completion, next cwnd doubling) replace the per-event full-flow
// scans.
#ifndef MFC_SRC_NET_FLOW_NETWORK_H_
#define MFC_SRC_NET_FLOW_NETWORK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/net/indexed_heap.h"
#include "src/sim/event_loop.h"

namespace mfc {

class MetricsRegistry;

using LinkId = size_t;
using FlowId = uint64_t;

// TCP behaviour knobs for a single flow.
struct TcpParams {
  // Initial congestion window in bytes (10 segments of 1460 B, RFC 6928).
  double init_cwnd_bytes = 14600.0;
  // When false the flow is only limited by fair share (no slow start).
  bool slow_start = true;
};

// Allocator work counters, exported through FlowNetwork::Stats() so the perf
// harness (bench/perf_flow_network.cc) can report how much recomputation a
// workload actually triggered, not just wall time.
struct FlowNetworkStats {
  uint64_t reallocs = 0;       // allocation passes run
  uint64_t full_reallocs = 0;  // passes whose component was the whole graph
  uint64_t flows_touched = 0;  // flows visited, summed over passes
  uint64_t links_touched = 0;  // links visited, summed over passes
  uint64_t no_progress = 0;    // water-filling stalls (expected 0; see
                               // the flow_network.no_progress metric)
};

class FlowNetwork {
 public:
  explicit FlowNetwork(EventLoop& loop) : loop_(loop) {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  // Adds a link with |capacity| in bytes/second. Capacity must be > 0.
  LinkId AddLink(double capacity);

  // Starts a transfer of |bytes| over |path|. |rtt| drives the slow-start
  // cwnd-doubling cadence. |on_complete| fires (via the event loop) when the
  // last byte leaves the final link. Returns an id usable with AbortFlow.
  // Paths must not repeat a link. Id 0 is never returned.
  FlowId StartFlow(std::vector<LinkId> path, double bytes, double rtt, TcpParams tcp,
                   std::function<void()> on_complete);

  // Cancels a transfer; its callback never fires. No-op if already complete
  // (ids are generation-checked, so a recycled slot never aliases).
  void AbortFlow(FlowId id);

  size_t ActiveFlowCount() const { return live_; }

  // Instantaneous aggregate rate through a link (bytes/second). O(1): reads
  // the maintained aggregate (debug builds assert it against a fresh scan).
  double LinkRate(LinkId id) const;
  double LinkCapacity(LinkId id) const { return links_[id].capacity; }
  // Total bytes that have traversed the link since creation.
  double LinkCumulativeBytes(LinkId id) const;
  // Utilization in [0, 1].
  double LinkUtilization(LinkId id) const { return LinkRate(id) / links_[id].capacity; }

  // Current allocated rate of a flow; 0 if unknown/finished.
  double FlowRate(FlowId id) const;

  // Cumulative allocator work counters since construction.
  const FlowNetworkStats& Stats() const { return stats_; }

  // When non-null, the allocator reports anomalies (flow_network.no_progress)
  // to |metrics|. The registry must outlive this network.
  void SetMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  // Testing hook: every reallocation recomputes the whole graph, matching the
  // historical full water-filling pass. The differential test drives an
  // identical workload through a forced-full network as the oracle.
  void set_force_full_reallocate(bool on) {
    force_full_ = on;
    component_cache_full_ = false;
  }

 private:
  static constexpr uint32_t kNoFreeSlot = UINT32_MAX;

  struct Link {
    double capacity = 0.0;
    // Sum of member flow rates; kept exact by RefreshLinkAggregates after
    // every pass that touches the link.
    double agg_rate = 0.0;
    // Bytes through the link up to |cum_update|; bytes since then are
    // agg_rate * (now - cum_update), materialized before agg_rate changes.
    double cumulative_bytes = 0.0;
    SimTime cum_update = kTimeZero;
    std::vector<uint32_t> members;  // slots of flows whose path crosses this link
    // Scratch for the water-filling pass.
    double residual = 0.0;
    size_t unfixed = 0;
    uint64_t visit = 0;  // dirty-set BFS epoch mark
  };

  struct Flow {
    std::vector<LinkId> path;
    // members-list index per path link, so detach is O(path) swap-removals.
    std::vector<uint32_t> member_pos;
    double remaining = 0.0;  // valid as of |advanced|
    double rate = 0.0;
    double rate_cap = 0.0;  // cwnd/rtt slow-start cap; infinity once opened
    double rtt = 0.0;
    double cwnd = 0.0;
    double path_cap = 0.0;  // min link capacity along path, cached at start
    SimTime advanced = kTimeZero;
    SimTime next_double = kTimeInfinity;  // next cwnd doubling instant
    uint64_t seq = 0;                     // creation order; deterministic ties
    std::function<void()> on_complete;
    uint32_t generation = 1;
    uint32_t next_free = kNoFreeSlot;
    bool active = false;
    bool fixed = false;  // scratch for water-filling
    uint64_t visit = 0;  // dirty-set BFS epoch mark
  };

  // A FlowId packs {generation, slot + 1}; +1 keeps 0 invalid.
  static FlowId PackId(uint32_t slot, uint32_t generation) {
    return (static_cast<FlowId>(generation) << 32) | (static_cast<FlowId>(slot) + 1);
  }
  // Resolves an id to a live slot, or UINT32_MAX for stale/invalid ids.
  uint32_t ResolveId(FlowId id) const;

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t slot);

  // Moves |flow|'s remaining bytes forward to |now| at its current rate.
  void AdvanceFlow(Flow& flow, SimTime now);
  // Folds bytes since |cum_update| into cumulative_bytes. Must run before
  // the link's agg_rate changes.
  void MaterializeLink(Link& link, SimTime now);
  // Removes |slot| from its links' member lists, materializing cumulative
  // bytes and deducting its rate from the aggregates first.
  void DetachFromLinks(uint32_t slot);

  // Recomputes the allocation for the connected component(s) reachable from
  // |seed_links| (and |seed_flow| when valid — covers link-less paths),
  // advancing member flows to Now() and refreshing completion keys.
  // Water-filling itself is unchanged from the historical full pass,
  // restricted to the component.
  void ReallocateFor(const std::vector<LinkId>& seed_links, uint32_t seed_flow = UINT32_MAX);
  // Dirty-set BFS from the seeds into dirty_flows_/dirty_links_.
  void CollectComponent(const std::vector<LinkId>& seed_links, uint32_t seed_flow);
  // Recomputes agg_rate for each dirty link from its members.
  void RefreshLinkAggregates();
  // Predicted exact finish instant and earliest byte-epsilon completion
  // instant for |flow|, from its current (advanced, remaining, rate).
  static void CompletionKeys(const Flow& flow, double* finish, double* early);
  // Re-keys |slot| in both completion heaps from its remaining/rate.
  void UpdateCompletionKey(uint32_t slot);

  // (Re)schedules the single pending timer for min(completion, doubling).
  void ScheduleNext();
  void OnTimer();

  EventLoop& loop_;
  std::vector<Link> links_;
  std::vector<Flow> flows_;  // dense slots; |active| distinguishes live ones
  uint32_t free_head_ = kNoFreeSlot;
  size_t live_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t visit_epoch_ = 0;

  // Completion instants. finish_heap_ holds predicted exact finish times
  // (drives the timer, like the historical min-scan); early_heap_ holds the
  // instant each flow first satisfies the byte-epsilon completion test, so
  // an unrelated event never misses an epsilon-due flow (see OnTimer).
  IndexedMinHeap finish_heap_;
  IndexedMinHeap early_heap_;
  IndexedMinHeap double_heap_;  // next_double instants

  // Scratch reused across passes. dirty_flows_/dirty_links_ survive between
  // passes: when the previous pass covered every live flow and membership has
  // not changed since (component_cache_full_), the BFS is skipped and the
  // cached sets are reused verbatim.
  std::vector<uint32_t> dirty_flows_;
  std::vector<LinkId> dirty_links_;
  std::vector<LinkId> seed_scratch_;
  std::vector<uint32_t> due_scratch_;  // OnTimer's due-flow list
  std::vector<uint64_t> order_scratch_;  // packed (seq, slot) sort keys
  // Water-filling pass scratch: flows ascending by (rate_cap, seq, slot) so
  // cap rounds advance a cursor instead of rescanning, and a min-heap of
  // per-link equal shares so each round's bottleneck share is O(1).
  std::vector<std::pair<double, uint64_t>> caps_scratch_;
  IndexedMinHeap share_heap_;
  // Full-pass completion-heap rebuild scratch (see ReallocateFor).
  std::vector<IndexedMinHeap::Entry> finish_scratch_;
  std::vector<IndexedMinHeap::Entry> early_scratch_;

  EventId timer_ = 0;
  FlowNetworkStats stats_;
  MetricsRegistry* metrics_ = nullptr;
  bool force_full_ = false;
  // True while dirty_flows_/dirty_links_ hold the whole live flow set and no
  // start/abort/completion (or new link) has occurred since — i.e. a fresh
  // BFS would re-derive them exactly. Doubling-only events then skip
  // CollectComponent altogether.
  bool component_cache_full_ = false;
};

}  // namespace mfc

#endif  // MFC_SRC_NET_FLOW_NETWORK_H_
