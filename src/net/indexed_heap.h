// Indexed binary min-heap over dense item indices.
//
// The flow allocator keeps one heap of predicted completion instants and one
// of slow-start doubling instants, keyed by flow slot. Unlike
// std::priority_queue, entries can be reprioritized or removed in O(log n)
// through a position index, so a reallocation that changes a handful of flow
// rates never rebuilds or lazily poisons the queue. Ties are broken by a
// caller-supplied sequence number (flow creation order), which keeps pop
// order deterministic.
#ifndef MFC_SRC_NET_INDEXED_HEAP_H_
#define MFC_SRC_NET_INDEXED_HEAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mfc {

class IndexedMinHeap {
 public:
  // True when |item| currently has an entry.
  bool Contains(uint32_t item) const {
    return item < pos_.size() && pos_[item] != kAbsent;
  }

  size_t Size() const { return nodes_.size(); }
  bool Empty() const { return nodes_.empty(); }

  // Key of |item|; must be present.
  double KeyOf(uint32_t item) const {
    assert(Contains(item));
    return nodes_[pos_[item]].key;
  }

  uint32_t TopItem() const {
    assert(!Empty());
    return nodes_[0].item;
  }
  double TopKey() const {
    assert(!Empty());
    return nodes_[0].key;
  }

  // Inserts |item| or changes its priority. |seq| orders equal keys
  // (ascending), so it should be stable per item across updates.
  void Update(uint32_t item, double key, uint64_t seq) {
    if (item >= pos_.size()) {
      pos_.resize(item + 1, kAbsent);
    }
    if (pos_[item] == kAbsent) {
      pos_[item] = static_cast<uint32_t>(nodes_.size());
      nodes_.push_back(Node{key, seq, item});
      SiftUp(pos_[item]);
      return;
    }
    size_t i = pos_[item];
    Node& node = nodes_[i];
    bool decreased = key < node.key || (key == node.key && seq < node.seq);
    node.key = key;
    node.seq = seq;
    if (decreased) {
      SiftUp(i);
    } else {
      SiftDown(i);
    }
  }

  // Removes |item| if present.
  void Remove(uint32_t item) {
    if (!Contains(item)) {
      return;
    }
    size_t i = pos_[item];
    pos_[item] = kAbsent;
    if (i + 1 == nodes_.size()) {
      nodes_.pop_back();
      return;
    }
    nodes_[i] = nodes_.back();
    nodes_.pop_back();
    pos_[nodes_[i].item] = static_cast<uint32_t>(i);
    // The filler came from the bottom: if it beats its new parent the subtree
    // below i is already fine (parent bounded i's old children), else the
    // ancestors are fine and it sifts down. Exactly one direction applies.
    if (i > 0 && nodes_[i].Before(nodes_[(i - 1) / 2])) {
      SiftUp(i);
    } else {
      SiftDown(i);
    }
  }

  void Pop() { Remove(TopItem()); }

  // Empties the heap in O(size) without shrinking the position index.
  void Clear() {
    for (const Node& node : nodes_) {
      pos_[node.item] = kAbsent;
    }
    nodes_.clear();
  }

  // One entry for Assign(); mirrors Update()'s (item, key, seq) triple.
  struct Entry {
    double key;
    uint64_t seq;
    uint32_t item;
  };

  // Replaces the whole heap with |entries| in O(n) (Floyd heapify) — cheaper
  // and flatter than n sifted Update() calls when every key changed anyway.
  // Items must be distinct. The position index is written once at the end,
  // so heapify moves are plain 24-byte copies.
  void Assign(const std::vector<Entry>& entries) {
    for (const Node& node : nodes_) {
      pos_[node.item] = kAbsent;
    }
    nodes_.clear();
    nodes_.reserve(entries.size());
    uint32_t max_item = 0;
    for (const Entry& e : entries) {
      nodes_.push_back(Node{e.key, e.seq, e.item});
      max_item = e.item > max_item ? e.item : max_item;
    }
    if (!entries.empty() && max_item >= pos_.size()) {
      pos_.resize(max_item + 1, kAbsent);
    }
    size_t n = nodes_.size();
    for (size_t i = n / 2; i-- > 0;) {
      Node node = nodes_[i];
      size_t j = i;
      for (;;) {
        size_t child = 2 * j + 1;
        if (child >= n) {
          break;
        }
        if (child + 1 < n && nodes_[child + 1].Before(nodes_[child])) {
          ++child;
        }
        if (!nodes_[child].Before(node)) {
          break;
        }
        nodes_[j] = nodes_[child];
        j = child;
      }
      nodes_[j] = node;
    }
    for (size_t i = 0; i < n; ++i) {
      assert(pos_[nodes_[i].item] == kAbsent && "duplicate item in Assign");
      pos_[nodes_[i].item] = static_cast<uint32_t>(i);
    }
  }

 private:
  struct Node {
    double key;
    uint64_t seq;
    uint32_t item;
    bool Before(const Node& other) const {
      if (key != other.key) {
        return key < other.key;
      }
      return seq < other.seq;
    }
  };

  static constexpr uint32_t kAbsent = UINT32_MAX;

  void SiftUp(size_t i) {
    Node node = nodes_[i];
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (!node.Before(nodes_[parent])) {
        break;
      }
      nodes_[i] = nodes_[parent];
      pos_[nodes_[i].item] = static_cast<uint32_t>(i);
      i = parent;
    }
    nodes_[i] = node;
    pos_[node.item] = static_cast<uint32_t>(i);
  }

  void SiftDown(size_t i) {
    Node node = nodes_[i];
    size_t n = nodes_.size();
    for (;;) {
      size_t child = 2 * i + 1;
      if (child >= n) {
        break;
      }
      if (child + 1 < n && nodes_[child + 1].Before(nodes_[child])) {
        ++child;
      }
      if (!nodes_[child].Before(node)) {
        break;
      }
      nodes_[i] = nodes_[child];
      pos_[nodes_[i].item] = static_cast<uint32_t>(i);
      i = child;
    }
    nodes_[i] = node;
    pos_[node.item] = static_cast<uint32_t>(i);
  }

  std::vector<Node> nodes_;
  std::vector<uint32_t> pos_;  // item -> index in nodes_, kAbsent if none
};

}  // namespace mfc

#endif  // MFC_SRC_NET_INDEXED_HEAP_H_
