#include "src/net/flow_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace mfc {
namespace {

constexpr double kByteEpsilon = 1e-6;   // flows with fewer remaining bytes are done
constexpr double kRateEpsilon = 1e-9;
constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace

LinkId FlowNetwork::AddLink(double capacity) {
  assert(capacity > 0.0 && "link capacity must be positive");
  links_.push_back(Link{capacity, 0.0, 0.0, 0});
  return links_.size() - 1;
}

FlowId FlowNetwork::StartFlow(std::vector<LinkId> path, double bytes, double rtt, TcpParams tcp,
                              std::function<void()> on_complete) {
  Advance();
  FlowId id = next_flow_id_++;
  Flow flow;
  flow.path = std::move(path);
  for (LinkId l : flow.path) {
    assert(l < links_.size() && "unknown link in path");
    (void)l;
  }
  flow.remaining = std::max(bytes, kByteEpsilon);
  flow.rtt = std::max(rtt, 1e-6);
  flow.on_complete = std::move(on_complete);
  if (tcp.slow_start) {
    flow.cwnd = tcp.init_cwnd_bytes;
    flow.rate_cap = flow.cwnd / flow.rtt;
    flow.next_double = loop_.Now() + flow.rtt;
  } else {
    flow.rate_cap = kInfinity;
  }
  flows_.emplace(id, std::move(flow));
  Reallocate();
  ScheduleNext();
  return id;
}

void FlowNetwork::AbortFlow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return;
  }
  Advance();
  flows_.erase(it);
  Reallocate();
  ScheduleNext();
}

double FlowNetwork::LinkRate(LinkId id) const {
  double rate = 0.0;
  for (const auto& [fid, flow] : flows_) {
    for (LinkId l : flow.path) {
      if (l == id) {
        rate += flow.rate;
        break;
      }
    }
  }
  return rate;
}

double FlowNetwork::FlowRate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void FlowNetwork::Advance() {
  SimTime now = loop_.Now();
  double dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0.0) {
    return;
  }
  for (auto& [id, flow] : flows_) {
    double moved = flow.rate * dt;
    flow.remaining = std::max(0.0, flow.remaining - moved);
    for (LinkId l : flow.path) {
      links_[l].cumulative_bytes += moved;
    }
  }
}

void FlowNetwork::Reallocate() {
  // Water-filling max-min allocation with per-flow rate caps.
  for (auto& link : links_) {
    link.residual = link.capacity;
    link.unfixed = 0;
  }
  for (auto& [id, flow] : flows_) {
    flow.fixed = false;
    flow.rate = 0.0;
    for (LinkId l : flow.path) {
      links_[l].unfixed++;
    }
  }
  size_t remaining_flows = flows_.size();
  while (remaining_flows > 0) {
    // Smallest equal-share across contended links.
    double link_share = kInfinity;
    for (const auto& link : links_) {
      if (link.unfixed > 0) {
        link_share = std::min(link_share, link.residual / static_cast<double>(link.unfixed));
      }
    }
    // Smallest unfixed per-flow cap.
    double cap_min = kInfinity;
    for (const auto& [id, flow] : flows_) {
      if (!flow.fixed) {
        cap_min = std::min(cap_min, flow.rate_cap);
      }
    }
    auto fix_flow = [&](Flow& flow, double rate) {
      flow.fixed = true;
      flow.rate = std::max(rate, 0.0);
      for (LinkId l : flow.path) {
        Link& link = links_[l];
        link.residual = std::max(0.0, link.residual - flow.rate);
        link.unfixed--;
      }
      remaining_flows--;
    };
    if (cap_min <= link_share + kRateEpsilon) {
      // Cap-limited flows saturate first: pin them at their caps.
      for (auto& [id, flow] : flows_) {
        if (!flow.fixed && flow.rate_cap <= cap_min + kRateEpsilon) {
          fix_flow(flow, flow.rate_cap);
        }
      }
    } else {
      // Link-limited: every unfixed flow crossing a bottleneck link gets the
      // bottleneck share.
      bool fixed_any = false;
      for (size_t li = 0; li < links_.size(); ++li) {
        Link& link = links_[li];
        if (link.unfixed == 0) {
          continue;
        }
        double share = link.residual / static_cast<double>(link.unfixed);
        if (share > link_share + kRateEpsilon) {
          continue;
        }
        for (auto& [id, flow] : flows_) {
          if (flow.fixed) {
            continue;
          }
          bool on_link = std::find(flow.path.begin(), flow.path.end(), li) != flow.path.end();
          if (on_link) {
            fix_flow(flow, link_share);
            fixed_any = true;
          }
        }
      }
      assert(fixed_any && "water-filling made no progress");
      if (!fixed_any) {
        break;  // defensive: avoid infinite loop in release builds
      }
    }
  }
}

void FlowNetwork::ScheduleNext() {
  if (timer_ != 0) {
    loop_.Cancel(timer_);
    timer_ = 0;
  }
  SimTime next = kTimeInfinity;
  for (const auto& [id, flow] : flows_) {
    if (flow.rate > kRateEpsilon) {
      next = std::min(next, loop_.Now() + flow.remaining / flow.rate);
    }
    next = std::min(next, flow.next_double);
  }
  if (next < kTimeInfinity) {
    timer_ = loop_.ScheduleAt(next, [this] {
      timer_ = 0;
      OnTimer();
    });
  }
}

void FlowNetwork::OnTimer() {
  Advance();
  SimTime now = loop_.Now();
  // Collect completions first so callbacks observe a consistent network.
  std::vector<std::function<void()>> done;
  SimDuration quantum = TimeQuantum(now);
  for (auto it = flows_.begin(); it != flows_.end();) {
    Flow& flow = it->second;
    // A flow is complete when its bytes are gone, or when the residual would
    // take less than one representable clock tick to drain (the clock can no
    // longer advance by that little; see TimeQuantum).
    if (flow.remaining <= kByteEpsilon ||
        (flow.rate > kRateEpsilon && flow.remaining / flow.rate <= quantum)) {
      done.push_back(std::move(flow.on_complete));
      it = flows_.erase(it);
    } else {
      if (flow.next_double <= now + 1e-12) {
        flow.cwnd *= 2.0;
        flow.rate_cap = flow.cwnd / flow.rtt;
        // Stop doubling once the cap exceeds anything the path could give.
        double path_cap = kInfinity;
        for (LinkId l : flow.path) {
          path_cap = std::min(path_cap, links_[l].capacity);
        }
        flow.next_double = flow.rate_cap >= path_cap ? kTimeInfinity : now + flow.rtt;
        if (flow.rate_cap >= path_cap) {
          flow.rate_cap = kInfinity;
        }
      }
      ++it;
    }
  }
  Reallocate();
  ScheduleNext();
  for (auto& cb : done) {
    if (cb) {
      cb();
    }
  }
}

}  // namespace mfc
