#include "src/net/flow_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/telemetry/metrics.h"

namespace mfc {
namespace {

constexpr double kByteEpsilon = 1e-6;   // flows with fewer remaining bytes are done
constexpr double kRateEpsilon = 1e-9;
constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace

LinkId FlowNetwork::AddLink(double capacity) {
  assert(capacity > 0.0 && "link capacity must be positive");
  Link link;
  link.capacity = capacity;
  link.cum_update = loop_.Now();
  links_.push_back(std::move(link));
  component_cache_full_ = false;
  return links_.size() - 1;
}

uint32_t FlowNetwork::ResolveId(FlowId id) const {
  uint32_t slot = static_cast<uint32_t>(id & 0xFFFFFFFFu);
  if (slot == 0 || slot > flows_.size()) {
    return UINT32_MAX;
  }
  --slot;
  uint32_t generation = static_cast<uint32_t>(id >> 32);
  const Flow& flow = flows_[slot];
  return flow.active && flow.generation == generation ? slot : UINT32_MAX;
}

uint32_t FlowNetwork::AcquireSlot() {
  if (free_head_ != kNoFreeSlot) {
    uint32_t slot = free_head_;
    free_head_ = flows_[slot].next_free;
    flows_[slot].next_free = kNoFreeSlot;
    return slot;
  }
  flows_.emplace_back();
  return static_cast<uint32_t>(flows_.size() - 1);
}

void FlowNetwork::ReleaseSlot(uint32_t slot) {
  Flow& flow = flows_[slot];
  flow.active = false;
  flow.generation++;
  flow.path.clear();
  flow.member_pos.clear();
  flow.on_complete = nullptr;
  flow.next_free = free_head_;
  free_head_ = slot;
}

FlowId FlowNetwork::StartFlow(std::vector<LinkId> path, double bytes, double rtt, TcpParams tcp,
                              std::function<void()> on_complete) {
  SimTime now = loop_.Now();
  uint32_t slot = AcquireSlot();
  Flow& flow = flows_[slot];
  flow.path = std::move(path);
  flow.path_cap = kInfinity;
  flow.member_pos.clear();
  flow.member_pos.reserve(flow.path.size());
  for (size_t i = 0; i < flow.path.size(); ++i) {
    LinkId l = flow.path[i];
    assert(l < links_.size() && "unknown link in path");
#ifndef NDEBUG
    for (size_t j = 0; j < i; ++j) {
      assert(flow.path[j] != l && "path must not repeat a link");
    }
#endif
    flow.path_cap = std::min(flow.path_cap, links_[l].capacity);
    flow.member_pos.push_back(static_cast<uint32_t>(links_[l].members.size()));
    links_[l].members.push_back(slot);
  }
  flow.remaining = std::max(bytes, kByteEpsilon);
  flow.rate = 0.0;
  flow.rtt = std::max(rtt, 1e-6);
  flow.advanced = now;
  flow.seq = next_seq_++;
  flow.on_complete = std::move(on_complete);
  flow.active = true;
  if (tcp.slow_start) {
    flow.cwnd = tcp.init_cwnd_bytes;
    flow.rate_cap = flow.cwnd / flow.rtt;
    flow.next_double = now + flow.rtt;
    double_heap_.Update(slot, flow.next_double, flow.seq);
  } else {
    flow.cwnd = 0.0;
    flow.rate_cap = kInfinity;
    flow.next_double = kTimeInfinity;
  }
  ++live_;
  component_cache_full_ = false;  // membership changed
  ReallocateFor(flows_[slot].path, slot);
  ScheduleNext();
  return PackId(slot, flows_[slot].generation);
}

void FlowNetwork::AbortFlow(FlowId id) {
  uint32_t slot = ResolveId(id);
  if (slot == UINT32_MAX) {
    return;
  }
  seed_scratch_ = flows_[slot].path;
  DetachFromLinks(slot);
  finish_heap_.Remove(slot);
  early_heap_.Remove(slot);
  double_heap_.Remove(slot);
  ReleaseSlot(slot);
  --live_;
  component_cache_full_ = false;  // membership changed
  ReallocateFor(seed_scratch_);
  ScheduleNext();
}

double FlowNetwork::LinkRate(LinkId id) const {
  const Link& link = links_[id];
#ifndef NDEBUG
  double scan = 0.0;
  for (uint32_t slot : link.members) {
    scan += flows_[slot].rate;
  }
  assert(std::abs(scan - link.agg_rate) <= 1e-6 * std::max(1.0, std::abs(scan)) &&
         "link aggregate rate drifted from member scan");
#endif
  return link.agg_rate;
}

double FlowNetwork::LinkCumulativeBytes(LinkId id) const {
  const Link& link = links_[id];
  double dt = loop_.Now() - link.cum_update;
  return dt > 0.0 ? link.cumulative_bytes + link.agg_rate * dt : link.cumulative_bytes;
}

double FlowNetwork::FlowRate(FlowId id) const {
  uint32_t slot = ResolveId(id);
  return slot == UINT32_MAX ? 0.0 : flows_[slot].rate;
}

void FlowNetwork::AdvanceFlow(Flow& flow, SimTime now) {
  double dt = now - flow.advanced;
  if (dt > 0.0) {
    double moved = flow.rate * dt;
    flow.remaining = std::max(0.0, flow.remaining - moved);
  }
  flow.advanced = now;
}

void FlowNetwork::MaterializeLink(Link& link, SimTime now) {
  double dt = now - link.cum_update;
  if (dt > 0.0) {
    // Per-member accumulation (not agg_rate * dt): matches the historical
    // per-flow advance arithmetic and costs nothing extra — every member is
    // being visited by this pass anyway.
    for (uint32_t slot : link.members) {
      link.cumulative_bytes += flows_[slot].rate * dt;
    }
  }
  link.cum_update = now;
}

void FlowNetwork::DetachFromLinks(uint32_t slot) {
  SimTime now = loop_.Now();
  Flow& flow = flows_[slot];
  for (size_t i = 0; i < flow.path.size(); ++i) {
    Link& link = links_[flow.path[i]];
    // Commit bytes earned at the old aggregate before the membership (and
    // hence the aggregate) changes; otherwise the interval since the last
    // event would be lost for this link.
    MaterializeLink(link, now);
    link.agg_rate -= flow.rate;
    uint32_t pos = flow.member_pos[i];
    assert(pos < link.members.size() && link.members[pos] == slot);
    uint32_t moved = link.members.back();
    link.members.pop_back();
    if (pos < link.members.size()) {
      link.members[pos] = moved;
      // Patch the moved member's back-index for this link (paths are short —
      // server/pop/client — so the scan is a couple of comparisons).
      Flow& other = flows_[moved];
      for (size_t j = 0; j < other.path.size(); ++j) {
        if (other.path[j] == flow.path[i]) {
          other.member_pos[j] = pos;
          break;
        }
      }
    }
    if (link.members.empty()) {
      link.agg_rate = 0.0;  // kill subtraction residue on idle links
    }
  }
}

void FlowNetwork::CollectComponent(const std::vector<LinkId>& seed_links, uint32_t seed_flow) {
  dirty_flows_.clear();
  dirty_links_.clear();
  ++visit_epoch_;
  if (force_full_) {
    for (LinkId l = 0; l < links_.size(); ++l) {
      links_[l].visit = visit_epoch_;
      dirty_links_.push_back(l);
    }
    for (uint32_t slot = 0; slot < flows_.size(); ++slot) {
      if (flows_[slot].active && flows_[slot].visit != visit_epoch_) {
        flows_[slot].visit = visit_epoch_;
        dirty_flows_.push_back(slot);
      }
    }
  } else {
    for (LinkId l : seed_links) {
      if (links_[l].visit != visit_epoch_) {
        links_[l].visit = visit_epoch_;
        dirty_links_.push_back(l);
      }
    }
    if (seed_flow != UINT32_MAX && flows_[seed_flow].visit != visit_epoch_) {
      flows_[seed_flow].visit = visit_epoch_;
      dirty_flows_.push_back(seed_flow);
      for (LinkId l : flows_[seed_flow].path) {
        if (links_[l].visit != visit_epoch_) {
          links_[l].visit = visit_epoch_;
          dirty_links_.push_back(l);
        }
      }
    }
  }
  // BFS over the link↔flow incidence graph; dirty_links_ doubles as the
  // worklist (indices only ever appended).
  for (size_t head = 0; head < dirty_links_.size(); ++head) {
    Link& link = links_[dirty_links_[head]];
    for (uint32_t slot : link.members) {
      Flow& flow = flows_[slot];
      if (flow.visit == visit_epoch_) {
        continue;
      }
      flow.visit = visit_epoch_;
      dirty_flows_.push_back(slot);
      for (LinkId l : flow.path) {
        if (links_[l].visit != visit_epoch_) {
          links_[l].visit = visit_epoch_;
          dirty_links_.push_back(l);
        }
      }
    }
  }
  // Deterministic pass order: flows by creation sequence, links by id — the
  // orders the historical full pass would visit a single component in.
  // Packed integer keys keep the sort flat instead of chasing Flow structs.
  order_scratch_.clear();
  for (uint32_t slot : dirty_flows_) {
    order_scratch_.push_back((flows_[slot].seq << 32) | slot);
  }
  std::sort(order_scratch_.begin(), order_scratch_.end());
  for (size_t i = 0; i < order_scratch_.size(); ++i) {
    dirty_flows_[i] = static_cast<uint32_t>(order_scratch_[i]);
  }
  std::sort(dirty_links_.begin(), dirty_links_.end());
}

void FlowNetwork::RefreshLinkAggregates() {
  for (LinkId li : dirty_links_) {
    Link& link = links_[li];
    double agg = 0.0;
    for (uint32_t slot : link.members) {
      agg += flows_[slot].rate;
    }
    link.agg_rate = agg;
  }
}

void FlowNetwork::CompletionKeys(const Flow& flow, double* finish, double* early) {
  if (flow.rate > kRateEpsilon) {
    *finish = flow.advanced + flow.remaining / flow.rate;
    // Earliest instant the byte-epsilon completion test passes; any event at
    // or after it completes the flow, even one scheduled for another reason.
    *early = *finish - kByteEpsilon / flow.rate;
  } else {
    *finish = kTimeInfinity;
    *early = flow.remaining <= kByteEpsilon ? flow.advanced : kTimeInfinity;
  }
}

void FlowNetwork::UpdateCompletionKey(uint32_t slot) {
  Flow& flow = flows_[slot];
  double finish;
  double early;
  CompletionKeys(flow, &finish, &early);
  finish_heap_.Update(slot, finish, flow.seq);
  early_heap_.Update(slot, early, flow.seq);
}

void FlowNetwork::ReallocateFor(const std::vector<LinkId>& seed_links, uint32_t seed_flow) {
  SimTime now = loop_.Now();
  if (!component_cache_full_ || force_full_) {
    CollectComponent(seed_links, seed_flow);
  }
  // else: the previous pass covered every live flow and only slow-start
  // doublings happened since (starts/aborts/completions/new links all clear
  // the flag), so a fresh BFS from any seed would re-derive exactly the
  // cached dirty sets — reuse them as-is. dirty_flows_ stays seq-sorted and
  // dirty_links_ id-sorted from the pass that built them.
  stats_.reallocs++;
  stats_.flows_touched += dirty_flows_.size();
  stats_.links_touched += dirty_links_.size();
  if (dirty_flows_.size() == live_) {
    stats_.full_reallocs++;
  }
  // Commit elapsed bytes at the old rates before anything changes.
  for (LinkId li : dirty_links_) {
    Link& link = links_[li];
    MaterializeLink(link, now);
    link.residual = link.capacity;
    link.unfixed = 0;
  }
  for (uint32_t slot : dirty_flows_) {
    Flow& flow = flows_[slot];
    AdvanceFlow(flow, now);
    flow.fixed = false;
    flow.rate = 0.0;
    for (LinkId l : flow.path) {
      links_[l].unfixed++;
    }
  }

  // Water-filling max-min allocation with per-flow rate caps, restricted to
  // the dirty component (identical arithmetic to the historical full pass:
  // every link a dirty flow crosses is itself dirty, by construction).
  //
  // Round bookkeeping avoids the historical per-round rescans three ways,
  // none of which changes a single comparison outcome or double produced:
  //  - caps_scratch_ holds the component's finite-capped flows ascending by
  //    (rate_cap, seq), so the smallest unfixed cap is a cursor skip.
  //    Dropping infinite caps is free: an infinite cap is never the minimum
  //    unless every remaining cap is infinite, and that case is handled
  //    explicitly below with the same fix order the scan produced.
  //  - share_lb is a proven lower bound on the smallest contended-link share
  //    (see below); while the next cap sits at or below it the historical
  //    comparison cap_min <= share + eps must also pass, so consecutive cap
  //    rounds skip the exact min-share scan entirely.
  //  - for large components, share_heap_ keys each contended link by
  //    residual/unfixed (the identical division the scan computed), so the
  //    exact bottleneck share is the heap top instead of a scan.
  // Fix order inside a round is unchanged: cap cohorts are re-sorted to seq
  // order before fixing, and link rounds still walk dirty_links_ ascending —
  // the sequence of residual subtractions matches the scan version.
  size_t remaining_flows = dirty_flows_.size();
  caps_scratch_.clear();
  for (uint32_t slot : dirty_flows_) {
    if (flows_[slot].rate_cap < kInfinity) {
      caps_scratch_.emplace_back(flows_[slot].rate_cap,
                                 (flows_[slot].seq << 32) | static_cast<uint64_t>(slot));
    }
  }
  std::sort(caps_scratch_.begin(), caps_scratch_.end());
  size_t cap_cursor = 0;
  // For small components a flat rescan of dirty_links_ beats heap
  // maintenance (fewer than ~100 contiguous doubles vs pointer-chasing
  // sifts); the share heap only pays off at scale. Either source yields the
  // identical division residual/unfixed, so the allocation is unchanged.
  const bool use_share_heap = dirty_links_.size() > 96;
  if (use_share_heap) {
    share_heap_.Clear();
    for (LinkId li : dirty_links_) {
      const Link& link = links_[li];
      if (link.unfixed > 0) {
        share_heap_.Update(static_cast<uint32_t>(li),
                           link.residual / static_cast<double>(link.unfixed), li);
      }
    }
  }
  // Invariant: share_lb <= the true smallest contended-link share. It starts
  // below everything (forcing an exact scan on the first round), is raised
  // to the exact minimum by every scan, and is lowered by fix_flow whenever
  // a touched link's new share drops beneath it. Untouched links keep their
  // old shares (>= the lb when it was last exact), so the invariant holds
  // across both cap and link rounds without ever resetting.
  double share_lb = -kInfinity;
  auto fix_flow = [&](Flow& flow, double rate) {
    flow.fixed = true;
    flow.rate = std::max(rate, 0.0);
    for (LinkId l : flow.path) {
      Link& link = links_[l];
      link.residual = std::max(0.0, link.residual - flow.rate);
      link.unfixed--;
      if (use_share_heap) {
        if (link.unfixed == 0) {
          share_heap_.Remove(static_cast<uint32_t>(l));
        } else {
          share_heap_.Update(static_cast<uint32_t>(l),
                             link.residual / static_cast<double>(link.unfixed), l);
        }
      } else if (link.unfixed > 0) {
        double share = link.residual / static_cast<double>(link.unfixed);
        if (share < share_lb) {
          share_lb = share;
        }
      }
    }
    remaining_flows--;
  };
  while (remaining_flows > 0) {
    // Smallest unfixed per-flow cap: skip entries fixed by earlier rounds.
    while (cap_cursor < caps_scratch_.size() &&
           flows_[static_cast<uint32_t>(caps_scratch_[cap_cursor].second)].fixed) {
      ++cap_cursor;
    }
    double cap_min =
        cap_cursor < caps_scratch_.size() ? caps_scratch_[cap_cursor].first : kInfinity;
    bool cap_round;
    double link_share = kInfinity;
    if (!use_share_heap && cap_min <= share_lb + kRateEpsilon) {
      // cap_min <= share_lb + eps <= true_share + eps: the historical test
      // would take the cap branch too — no need for the exact share.
      cap_round = true;
    } else {
      // Smallest equal-share across contended links, exactly.
      if (use_share_heap) {
        link_share = share_heap_.Empty() ? kInfinity : share_heap_.TopKey();
      } else {
        for (LinkId li : dirty_links_) {
          const Link& link = links_[li];
          if (link.unfixed > 0) {
            link_share = std::min(link_share, link.residual / static_cast<double>(link.unfixed));
          }
        }
        share_lb = link_share;
      }
      cap_round = cap_min <= link_share + kRateEpsilon;
    }
    if (cap_round) {
      if (cap_cursor >= caps_scratch_.size()) {
        // cap_min and link_share are both infinite: no contended links
        // remain, and every remaining flow has an uncapped rate. The
        // historical pass fixed them all at their (infinite) caps in seq
        // order; dirty_flows_ is already seq-sorted.
        for (uint32_t slot : dirty_flows_) {
          Flow& flow = flows_[slot];
          if (!flow.fixed) {
            fix_flow(flow, flow.rate_cap);
          }
        }
        continue;
      }
      // Cap-limited flows saturate first: pin them at their caps, in seq
      // order (order_scratch_ entries are (seq, slot), so a plain sort).
      order_scratch_.clear();
      for (size_t c = cap_cursor;
           c < caps_scratch_.size() && caps_scratch_[c].first <= cap_min + kRateEpsilon; ++c) {
        uint32_t slot = static_cast<uint32_t>(caps_scratch_[c].second);
        if (!flows_[slot].fixed) {
          order_scratch_.push_back(caps_scratch_[c].second);
        }
      }
      std::sort(order_scratch_.begin(), order_scratch_.end());
      for (uint64_t packed : order_scratch_) {
        Flow& flow = flows_[static_cast<uint32_t>(packed)];
        fix_flow(flow, flow.rate_cap);
      }
    } else {
      // Link-limited: every unfixed flow crossing a bottleneck link gets the
      // bottleneck share. Shares here are recomputed on the fly (they shrink
      // as earlier links' members get fixed), exactly as the scan did.
      bool fixed_any = false;
      for (LinkId li : dirty_links_) {
        Link& link = links_[li];
        if (link.unfixed == 0) {
          continue;
        }
        double share = link.residual / static_cast<double>(link.unfixed);
        if (share > link_share + kRateEpsilon) {
          continue;
        }
        for (uint32_t slot : link.members) {
          Flow& flow = flows_[slot];
          if (!flow.fixed) {
            fix_flow(flow, link_share);
            fixed_any = true;
          }
        }
      }
      assert(fixed_any && "water-filling made no progress");
      if (!fixed_any) {
        // Flows would stay pinned at rate 0 with no completion ever firing;
        // count it loudly instead of stalling silently.
        stats_.no_progress++;
        if (metrics_ != nullptr) {
          metrics_->Add("flow_network.no_progress", 1);
        }
        break;
      }
    }
  }

  RefreshLinkAggregates();
  if (dirty_flows_.size() == live_) {
    // Full pass: every live flow's keys changed, so rebuild both completion
    // heaps wholesale (O(n) heapify over flat scratch) instead of 2n sifts.
    finish_scratch_.clear();
    early_scratch_.clear();
    for (uint32_t slot : dirty_flows_) {
      const Flow& flow = flows_[slot];
      double finish;
      double early;
      CompletionKeys(flow, &finish, &early);
      finish_scratch_.push_back({finish, flow.seq, slot});
      early_scratch_.push_back({early, flow.seq, slot});
    }
    finish_heap_.Assign(finish_scratch_);
    early_heap_.Assign(early_scratch_);
  } else {
    for (uint32_t slot : dirty_flows_) {
      UpdateCompletionKey(slot);
    }
  }
  // A pass that covered every live flow leaves dirty sets a doubling-only
  // event can reuse verbatim; any membership change clears the flag.
  component_cache_full_ = !dirty_flows_.empty() && dirty_flows_.size() == live_;
}

void FlowNetwork::ScheduleNext() {
  SimTime next = kTimeInfinity;
  if (!finish_heap_.Empty()) {
    next = std::min(next, finish_heap_.TopKey());
  }
  if (!double_heap_.Empty()) {
    next = std::min(next, double_heap_.TopKey());
  }
  if (timer_ != 0) {
    if (next < kTimeInfinity) {
      // Move the pending timer instead of cancel+rebuild: same sequence
      // number consumption and heap behavior, no std::function churn.
      EventId moved = loop_.Reschedule(timer_, next);
      if (moved != 0) {
        timer_ = moved;
        return;
      }
    }
    loop_.Cancel(timer_);
    timer_ = 0;
  }
  if (next < kTimeInfinity) {
    timer_ = loop_.ScheduleAt(next, [this] {
      timer_ = 0;
      OnTimer();
    });
  }
}

void FlowNetwork::OnTimer() {
  SimTime now = loop_.Now();
  SimDuration quantum = TimeQuantum(now);
  // A flow is complete when its bytes are gone, or when the residual would
  // take less than one representable clock tick to drain (the clock can no
  // longer advance by that little; see TimeQuantum). Everything with a
  // predicted finish inside the quantum window is due; the early heap
  // catches flows whose byte-epsilon window is wider than the quantum.
  due_scratch_.clear();
  std::vector<uint32_t>& due = due_scratch_;
  while (!finish_heap_.Empty() && finish_heap_.TopKey() <= now + quantum) {
    uint32_t slot = finish_heap_.TopItem();
    finish_heap_.Pop();
    early_heap_.Remove(slot);
    double_heap_.Remove(slot);
    due.push_back(slot);
  }
  while (!early_heap_.Empty() && early_heap_.TopKey() <= now) {
    uint32_t slot = early_heap_.TopItem();
    early_heap_.Pop();
    finish_heap_.Remove(slot);
    double_heap_.Remove(slot);
    due.push_back(slot);
  }
  // Completion order is creation order (packed integer sort, no indirection).
  order_scratch_.clear();
  for (uint32_t slot : due) {
    order_scratch_.push_back((flows_[slot].seq << 32) | slot);
  }
  std::sort(order_scratch_.begin(), order_scratch_.end());
  for (size_t i = 0; i < order_scratch_.size(); ++i) {
    due[i] = static_cast<uint32_t>(order_scratch_[i]);
  }

  // Collect completions first so callbacks observe a consistent network.
  std::vector<std::function<void()>> done;
  done.reserve(due.size());
  seed_scratch_.clear();
  for (uint32_t slot : due) {
    Flow& flow = flows_[slot];
    done.push_back(std::move(flow.on_complete));
    for (LinkId l : flow.path) {
      seed_scratch_.push_back(l);
    }
    DetachFromLinks(slot);
    ReleaseSlot(slot);
    --live_;
  }
  if (!due.empty()) {
    component_cache_full_ = false;  // membership changed
  }

  // Slow-start doublings due at this instant (completed flows were already
  // pulled out of the doubling heap above, matching the historical
  // complete-else-double scan).
  while (!double_heap_.Empty() && double_heap_.TopKey() <= now + 1e-12) {
    uint32_t slot = double_heap_.TopItem();
    Flow& flow = flows_[slot];
    flow.cwnd *= 2.0;
    flow.rate_cap = flow.cwnd / flow.rtt;
    // Stop doubling once the cap exceeds anything the path could give (the
    // path minimum is cached at StartFlow; capacities never change).
    if (flow.rate_cap >= flow.path_cap) {
      flow.rate_cap = kInfinity;
      flow.next_double = kTimeInfinity;
      double_heap_.Pop();
    } else {
      flow.next_double = now + flow.rtt;
      double_heap_.Update(slot, flow.next_double, flow.seq);
    }
    for (LinkId l : flow.path) {
      seed_scratch_.push_back(l);
    }
  }

  ReallocateFor(seed_scratch_);
  ScheduleNext();
  for (auto& cb : done) {
    if (cb) {
      cb();
    }
  }
}

}  // namespace mfc
