// Wide-area topology glue: a server access link, optional shared mid-path
// (POP) bottlenecks, and per-client access links, all over FlowNetwork.
//
// This is the substitute for the paper's live Internet + PlanetLab fleet:
// per-client RTTs and access bandwidths are drawn from heavy-tailed
// distributions, every latency sample is jittered, and control-plane (UDP)
// messages can be lost — the conditions the MFC synchronization algorithm
// was designed to tolerate.
#ifndef MFC_SRC_NET_WIDE_AREA_H_
#define MFC_SRC_NET_WIDE_AREA_H_

#include <functional>
#include <vector>

#include "src/net/flow_network.h"
#include "src/sim/distributions.h"
#include "src/sim/event_loop.h"
#include "src/sim/rng.h"

namespace mfc {

// Network-side identity of one MFC client host.
struct ClientNetProfile {
  SimDuration rtt_to_target = Millis(80);      // base round-trip to the target server
  SimDuration rtt_to_coordinator = Millis(60); // base round-trip to the coordinator
  double access_down_bps = 1.25e6;             // client downlink, bytes/second
  size_t pop = 0;                              // index into pop bottlenecks; ignored if none
};

struct WideAreaConfig {
  // Target server's outbound access-link capacity, bytes/second.
  // 12.5e6 B/s = 100 Mbit/s.
  double server_access_bps = 12.5e6;
  // Optional shared mid-path bottlenecks (bytes/second). Empty = clients see
  // only the server link and their own access link.
  std::vector<double> pop_bottleneck_bps;
  // Multiplicative lognormal jitter (sigma of underlying normal) applied to
  // every latency sample. 0 disables jitter.
  double jitter_sigma = 0.05;
  // Probability that a control-plane (UDP) message is silently dropped.
  double control_loss_rate = 0.0;
};

class WideAreaNetwork {
 public:
  WideAreaNetwork(EventLoop& loop, Rng& rng, WideAreaConfig config,
                  std::vector<ClientNetProfile> clients);
  WideAreaNetwork(const WideAreaNetwork&) = delete;
  WideAreaNetwork& operator=(const WideAreaNetwork&) = delete;

  size_t ClientCount() const { return clients_.size(); }
  const ClientNetProfile& Client(size_t i) const { return clients_[i]; }

  // Base (unjittered) RTTs — what an averaged ping measurement converges to.
  SimDuration BaseTargetRtt(size_t client) const { return clients_[client].rtt_to_target; }
  SimDuration BaseCoordRtt(size_t client) const { return clients_[client].rtt_to_coordinator; }

  // One-way latency samples with jitter, for individual packet deliveries.
  SimDuration SampleTargetOneWay(size_t client);
  SimDuration SampleCoordOneWay(size_t client);

  // Starts a server->client response transfer of |bytes|. |on_done| runs when
  // the last byte reaches the client (propagation of the final byte
  // included). Returns the flow id (abortable).
  FlowId StartDownload(size_t client, double bytes, std::function<void()> on_done);

  void AbortDownload(FlowId id) { flows_.AbortFlow(id); }

  // Delivers a control-plane message to/from a client after one jittered
  // one-way coordinator-client latency; silently dropped with the configured
  // loss probability (the paper's implementation has no retransmit).
  void SendControl(size_t client, std::function<void()> deliver);

  // Telemetry over the server's access link.
  double ServerLinkUtilization() const { return flows_.LinkUtilization(server_link_); }
  double ServerLinkRateBps() const { return flows_.LinkRate(server_link_); }
  double ServerLinkCumulativeBytes() const { return flows_.LinkCumulativeBytes(server_link_); }

  FlowNetwork& Flows() { return flows_; }

 private:
  double Jitter();

  EventLoop& loop_;
  Rng rng_;
  WideAreaConfig config_;
  std::vector<ClientNetProfile> clients_;
  FlowNetwork flows_;
  LinkId server_link_ = 0;
  std::vector<LinkId> pop_links_;
  std::vector<LinkId> client_links_;
};

// Synthesizes a PlanetLab-like fleet: RTTs lognormal around tens of
// milliseconds, access bandwidths from a bounded Pareto (a few Mbit/s up to
// campus gigabit), clients spread round-robin across POPs.
std::vector<ClientNetProfile> MakePlanetLabFleet(Rng& rng, size_t count, size_t pop_count = 4);

// A LAN fleet for the lab-validation experiments (Section 3): sub-millisecond
// RTTs and fast links, like clients on the same switch as the target.
std::vector<ClientNetProfile> MakeLanFleet(size_t count);

}  // namespace mfc

#endif  // MFC_SRC_NET_WIDE_AREA_H_
