#include "src/net/wide_area.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace mfc {

WideAreaNetwork::WideAreaNetwork(EventLoop& loop, Rng& rng, WideAreaConfig config,
                                 std::vector<ClientNetProfile> clients)
    : loop_(loop), rng_(rng.Fork()), config_(std::move(config)), clients_(std::move(clients)),
      flows_(loop) {
  server_link_ = flows_.AddLink(config_.server_access_bps);
  pop_links_.reserve(config_.pop_bottleneck_bps.size());
  for (double bps : config_.pop_bottleneck_bps) {
    pop_links_.push_back(flows_.AddLink(bps));
  }
  client_links_.reserve(clients_.size());
  for (const ClientNetProfile& c : clients_) {
    client_links_.push_back(flows_.AddLink(c.access_down_bps));
  }
}

double WideAreaNetwork::Jitter() {
  if (config_.jitter_sigma <= 0.0) {
    return 1.0;
  }
  return std::exp(config_.jitter_sigma * SampleStandardNormal(rng_));
}

SimDuration WideAreaNetwork::SampleTargetOneWay(size_t client) {
  return 0.5 * clients_[client].rtt_to_target * Jitter();
}

SimDuration WideAreaNetwork::SampleCoordOneWay(size_t client) {
  return 0.5 * clients_[client].rtt_to_coordinator * Jitter();
}

FlowId WideAreaNetwork::StartDownload(size_t client, double bytes, std::function<void()> on_done) {
  assert(client < clients_.size());
  std::vector<LinkId> path;
  path.push_back(server_link_);
  if (!pop_links_.empty()) {
    path.push_back(pop_links_[clients_[client].pop % pop_links_.size()]);
  }
  path.push_back(client_links_[client]);
  SimDuration rtt = clients_[client].rtt_to_target;
  // The final byte still needs half an RTT of propagation after it leaves
  // the last queue.
  auto deliver = [this, client, cb = std::move(on_done)]() mutable {
    loop_.ScheduleAfter(SampleTargetOneWay(client), std::move(cb));
  };
  return flows_.StartFlow(std::move(path), bytes, rtt, TcpParams{}, std::move(deliver));
}

void WideAreaNetwork::SendControl(size_t client, std::function<void()> deliver) {
  if (config_.control_loss_rate > 0.0 && rng_.Chance(config_.control_loss_rate)) {
    return;  // lost UDP datagram; the paper's tooling has no retransmit
  }
  loop_.ScheduleAfter(SampleCoordOneWay(client), std::move(deliver));
}

std::vector<ClientNetProfile> MakePlanetLabFleet(Rng& rng, size_t count, size_t pop_count) {
  std::vector<ClientNetProfile> fleet;
  fleet.reserve(count);
  // Wide-area RTTs: median ~70 ms, long tail to intercontinental paths.
  LognormalDist target_rtt = LognormalDist::FromMedian(0.070, 0.55);
  LognormalDist coord_rtt = LognormalDist::FromMedian(0.050, 0.55);
  // Access bandwidth: most PlanetLab hosts sit on fast campus networks
  // (median ~240 Mbit/s here), with a lognormal tail of thin links.
  LognormalDist bw = LognormalDist::FromMedian(30e6, 1.1);
  for (size_t i = 0; i < count; ++i) {
    ClientNetProfile c;
    c.rtt_to_target = std::min(target_rtt.Sample(rng), 0.450);
    c.rtt_to_coordinator = std::min(coord_rtt.Sample(rng), 0.450);
    c.access_down_bps = std::clamp(bw.Sample(rng), 0.5e6, 125e6);
    c.pop = pop_count == 0 ? 0 : i % pop_count;
    fleet.push_back(c);
  }
  return fleet;
}

std::vector<ClientNetProfile> MakeLanFleet(size_t count) {
  std::vector<ClientNetProfile> fleet;
  fleet.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ClientNetProfile c;
    c.rtt_to_target = Millis(0.3);
    c.rtt_to_coordinator = Millis(0.3);
    c.access_down_bps = 125e6;  // GigE
    c.pop = 0;
    fleet.push_back(c);
  }
  return fleet;
}

}  // namespace mfc
