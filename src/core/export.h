// Result serialization for downstream analysis: per-epoch CSV (one row per
// epoch, the format the paper's figures plot from) and a JSON document with
// the full experiment structure.
#ifndef MFC_SRC_CORE_EXPORT_H_
#define MFC_SRC_CORE_EXPORT_H_

#include <string>

#include "src/core/types.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace mfc {

// CSV with header:
//   stage,epoch,crowd_size,samples,metric_ms,exceeded,check_phase,stopped_stage
// One row per epoch across all stages, in execution order.
std::string ExportEpochsCsv(const ExperimentResult& result);

// Compact JSON: {"aborted":...,"registered_clients":N,"stages":[{...}]}
// with per-stage verdicts and per-epoch metrics (no raw samples).
std::string ExportJson(const ExperimentResult& result);

// Chrome trace_event JSON (loadable in about:tracing / Perfetto): one
// complete ("ph":"X") event per span, timestamps in microseconds of simulated
// time, sorted ascending so downstream validators can assume monotone ts.
// Span ids and parent links ride in args.id / args.parent; each request tree
// renders on its own tid, merged survey sites on their own pid.
std::string ExportTraceJson(const Tracer& tracer);

// Flat CSV, one row per metric field:
//   kind,name,field,value
// counters/gauges use field "value"; summaries expand to count/mean/stddev/
// min/max; histograms to total plus bucket_<i> counts. Rows are emitted in
// name order (the registry's maps are ordered), so equal registries export
// byte-identical CSVs.
std::string ExportMetricsCsv(const MetricsRegistry& metrics);

// Crash-safe file write: writes to |path|.tmp, flushes + fsyncs, then
// renames over |path|. Readers never observe a truncated file — an aborted
// run leaves either the old contents or nothing, not a half-written export.
// Returns false (and removes the temp file) on any failure.
bool WriteFileAtomic(const std::string& path, const std::string& contents);

}  // namespace mfc

#endif  // MFC_SRC_CORE_EXPORT_H_
