// Result serialization for downstream analysis: per-epoch CSV (one row per
// epoch, the format the paper's figures plot from) and a JSON document with
// the full experiment structure.
#ifndef MFC_SRC_CORE_EXPORT_H_
#define MFC_SRC_CORE_EXPORT_H_

#include <string>

#include "src/core/types.h"

namespace mfc {

// CSV with header:
//   stage,epoch,crowd_size,samples,metric_ms,exceeded,check_phase,stopped_stage
// One row per epoch across all stages, in execution order.
std::string ExportEpochsCsv(const ExperimentResult& result);

// Compact JSON: {"aborted":...,"registered_clients":N,"stages":[{...}]}
// with per-stage verdicts and per-epoch metrics (no raw samples).
std::string ExportJson(const ExperimentResult& result);

}  // namespace mfc

#endif  // MFC_SRC_CORE_EXPORT_H_
