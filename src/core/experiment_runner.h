// Convenience wiring: SiteInstance -> generated content + server (or
// cluster) + wide-area testbed + optional background traffic + coordinator.
// Benches, examples and integration tests all build deployments this way.
#ifndef MFC_SRC_CORE_EXPERIMENT_RUNNER_H_
#define MFC_SRC_CORE_EXPERIMENT_RUNNER_H_

#include <memory>
#include <optional>

#include "src/core/coordinator.h"
#include "src/core/population.h"
#include "src/core/sim_testbed.h"
#include "src/server/background_traffic.h"
#include "src/server/cluster.h"
#include "src/server/web_server.h"

namespace mfc {

struct DeploymentOptions {
  uint64_t seed = 42;
  size_t fleet_size = 85;          // available PlanetLab-like clients
  double background_rps = 0.0;     // Poisson background request rate
  double jitter_sigma = 0.05;
  double control_loss_rate = 0.0;
  // Use a LAN fleet (Section 3 lab experiments) instead of wide-area clients.
  bool lan_clients = false;
};

// Owns every moving part of one simulated MFC deployment.
class Deployment {
 public:
  Deployment(const SiteInstance& instance, const DeploymentOptions& options);
  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  SimTestbed& Testbed() { return *testbed_; }
  HttpTarget& Target() { return *target_; }
  // The single server, or the first replica of a cluster.
  WebServer& Server();
  ServerCluster* Cluster() { return cluster_.get(); }
  const ContentStore& Content() const { return content_; }
  EventLoop& Loop() { return testbed_->Loop(); }

  // Profiles the target by actually crawling it from the coordinator's
  // vantage point (the non-cooperating-site path).
  StageObjects ProfileByCrawl(CrawlLimits limits = {}, ProfileThresholds thresholds = {});
  // The crawl profile itself, for inspection.
  ContentProfile CrawlProfile(CrawlLimits limits = {}, ProfileThresholds thresholds = {});

  // Operator-supplied objects (the cooperating-site path): derived directly
  // from the hosted content without crawling.
  StageObjects ObjectsFromContent() const;

  // Runs a full MFC experiment against this deployment.
  ExperimentResult RunMfc(const ExperimentConfig& config, const StageObjects& objects,
                          uint64_t coordinator_seed = 7);

  void StartBackground();
  void StopBackground();
  uint64_t BackgroundRequests() const;

  // Wires a tracing/metrics sink into the server (every replica of a
  // cluster). Coordinators built on this deployment attach separately via
  // Coordinator::SetTelemetry on the same Telemetry object.
  void SetTelemetry(Telemetry* telemetry);

 private:
  ContentStore content_;
  // Indirection injected into the testbed before the real target exists.
  std::unique_ptr<HttpTarget> shim_;
  size_t background_client_ = 0;
  std::unique_ptr<WebServer> server_;
  std::unique_ptr<ServerCluster> cluster_;
  HttpTarget* target_ = nullptr;
  std::unique_ptr<SimTestbed> testbed_;
  std::unique_ptr<BackgroundTraffic> background_;
};

// Deploys |instance|, derives its stage objects from content, and runs the
// requested stages. Fully self-contained (own EventLoop / Rng / testbed), so
// calls with distinct instances are safe to run on distinct threads. When
// |telemetry| is non-null its tracer/metrics (which must be private to this
// call's thread) receive the run's spans and counters.
ExperimentResult RunSiteExperiment(const SiteInstance& instance, const ExperimentConfig& config,
                                   const std::vector<StageKind>& stages, uint64_t seed,
                                   Telemetry* telemetry = nullptr);

// One-call helper for the survey benches: sample a site from |cohort|, deploy
// it, profile it, run the requested stages, and return the result.
ExperimentResult RunSurveyExperiment(Rng& rng, Cohort cohort, const ExperimentConfig& config,
                                     const std::vector<StageKind>& stages, uint64_t seed);

class SurveyJournal;

// Crash-safe variant: when site |index| of |journal|'s current cohort is
// already recorded the experiment replays from the journal (the rng draw
// still happens, keeping the shared sample stream aligned); otherwise it
// runs live and is appended + fsynced. |journal| may be null (plain run).
ExperimentResult RunSurveyExperiment(Rng& rng, Cohort cohort, const ExperimentConfig& config,
                                     const std::vector<StageKind>& stages, uint64_t seed,
                                     SurveyJournal* journal, size_t index);

}  // namespace mfc

#endif  // MFC_SRC_CORE_EXPERIMENT_RUNNER_H_
