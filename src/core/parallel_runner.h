// Fixed-size worker pool for fanning independent simulation tasks across
// cores.
//
// Isolation invariant: every task owns its entire simulation world — one
// Deployment (EventLoop, Rng, testbed, server) per task, nothing shared
// across threads except the read-only task description and the task's own
// result slot. Tasks are pulled from an atomic counter in index order and
// each writes only results[i], so the collected output is independent of
// scheduling and bit-identical to a sequential run.
#ifndef MFC_SRC_CORE_PARALLEL_RUNNER_H_
#define MFC_SRC_CORE_PARALLEL_RUNNER_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace mfc {

class ParallelProgress;  // telemetry/stats_stream.h

// Resolves a worker count: |requested| if non-zero, else the MFC_JOBS
// environment variable if set and positive, else hardware concurrency
// (minimum 1).
size_t ResolveJobs(size_t requested = 0);

class ParallelRunner {
 public:
  // |jobs| = 0 means ResolveJobs(0) (env / hardware default).
  explicit ParallelRunner(size_t jobs = 0);

  size_t Jobs() const { return jobs_; }

  // Runs fn(i) for every i in [0, count). Blocks until all tasks finish.
  // With Jobs() == 1 the tasks run inline on the calling thread in index
  // order, reproducing sequential behavior exactly; otherwise min(Jobs(),
  // count) workers pull indices from a shared atomic cursor.
  //
  // |progress|, when non-null, receives OnClaim/OnDone for every task (by
  // worker id; the inline path reports as worker 0) so an external sampler
  // can observe per-worker state. It must be sized for at least Jobs()
  // workers and never alters scheduling.
  void RunIndexed(size_t count, const std::function<void(size_t)>& fn,
                  ParallelProgress* progress = nullptr) const;

  // Cancelable variant: |cancel| is polled before claiming each index; once
  // it returns true no new indices start, but tasks already claimed run to
  // completion (a graceful drain, not an abort). Returns the number of tasks
  // that ran. Which indices ran is scheduling-dependent under cancellation —
  // callers must track completion per index, not assume a prefix.
  size_t RunIndexed(size_t count, const std::function<void(size_t)>& fn,
                    const std::function<bool()>& cancel,
                    ParallelProgress* progress = nullptr) const;

  // Convenience: materializes make(i) for every index into an index-ordered
  // vector. T must be default-constructible and movable.
  template <typename T, typename MakeFn>
  std::vector<T> Map(size_t count, MakeFn&& make) const {
    std::vector<T> results(count);
    RunIndexed(count, [&](size_t i) { results[i] = make(i); });
    return results;
  }

 private:
  size_t jobs_;
};

}  // namespace mfc

#endif  // MFC_SRC_CORE_PARALLEL_RUNNER_H_
