#include "src/core/parallel_runner.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "src/telemetry/stats_stream.h"

namespace mfc {

size_t ResolveJobs(size_t requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("MFC_JOBS")) {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<size_t>(parsed);
    }
    // A set-but-broken MFC_JOBS used to fall through silently — the user
    // believes they pinned the worker count while the run fans out across
    // every core. Say so, once, then take the hardware default.
    fprintf(stderr,
            "warning: MFC_JOBS=\"%s\" is not a positive integer; "
            "falling back to hardware concurrency\n",
            env);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

ParallelRunner::ParallelRunner(size_t jobs) : jobs_(ResolveJobs(jobs)) {}

void ParallelRunner::RunIndexed(size_t count, const std::function<void(size_t)>& fn,
                                ParallelProgress* progress) const {
  if (count == 0) {
    return;
  }
  size_t workers = jobs_ < count ? jobs_ : count;
  if (workers <= 1) {
    for (size_t i = 0; i < count; ++i) {
      if (progress != nullptr) {
        progress->OnClaim(0, i);
      }
      fn(i);
      if (progress != nullptr) {
        progress->OnDone(0);
      }
    }
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&](size_t w) {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      if (progress != nullptr) {
        progress->OnClaim(w, i);
      }
      fn(i);
      if (progress != nullptr) {
        progress->OnDone(w);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back(worker, w);
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

size_t ParallelRunner::RunIndexed(size_t count, const std::function<void(size_t)>& fn,
                                  const std::function<bool()>& cancel,
                                  ParallelProgress* progress) const {
  if (count == 0) {
    return 0;
  }
  size_t workers = jobs_ < count ? jobs_ : count;
  if (workers <= 1) {
    size_t ran = 0;
    for (size_t i = 0; i < count; ++i) {
      if (cancel && cancel()) {
        break;
      }
      if (progress != nullptr) {
        progress->OnClaim(0, i);
      }
      fn(i);
      if (progress != nullptr) {
        progress->OnDone(0);
      }
      ++ran;
    }
    return ran;
  }
  std::atomic<size_t> next{0};
  std::atomic<size_t> ran{0};
  auto worker = [&](size_t w) {
    for (;;) {
      if (cancel && cancel()) {
        return;
      }
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      if (progress != nullptr) {
        progress->OnClaim(w, i);
      }
      fn(i);
      if (progress != nullptr) {
        progress->OnDone(w);
      }
      ran.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back(worker, w);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  return ran.load(std::memory_order_relaxed);
}

}  // namespace mfc
